// Async disk-tier prefetch pipeline (docs/INTERNALS.md §15).
//
// With a RAM-capped SharedModuleStore, cold modules live in spill files and
// a request whose working set was spilled pays a synchronous disk fault-in
// on its serve path. StorePrefetcher hides that latency by overlapping the
// disk reads with whatever the engines are already doing: a background
// thread binds each submitted prompt (PromptCacheEngine::bind +
// module_keys — pure parsing, no store access, no encoding) and calls
// SharedModuleStore::prefetch() on every key, faulting spilled payloads
// back into RAM while earlier requests are still decoding. By the time the
// request reaches a worker, its modules are resident and the serve path
// sees ordinary hits.
//
// This is classic double-buffering: the queue holds at most `depth`
// prompts (2-3 — the next requests to be admitted), so the prefetcher
// works exactly one admission window ahead of the engines. When it falls
// behind, the OLDEST queued prompt is dropped, not the newest: the oldest
// is the one most likely to already be in service, where a demand fault-in
// has beaten any prefetch to the disk.
//
// Correctness is free: prefetch() shares the per-key single-flight Flight
// map with find()/ensure(), so a prefetch racing a demand fault-in or an
// encode leader dedups to one disk read, and a prefetch that loses every
// race is a no-op. The pipeline is pure latency optimization — stopping it
// (or never starting it) changes no served byte.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "core/shared_module_store.h"

namespace pc {

struct PrefetcherConfig {
  // Max prompts buffered ahead of the engines (the double/triple-buffer
  // depth). Beyond it the oldest queued prompt is dropped as stale.
  size_t depth = 2;
  EngineConfig engine;               // binder engine config (must match the
                                     // workers' precision for identical keys)
  std::vector<std::string> schemas;  // PML loaded by the binder at startup
};

class StorePrefetcher {
 public:
  struct Stats {
    uint64_t prompts = 0;        // prompts accepted by enqueue()
    uint64_t dropped = 0;        // stale prompts dropped (queue over depth)
    uint64_t keys_issued = 0;    // store.prefetch() calls
    uint64_t keys_resident = 0;  // prefetch() returned true (resident or
                                 // faulted in or already in flight)
    uint64_t bind_errors = 0;    // prompts skipped (parse/validation error)
  };

  // The binder engine is built on the background thread against `store`
  // (so prefetched payloads land exactly where the workers look them up).
  // The constructor blocks until the thread has loaded the schemas.
  StorePrefetcher(const Model& model, const TextTokenizer& tokenizer,
                  SharedModuleStore& store, PrefetcherConfig config);
  ~StorePrefetcher();  // calls stop()

  StorePrefetcher(const StorePrefetcher&) = delete;
  StorePrefetcher& operator=(const StorePrefetcher&) = delete;

  // Hands a submitted prompt to the pipeline. Non-blocking: over-depth
  // backlog sheds the oldest queued prompt. Safe to call under an outer
  // lock (the internal mutex is leaf-level and never calls out).
  void enqueue(const std::string& prompt);

  // Blocks until the queue is empty and the thread is idle (tests: make
  // every issued prefetch observable before asserting on store state).
  void drain();

  // Stops the thread after the current prompt; queued prompts are dropped
  // (prefetch is best-effort — nothing is lost but warmth). Idempotent.
  void stop();

  Stats stats() const;

 private:
  void loop();

  const Model& model_;
  const TextTokenizer& tokenizer_;
  SharedModuleStore& store_;
  PrefetcherConfig config_;

  mutable std::mutex mutex_;
  std::condition_variable cv_work_;
  std::condition_variable cv_idle_;
  std::deque<std::string> queue_;
  bool working_ = false;
  bool stop_ = false;
  bool ready_ = false;

  std::atomic<uint64_t> prompts_{0};
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint64_t> keys_issued_{0};
  std::atomic<uint64_t> keys_resident_{0};
  std::atomic<uint64_t> bind_errors_{0};

  std::thread thread_;
};

}  // namespace pc
