#include "sys/prefetch.h"

#include "common/logging.h"
#include "obs/trace.h"

namespace pc {

StorePrefetcher::StorePrefetcher(const Model& model,
                                 const TextTokenizer& tokenizer,
                                 SharedModuleStore& store,
                                 PrefetcherConfig config)
    : model_(model),
      tokenizer_(tokenizer),
      store_(store),
      config_(std::move(config)) {
  PC_CHECK_MSG(config_.depth > 0, "StorePrefetcher depth must be > 0");
  thread_ = std::thread([this] { loop(); });
  std::unique_lock lock(mutex_);
  cv_idle_.wait(lock, [&] { return ready_; });
}

StorePrefetcher::~StorePrefetcher() { stop(); }

void StorePrefetcher::enqueue(const std::string& prompt) {
  {
    std::lock_guard lock(mutex_);
    if (stop_) return;
    prompts_.fetch_add(1, std::memory_order_relaxed);
    while (queue_.size() >= config_.depth) {
      // Over depth: the oldest prompt is the stalest — its request is the
      // closest to (or already in) service, where a demand fault-in has
      // likely beaten any prefetch we could still issue.
      queue_.pop_front();
      dropped_.fetch_add(1, std::memory_order_relaxed);
    }
    queue_.push_back(prompt);
  }
  cv_work_.notify_one();
}

void StorePrefetcher::drain() {
  std::unique_lock lock(mutex_);
  cv_idle_.wait(lock, [&] { return queue_.empty() && !working_; });
}

void StorePrefetcher::stop() {
  {
    std::lock_guard lock(mutex_);
    if (stop_) return;
    stop_ = true;
    queue_.clear();  // best-effort pipeline: drop, don't finish
  }
  cv_work_.notify_all();
  cv_idle_.notify_all();
  if (thread_.joinable()) thread_.join();
}

StorePrefetcher::Stats StorePrefetcher::stats() const {
  Stats s;
  s.prompts = prompts_.load(std::memory_order_relaxed);
  s.dropped = dropped_.load(std::memory_order_relaxed);
  s.keys_issued = keys_issued_.load(std::memory_order_relaxed);
  s.keys_resident = keys_resident_.load(std::memory_order_relaxed);
  s.bind_errors = bind_errors_.load(std::memory_order_relaxed);
  return s;
}

void StorePrefetcher::loop() {
  obs::set_thread_name("prefetcher");
  // The binder engine is built on this thread, like a worker's. It shares
  // the store so prefetch keys match lookup keys exactly, but it only ever
  // binds — prefetch() never encodes, so this engine runs no forward pass.
  PromptCacheEngine binder(model_, tokenizer_, store_, config_.engine);
  for (const std::string& pml : config_.schemas) {
    try {
      binder.load_schema(pml);
    } catch (const Error& e) {
      // Same posture as Server::worker_loop: the schema registered before
      // its eager encode failed; binding still works.
      PC_LOG_WARN << "prefetcher: schema load incomplete (" << e.what()
                  << "); binding continues";
    }
  }
  {
    std::lock_guard lock(mutex_);
    ready_ = true;
  }
  cv_idle_.notify_all();

  for (;;) {
    std::string prompt;
    {
      std::unique_lock lock(mutex_);
      working_ = false;
      if (queue_.empty()) cv_idle_.notify_all();
      cv_work_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (stop_) return;
      prompt = std::move(queue_.front());
      queue_.pop_front();
      working_ = true;
    }
    PC_SPAN("prefetch_prompt");
    try {
      const auto binding = binder.bind(prompt);
      for (const std::string& key : binder.module_keys(binding)) {
        keys_issued_.fetch_add(1, std::memory_order_relaxed);
        if (store_.prefetch(key)) {
          keys_resident_.fetch_add(1, std::memory_order_relaxed);
        }
        // A stop request mid-working-set stops promptly (a deep schema can
        // have many modules and each fault-in is a disk read).
        std::lock_guard lock(mutex_);
        if (stop_) return;
      }
    } catch (const Error&) {
      // Malformed prompt or unknown schema: the serve path will report it
      // properly; the pipeline just skips it.
      bind_errors_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

}  // namespace pc
