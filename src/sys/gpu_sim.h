// Discrete-event simulation of cached inference on a GPU.
//
// The analytic model in device_model.h charges the full module transfer
// serially before any compute. Real implementations pipeline: the copy
// engine (PCIe DMA) moves layer l+1's cached KV while the compute engine
// runs layer l's uncached forward, hiding much of the host-memory penalty
// behind compute. This simulator models the two engines as serial resources
// with per-layer tasks and dependencies and reports the resulting TTFT and
// utilization — quantifying how much of the paper's modules-in-CPU-memory
// gap (Figure 3) a pipelined runtime recovers.
//
// Task graph for L layers:
//   copy engine    C_0 -> C_1 -> ... -> C_{L-1}        (module KV per layer)
//   compute engine K_0 -> K_1 -> ... -> K_{L-1} -> OUT (uncached forward)
//   dependency     K_l also requires C_l (attention reads that layer's
//                  cached keys/values)
// Non-overlapped mode serializes everything on one timeline (the analytic
// model's assumption).
#pragma once

#include <vector>

#include "sys/device_model.h"

namespace pc {

struct GpuSimResult {
  double ttft_s = 0;
  double copy_busy_s = 0;     // total copy-engine busy time
  double compute_busy_s = 0;  // total compute-engine busy time
  double compute_stall_s = 0; // compute idle waiting for copies
  // Completion time of each layer's compute task (diagnostics/tests).
  std::vector<double> layer_finish_s;
};

// Simulates the TTFT of cached inference: per-layer module-KV copies from
// `location` plus per-layer uncached compute. When `overlap` is false, copy
// and compute share one serial timeline (matches the analytic model).
GpuSimResult simulate_cached_ttft(const HardwareProfile& hw,
                                  const ModelSpec& spec,
                                  int64_t cached_tokens,
                                  int64_t uncached_tokens,
                                  ModuleLocation location, bool overlap);

}  // namespace pc
