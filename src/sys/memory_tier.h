// Two-tier module storage accounting (paper §4.1).
//
// Prompt Cache stores encoded modules in either host DRAM (large, but GPUs
// pay a PCIe copy to use it) or device HBM (fast, scarce). TierAllocator
// tracks capacity and usage per tier so the core cache can make placement
// decisions and the benchmarks can report footprint; actual storage always
// lives in host RAM in this reproduction — the tier tag determines which
// simulated transfer cost applies at inference time.
#pragma once

#include <cstddef>
#include <limits>

#include "common/error.h"
#include "sys/device_model.h"

namespace pc {

struct TierUsage {
  size_t capacity_bytes = 0;  // 0 means unlimited — test with unlimited()
  size_t used_bytes = 0;
  // Disambiguates the 0 sentinel: a shard handed a 0-byte slice of a
  // capacity-limited total is genuinely closed, not unlimited. Without
  // this flag, splitting a small capacity across many shards either
  // over-commits (clamping slices up to 1 byte) or silently opens the
  // 0-byte shards wide.
  bool zero_capacity = false;

  // The capacity sentinel, spelled out: arithmetic on capacity_bytes is
  // only meaningful when this is false. Callers must branch on this
  // instead of comparing capacity_bytes to 0 (or free_bytes() to
  // SIZE_MAX) themselves.
  bool unlimited() const { return capacity_bytes == 0 && !zero_capacity; }

  size_t free_bytes() const {
    if (unlimited()) return std::numeric_limits<size_t>::max();
    return capacity_bytes - used_bytes;
  }
};

class TierAllocator {
 public:
  // The *_zero flags mark a 0-byte capacity as "closed" rather than the
  // default "unlimited" sentinel (see TierUsage::zero_capacity).
  TierAllocator(size_t host_capacity_bytes, size_t device_capacity_bytes,
                bool host_zero_capacity = false,
                bool device_zero_capacity = false) {
    host_.capacity_bytes = host_capacity_bytes;
    host_.zero_capacity = host_capacity_bytes == 0 && host_zero_capacity;
    device_.capacity_bytes = device_capacity_bytes;
    device_.zero_capacity = device_capacity_bytes == 0 && device_zero_capacity;
  }

  const TierUsage& usage(ModuleLocation loc) const {
    return loc == ModuleLocation::kHostMemory ? host_ : device_;
  }

  bool can_fit(ModuleLocation loc, size_t bytes) const {
    const TierUsage& u = usage(loc);
    // Compare against the remaining headroom, never `used + bytes`: the
    // sum form wraps around for requests near SIZE_MAX and would admit
    // them into a full tier.
    return u.unlimited() || bytes <= u.capacity_bytes - u.used_bytes;
  }

  void charge(ModuleLocation loc, size_t bytes) {
    TierUsage& u = mutable_usage(loc);
    PC_CHECK_MSG(can_fit(loc, bytes), "tier over-commit");
    u.used_bytes += bytes;
  }

  void credit(ModuleLocation loc, size_t bytes) {
    TierUsage& u = mutable_usage(loc);
    PC_CHECK_MSG(u.used_bytes >= bytes, "tier under-flow");
    u.used_bytes -= bytes;
  }

 private:
  TierUsage& mutable_usage(ModuleLocation loc) {
    return loc == ModuleLocation::kHostMemory ? host_ : device_;
  }

  TierUsage host_;
  TierUsage device_;
};

}  // namespace pc
