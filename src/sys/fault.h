// Deterministic fault injection for the serving stack.
//
// A FaultInjector is a process-wide registry of named fault points — the
// places where the cache layer can genuinely misbehave in production — that
// subsystems poll at their boundaries:
//
//   encode   engine.cpp      a module/scaffold forward pass fails
//                            (throws pc::TransientError out of the encode)
//   link     server.cpp      a simulated host-link transfer is lost and
//                            must be resent (the worker retries the stall)
//   corrupt  serialize.cpp   a persisted record fails its checksum on read
//                            (exercises the load recovery policy)
//   evict    shared store    store pressure spuriously evicts an unpinned
//                            resident entry (forces the thrash-reencode
//                            path at serve time)
//   stall    server.cpp      a worker freezes for stall_ms before serving
//                            (straggler; stresses deadlines and shedding)
//   shardkill shard.cpp      a whole shard (Server + store) dies; the
//                            ShardRouter fails affected requests over to a
//                            replica (docs/INTERNALS.md §14)
//   diskread  shared store   a disk-tier spill file fails to read back; the
//                            fault-in drops the record and the caller
//                            re-encodes (docs/INTERNALS.md §15)
//   diskwrite shared store   a disk-tier spill write fails; the victim is
//                            destroy-evicted instead of spilled
//
// Faults are drawn from a seeded counter-based hash: the decision for the
// N-th poll of a point is a pure function of (seed, point, N), so a given
// spec replays the same fault schedule per point regardless of which thread
// lands on which draw. Configure via the PC_FAULTS environment variable or
// configure(); the grammar is
//
//   PC_FAULTS = entry ("," entry)*
//   entry     = "seed=" uint64                      (default 1)
//             | point "=" rate ["x" count] [":" ms]
//   point     = "encode" | "link" | "corrupt" | "evict" | "stall"
//             | "shardkill" | "diskread" | "diskwrite"
//   rate      = probability in [0,1]
//   count     = cap on injections at this point (0 / absent = unlimited)
//   ms        = stall duration for "stall" (default 20)
//
// e.g. PC_FAULTS="seed=7,encode=0.2,link=0.1x3,stall=0.05:25".
//
// Cost model mirrors the PC_SPAN gate (obs/trace.h): with no spec active,
// should_fail() is one relaxed atomic load; built with -DPC_FAULTS=OFF
// (PC_FAULTS_ENABLED=0) every poll compiles to `false` and the injector is
// a stub. configure()/disable() must not race with active fault polls —
// reconfigure between requests (tests do it while the server is idle).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

#ifndef PC_FAULTS_ENABLED
#define PC_FAULTS_ENABLED 1
#endif

namespace pc {

enum class FaultPoint : int {
  kEncode = 0,
  kLink,
  kCorrupt,
  kEvict,
  kStall,
  kShardKill,
  kDiskRead,
  kDiskWrite,
};
inline constexpr int kNumFaultPoints = 8;

const char* fault_point_name(FaultPoint p);

#if PC_FAULTS_ENABLED

class FaultInjector {
 public:
  // The process-wide injector. First use reads PC_FAULTS from the
  // environment (empty/unset = disabled).
  static FaultInjector& global();

  // Parses and arms a spec (see the grammar above); throws pc::ConfigError
  // on a malformed spec — unknown points, non-numeric or trailing-garbage
  // rates, bad xN/:ms suffixes — so a typo'd chaos spec fails loudly at
  // startup instead of silently running clean. An empty spec disables.
  // Resets draw/injection counts.
  void configure(const std::string& spec);

  // Disarms all fault points (counts are preserved for inspection).
  void disable();

  bool enabled() const {
    return armed_.load(std::memory_order_relaxed);
  }

  // The active spec string ("" when disabled) — recorded in bench
  // provenance so faulted and clean numbers can never silently mix.
  std::string spec() const;

  // Polls a fault point: one relaxed load and false when disarmed; when
  // armed, draws the point's next decision from the seeded schedule.
  bool should_fail(FaultPoint p) {
    if (!armed_.load(std::memory_order_relaxed)) return false;
    return roll(p);
  }

  // Stall duration configured for `p` (meaningful for kStall).
  double stall_ms(FaultPoint p) const;

  // Injection accounting (for tests and chaos reports).
  uint64_t injected(FaultPoint p) const;
  uint64_t injected_total() const;

 private:
  FaultInjector();

  struct Rule {
    double rate = 0;         // injection probability per poll
    uint64_t max_count = 0;  // 0 = unlimited
    double stall_ms = 20.0;
  };

  bool roll(FaultPoint p);

  // armed_ is the release-published gate over rules_/seed_: configure()
  // writes them, then stores armed_ with release; roll() re-loads it with
  // acquire before touching the rules.
  std::atomic<bool> armed_{false};
  std::array<Rule, kNumFaultPoints> rules_{};
  uint64_t seed_ = 1;
  std::array<std::atomic<uint64_t>, kNumFaultPoints> draws_{};
  std::array<std::atomic<uint64_t>, kNumFaultPoints> injected_{};
  std::string spec_;
};

#else  // !PC_FAULTS_ENABLED — every poll compiles to `false`.

class FaultInjector {
 public:
  static FaultInjector& global() {
    static FaultInjector instance;
    return instance;
  }
  void configure(const std::string&) {}
  void disable() {}
  bool enabled() const { return false; }
  std::string spec() const { return {}; }
  bool should_fail(FaultPoint) { return false; }
  double stall_ms(FaultPoint) const { return 0; }
  uint64_t injected(FaultPoint) const { return 0; }
  uint64_t injected_total() const { return 0; }
};

#endif  // PC_FAULTS_ENABLED

}  // namespace pc
