// Concurrent serving frontend: a bounded request queue feeding a pool of
// worker threads, one PromptCacheEngine per worker over one shared (const)
// Model. Two store configurations (see src/core/engine.h):
//
//   * shared:  all workers route through one SharedModuleStore — each module
//     is encoded once fleet-wide (single-flight) and held once.
//   * private: each worker owns a ModuleStore sized by ServerConfig::engine —
//     the scale-out baseline the shared store is measured against.
//
// Request lifecycle: submit() enqueues (blocking while the queue is at
// capacity — admission control instead of unbounded memory); a worker pops,
// serves, applies the simulated host-link stall (below), and records a
// ServerResponse. drain() blocks until every submitted request completed and
// returns the responses in submission order. stats() aggregates per-worker
// engine counters and histograms (LatencyHistogram::merge) with the store's
// — call it only while the server is idle (after drain()).
//
// Host-link model. This repo substitutes analytic models for hardware it
// doesn't have (see device_model.h): kernels run fp32 on CPU and device
// behavior is modeled, not executed. LinkModel extends that substitution to
// serving concurrency: each request sleeps for the time a real host->device
// link would spend moving that request's host-resident module bytes
// (latency + bytes/bandwidth). The sleep releases the core, so stalls
// overlap across workers exactly as DMA transfers overlap with compute —
// which is what makes a worker pool scale even when the compute itself is
// serialized on few cores. With LinkModel{} (all zeros) no stall is applied.
//
// Fault tolerance (docs/INTERNALS.md §9). Every response carries a typed
// ServeStatus instead of a stringly error:
//
//   kOk        served from the cache path.
//   kDegraded  the cache layer misbehaved (encode fault, corrupt record,
//              thrash, dead link) and retries were exhausted; the request
//              was re-served by a full blocked prefill
//              (PromptCacheEngine::serve_full_prefill) — bitwise-identical
//              tokens, degraded TTFT. Cached attention states are a latency
//              optimization, never a correctness requirement.
//   kTimeout   the request's deadline expired mid-service; its cancellation
//              token aborted encode/decode and the partial work was
//              discarded.
//   kShed      the request never reached an engine: its deadline expired
//              while queued, or submit() predicted (from the service-time
//              EWMA) that the backlog made the deadline unmeetable.
//   kFailed    serve threw a non-transient, non-degradable error.
//
// Transient faults (pc::TransientError) are retried with exponential
// backoff + deterministic jitter up to RetryPolicy::max_retries before
// degrading. Accounting is exact: every submitted id is eventually recorded
// with exactly one status, and
//   completed (ok+degraded) + shed + timeouts + failed == submitted.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/cancel.h"
#include "common/histogram.h"
#include "core/engine.h"
#include "core/shared_module_store.h"
#include "model/model.h"
#include "obs/metrics.h"
#include "obs/request_timeline.h"
#include "obs/sampler.h"
#include "sys/batch.h"
#include "sys/device_model.h"
#include "sys/prefetch.h"
#include "sys/serve_types.h"

namespace pc {

struct ServerConfig {
  int n_workers = 4;
  size_t queue_capacity = 64;    // submit() blocks when full
  EngineConfig engine;           // per-worker engine config
  std::vector<std::string> schemas;  // PML loaded by every worker at startup
  double default_deadline_ms = 0;    // 0 = no deadline enforcement
  LinkModel link;
  RetryPolicy retry;
  // Continuous-batching mode (sys/batch.h): instead of n_workers threads
  // each serving one request end to end, a single batch loop serves up to
  // batch.max_batch requests per forward step with paged KV sharing across
  // them. Identical request semantics: same ServeStatus taxonomy, same
  // deadline/retry/degradation behavior, bitwise-identical tokens.
  bool batching = false;
  BatchConfig batch;
  // Request-centric telemetry (obs/request_timeline.h). request_ring bounds
  // the in-memory timeline buffer (oldest evicted first). When ttft_profile
  // is set, every cached kOk serve is compared against device_model's
  // estimate_cached_ttft(*ttft_profile, ttft_spec, ...) and the
  // measured/predicted ratio lands in the pc_ttft_model_drift histogram —
  // drift near 1.0 means the analytic model still tracks reality. slo
  // configures the rolling availability/deadline window (obs/sampler.h).
  size_t request_ring = 8192;
  const HardwareProfile* ttft_profile = nullptr;  // null = no drift tracking
  ModelSpec ttft_spec;
  obs::SloConfig slo;
  // Async disk-tier prefetch (sys/prefetch.h): a background binder thread
  // maps each submitted prompt to its module keys and faults spilled
  // payloads back into RAM ahead of admission, overlapping disk reads with
  // in-flight decode. Only meaningful with a shared store whose disk tier
  // is enabled; otherwise the pipeline idles (prefetch() of resident keys
  // is a recency bump). prefetch_depth is the double-buffer window.
  bool prefetch = false;
  size_t prefetch_depth = 2;
  // Completion hook, invoked under the server's lock for every recorded
  // response (any status) right before it is buffered — the shard router
  // uses it to observe completions without polling drain(). The callback
  // must be fast and must NOT call back into this Server (submit/drain/
  // stats deadlock on the held lock); enqueue and return.
  std::function<void(const ServerResponse&)> on_record;
  // When false, responses are handed to on_record only and never buffered
  // for drain() — the mode for a fronting router that owns the response
  // lifecycle. drain() then returns empty once all requests completed.
  bool retain_responses = true;
};

struct ServerStats {
  int n_workers = 0;
  bool shared_store = false;
  uint64_t submitted = 0;
  uint64_t completed = 0;  // served requests: ok + degraded
  uint64_t degraded = 0;   // full-prefill fallbacks (subset of completed)
  uint64_t shed = 0;
  uint64_t timeouts = 0;
  uint64_t failed = 0;
  uint64_t retries = 0;    // transient-fault retries across all requests
  uint64_t deadline_misses = 0;

  double wall_ms = 0;        // first submit -> last completion
  double throughput_rps = 0;  // completed / wall

  LatencyHistogram ttft;          // end-to-end, kOk serves
  LatencyHistogram degraded_ttft; // end-to-end, kDegraded serves
  LatencyHistogram engine_ttft;   // merged per-engine cached-serve TTFT

  // Summed per-worker engine counters.
  uint64_t modules_encoded = 0;
  uint64_t scaffolds_encoded = 0;
  uint64_t thrash_reencodes = 0;

  // Store-level: the shared store's snapshot, or the sum over private
  // stores. hit_rate = hits / (hits + misses).
  // Batching mode (ServerConfig::batching): iteration-loop and paged-KV
  // telemetry. Zero in worker-pool mode.
  bool batching = false;
  uint64_t batch_iterations = 0;
  uint64_t batch_tokens = 0;
  size_t kv_live_bytes = 0;
  size_t kv_peak_bytes = 0;
  size_t kv_module_bytes = 0;  // held once however many requests share them
  uint64_t kv_cow_copies = 0;

  ModuleStoreStats store;
  double store_hit_rate = 0;
  size_t resident_module_bytes = 0;
  // Bytes N private workers would hold that the shared store holds once:
  // resident_bytes * (n_workers - 1). Zero in private mode (nothing is
  // deduplicated — the duplication is real and shows up in
  // resident_module_bytes instead).
  size_t bytes_deduplicated = 0;
  uint64_t single_flight_waits = 0;  // encodes avoided by single-flight
};

class Server {
 public:
  // Shared-store serving: all workers encode into / serve from
  // `shared_store`, which must outlive the server.
  Server(const Model& model, const TextTokenizer& tokenizer,
         SharedModuleStore& shared_store, ServerConfig config);

  // Private-store serving: each worker owns a ModuleStore sized by
  // config.engine (the N-times-everything baseline).
  Server(const Model& model, const TextTokenizer& tokenizer,
         ServerConfig config);

  // Joins the pool (requests still queued are served first, as stop()).
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Enqueues a request; blocks while the queue is at capacity. Returns the
  // request id (== submission index). deadline_ms 0 uses the config default.
  // Throws pc::Error if the server is (or becomes, while blocked) stopped.
  // With a deadline, the request may be shed immediately (recorded as
  // kShed, id still returned) when the backlog makes it unmeetable.
  uint64_t submit(std::string prompt, const GenerateOptions& options = {},
                  double deadline_ms = 0);

  // Extended submit (sys/serve_types.h): per-request extra link stall,
  // forced full-prefill degradation, and a timeline annotation, on top of
  // the deadline. The plain overload forwards here with defaults.
  uint64_t submit(std::string prompt, const GenerateOptions& options,
                  const SubmitOptions& submit_options);

  // Blocks until every submitted request has been recorded (served, shed,
  // timed out, or failed), then returns the responses sorted by id (and
  // clears the internal buffer).
  std::vector<ServerResponse> drain();

  // Stops accepting work and joins the workers after the queue empties.
  // Idempotent; the destructor calls it.
  void stop();

  // Aggregate view. Only valid while idle (between drain() and the next
  // submit) — per-engine counters are unsynchronized during serving.
  ServerStats stats() const;

  // Observability exports (obs/export.h): the process-wide Prometheus text
  // dump (engine + store + server families under the pc_* naming scheme),
  // and the collected span trace as Perfetto JSON. Call while idle (after
  // drain()) for exact traces.
  std::string metrics_prometheus() const;
  bool write_trace_json(const std::string& path) const;

  // Request-centric telemetry. requests() exposes the bounded ring of
  // per-request timelines (one entry per recorded response, any status);
  // write_request_log() dumps it as JSONL — one timeline_json() object per
  // line, the same shape the PC_REQLOG live sink writes. slo_snapshot()
  // reads the rolling availability/deadline window fed by every recorded
  // response. All are exact only while idle (after drain()); under
  // -DPC_OBS=OFF they are inert stubs.
  const obs::RequestTracker& requests() const { return requests_; }
  bool write_request_log(const std::string& path) const {
    return requests_.write_jsonl(path);
  }
  obs::SloTracker::Snapshot slo_snapshot() const { return slo_.snapshot(); }
  bool write_slo_json(const std::string& path) const {
    return slo_.write_json(path);
  }

  int n_workers() const { return config_.n_workers; }

  // The async prefetch pipeline, or null (ServerConfig::prefetch off, or
  // private stores — there is no disk tier to fault from).
  const StorePrefetcher* prefetcher() const { return prefetcher_.get(); }

 private:
  struct Item {
    uint64_t id = 0;
    std::string prompt;
    GenerateOptions options;
    double deadline_ms = 0;
    std::chrono::steady_clock::time_point enqueued;
    CancellationToken token;  // armed iff deadline_ms > 0
    double extra_stall_ms = 0;     // SubmitOptions::extra_stall_ms
    bool force_full_prefill = false;
    std::string annotation;        // SubmitOptions::annotation
  };

  struct Worker {
    std::thread thread;
    std::unique_ptr<PromptCacheEngine> engine;  // built on `thread`
  };

  void start();
  void worker_loop(int index);
  void batch_loop();
  // Books a finished response (any status) under mutex_; the caller
  // notifies cv_done_ after releasing the lock.
  void record_locked(ServerResponse&& resp,
                     std::chrono::steady_clock::time_point when);
  // Assembles the RequestTimeline for a finished response and records it
  // (plus the TTFT-drift sample when ttft_profile is set). Runs under
  // mutex_ so timelines reconcile exactly with the pc_server_* counters.
  void record_timeline_locked(const ServerResponse& resp);
  // Perfetto flow id for a request: instance-qualified so two servers'
  // flow arcs never share an id within one process-wide trace.
  uint64_t flow_id(uint64_t id) const {
    return (instance_ << 32) | (id & 0xffffffffu);
  }

  const Model& model_;
  const TextTokenizer& tokenizer_;
  SharedModuleStore* shared_ = nullptr;  // null => private stores
  ServerConfig config_;

  std::vector<std::unique_ptr<Worker>> workers_;
  // Async prefetch pipeline (ServerConfig::prefetch); shared store only.
  std::unique_ptr<StorePrefetcher> prefetcher_;
  // Batching mode: the scheduler and its loop thread (workers_ stays
  // empty). Built on batch_thread_; read from stats() only while idle.
  std::unique_ptr<BatchScheduler> scheduler_;
  std::thread batch_thread_;

  mutable std::mutex mutex_;
  std::condition_variable cv_not_empty_;
  std::condition_variable cv_not_full_;
  std::condition_variable cv_done_;
  std::condition_variable cv_ready_;
  std::deque<Item> queue_;
  std::vector<ServerResponse> responses_;
  // Registry cells (pc_server_*). The cells are atomic, but every mutation
  // happens under mutex_, so reads under the lock (drain's completed ==
  // submitted predicate) are exact.
  obs::Counter submitted_;         // pc_server_submitted_total
  obs::Counter completed_;         // pc_server_completed_total (ok+degraded)
  obs::Counter degraded_;          // pc_server_degraded_total
  obs::Counter shed_;              // pc_server_shed_total
  obs::Counter timeouts_;          // pc_server_timeouts_total
  obs::Counter failed_;            // pc_server_failed_total
  obs::Counter retries_;           // pc_server_retries_total
  obs::Counter deadline_misses_;   // pc_server_deadline_misses_total
  obs::Gauge queue_depth_;         // pc_server_queue_depth
  obs::Histogram e2e_ttft_;        // pc_server_ttft_seconds; survives drain()
  obs::Histogram degraded_ttft_;   // pc_server_ttft_degraded_seconds
  obs::Histogram ttft_drift_;      // pc_ttft_model_drift (measured/predicted)
  // Request-centric telemetry: the timeline ring, the rolling SLO window,
  // and the submit timestamps of in-flight ids (consumed at record time).
  // All mutated under mutex_ (RequestTracker/SloTracker also lock
  // internally; the outer lock just keeps them in step with the counters).
  obs::RequestTracker requests_;
  obs::SloTracker slo_;
  std::map<uint64_t, uint64_t> submit_ns_;
  // Process-unique instance number: stamps timelines (request ids restart
  // at 0 per server but PC_REQLOG spans the process) and the high bits of
  // Perfetto flow ids so arcs from different servers never chain.
  const uint64_t instance_;
  uint64_t done_ = 0;        // responses recorded, any status (drain gate)
  // Requests dequeued but not yet recorded. Submit-time shedding estimates
  // the backlog from queue_.size() + in_service_ — counting only the queue
  // understates the wait whenever workers (or the batch loop) are busy,
  // which admitted doomed requests under full load.
  uint64_t in_service_ = 0;
  double service_ewma_ms_ = 0;  // served-request EWMA; drives shedding
  int workers_ready_ = 0;
  bool stop_ = false;
  bool clock_started_ = false;
  std::chrono::steady_clock::time_point first_submit_;
  std::chrono::steady_clock::time_point last_complete_;
};

}  // namespace pc
