#include "sys/server.h"

#include <algorithm>
#include <chrono>

#include "common/logging.h"
#include "obs/export.h"
#include "obs/trace.h"

namespace pc {

namespace {

double ms_between(std::chrono::steady_clock::time_point a,
                  std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

}  // namespace

Server::Server(const Model& model, const TextTokenizer& tokenizer,
               SharedModuleStore& shared_store, ServerConfig config)
    : model_(model),
      tokenizer_(tokenizer),
      shared_(&shared_store),
      config_(std::move(config)) {
  start();
}

Server::Server(const Model& model, const TextTokenizer& tokenizer,
               ServerConfig config)
    : model_(model), tokenizer_(tokenizer), config_(std::move(config)) {
  start();
}

Server::~Server() { stop(); }

void Server::start() {
  PC_CHECK_MSG(config_.n_workers > 0, "Server needs at least one worker");
  PC_CHECK_MSG(config_.queue_capacity > 0, "Server queue capacity must be > 0");
  auto& reg = obs::MetricsRegistry::global();
  submitted_ = reg.counter("pc_server_submitted_total", "requests submitted");
  completed_ = reg.counter("pc_server_completed_total", "requests completed");
  errors_ = reg.counter("pc_server_errors_total", "requests whose serve threw");
  deadline_misses_ =
      reg.counter("pc_server_deadline_misses_total", "deadline overruns");
  queue_depth_ = reg.gauge("pc_server_queue_depth", "requests waiting");
  e2e_ttft_ = reg.histogram("pc_server_ttft_seconds",
                            "end-to-end TTFT: queue + stall + engine");
  workers_.reserve(static_cast<size_t>(config_.n_workers));
  for (int i = 0; i < config_.n_workers; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  for (int i = 0; i < config_.n_workers; ++i) {
    workers_[static_cast<size_t>(i)]->thread =
        std::thread([this, i] { worker_loop(i); });
  }
  // Wait until every worker has built its engine and loaded the schemas:
  // serving wall time then measures serving, not startup. (Schema loads
  // race on purpose — with a shared store they exercise single-flight.)
  std::unique_lock lock(mutex_);
  cv_ready_.wait(lock, [&] { return workers_ready_ == config_.n_workers; });
  lock.unlock();
  PC_LOG_INFO << "server worker pool ready: " << config_.n_workers
              << " workers, "
              << (shared_ != nullptr ? "shared" : "private") << " store";
}

uint64_t Server::submit(std::string prompt, const GenerateOptions& options,
                        double deadline_ms) {
  std::unique_lock lock(mutex_);
  PC_CHECK_MSG(!stop_, "submit() on a stopped Server");
  cv_not_full_.wait(lock,
                    [&] { return queue_.size() < config_.queue_capacity; });
  const uint64_t id = submitted_.value();
  submitted_.inc();
  if (!clock_started_) {
    clock_started_ = true;
    first_submit_ = std::chrono::steady_clock::now();
  }
  queue_.push_back(Item{id, std::move(prompt), options,
                        deadline_ms > 0 ? deadline_ms
                                        : config_.default_deadline_ms,
                        std::chrono::steady_clock::now()});
  queue_depth_.add(1);
  lock.unlock();
  cv_not_empty_.notify_one();
  return id;
}

std::vector<ServerResponse> Server::drain() {
  std::unique_lock lock(mutex_);
  cv_done_.wait(lock, [&] { return completed_.value() == submitted_.value(); });
  std::vector<ServerResponse> out = std::move(responses_);
  responses_.clear();
  lock.unlock();
  std::sort(out.begin(), out.end(),
            [](const ServerResponse& a, const ServerResponse& b) {
              return a.id < b.id;
            });
  return out;
}

void Server::stop() {
  {
    std::lock_guard lock(mutex_);
    if (stop_) return;
    stop_ = true;
  }
  cv_not_empty_.notify_all();
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
}

void Server::worker_loop(int index) {
  obs::set_thread_name("worker" + std::to_string(index));
  Worker& self = *workers_[static_cast<size_t>(index)];
  self.engine =
      shared_ != nullptr
          ? std::make_unique<PromptCacheEngine>(model_, tokenizer_, *shared_,
                                                config_.engine)
          : std::make_unique<PromptCacheEngine>(model_, tokenizer_,
                                                config_.engine);
  for (const std::string& pml : config_.schemas) {
    self.engine->load_schema(pml);
  }
  {
    std::lock_guard lock(mutex_);
    ++workers_ready_;
  }
  cv_ready_.notify_all();

  for (;;) {
    Item item;
    {
      std::unique_lock lock(mutex_);
      cv_not_empty_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to serve
      item = std::move(queue_.front());
      queue_.pop_front();
      queue_depth_.sub(1);
    }
    cv_not_full_.notify_one();

    const auto dequeued = std::chrono::steady_clock::now();
    ServerResponse resp;
    resp.id = item.id;
    resp.worker = index;
    resp.queue_ms = ms_between(item.enqueued, dequeued);
    // Queue wait rides as an arg (not a sub-span): a retroactive wait span
    // would overlap the previous request on this lane and break nesting.
    PC_SPAN_NAMED(request_span, "serve_request",
                  {"request", static_cast<int64_t>(item.id)},
                  {"queue_us", static_cast<int64_t>(resp.queue_ms * 1e3)});
    try {
      resp.result = self.engine->serve(item.prompt, item.options);
      // Simulated host-link transfer for this request's host-resident
      // module bytes (see LinkModel in server.h). The sleep yields the
      // core, so transfers overlap across workers like real DMA.
      const double stall_s =
          config_.link.stall_s(resp.result.ttft.bytes_from_host);
      if (stall_s > 0) {
        PC_SPAN("link_stall",
                {"bytes", static_cast<int64_t>(
                              resp.result.ttft.bytes_from_host)});
        std::this_thread::sleep_for(std::chrono::duration<double>(stall_s));
        resp.stall_ms = stall_s * 1e3;
      }
      resp.ttft_ms =
          resp.queue_ms + resp.stall_ms + resp.result.ttft.total_ms();
    } catch (const std::exception& e) {
      resp.error = e.what();
      self.engine->release_borrowed_pins();  // drop pins of a failed serve
    }
    const auto done = std::chrono::steady_clock::now();
    resp.service_ms = ms_between(dequeued, done);
    if (item.deadline_ms > 0) {
      resp.deadline_met = resp.queue_ms + resp.service_ms <= item.deadline_ms;
    }

    {
      std::lock_guard lock(mutex_);
      if (!resp.error.empty()) {
        errors_.inc();
      } else {
        e2e_ttft_.record_ms(resp.ttft_ms);
      }
      if (!resp.deadline_met) deadline_misses_.inc();
      responses_.push_back(std::move(resp));
      completed_.inc();
      last_complete_ = done;
    }
    cv_done_.notify_all();
  }
}

ServerStats Server::stats() const {
  ServerStats out;
  out.n_workers = config_.n_workers;
  out.shared_store = shared_ != nullptr;
  {
    std::lock_guard lock(mutex_);
    out.submitted = submitted_.value();
    out.completed = completed_.value();
    out.errors = errors_.value();
    out.deadline_misses = deadline_misses_.value();
    out.ttft = e2e_ttft_.snapshot();
    if (clock_started_ && out.completed > 0) {
      out.wall_ms = ms_between(first_submit_, last_complete_);
    }
  }
  if (out.wall_ms > 0) {
    out.throughput_rps =
        static_cast<double>(out.completed) / (out.wall_ms / 1e3);
  }

  for (const auto& w : workers_) {
    if (w->engine == nullptr) continue;  // worker still constructing
    const EngineStats es = w->engine->stats();
    out.modules_encoded += es.modules_encoded;
    out.scaffolds_encoded += es.scaffolds_encoded;
    out.thrash_reencodes += es.thrash_reencodes;
    out.engine_ttft.merge(w->engine->cached_ttft_histogram());
    if (shared_ == nullptr) {
      const ModuleStoreStats ss = w->engine->store().stats();
      out.store.hits += ss.hits;
      out.store.misses += ss.misses;
      out.store.insertions += ss.insertions;
      out.store.evictions += ss.evictions;
      out.store.demotions += ss.demotions;
      out.store.promotions += ss.promotions;
      out.resident_module_bytes +=
          w->engine->store().usage(ModuleLocation::kDeviceMemory).used_bytes +
          w->engine->store().usage(ModuleLocation::kHostMemory).used_bytes;
    }
  }
  if (shared_ != nullptr) {
    out.store = shared_->stats();
    out.resident_module_bytes = shared_->resident_bytes();
    out.bytes_deduplicated =
        out.resident_module_bytes *
        static_cast<size_t>(std::max(0, config_.n_workers - 1));
    out.single_flight_waits = shared_->single_flight_waits();
  }
  const double lookups =
      static_cast<double>(out.store.hits + out.store.misses);
  if (lookups > 0) {
    out.store_hit_rate = static_cast<double>(out.store.hits) / lookups;
  }
  return out;
}

std::string Server::metrics_prometheus() const {
  return obs::prometheus_text();
}

bool Server::write_trace_json(const std::string& path) const {
  return obs::write_perfetto_trace(path);
}

}  // namespace pc
