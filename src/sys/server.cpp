#include "sys/server.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <sstream>

#include "common/logging.h"
#include "obs/clock.h"
#include "obs/export.h"
#include "obs/trace.h"
#include "sys/fault.h"

namespace pc {

namespace {

double ms_between(std::chrono::steady_clock::time_point a,
                  std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

void sleep_ms(double ms) {
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

// Timeline vocabulary for the store's KV format.
[[maybe_unused]] const char* precision_name(StorePrecision p) {
  switch (p) {
    case StorePrecision::kFp32:
      return "fp32";
    case StorePrecision::kFp16:
      return "fp16";
    case StorePrecision::kQ8:
      return "q8";
    case StorePrecision::kQ4:
      return "q4";
  }
  return "unknown";
}

[[maybe_unused]] uint64_t ms_to_ns(double ms) {
  return ms > 0 ? static_cast<uint64_t>(ms * 1e6) : 0;
}

}  // namespace

double retry_backoff_ms(const RetryPolicy& retry, uint64_t id, int attempt) {
  double ms = retry.backoff_base_ms *
              static_cast<double>(1ULL << std::min(attempt, 20));
  ms = std::min(ms, retry.backoff_max_ms);
  // Deterministic jitter in [0.5, 1.5) from (request id, attempt) —
  // workers retrying the same key desynchronize without a shared RNG.
  uint64_t x = id * 0x9e3779b97f4a7c15ULL + static_cast<uint64_t>(attempt) +
               0xd1b54a32d192ed03ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return ms * (0.5 + static_cast<double>(x >> 11) * 0x1.0p-53);
}

const char* to_string(ServeStatus s) {
  switch (s) {
    case ServeStatus::kOk:
      return "ok";
    case ServeStatus::kDegraded:
      return "degraded";
    case ServeStatus::kTimeout:
      return "timeout";
    case ServeStatus::kShed:
      return "shed";
    case ServeStatus::kFailed:
      return "failed";
  }
  return "unknown";
}

// Request ids restart at 0 in every Server; the instance number keeps
// timelines and flow ids distinguishable across servers in one process.
static uint64_t next_server_instance() {
  static std::atomic<uint64_t> next{0};
  return next.fetch_add(1, std::memory_order_relaxed);
}

Server::Server(const Model& model, const TextTokenizer& tokenizer,
               SharedModuleStore& shared_store, ServerConfig config)
    : model_(model),
      tokenizer_(tokenizer),
      shared_(&shared_store),
      config_(std::move(config)),
      requests_(config_.request_ring),
      slo_(config_.slo),
      instance_(next_server_instance()) {
  start();
}

Server::Server(const Model& model, const TextTokenizer& tokenizer,
               ServerConfig config)
    : model_(model),
      tokenizer_(tokenizer),
      config_(std::move(config)),
      requests_(config_.request_ring),
      slo_(config_.slo),
      instance_(next_server_instance()) {
  start();
}

Server::~Server() { stop(); }

void Server::start() {
  PC_CHECK_MSG(config_.batching || config_.n_workers > 0,
               "Server needs at least one worker");
  PC_CHECK_MSG(config_.queue_capacity > 0, "Server queue capacity must be > 0");
  PC_CHECK_MSG(config_.retry.max_retries >= 0,
               "RetryPolicy::max_retries must be >= 0");
  PC_CHECK_MSG(!config_.batching || config_.batch.max_batch > 0,
               "BatchConfig::max_batch must be > 0");
  auto& reg = obs::MetricsRegistry::global();
  submitted_ = reg.counter("pc_server_submitted_total", "requests submitted");
  completed_ = reg.counter("pc_server_completed_total",
                           "requests served (ok + degraded)");
  degraded_ = reg.counter("pc_server_degraded_total",
                          "requests served by full-prefill fallback");
  shed_ = reg.counter("pc_server_shed_total",
                      "requests rejected before service");
  timeouts_ = reg.counter("pc_server_timeouts_total",
                          "requests cancelled past their deadline");
  failed_ = reg.counter("pc_server_failed_total",
                        "requests whose serve threw non-transiently");
  retries_ = reg.counter("pc_server_retries_total",
                         "transient-fault serve retries");
  deadline_misses_ =
      reg.counter("pc_server_deadline_misses_total", "deadline overruns");
  queue_depth_ = reg.gauge("pc_server_queue_depth", "requests waiting");
  e2e_ttft_ = reg.histogram("pc_server_ttft_seconds",
                            "end-to-end TTFT: queue + stall + engine");
  degraded_ttft_ = reg.histogram("pc_server_ttft_degraded_seconds",
                                 "end-to-end TTFT of degraded serves");
  ttft_drift_ = reg.histogram(
      "pc_ttft_model_drift",
      "measured/predicted cached-TTFT ratio vs device_model");
  if (config_.prefetch && shared_ != nullptr) {
    // The pipeline needs somewhere to fault keys in from; without a shared
    // store there is no disk tier and the prefetcher would only burn a
    // thread binding prompts nobody looks up.
    PrefetcherConfig pf;
    pf.depth = config_.prefetch_depth;
    pf.engine = config_.engine;
    pf.schemas = config_.schemas;
    prefetcher_ = std::make_unique<StorePrefetcher>(model_, tokenizer_,
                                                    *shared_, std::move(pf));
  }
  if (config_.batching) {
    // One batch lane instead of a worker pool: a single thread owns the
    // scheduler and serves up to batch.max_batch requests per iteration.
    batch_thread_ = std::thread([this] { batch_loop(); });
    std::unique_lock lock(mutex_);
    cv_ready_.wait(lock, [&] { return workers_ready_ == 1; });
    lock.unlock();
    PC_LOG_INFO << "server batch loop ready: max_batch "
                << config_.batch.max_batch << ", "
                << (shared_ != nullptr ? "shared" : "private") << " store";
    return;
  }
  workers_.reserve(static_cast<size_t>(config_.n_workers));
  for (int i = 0; i < config_.n_workers; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  for (int i = 0; i < config_.n_workers; ++i) {
    workers_[static_cast<size_t>(i)]->thread =
        std::thread([this, i] { worker_loop(i); });
  }
  // Wait until every worker has built its engine and loaded the schemas:
  // serving wall time then measures serving, not startup. (Schema loads
  // race on purpose — with a shared store they exercise single-flight.)
  std::unique_lock lock(mutex_);
  cv_ready_.wait(lock, [&] { return workers_ready_ == config_.n_workers; });
  lock.unlock();
  PC_LOG_INFO << "server worker pool ready: " << config_.n_workers
              << " workers, "
              << (shared_ != nullptr ? "shared" : "private") << " store";
}

uint64_t Server::submit(std::string prompt, const GenerateOptions& options,
                        double deadline_ms) {
  SubmitOptions sopts;
  sopts.deadline_ms = deadline_ms;
  return submit(std::move(prompt), options, sopts);
}

uint64_t Server::submit(std::string prompt, const GenerateOptions& options,
                        const SubmitOptions& submit_options) {
  std::unique_lock lock(mutex_);
  PC_CHECK_MSG(!stop_, "submit() on a stopped Server");
  cv_not_full_.wait(lock, [&] {
    return stop_ || queue_.size() < config_.queue_capacity;
  });
  // stop() may have run while we were blocked on a full queue: no worker
  // will ever pop for us again, so unblock the caller with an error
  // instead of deadlocking (or silently dropping the request).
  if (stop_) {
    throw Error("submit() aborted: Server stopped while the queue was full");
  }
  const uint64_t id = submitted_.value();
  submitted_.inc();
  const auto enqueued = std::chrono::steady_clock::now();
  if (!clock_started_) {
    clock_started_ = true;
    first_submit_ = enqueued;
  }
  const double deadline = submit_options.deadline_ms > 0
                              ? submit_options.deadline_ms
                              : config_.default_deadline_ms;
  // Timeline anchor: the submit timestamp on the obs epoch clock, consumed
  // by record_timeline_locked when the terminal status lands.
  if constexpr (obs::kEnabled) {
    if (obs::request_telemetry_enabled()) submit_ns_[id] = obs::now_ns();
  }

  // Load shedding: when the backlog alone makes the deadline unmeetable
  // (estimated queue wait from the served-request EWMA), reject at submit —
  // an immediate kShed response — rather than let the request queue up and
  // time out after burning a worker. The backlog counts requests already in
  // service, not just the queue: with the queue momentarily empty but every
  // lane busy, a new request still waits a full service time.
  const uint64_t backlog = queue_.size() + in_service_;
  const double parallelism = static_cast<double>(
      config_.batching ? config_.batch.max_batch : config_.n_workers);
  if (deadline > 0 && service_ewma_ms_ > 0 && backlog > 0) {
    const double est_wait_ms =
        service_ewma_ms_ * (static_cast<double>(backlog) / parallelism);
    if (est_wait_ms > deadline) {
      ServerResponse resp;
      resp.id = id;
      resp.status = ServeStatus::kShed;
      resp.deadline_met = false;
      std::ostringstream os;
      os << "shed at submit: estimated queue wait " << est_wait_ms
         << " ms exceeds the " << deadline << " ms deadline";
      resp.detail = os.str();
      record_locked(std::move(resp), enqueued);
      lock.unlock();
      cv_done_.notify_all();
      return id;
    }
  }

  Item item;
  item.id = id;
  item.prompt = std::move(prompt);
  item.options = options;
  item.deadline_ms = deadline;
  item.enqueued = enqueued;
  item.extra_stall_ms = submit_options.extra_stall_ms;
  item.force_full_prefill = submit_options.force_full_prefill;
  item.annotation = submit_options.annotation;
  if (deadline > 0) {
    item.token = CancellationToken::with_deadline(
        enqueued + std::chrono::duration_cast<
                       std::chrono::steady_clock::duration>(
                       std::chrono::duration<double, std::milli>(deadline)));
  }
  // Kick the prefetch pipeline before the workers can race ahead: by the
  // time a worker (or the batch loop) picks this request up, its spilled
  // modules are faulting in — or already resident. enqueue() only touches
  // the prefetcher's leaf mutex, so calling it under mutex_ cannot
  // deadlock (the prefetcher never calls back into the server).
  if (prefetcher_ != nullptr) prefetcher_->enqueue(item.prompt);
  queue_.push_back(std::move(item));
  queue_depth_.add(1);
  lock.unlock();
  cv_not_empty_.notify_one();
  // Flow arc: ties this submit to the serve_request / batch_admit span on
  // whichever thread picks the request up (Perfetto draws the arrow).
  PC_FLOW_START("request", flow_id(id));
  return id;
}

std::vector<ServerResponse> Server::drain() {
  std::unique_lock lock(mutex_);
  cv_done_.wait(lock, [&] { return done_ == submitted_.value(); });
  std::vector<ServerResponse> out = std::move(responses_);
  responses_.clear();
  lock.unlock();
  std::sort(out.begin(), out.end(),
            [](const ServerResponse& a, const ServerResponse& b) {
              return a.id < b.id;
            });
  return out;
}

void Server::stop() {
  {
    std::lock_guard lock(mutex_);
    if (stop_) return;
    stop_ = true;
  }
  cv_not_empty_.notify_all();
  // Submitters blocked on a full queue must wake and observe stop_ (they
  // throw) — without this they would sleep forever once the workers exit.
  cv_not_full_.notify_all();
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
  if (batch_thread_.joinable()) batch_thread_.join();
  // After the serving threads: a prefetch racing shutdown is harmless, and
  // stopping last lets queued requests still benefit from the pipeline.
  if (prefetcher_ != nullptr) prefetcher_->stop();
}

void Server::record_locked(ServerResponse&& resp,
                           std::chrono::steady_clock::time_point when) {
  // Anything that was dequeued (worker >= 0) counted as in service;
  // submit-time sheds (worker == -1) never did.
  if (resp.worker >= 0) {
    PC_CHECK_MSG(in_service_ > 0, "in-service accounting underflow");
    --in_service_;
  }
  switch (resp.status) {
    case ServeStatus::kOk:
      completed_.inc();
      e2e_ttft_.record_ms(resp.ttft_ms);
      break;
    case ServeStatus::kDegraded:
      completed_.inc();
      degraded_.inc();
      degraded_ttft_.record_ms(resp.ttft_ms);
      break;
    case ServeStatus::kTimeout:
      timeouts_.inc();
      break;
    case ServeStatus::kShed:
      shed_.inc();
      break;
    case ServeStatus::kFailed:
      failed_.inc();
      break;
  }
  if (!resp.deadline_met) deadline_misses_.inc();
  if (is_served(resp.status)) {
    // Served-request EWMA: the backlog predictor behind submit-time
    // shedding.
    service_ewma_ms_ = service_ewma_ms_ <= 0
                           ? resp.service_ms
                           : 0.8 * service_ewma_ms_ + 0.2 * resp.service_ms;
  }
  // Request telemetry rides the same lock that moves the counters above,
  // so timelines and SLO outcomes reconcile with pc_server_* exactly —
  // not eventually.
  if constexpr (obs::kEnabled) {
    slo_.record(is_served(resp.status), resp.deadline_met);
    if (obs::request_telemetry_enabled()) {
      record_timeline_locked(resp);
    } else {
      submit_ns_.erase(resp.id);
    }
  }
  // The completion hook sees the response under the same lock that moved
  // the counters, so a router's view reconciles exactly with pc_server_*.
  // Contract (ServerConfig::on_record): the callback must not re-enter
  // this Server.
  if (config_.on_record) config_.on_record(resp);
  if (config_.retain_responses) responses_.push_back(std::move(resp));
  ++done_;
  last_complete_ = when;
}

void Server::record_timeline_locked(const ServerResponse& resp) {
  obs::RequestTimeline t;
  t.id = resp.id;
  t.server = instance_;
  t.lane = resp.worker;
  t.batched = config_.batching;
  const auto it = submit_ns_.find(resp.id);
  if (it != submit_ns_.end()) {
    t.submit_ns = it->second;
    submit_ns_.erase(it);
  }
  t.done_ns = obs::now_ns();
  // admit/first-token anchors are derived from the measured durations so
  // they stay consistent with the e2e TTFT definition (queue + stall +
  // engine TTFT) instead of introducing a second clock reading.
  if (resp.worker >= 0) t.admit_ns = t.submit_ns + ms_to_ns(resp.queue_ms);
  t.queue_ms = resp.queue_ms;
  t.transfer_ms = resp.stall_ms;
  t.service_ms = resp.service_ms;
  t.ttft_ms = resp.ttft_ms;
  t.outcome = static_cast<obs::RequestOutcome>(static_cast<int>(resp.status));
  t.retries = resp.retries;
  t.deadline_met = resp.deadline_met;
  t.detail = resp.detail;
  t.annotations = resp.annotations;
  t.module_misses = resp.module_misses;
  t.prefill_chunks = resp.prefill_chunks;
  t.kv_format = precision_name(config_.engine.precision);
  if (is_served(resp.status)) {
    const TtftBreakdown& b = resp.result.ttft;
    t.encode_ms = resp.result.encode_ms;
    t.retrieve_ms = b.retrieve_ms;
    t.prefill_ms = b.uncached_ms;
    t.decode_ms = resp.result.decode_ms;
    t.cached_tokens = b.cached_tokens;
    t.uncached_tokens = b.uncached_tokens;
    t.modules = b.modules;
    t.bytes_from_host = b.bytes_from_host;
    t.bytes_from_device = b.bytes_from_device;
    t.bytes_zero_copy = b.bytes_zero_copy;
    t.dequant_rows = b.dequant_rows;
    t.first_token_ns = t.submit_ns + ms_to_ns(resp.ttft_ms);
    if (config_.ttft_profile != nullptr && resp.status == ServeStatus::kOk &&
        b.cached_tokens > 0) {
      // TTFT-model drift: the analytic prediction for this request's exact
      // (cached, uncached, location, kv format), against the measured
      // engine TTFT (queue and link stall excluded on both sides — the
      // model predicts retrieve + prefill only). Ratio 1.0 = no drift.
      // CPU profiles have no device tier — cached states live in host RAM
      // regardless of which store tier served them.
      const ModuleLocation loc =
          config_.ttft_profile->is_gpu && b.bytes_from_host == 0
              ? ModuleLocation::kDeviceMemory
              : ModuleLocation::kHostMemory;
      size_t bytes_per_cached = 0;  // 0 = unquantized default
      switch (config_.engine.precision) {
        case StorePrecision::kQ8:
          bytes_per_cached = config_.ttft_spec.kv_bytes_per_token_q8();
          break;
        case StorePrecision::kQ4:
          bytes_per_cached = config_.ttft_spec.kv_bytes_per_token_q4();
          break;
        default:
          break;
      }
      const TtftEstimate est = estimate_cached_ttft(
          *config_.ttft_profile, config_.ttft_spec, b.cached_tokens,
          b.uncached_tokens, loc, bytes_per_cached);
      t.predicted_ttft_ms = est.total_ms();
      if (t.predicted_ttft_ms > 0) {
        ttft_drift_.record_seconds(b.total_ms() / t.predicted_ttft_ms);
      }
    }
  }
  requests_.record(std::move(t));
}

void Server::worker_loop(int index) {
  obs::set_thread_name("worker" + std::to_string(index));
  Worker& self = *workers_[static_cast<size_t>(index)];
  self.engine =
      shared_ != nullptr
          ? std::make_unique<PromptCacheEngine>(model_, tokenizer_, *shared_,
                                                config_.engine)
          : std::make_unique<PromptCacheEngine>(model_, tokenizer_,
                                                config_.engine);
  for (const std::string& pml : config_.schemas) {
    try {
      self.engine->load_schema(pml);
    } catch (const TransientError& e) {
      // An injected fault hit the eager-encode pass. The schema itself is
      // registered before encoding starts, so the missing modules are
      // re-encoded lazily by the first request that imports them.
      PC_LOG_WARN << "worker " << index
                  << ": eager encode failed at startup (" << e.what()
                  << "); modules will encode lazily";
    }
  }
  {
    std::lock_guard lock(mutex_);
    ++workers_ready_;
  }
  cv_ready_.notify_all();

  FaultInjector& faults = FaultInjector::global();
  const RetryPolicy& retry = config_.retry;

  for (;;) {
    Item item;
    {
      std::unique_lock lock(mutex_);
      cv_not_empty_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to serve
      item = std::move(queue_.front());
      queue_.pop_front();
      queue_depth_.sub(1);
      ++in_service_;
    }
    cv_not_full_.notify_one();

    const auto dequeued = std::chrono::steady_clock::now();
    ServerResponse resp;
    resp.id = item.id;
    resp.worker = index;
    resp.queue_ms = ms_between(item.enqueued, dequeued);

    // Deadline blown while queued: shed before any service work.
    if (item.token.expired()) {
      resp.status = ServeStatus::kShed;
      resp.detail = "shed at dequeue: deadline expired while queued";
      resp.deadline_met = false;
      resp.service_ms = 0;
      {
        std::lock_guard lock(mutex_);
        record_locked(std::move(resp), dequeued);
      }
      cv_done_.notify_all();
      continue;
    }

    // Queue wait rides as an arg (not a sub-span): a retroactive wait span
    // would overlap the previous request on this lane and break nesting.
    PC_SPAN_NAMED(request_span, "serve_request",
                  {"request", static_cast<int64_t>(item.id)},
                  {"queue_us", static_cast<int64_t>(resp.queue_ms * 1e3)});
    PC_FLOW_END("request", flow_id(item.id));

    // Per-request cache attribution: the encode counters are per-worker
    // engine cells and this worker serves one request at a time, so the
    // delta around the serve is exactly this request's module misses.
    const bool reqtl = obs::kEnabled && obs::request_telemetry_enabled();
    uint64_t encodes_before = 0;
    if (reqtl) {
      const EngineStats es = self.engine->stats();
      encodes_before = es.modules_encoded + es.scaffolds_encoded;
    }
    const auto annotate = [&](std::string note) {
      if (reqtl) resp.annotations.push_back(std::move(note));
    };

    // Injected straggler: the worker freezes before serving.
    if (faults.should_fail(FaultPoint::kStall)) {
      const double stall = faults.stall_ms(FaultPoint::kStall);
      PC_SPAN("fault_stall", {"ms", static_cast<int64_t>(stall)});
      annotate("fault_stall " + std::to_string(stall) + "ms");
      sleep_ms(stall);
    }

    // Routing / failover provenance from the submitter (the shard router)
    // lands first in the annotation stream, before any fault notes.
    if (!item.annotation.empty()) annotate(item.annotation);

    GenerateOptions options = item.options;
    options.cancel = item.token;

    // Backoff sleeps never overshoot the deadline: a retry the caller can
    // no longer use is pure wasted latency, so the sleep is capped at the
    // time remaining (the expiry check at the retry sites stops the ladder
    // entirely once the token fires).
    const auto deadline_tp =
        item.deadline_ms > 0
            ? item.enqueued +
                  std::chrono::duration_cast<
                      std::chrono::steady_clock::duration>(
                      std::chrono::duration<double, std::milli>(
                          item.deadline_ms))
            : std::chrono::steady_clock::time_point::max();
    const auto backoff = [&](int attempt) {
      double ms = retry_backoff_ms(retry, item.id, attempt);
      if (item.deadline_ms > 0) {
        const double remaining_ms =
            ms_between(std::chrono::steady_clock::now(), deadline_tp);
        ms = std::min(ms, std::max(0.0, remaining_ms));
      }
      sleep_ms(ms);
    };

    ServeStatus status = ServeStatus::kOk;
    // Fall back to full prefill: the cache layer could not produce the
    // modules, but the request is still answerable — bitwise-identically —
    // by recomputing everything (see serve_full_prefill).
    const auto degrade = [&](const std::string& why) {
      annotate("degraded: " + why);
      try {
        PC_SPAN("serve_degraded",
                {"request", static_cast<int64_t>(item.id)});
        resp.result = self.engine->serve_full_prefill(item.prompt, options);
        status = ServeStatus::kDegraded;
        resp.detail = why;
      } catch (const CancelledError& e) {
        status = ServeStatus::kTimeout;
        resp.detail = e.what();
      } catch (const std::exception& e) {
        status = ServeStatus::kFailed;
        resp.detail = e.what();
      }
    };

    if (item.force_full_prefill) {
      // The submitter decided the cache path cannot serve this request
      // (shard router: every replica holding its modules is down) — go
      // straight to the bitwise-identical full-prefill fallback.
      degrade(item.annotation.empty() ? "forced full prefill"
                                      : item.annotation);
    } else {
      for (int attempt = 0;; ++attempt) {
        try {
          resp.result = self.engine->serve(item.prompt, options);
          status = ServeStatus::kOk;
          break;
        } catch (const CancelledError& e) {
          self.engine->release_borrowed_pins();
          status = ServeStatus::kTimeout;
          resp.detail = e.what();
          break;
        } catch (const TransientError& e) {
          self.engine->release_borrowed_pins();
          // Retries stop the moment the deadline expires: another attempt
          // (and its backoff sleep) can only finish later than a caller who
          // is already gone.
          if (item.token.expired()) {
            status = ServeStatus::kTimeout;
            resp.detail = "deadline expired before retry";
            break;
          }
          if (attempt < retry.max_retries) {
            ++resp.retries;
            retries_.inc();
            PC_SPAN("serve_retry", {"attempt", attempt + 1});
            annotate("retry " + std::to_string(attempt + 1) + ": " + e.what());
            backoff(attempt);
            continue;
          }
          degrade(e.what());
          break;
        } catch (const CacheError& e) {
          // Structural, not transient (the module fits in neither tier under
          // current pin pressure): retrying cannot help, degrade directly.
          self.engine->release_borrowed_pins();
          degrade(e.what());
          break;
        } catch (const std::exception& e) {
          self.engine->release_borrowed_pins();
          status = ServeStatus::kFailed;
          resp.detail = e.what();
          break;
        }
      }
    }

    if (status == ServeStatus::kOk) {
      // Simulated host-link transfer for this request's host-resident
      // module bytes (see LinkModel in server.h). The sleep yields the
      // core, so transfers overlap across workers like real DMA. An
      // injected link fault loses the transfer: the worker re-sends it,
      // and after max_retries degrades to local recompute (a degraded
      // serve moves no module bytes).
      const double stall_s =
          config_.link.stall_s(resp.result.ttft.bytes_from_host);
      if (stall_s > 0) {
        for (int attempt = 0;; ++attempt) {
          {
            PC_SPAN("link_stall",
                    {"bytes", static_cast<int64_t>(
                                  resp.result.ttft.bytes_from_host)});
            sleep_ms(stall_s * 1e3);
            resp.stall_ms += stall_s * 1e3;
          }
          if (!faults.should_fail(FaultPoint::kLink)) break;
          if (attempt < retry.max_retries) {
            ++resp.retries;
            retries_.inc();
            PC_SPAN("serve_retry", {"attempt", attempt + 1});
            annotate("retry " + std::to_string(attempt + 1) +
                     ": host-link transfer lost");
            backoff(attempt);
            continue;
          }
          degrade("injected fault: host-link transfer lost");
          break;
        }
      }
      // Extra stall charged by the submitter (shard router: cross-shard
      // module fetches over its inter-shard link). Same overlap semantics
      // as the host link — the sleep yields the core.
      if (status == ServeStatus::kOk && item.extra_stall_ms > 0) {
        PC_SPAN("cross_shard_stall",
                {"ms", static_cast<int64_t>(item.extra_stall_ms)});
        sleep_ms(item.extra_stall_ms);
        resp.stall_ms += item.extra_stall_ms;
      }
    }

    const auto done = std::chrono::steady_clock::now();
    resp.service_ms = ms_between(dequeued, done);
    // Deadline enforcement at completion: a serve that finished past its
    // deadline is a timeout even if no cancellation point fired — the
    // caller is gone. This keeps deadline_met consistent with the status:
    // is_served(status) implies deadline_met.
    if (is_served(status) && item.token.expired()) {
      status = ServeStatus::kTimeout;
      resp.detail = "deadline expired during service";
    }
    resp.deadline_met = item.deadline_ms <= 0 || !item.token.expired();
    if (is_served(status)) {
      resp.ttft_ms =
          resp.queue_ms + resp.stall_ms + resp.result.ttft.total_ms();
    }
    resp.status = status;
    if (!is_served(status)) resp.result = ServeResult{};
    if (reqtl) {
      const EngineStats es = self.engine->stats();
      resp.module_misses = static_cast<int>(es.modules_encoded +
                                            es.scaffolds_encoded -
                                            encodes_before);
    }

    {
      std::lock_guard lock(mutex_);
      record_locked(std::move(resp), done);
    }
    cv_done_.notify_all();
  }
}

void Server::batch_loop() {
  obs::set_thread_name("batcher");
  BatchScheduler::Options opts;
  opts.engine = config_.engine;
  opts.schemas = config_.schemas;
  opts.batch = config_.batch;
  opts.link = config_.link;
  opts.retry = config_.retry;
  opts.flow_seed = instance_ << 32;
  scheduler_ = std::make_unique<BatchScheduler>(
      model_, tokenizer_, shared_, std::move(opts),
      [this](ServerResponse&& resp) {
        const auto now = std::chrono::steady_clock::now();
        {
          std::lock_guard lock(mutex_);
          // Workers count retries as they happen; the scheduler reports
          // them per response.
          if (resp.retries > 0) {
            retries_.inc(static_cast<uint64_t>(resp.retries));
          }
          record_locked(std::move(resp), now);
        }
        cv_done_.notify_all();
      });
  {
    std::lock_guard lock(mutex_);
    ++workers_ready_;
  }
  cv_ready_.notify_all();

  for (;;) {
    // Admit as many queued requests as the batch has slots for; block only
    // when there is nothing to do at all.
    std::vector<BatchScheduler::Request> admits;
    {
      std::unique_lock lock(mutex_);
      if (scheduler_->idle()) {
        cv_not_empty_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      }
      if (stop_ && queue_.empty() && scheduler_->idle()) return;
      while (!queue_.empty() &&
             scheduler_->active_requests() + static_cast<int>(admits.size()) <
                 config_.batch.max_batch) {
        Item item = std::move(queue_.front());
        queue_.pop_front();
        queue_depth_.sub(1);
        ++in_service_;
        BatchScheduler::Request req;
        req.id = item.id;
        req.prompt = std::move(item.prompt);
        req.options = item.options;
        req.deadline_ms = item.deadline_ms;
        req.enqueued = item.enqueued;
        req.token = item.token;
        req.extra_stall_ms = item.extra_stall_ms;
        req.force_full_prefill = item.force_full_prefill;
        req.annotation = std::move(item.annotation);
        admits.push_back(std::move(req));
      }
    }
    if (!admits.empty()) cv_not_full_.notify_all();
    for (auto& r : admits) scheduler_->admit(std::move(r));
    scheduler_->step();
  }
}

ServerStats Server::stats() const {
  ServerStats out;
  out.n_workers = config_.batching ? 1 : config_.n_workers;
  out.shared_store = shared_ != nullptr;
  {
    std::lock_guard lock(mutex_);
    out.submitted = submitted_.value();
    out.completed = completed_.value();
    out.degraded = degraded_.value();
    out.shed = shed_.value();
    out.timeouts = timeouts_.value();
    out.failed = failed_.value();
    out.retries = retries_.value();
    out.deadline_misses = deadline_misses_.value();
    out.ttft = e2e_ttft_.snapshot();
    out.degraded_ttft = degraded_ttft_.snapshot();
    if (clock_started_ && done_ > 0) {
      out.wall_ms = ms_between(first_submit_, last_complete_);
    }
  }
  if (out.wall_ms > 0) {
    out.throughput_rps =
        static_cast<double>(out.completed) / (out.wall_ms / 1e3);
  }

  if (config_.batching && scheduler_ != nullptr) {
    out.batching = true;
    out.batch_iterations = scheduler_->iterations();
    out.batch_tokens = scheduler_->batched_tokens();
    const BatchKVStats kv = scheduler_->kv_stats();
    out.kv_live_bytes = kv.live_bytes;
    out.kv_peak_bytes = kv.peak_live_bytes;
    out.kv_module_bytes = kv.module_bytes;
    out.kv_cow_copies = kv.cow_copies;
    PromptCacheEngine& engine = scheduler_->engine();
    const EngineStats es = engine.stats();
    out.modules_encoded += es.modules_encoded;
    out.scaffolds_encoded += es.scaffolds_encoded;
    out.thrash_reencodes += es.thrash_reencodes;
    out.engine_ttft.merge(scheduler_->ttft_histogram());
    if (shared_ == nullptr) {
      const ModuleStoreStats ss = engine.store().stats();
      out.store.hits += ss.hits;
      out.store.misses += ss.misses;
      out.store.insertions += ss.insertions;
      out.store.evictions += ss.evictions;
      out.store.demotions += ss.demotions;
      out.store.promotions += ss.promotions;
      out.resident_module_bytes +=
          engine.store().usage(ModuleLocation::kDeviceMemory).used_bytes +
          engine.store().usage(ModuleLocation::kHostMemory).used_bytes;
    }
  }
  for (const auto& w : workers_) {
    if (w->engine == nullptr) continue;  // worker still constructing
    const EngineStats es = w->engine->stats();
    out.modules_encoded += es.modules_encoded;
    out.scaffolds_encoded += es.scaffolds_encoded;
    out.thrash_reencodes += es.thrash_reencodes;
    out.engine_ttft.merge(w->engine->cached_ttft_histogram());
    if (shared_ == nullptr) {
      const ModuleStoreStats ss = w->engine->store().stats();
      out.store.hits += ss.hits;
      out.store.misses += ss.misses;
      out.store.insertions += ss.insertions;
      out.store.evictions += ss.evictions;
      out.store.demotions += ss.demotions;
      out.store.promotions += ss.promotions;
      out.resident_module_bytes +=
          w->engine->store().usage(ModuleLocation::kDeviceMemory).used_bytes +
          w->engine->store().usage(ModuleLocation::kHostMemory).used_bytes;
    }
  }
  if (shared_ != nullptr) {
    out.store = shared_->stats();
    out.resident_module_bytes = shared_->resident_bytes();
    out.bytes_deduplicated =
        out.resident_module_bytes *
        static_cast<size_t>(
            config_.batching ? 0 : std::max(0, config_.n_workers - 1));
    out.single_flight_waits = shared_->single_flight_waits();
  }
  const double lookups =
      static_cast<double>(out.store.hits + out.store.misses);
  if (lookups > 0) {
    out.store_hit_rate = static_cast<double>(out.store.hits) / lookups;
  }
  return out;
}

std::string Server::metrics_prometheus() const {
  return obs::prometheus_text();
}

bool Server::write_trace_json(const std::string& path) const {
  return obs::write_perfetto_trace(path);
}

}  // namespace pc
