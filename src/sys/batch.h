// Continuous-batching scheduler: one iteration loop serving many in-flight
// requests, with paged KV sharing across them (paper §3.4).
//
// Instead of a worker pool running one request per thread (sys/server.h's
// default mode), a single loop repeatedly builds one batched forward step
// (Model::forward_batch) out of whatever every active request needs next —
// a prefill chunk for requests still reading their prompt, one decode token
// for requests already generating — and requests join and leave the batch
// at token granularity (continuous batching, Yu et al. OSDI'22). New
// requests are admitted the iteration after they arrive; finished requests
// free their slot immediately.
//
// The KV layer is where §3.4's batch-inference memory optimization lands:
//
//   * Every imported module is materialized ONCE into a paged rendition
//     (PagedKVCache built over this scheduler's PagedKVPool) keyed by the
//     module's store key. Requests attach it with append_shared: full pages
//     are shared read-only by reference (refcount++, zero bytes moved), and
//     a trailing partially-filled page is copy-on-write duplicated so the
//     request's suffix can keep filling it. Eight requests importing the
//     same 3 modules hold ONE copy of those modules' pages.
//   * Uncached prompt tokens and decode tokens land in private zero-filled
//     pages owned by the request, released when it completes.
//
// Determinism contract: batched serving emits bitwise-identical tokens to
// sequential serving. Model::forward_batch keeps every per-row computation
// bitwise equal to forward(), chunked prefill only splits rows across
// iterations (row i's values depend only on rows <= i), and the decode loop
// below replays Model::generate_impl's exact sampling order with a
// per-request Rng(options.seed). tests/test_batch_serve.cpp asserts this
// for batch sizes 1/2/4/8 with and without shared modules.
//
// Fault/deadline semantics mirror the worker pool (docs/INTERNALS.md §9-10):
// same ServeStatus taxonomy, same retry/degrade ladder (degradation runs
// serve_full_prefill synchronously — rare by construction, so stalling the
// loop briefly beats duplicating the blocked-prefill path), same
// deadline-at-completion check. Simulated host-link transfers (LinkModel)
// become a per-request kTransfer phase with a ready-timestamp instead of a
// blocking sleep, so one request's transfer overlaps other requests'
// compute exactly as DMA overlaps kernels.
//
// Threading: the scheduler is single-threaded — one thread calls admit()
// and step(); completions are handed to the constructor's callback on that
// thread. sys/server.h wraps it in a queue + dedicated batch thread.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "common/histogram.h"
#include "core/engine.h"
#include "core/shared_module_store.h"
#include "kv/paged_cache.h"
#include "kv/paged_pool.h"
#include "model/model.h"
#include "obs/metrics.h"
#include "sys/serve_types.h"

namespace pc {

struct BatchConfig {
  int max_batch = 8;      // max concurrently active requests
  int chunk_tokens = 32;  // prefill tokens contributed per iteration
  int page_tokens = 16;   // KV pool page granularity (tokens per page)
};

// Paged-KV footprint of the batch path, from the pool's accounting.
struct BatchKVStats {
  size_t live_bytes = 0;      // referenced pages right now
  size_t peak_live_bytes = 0; // high-water mark across the run
  size_t module_bytes = 0;    // pages held by shared module renditions
  uint64_t pages_allocated = 0;
  uint64_t cow_copies = 0;
};

class BatchScheduler {
 public:
  struct Options {
    // precision must be kFp32, kQ8, or kQ4: fp32 module pages are read in
    // place by the gathered attention kernel; quantized module pages stay
    // quantized and are scored in the integer domain (attn_fused_q8_gather
    // / attn_fused_q4_gather). fp16 has no in-place kernel.
    EngineConfig engine;
    std::vector<std::string> schemas;  // PML loaded at construction
    BatchConfig batch;
    LinkModel link;
    RetryPolicy retry;
    // High bits for Perfetto flow ids (the owning server's instance tag);
    // the low 32 bits are the request id. Matches Server::flow_id.
    uint64_t flow_seed = 0;
  };

  // A request handed over by the frontend (mirrors Server's queue item).
  struct Request {
    uint64_t id = 0;
    std::string prompt;
    GenerateOptions options;
    double deadline_ms = 0;
    std::chrono::steady_clock::time_point enqueued;
    CancellationToken token;  // armed iff deadline_ms > 0
    // SubmitOptions pass-through (sys/serve_types.h): extra stall folds
    // into the request's kTransfer phase, forced degradation runs the
    // full-prefill fallback at admission, the annotation lands first in
    // the timeline.
    double extra_stall_ms = 0;
    bool force_full_prefill = false;
    std::string annotation;
  };

  // Called once per admitted request, on the scheduler's thread, when its
  // response is final (any status).
  using CompletionFn = std::function<void(ServerResponse&&)>;

  // `shared` may be null (the engine then owns a private ModuleStore sized
  // by options.engine). Loads options.schemas; an injected encode fault
  // during eager encoding is tolerated (modules re-encode lazily).
  BatchScheduler(const Model& model, const TextTokenizer& tokenizer,
                 SharedModuleStore* shared, Options options,
                 CompletionFn on_complete);
  ~BatchScheduler();

  BatchScheduler(const BatchScheduler&) = delete;
  BatchScheduler& operator=(const BatchScheduler&) = delete;

  bool has_capacity() const {
    return static_cast<int>(active_.size()) < options_.batch.max_batch;
  }
  bool idle() const { return active_.empty(); }
  int active_requests() const { return static_cast<int>(active_.size()); }

  // Binds, encodes, and assembles the request's paged cache, then places it
  // in the iteration loop (or completes it immediately: shed past deadline,
  // degraded, failed). Transient encode faults retry with the same backoff
  // ladder as the worker pool.
  void admit(Request request);

  // Runs one batched iteration: gathers every active request's next work
  // item, executes one forward_batch, samples, and completes finished
  // requests. Returns true while any request remains active. Sleeps briefly
  // (bounded by the earliest transfer-ready time, max 1 ms) when every
  // active request is mid-transfer.
  bool step();

  // Telemetry (single-threaded with admit/step, like the engine's stats).
  PromptCacheEngine& engine() const { return *engine_; }
  const PagedKVPool& pool() const { return pool_; }
  BatchKVStats kv_stats() const;
  uint64_t iterations() const { return iterations_.value(); }
  uint64_t batched_tokens() const { return batch_tokens_.value(); }
  // Engine-side TTFT (retrieve + prefill-to-first-token) of batch-served
  // requests; merge into fleet percentiles like engine histograms.
  LatencyHistogram ttft_histogram() const { return ttft_.snapshot(); }

 private:
  enum class Phase { kTransfer, kPrefill, kDecode };

  struct Seq {
    Request req;
    ServerResponse resp;
    ServeResult result;
    Phase phase = Phase::kPrefill;
    std::chrono::steady_clock::time_point dequeued;

    // kTransfer: the simulated host-link transfer completes at `ready`.
    std::chrono::steady_clock::time_point transfer_ready;
    double transfer_ms = 0;  // one transfer's duration (re-paid on retry)
    int link_attempts = 0;

    PagedKVCache cache;
    UncachedStream stream;  // uncached prompt tokens (incl. kickoff)
    size_t prefill_done = 0;
    bool prefill_started = false;
    std::chrono::steady_clock::time_point prefill_start;

    int gen_start = 0;  // first generated token's position id
    Rng rng;            // replays generate_impl's sampling stream
    TokenId next = 0;   // candidate token awaiting emission checks
    int step_idx = 0;   // generate_impl's `step`
    std::vector<TokenId> gen_tokens;
    FinishReason finish = FinishReason::kLength;
    std::chrono::steady_clock::time_point decode_start;
    // Stable storage for the one-token decode span handed to forward_batch.
    TokenId decode_tok = 0;
    int decode_pos = 0;

    bool done = false;  // completion decided; swept after the iteration
    ServeStatus done_status = ServeStatus::kOk;

    Seq(Request r, PagedKVPool& pool, int n_layers, int kv_dim)
        : req(std::move(r)),
          cache(pool, n_layers, kv_dim),
          rng(req.options.seed) {}
  };

  // Materializes (once) and attaches the binding's module pages to
  // seq.cache; fills retrieve/byte accounting. May throw what
  // for_each_encoded throws (TransientError, CacheError).
  void assemble_paged(const pml::PromptBinding& binding, Seq& seq);

  // generate_impl's loop head for the candidate in seq.next: emission
  // checks and finish bookkeeping. Returns true when the sequence is done
  // (seq.finish set); false when it needs one forward of seq.next.
  bool advance_decode(Seq& seq);

  // Synchronous full-prefill fallback (mirrors the worker's degrade()):
  // marks the sequence done with kDegraded (or kTimeout/kFailed if the
  // fallback itself fails).
  void degrade(Seq& seq, const std::string& why);

  // Books the final response (from seq->done_status) and invokes
  // on_complete.
  void finish_serve(std::unique_ptr<Seq> seq);

  double backoff_ms_for(uint64_t id, int attempt) const;
  size_t module_bytes() const;
  void refresh_kv_gauges();

  const Model& model_;
  const TextTokenizer& tokenizer_;
  Options options_;
  CompletionFn on_complete_;

  // Destruction order matters: the pool must outlive every PagedKVCache
  // built over it (module renditions and active sequences below).
  PagedKVPool pool_;
  std::unique_ptr<PromptCacheEngine> engine_;
  // Shared module renditions, keyed by store key; one per module, attached
  // by reference to every importing request.
  std::map<std::string, PagedKVCache> paged_modules_;
  std::vector<std::unique_ptr<Seq>> active_;

  obs::Counter iterations_;    // pc_batch_iterations_total
  obs::Counter batch_tokens_;  // pc_batch_tokens_total
  obs::Counter admitted_;      // pc_batch_admitted_total
  obs::Gauge active_gauge_;    // pc_batch_active
  obs::Gauge kv_live_;         // pc_batch_kv_live_bytes
  obs::Gauge kv_peak_;         // pc_batch_kv_peak_bytes
  obs::Gauge kv_modules_;      // pc_batch_kv_module_bytes
  obs::Histogram ttft_;        // pc_batch_ttft_engine_seconds
  size_t peak_live_bytes_ = 0;
};

}  // namespace pc
