#include "sys/batch.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/logging.h"
#include "common/timer.h"
#include "obs/request_timeline.h"
#include "obs/trace.h"
#include "sys/fault.h"

namespace pc {

namespace {

double ms_between(std::chrono::steady_clock::time_point a,
                  std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

std::chrono::steady_clock::duration from_ms(double ms) {
  return std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double, std::milli>(ms));
}

// Index of the stop sequence forming a suffix of `out`, or -1 (mirrors the
// decode loop in model.cpp).
int matched_stop_sequence(const std::vector<TokenId>& out,
                          const GenerateOptions& options) {
  for (size_t s = 0; s < options.stop_sequences.size(); ++s) {
    const auto& seq = options.stop_sequences[s];
    if (seq.empty() || seq.size() > out.size()) continue;
    if (std::equal(seq.begin(), seq.end(), out.end() - seq.size())) {
      return static_cast<int>(s);
    }
  }
  return -1;
}

}  // namespace

BatchScheduler::BatchScheduler(const Model& model,
                               const TextTokenizer& tokenizer,
                               SharedModuleStore* shared, Options options,
                               CompletionFn on_complete)
    : model_(model),
      tokenizer_(tokenizer),
      options_(std::move(options)),
      on_complete_(std::move(on_complete)),
      pool_(options_.batch.page_tokens, model.kv_bytes_per_token(),
            Q8TokenLayout{model.config().n_layers, model.config().kv_dim()}
                .stride(),
            Q4TokenLayout{model.config().n_layers, model.config().kv_dim()}
                .stride()) {
  PC_CHECK_MSG(options_.batch.max_batch > 0, "BatchConfig::max_batch must be > 0");
  PC_CHECK_MSG(options_.batch.chunk_tokens > 0,
               "BatchConfig::chunk_tokens must be > 0");
  PC_CHECK_MSG(options_.batch.page_tokens > 0,
               "BatchConfig::page_tokens must be > 0");
  PC_CHECK_MSG(options_.engine.precision == StorePrecision::kFp32 ||
                   options_.engine.precision == StorePrecision::kQ8 ||
                   options_.engine.precision == StorePrecision::kQ4,
               "batched serving requires kFp32, kQ8, or kQ4 module storage "
               "(pages are read in place by the gathered attention kernels; "
               "fp16 has no in-place kernel)");
  PC_CHECK_MSG(on_complete_ != nullptr,
               "BatchScheduler needs a completion callback");
  engine_ = shared != nullptr
                ? std::make_unique<PromptCacheEngine>(model_, tokenizer_,
                                                      *shared, options_.engine)
                : std::make_unique<PromptCacheEngine>(model_, tokenizer_,
                                                      options_.engine);
  for (const std::string& pml : options_.schemas) {
    try {
      engine_->load_schema(pml);
    } catch (const TransientError& e) {
      // Same recovery as a worker: the schema registered before encoding
      // started, so missing modules re-encode lazily on first import.
      PC_LOG_WARN << "batch scheduler: eager encode failed at startup ("
                  << e.what() << "); modules will encode lazily";
    }
  }
  auto& reg = obs::MetricsRegistry::global();
  iterations_ = reg.counter("pc_batch_iterations_total",
                            "batched forward iterations executed");
  batch_tokens_ = reg.counter("pc_batch_tokens_total",
                              "tokens processed by batched iterations");
  admitted_ = reg.counter("pc_batch_admitted_total",
                          "requests admitted into the batch loop");
  active_gauge_ = reg.gauge("pc_batch_active", "requests in the batch loop");
  kv_live_ = reg.gauge("pc_batch_kv_live_bytes",
                       "paged KV pool bytes currently referenced");
  kv_peak_ = reg.gauge("pc_batch_kv_peak_bytes",
                       "paged KV pool live-byte high-water mark");
  kv_modules_ = reg.gauge("pc_batch_kv_module_bytes",
                          "paged KV bytes held by shared module renditions");
  ttft_ = reg.histogram("pc_batch_ttft_engine_seconds",
                        "engine-side TTFT of batch-served requests");
}

BatchScheduler::~BatchScheduler() = default;

double BatchScheduler::backoff_ms_for(uint64_t id, int attempt) const {
  // Shared with the worker pool (retry_backoff_ms, sys/serve_types.h) so
  // the two modes retry on identical deterministic schedules.
  return retry_backoff_ms(options_.retry, id, attempt);
}

void BatchScheduler::assemble_paged(const pml::PromptBinding& binding,
                                    Seq& seq) {
  WallTimer retrieve_timer;
  PC_SPAN("kv_concat_paged",
          {"modules", static_cast<int64_t>(binding.modules.size())});
  TtftBreakdown& ttft = seq.result.ttft;
  engine_->for_each_encoded(
      binding, [&](const std::string& key, const EncodedModule& m,
                   ModuleLocation loc) {
        const size_t text_bytes =
            m.bytes_per_token() * static_cast<size_t>(m.text_token_count());
        auto it = paged_modules_.find(key);
        if (it == paged_modules_.end()) {
          PC_CHECK_MSG((m.precision == StorePrecision::kFp32 &&
                        m.kv32.has_value()) ||
                           m.precision == StorePrecision::kQ8 ||
                           m.precision == StorePrecision::kQ4,
                       "batched serving requires kFp32, kQ8, or kQ4 module "
                       "storage (module '" << key << "' is stored as fp16, "
                       "which has no in-place attention kernel)");
          // First import fleet-wide: materialize the module's text rows
          // into a packed paged rendition. The bytes cross a tier link
          // once; every later importer attaches the same pages. Quantized
          // modules land in quantized pages (~4x smaller for q8, ~8x for
          // q4) that importers score in the integer domain — never
          // dequantized.
          PagedKVCache rendition(pool_, model_.config().n_layers,
                                 model_.config().kv_dim());
          for (const auto& [begin, end] : m.text_row_ranges) {
            if (m.precision == StorePrecision::kQ8) {
              rendition.append_copy_q8(m.kv8_layers, m.pos_ids, begin, end);
            } else if (m.precision == StorePrecision::kQ4) {
              rendition.append_copy_q4(m.kv4_layers, m.pos_ids, begin, end);
            } else {
              rendition.append_copy(*m.kv32, begin, end);
            }
          }
          it = paged_modules_.emplace(key, std::move(rendition)).first;
          if (loc == ModuleLocation::kHostMemory) {
            ttft.bytes_from_host += text_bytes;
          } else {
            ttft.bytes_from_device += text_bytes;
          }
        } else {
          // Already paged: shared by reference, nothing moves.
          ttft.bytes_zero_copy += text_bytes;
        }
        seq.cache.append_shared(it->second);
        ttft.cached_tokens += m.text_token_count();
        ++ttft.modules;
      });
  ttft.retrieve_ms = retrieve_timer.elapsed_ms();
}

void BatchScheduler::degrade(Seq& seq, const std::string& why) {
  if (obs::request_telemetry_enabled()) {
    seq.resp.annotations.push_back("degraded: " + why);
  }
  try {
    PC_SPAN("serve_degraded", {"request", static_cast<int64_t>(seq.req.id)});
    seq.result = engine_->serve_full_prefill(seq.req.prompt, seq.req.options);
    seq.done_status = ServeStatus::kDegraded;
    seq.resp.detail = why;
  } catch (const CancelledError& e) {
    seq.done_status = ServeStatus::kTimeout;
    seq.resp.detail = e.what();
  } catch (const std::exception& e) {
    seq.done_status = ServeStatus::kFailed;
    seq.resp.detail = e.what();
  }
  seq.done = true;
}

void BatchScheduler::finish_serve(std::unique_ptr<Seq> seq) {
  const auto done = std::chrono::steady_clock::now();
  ServeStatus status = seq->done_status;
  ServerResponse resp = std::move(seq->resp);
  resp.service_ms = ms_between(seq->dequeued, done);
  // Deadline enforcement at completion (same rule as the worker pool): a
  // serve that finished past its deadline is a timeout even if no
  // cancellation point fired.
  if (is_served(status) && seq->req.token.expired()) {
    status = ServeStatus::kTimeout;
    resp.detail = "deadline expired during service";
  }
  resp.deadline_met = seq->req.deadline_ms <= 0 || !seq->req.token.expired();
  if (is_served(status)) {
    resp.result = std::move(seq->result);
    resp.ttft_ms = resp.queue_ms + resp.stall_ms + resp.result.ttft.total_ms();
    if (status == ServeStatus::kOk) {
      ttft_.record_seconds(resp.result.ttft.total_ms() / 1e3);
    }
  } else {
    resp.result = ServeResult{};
  }
  resp.status = status;
  // Release the sequence's pages and settle the KV gauges BEFORE the
  // completion callback fires. The callback is what lets drain() return,
  // so any pool or gauge write after it races a caller that reads stats()
  // the moment drain() wakes.
  seq.reset();
  refresh_kv_gauges();
  on_complete_(std::move(resp));
}

void BatchScheduler::admit(Request request) {
  const auto dequeued = std::chrono::steady_clock::now();
  admitted_.inc();
  auto seq = std::make_unique<Seq>(std::move(request), pool_,
                                   model_.config().n_layers,
                                   model_.config().kv_dim());
  seq->dequeued = dequeued;
  seq->resp.id = seq->req.id;
  seq->resp.worker = 0;  // the single batch lane
  seq->resp.queue_ms = ms_between(seq->req.enqueued, dequeued);

  // Deadline blown while queued: shed before any service work.
  if (seq->req.token.expired()) {
    ServerResponse resp = std::move(seq->resp);
    resp.status = ServeStatus::kShed;
    resp.detail = "shed at dequeue: deadline expired while queued";
    resp.deadline_met = false;
    resp.service_ms = 0;
    seq.reset();  // the empty cache still must not outlive the callback
    on_complete_(std::move(resp));
    return;
  }

  PC_SPAN_NAMED(admit_span, "batch_admit",
                {"request", static_cast<int64_t>(seq->req.id)},
                {"queue_us", static_cast<int64_t>(seq->resp.queue_ms * 1e3)});
  PC_FLOW_END("request", options_.flow_seed | (seq->req.id & 0xffffffffu));

  // Per-request cache attribution (same scheme as the worker pool): the
  // batch lane owns the one engine, and admission is serialized on this
  // thread, so the encode-counter delta around admission is exactly this
  // request's module misses.
  const bool reqtl = obs::request_telemetry_enabled();
  // Routing / failover provenance from the submitter lands first in the
  // annotation stream, before any fault notes (same order as the worker
  // pool).
  if (reqtl && !seq->req.annotation.empty()) {
    seq->resp.annotations.push_back(seq->req.annotation);
  }
  uint64_t encodes_before = 0;
  if (reqtl) {
    const EngineStats es = engine_->stats();
    encodes_before = es.modules_encoded + es.scaffolds_encoded;
  }
  const auto settle_misses = [&](Seq& s) {
    if (!reqtl) return;
    const EngineStats es = engine_->stats();
    s.resp.module_misses = static_cast<int>(
        es.modules_encoded + es.scaffolds_encoded - encodes_before);
  };

  FaultInjector& faults = FaultInjector::global();
  // Injected straggler: the batch lane freezes before admission, exactly
  // as a worker would before serving.
  if (faults.should_fail(FaultPoint::kStall)) {
    const double stall = faults.stall_ms(FaultPoint::kStall);
    PC_SPAN("fault_stall", {"ms", static_cast<int64_t>(stall)});
    if (reqtl) {
      seq->resp.annotations.push_back("fault_stall " + std::to_string(stall) +
                                      "ms");
    }
    std::this_thread::sleep_for(from_ms(stall));
  }

  seq->req.options.cancel = seq->req.token;

  if (seq->req.force_full_prefill) {
    // The submitter decided the cache path cannot serve this request
    // (shard router: every replica holding its modules is down) — go
    // straight to the bitwise-identical full-prefill fallback.
    degrade(*seq, seq->req.annotation.empty() ? "forced full prefill"
                                              : seq->req.annotation);
    settle_misses(*seq);
    finish_serve(std::move(seq));
    return;
  }

  for (int attempt = 0;; ++attempt) {
    try {
      // Reset per-attempt state: a failed assembly may have left partial
      // pages attached.
      seq->cache = PagedKVCache(pool_, model_.config().n_layers,
                                model_.config().kv_dim());
      seq->result = ServeResult{};
      const pml::PromptBinding binding = engine_->bind(seq->req.prompt);
      seq->result.encode_ms =
          engine_->ensure_encoded(binding, seq->req.options.cancel);
      assemble_paged(binding, *seq);
      // Uncached stream + kickoff, exactly as serve(): a fully cached
      // prompt computes one <s> row at next_pos to produce logits, and
      // generation starts one position later.
      seq->stream = collect_uncached(binding);
      const bool kickoff = binding.args.empty() && binding.texts.empty();
      if (seq->stream.tokens.empty()) {
        seq->stream.tokens.push_back(Vocab::kBos);
        seq->stream.pos_ids.push_back(binding.next_pos);
      }
      seq->gen_start = binding.next_pos + (kickoff ? 1 : 0);
      break;
    } catch (const CancelledError& e) {
      seq->done_status = ServeStatus::kTimeout;
      seq->resp.detail = e.what();
      seq->done = true;
      settle_misses(*seq);
      finish_serve(std::move(seq));
      return;
    } catch (const TransientError& e) {
      // Retries stop the moment the deadline expires (same rule as the
      // worker pool): another attempt can only finish later than a caller
      // who is already gone.
      if (seq->req.token.expired()) {
        seq->done_status = ServeStatus::kTimeout;
        seq->resp.detail = "deadline expired before retry";
        seq->done = true;
        settle_misses(*seq);
        finish_serve(std::move(seq));
        return;
      }
      if (attempt < options_.retry.max_retries) {
        ++seq->resp.retries;
        PC_SPAN("serve_retry", {"attempt", attempt + 1});
        if (reqtl) {
          seq->resp.annotations.push_back(
              "retry " + std::to_string(attempt + 1) + ": " + e.what());
        }
        std::this_thread::sleep_for(
            from_ms(backoff_ms_for(seq->req.id, attempt)));
        continue;
      }
      degrade(*seq, e.what());
      settle_misses(*seq);
      finish_serve(std::move(seq));
      return;
    } catch (const CacheError& e) {
      // Structural (the module fits in neither tier): degrade directly.
      degrade(*seq, e.what());
      settle_misses(*seq);
      finish_serve(std::move(seq));
      return;
    } catch (const std::exception& e) {
      seq->done_status = ServeStatus::kFailed;
      seq->resp.detail = e.what();
      seq->done = true;
      settle_misses(*seq);
      finish_serve(std::move(seq));
      return;
    }
  }
  settle_misses(*seq);

  // Simulated host-link transfer for bytes this request pulled from host
  // memory (first materialization of its modules). Modeled as a phase with
  // a ready-timestamp rather than a sleep, so the transfer overlaps other
  // requests' compute like real DMA.
  // The submitter's extra stall (shard router: cross-shard module fetches)
  // folds into the same transfer phase, so it overlaps other requests'
  // compute too.
  const double stall_s =
      options_.link.stall_s(seq->result.ttft.bytes_from_host) +
      seq->req.extra_stall_ms / 1e3;
  if (stall_s > 0) {
    seq->phase = Phase::kTransfer;
    seq->transfer_ms = stall_s * 1e3;
    seq->transfer_ready =
        std::chrono::steady_clock::now() + from_ms(seq->transfer_ms);
  } else {
    seq->phase = Phase::kPrefill;
  }
  active_.push_back(std::move(seq));
  active_gauge_.add(1);
  refresh_kv_gauges();
}

bool BatchScheduler::advance_decode(Seq& seq) {
  const GenerateOptions& o = seq.req.options;
  // The loop-entry condition: only reachable with max_new_tokens == 0
  // (otherwise the step+1 check below broke out an iteration earlier).
  if (seq.step_idx >= o.max_new_tokens) {
    seq.finish = FinishReason::kLength;
    return true;
  }
  for (TokenId s : o.stop_tokens) {
    if (seq.next == s) {
      seq.finish = FinishReason::kStopToken;
      return true;
    }
  }
  seq.gen_tokens.push_back(seq.next);
  const int hit = matched_stop_sequence(seq.gen_tokens, o);
  if (hit >= 0) {
    seq.gen_tokens.resize(seq.gen_tokens.size() -
                          o.stop_sequences[static_cast<size_t>(hit)].size());
    seq.finish = FinishReason::kStopSequence;
    return true;
  }
  if (seq.step_idx + 1 == o.max_new_tokens) {
    seq.finish = FinishReason::kLength;
    return true;
  }
  const int pos = seq.gen_start + seq.step_idx;
  if (pos >= model_.config().max_pos) {
    seq.finish = FinishReason::kPositionBudget;
    return true;
  }
  if (o.cancel.expired()) {
    seq.finish = FinishReason::kCancelled;
    return true;
  }
  return false;  // needs one forward of seq.next at pos
}

bool BatchScheduler::step() {
  if (active_.empty()) return false;
  FaultInjector& faults = FaultInjector::global();
  const auto now = std::chrono::steady_clock::now();

  // Transfers that completed: pay the stall, poll the link fault, move to
  // prefill (or re-send / degrade, like the worker's link-retry ladder).
  for (auto& sp : active_) {
    Seq& s = *sp;
    if (s.done || s.phase != Phase::kTransfer) continue;
    if (now < s.transfer_ready) continue;
    s.resp.stall_ms += s.transfer_ms;
    if (faults.should_fail(FaultPoint::kLink)) {
      if (s.req.token.expired()) {
        // Retries stop the moment the deadline expires.
        s.done = true;
        s.done_status = ServeStatus::kTimeout;
        s.resp.detail = "deadline expired before retry";
      } else if (s.link_attempts < options_.retry.max_retries) {
        ++s.resp.retries;
        PC_SPAN("serve_retry", {"attempt", s.link_attempts + 1});
        if (obs::request_telemetry_enabled()) {
          s.resp.annotations.push_back("retry " +
                                       std::to_string(s.link_attempts + 1) +
                                       ": host-link transfer lost");
        }
        const double backoff = backoff_ms_for(s.req.id, s.link_attempts);
        ++s.link_attempts;
        // Back off, then re-send the whole transfer.
        s.transfer_ready =
            std::chrono::steady_clock::now() + from_ms(backoff + s.transfer_ms);
      } else {
        degrade(s, "injected fault: host-link transfer lost");
      }
    } else {
      s.phase = Phase::kPrefill;
    }
  }

  // Gather this iteration's work: a prefill chunk or one decode token per
  // active sequence.
  struct WorkRef {
    Seq* seq;
    int chunk;  // > 0 for prefill contributions
  };
  std::vector<Model::BatchSeq> batch;
  std::vector<WorkRef> refs;
  bool any_transfer = false;
  auto earliest_ready = std::chrono::steady_clock::time_point::max();
  for (auto& sp : active_) {
    Seq& s = *sp;
    if (s.done) continue;
    if (s.phase == Phase::kTransfer) {
      any_transfer = true;
      earliest_ready = std::min(earliest_ready, s.transfer_ready);
      continue;
    }
    if (s.phase == Phase::kPrefill) {
      if (!s.prefill_started) {
        s.prefill_started = true;
        s.prefill_start = std::chrono::steady_clock::now();
      }
      if (s.req.token.expired()) {
        s.done = true;
        s.done_status = ServeStatus::kTimeout;
        s.resp.detail = "deadline expired mid-prefill";
        continue;
      }
      const int remaining =
          static_cast<int>(s.stream.tokens.size() - s.prefill_done);
      const int chunk = std::min(options_.batch.chunk_tokens, remaining);
      batch.push_back(Model::BatchSeq{
          std::span<const TokenId>(s.stream.tokens.data() + s.prefill_done,
                                   static_cast<size_t>(chunk)),
          std::span<const int>(s.stream.pos_ids.data() + s.prefill_done,
                               static_cast<size_t>(chunk)),
          &s.cache});
      refs.push_back({&s, chunk});
    } else {  // kDecode: invariant — needs one forward of s.next
      s.decode_tok = s.next;
      s.decode_pos = s.gen_start + s.step_idx;
      batch.push_back(Model::BatchSeq{
          std::span<const TokenId>(&s.decode_tok, 1),
          std::span<const int>(&s.decode_pos, 1), &s.cache});
      refs.push_back({&s, 0});
    }
  }

  if (!batch.empty()) {
    iterations_.inc();
    size_t iteration_tokens = 0;
    for (const auto& b : batch) iteration_tokens += b.tokens.size();
    batch_tokens_.inc(static_cast<uint64_t>(iteration_tokens));
    PC_SPAN("batch_step", {"seqs", static_cast<int64_t>(batch.size())},
            {"tokens", static_cast<int64_t>(iteration_tokens)});
    const Tensor logits = model_.forward_batch(batch);
    const auto after = std::chrono::steady_clock::now();
    for (size_t i = 0; i < refs.size(); ++i) {
      Seq& s = *refs[i].seq;
      if (refs[i].chunk > 0) {
        ++s.resp.prefill_chunks;
        s.prefill_done += static_cast<size_t>(refs[i].chunk);
        if (s.prefill_done < s.stream.tokens.size()) continue;
        // Prefill complete: the first token comes off this iteration's
        // logits — generate_impl's head, with the sequence's own Rng.
        s.result.ttft.uncached_ms = ms_between(s.prefill_start, after);
        s.result.ttft.uncached_tokens =
            static_cast<int>(s.stream.tokens.size());
        s.next = Model::sample_token(logits, static_cast<int64_t>(i),
                                     s.req.options, s.rng);
        s.phase = Phase::kDecode;
        s.step_idx = 0;
        s.decode_start = after;
      } else {
        s.next = Model::sample_token(logits, static_cast<int64_t>(i),
                                     s.req.options, s.rng);
        ++s.step_idx;
      }
      if (advance_decode(s)) {
        if (s.finish == FinishReason::kCancelled) {
          s.done_status = ServeStatus::kTimeout;
          s.resp.detail = "serve: deadline expired mid-decode";
        } else {
          s.result.finish_reason = s.finish;
          s.result.tokens = std::move(s.gen_tokens);
          s.result.text = tokenizer_.decode(s.result.tokens);
          s.result.prompt_tokens =
              s.result.ttft.cached_tokens + s.result.ttft.uncached_tokens;
          s.result.decode_ms =
              ms_between(s.decode_start, std::chrono::steady_clock::now());
          s.done_status = ServeStatus::kOk;
        }
        s.done = true;
      }
    }
  } else if (any_transfer) {
    // Every live sequence is mid-transfer: sleep until the earliest one is
    // ready (bounded, so admissions stay responsive).
    const auto wake = std::min(earliest_ready,
                               std::chrono::steady_clock::now() +
                                   std::chrono::milliseconds(1));
    std::this_thread::sleep_until(wake);
  }

  // Record the KV high-water mark while completed sequences still hold
  // their pages, then sweep them out of the batch (join/leave at token
  // granularity: their slots are free for the next admission).
  // finish_serve refreshes the gauges again after each release, so the
  // live-bytes gauge settles before the final completion is observable.
  refresh_kv_gauges();
  for (size_t i = 0; i < active_.size();) {
    if (active_[i]->done) {
      std::unique_ptr<Seq> sp = std::move(active_[i]);
      active_.erase(active_.begin() + static_cast<std::ptrdiff_t>(i));
      active_gauge_.sub(1);
      finish_serve(std::move(sp));
    } else {
      ++i;
    }
  }
  return !active_.empty();
}

size_t BatchScheduler::module_bytes() const {
  size_t bytes = 0;
  for (const auto& [key, cache] : paged_modules_) {
    bytes += cache.total_page_bytes();  // kind-aware: q8/q4 pages are smaller
  }
  return bytes;
}

void BatchScheduler::refresh_kv_gauges() {
  const size_t live = pool_.live_bytes();
  peak_live_bytes_ = std::max(peak_live_bytes_, live);
  kv_live_.set(static_cast<int64_t>(live));
  kv_peak_.set(static_cast<int64_t>(peak_live_bytes_));
  kv_modules_.set(static_cast<int64_t>(module_bytes()));
}

BatchKVStats BatchScheduler::kv_stats() const {
  BatchKVStats out;
  out.live_bytes = pool_.live_bytes();
  out.peak_live_bytes = peak_live_bytes_;
  out.module_bytes = module_bytes();
  out.pages_allocated = pool_.stats().pages_allocated;
  out.cow_copies = pool_.stats().cow_copies;
  return out;
}

}  // namespace pc
