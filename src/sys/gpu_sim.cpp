#include "sys/gpu_sim.h"

#include <algorithm>

#include "common/error.h"

namespace pc {

namespace {

// Per-layer slice of the uncached forward, consistent with extend_flops
// (which additionally counts final logits once).
double layer_compute_flops(const ModelSpec& spec, int64_t past_tokens,
                           int64_t new_tokens) {
  const double total =
      extend_flops(spec, past_tokens, new_tokens) -
      2.0 * static_cast<double>(spec.d_model) * spec.vocab_size;
  return total / spec.n_layers;
}

}  // namespace

GpuSimResult simulate_cached_ttft(const HardwareProfile& hw,
                                  const ModelSpec& spec,
                                  int64_t cached_tokens,
                                  int64_t uncached_tokens,
                                  ModuleLocation location, bool overlap) {
  PC_CHECK(hw.is_gpu);
  PC_CHECK(cached_tokens >= 0 && uncached_tokens >= 1);
  const int layers = spec.n_layers;

  // Per-layer task durations.
  const double layer_copy_bytes =
      static_cast<double>(spec.kv_bytes_per_token()) * cached_tokens / layers;
  const double link_bw = location == ModuleLocation::kDeviceMemory
                             ? hw.mem_bw_bytes
                             : hw.host_link_bw_bytes;
  const double copy_s = layer_copy_bytes / link_bw + hw.host_link_latency_s;

  // Short-sequence efficiency, as in the analytic model.
  const double floor = hw.eff_floor;
  const double eff =
      floor + (1.0 - floor) *
                  std::min(1.0, static_cast<double>(uncached_tokens) /
                                    hw.eff_ramp_rows);
  const double compute_s =
      layer_compute_flops(spec, cached_tokens, uncached_tokens) /
      (hw.compute_flops * eff);
  const double logits_s = 2.0 * static_cast<double>(spec.d_model) *
                          spec.vocab_size / (hw.compute_flops * eff);

  GpuSimResult out;
  out.layer_finish_s.resize(static_cast<size_t>(layers));

  if (!overlap) {
    // One serial timeline: all copies, then all compute.
    double t = hw.kernel_launch_s;
    t += layers * copy_s;
    out.copy_busy_s = layers * copy_s;
    for (int l = 0; l < layers; ++l) {
      t += compute_s;
      out.layer_finish_s[static_cast<size_t>(l)] = t;
    }
    out.compute_busy_s = layers * compute_s;
    out.ttft_s = t + logits_s;
    out.compute_stall_s = layers * copy_s;  // compute waited for all copies
    return out;
  }

  // Two resources, event-driven: the copy engine streams layer copies
  // back-to-back; compute for layer l starts when both its copy and the
  // previous layer's compute have finished.
  double copy_free = hw.kernel_launch_s;
  double compute_free = hw.kernel_launch_s;
  std::vector<double> copy_done(static_cast<size_t>(layers));
  for (int l = 0; l < layers; ++l) {
    copy_free += copy_s;
    copy_done[static_cast<size_t>(l)] = copy_free;
  }
  out.copy_busy_s = layers * copy_s;

  for (int l = 0; l < layers; ++l) {
    const double ready =
        std::max(compute_free, copy_done[static_cast<size_t>(l)]);
    out.compute_stall_s += ready - compute_free;
    compute_free = ready + compute_s;
    out.layer_finish_s[static_cast<size_t>(l)] = compute_free;
    out.compute_busy_s += compute_s;
  }
  out.ttft_s = compute_free + logits_s;
  return out;
}

}  // namespace pc
