#include "sys/fault.h"

#include <cmath>
#include <cstdlib>
#include <mutex>

#include "common/error.h"
#include "common/string_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace pc {

const char* fault_point_name(FaultPoint p) {
  switch (p) {
    case FaultPoint::kEncode:
      return "encode";
    case FaultPoint::kLink:
      return "link";
    case FaultPoint::kCorrupt:
      return "corrupt";
    case FaultPoint::kEvict:
      return "evict";
    case FaultPoint::kStall:
      return "stall";
    case FaultPoint::kShardKill:
      return "shardkill";
    case FaultPoint::kDiskRead:
      return "diskread";
    case FaultPoint::kDiskWrite:
      return "diskwrite";
  }
  return "unknown";
}

#if PC_FAULTS_ENABLED

namespace {

// Guards configure()/disable()/spec() against each other; the poll path
// never takes it.
std::mutex& config_mutex() {
  static std::mutex* m = new std::mutex;  // leaked: usable during exit
  return *m;
}

obs::Counter& injected_counter() {
  static obs::Counter* c = new obs::Counter(obs::MetricsRegistry::global().counter(
      "pc_faults_injected_total", "faults injected across all points"));
  return *c;
}

uint64_t splitmix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// The N-th draw of a point under a seed, as a uniform double in [0,1).
double draw_uniform(uint64_t seed, FaultPoint p, uint64_t n) {
  const uint64_t h = splitmix64(
      seed ^ (static_cast<uint64_t>(p) * 0xd1b54a32d192ed03ULL) ^
      splitmix64(n));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

int point_from_name(const std::string& name) {
  for (int i = 0; i < kNumFaultPoints; ++i) {
    if (name == fault_point_name(static_cast<FaultPoint>(i))) return i;
  }
  return -1;
}

// Static literals for the trace markers (TraceEvent stores the pointer).
// [[maybe_unused]]: PC_INSTANT compiles out under -DPC_OBS=OFF.
[[maybe_unused]] const char* inject_marker_name(FaultPoint p) {
  switch (p) {
    case FaultPoint::kEncode:
      return "fault_inject_encode";
    case FaultPoint::kLink:
      return "fault_inject_link";
    case FaultPoint::kCorrupt:
      return "fault_inject_corrupt";
    case FaultPoint::kEvict:
      return "fault_inject_evict";
    case FaultPoint::kStall:
      return "fault_inject_stall";
    case FaultPoint::kShardKill:
      return "fault_inject_shardkill";
    case FaultPoint::kDiskRead:
      return "fault_inject_diskread";
    case FaultPoint::kDiskWrite:
      return "fault_inject_diskwrite";
  }
  return "fault_inject";
}

// Strict numeric parsers for spec fields: the whole field must be one
// number — std::stod/stoull alone would accept "0.2abc" and negative
// values via wraparound, silently arming a different schedule than the
// operator wrote.
double parse_double_field(const std::string& value, const std::string& entry,
                          const char* what) {
  size_t pos = 0;
  double v = 0;
  try {
    v = std::stod(value, &pos);
  } catch (const std::exception&) {
    throw ConfigError("PC_FAULTS: bad " + std::string(what) + " '" + value +
                      "' in '" + entry + "'");
  }
  if (pos != value.size() || !std::isfinite(v)) {
    throw ConfigError("PC_FAULTS: bad " + std::string(what) + " '" + value +
                      "' in '" + entry + "' (not a plain finite number)");
  }
  return v;
}

uint64_t parse_uint_field(const std::string& value, const std::string& entry,
                          const char* what) {
  if (value.empty() || value[0] == '-' || value[0] == '+') {
    throw ConfigError("PC_FAULTS: bad " + std::string(what) + " '" + value +
                      "' in '" + entry + "' (expected an unsigned integer)");
  }
  size_t pos = 0;
  uint64_t v = 0;
  try {
    v = std::stoull(value, &pos);
  } catch (const std::exception&) {
    throw ConfigError("PC_FAULTS: bad " + std::string(what) + " '" + value +
                      "' in '" + entry + "'");
  }
  if (pos != value.size()) {
    throw ConfigError("PC_FAULTS: bad " + std::string(what) + " '" + value +
                      "' in '" + entry + "' (trailing characters)");
  }
  return v;
}

}  // namespace

FaultInjector::FaultInjector() {
  const char* env = std::getenv("PC_FAULTS");
  if (env != nullptr && *env != '\0') configure(env);
}

FaultInjector& FaultInjector::global() {
  static FaultInjector* instance = new FaultInjector;  // leaked on purpose
  return *instance;
}

void FaultInjector::configure(const std::string& spec) {
  std::lock_guard lock(config_mutex());
  armed_.store(false, std::memory_order_release);

  std::array<Rule, kNumFaultPoints> rules{};
  uint64_t seed = 1;
  bool any = false;
  for (const std::string& raw : split(spec, ',')) {
    const std::string entry{trim(raw)};
    if (entry.empty()) continue;
    const size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == entry.size()) {
      throw ConfigError("PC_FAULTS: malformed entry '" + entry +
                        "' (expected name=value)");
    }
    const std::string name{trim(entry.substr(0, eq))};
    std::string value{trim(entry.substr(eq + 1))};
    if (name == "seed") {
      seed = parse_uint_field(value, entry, "seed");
      continue;
    }
    const int pi = point_from_name(name);
    if (pi < 0) {
      throw ConfigError("PC_FAULTS: unknown fault point '" + name + "'");
    }
    Rule& rule = rules[static_cast<size_t>(pi)];
    // value = rate ["x" count] [":" ms]
    const size_t colon = value.find(':');
    if (colon != std::string::npos) {
      rule.stall_ms =
          parse_double_field(value.substr(colon + 1), entry, "stall duration");
      if (rule.stall_ms < 0) {
        throw ConfigError("PC_FAULTS: negative stall duration in '" + entry +
                          "'");
      }
      value = value.substr(0, colon);
    }
    const size_t x = value.find('x');
    if (x != std::string::npos) {
      rule.max_count = parse_uint_field(value.substr(x + 1), entry,
                                        "injection cap");
      value = value.substr(0, x);
    }
    rule.rate = parse_double_field(value, entry, "rate");
    // Written as !(in range): NaN fails every comparison, so the
    // `< 0 || > 1` form would accept it even if one got past the finite
    // check above.
    if (!(rule.rate >= 0.0 && rule.rate <= 1.0)) {
      throw ConfigError("PC_FAULTS: rate out of [0,1] in '" + entry + "'");
    }
    if (rule.rate > 0) any = true;
  }

  rules_ = rules;
  seed_ = seed;
  for (int i = 0; i < kNumFaultPoints; ++i) {
    draws_[static_cast<size_t>(i)].store(0, std::memory_order_relaxed);
    injected_[static_cast<size_t>(i)].store(0, std::memory_order_relaxed);
  }
  spec_ = any ? spec : std::string();
  armed_.store(any, std::memory_order_release);
}

void FaultInjector::disable() {
  std::lock_guard lock(config_mutex());
  armed_.store(false, std::memory_order_release);
  spec_.clear();
}

std::string FaultInjector::spec() const {
  std::lock_guard lock(config_mutex());
  return armed_.load(std::memory_order_relaxed) ? spec_ : std::string();
}

bool FaultInjector::roll(FaultPoint p) {
  // Re-load with acquire: configure() published rules_/seed_ before the
  // release store that armed the injector.
  if (!armed_.load(std::memory_order_acquire)) return false;
  const size_t i = static_cast<size_t>(p);
  const Rule& rule = rules_[i];
  if (rule.rate <= 0) return false;
  if (rule.max_count != 0 &&
      injected_[i].load(std::memory_order_relaxed) >= rule.max_count) {
    return false;
  }
  const uint64_t n = draws_[i].fetch_add(1, std::memory_order_relaxed);
  if (draw_uniform(seed_, p, n) >= rule.rate) return false;
  injected_[i].fetch_add(1, std::memory_order_relaxed);
  injected_counter().inc();
  // Chaos runs become readable on the timeline: the injection lands as an
  // instant marker on the thread that drew it, inside whatever span was
  // open there (serve_request, link_stall, encode_module, ...).
  PC_INSTANT(inject_marker_name(p),
             {"draw", static_cast<int64_t>(n)});
  return true;
}

double FaultInjector::stall_ms(FaultPoint p) const {
  return rules_[static_cast<size_t>(p)].stall_ms;
}

uint64_t FaultInjector::injected(FaultPoint p) const {
  return injected_[static_cast<size_t>(p)].load(std::memory_order_relaxed);
}

uint64_t FaultInjector::injected_total() const {
  uint64_t total = 0;
  for (const auto& c : injected_) total += c.load(std::memory_order_relaxed);
  return total;
}

#endif  // PC_FAULTS_ENABLED

}  // namespace pc
