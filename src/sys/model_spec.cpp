#include "sys/model_spec.h"

#include "common/error.h"

namespace pc {

namespace {

// Per-layer FLOPs for projections + MLP for one token (matmul FLOPs = 2·m·k).
double per_token_layer_flops(const ModelSpec& s) {
  const double d = s.d_model;
  const double q_out = static_cast<double>(s.n_heads) * s.d_head;
  const double kv_out = static_cast<double>(s.kv_dim());
  const double proj = 2.0 * d * (q_out + 2.0 * kv_out)  // QKV
                      + 2.0 * q_out * d;                // output proj
  const double mlp = 2.0 * d * s.d_ff * (s.gated_mlp ? 3.0 : 2.0);
  return proj + mlp;
}

}  // namespace

double prefill_flops(const ModelSpec& spec, int64_t n_tokens) {
  const double n = static_cast<double>(n_tokens);
  const double linear = n * per_token_layer_flops(spec) * spec.n_layers;
  // Attention: scores QK^T and mixing AV, causal ≈ half of the full n² but
  // we keep the paper's 4·n²·d convention (dense upper bound).
  const double attn = 4.0 * n * n * spec.d_model * spec.n_layers;
  // Final logits for the last position only (TTFT path).
  const double logits = 2.0 * static_cast<double>(spec.d_model) * spec.vocab_size;
  return linear + attn + logits;
}

double extend_flops(const ModelSpec& spec, int64_t past_tokens,
                    int64_t new_tokens) {
  const double u = static_cast<double>(new_tokens);
  const double total = static_cast<double>(past_tokens) + u;
  const double linear = u * per_token_layer_flops(spec) * spec.n_layers;
  // Each new token attends over all past + new tokens.
  const double attn = 4.0 * u * total * spec.d_model * spec.n_layers;
  const double logits = 2.0 * static_cast<double>(spec.d_model) * spec.vocab_size;
  return linear + attn + logits;
}

const std::vector<ModelSpec>& model_zoo() {
  // Dimensions from the published model cards. n_kv_heads == n_heads (MHA)
  // throughout because Table 2's numbers assume full multi-head KV (see
  // EXPERIMENTS.md: Llama 70B at 2.5 MB/token only reproduces without GQA).
  static const std::vector<ModelSpec> zoo = {
      {"BERT", 12, 768, 12, 12, 64, 3072, 30522, false, 2},
      {"Falcon 1B", 24, 2048, 32, 32, 64, 8192, 50304, false, 2},
      {"Llama 7B", 32, 4096, 32, 32, 128, 11008, 32000, true, 2},
      {"Llama 13B", 40, 5120, 40, 40, 128, 13824, 32000, true, 2},
      {"MPT 30B", 48, 7168, 64, 64, 112, 28672, 50432, false, 2},
      {"Falcon 40B", 60, 8192, 128, 128, 64, 32768, 65024, false, 2},
      {"Llama 70B", 80, 8192, 64, 64, 128, 28672, 32000, true, 2},
      {"Falcon 180B", 80, 14848, 232, 232, 64, 59392, 65024, false, 2},
  };
  return zoo;
}

const ModelSpec& find_spec(const std::string& name) {
  for (const auto& s : model_zoo()) {
    if (s.name == name) return s;
  }
  throw Error("unknown model spec: " + name);
}

}  // namespace pc
