// Serving-layer vocabulary shared by the worker-pool frontend
// (sys/server.h) and the continuous-batching scheduler (sys/batch.h):
// the request outcome taxonomy, the response record, the simulated
// host-link model, and the transient-fault retry policy. Split out so the
// scheduler can speak the same types without depending on the Server.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/engine.h"

namespace pc {

// Simulated host<->device interconnect (0-valued fields contribute nothing).
struct LinkModel {
  double bandwidth_bytes_per_s = 0;  // host-link throughput; 0 = infinite
  double latency_s = 0;              // fixed per-request transfer setup cost

  double stall_s(size_t bytes_from_host) const {
    double s = latency_s;
    if (bandwidth_bytes_per_s > 0) {
      s += static_cast<double>(bytes_from_host) / bandwidth_bytes_per_s;
    }
    return s;
  }
};

// Outcome taxonomy for a served request (see sys/server.h for the full
// lifecycle description).
enum class ServeStatus {
  kOk = 0,
  kDegraded,  // full-prefill fallback: same tokens, degraded TTFT
  kTimeout,   // deadline expired mid-service; work was cancelled
  kShed,      // rejected before service (queued past deadline / backlog)
  kFailed,    // non-transient error
};

const char* to_string(ServeStatus s);

// True for the statuses that return generated tokens to the caller.
inline bool is_served(ServeStatus s) {
  return s == ServeStatus::kOk || s == ServeStatus::kDegraded;
}

// Bounded retry for transient faults (pc::TransientError): attempt
// `1 + max_retries` serves, sleeping backoff_base_ms * 2^attempt (capped at
// backoff_max_ms, scaled by a deterministic jitter in [0.5, 1.5)) between
// attempts. When retries are exhausted the server degrades to full prefill.
struct RetryPolicy {
  int max_retries = 2;
  double backoff_base_ms = 0.5;
  double backoff_max_ms = 20.0;
};

// The deterministic backoff schedule both serving modes sleep between
// transient-fault retries: backoff_base_ms * 2^attempt, capped at
// backoff_max_ms, scaled by a jitter in [0.5, 1.5) that is a pure function
// of (id, attempt) — workers retrying the same key desynchronize without a
// shared RNG, and a given request replays the same schedule on any lane.
// Pinned by a golden test (tests/test_faults.cpp).
double retry_backoff_ms(const RetryPolicy& retry, uint64_t id, int attempt);

// Per-request submission controls beyond GenerateOptions, used by the
// shard router (sys/shard.h) and available to any caller of
// Server::submit. Plain submit(prompt, options, deadline) is the
// all-defaults case.
struct SubmitOptions {
  double deadline_ms = 0;  // 0 = the server's default deadline
  // Extra simulated host-link stall charged to this request (cross-shard
  // module fetches), slept by the serving lane alongside the regular
  // LinkModel stall so transfers overlap compute.
  double extra_stall_ms = 0;
  // Serve via the full-prefill degrade path directly (recorded as
  // kDegraded): the router uses this when every replica holding a
  // request's modules is down — tokens stay bitwise-identical, TTFT pays
  // the full forward pass.
  bool force_full_prefill = false;
  // Free-form note appended to the request's timeline annotations at
  // dequeue (routing decisions, failover provenance). Doubles as the
  // degrade detail when force_full_prefill is set.
  std::string annotation;
};

struct ServerResponse {
  uint64_t id = 0;    // submission order
  int worker = -1;    // worker that served it (-1 when shed at submit)
  ServeStatus status = ServeStatus::kOk;
  ServeResult result;     // meaningful iff is_served(status)
  double queue_ms = 0;    // submit -> dequeue
  double stall_ms = 0;    // simulated host-link transfer (LinkModel)
  double service_ms = 0;  // dequeue -> done (serve + stall)
  double ttft_ms = 0;     // end-to-end: queue + stall + engine TTFT
  int retries = 0;        // transient-fault retries spent on this request
  bool deadline_met = true;
  std::string detail;  // human-readable cause for non-kOk statuses

  // Request-timeline attribution (obs/request_timeline.h). module_misses
  // counts modules/scaffolds this request had to encode (delta of the
  // engine's encode counters around its serve); prefill_chunks counts
  // chunked-prefill iterations on the batch path (0 on the worker path,
  // where prefill is one forward). annotations are free-form lifecycle
  // notes (fault stalls, retries, degrade causes) in occurrence order;
  // only populated while request telemetry is enabled.
  int module_misses = 0;
  int prefill_chunks = 0;
  std::vector<std::string> annotations;
};

}  // namespace pc
