// Analytic hardware model for the paper's evaluation platforms.
//
// The paper measures TTFT on three NVIDIA GPUs and two desktop CPUs that are
// not available here; per the reproduction's substitution rule we model them
// analytically. The model has two terms — compute time (FLOPs / attainable
// throughput) and transfer time (bytes / link bandwidth + latency) — which
// is exactly the asymmetry Prompt Cache exploits: baseline prefill cost is
// quadratic in sequence length (attention FLOPs) while cached inference cost
// is linear (module memcpy). Profiles are calibrated from public spec
// sheets with a sustained-efficiency derate; absolute numbers are
// approximate by design, but the who-wins/by-what-factor shape of Figures
// 3-5 follows from the ratios, not the absolutes.
#pragma once

#include <string>
#include <vector>

#include "sys/model_spec.h"

namespace pc {

// Where encoded prompt modules live relative to the compute device.
enum class ModuleLocation {
  kHostMemory,    // CPU DRAM: GPUs must copy over PCIe; CPUs copy host-to-host
  kDeviceMemory,  // GPU HBM: device-to-device copy (near-free)
};

struct HardwareProfile {
  std::string name;
  bool is_gpu = false;
  double compute_flops = 0;      // sustained dense-matmul throughput (FLOP/s)
  double mem_bw_bytes = 0;       // local memory bandwidth (B/s)
  double host_link_bw_bytes = 0; // device<->host link (PCIe); == mem_bw on CPU
  double host_link_latency_s = 0;
  double kernel_launch_s = 0;    // fixed per-inference overhead
  // Sustained GEMM efficiency ramps linearly with the number of query rows
  // from `eff_floor` (skinny matmuls: decode steps, short uncached
  // suffixes) up to 1.0 at `eff_ramp_rows` (long prefills).
  double eff_floor = 0.3;
  double eff_ramp_rows = 512;

  // Named profiles matching the paper's testbeds (§5.1).
  static const HardwareProfile& intel_i9_13900k();  // DDR5-5600
  static const HardwareProfile& amd_ryzen9_7950x(); // DDR4-3600 (per paper)
  static const HardwareProfile& rtx4090();
  static const HardwareProfile& a40();
  static const HardwareProfile& a100();

  static const std::vector<const HardwareProfile*>& all();
};

struct TtftEstimate {
  double compute_s = 0;
  double transfer_s = 0;
  double total() const { return compute_s + transfer_s; }
  double total_ms() const { return total() * 1e3; }
};

// Baseline: full prefill of n_tokens with regular KV Cache.
TtftEstimate estimate_baseline_ttft(const HardwareProfile& hw,
                                    const ModelSpec& spec, int64_t n_tokens);

// Prompt Cache: copy `cached_tokens` worth of attention states from
// `location`, then compute only the `uncached_tokens` suffix (which attends
// over the full cached+uncached length). `bytes_per_cached_token` sets what
// each cached token costs on the link — pass spec.kv_bytes_per_token_q8()
// (or _q4() for Q4_0 storage) when modules are stored quantized (transfer
// is charged on the quantized bytes, ~25%/~14% of fp32); 0 means
// spec.kv_bytes_per_token() (unquantized).
TtftEstimate estimate_cached_ttft(const HardwareProfile& hw,
                                  const ModelSpec& spec, int64_t cached_tokens,
                                  int64_t uncached_tokens,
                                  ModuleLocation location,
                                  size_t bytes_per_cached_token = 0);

// Per-step decode latency (time-to-subsequent-token) at a given context
// length — identical for baseline and Prompt Cache (§5.4).
double estimate_decode_step_s(const HardwareProfile& hw, const ModelSpec& spec,
                              int64_t context_tokens);

// One-shot memcpy estimate for `bytes` over the named path (used to
// reproduce the §5.4 memcpy latency comparison).
double estimate_memcpy_s(const HardwareProfile& hw, size_t bytes,
                         ModuleLocation from);

}  // namespace pc
