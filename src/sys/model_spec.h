// Paper-scale model specifications ("model zoo").
//
// These describe the architectures the paper evaluates (Llama2, MPT, Falcon
// at 1B-180B, plus BERT for Table 2) at their true published dimensions.
// The specs drive two things: the analytic FLOPs/bytes models behind the
// simulated-GPU experiments (Figures 3 and 5) and the per-token KV memory
// accounting of Table 2. No weights exist at these sizes in this repo; the
// runnable engine uses laptop-scale configs from model/config.h instead.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pc {

struct ModelSpec {
  std::string name;
  int n_layers = 0;
  int d_model = 0;
  int n_heads = 0;
  int n_kv_heads = 0;  // == n_heads for MHA; Table 2 assumes MHA throughout
  int d_head = 0;
  int d_ff = 0;
  int vocab_size = 0;
  bool gated_mlp = false;  // SwiGLU (three mats) vs plain two-mat MLP
  int dtype_bytes = 2;     // fp16 storage, as assumed by Table 2

  int kv_dim() const { return n_kv_heads * d_head; }

  // KV bytes needed to cache one token across all layers (K and V).
  // For MHA this reduces to 4 * n_layers * d_model * dtype_bytes/2... i.e.
  // 2 (K,V) * n_layers * kv_dim * dtype_bytes.
  size_t kv_bytes_per_token() const {
    return static_cast<size_t>(2) * n_layers * kv_dim() * dtype_bytes;
  }

  // Per-token KV bytes when modules are held quantized (Q8_0, §5.5/§6
  // compression direction): one int8 per element plus one fp32 scale per
  // row (K and V) per layer. This is what crosses the host link when the
  // store precision is q8 — transfer cost is charged on quantized bytes.
  size_t kv_bytes_per_token_q8() const {
    return static_cast<size_t>(2) * n_layers * kv_dim() * sizeof(int8_t) +
           static_cast<size_t>(2) * n_layers * sizeof(float);
  }

  // Per-token KV bytes when modules are held as Q4_0: 16 packed bytes plus
  // one fp32 scale per 32-value block, per K and V row per layer. This is
  // what crosses the host link when the store precision is q4.
  size_t kv_bytes_per_token_q4() const {
    const size_t blocks = static_cast<size_t>((kv_dim() + 31) / 32);
    return static_cast<size_t>(2) * n_layers * blocks * 16 +
           static_cast<size_t>(2) * n_layers * blocks * sizeof(float);
  }

  // Approximate parameter count (embeddings + per-layer mats), for context.
  double approx_params() const {
    const double attn = static_cast<double>(d_model) *
                        (n_heads * d_head + 2.0 * kv_dim() + n_heads * d_head);
    const double mlp =
        static_cast<double>(d_model) * d_ff * (gated_mlp ? 3.0 : 2.0);
    return n_layers * (attn + mlp) +
           2.0 * static_cast<double>(vocab_size) * d_model;
  }
};

// FLOPs to prefill n_tokens from scratch (baseline KV Cache path). Follows
// the paper's §2.2 accounting: per layer ≈ 6·n·d² of projection/MLP work
// plus 4·n²·d of attention work; we expand the 6d² using the spec's true
// head and MLP dimensions.
double prefill_flops(const ModelSpec& spec, int64_t n_tokens);

// FLOPs to extend a sequence: compute attention states for `new_tokens`
// while `past_tokens` are already cached (the Prompt Cache uncached-segment
// path, and also the per-step decode cost when new_tokens == 1).
double extend_flops(const ModelSpec& spec, int64_t past_tokens,
                    int64_t new_tokens);

// The model zoo used by Table 2 and the analytic figures.
const std::vector<ModelSpec>& model_zoo();

// Lookup by name (throws pc::Error if absent).
const ModelSpec& find_spec(const std::string& name);

}  // namespace pc
