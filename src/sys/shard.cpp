// ShardRouter implementation. Locking discipline (the invariants every
// function below leans on):
//
//   * mutex_ guards router state: pending_/inflight_/orphans_/delivered_,
//     the per-shard liveness fields (alive/epoch/routed/kills/restart_*),
//     and the tallies. Never held across a Server call or a module copy.
//   * Shard::lifecycle guards that shard's store/server/placement pointers
//     and owner_pinned. Lock ORDER is lifecycle -> mutex_ (dispatch holds
//     the target's lifecycle across Server::submit and then registers
//     under mutex_); the reverse order is forbidden, so any code already
//     under mutex_ snapshots what it needs and re-locks lifecycle after
//     releasing. At most ONE lifecycle is held at a time — cross-shard
//     copies take the source's lock, copy the payload out, release, then
//     take the destination's.
//   * events_mutex_ is a leaf: push_event takes nothing else, and may be
//     called while holding mutex_ or a lifecycle.
//   * replicator_mutex_ serializes healing passes and fronts the
//     replicator thread's cv; a pass takes mutex_/lifecycles underneath it
//     (never the reverse).
//
// Failover accounting: a request's failover count is incremented exactly
// once per lost dispatch — either when a kill flushes its inflight_ entry,
// or when its registration discovers the target's epoch moved while
// Server::submit was in flight. process_failover only re-dispatches; it
// never counts, so rescue requeues (all shards down, waiting on a restart)
// don't inflate pc_shard_failovers_total.
#include "sys/shard.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <thread>
#include <utility>

#include "common/error.h"
#include "obs/trace.h"
#include "pml/prompt.h"
#include "sys/fault.h"

namespace pc {

namespace {

uint64_t splitmix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double ms_between(std::chrono::steady_clock::time_point a,
                  std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

}  // namespace

ShardRouter::ShardRouter(const Model& model, const TextTokenizer& tokenizer,
                         ShardConfig config)
    : model_(model),
      tokenizer_(tokenizer),
      config_(std::move(config)),
      slo_(config_.slo) {
  PC_CHECK_MSG(config_.n_shards > 0, "ShardRouter needs at least one shard");
  config_.replication =
      std::clamp(config_.replication, 1, config_.n_shards);
  if (config_.vnodes < 1) config_.vnodes = 1;

  auto& reg = obs::MetricsRegistry::global();
  submitted_ = reg.counter("pc_shard_router_submitted_total",
                           "requests submitted to the shard router");
  delivered_ctr_ = reg.counter("pc_shard_router_delivered_total",
                               "terminal responses delivered by the router");
  kills_ = reg.counter("pc_shard_kills_total", "shard kills (injected + manual)");
  restarts_ = reg.counter("pc_shard_restarts_total", "shard restarts");
  failovers_ = reg.counter("pc_shard_failovers_total",
                           "request re-routes after a shard kill");
  cross_fetches_ = reg.counter("pc_shard_cross_fetches_total",
                               "modules copied shard-to-shard at serve time");
  cross_fetch_bytes_ = reg.counter("pc_shard_cross_fetch_bytes_total",
                                   "bytes moved by cross-shard fetches");
  rereplications_ = reg.counter("pc_shard_rereplications_total",
                                "modules re-replicated by healing sweeps");
  unavailable_degrades_ =
      reg.counter("pc_shard_unavailable_degrades_total",
                  "requests degraded because every replica was down");
  live_gauge_ = reg.gauge("pc_shard_live", "shards currently alive");

  // The placement ring: vnodes per shard at splitmix64-spread positions.
  // Deterministic in (ring_seed, n_shards, vnodes) only — two routers with
  // the same config agree on every owner set.
  ring_.reserve(static_cast<size_t>(config_.n_shards) * config_.vnodes);
  for (int s = 0; s < config_.n_shards; ++s) {
    for (int v = 0; v < config_.vnodes; ++v) {
      const uint64_t h = splitmix64(
          config_.ring_seed ^
          splitmix64(static_cast<uint64_t>(s + 1) * 0x9e3779b97f4a7c15ULL +
                     static_cast<uint64_t>(v)));
      ring_.emplace_back(h, s);
    }
  }
  std::sort(ring_.begin(), ring_.end());

  for (int s = 0; s < config_.n_shards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->index = s;
    build_shard(*shard, /*gen_epoch=*/0);
    shards_.push_back(std::move(shard));
  }
  live_gauge_.set(config_.n_shards);

  // Enumerate every module key (named + anonymous) of every schema.
  // load_schema on an already-loaded schema re-parses and returns the
  // fresh layout; nothing has been placed yet, so the store erase it
  // performs is a no-op.
  for (const auto& src : config_.server.schemas) {
    const pml::Schema& sc = shards_[0]->placement->load_schema(src);
    for (size_t mi = 0; mi < sc.modules.size(); ++mi) {
      const std::string key = sc.name + "::" + sc.modules[mi].name;
      all_keys_.push_back(key);
      key_parts_[key] = {sc.name, sc.modules[mi].name};
      if (sc.modules[mi].anonymous) anon_keys_[sc.name].push_back(key);
    }
  }

  // Initial placement: encode each module ONCE (on its primary owner) and
  // copy the payload to the other R-1 owners, pinning everywhere. An
  // injected encode fault here is tolerated — the key heals on the next
  // replicate pass or lazily at serve time.
  for (const auto& key : all_keys_) {
    const auto owners = owners_of(key);
    const auto& parts = key_parts_.at(key);
    EncodedModule payload;
    bool have_payload = false;
    for (int o : owners) {
      Shard& s = *shards_[o];
      if (have_payload) {
        try {
          s.store->insert(key, EncodedModule(payload));
          s.store->pin(key);
          s.owner_pinned.insert(key);
        } catch (const CacheError&) {
          // Doesn't fit this shard's tiers; under-replicated until healed.
        }
        continue;
      }
      try {
        s.placement->pin_module(parts.first, parts.second);
        s.owner_pinned.insert(key);
      } catch (const TransientError&) {
        continue;  // encode fault: try the next owner as primary
      } catch (const CacheError&) {
        continue;
      }
      if (auto ref = s.store->find(key)) {
        payload = *ref;
        have_payload = true;
      }
    }
  }

  pump_ = std::thread([this] { pump_loop(); });
  if (config_.replicate_interval_ms > 0) {
    replicator_ = std::thread([this] { replicator_loop(); });
  }
}

ShardRouter::~ShardRouter() { stop(); }

void ShardRouter::build_shard(Shard& s, uint64_t gen_epoch) {
  s.store = std::make_unique<SharedModuleStore>(config_.device_capacity,
                                                config_.host_capacity);
  ServerConfig sc = config_.server;
  // The router places modules itself and owns the response lifecycle.
  sc.engine.eager_encode = false;
  sc.retain_responses = false;
  const int index = s.index;
  sc.on_record = [this, index, gen_epoch](const ServerResponse& r) {
    Event e;
    e.kind = Event::Kind::kDelivery;
    e.shard = index;
    e.epoch = gen_epoch;  // the producing server's generation, not the
                          // shard's current epoch — stale ones are dropped
    e.resp = r;
    push_event(std::move(e));
  };
  s.server = std::make_unique<Server>(model_, tokenizer_, *s.store,
                                      std::move(sc));
  EngineConfig ec = config_.server.engine;
  ec.eager_encode = false;
  s.placement =
      std::make_unique<PromptCacheEngine>(model_, tokenizer_, *s.store, ec);
  for (const auto& src : config_.server.schemas) s.placement->load_schema(src);
}

// --- Placement -------------------------------------------------------------

std::vector<int> ShardRouter::owners_of(const std::string& key) const {
  const uint64_t h =
      splitmix64(std::hash<std::string>{}(key) ^ config_.ring_seed);
  std::vector<int> owners;
  owners.reserve(static_cast<size_t>(config_.replication));
  auto it = std::lower_bound(ring_.begin(), ring_.end(),
                             std::make_pair(h, -1));
  for (size_t step = 0; step < ring_.size() &&
                        static_cast<int>(owners.size()) < config_.replication;
       ++step) {
    if (it == ring_.end()) it = ring_.begin();
    const int shard = it->second;
    if (std::find(owners.begin(), owners.end(), shard) == owners.end()) {
      owners.push_back(shard);
    }
    ++it;
  }
  return owners;
}

std::vector<int> ShardRouter::module_owners(const std::string& key) const {
  return owners_of(key);
}

std::vector<std::string> ShardRouter::prompt_module_keys(
    const std::string& prompt) const {
  std::vector<std::string> keys;
  pml::PromptAst ast;
  try {
    ast = pml::parse_prompt(prompt);
  } catch (const Error&) {
    return keys;  // unparseable: routed by prompt hash alone
  }
  std::set<std::string> seen;
  const auto add = [&](const std::string& key) {
    if (seen.insert(key).second) keys.push_back(key);
  };
  if (auto it = anon_keys_.find(ast.schema_name); it != anon_keys_.end()) {
    for (const auto& k : it->second) add(k);
  }
  const std::function<void(const std::vector<pml::PromptItem>&)> walk =
      [&](const std::vector<pml::PromptItem>& items) {
        for (const auto& item : items) {
          if (item.is_text()) continue;
          add(ast.schema_name + "::" + item.import->module_name);
          walk(item.import->children);
        }
      };
  walk(ast.items);
  return keys;
}

int ShardRouter::pick_shard_locked(const std::vector<std::string>& keys,
                                   uint64_t prompt_hash) const {
  // Affinity discounted by queue pressure: one outstanding request costs
  // half a module of ownership, so a hot prompt serializing on its best
  // owner spills to the next replica (and eventually anywhere) once the
  // owner's queue is deep enough to outweigh the cross-fetch. On an idle
  // router this is exactly "largest owned share".
  std::vector<int64_t> eff(static_cast<size_t>(config_.n_shards),
                           std::numeric_limits<int64_t>::min());
  for (int s = 0; s < config_.n_shards; ++s) {
    if (!shards_[static_cast<size_t>(s)]->alive) continue;
    eff[static_cast<size_t>(s)] =
        -2 * shards_[static_cast<size_t>(s)]->outstanding;
  }
  for (const auto& key : keys) {
    for (int o : owners_of(key)) {
      if (shards_[static_cast<size_t>(o)]->alive) {
        eff[static_cast<size_t>(o)] += 4;
      }
    }
  }
  int best = -1;
  for (int s = 0; s < config_.n_shards; ++s) {
    if (!shards_[static_cast<size_t>(s)]->alive) continue;
    if (best < 0 ||
        eff[static_cast<size_t>(s)] > eff[static_cast<size_t>(best)]) {
      best = s;
    }
  }
  if (best < 0) return -1;
  // Tie-break among live max-score shards by a ring walk from the prompt
  // hash: deterministic, and spreads no-module prompts across the fleet.
  const int64_t best_eff = eff[static_cast<size_t>(best)];
  auto it = std::lower_bound(ring_.begin(), ring_.end(),
                             std::make_pair(prompt_hash, -1));
  for (size_t step = 0; step < ring_.size(); ++step) {
    if (it == ring_.end()) it = ring_.begin();
    const int s = it->second;
    if (shards_[static_cast<size_t>(s)]->alive &&
        eff[static_cast<size_t>(s)] == best_eff) {
      return s;
    }
    ++it;
  }
  return best;
}

int ShardRouter::route_shard(const std::string& prompt) const {
  const auto keys = prompt_module_keys(prompt);
  const uint64_t h =
      splitmix64(std::hash<std::string>{}(prompt) ^ config_.ring_seed);
  std::lock_guard<std::mutex> lock(mutex_);
  return pick_shard_locked(keys, h);
}

bool ShardRouter::shard_has_module(int shard, const std::string& key) const {
  PC_CHECK(shard >= 0 && shard < config_.n_shards);
  Shard& s = *shards_[static_cast<size_t>(shard)];
  std::lock_guard<std::mutex> lock(s.lifecycle);
  return s.store != nullptr && s.store->contains(key);
}

bool ShardRouter::shard_alive(int shard) const {
  PC_CHECK(shard >= 0 && shard < config_.n_shards);
  std::lock_guard<std::mutex> lock(mutex_);
  return shards_[static_cast<size_t>(shard)]->alive;
}

// --- Submission and chaos --------------------------------------------------

uint64_t ShardRouter::submit(std::string prompt,
                             const GenerateOptions& options,
                             double deadline_ms) {
  uint64_t rid = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopped_) throw Error("ShardRouter is stopped");
    rid = next_rid_++;
    submitted_.inc();
    const auto now = std::chrono::steady_clock::now();
    if (!clock_started_) {
      clock_started_ = true;
      first_submit_ = now;
    }
    Pending p;
    p.prompt = prompt;
    p.options = options;
    p.deadline_ms = deadline_ms;
    p.submitted = now;
    pending_.emplace(rid, std::move(p));

    // Advance auto-restart countdowns (chaos schedules move with traffic).
    for (auto& sp : shards_) {
      if (sp->alive || sp->restart_countdown <= 0) continue;
      if (--sp->restart_countdown == 0) {
        sp->restart_countdown = -1;
        sp->restart_queued = true;
        Event e;
        e.kind = Event::Kind::kRestart;
        e.shard = sp->index;
        push_event(std::move(e));
      }
    }

    // Poll the shard-kill fault point — only while a victim exists, so
    // injected(kShardKill) reconciles exactly with observed kills.
    bool any_alive = false;
    for (const auto& sp : shards_) any_alive = any_alive || sp->alive;
    if (any_alive &&
        FaultInjector::global().should_fail(FaultPoint::kShardKill)) {
      for (int i = 0; i < config_.n_shards; ++i) {
        const int victim =
            static_cast<int>(next_victim_++ % config_.n_shards);
        if (!shards_[static_cast<size_t>(victim)]->alive) continue;
        std::vector<uint64_t> flushed;
        kill_locked(victim, flushed);
        for (uint64_t f : flushed) {
          Event e;
          e.kind = Event::Kind::kFailover;
          e.rid = f;
          push_event(std::move(e));
        }
        break;
      }
    }
  }
  dispatch(rid);
  return rid;
}

void ShardRouter::kill_shard(int shard) {
  PC_CHECK(shard >= 0 && shard < config_.n_shards);
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<uint64_t> flushed;
  kill_locked(shard, flushed);
  for (uint64_t f : flushed) {
    Event e;
    e.kind = Event::Kind::kFailover;
    e.rid = f;
    push_event(std::move(e));
  }
}

void ShardRouter::kill_locked(int victim, std::vector<uint64_t>& flushed) {
  Shard& s = *shards_[static_cast<size_t>(victim)];
  if (!s.alive) return;
  s.alive = false;
  ++s.epoch;
  ++s.kills;
  kills_.inc();
  live_gauge_.sub(1);
  s.restart_countdown =
      config_.restart_after_submits > 0 ? config_.restart_after_submits : -1;
  s.outstanding = 0;  // the flush below reclaims every in-flight slot
  // Cross-fetch references into the dead store are moot: the restart
  // rebuilds it empty, and surviving dispatches re-fetch on their new
  // target under fresh references.
  for (auto it = fetch_refs_.begin(); it != fetch_refs_.end();) {
    if (it->first.first == victim) {
      it = fetch_refs_.erase(it);
    } else {
      ++it;
    }
  }
  // Late deliveries parked before the kill are from the dead generation.
  for (auto it = orphans_.begin(); it != orphans_.end();) {
    if (std::get<0>(it->first) == victim) {
      it = orphans_.erase(it);
    } else {
      ++it;
    }
  }
  // Flush this shard's in-flight requests to the pump for re-routing. The
  // failover is counted HERE, once per lost dispatch.
  for (auto it = inflight_.begin(); it != inflight_.end();) {
    if (std::get<0>(it->first) == victim) {
      const uint64_t rid = it->second;
      auto pit = pending_.find(rid);
      if (pit != pending_.end()) {
        ++pit->second.failovers;
        failovers_.inc();
        flushed.push_back(rid);
      }
      it = inflight_.erase(it);
    } else {
      ++it;
    }
  }
  PC_INSTANT("shard_kill", {"shard", static_cast<int64_t>(victim)});
}

void ShardRouter::restart_shard(int shard) {
  PC_CHECK(shard >= 0 && shard < config_.n_shards);
  std::lock_guard<std::mutex> lock(mutex_);
  Shard& s = *shards_[static_cast<size_t>(shard)];
  if (s.alive || s.restart_queued) return;
  s.restart_queued = true;
  Event e;
  e.kind = Event::Kind::kRestart;
  e.shard = shard;
  push_event(std::move(e));
}

// --- Dispatch --------------------------------------------------------------

void ShardRouter::dispatch(uint64_t rid) {
  // Phase 1: snapshot the request (pending_ may already be gone if a
  // synthetic delivery beat us here).
  std::string prompt;
  GenerateOptions options;
  double deadline_ms = 0;
  int failovers = 0;
  std::chrono::steady_clock::time_point submitted;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = pending_.find(rid);
    if (it == pending_.end()) return;
    prompt = it->second.prompt;
    options = it->second.options;
    deadline_ms = it->second.deadline_ms;
    failovers = it->second.failovers;
    submitted = it->second.submitted;
  }

  const auto keys = prompt_module_keys(prompt);
  const uint64_t prompt_hash =
      splitmix64(std::hash<std::string>{}(prompt) ^ config_.ring_seed);

  // Phase 2: pick a live target and snapshot its epoch + fleet liveness.
  int target = -1;
  uint64_t epoch_snap = 0;
  std::vector<bool> alive_snap(static_cast<size_t>(config_.n_shards), false);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (pending_.find(rid) == pending_.end()) return;
    target = pick_shard_locked(keys, prompt_hash);
    if (target >= 0) {
      Shard& s = *shards_[static_cast<size_t>(target)];
      epoch_snap = s.epoch;
      ++s.routed;
      ++s.outstanding;  // reclaimed at delivery or by the kill flush
      for (int i = 0; i < config_.n_shards; ++i) {
        alive_snap[static_cast<size_t>(i)] =
            shards_[static_cast<size_t>(i)]->alive;
      }
    }
  }
  if (target < 0) {
    process_failover(rid);  // all-dead handling lives there
    return;
  }
  Shard& tgt = *shards_[static_cast<size_t>(target)];

  // Phase 3: make the target's store serve-ready. Keys the target OWNS are
  // its responsibility (pinned at placement; re-encoded lazily after a
  // restart). Keys it doesn't own are fetched from a live holder and the
  // transfer charged through cross_link; when every replica of a key is
  // down, the request degrades to full prefill.
  int owned = 0;
  size_t fetch_bytes = 0;
  uint64_t fetches = 0;
  bool force_full_prefill = false;
  std::string down_key;
  std::vector<std::string> fetched;
  for (const auto& key : keys) {
    const auto owners = owners_of(key);
    const bool target_owns =
        std::find(owners.begin(), owners.end(), target) != owners.end();
    if (target_owns) {
      ++owned;
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(tgt.lifecycle);
      if (tgt.store != nullptr && tgt.store->contains(key)) {
        // A concurrent request's cross-fetched copy: share it, and hold a
        // reference so its delivery can't stream it out from under us.
        fetched.push_back(key);
        continue;
      }
    }
    bool any_owner_alive = false;
    for (int o : owners) {
      any_owner_alive =
          any_owner_alive || alive_snap[static_cast<size_t>(o)];
    }
    if (!any_owner_alive) {
      force_full_prefill = true;
      down_key = key;
      unavailable_degrades_.inc();
      break;
    }
    // Copy from a live holder (owners first — they pin it resident).
    EncodedModule payload;
    bool have_payload = false;
    for (int src : owners) {
      if (!alive_snap[static_cast<size_t>(src)] || src == target) continue;
      Shard& s = *shards_[static_cast<size_t>(src)];
      std::lock_guard<std::mutex> lock(s.lifecycle);
      if (s.store == nullptr) continue;
      if (auto ref = s.store->find(key)) {
        payload = *ref;
        have_payload = true;
        break;
      }
    }
    if (!have_payload) {
      // No live copy anywhere: encode on a live owner (its placement
      // engine), so ownership discipline holds, then copy from there.
      const auto parts = key_parts_.find(key);
      for (int o : owners) {
        if (parts == key_parts_.end()) break;
        if (!alive_snap[static_cast<size_t>(o)]) continue;
        Shard& s = *shards_[static_cast<size_t>(o)];
        std::lock_guard<std::mutex> lock(s.lifecycle);
        if (s.placement == nullptr) continue;
        try {
          s.placement->pin_module(parts->second.first, parts->second.second);
          s.owner_pinned.insert(key);
        } catch (const Error&) {
          continue;
        }
        if (auto ref = s.store->find(key)) {
          payload = *ref;
          have_payload = true;
          break;
        }
      }
    }
    if (!have_payload) {
      // The target's engine encodes it lazily at serve; that copy is
      // non-owned too, so track it for stream-out at delivery.
      fetched.push_back(key);
      continue;
    }
    const size_t bytes = payload.payload_bytes();
    try {
      std::lock_guard<std::mutex> lock(tgt.lifecycle);
      if (tgt.store == nullptr) continue;
      tgt.store->insert(key, std::move(payload));
    } catch (const CacheError&) {
      fetched.push_back(key);  // lazily re-encoded at serve; still non-owned
      continue;  // doesn't fit; serve-side ensure() deals with it
    }
    fetch_bytes += bytes;
    ++fetches;
    cross_fetches_.inc();
    cross_fetch_bytes_.inc(bytes);
    fetched.push_back(key);
  }
  const double extra_stall_ms =
      fetches > 0 ? config_.cross_link.stall_s(fetch_bytes) * 1e3 : 0.0;

  // Phase 4: hand to the shard's Server and register the inflight mapping.
  SubmitOptions sopts;
  sopts.extra_stall_ms = extra_stall_ms;
  sopts.force_full_prefill = force_full_prefill;
  if (force_full_prefill) {
    sopts.annotation =
        "all replicas down for " + down_key + ": full prefill";
  } else {
    sopts.annotation = "shard " + std::to_string(target) + ": owns " +
                       std::to_string(owned) + "/" +
                       std::to_string(keys.size()) + " modules" +
                       (failovers > 0
                            ? ", failover " + std::to_string(failovers)
                            : "");
  }
  if (deadline_ms > 0) {
    const double remaining =
        deadline_ms - ms_between(submitted, std::chrono::steady_clock::now());
    if (remaining <= 0) {
      ServerResponse r;
      r.status = ServeStatus::kTimeout;
      r.detail = "deadline expired during shard failover";
      std::vector<std::string> stranded;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        if (pending_.find(rid) == pending_.end()) return;
        if (tgt.alive && tgt.epoch == epoch_snap) {
          // The dispatch never reached the target: give back its routing
          // slot and stream out copies no concurrent request references.
          // (A kill since phase 2 already reclaimed both.)
          if (tgt.outstanding > 0) --tgt.outstanding;
          if (!config_.cache_cross_fetches) {
            for (const auto& key : fetched) {
              if (fetch_refs_.find({target, key}) == fetch_refs_.end()) {
                stranded.push_back(key);
              }
            }
          }
        }
        (void)deliver_locked(rid, -1, std::move(r));
      }
      cv_done_.notify_all();
      if (!stranded.empty()) {
        std::lock_guard<std::mutex> lock(tgt.lifecycle);
        if (tgt.store != nullptr) {
          for (const auto& key : stranded) tgt.store->erase(key);
        }
      }
      return;
    }
    sopts.deadline_ms = remaining;
  }

  bool delivered = false;
  std::vector<std::string> cleanup;
  {
    // lifecycle held across submit(): a restart cannot swap the Server out
    // from under us, and lifecycle -> mutex_ is the sanctioned order.
    std::lock_guard<std::mutex> lifecycle(tgt.lifecycle);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (pending_.find(rid) == pending_.end()) return;
      if (!tgt.alive || tgt.epoch != epoch_snap) {
        auto& p = pending_.at(rid);
        ++p.failovers;
        failovers_.inc();
        Event e;
        e.kind = Event::Kind::kFailover;
        e.rid = rid;
        push_event(std::move(e));
        return;
      }
    }
    const uint64_t sid = tgt.server->submit(prompt, options, sopts);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = pending_.find(rid);
      PC_CHECK(it != pending_.end());
      Pending& p = it->second;
      p.last_shard = target;
      p.last_dispatch = std::chrono::steady_clock::now();
      if (tgt.alive && tgt.epoch == epoch_snap) {
        // Registration sticks: reference the non-owned keys this dispatch
        // uses so no concurrent delivery streams them out mid-serve. (On
        // epoch mismatch the kill already cleared the shard's refs and the
        // restart rebuilds the store empty — nothing to reference.)
        p.fetched_keys = fetched;
        if (!config_.cache_cross_fetches) {
          for (const auto& key : fetched) ++fetch_refs_[{target, key}];
        }
      }
      if (!tgt.alive || tgt.epoch != epoch_snap) {
        // Killed while submit() was in flight; the zombie's delivery will
        // carry the old generation and be dropped.
        ++p.failovers;
        failovers_.inc();
        Event e;
        e.kind = Event::Kind::kFailover;
        e.rid = rid;
        push_event(std::move(e));
      } else {
        const InflightKey k{target, epoch_snap, sid};
        auto oit = orphans_.find(k);
        if (oit != orphans_.end()) {
          // The server finished before we registered: consume the parked
          // delivery now.
          ServerResponse resp = std::move(oit->second);
          orphans_.erase(oit);
          cleanup = deliver_locked(rid, target, std::move(resp));
          delivered = true;
        } else {
          inflight_[k] = rid;
        }
      }
    }
  }
  if (delivered) {
    cv_done_.notify_all();
    if (!cleanup.empty()) {
      std::lock_guard<std::mutex> lock(tgt.lifecycle);
      if (tgt.store != nullptr) {
        for (const auto& key : cleanup) tgt.store->erase(key);
      }
    }
  }
}

// --- Pump ------------------------------------------------------------------

void ShardRouter::push_event(Event e) {
  {
    std::lock_guard<std::mutex> lock(events_mutex_);
    events_.push_back(std::move(e));
  }
  events_cv_.notify_one();
}

void ShardRouter::pump_loop() {
  for (;;) {
    Event e;
    {
      std::unique_lock<std::mutex> lock(events_mutex_);
      events_cv_.wait(lock,
                      [this] { return pump_stop_ || !events_.empty(); });
      if (events_.empty()) return;  // pump_stop_ and fully drained
      e = std::move(events_.front());
      events_.pop_front();
    }
    switch (e.kind) {
      case Event::Kind::kDelivery:
        process_delivery(e);
        break;
      case Event::Kind::kFailover:
        process_failover(e.rid);
        break;
      case Event::Kind::kRestart:
        process_restart(e.shard);
        break;
    }
  }
}

void ShardRouter::process_delivery(Event& e) {
  bool delivered = false;
  std::vector<std::string> cleanup;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const InflightKey k{e.shard, e.epoch, e.resp.id};
    auto it = inflight_.find(k);
    if (it != inflight_.end()) {
      const uint64_t rid = it->second;
      inflight_.erase(it);
      cleanup = deliver_locked(rid, e.shard, std::move(e.resp));
      delivered = true;
    } else {
      Shard& s = *shards_[static_cast<size_t>(e.shard)];
      if (s.alive && s.epoch == e.epoch) {
        // Raced its own registration; park until dispatch registers it.
        orphans_.emplace(k, std::move(e.resp));
      }
      // else: a zombie generation's output — dropped (the request already
      // failed over).
    }
  }
  if (!delivered) return;
  cv_done_.notify_all();
  if (!cleanup.empty()) {
    Shard& s = *shards_[static_cast<size_t>(e.shard)];
    std::lock_guard<std::mutex> lock(s.lifecycle);
    if (s.store != nullptr) {
      for (const auto& key : cleanup) s.store->erase(key);
    }
  }
}

std::vector<std::string> ShardRouter::deliver_locked(uint64_t rid, int shard,
                                                     ServerResponse&& resp) {
  auto it = pending_.find(rid);
  PC_CHECK(it != pending_.end());
  Pending& p = it->second;
  ShardResponse out;
  out.id = rid;
  out.shard = shard;
  out.failovers = p.failovers;
  out.failover_ms =
      p.failovers > 0 ? ms_between(p.submitted, p.last_dispatch) : 0;
  switch (resp.status) {
    case ServeStatus::kOk:
      ++n_completed_;
      break;
    case ServeStatus::kDegraded:
      ++n_completed_;
      ++n_degraded_;
      break;
    case ServeStatus::kTimeout:
      ++n_timeouts_;
      break;
    case ServeStatus::kShed:
      ++n_shed_;
      break;
    case ServeStatus::kFailed:
      ++n_failed_;
      break;
  }
  slo_.record(is_served(resp.status), resp.deadline_met);
  out.resp = std::move(resp);
  delivered_ctr_.inc();
  ++delivered_count_;
  last_delivery_ = std::chrono::steady_clock::now();
  delivered_.push_back(std::move(out));
  if (shard >= 0) {
    // The delivering registration's routing slot. A delivery with a live
    // registration implies no kill since dispatch (the flush would have
    // consumed it), so this pairs exactly with phase 2's increment.
    Shard& s = *shards_[static_cast<size_t>(shard)];
    if (s.outstanding > 0) --s.outstanding;
  }
  std::vector<std::string> cleanup;
  if (!config_.cache_cross_fetches && shard >= 0 && shard == p.last_shard) {
    // Release this request's references; stream out keys nobody else uses.
    for (const auto& key : p.fetched_keys) {
      auto rit = fetch_refs_.find({shard, key});
      if (rit == fetch_refs_.end()) continue;  // cleared by a kill
      if (--rit->second <= 0) {
        fetch_refs_.erase(rit);
        cleanup.push_back(key);
      }
    }
  }
  pending_.erase(it);
  return cleanup;
}

void ShardRouter::process_failover(uint64_t rid) {
  bool delivered = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (pending_.find(rid) == pending_.end()) return;
    bool any_alive = false;
    bool restart_coming = false;
    for (const auto& sp : shards_) {
      any_alive = any_alive || sp->alive;
      restart_coming = restart_coming || sp->restart_queued;
    }
    if (!any_alive) {
      if (!restart_coming && config_.restart_after_submits > 0) {
        // Rescue: force the first dead shard back up rather than failing
        // requests that auto-restart would have saved moments later.
        Shard& s = *shards_[0];
        s.restart_queued = true;
        s.restart_countdown = -1;
        Event e;
        e.kind = Event::Kind::kRestart;
        e.shard = s.index;
        push_event(std::move(e));
        restart_coming = true;
      }
      if (restart_coming) {
        // Requeue behind the restart (event order is FIFO).
        Event e;
        e.kind = Event::Kind::kFailover;
        e.rid = rid;
        push_event(std::move(e));
        return;
      }
      ServerResponse r;
      r.status = ServeStatus::kFailed;
      r.detail = "all shards down";
      deliver_locked(rid, -1, std::move(r));
      delivered = true;
    }
  }
  if (delivered) {
    cv_done_.notify_all();
    return;
  }
  dispatch(rid);
}

void ShardRouter::process_restart(int shard) {
  Shard& s = *shards_[static_cast<size_t>(shard)];
  std::lock_guard<std::mutex> lifecycle(s.lifecycle);
  uint64_t gen = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (s.alive) {
      s.restart_queued = false;
      return;
    }
    gen = s.epoch + 1;
  }
  // Tear down the zombie (joins its workers; their final on_record events
  // carry the old generation and are dropped) and come back empty.
  s.server.reset();
  s.placement.reset();
  s.store.reset();
  s.owner_pinned.clear();
  build_shard(s, gen);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    s.epoch = gen;
    s.alive = true;
    s.restart_queued = false;
    s.restart_countdown = -1;
    restarts_.inc();
    live_gauge_.add(1);
  }
  PC_INSTANT("shard_restart", {"shard", static_cast<int64_t>(shard)});
  replicator_cv_.notify_all();
}

// --- Healing ---------------------------------------------------------------

uint64_t ShardRouter::replicate_now() {
  std::lock_guard<std::mutex> lock(replicator_mutex_);
  return replicate_pass();
}

uint64_t ShardRouter::replicate_pass() {
  uint64_t healed = 0;
  for (const auto& key : all_keys_) {
    const auto owners = owners_of(key);
    std::vector<int> live_owners;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (int o : owners) {
        if (shards_[static_cast<size_t>(o)]->alive) live_owners.push_back(o);
      }
    }
    for (int o : live_owners) {
      Shard& dst = *shards_[static_cast<size_t>(o)];
      bool have = false;
      bool pinned = false;
      {
        std::lock_guard<std::mutex> lock(dst.lifecycle);
        if (dst.store == nullptr) continue;
        have = dst.store->contains(key);
        pinned = dst.owner_pinned.count(key) > 0;
      }
      if (have && pinned) continue;
      if (have) {
        std::lock_guard<std::mutex> lock(dst.lifecycle);
        if (dst.store != nullptr && dst.store->pin(key)) {
          dst.owner_pinned.insert(key);
        }
        continue;
      }
      // Copy from any live holder (other owners first), else re-encode.
      EncodedModule payload;
      bool have_payload = false;
      for (int src : live_owners) {
        if (src == o) continue;
        Shard& s = *shards_[static_cast<size_t>(src)];
        std::lock_guard<std::mutex> lock(s.lifecycle);
        if (s.store == nullptr) continue;
        if (auto ref = s.store->find(key)) {
          payload = *ref;
          have_payload = true;
          break;
        }
      }
      if (have_payload) {
        const double stall_s = config_.cross_link.stall_s(
            payload.payload_bytes());
        if (stall_s > 0) {
          std::this_thread::sleep_for(
              std::chrono::duration<double>(stall_s));
        }
        try {
          std::lock_guard<std::mutex> lock(dst.lifecycle);
          if (dst.store == nullptr) continue;
          dst.store->insert(key, std::move(payload));
          dst.store->pin(key);
          dst.owner_pinned.insert(key);
        } catch (const CacheError&) {
          continue;
        }
        rereplications_.inc();
        ++healed;
      } else {
        const auto parts = key_parts_.find(key);
        if (parts == key_parts_.end()) continue;
        std::lock_guard<std::mutex> lock(dst.lifecycle);
        if (dst.placement == nullptr) continue;
        try {
          dst.placement->pin_module(parts->second.first,
                                    parts->second.second);
          dst.owner_pinned.insert(key);
        } catch (const Error&) {
          continue;  // encode fault / capacity: next pass retries
        }
        rereplications_.inc();
        ++healed;
      }
    }
  }
  return healed;
}

void ShardRouter::replicator_loop() {
  std::unique_lock<std::mutex> lock(replicator_mutex_);
  while (!replicator_stop_) {
    replicator_cv_.wait_for(
        lock,
        std::chrono::duration<double, std::milli>(
            config_.replicate_interval_ms),
        [this] { return replicator_stop_; });
    if (replicator_stop_) return;
    replicate_pass();  // still holding replicator_mutex_: passes serialize
  }
}

// --- Drain / stop / stats --------------------------------------------------

std::vector<ShardResponse> ShardRouter::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_done_.wait(lock, [this] { return delivered_count_ == next_rid_; });
  std::vector<ShardResponse> out = std::move(delivered_);
  delivered_.clear();
  std::sort(out.begin(), out.end(),
            [](const ShardResponse& a, const ShardResponse& b) {
              return a.id < b.id;
            });
  return out;
}

void ShardRouter::stop() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    stopped_ = true;
    cv_done_.wait(lock, [this] { return delivered_count_ == next_rid_; });
  }
  {
    std::lock_guard<std::mutex> lock(replicator_mutex_);
    replicator_stop_ = true;
  }
  replicator_cv_.notify_all();
  if (replicator_.joinable()) replicator_.join();
  {
    std::lock_guard<std::mutex> lock(events_mutex_);
    pump_stop_ = true;
  }
  events_cv_.notify_all();
  if (pump_.joinable()) pump_.join();
  for (auto& sp : shards_) {
    std::lock_guard<std::mutex> lock(sp->lifecycle);
    if (sp->server) sp->server->stop();
  }
}

ShardRouterStats ShardRouter::stats() const {
  ShardRouterStats out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out.submitted = next_rid_;
    out.delivered = delivered_count_;
    out.completed = n_completed_;
    out.degraded = n_degraded_;
    out.timeouts = n_timeouts_;
    out.shed = n_shed_;
    out.failed = n_failed_;
    out.kills = kills_.value();
    out.restarts = restarts_.value();
    out.failovers = failovers_.value();
    out.cross_fetches = cross_fetches_.value();
    out.cross_fetch_bytes = cross_fetch_bytes_.value();
    out.rereplications = rereplications_.value();
    out.unavailable_degrades = unavailable_degrades_.value();
    out.availability = out.delivered > 0
                           ? static_cast<double>(out.completed) /
                                 static_cast<double>(out.delivered)
                           : 1.0;
    if (clock_started_ && out.delivered > 0) {
      out.wall_ms = ms_between(first_submit_, last_delivery_);
      if (out.wall_ms > 0) {
        out.throughput_rps =
            static_cast<double>(out.completed) / (out.wall_ms / 1e3);
      }
    }
    out.shards.resize(static_cast<size_t>(config_.n_shards));
    for (int i = 0; i < config_.n_shards; ++i) {
      const Shard& s = *shards_[static_cast<size_t>(i)];
      auto& ss = out.shards[static_cast<size_t>(i)];
      ss.alive = s.alive;
      ss.epoch = s.epoch;
      ss.routed = s.routed;
      ss.kills = s.kills;
    }
  }
  // Store footprints need the lifecycle locks — taken after mutex_ is
  // released (lifecycle -> mutex_ is the only sanctioned nesting).
  for (int i = 0; i < config_.n_shards; ++i) {
    Shard& s = *shards_[static_cast<size_t>(i)];
    std::lock_guard<std::mutex> lock(s.lifecycle);
    if (s.store == nullptr) continue;
    const size_t bytes = s.store->resident_bytes();
    out.shards[static_cast<size_t>(i)].resident_bytes = bytes;
    if (out.shards[static_cast<size_t>(i)].alive) {
      out.resident_bytes_total += bytes;
    }
  }
  return out;
}

}  // namespace pc
