// Cluster sharding with replicated module placement and shard-kill
// failover (docs/INTERNALS.md §14).
//
// A single Server tops out at one process's cores; the ROADMAP's
// millions-of-users north star needs a fleet. ShardRouter fronts N shards —
// each a full serving instance (SharedModuleStore + Server + a placement
// engine) — and makes the fleet behave like one cache:
//
//   * Placement. Modules are placed by consistent hashing on a
//     virtual-node ring: the first R distinct shards walking the ring from
//     hash(key) are the key's OWNERS and keep its encoded states pinned
//     resident (replication factor R). Ownership is static — it never
//     moves with liveness — so any two routers with the same config agree
//     on it, and a restarted shard re-acquires exactly its old keys.
//
//   * Routing. A request goes to the live shard owning the largest share
//     of its imported modules, discounted by queue pressure: each
//     outstanding request on a candidate costs half a module of affinity,
//     so a Zipf-hot prompt spills across its replicas (and, under enough
//     pressure, the whole fleet) instead of serializing on one owner.
//     Remaining ties break by a ring walk from the prompt hash, which both
//     determinizes and spreads no-module prompts. Any shard serves any
//     prompt bitwise-identically, so routing is purely a performance
//     decision. Modules the chosen shard lacks are fetched from a live
//     holder — payload copied
//     store-to-store, the transfer time charged through
//     ShardConfig::cross_link as extra stall on the request (overlapping
//     other requests' compute, like every LinkModel stall). Fetched
//     non-owned copies are streamed: dropped again once the request
//     completes (cache_cross_fetches keeps them instead), so fleet
//     footprint stays ~R × distinct module bytes instead of N ×.
//
//   * Failover. FaultPoint::kShardKill (PC_FAULTS "shardkill=rate[xN]")
//     kills a shard deterministically: its health epoch bumps, its
//     in-flight requests are flushed to the router's pump thread and
//     re-routed to a replica, and late deliveries from the zombie Server
//     carry a stale epoch and are dropped. When every replica holding a
//     request's modules is down, the request degrades to the existing
//     full-prefill path (Server's SubmitOptions::force_full_prefill) —
//     tokens stay bitwise-identical in every case, which the chaos suite
//     (tests/test_shard.cpp) asserts against an unsharded Server.
//
//   * Healing. A killed shard restarts (after restart_after_submits
//     submits, or restart_shard()) with an empty store; a background
//     replicator copies every owned module back from surviving holders
//     (re-encoding when no copy survived anywhere) so replication factor R
//     is restored without blocking serving.
//
// Counters land in the pc_shard_* registry family; availability feeds a
// router-level SloTracker so chaos runs can assert availability 1.0.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "core/engine.h"
#include "core/shared_module_store.h"
#include "obs/metrics.h"
#include "obs/sampler.h"
#include "sys/server.h"

namespace pc {

struct ShardConfig {
  int n_shards = 2;
  // Replication factor: how many shards pin each module resident. Clamped
  // to n_shards. R >= 2 survives any single shard kill without degrading.
  int replication = 2;
  // Virtual nodes per shard on the placement ring. More vnodes = smoother
  // key balance; 64 keeps the max/min owned-key ratio near 1 for the
  // module counts this repo serves.
  int vnodes = 64;
  uint64_t ring_seed = 0x5eedULL;
  // Per-shard serving config. schemas/engine/link/retry/batching all apply
  // per shard; the router forces retain_responses=false and installs its
  // own on_record hook. eager_encode is forced off — initial placement
  // (the router's ctor) encodes each module exactly once fleet-wide and
  // copies it to the other owners.
  ServerConfig server;
  // Per-shard store capacities (0 = unlimited). Owned modules are pinned,
  // so a limited tier must at least fit the shard's owned share.
  size_t device_capacity = 0;
  size_t host_capacity = 0;
  // Inter-shard interconnect: cross-shard module fetches and
  // re-replication copies are charged stall_s(bytes) through this model.
  LinkModel cross_link;
  // Keep cross-fetched non-owned copies resident (evictable) instead of
  // dropping them at request completion. Off by default: streaming keeps
  // fleet footprint at ~R × distinct bytes under skewed popularity.
  bool cache_cross_fetches = false;
  // Auto-restart a killed shard after this many router submits (0 = only
  // restart_shard() / the all-dead rescue restarts it).
  int restart_after_submits = 0;
  // Background re-replication cadence (0 = no thread; replicate_now()
  // still works, which is what the deterministic tests use).
  double replicate_interval_ms = 0;
  obs::SloConfig slo;  // router-level availability window
};

// A Server response plus its routing history.
struct ShardResponse {
  uint64_t id = 0;     // router id, == submission order
  int shard = -1;      // shard that produced the final response
  int failovers = 0;   // times this request was re-routed after a kill
  double failover_ms = 0;  // submit -> final dispatch (0 when unrouted)
  ServerResponse resp;     // resp.id is the shard-local id, not `id`
};

struct ShardStats {
  bool alive = true;
  uint64_t epoch = 0;     // health epoch: +1 per kill and per restart
  uint64_t routed = 0;    // requests dispatched here (incl. failovers)
  uint64_t kills = 0;
  size_t resident_bytes = 0;
};

struct ShardRouterStats {
  uint64_t submitted = 0;
  uint64_t delivered = 0;
  uint64_t completed = 0;  // is_served: ok + degraded
  uint64_t degraded = 0;
  uint64_t timeouts = 0;
  uint64_t shed = 0;
  uint64_t failed = 0;
  uint64_t kills = 0;
  uint64_t restarts = 0;
  uint64_t failovers = 0;          // requests re-routed after a kill
  uint64_t cross_fetches = 0;      // modules copied shard-to-shard at serve
  uint64_t cross_fetch_bytes = 0;
  uint64_t rereplications = 0;     // healing copies (+ re-encodes)
  uint64_t unavailable_degrades = 0;  // all replicas down -> full prefill
  double availability = 1.0;       // served / delivered (1.0 when empty)
  double wall_ms = 0;              // first submit -> last delivery
  double throughput_rps = 0;
  size_t resident_bytes_total = 0;  // summed over live shards
  std::vector<ShardStats> shards;
};

// Routes requests across N sharded Servers; see the file comment.
// Thread-safe: submit()/drain()/kill_shard()/stats() may race freely.
class ShardRouter {
 public:
  ShardRouter(const Model& model, const TextTokenizer& tokenizer,
              ShardConfig config);
  ~ShardRouter();

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  // Routes and dispatches a request; returns the router-level id
  // (submission order). Polls FaultPoint::kShardKill once per submit —
  // chaos schedules advance with traffic, like every other fault point.
  uint64_t submit(std::string prompt, const GenerateOptions& options = {},
                  double deadline_ms = 0);

  // Blocks until every submitted request delivered a terminal response
  // (through any number of failovers), returns them sorted by id.
  std::vector<ShardResponse> drain();

  // Stops the pump/replicator threads and every shard Server. Idempotent;
  // the destructor calls it. Requests still in flight are completed first.
  void stop();

  ShardRouterStats stats() const;
  obs::SloTracker::Snapshot slo_snapshot() const { return slo_.snapshot(); }

  // Chaos / administrative controls ----------------------------------------

  // Kills a shard now: health epoch bumps, in-flight requests fail over.
  // No-op if already dead.
  void kill_shard(int shard);
  // Schedules a dead shard's restart on the pump thread (empty store; the
  // replicator re-pins its owned keys). No-op if alive. Does not block —
  // poll shard_alive() or call drain() to observe completion.
  void restart_shard(int shard);
  bool shard_alive(int shard) const;
  // One synchronous re-replication pass (the background thread's body) —
  // the deterministic test seam. Returns modules copied or re-encoded.
  uint64_t replicate_now();

  // Introspection (test seams) ----------------------------------------------

  int n_shards() const { return config_.n_shards; }
  // The key's static ring owners, first = primary. Liveness-independent.
  std::vector<int> module_owners(const std::string& key) const;
  // The routing decision for this prompt right now (no dispatch): the live
  // shard owning the largest share of its modules, or -1 when none live.
  int route_shard(const std::string& prompt) const;
  bool shard_has_module(int shard, const std::string& key) const;

 private:
  struct Shard {
    int index = 0;
    // Server/store/placement are rebuilt on restart; lifecycle guards the
    // pointers against a concurrent restart (never held while waiting on
    // the router mutex — lock order is mutex_ AFTER lifecycle, never the
    // reverse... see shard.cpp's locking notes).
    std::mutex lifecycle;
    std::unique_ptr<SharedModuleStore> store;
    std::unique_ptr<Server> server;
    // Encodes/pins modules for placement and healing, outside any request.
    // Guarded by lifecycle like the other pointers (a placement encode
    // briefly blocks this shard's dispatch/restart, never the fleet).
    std::unique_ptr<PromptCacheEngine> placement;
    std::set<std::string> owner_pinned;  // guarded by lifecycle

    // Liveness (guarded by the router's mutex_).
    bool alive = true;
    uint64_t epoch = 0;
    uint64_t routed = 0;
    // Dispatched but not yet delivered: the routing load signal. Reset to
    // 0 on kill (the flush reclaims every in-flight slot at once).
    int64_t outstanding = 0;
    uint64_t kills = 0;
    int restart_countdown = -1;  // submits until auto-restart; -1 = none
    bool restart_queued = false;
  };

  // What the pump processes: a shard delivery, a failover re-dispatch, or
  // a shard restart.
  struct Event {
    enum class Kind { kDelivery, kFailover, kRestart } kind;
    int shard = -1;
    uint64_t epoch = 0;      // delivery: the producing server's generation
    ServerResponse resp;     // delivery
    uint64_t rid = 0;        // failover: router id
  };

  // An undelivered request, kept until a terminal response lands so a
  // failover can re-dispatch it verbatim.
  struct Pending {
    std::string prompt;
    GenerateOptions options;
    double deadline_ms = 0;
    std::chrono::steady_clock::time_point submitted;
    // When the surviving dispatch handed the request to its shard; with
    // failovers > 0, delivered ShardResponse::failover_ms = submitted ->
    // last_dispatch (the re-routing cost the kills added).
    std::chrono::steady_clock::time_point last_dispatch;
    int failovers = 0;
    int last_shard = -1;
    // Non-owned keys this dispatch uses on last_shard (cross-fetched or
    // already present from a concurrent request). Each holds a fetch_refs_
    // reference; the key streams back out of the store when the last
    // reference drops (unless cache_cross_fetches).
    std::vector<std::string> fetched_keys;
  };

  using InflightKey = std::tuple<int, uint64_t, uint64_t>;  // shard, epoch, sid

  void build_shard(Shard& s, uint64_t gen_epoch);
  void push_event(Event e);
  void pump_loop();
  void replicator_loop();
  // One healing sweep over all_keys_ (caller holds replicator_mutex_).
  uint64_t replicate_pass();
  // Routes + dispatches pending_[rid] to a live shard (or delivers kFailed
  // when none). Called from submit() and from the pump (failover).
  void dispatch(uint64_t rid);
  // Books the terminal response under mutex_; returns the cross-fetched
  // keys to stream back out of `shard`'s store (empty unless this delivery
  // came from the last dispatch target and streaming is on). The caller
  // erases them outside mutex_ and notifies cv_done_.
  std::vector<std::string> deliver_locked(uint64_t rid, int shard,
                                          ServerResponse&& resp);
  void process_delivery(Event& e);
  void process_failover(uint64_t rid);
  void process_restart(int shard);
  void kill_locked(int victim, std::vector<uint64_t>& flushed);
  // Module keys imported by a prompt (schema-qualified, encode order not
  // needed): parse-only, no engine.
  std::vector<std::string> prompt_module_keys(const std::string& prompt) const;
  std::vector<int> owners_of(const std::string& key) const;
  int pick_shard_locked(const std::vector<std::string>& keys,
                        uint64_t prompt_hash) const;

  const Model& model_;
  const TextTokenizer& tokenizer_;
  ShardConfig config_;

  // Placement ring: (hash, shard), sorted by hash. Immutable after ctor.
  std::vector<std::pair<uint64_t, int>> ring_;
  // Every module key of every configured schema ("schema::module"),
  // enumerated at ctor for initial placement and healing sweeps.
  std::vector<std::string> all_keys_;
  // key -> (schema name, module name), for pin_module on owners.
  std::map<std::string, std::pair<std::string, std::string>> key_parts_;
  // schema name -> keys of its anonymous (always-imported) modules.
  std::map<std::string, std::vector<std::string>> anon_keys_;

  // Event queue feeding the pump. Leaf lock: push_event never holds it
  // while taking any other lock. Declared before shards_ so zombie Server
  // callbacks (which enqueue) outlive-safely during member destruction.
  std::mutex events_mutex_;
  std::condition_variable events_cv_;
  std::deque<Event> events_;
  bool pump_stop_ = false;

  std::vector<std::unique_ptr<Shard>> shards_;

  mutable std::mutex mutex_;  // router state: pending/inflight/liveness
  std::condition_variable cv_done_;
  std::map<uint64_t, Pending> pending_;
  std::map<InflightKey, uint64_t> inflight_;
  // Deliveries that raced their own registration (the server completed a
  // request before submit() got it into inflight_): parked here, consumed
  // when the registration arrives.
  std::map<InflightKey, ServerResponse> orphans_;
  // (shard, key) -> count of in-flight requests using this non-owned key
  // on that shard. Streaming erases the key only when the count hits 0,
  // so one delivery can't pull a fetched module out from under a
  // concurrent request. Cleared per shard on kill (the store dies anyway).
  std::map<std::pair<int, std::string>, int> fetch_refs_;
  std::vector<ShardResponse> delivered_;
  uint64_t next_rid_ = 0;
  uint64_t delivered_count_ = 0;
  // Cumulative per-status tallies (survive drain()'s buffer clear).
  uint64_t n_completed_ = 0;
  uint64_t n_degraded_ = 0;
  uint64_t n_timeouts_ = 0;
  uint64_t n_shed_ = 0;
  uint64_t n_failed_ = 0;
  uint64_t next_victim_ = 0;  // round-robin shard-kill victim cursor
  bool stopped_ = false;
  bool clock_started_ = false;
  std::chrono::steady_clock::time_point first_submit_;
  std::chrono::steady_clock::time_point last_delivery_;

  std::thread pump_;
  std::thread replicator_;
  std::mutex replicator_mutex_;  // serializes replicate passes
  std::condition_variable replicator_cv_;
  bool replicator_stop_ = false;

  obs::SloTracker slo_;
  obs::Counter submitted_;      // pc_shard_router_submitted_total
  obs::Counter delivered_ctr_;  // pc_shard_router_delivered_total
  obs::Counter kills_;          // pc_shard_kills_total
  obs::Counter restarts_;       // pc_shard_restarts_total
  obs::Counter failovers_;      // pc_shard_failovers_total
  obs::Counter cross_fetches_;  // pc_shard_cross_fetches_total
  obs::Counter cross_fetch_bytes_;  // pc_shard_cross_fetch_bytes_total
  obs::Counter rereplications_;     // pc_shard_rereplications_total
  obs::Counter unavailable_degrades_;  // pc_shard_unavailable_degrades_total
  obs::Gauge live_gauge_;       // pc_shard_live
};

}  // namespace pc
