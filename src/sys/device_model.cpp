#include "sys/device_model.h"

#include <algorithm>

#include "common/error.h"

namespace pc {

namespace {

// Sustained GEMM efficiency as a function of the number of query rows.
// Skinny matmuls (few uncached tokens, single decode steps) achieve a small
// fraction of peak throughput on both CPUs and GPUs; long prefills approach
// the sustained peak. Modeled as a linear ramp with a floor.
double seq_efficiency(const HardwareProfile& hw, int64_t n_rows) {
  return hw.eff_floor +
         (1.0 - hw.eff_floor) *
             std::min(1.0, static_cast<double>(n_rows) / hw.eff_ramp_rows);
}

double compute_time_s(const HardwareProfile& hw, double flops,
                      int64_t n_rows) {
  return flops / (hw.compute_flops * seq_efficiency(hw, n_rows));
}

}  // namespace

// Profiles: peak numbers from public spec sheets, derated to the sustained
// throughput a framework-level (HF transformers-style) pipeline achieves.
// CPU compute assumes all cores, AVX-accelerated fp32 GEMM; CPU copy
// bandwidth is sustained memcpy (read+write) rather than theoretical bus
// rate. The AMD testbed pairs a faster core with slower DDR4-3600 memory
// (§5.1), which depresses both its sustained GEMM and its copy bandwidth.
const HardwareProfile& HardwareProfile::intel_i9_13900k() {
  static const HardwareProfile p{
      "Intel i9-13900K (DDR5-5600)", false,
      1.1e12,   // sustained fp32 GEMM
      89.6e9,   // DDR5-5600 dual channel
      30.0e9,   // sustained host memcpy
      2e-6, 0.0,
      0.30, 512};
  return p;
}

const HardwareProfile& HardwareProfile::amd_ryzen9_7950x() {
  static const HardwareProfile p{
      "AMD Ryzen 9 7950X (DDR4-3600)", false,
      0.85e12,  // DDR4-starved sustained GEMM
      57.6e9,
      11.0e9,   // sustained host memcpy on DDR4
      2e-6, 0.0,
      // DDR4 starves skinny GEMMs hardest: weight streaming dominates when
      // there are few rows to amortize it over.
      0.06, 768};
  return p;
}

const HardwareProfile& HardwareProfile::rtx4090() {
  static const HardwareProfile p{
      "NVIDIA RTX 4090", true,
      5.0e13,   // sustained fp16 (framework-level, no fused attention)
      1.008e12, // GDDR6X
      6.5e9,    // PCIe 4.0 x16, pageable-copy effective
      15e-6,
      30e-3,    // launch/tokenize/dispatch fixed overhead (framework-level)
      0.05, 2048};
  return p;
}

const HardwareProfile& HardwareProfile::a40() {
  static const HardwareProfile p{
      "NVIDIA A40", true, 3.0e13, 0.696e12, 6.0e9, 15e-6, 30e-3,
      0.05, 2048};
  return p;
}

const HardwareProfile& HardwareProfile::a100() {
  static const HardwareProfile p{
      "NVIDIA A100", true, 6.0e13, 1.555e12, 7.0e9, 15e-6, 30e-3,
      0.05, 2048};
  return p;
}

const std::vector<const HardwareProfile*>& HardwareProfile::all() {
  static const std::vector<const HardwareProfile*> v = {
      &intel_i9_13900k(), &amd_ryzen9_7950x(), &rtx4090(), &a40(), &a100()};
  return v;
}

TtftEstimate estimate_baseline_ttft(const HardwareProfile& hw,
                                    const ModelSpec& spec, int64_t n_tokens) {
  TtftEstimate e;
  e.compute_s = compute_time_s(hw, prefill_flops(spec, n_tokens), n_tokens) +
                hw.kernel_launch_s;
  e.transfer_s = 0.0;
  return e;
}

double estimate_memcpy_s(const HardwareProfile& hw, size_t bytes,
                         ModuleLocation from) {
  const double b = static_cast<double>(bytes);
  if (from == ModuleLocation::kDeviceMemory) {
    PC_CHECK_MSG(hw.is_gpu, "device memory requires a GPU profile");
    return b / hw.mem_bw_bytes + hw.host_link_latency_s;
  }
  // Host memory: GPUs pay the PCIe link; CPUs pay a host-to-host memcpy.
  return b / hw.host_link_bw_bytes + hw.host_link_latency_s;
}

TtftEstimate estimate_cached_ttft(const HardwareProfile& hw,
                                  const ModelSpec& spec, int64_t cached_tokens,
                                  int64_t uncached_tokens,
                                  ModuleLocation location,
                                  size_t bytes_per_cached_token) {
  PC_CHECK(cached_tokens >= 0 && uncached_tokens >= 0);
  if (bytes_per_cached_token == 0) {
    bytes_per_cached_token = spec.kv_bytes_per_token();
  }
  TtftEstimate e;
  e.transfer_s = estimate_memcpy_s(
      hw, bytes_per_cached_token * static_cast<size_t>(cached_tokens),
      location);
  // Even a fully cached prompt computes at least one position (the token
  // whose logits become the first output).
  const int64_t u = std::max<int64_t>(1, uncached_tokens);
  e.compute_s =
      compute_time_s(hw, extend_flops(spec, cached_tokens, u), u) +
      hw.kernel_launch_s;
  return e;
}

double estimate_decode_step_s(const HardwareProfile& hw, const ModelSpec& spec,
                              int64_t context_tokens) {
  // Decode is memory-bandwidth bound: every parameter and the KV cache are
  // streamed once per token. Take the max of the bandwidth and compute
  // bounds plus launch overhead.
  const double param_bytes = spec.approx_params() * spec.dtype_bytes;
  const double kv_bytes = static_cast<double>(spec.kv_bytes_per_token()) *
                          static_cast<double>(context_tokens);
  const double bw_bound = (param_bytes + kv_bytes) / hw.mem_bw_bytes;
  const double flop_bound =
      extend_flops(spec, context_tokens, 1) / (hw.compute_flops * 0.05);
  return std::max(bw_bound, flop_bound) + hw.kernel_launch_s;
}

}  // namespace pc
