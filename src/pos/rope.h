// Rotary positional embeddings (RoPE, Su et al. 2021) with position-ID
// lookup tables.
//
// The paper (§4.2) notes that stock RoPE implementations assume position IDs
// 0..n-1 and must be adapted for Prompt Cache's discontinuous IDs by
// building a lookup table of rotation matrices indexed by absolute position
// ID. RopeTable is exactly that: cos/sin rows are precomputed for every
// position up to max_pos and applied by explicit position ID.
#pragma once

#include <cmath>
#include <vector>

#include "common/error.h"

namespace pc {

class RopeTable {
 public:
  // d_head must be even. theta is the base frequency (10000 for Llama2).
  RopeTable(int d_head, int max_pos, float theta = 10000.0f)
      : d_head_(d_head), max_pos_(max_pos) {
    PC_CHECK_MSG(d_head > 0 && d_head % 2 == 0, "RoPE head dim must be even");
    PC_CHECK(max_pos > 0);
    const int half = d_head / 2;
    cos_.resize(static_cast<size_t>(max_pos) * half);
    sin_.resize(static_cast<size_t>(max_pos) * half);
    for (int p = 0; p < max_pos; ++p) {
      for (int i = 0; i < half; ++i) {
        const double freq =
            1.0 / std::pow(static_cast<double>(theta),
                           (2.0 * i) / static_cast<double>(d_head));
        const double angle = static_cast<double>(p) * freq;
        cos_[static_cast<size_t>(p) * half + i] =
            static_cast<float>(std::cos(angle));
        sin_[static_cast<size_t>(p) * half + i] =
            static_cast<float>(std::sin(angle));
      }
    }
  }

  int d_head() const { return d_head_; }
  int max_pos() const { return max_pos_; }

  // Rotates one head vector x[0..d_head) in place for position id `pos`.
  // Uses the Llama pairing (x[i], x[i + d/2]).
  void apply(float* x, int pos) const {
    PC_CHECK_MSG(pos >= 0 && pos < max_pos_,
                 "RoPE position " << pos << " out of range " << max_pos_);
    const int half = d_head_ / 2;
    const float* c = cos_.data() + static_cast<size_t>(pos) * half;
    const float* s = sin_.data() + static_cast<size_t>(pos) * half;
    for (int i = 0; i < half; ++i) {
      const float x0 = x[i];
      const float x1 = x[i + half];
      x[i] = x0 * c[i] - x1 * s[i];
      x[i + half] = x0 * s[i] + x1 * c[i];
    }
  }

 private:
  int d_head_;
  int max_pos_;
  std::vector<float> cos_;
  std::vector<float> sin_;
};

}  // namespace pc
