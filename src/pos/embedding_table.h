// Absolute positional embedding tables (learned GPT-2 style or fixed
// sinusoidal BERT style). The paper (§4.2) notes these need no adaptation
// for discontinuous position IDs beyond indexing the table by ID — which is
// what row() does.
#pragma once

#include "common/rng.h"
#include "tensor/tensor.h"

namespace pc {

class PositionTable {
 public:
  static PositionTable learned(int max_pos, int d_model, Rng& rng,
                               float stddev = 0.02f) {
    PositionTable t;
    t.table_ = Tensor({max_pos, d_model});
    for (float& x : t.table_.span()) x = rng.gauss(0.0f, stddev);
    return t;
  }

  static PositionTable sinusoidal(int max_pos, int d_model) {
    PositionTable t;
    t.table_ = Tensor({max_pos, d_model});
    for (int p = 0; p < max_pos; ++p) {
      for (int i = 0; i < d_model; ++i) {
        const double rate =
            std::pow(10000.0, -static_cast<double>(i - (i % 2)) / d_model);
        const double angle = p * rate;
        t.table_.at(p, i) = static_cast<float>((i % 2 == 0) ? std::sin(angle)
                                                            : std::cos(angle));
      }
    }
    return t;
  }

  // A zero table (for hand-constructed models that install rows manually).
  static PositionTable zeros(int max_pos, int d_model) {
    PositionTable t;
    t.table_ = Tensor({max_pos, d_model});
    return t;
  }

  int max_pos() const { return static_cast<int>(table_.dim(0)); }
  int d_model() const { return static_cast<int>(table_.dim(1)); }

  const float* row(int pos) const {
    PC_CHECK_MSG(pos >= 0 && pos < max_pos(),
                 "position " << pos << " out of table range " << max_pos());
    return table_.row(pos);
  }

  Tensor& tensor() { return table_; }
  const Tensor& tensor() const { return table_; }

 private:
  Tensor table_;
};

}  // namespace pc
