// ALiBi positional biases (Press et al. 2022), MPT/Bloom style, adapted for
// arbitrary position IDs.
//
// ALiBi adds -slope_h * distance(query, key) to attention scores. Stock
// implementations derive distance from tensor indices; Prompt Cache (§4.2)
// instead keeps the true position ID of every cached key so the bias can be
// reconstructed after modules are relocated and concatenated.
#pragma once

#include <cmath>
#include <vector>

#include "common/error.h"

namespace pc {

class Alibi {
 public:
  explicit Alibi(int n_heads) : slopes_(make_slopes(n_heads)) {}

  int n_heads() const { return static_cast<int>(slopes_.size()); }

  float slope(int head) const {
    PC_CHECK(head >= 0 && head < n_heads());
    return slopes_[static_cast<size_t>(head)];
  }

  // Additive attention bias for a (query position, key position) pair.
  float bias(int head, int q_pos, int k_pos) const {
    return -slope(head) * static_cast<float>(q_pos - k_pos);
  }

  // Geometric slope schedule 2^(-8/n), 2^(-16/n), ... For non-power-of-two
  // head counts we use the standard interleaving from the ALiBi paper.
  static std::vector<float> make_slopes(int n_heads) {
    PC_CHECK(n_heads > 0);
    auto pow2_slopes = [](int n) {
      std::vector<float> s(static_cast<size_t>(n));
      const double start = std::pow(2.0, -8.0 / n);
      double v = start;
      for (int i = 0; i < n; ++i) {
        s[static_cast<size_t>(i)] = static_cast<float>(v);
        v *= start;
      }
      return s;
    };
    // Largest power of two <= n_heads.
    int base = 1;
    while (base * 2 <= n_heads) base *= 2;
    std::vector<float> slopes = pow2_slopes(base);
    if (base < n_heads) {
      const std::vector<float> extra = pow2_slopes(2 * base);
      for (size_t i = 0; slopes.size() < static_cast<size_t>(n_heads);
           i += 2) {
        slopes.push_back(extra[i]);
      }
    }
    return slopes;
  }

 private:
  std::vector<float> slopes_;
};

}  // namespace pc
