// Unified metrics registry: named counters, gauges, and latency histograms
// with atomic fast paths, scrape-able in one place (Prometheus text format
// via obs/export.h).
//
// Naming convention: pc_<subsystem>_<name>, counters suffixed _total,
// sized gauges suffixed _bytes, histograms suffixed _seconds. Examples:
// pc_engine_serves_total, pc_store_resident_bytes, pc_server_ttft_seconds.
//
// Instrument model — families of cells:
//
//   registry.counter("pc_engine_serves_total") returns a NEW cell appended
//   to the named family. Each engine/store/server owns its own cells, so
//   per-instance accounting stays unsynchronized-fast (one relaxed atomic
//   per event, no sharing between workers) and the old stats structs
//   (EngineStats, ModuleStoreStats, ServerStats) remain cheap views over
//   their instance's cells. A scrape aggregates the family: counters and
//   gauges sum their cells, histograms merge them. Counter and histogram
//   cells are retained after their owner dies (totals never go backward);
//   gauge cells are weakly held and vanish with their owner (a destroyed
//   store stops contributing resident bytes).
//
// All instruments are usable from any thread. Handles are cheap to copy
// (shared_ptr); a default-constructed handle is a detached cell — fully
// functional, just never scraped — so members need no special init order.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/histogram.h"

namespace pc::obs {

enum class MetricType { kCounter, kGauge, kHistogram };

class MetricsRegistry;

// Monotonically increasing count. Relaxed-atomic increments.
class Counter {
 public:
  Counter() : cell_(std::make_shared<std::atomic<uint64_t>>(0)) {}

  void inc(uint64_t n = 1) { cell_->fetch_add(n, std::memory_order_relaxed); }
  Counter& operator++() {
    inc();
    return *this;
  }
  uint64_t value() const { return cell_->load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  explicit Counter(std::shared_ptr<std::atomic<uint64_t>> cell)
      : cell_(std::move(cell)) {}
  std::shared_ptr<std::atomic<uint64_t>> cell_;
};

// A settable level (queue depth, resident bytes, pinned entries).
class Gauge {
 public:
  Gauge() : cell_(std::make_shared<std::atomic<int64_t>>(0)) {}

  void set(int64_t v) { cell_->store(v, std::memory_order_relaxed); }
  void add(int64_t n) { cell_->fetch_add(n, std::memory_order_relaxed); }
  void sub(int64_t n) { cell_->fetch_sub(n, std::memory_order_relaxed); }
  int64_t value() const { return cell_->load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  explicit Gauge(std::shared_ptr<std::atomic<int64_t>> cell)
      : cell_(std::move(cell)) {}
  std::shared_ptr<std::atomic<int64_t>> cell_;
};

// A latency distribution cell wrapping LatencyHistogram. Recording takes a
// per-cell mutex — cells are per-instance (typically per-thread), so the
// lock is uncontended and costs tens of nanoseconds per request-scale
// event; scrapes lock briefly for a consistent snapshot.
class Histogram {
 public:
  Histogram() : cell_(std::make_shared<Cell>()) {}

  void record_seconds(double s) {
    std::lock_guard lock(cell_->mutex);
    cell_->hist.record_seconds(s);
  }
  void record_ms(double ms) { record_seconds(ms / 1e3); }

  LatencyHistogram snapshot() const {
    std::lock_guard lock(cell_->mutex);
    return cell_->hist;
  }

 private:
  friend class MetricsRegistry;
  struct Cell {
    mutable std::mutex mutex;
    LatencyHistogram hist;
  };
  explicit Histogram(std::shared_ptr<Cell> cell) : cell_(std::move(cell)) {}
  std::shared_ptr<Cell> cell_;
};

class MetricsRegistry {
 public:
  // The process-wide registry every subsystem registers into.
  static MetricsRegistry& global();

  // Each call appends a fresh cell to the named family and returns its
  // handle. Throws pc::Error if the name is already registered with a
  // different type.
  Counter counter(const std::string& name, const std::string& help = "");
  Gauge gauge(const std::string& name, const std::string& help = "");
  Histogram histogram(const std::string& name, const std::string& help = "");

  // Aggregated view of one family at scrape time.
  struct FamilySample {
    std::string name;
    MetricType type = MetricType::kCounter;
    std::string help;
    uint64_t counter_value = 0;        // kCounter: sum of cells
    int64_t gauge_value = 0;           // kGauge: sum of live cells
    LatencyHistogram histogram_value;  // kHistogram: merge of cells
  };
  // Families in name order. Skips gauge families whose cells all expired.
  std::vector<FamilySample> collect() const;

  size_t family_count() const;

 private:
  struct Family {
    MetricType type = MetricType::kCounter;
    std::string help;
    std::vector<std::shared_ptr<std::atomic<uint64_t>>> counters;
    std::vector<std::weak_ptr<std::atomic<int64_t>>> gauges;
    std::vector<std::shared_ptr<Histogram::Cell>> histograms;
  };

  Family& family_locked(const std::string& name, MetricType type,
                        const std::string& help);

  mutable std::mutex mutex_;
  std::map<std::string, Family> families_;
};

}  // namespace pc::obs
