// Observability exporters: Chrome/Perfetto trace JSON, Prometheus text
// format, and a human summary table. All three read the process-global
// tracer rings (obs/trace.h) and metrics registry (obs/metrics.h), so any
// layer — Server, engine, a bench main — can emit them on demand.
//
// Capture and read a trace:
//   pc::obs::set_tracing(true);           // or run with PC_TRACE=trace.json
//   ... serve traffic ...
//   pc::obs::write_perfetto_trace("trace.json");
//   -> open ui.perfetto.dev, drag the file in: one lane per thread
//      (worker0..N, poolK), nested serve/encode/concat/prefill/decode spans.
#pragma once

#include <iosfwd>
#include <string>

namespace pc::obs {

// Chrome trace_event JSON ("X" complete events, one lane per recorded
// thread, thread_name metadata, ring-drop counts as lane args). Loadable
// by ui.perfetto.dev and chrome://tracing.
void export_perfetto_json(std::ostream& os);
// Convenience wrapper; returns false (and logs nothing) on I/O failure.
bool write_perfetto_trace(const std::string& path);

// Prometheus text exposition of every registry family, plus the tracer's
// own pc_trace_dropped_events_total. Histograms export as summaries
// (quantile 0.5/0.9/0.99 labels + _sum + _count).
void export_prometheus(std::ostream& os);
bool write_prometheus_file(const std::string& path);
std::string prometheus_text();

// Human-readable dump: per-span-name aggregates (count, total/mean/max ms)
// followed by every metric family. The --obs-summary view.
void print_summary(std::ostream& os);

}  // namespace pc::obs
