// Minimal JSON reader used by tools/trace_report and the tracer tests to
// load the Perfetto files this repo writes. Recursive descent over the
// whole document into an owning tree; supports the full JSON grammar
// except \uXXXX escapes beyond Latin-1 (copied through verbatim). Not a
// general-purpose parser — inputs are traces we produced or small configs.
#pragma once

#include <cctype>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/error.h"

namespace pc::obs {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }

  // Object member access; null-kind reference if absent.
  const JsonValue& operator[](const std::string& key) const {
    static const JsonValue null_value;
    auto it = object.find(key);
    return it == object.end() ? null_value : it->second;
  }

  double as_number(double fallback = 0) const {
    return kind == Kind::kNumber ? number : fallback;
  }
  const std::string& as_string() const { return string; }
};

class JsonReader {
 public:
  // Parses a complete document; throws pc::Error on malformed input or
  // trailing garbage.
  static JsonValue parse(const std::string& text) {
    JsonReader r(text);
    JsonValue v = r.parse_value();
    r.skip_ws();
    PC_CHECK_MSG(r.pos_ == r.text_.size(),
                 "trailing characters after JSON document at offset "
                     << r.pos_);
    return v;
  }

 private:
  explicit JsonReader(const std::string& text) : text_(text) {}

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    PC_CHECK_MSG(pos_ < text_.size(), "unexpected end of JSON input");
    return text_[pos_];
  }

  void expect(char c) {
    PC_CHECK_MSG(peek() == c, "expected '" << c << "' at offset " << pos_
                                           << ", got '" << peek() << "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    JsonValue v;
    switch (peek()) {
      case '{': {
        v.kind = JsonValue::Kind::kObject;
        ++pos_;
        skip_ws();
        if (peek() == '}') {
          ++pos_;
          return v;
        }
        for (;;) {
          skip_ws();
          std::string key = parse_string_body();
          skip_ws();
          expect(':');
          v.object.emplace(std::move(key), parse_value());
          skip_ws();
          if (peek() == ',') {
            ++pos_;
            continue;
          }
          expect('}');
          return v;
        }
      }
      case '[': {
        v.kind = JsonValue::Kind::kArray;
        ++pos_;
        skip_ws();
        if (peek() == ']') {
          ++pos_;
          return v;
        }
        for (;;) {
          v.array.push_back(parse_value());
          skip_ws();
          if (peek() == ',') {
            ++pos_;
            continue;
          }
          expect(']');
          return v;
        }
      }
      case '"':
        v.kind = JsonValue::Kind::kString;
        v.string = parse_string_body();
        return v;
      case 't':
        PC_CHECK_MSG(consume_literal("true"), "bad literal at " << pos_);
        v.kind = JsonValue::Kind::kBool;
        v.boolean = true;
        return v;
      case 'f':
        PC_CHECK_MSG(consume_literal("false"), "bad literal at " << pos_);
        v.kind = JsonValue::Kind::kBool;
        v.boolean = false;
        return v;
      case 'n':
        PC_CHECK_MSG(consume_literal("null"), "bad literal at " << pos_);
        v.kind = JsonValue::Kind::kNull;
        return v;
      default: {
        const size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '-' || text_[pos_] == '+' ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E')) {
          ++pos_;
        }
        PC_CHECK_MSG(pos_ > start, "unexpected character '"
                                       << text_[start] << "' at offset "
                                       << start);
        v.kind = JsonValue::Kind::kNumber;
        v.number = std::strtod(text_.substr(start, pos_ - start).c_str(),
                               nullptr);
        return v;
      }
    }
  }

  std::string parse_string_body() {
    expect('"');
    std::string out;
    for (;;) {
      PC_CHECK_MSG(pos_ < text_.size(), "unterminated JSON string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      PC_CHECK_MSG(pos_ < text_.size(), "unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case 'n':
          out.push_back('\n');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'u': {
          PC_CHECK_MSG(pos_ + 4 <= text_.size(), "truncated \\u escape");
          const unsigned long code =
              std::strtoul(text_.substr(pos_, 4).c_str(), nullptr, 16);
          pos_ += 4;
          // Latin-1 subset decodes exactly; anything wider passes through
          // as '?' (trace names are ASCII).
          out.push_back(code < 256 ? static_cast<char>(code) : '?');
          break;
        }
        default:
          out.push_back(e);  // \" \\ \/ and friends
      }
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace pc::obs
