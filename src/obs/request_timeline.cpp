#include "obs/request_timeline.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <mutex>
#include <sstream>

namespace pc::obs {

const char* outcome_name(RequestOutcome o) {
  switch (o) {
    case RequestOutcome::kOk:
      return "ok";
    case RequestOutcome::kDegraded:
      return "degraded";
    case RequestOutcome::kTimeout:
      return "timeout";
    case RequestOutcome::kShed:
      return "shed";
    case RequestOutcome::kFailed:
      return "failed";
    case RequestOutcome::kPending:
      return "pending";
  }
  return "unknown";
}

namespace {

void json_escape(std::ostream& os, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

void json_ms(std::ostream& os, const char* key, double ms) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.4f", ms);
  os << ",\"" << key << "\":" << buf;
}

}  // namespace

std::string timeline_json(const RequestTimeline& t) {
  std::ostringstream os;
  os << "{\"id\":" << t.id << ",\"server\":" << t.server
     << ",\"lane\":" << t.lane
     << ",\"batched\":" << (t.batched ? "true" : "false")
     << ",\"outcome\":\"" << outcome_name(t.outcome) << "\""
     << ",\"submit_ns\":" << t.submit_ns << ",\"admit_ns\":" << t.admit_ns
     << ",\"first_token_ns\":" << t.first_token_ns
     << ",\"done_ns\":" << t.done_ns;
  json_ms(os, "queue_ms", t.queue_ms);
  json_ms(os, "encode_ms", t.encode_ms);
  json_ms(os, "retrieve_ms", t.retrieve_ms);
  json_ms(os, "transfer_ms", t.transfer_ms);
  json_ms(os, "prefill_ms", t.prefill_ms);
  json_ms(os, "decode_ms", t.decode_ms);
  json_ms(os, "ttft_ms", t.ttft_ms);
  json_ms(os, "service_ms", t.service_ms);
  json_ms(os, "predicted_ttft_ms", t.predicted_ttft_ms);
  os << ",\"cached_tokens\":" << t.cached_tokens
     << ",\"uncached_tokens\":" << t.uncached_tokens
     << ",\"modules\":" << t.modules
     << ",\"module_misses\":" << t.module_misses
     << ",\"prefill_chunks\":" << t.prefill_chunks
     << ",\"bytes_from_host\":" << t.bytes_from_host
     << ",\"bytes_from_device\":" << t.bytes_from_device
     << ",\"bytes_zero_copy\":" << t.bytes_zero_copy
     << ",\"dequant_rows\":" << t.dequant_rows << ",\"kv_format\":\"";
  json_escape(os, t.kv_format);
  os << "\",\"retries\":" << t.retries
     << ",\"deadline_met\":" << (t.deadline_met ? "true" : "false")
     << ",\"detail\":\"";
  json_escape(os, t.detail);
  os << "\",\"annotations\":[";
  for (size_t i = 0; i < t.annotations.size(); ++i) {
    if (i > 0) os << ",";
    os << "\"";
    json_escape(os, t.annotations[i]);
    os << "\"";
  }
  os << "]}";
  return os.str();
}

#if PC_OBS_ENABLED

namespace {

int telemetry_from_env() {
  const char* v = std::getenv("PC_REQTL");
  if (v != nullptr && v[0] == '0' && v[1] == '\0') return 0;
  return 1;
}

std::atomic<int> g_telemetry{telemetry_from_env()};

// PC_REQLOG streaming sink. Lazily opened on first record; the explicit
// setter overrides (and "" closes). Leaked so it stays usable during exit.
struct ReqLog {
  std::mutex mutex;
  std::ofstream out;
  bool consulted_env = false;

  static ReqLog& get() {
    static ReqLog* s = new ReqLog;
    return *s;
  }

  // Called with the mutex held.
  void ensure_open_locked() {
    if (consulted_env) return;
    consulted_env = true;
    const char* path = std::getenv("PC_REQLOG");
    if (path != nullptr && *path != '\0') {
      out.open(path, std::ios::trunc);
    }
  }

  void append(const RequestTimeline& t) {
    std::lock_guard lock(mutex);
    ensure_open_locked();
    if (out.is_open()) out << timeline_json(t) << "\n";
  }
};

}  // namespace

bool request_telemetry_enabled() {
  return g_telemetry.load(std::memory_order_relaxed) != 0;
}

void set_request_telemetry(bool enabled) {
  g_telemetry.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

void set_request_log_path(const std::string& path) {
  ReqLog& log = ReqLog::get();
  std::lock_guard lock(log.mutex);
  log.consulted_env = true;  // explicit choice overrides the env default
  if (log.out.is_open()) log.out.close();
  if (!path.empty()) log.out.open(path, std::ios::trunc);
}

struct RequestTracker::Impl {
  mutable std::mutex mutex;
  size_t capacity = 8192;
  std::deque<RequestTimeline> ring;
  uint64_t recorded = 0;
  uint64_t dropped = 0;
};

RequestTracker::RequestTracker(size_t capacity)
    : impl_(std::make_shared<Impl>()) {
  impl_->capacity = capacity == 0 ? 1 : capacity;
}

void RequestTracker::set_capacity(size_t capacity) {
  std::lock_guard lock(impl_->mutex);
  impl_->capacity = capacity == 0 ? 1 : capacity;
  while (impl_->ring.size() > impl_->capacity) {
    impl_->ring.pop_front();
    ++impl_->dropped;
  }
}

void RequestTracker::record(RequestTimeline&& t) {
  ReqLog::get().append(t);
  std::lock_guard lock(impl_->mutex);
  ++impl_->recorded;
  if (impl_->ring.size() >= impl_->capacity) {
    impl_->ring.pop_front();
    ++impl_->dropped;
  }
  impl_->ring.push_back(std::move(t));
}

std::vector<RequestTimeline> RequestTracker::snapshot() const {
  std::lock_guard lock(impl_->mutex);
  return {impl_->ring.begin(), impl_->ring.end()};
}

uint64_t RequestTracker::recorded() const {
  std::lock_guard lock(impl_->mutex);
  return impl_->recorded;
}

uint64_t RequestTracker::dropped() const {
  std::lock_guard lock(impl_->mutex);
  return impl_->dropped;
}

void RequestTracker::clear() {
  std::lock_guard lock(impl_->mutex);
  impl_->ring.clear();
  impl_->recorded = 0;
  impl_->dropped = 0;
}

bool RequestTracker::write_jsonl(const std::string& path) const {
  std::ofstream os(path, std::ios::trunc);
  if (!os) return false;
  for (const RequestTimeline& t : snapshot()) os << timeline_json(t) << "\n";
  os.flush();
  return static_cast<bool>(os);
}

#endif  // PC_OBS_ENABLED

}  // namespace pc::obs
