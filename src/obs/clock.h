// The observability epoch clock: one monotonic timebase shared by spans,
// metrics, and log lines, expressed as nanoseconds since the first use in
// this process. A single clock is what makes a trace coherent — a span on a
// pool thread and a log line on a server worker land on the same axis, so
// "the stall happened during the encode" is readable straight off the
// timestamps instead of reconstructed from per-subsystem deltas.
//
// This header must stay dependency-free (std only): pc_obs sits below
// pc_common in the link order so the logger can share the clock.
#pragma once

#include <chrono>
#include <cstdint>

namespace pc::obs {

namespace detail {
inline std::chrono::steady_clock::time_point process_epoch() {
  static const std::chrono::steady_clock::time_point t0 =
      std::chrono::steady_clock::now();
  return t0;
}
}  // namespace detail

// Nanoseconds since the process epoch (monotonic, thread-safe).
inline uint64_t now_ns() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - detail::process_epoch())
          .count());
}

// Microseconds since the process epoch as a double (Perfetto's native unit).
inline double now_us() { return static_cast<double>(now_ns()) / 1e3; }

// Seconds since the process epoch (log-line timestamps).
inline double now_seconds() { return static_cast<double>(now_ns()) / 1e9; }

// Forces the epoch to be taken now (call early in main so timestamps start
// near zero; harmless if something else already touched the clock).
inline void init_clock() { (void)detail::process_epoch(); }

}  // namespace pc::obs
