// Request-centric telemetry: one RequestTimeline record per served request,
// assembled by the serving frontend (sys/server.h) for both the worker-pool
// and continuous-batching paths and retained in a bounded per-server ring
// (RequestTracker). This is the per-request counterpart to the aggregate
// pc_* metric families: where pc_server_ttft_seconds says "p99 was 40 ms",
// a timeline says "request 4711 spent 31 ms queued, hit 2 of 3 modules,
// moved 1.2 MB over the host link, and missed its deadline".
//
// The paper's headline claim is per-request (Prompt Cache cuts TTFT up to
// 8x GPU / 60x CPU), so the record splits TTFT into the same components the
// analytic model (sys/device_model.h) predicts: retrieve (module memcpy),
// transfer (host-link stall), and uncached prefill — plus the queueing and
// encode time the end-to-end number includes on top. `predicted_ttft_ms`
// carries the model's estimate for drift tracking (pc_ttft_model_drift).
//
// Layering: this header sits in the obs layer (below pc_common), so it
// cannot see ServeStatus. RequestOutcome mirrors that taxonomy value for
// value; the server translates at record time.
//
// Cost model follows obs/trace.h: a process-wide runtime toggle
// (request_telemetry_enabled(), default ON) gates assembly; building with
// -DPC_OBS=OFF compiles the tracker to a stub that records nothing.
//
// PC_REQLOG: setting the environment variable (or set_request_log_path())
// to a file path streams every recorded timeline as one JSON object per
// line (JSONL) — the format tools/trace_report --requests reads.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#ifndef PC_OBS_ENABLED
#define PC_OBS_ENABLED 1
#endif

namespace pc::obs {

// True when the obs layer is compiled in; lets call sites guard timeline
// assembly with `if constexpr` instead of #ifdef soup.
inline constexpr bool kEnabled = PC_OBS_ENABLED != 0;

// Terminal state of a request. Mirrors pc::ServeStatus (sys/serve_types.h)
// value for value; kPending exists only so a default-constructed timeline
// is visibly incomplete (a recorded one never is).
enum class RequestOutcome : int {
  kOk = 0,
  kDegraded,
  kTimeout,
  kShed,
  kFailed,
  kPending,
};

const char* outcome_name(RequestOutcome o);

// One request's lifecycle, timestamps on the obs epoch clock (obs/clock.h)
// and durations in milliseconds. Phase durations are disjoint components
// of the end-to-end TTFT: for a served request,
//   ttft_ms == queue_ms + transfer_ms + retrieve_ms + prefill_ms
// (encode_ms is offline module encoding triggered by this request and is
// charged separately, matching the paper's accounting).
struct RequestTimeline {
  uint64_t id = 0;
  // Process-unique server instance number: request ids restart at 0 per
  // Server, but PC_REQLOG is process-wide, so (server, id) — not id alone —
  // identifies a request in a log that spans several servers (bench_server
  // runs a sweep of them). trace_report --requests keys on the pair.
  uint64_t server = 0;
  int lane = -1;        // worker index; 0 = the batch lane; -1 = shed at submit
  bool batched = false; // served by the continuous-batching path

  // Lifecycle timestamps (ns since the obs epoch; 0 = never reached).
  uint64_t submit_ns = 0;
  uint64_t admit_ns = 0;        // dequeued into a worker / the batch
  uint64_t first_token_ns = 0;  // submit_ns + ttft (served requests only)
  uint64_t done_ns = 0;         // terminal status recorded

  // Phase durations (ms).
  double queue_ms = 0;     // submit -> dequeue
  double encode_ms = 0;    // offline module encoding triggered by this request
  double retrieve_ms = 0;  // cached-state concatenation (memcpy / paging)
  double transfer_ms = 0;  // simulated host-link stall (LinkModel)
  double prefill_ms = 0;   // forward over uncached tokens + first sample
  double decode_ms = 0;    // autoregressive steps after the first token
  double ttft_ms = 0;      // end-to-end: queue + transfer + engine TTFT
  double service_ms = 0;   // dequeue -> done
  // device_model's estimate_cached_ttft for this request's (cached,
  // uncached, location, kv format); 0 when the server has no TTFT profile
  // configured or the request was not a cached kOk serve.
  double predicted_ttft_ms = 0;

  // Cache-efficacy attribution.
  int cached_tokens = 0;
  int uncached_tokens = 0;
  int modules = 0;         // modules whose states were reused (emitted)
  int module_misses = 0;   // modules/scaffolds this request had to encode
  int prefill_chunks = 0;  // batched chunked-prefill iterations (0 = worker)
  uint64_t bytes_from_host = 0;
  uint64_t bytes_from_device = 0;
  uint64_t bytes_zero_copy = 0;
  uint64_t dequant_rows = 0;  // copy-path q8/q4 rows dequantized
  std::string kv_format;      // "fp32" | "fp16" | "q8" | "q4"

  RequestOutcome outcome = RequestOutcome::kPending;
  int retries = 0;
  bool deadline_met = true;
  std::string detail;  // human-readable cause for non-kOk outcomes
  // Free-form lifecycle annotations in occurrence order ("fault_stall
  // 20ms", "retry 1: injected fault ...", "degraded: ...").
  std::vector<std::string> annotations;

  int module_hits() const { return modules - module_misses; }
};

// One timeline as a single-line JSON object (no trailing newline) — the
// PC_REQLOG / write_jsonl line format.
std::string timeline_json(const RequestTimeline& t);

#if PC_OBS_ENABLED

// Process-wide runtime gate over timeline assembly (one relaxed atomic
// load). Defaults to ON; PC_REQTL=0 in the environment starts it OFF.
bool request_telemetry_enabled();
void set_request_telemetry(bool enabled);

// Streaming JSONL sink. `path` == "" closes the sink (flushing it). The
// first recorded timeline consults the PC_REQLOG environment variable if
// no path was set explicitly. Thread-safe.
void set_request_log_path(const std::string& path);

// Bounded ring of completed request timelines. One per Server; record()
// is called under the server's completion lock, so the tracker's own mutex
// is uncontended. When the ring is full the oldest timeline is dropped
// (counted, never a stall). Every record() also feeds the PC_REQLOG sink.
class RequestTracker {
 public:
  explicit RequestTracker(size_t capacity = 8192);

  // Ring capacity for subsequently recorded timelines (existing entries
  // are kept, trimmed if over the new capacity). 0 clamps to 1.
  void set_capacity(size_t capacity);

  void record(RequestTimeline&& t);

  // Retained timelines, oldest first.
  std::vector<RequestTimeline> snapshot() const;

  uint64_t recorded() const;  // total ever recorded
  uint64_t dropped() const;   // evicted by ring wrap
  void clear();

  // Writes the retained timelines as JSONL. Returns false on I/O error.
  bool write_jsonl(const std::string& path) const;

 private:
  struct Impl;
  std::shared_ptr<Impl> impl_;
};

#else  // !PC_OBS_ENABLED — request telemetry compiles to nothing.

inline bool request_telemetry_enabled() { return false; }
inline void set_request_telemetry(bool) {}
inline void set_request_log_path(const std::string&) {}

class RequestTracker {
 public:
  explicit RequestTracker(size_t = 0) {}
  void set_capacity(size_t) {}
  void record(RequestTimeline&&) {}
  std::vector<RequestTimeline> snapshot() const { return {}; }
  uint64_t recorded() const { return 0; }
  uint64_t dropped() const { return 0; }
  void clear() {}
  bool write_jsonl(const std::string&) const { return false; }
};

#endif  // PC_OBS_ENABLED

}  // namespace pc::obs
