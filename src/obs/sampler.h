// Time-series sampling and SLO tracking over the metrics registry.
//
// MetricsSampler: a background thread that snapshots selected pc_* metric
// families at a configurable rate into fixed-size rings of (t, value)
// points — the minimal time-series store a dashboard needs, with hard
// bounds on memory (ring_capacity points per series) and cost (one
// registry collect() per tick; sampling 10 Hz over a few dozen families is
// microseconds per tick). Counters and gauges sample their aggregate
// value; histogram families contribute two series, `<name>_count` and
// `<name>_p99_ms`, because a histogram's level and tail are what move.
//
// SloTracker: a rolling-window availability/deadline monitor fed one
// terminal request outcome at a time (Server::record_locked calls
// record()). Within the window it reports availability (served / total),
// the deadline-miss rate, and the error-budget burn rate
// (miss_rate / (1 - availability_target): burn > 1 means the budget is
// burning faster than it accrues — the standard SRE framing). Entering
// the breached state (availability < target) increments
// pc_slo_breaches_total; the current availability is exported as the
// pc_slo_availability_ppm gauge so a scrape sees SLO state without JSON.
//
// Both are compiled to inert stubs under -DPC_OBS=OFF.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#ifndef PC_OBS_ENABLED
#define PC_OBS_ENABLED 1
#endif

namespace pc::obs {

struct SamplePoint {
  double t_s = 0;  // obs epoch clock (obs/clock.h)
  double value = 0;
};

struct SamplerConfig {
  double hz = 10.0;            // ticks per second (clamped to [0.1, 1000])
  size_t ring_capacity = 512;  // points retained per series
  // Family names to sample; empty = every family present at each tick.
  std::vector<std::string> families;
};

struct SloConfig {
  double window_s = 60.0;             // rolling window length
  double availability_target = 0.999; // served / total the SLO promises
};

#if PC_OBS_ENABLED

// Background time-series sampler. start()/stop() are idempotent; the
// destructor stops. snapshot()/write_json() may be called while running.
class MetricsSampler {
 public:
  explicit MetricsSampler(SamplerConfig config = {});
  ~MetricsSampler();

  MetricsSampler(const MetricsSampler&) = delete;
  MetricsSampler& operator=(const MetricsSampler&) = delete;

  void start();
  void stop();
  bool running() const;

  // One synchronous tick (what the thread does each period). Public so
  // tests and stopped samplers can capture deterministic points.
  void sample_once();

  uint64_t ticks() const;

  // Series name -> retained points, oldest first.
  std::map<std::string, std::vector<SamplePoint>> snapshot() const;

  // {"hz":..,"series":{"pc_...":[{"t_s":..,"value":..},...],...}}
  bool write_json(const std::string& path) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

// Rolling-window SLO monitor. record() is cheap (amortized deque ops) and
// expected to be called under the owner's completion lock.
class SloTracker {
 public:
  explicit SloTracker(SloConfig config = {});

  // One terminal request outcome. `served` = the request returned tokens
  // (ok or degraded); `deadline_met` = it met its deadline (requests with
  // no deadline count as met). Stamps the obs clock.
  void record(bool served, bool deadline_met);
  // Test seam: same, at an explicit clock reading.
  void record_at(double t_s, bool served, bool deadline_met);

  struct Snapshot {
    double window_s = 0;
    double availability_target = 0;
    uint64_t total = 0;           // outcomes inside the window
    uint64_t served = 0;
    uint64_t deadline_misses = 0;
    double availability = 1.0;    // served / total (1.0 when empty)
    double miss_rate = 0;         // deadline_misses / total
    double burn_rate = 0;         // miss_rate / (1 - target)
    bool breached = false;        // availability < target right now
    uint64_t breaches = 0;        // transitions into the breached state
  };
  Snapshot snapshot() const;
  // Snapshot pruned as of an explicit clock reading (test seam).
  Snapshot snapshot_at(double t_s) const;

  bool write_json(const std::string& path) const;

 private:
  struct Impl;
  std::shared_ptr<Impl> impl_;
};

#else  // !PC_OBS_ENABLED — inert stubs.

class MetricsSampler {
 public:
  explicit MetricsSampler(SamplerConfig = {}) {}
  void start() {}
  void stop() {}
  bool running() const { return false; }
  void sample_once() {}
  uint64_t ticks() const { return 0; }
  std::map<std::string, std::vector<SamplePoint>> snapshot() const {
    return {};
  }
  bool write_json(const std::string&) const { return false; }
};

class SloTracker {
 public:
  explicit SloTracker(SloConfig = {}) {}
  void record(bool, bool) {}
  void record_at(double, bool, bool) {}
  struct Snapshot {
    double window_s = 0;
    double availability_target = 0;
    uint64_t total = 0;
    uint64_t served = 0;
    uint64_t deadline_misses = 0;
    double availability = 1.0;
    double miss_rate = 0;
    double burn_rate = 0;
    bool breached = false;
    uint64_t breaches = 0;
  };
  Snapshot snapshot() const { return {}; }
  Snapshot snapshot_at(double) const { return {}; }
  bool write_json(const std::string&) const { return false; }
};

#endif  // PC_OBS_ENABLED

}  // namespace pc::obs
