#include "obs/trace.h"

#if PC_OBS_ENABLED

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>
#include <mutex>

namespace pc::obs {

namespace {

// Single-writer ring. The owning thread is the only writer; readers
// (collect_traces) take a weakly consistent snapshot through the atomic
// head. Slots are overwritten on wrap — dropped = head - capacity.
struct Ring {
  explicit Ring(size_t capacity)
      : capacity(capacity), slots(new TraceEvent[capacity]) {}

  const size_t capacity;
  std::unique_ptr<TraceEvent[]> slots;
  std::atomic<uint64_t> head{0};  // total events ever written
  int tid = 0;
  std::string thread_name;  // guarded by the registry mutex

  void push(const TraceEvent& e) {
    const uint64_t h = head.load(std::memory_order_relaxed);
    slots[h % capacity] = e;
    head.store(h + 1, std::memory_order_release);
  }
};

struct Registry {
  std::mutex mutex;
  std::vector<std::shared_ptr<Ring>> rings;  // survive thread exit
  std::atomic<size_t> ring_capacity{default_capacity()};

  static size_t default_capacity() {
    if (const char* v = std::getenv("PC_TRACE_BUF")) {
      const long n = std::atol(v);
      if (n > 0) return static_cast<size_t>(n);
    }
    return 65536;
  }

  static Registry& get() {
    static Registry* r = new Registry;  // leaked: usable during exit
    return *r;
  }
};

int from_env_enabled() {
  const char* v = std::getenv("PC_TRACE");
  return (v != nullptr && *v != '\0') ? 1 : 0;
}

std::atomic<int> g_enabled{from_env_enabled()};

Ring& thread_ring() {
  thread_local std::shared_ptr<Ring> ring = [] {
    Registry& reg = Registry::get();
    auto r = std::make_shared<Ring>(
        reg.ring_capacity.load(std::memory_order_relaxed));
    std::lock_guard lock(reg.mutex);
    r->tid = static_cast<int>(reg.rings.size());
    r->thread_name = "thread-" + std::to_string(r->tid);
    reg.rings.push_back(r);
    return r;
  }();
  return *ring;
}

}  // namespace

bool tracing_enabled() {
  return g_enabled.load(std::memory_order_relaxed) != 0;
}

void set_tracing(bool enabled) {
  g_enabled.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

void set_thread_name(const std::string& name) {
  Ring& ring = thread_ring();
  std::lock_guard lock(Registry::get().mutex);
  ring.thread_name = name;
}

void set_ring_capacity(size_t events) {
  if (events == 0) events = 1;
  Registry::get().ring_capacity.store(events, std::memory_order_relaxed);
}

namespace detail {

bool tracing_enabled_impl() { return tracing_enabled(); }

void record_span_impl(const char* name, uint64_t start_ns, uint64_t end_ns,
                      SpanArg a0, SpanArg a1) {
  TraceEvent e;
  e.name = name;
  e.start_ns = start_ns;
  e.end_ns = end_ns;
  e.args[0] = a0;
  e.args[1] = a1;
  thread_ring().push(e);
}

void record_event_impl(EventKind kind, const char* name, uint64_t ts_ns,
                       uint32_t flow_id, SpanArg a0, SpanArg a1) {
  TraceEvent e;
  e.name = name;
  e.start_ns = ts_ns;
  e.end_ns = ts_ns;
  e.args[0] = a0;
  e.args[1] = a1;
  e.flow_id = flow_id;
  e.kind = kind;
  thread_ring().push(e);
}

}  // namespace detail

std::vector<ThreadTrace> collect_traces() {
  Registry& reg = Registry::get();
  std::vector<std::shared_ptr<Ring>> rings;
  std::vector<ThreadTrace> out;
  {
    std::lock_guard lock(reg.mutex);
    rings = reg.rings;
    out.reserve(rings.size());
    for (const auto& r : rings) {
      ThreadTrace t;
      t.tid = r->tid;
      t.name = r->thread_name;
      out.push_back(std::move(t));
    }
  }
  for (size_t i = 0; i < rings.size(); ++i) {
    const Ring& r = *rings[i];
    const uint64_t head = r.head.load(std::memory_order_acquire);
    const uint64_t n = std::min<uint64_t>(head, r.capacity);
    out[i].dropped = head - n;
    out[i].events.reserve(static_cast<size_t>(n));
    for (uint64_t k = head - n; k < head; ++k) {
      out[i].events.push_back(r.slots[k % r.capacity]);
    }
  }
  return out;
}

uint64_t dropped_events() {
  Registry& reg = Registry::get();
  std::lock_guard lock(reg.mutex);
  uint64_t total = 0;
  for (const auto& r : reg.rings) {
    const uint64_t head = r->head.load(std::memory_order_acquire);
    if (head > r->capacity) total += head - r->capacity;
  }
  return total;
}

void clear_traces() {
  Registry& reg = Registry::get();
  std::lock_guard lock(reg.mutex);
  for (const auto& r : reg.rings) {
    r->head.store(0, std::memory_order_release);
  }
}

}  // namespace pc::obs

#endif  // PC_OBS_ENABLED
