// Low-overhead span tracing: RAII PC_SPAN markers writing fixed-size events
// into lock-free thread-local ring buffers on the shared epoch clock
// (obs/clock.h).
//
// Design:
//
//   * One event per completed span. A span records nothing at entry; the
//     destructor writes a single 64-byte TraceEvent (name, start, end, up
//     to two integer args) into the calling thread's ring. Nesting needs no
//     bookkeeping — spans on one thread close in LIFO order, so intervals
//     are strictly nested by construction and Perfetto reconstructs the
//     tree from timestamps alone.
//
//   * Thread-local single-writer rings. Each thread lazily registers a
//     fixed-capacity ring buffer; writes are one relaxed index load, one
//     64-byte store, one release index store — no locks, no allocation, no
//     cross-thread traffic on the hot path. When the ring wraps, the oldest
//     events are overwritten and counted as dropped (never a crash, never a
//     stall). Rings outlive their threads (the registry keeps them), so a
//     server can be stopped before its trace is exported.
//
//   * Runtime gate, compile-time floor. tracing_enabled() is one relaxed
//     atomic load; disabled spans skip the clock reads entirely. Building
//     with -DPC_OBS=OFF (PC_OBS_ENABLED=0) compiles PC_SPAN to nothing and
//     Span/record_span to empty inlines: zero events, zero argument
//     evaluation, zero code in the hot paths.
//
// Collection (collect_traces / trace.cpp) is weakly consistent: reading
// while writers are active may observe partially ordered tails. Export
// while the instrumented work is idle (after Server::drain()) for exact
// traces. Span names and arg keys must be string literals (or otherwise
// outlive collection) — events store the pointers, not copies.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/clock.h"

#ifndef PC_OBS_ENABLED
#define PC_OBS_ENABLED 1
#endif

namespace pc::obs {

// A named integer attachment to a span ("request", 42). key == nullptr
// means "no arg".
struct SpanArg {
  const char* key = nullptr;
  int64_t value = 0;
};

// What one TraceEvent represents. kSpan is the classic duration event;
// kInstant marks a point in time (fault injections, drops); the kFlow*
// kinds are Perfetto flow events ("s"/"t"/"f") that stitch one request's
// spans across threads into a single followable arc, correlated by
// flow_id (the request id).
enum class EventKind : uint8_t {
  kSpan = 0,
  kInstant,
  kFlowStart,
  kFlowStep,
  kFlowEnd,
};

// One completed span. 64 bytes; name/arg keys are unowned literals.
struct TraceEvent {
  const char* name = nullptr;
  uint64_t start_ns = 0;
  uint64_t end_ns = 0;
  SpanArg args[2];
  uint32_t flow_id = 0;  // meaningful for the kFlow* kinds
  EventKind kind = EventKind::kSpan;
};
static_assert(sizeof(TraceEvent) <= 64, "TraceEvent must stay one line");

// Everything recorded by one thread, in completion order (oldest first).
struct ThreadTrace {
  int tid = 0;             // registration order, stable for the process
  std::string name;        // "main", "worker3", "pool1", or "thread-N"
  uint64_t dropped = 0;    // events overwritten by ring wrap
  std::vector<TraceEvent> events;
};

#if PC_OBS_ENABLED

namespace detail {
bool tracing_enabled_impl();
void record_span_impl(const char* name, uint64_t start_ns, uint64_t end_ns,
                      SpanArg a0, SpanArg a1);
void record_event_impl(EventKind kind, const char* name, uint64_t ts_ns,
                       uint32_t flow_id, SpanArg a0, SpanArg a1);
}  // namespace detail

// Global runtime switch. Defaults to off unless the PC_TRACE environment
// variable is set (any non-empty value; a path value doubles as the export
// destination for harnesses that honor it).
bool tracing_enabled();
void set_tracing(bool enabled);

// Names the calling thread's lane in exported traces (idempotent; also
// forces ring registration so the lane exists even before its first span).
void set_thread_name(const std::string& name);

// Ring capacity (events per thread) for rings created after this call.
// Also settable via PC_TRACE_BUF; default 65536. Existing rings keep theirs.
void set_ring_capacity(size_t events);

// Records an explicit span on the calling thread's ring. Prefer PC_SPAN;
// this exists for retroactive intervals measured by other means. Caution:
// a retroactive interval can overlap RAII spans on the same thread, which
// breaks per-lane nesting in the rendered trace.
inline void record_span(const char* name, uint64_t start_ns, uint64_t end_ns,
                        SpanArg a0 = {}, SpanArg a1 = {}) {
  detail::record_span_impl(name, start_ns, end_ns, a0, a1);
}

// Records a point-in-time marker on the calling thread's ring (rendered as
// a Perfetto instant event). Used for fault injections and other
// zero-duration occurrences worth seeing on the timeline.
inline void record_instant(const char* name, SpanArg a0 = {}, SpanArg a1 = {}) {
  if (!tracing_enabled()) return;
  detail::record_event_impl(EventKind::kInstant, name, now_ns(), 0, a0, a1);
}

// Records one leg of a cross-thread flow arc. All legs sharing (name, id)
// are bound into one arrow chain by the Perfetto UI; `id` is truncated to
// 32 bits (request ids are submission indices, so this never collides in
// practice). Use through PC_FLOW_START / PC_FLOW_STEP / PC_FLOW_END.
inline void record_flow(EventKind kind, const char* name, uint64_t id) {
  if (!tracing_enabled()) return;
  detail::record_event_impl(kind, name, now_ns(),
                            static_cast<uint32_t>(id), {}, {});
}

// RAII span. Construction snapshots the clock iff tracing is enabled; the
// destructor writes the event. Use through PC_SPAN.
class Span {
 public:
  explicit Span(const char* name, SpanArg a0 = {}, SpanArg a1 = {}) {
    if (tracing_enabled()) {
      name_ = name;
      a0_ = a0;
      a1_ = a1;
      start_ns_ = now_ns();
    }
  }
  ~Span() {
    if (name_ != nullptr) {
      detail::record_span_impl(name_, start_ns_, now_ns(), a0_, a1_);
    }
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  // Attaches/overwrites an arg after construction (value known mid-span).
  void set_arg(const char* key, int64_t value) {
    if (name_ == nullptr) return;
    if (a0_.key == nullptr || std::string_view(a0_.key) == key) {
      a0_ = {key, value};
    } else {
      a1_ = {key, value};
    }
  }

 private:
  const char* name_ = nullptr;  // nullptr = disabled at construction
  uint64_t start_ns_ = 0;
  SpanArg a0_{}, a1_{};
};

// Snapshot of every thread's ring (including exited threads'), oldest
// event first per thread. Weakly consistent while writers are active.
std::vector<ThreadTrace> collect_traces();

// Total events lost to ring wrap across all threads.
uint64_t dropped_events();

// Empties every ring and resets drop counts (thread registrations and
// names survive). Call only while instrumented code is idle.
void clear_traces();

#else  // !PC_OBS_ENABLED — the whole layer compiles to nothing.

inline bool tracing_enabled() { return false; }
inline void set_tracing(bool) {}
inline void set_thread_name(const std::string&) {}
inline void set_ring_capacity(size_t) {}
inline void record_span(const char*, uint64_t, uint64_t, SpanArg = {},
                        SpanArg = {}) {}
inline void record_instant(const char*, SpanArg = {}, SpanArg = {}) {}
inline void record_flow(EventKind, const char*, uint64_t) {}

class Span {
 public:
  explicit Span(const char*, SpanArg = {}, SpanArg = {}) {}
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  void set_arg(const char*, int64_t) {}
};

inline std::vector<ThreadTrace> collect_traces() { return {}; }
inline uint64_t dropped_events() { return 0; }
inline void clear_traces() {}

#endif  // PC_OBS_ENABLED

}  // namespace pc::obs

#define PC_OBS_CONCAT_INNER(a, b) a##b
#define PC_OBS_CONCAT(a, b) PC_OBS_CONCAT_INNER(a, b)

#if PC_OBS_ENABLED
// PC_SPAN("name"), PC_SPAN("name", {"key", v}), PC_SPAN("name", {...}, {...}).
// Scope = the enclosing block. Arguments are not evaluated when built with
// PC_OBS=OFF, so span-only computation must stay trivial.
#define PC_SPAN(...) \
  ::pc::obs::Span PC_OBS_CONCAT(pc_obs_span_, __COUNTER__)(__VA_ARGS__)
// Named span handle for set_arg() after construction.
#define PC_SPAN_NAMED(var, ...) ::pc::obs::Span var(__VA_ARGS__)
// Point-in-time marker: PC_INSTANT("fault_inject_link", {"request", id}).
#define PC_INSTANT(...) ::pc::obs::record_instant(__VA_ARGS__)
// Cross-thread flow arc for one request: start where the request is born
// (submit), step/end where it is picked up (worker serve / batch admit).
#define PC_FLOW_START(name, id) \
  ::pc::obs::record_flow(::pc::obs::EventKind::kFlowStart, name, id)
#define PC_FLOW_STEP(name, id) \
  ::pc::obs::record_flow(::pc::obs::EventKind::kFlowStep, name, id)
#define PC_FLOW_END(name, id) \
  ::pc::obs::record_flow(::pc::obs::EventKind::kFlowEnd, name, id)
#else
#define PC_SPAN(...) ((void)0)
#define PC_SPAN_NAMED(var, ...) ::pc::obs::Span var("")
#define PC_INSTANT(...) ((void)0)
#define PC_FLOW_START(name, id) ((void)0)
#define PC_FLOW_STEP(name, id) ((void)0)
#define PC_FLOW_END(name, id) ((void)0)
#endif
