#include "obs/sampler.h"

#if PC_OBS_ENABLED

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <fstream>
#include <mutex>
#include <thread>

#include "obs/clock.h"
#include "obs/metrics.h"

namespace pc::obs {

namespace {

void write_point(std::ostream& os, const SamplePoint& p) {
  char buf[80];
  std::snprintf(buf, sizeof(buf), "{\"t_s\":%.6f,\"value\":%.6f}", p.t_s,
                p.value);
  os << buf;
}

}  // namespace

struct MetricsSampler::Impl {
  SamplerConfig config;
  mutable std::mutex mutex;
  std::condition_variable cv;
  std::map<std::string, std::deque<SamplePoint>> series;
  uint64_t ticks = 0;
  bool stop = false;
  bool running = false;
  std::thread thread;

  void push_locked(const std::string& name, double t_s, double value) {
    std::deque<SamplePoint>& ring = series[name];
    if (ring.size() >= config.ring_capacity) ring.pop_front();
    ring.push_back({t_s, value});
  }

  bool selected(const std::string& name) const {
    if (config.families.empty()) return true;
    return std::find(config.families.begin(), config.families.end(), name) !=
           config.families.end();
  }

  void tick() {
    const double t_s = now_seconds();
    const auto samples = MetricsRegistry::global().collect();
    std::lock_guard lock(mutex);
    for (const auto& f : samples) {
      if (!selected(f.name)) continue;
      switch (f.type) {
        case MetricType::kCounter:
          push_locked(f.name, t_s, static_cast<double>(f.counter_value));
          break;
        case MetricType::kGauge:
          push_locked(f.name, t_s, static_cast<double>(f.gauge_value));
          break;
        case MetricType::kHistogram:
          push_locked(f.name + "_count", t_s,
                      static_cast<double>(f.histogram_value.count()));
          push_locked(f.name + "_p99_ms", t_s,
                      f.histogram_value.quantile_seconds(0.99) * 1e3);
          break;
      }
    }
    ++ticks;
  }

  void loop() {
    const double hz = std::clamp(config.hz, 0.1, 1000.0);
    const auto period = std::chrono::duration_cast<
        std::chrono::steady_clock::duration>(std::chrono::duration<double>(
        1.0 / hz));
    std::unique_lock lock(mutex);
    while (!stop) {
      lock.unlock();
      tick();
      lock.lock();
      cv.wait_for(lock, period, [&] { return stop; });
    }
  }
};

MetricsSampler::MetricsSampler(SamplerConfig config)
    : impl_(std::make_unique<Impl>()) {
  impl_->config = std::move(config);
  if (impl_->config.ring_capacity == 0) impl_->config.ring_capacity = 1;
}

MetricsSampler::~MetricsSampler() { stop(); }

void MetricsSampler::start() {
  std::lock_guard lock(impl_->mutex);
  if (impl_->running) return;
  impl_->stop = false;
  impl_->running = true;
  impl_->thread = std::thread([this] { impl_->loop(); });
}

void MetricsSampler::stop() {
  {
    std::lock_guard lock(impl_->mutex);
    if (!impl_->running) return;
    impl_->stop = true;
  }
  impl_->cv.notify_all();
  impl_->thread.join();
  std::lock_guard lock(impl_->mutex);
  impl_->running = false;
}

bool MetricsSampler::running() const {
  std::lock_guard lock(impl_->mutex);
  return impl_->running;
}

void MetricsSampler::sample_once() { impl_->tick(); }

uint64_t MetricsSampler::ticks() const {
  std::lock_guard lock(impl_->mutex);
  return impl_->ticks;
}

std::map<std::string, std::vector<SamplePoint>> MetricsSampler::snapshot()
    const {
  std::lock_guard lock(impl_->mutex);
  std::map<std::string, std::vector<SamplePoint>> out;
  for (const auto& [name, ring] : impl_->series) {
    out.emplace(name, std::vector<SamplePoint>(ring.begin(), ring.end()));
  }
  return out;
}

bool MetricsSampler::write_json(const std::string& path) const {
  const auto series = snapshot();
  std::ofstream os(path, std::ios::trunc);
  if (!os) return false;
  os << "{\"hz\":" << impl_->config.hz << ",\"ticks\":" << ticks()
     << ",\"series\":{";
  bool first_series = true;
  for (const auto& [name, points] : series) {
    if (!first_series) os << ",";
    first_series = false;
    os << "\"" << name << "\":[";
    for (size_t i = 0; i < points.size(); ++i) {
      if (i > 0) os << ",";
      write_point(os, points[i]);
    }
    os << "]";
  }
  os << "}}\n";
  os.flush();
  return static_cast<bool>(os);
}

struct SloTracker::Impl {
  SloConfig config;
  mutable std::mutex mutex;
  struct Event {
    double t_s = 0;
    bool served = false;
    bool deadline_met = true;
  };
  std::deque<Event> window;
  uint64_t breaches = 0;
  bool breached = false;
  Gauge availability_ppm;  // pc_slo_availability_ppm
  Counter breach_counter;  // pc_slo_breaches_total

  void prune_locked(double t_s) {
    const double horizon = t_s - config.window_s;
    while (!window.empty() && window.front().t_s < horizon) {
      window.pop_front();
    }
  }

  Snapshot snapshot_locked() const {
    Snapshot s;
    s.window_s = config.window_s;
    s.availability_target = config.availability_target;
    s.total = window.size();
    for (const Event& e : window) {
      if (e.served) ++s.served;
      if (!e.deadline_met) ++s.deadline_misses;
    }
    if (s.total > 0) {
      s.availability =
          static_cast<double>(s.served) / static_cast<double>(s.total);
      s.miss_rate = static_cast<double>(s.deadline_misses) /
                    static_cast<double>(s.total);
    }
    const double budget = 1.0 - config.availability_target;
    s.burn_rate = budget > 0 ? s.miss_rate / budget : 0.0;
    s.breached = s.total > 0 && s.availability < config.availability_target;
    s.breaches = breaches;
    return s;
  }
};

SloTracker::SloTracker(SloConfig config) : impl_(std::make_shared<Impl>()) {
  impl_->config = config;
  if (impl_->config.window_s <= 0) impl_->config.window_s = 60.0;
  auto& reg = MetricsRegistry::global();
  impl_->availability_ppm = reg.gauge(
      "pc_slo_availability_ppm",
      "rolling-window availability (served/total) in parts per million");
  impl_->breach_counter = reg.counter(
      "pc_slo_breaches_total", "transitions into availability-SLO breach");
  impl_->availability_ppm.set(1000000);
}

void SloTracker::record(bool served, bool deadline_met) {
  record_at(now_seconds(), served, deadline_met);
}

void SloTracker::record_at(double t_s, bool served, bool deadline_met) {
  std::lock_guard lock(impl_->mutex);
  impl_->prune_locked(t_s);
  impl_->window.push_back({t_s, served, deadline_met});
  const Snapshot s = impl_->snapshot_locked();
  impl_->availability_ppm.set(static_cast<int64_t>(s.availability * 1e6));
  if (s.breached && !impl_->breached) {
    ++impl_->breaches;
    impl_->breach_counter.inc();
  }
  impl_->breached = s.breached;
}

SloTracker::Snapshot SloTracker::snapshot() const {
  return snapshot_at(now_seconds());
}

SloTracker::Snapshot SloTracker::snapshot_at(double t_s) const {
  std::lock_guard lock(impl_->mutex);
  impl_->prune_locked(t_s);
  return impl_->snapshot_locked();
}

bool SloTracker::write_json(const std::string& path) const {
  const Snapshot s = snapshot();
  std::ofstream os(path, std::ios::trunc);
  if (!os) return false;
  char buf[64];
  os << "{\"window_s\":" << s.window_s
     << ",\"availability_target\":" << s.availability_target
     << ",\"total\":" << s.total << ",\"served\":" << s.served
     << ",\"deadline_misses\":" << s.deadline_misses;
  std::snprintf(buf, sizeof(buf), ",\"availability\":%.6f", s.availability);
  os << buf;
  std::snprintf(buf, sizeof(buf), ",\"miss_rate\":%.6f", s.miss_rate);
  os << buf;
  std::snprintf(buf, sizeof(buf), ",\"burn_rate\":%.6f", s.burn_rate);
  os << buf;
  os << ",\"breached\":" << (s.breached ? "true" : "false")
     << ",\"breaches\":" << s.breaches << "}\n";
  os.flush();
  return static_cast<bool>(os);
}

}  // namespace pc::obs

#endif  // PC_OBS_ENABLED
