#include "obs/export.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace pc::obs {

namespace {

// JSON string escaping for names that may contain quotes/backslashes.
void write_escaped(std::ostream& os, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

void write_number(std::ostream& os, double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  os << buf;
}

}  // namespace

void export_perfetto_json(std::ostream& os) {
  const std::vector<ThreadTrace> traces = collect_traces();
  os << "{\"traceEvents\":[";
  bool first = true;
  const auto sep = [&] {
    if (!first) os << ",\n";
    first = false;
  };
  for (const ThreadTrace& t : traces) {
    // Lane label. pid is constant: one process.
    sep();
    os << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":" << t.tid
       << ",\"args\":{\"name\":\"";
    write_escaped(os, t.name);
    os << "\"}}";
    if (t.dropped > 0) {
      // Surface ring wrap in the trace itself (instant event at t=0).
      sep();
      os << "{\"ph\":\"i\",\"s\":\"t\",\"name\":\"ring_dropped_events\","
            "\"pid\":1,\"tid\":"
         << t.tid << ",\"ts\":0,\"args\":{\"dropped\":" << t.dropped << "}}";
    }
    for (const TraceEvent& e : t.events) {
      sep();
      const char* name = e.name != nullptr ? e.name : "?";
      if (e.kind == EventKind::kFlowStart || e.kind == EventKind::kFlowStep ||
          e.kind == EventKind::kFlowEnd) {
        // Flow legs: "s" starts the arc, "t" passes through, "f" ends it.
        // bp:"e" binds the end leg to its enclosing slice, which is how one
        // request's submit span connects to the worker/batch span that
        // served it.
        const char ph = e.kind == EventKind::kFlowStart  ? 's'
                        : e.kind == EventKind::kFlowStep ? 't'
                                                         : 'f';
        os << "{\"ph\":\"" << ph << "\",\"cat\":\"req\",\"id\":" << e.flow_id
           << ",\"name\":\"";
        write_escaped(os, name);
        os << "\",\"pid\":1,\"tid\":" << t.tid << ",\"ts\":";
        write_number(os, static_cast<double>(e.start_ns) / 1e3);
        if (e.kind == EventKind::kFlowEnd) os << ",\"bp\":\"e\"";
        os << "}";
        continue;
      }
      if (e.kind == EventKind::kInstant) {
        os << "{\"ph\":\"i\",\"s\":\"t\",\"name\":\"";
        write_escaped(os, name);
        os << "\",\"pid\":1,\"tid\":" << t.tid << ",\"ts\":";
        write_number(os, static_cast<double>(e.start_ns) / 1e3);
      } else {
        os << "{\"ph\":\"X\",\"name\":\"";
        write_escaped(os, name);
        os << "\",\"pid\":1,\"tid\":" << t.tid << ",\"ts\":";
        write_number(os, static_cast<double>(e.start_ns) / 1e3);
        os << ",\"dur\":";
        write_number(os, static_cast<double>(e.end_ns - e.start_ns) / 1e3);
      }
      bool any_args = false;
      for (const SpanArg& a : e.args) {
        if (a.key == nullptr) continue;
        os << (any_args ? "," : ",\"args\":{") << "\"";
        write_escaped(os, a.key);
        os << "\":" << a.value;
        any_args = true;
      }
      if (any_args) os << "}";
      os << "}";
    }
  }
  os << "],\"displayTimeUnit\":\"ms\"}\n";
}

bool write_perfetto_trace(const std::string& path) {
  std::ofstream os(path, std::ios::trunc);
  if (!os) return false;
  export_perfetto_json(os);
  os.flush();
  return static_cast<bool>(os);
}

namespace {

const char* type_name(MetricType t) {
  switch (t) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "summary";
  }
  return "untyped";
}

}  // namespace

void export_prometheus(std::ostream& os) {
  for (const auto& f : MetricsRegistry::global().collect()) {
    if (!f.help.empty()) os << "# HELP " << f.name << " " << f.help << "\n";
    os << "# TYPE " << f.name << " " << type_name(f.type) << "\n";
    switch (f.type) {
      case MetricType::kCounter:
        os << f.name << " " << f.counter_value << "\n";
        break;
      case MetricType::kGauge:
        os << f.name << " " << f.gauge_value << "\n";
        break;
      case MetricType::kHistogram: {
        const LatencyHistogram& h = f.histogram_value;
        for (double q : {0.5, 0.9, 0.99}) {
          char buf[32];
          std::snprintf(buf, sizeof(buf), "%g", q);
          os << f.name << "{quantile=\"" << buf << "\"} "
             << h.quantile_seconds(q) << "\n";
        }
        os << f.name << "_sum " << h.sum_seconds() << "\n";
        os << f.name << "_count " << h.count() << "\n";
        break;
      }
    }
  }
  os << "# TYPE pc_trace_dropped_events_total counter\n"
     << "pc_trace_dropped_events_total " << dropped_events() << "\n";
}

bool write_prometheus_file(const std::string& path) {
  std::ofstream os(path, std::ios::trunc);
  if (!os) return false;
  export_prometheus(os);
  os.flush();
  return static_cast<bool>(os);
}

std::string prometheus_text() {
  std::ostringstream os;
  export_prometheus(os);
  return os.str();
}

void print_summary(std::ostream& os) {
  struct Agg {
    uint64_t count = 0;
    double total_ms = 0;
    double max_ms = 0;
  };
  std::map<std::string, Agg> by_name;
  uint64_t dropped = 0;
  for (const ThreadTrace& t : collect_traces()) {
    dropped += t.dropped;
    for (const TraceEvent& e : t.events) {
      Agg& a = by_name[e.name != nullptr ? e.name : "?"];
      const double ms = static_cast<double>(e.end_ns - e.start_ns) / 1e6;
      ++a.count;
      a.total_ms += ms;
      a.max_ms = std::max(a.max_ms, ms);
    }
  }

  os << "== spans ==\n";
  if (by_name.empty()) {
    os << "  (no events recorded"
       << (tracing_enabled() ? "" : "; tracing is disabled") << ")\n";
  } else {
    char line[160];
    std::snprintf(line, sizeof(line), "  %-24s %10s %12s %12s %12s\n", "span",
                  "count", "total ms", "mean ms", "max ms");
    os << line;
    for (const auto& [name, a] : by_name) {
      std::snprintf(line, sizeof(line),
                    "  %-24s %10" PRIu64 " %12.3f %12.4f %12.3f\n",
                    name.c_str(), a.count, a.total_ms,
                    a.total_ms / static_cast<double>(a.count), a.max_ms);
      os << line;
    }
  }
  if (dropped > 0) {
    os << "  (ring wrap dropped " << dropped << " events)\n";
  }

  os << "== metrics ==\n";
  for (const auto& f : MetricsRegistry::global().collect()) {
    switch (f.type) {
      case MetricType::kCounter:
        os << "  " << f.name << " = " << f.counter_value << "\n";
        break;
      case MetricType::kGauge:
        os << "  " << f.name << " = " << f.gauge_value << "\n";
        break;
      case MetricType::kHistogram:
        os << "  " << f.name << ": " << f.histogram_value.summary() << "\n";
        break;
    }
  }
}

}  // namespace pc::obs
