#include "obs/metrics.h"

#include "common/error.h"

namespace pc::obs {

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* r = new MetricsRegistry;  // leaked: exit-safe
  return *r;
}

MetricsRegistry::Family& MetricsRegistry::family_locked(
    const std::string& name, MetricType type, const std::string& help) {
  auto [it, inserted] = families_.try_emplace(name);
  if (inserted) {
    it->second.type = type;
    it->second.help = help;
  } else {
    PC_CHECK_MSG(it->second.type == type,
                 "metric '" << name
                            << "' re-registered with a different type");
    if (it->second.help.empty()) it->second.help = help;
  }
  return it->second;
}

Counter MetricsRegistry::counter(const std::string& name,
                                 const std::string& help) {
  auto cell = std::make_shared<std::atomic<uint64_t>>(0);
  std::lock_guard lock(mutex_);
  family_locked(name, MetricType::kCounter, help).counters.push_back(cell);
  return Counter(std::move(cell));
}

Gauge MetricsRegistry::gauge(const std::string& name,
                             const std::string& help) {
  auto cell = std::make_shared<std::atomic<int64_t>>(0);
  std::lock_guard lock(mutex_);
  family_locked(name, MetricType::kGauge, help).gauges.push_back(cell);
  return Gauge(std::move(cell));
}

Histogram MetricsRegistry::histogram(const std::string& name,
                                     const std::string& help) {
  auto cell = std::make_shared<Histogram::Cell>();
  std::lock_guard lock(mutex_);
  family_locked(name, MetricType::kHistogram, help).histograms.push_back(cell);
  return Histogram(std::move(cell));
}

std::vector<MetricsRegistry::FamilySample> MetricsRegistry::collect() const {
  std::lock_guard lock(mutex_);
  std::vector<FamilySample> out;
  out.reserve(families_.size());
  for (const auto& [name, family] : families_) {
    FamilySample s;
    s.name = name;
    s.type = family.type;
    s.help = family.help;
    switch (family.type) {
      case MetricType::kCounter:
        for (const auto& c : family.counters) {
          s.counter_value += c->load(std::memory_order_relaxed);
        }
        break;
      case MetricType::kGauge: {
        bool any_live = false;
        for (const auto& w : family.gauges) {
          if (auto g = w.lock()) {
            any_live = true;
            s.gauge_value += g->load(std::memory_order_relaxed);
          }
        }
        if (!any_live) continue;  // owner(s) gone: drop from the scrape
        break;
      }
      case MetricType::kHistogram:
        for (const auto& h : family.histograms) {
          std::lock_guard cell_lock(h->mutex);
          s.histogram_value.merge(h->hist);
        }
        break;
    }
    out.push_back(std::move(s));
  }
  return out;
}

size_t MetricsRegistry::family_count() const {
  std::lock_guard lock(mutex_);
  return families_.size();
}

}  // namespace pc::obs
