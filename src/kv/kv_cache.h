// Key-value attention-state cache for one sequence.
//
// Layout: per layer, K and V are [n_tokens, kv_dim] row-major buffers where
// kv_dim = n_kv_heads * d_head. The position ID of every cached token is
// retained (shared across layers) because Prompt Cache relocates modules:
// RoPE keys are cached post-rotation, but ALiBi biases must be recomputed
// from true key position IDs at attention time (paper §4.2).
//
// Growth policy implements the paper's buffered concatenation operator
// (§4.2): PyTorch-style concatenation reallocates and copies the whole
// buffer on every append; the buffered policy grows geometrically (and
// honors reserve()), so appending a module is a single memcpy into reserved
// space. Both policies are kept so the ablation benchmark can measure the
// difference; stats record every reallocation.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "common/error.h"

namespace pc {

enum class ConcatPolicy {
  kBuffered,  // geometric growth + reserve(): amortized O(1) appends
  kNaive,     // exact-fit reallocation on every append (PyTorch torch.cat)
};

struct KVCacheStats {
  uint64_t reallocations = 0;   // buffer growth events (all layers summed)
  uint64_t bytes_moved = 0;     // bytes copied due to reallocation
  uint64_t bytes_appended = 0;  // payload bytes written by appends
};

class KVCache {
 public:
  KVCache(int n_layers, int kv_dim,
          ConcatPolicy policy = ConcatPolicy::kBuffered)
      : n_layers_(n_layers), kv_dim_(kv_dim), policy_(policy) {
    PC_CHECK(n_layers > 0 && kv_dim > 0);
    layers_.resize(static_cast<size_t>(n_layers));
  }

  int n_layers() const { return n_layers_; }
  int kv_dim() const { return kv_dim_; }
  int size() const { return n_tokens_; }
  bool empty() const { return n_tokens_ == 0; }
  ConcatPolicy policy() const { return policy_; }
  const KVCacheStats& stats() const { return stats_; }

  const std::vector<int>& pos_ids() const { return pos_ids_; }
  int pos_id(int token) const {
    PC_CHECK(token >= 0 && token < n_tokens_);
    return pos_ids_[static_cast<size_t>(token)];
  }

  // Ensures capacity for at least n_tokens without reallocation.
  void reserve(int n_tokens) {
    if (n_tokens <= capacity_) return;
    grow_to(n_tokens);
  }

  int capacity() const { return capacity_; }

  // Appends `count` token slots with the given position IDs; rows are
  // zero-initialized and writable via k_row()/v_row(). Returns the index of
  // the first new token.
  int append_tokens(std::span<const int> new_pos_ids) {
    const int count = static_cast<int>(new_pos_ids.size());
    ensure_capacity(n_tokens_ + count);
    const int first = n_tokens_;
    pos_ids_.insert(pos_ids_.end(), new_pos_ids.begin(), new_pos_ids.end());
    n_tokens_ += count;
    stats_.bytes_appended += static_cast<uint64_t>(count) * kv_dim_ * 2 *
                             n_layers_ * sizeof(float);
    return first;
  }

  // Appends the entire contents of `src` (same geometry) — this is the
  // module-concatenation step of cached inference, a pure memcpy.
  int append_copy(const KVCache& src) { return append_range(src, 0, src.size()); }

  // Appends token rows [begin, end) of `src`. Used to copy a module's text
  // rows while skipping parameter placeholders (paper §3.3/§3.4).
  int append_range(const KVCache& src, int begin, int end) {
    PC_CHECK_MSG(src.n_layers_ == n_layers_ && src.kv_dim_ == kv_dim_,
                 "KV geometry mismatch on concat");
    PC_CHECK(begin >= 0 && begin <= end && end <= src.n_tokens_);
    const int count = end - begin;
    const int first = append_tokens(
        std::span<const int>(src.pos_ids_.data() + begin,
                             static_cast<size_t>(count)));
    const size_t row_bytes = static_cast<size_t>(kv_dim_) * sizeof(float);
    for (int l = 0; l < n_layers_; ++l) {
      auto& dst = layers_[static_cast<size_t>(l)];
      const auto& s = src.layers_[static_cast<size_t>(l)];
      std::memcpy(dst.k.data() + static_cast<size_t>(first) * kv_dim_,
                  s.k.data() + static_cast<size_t>(begin) * kv_dim_,
                  static_cast<size_t>(count) * row_bytes);
      std::memcpy(dst.v.data() + static_cast<size_t>(first) * kv_dim_,
                  s.v.data() + static_cast<size_t>(begin) * kv_dim_,
                  static_cast<size_t>(count) * row_bytes);
    }
    return first;
  }

  float* k_row(int layer, int token) { return row(layer, token, true); }
  float* v_row(int layer, int token) { return row(layer, token, false); }
  const float* k_row(int layer, int token) const {
    return const_cast<KVCache*>(this)->row(layer, token, true);
  }
  const float* v_row(int layer, int token) const {
    return const_cast<KVCache*>(this)->row(layer, token, false);
  }

  // Overwrites token rows in every layer from another cache (used for
  // parameter substitution: argument states replace <unk> placeholders).
  void overwrite_from(int dst_first, const KVCache& src, int src_first,
                      int count) {
    PC_CHECK(src.n_layers_ == n_layers_ && src.kv_dim_ == kv_dim_);
    PC_CHECK(dst_first >= 0 && dst_first + count <= n_tokens_);
    PC_CHECK(src_first >= 0 && src_first + count <= src.n_tokens_);
    const size_t bytes = static_cast<size_t>(count) * kv_dim_ * sizeof(float);
    for (int l = 0; l < n_layers_; ++l) {
      std::memcpy(k_row(l, dst_first), src.k_row(l, src_first), bytes);
      std::memcpy(v_row(l, dst_first), src.v_row(l, src_first), bytes);
    }
    for (int i = 0; i < count; ++i) {
      pos_ids_[static_cast<size_t>(dst_first + i)] =
          src.pos_ids_[static_cast<size_t>(src_first + i)];
    }
  }

  // Total bytes of attention-state payload currently held.
  size_t payload_bytes() const {
    return static_cast<size_t>(n_tokens_) * kv_dim_ * 2 * n_layers_ *
           sizeof(float);
  }

  // Truncates to the first n_tokens (used to roll back speculative appends).
  void truncate(int n_tokens) {
    PC_CHECK(n_tokens >= 0 && n_tokens <= n_tokens_);
    n_tokens_ = n_tokens;
    pos_ids_.resize(static_cast<size_t>(n_tokens));
  }

 private:
  struct LayerBuffers {
    std::vector<float> k;
    std::vector<float> v;
  };

  float* row(int layer, int token, bool key) {
    PC_CHECK_MSG(layer >= 0 && layer < n_layers_, "layer out of range");
    PC_CHECK_MSG(token >= 0 && token < n_tokens_,
                 "token " << token << " out of range " << n_tokens_);
    auto& bufs = layers_[static_cast<size_t>(layer)];
    auto& buf = key ? bufs.k : bufs.v;
    return buf.data() + static_cast<size_t>(token) * kv_dim_;
  }

  void ensure_capacity(int n_tokens) {
    if (n_tokens <= capacity_) return;
    int target = n_tokens;
    if (policy_ == ConcatPolicy::kBuffered) {
      target = std::max(n_tokens, capacity_ > 0 ? capacity_ * 2 : 64);
    }
    grow_to(target);
  }

  void grow_to(int target) {
    const size_t elems = static_cast<size_t>(target) * kv_dim_;
    for (auto& bufs : layers_) {
      // vector::resize preserves contents; count the move explicitly when
      // the allocation actually changes.
      const bool moved = bufs.k.capacity() < elems;
      if (moved) {
        stats_.reallocations += 2;  // k and v
        stats_.bytes_moved += static_cast<uint64_t>(n_tokens_) * kv_dim_ * 2 *
                              sizeof(float);
      }
      bufs.k.resize(elems, 0.0f);
      bufs.v.resize(elems, 0.0f);
      if (policy_ == ConcatPolicy::kNaive) {
        bufs.k.shrink_to_fit();
        bufs.v.shrink_to_fit();
      }
    }
    capacity_ = target;
    pos_ids_.reserve(static_cast<size_t>(target));
  }

  int n_layers_;
  int kv_dim_;
  ConcatPolicy policy_;
  int n_tokens_ = 0;
  int capacity_ = 0;
  std::vector<int> pos_ids_;
  std::vector<LayerBuffers> layers_;
  KVCacheStats stats_;
};

}  // namespace pc
