// Zero-copy composite KV cache.
//
// Cached inference normally memcpy-concatenates module states into a
// per-request cache (§3.4). SegmentedKVCache removes even that copy: it
// *borrows* rows from encoded modules (which stay resident in the module
// store) and owns only a small writable tail for uncached/generated
// tokens. This is the CPU analog of the paper's future-work direction of
// sharing attention states across concurrent requests (§6): N requests
// importing the same modules hold N pointer tables and N tails, but one
// copy of the module states.
//
// Row access goes through per-layer pointer tables, so the attention inner
// loop pays one extra indirection per row. The owned tail has fixed
// capacity (reserved up front) because growing it would invalidate the
// published row pointers; appending beyond the reservation is a contract
// violation, not a reallocation.
//
// Lifetime: borrowed sources must outlive the view. The engine pins
// borrowed modules in the store for the duration of a request.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "kv/kv_cache.h"
#include "kv/quant.h"

namespace pc {

class SegmentedKVCache {
 public:
  // tail_capacity bounds the owned (writable) tokens: uncached prompt
  // segments plus the generation budget.
  SegmentedKVCache(int n_layers, int kv_dim, int tail_capacity)
      : n_layers_(n_layers),
        kv_dim_(kv_dim),
        tail_capacity_(tail_capacity),
        tail_(n_layers, kv_dim) {
    PC_CHECK(tail_capacity >= 0);
    tail_.reserve(tail_capacity);
    k_rows_.resize(static_cast<size_t>(n_layers));
    v_rows_.resize(static_cast<size_t>(n_layers));
  }

  int n_layers() const { return n_layers_; }
  int kv_dim() const { return kv_dim_; }
  int size() const { return static_cast<int>(pos_ids_.size()); }
  bool empty() const { return pos_ids_.empty(); }
  int borrowed_tokens() const { return borrowed_tokens_; }
  int owned_tokens() const { return tail_.size(); }

  // Borrows rows [begin, end) of `src` by reference. No payload moves;
  // src must stay alive and unmodified while this view is used.
  void append_borrowed(const KVCache& src, int begin, int end) {
    PC_CHECK_MSG(src.n_layers() == n_layers_ && src.kv_dim() == kv_dim_,
                 "borrowed segment geometry mismatch");
    PC_CHECK(begin >= 0 && begin <= end && end <= src.size());
    PC_CHECK_MSG(tail_.size() == 0,
                 "segments must be borrowed before any owned appends");
    for (int l = 0; l < n_layers_; ++l) {
      auto& kt = k_rows_[static_cast<size_t>(l)];
      auto& vt = v_rows_[static_cast<size_t>(l)];
      for (int t = begin; t < end; ++t) {
        kt.push_back(src.k_row(l, t));
        vt.push_back(src.v_row(l, t));
      }
    }
    for (int t = begin; t < end; ++t) pos_ids_.push_back(src.pos_id(t));
    if (has_q8_) push_null_q8(static_cast<size_t>(end - begin));
    if (has_q4_) push_null_q4(static_cast<size_t>(end - begin));
    borrowed_tokens_ += end - begin;
  }

  // Borrows tokens [begin, end) of a module's Q8_0 payload by reference —
  // the quantized analog of append_borrowed. The int8 rows and their scales
  // stay exactly where the module store holds them (zero copy, no
  // dequantization); attention over these slots runs in the int8 domain via
  // attn_fused_q8_gather. `layers` must outlive the view, like any borrowed
  // source.
  void append_borrowed_q8(const std::vector<Q8Layer>& layers,
                          std::span<const int> src_pos, int begin, int end) {
    PC_CHECK_MSG(static_cast<int>(layers.size()) == n_layers_,
                 "borrowed q8 segment layer-count mismatch");
    PC_CHECK(begin >= 0 && begin <= end &&
             end <= static_cast<int>(src_pos.size()));
    PC_CHECK_MSG(tail_.size() == 0,
                 "segments must be borrowed before any owned appends");
    enable_q8();
    for (int l = 0; l < n_layers_; ++l) {
      const Q8Layer& src = layers[static_cast<size_t>(l)];
      auto& kt = k8_rows_[static_cast<size_t>(l)];
      auto& vt = v8_rows_[static_cast<size_t>(l)];
      auto& ks = k_scales_[static_cast<size_t>(l)];
      auto& vs = v_scales_[static_cast<size_t>(l)];
      for (int t = begin; t < end; ++t) {
        kt.push_back(src.k.data() + static_cast<size_t>(t) * kv_dim_);
        vt.push_back(src.v.data() + static_cast<size_t>(t) * kv_dim_);
        ks.push_back(src.k_scales[static_cast<size_t>(t)]);
        vs.push_back(src.v_scales[static_cast<size_t>(t)]);
      }
      k_rows_[static_cast<size_t>(l)].insert(
          k_rows_[static_cast<size_t>(l)].end(),
          static_cast<size_t>(end - begin), nullptr);
      v_rows_[static_cast<size_t>(l)].insert(
          v_rows_[static_cast<size_t>(l)].end(),
          static_cast<size_t>(end - begin), nullptr);
    }
    for (int t = begin; t < end; ++t) {
      pos_ids_.push_back(src_pos[static_cast<size_t>(t)]);
    }
    if (has_q4_) push_null_q4(static_cast<size_t>(end - begin));
    borrowed_tokens_ += end - begin;
  }

  // Borrows tokens [begin, end) of a module's Q4_0 payload by reference —
  // one format below append_borrowed_q8. The packed nibble rows and their
  // per-block scale arrays stay exactly where the module store holds them
  // (zero copy, no dequantization); attention over these slots runs in the
  // int4 domain via attn_fused_q4_gather. `layers` must outlive the view.
  void append_borrowed_q4(const std::vector<Q4Layer>& layers,
                          std::span<const int> src_pos, int begin, int end) {
    PC_CHECK_MSG(static_cast<int>(layers.size()) == n_layers_,
                 "borrowed q4 segment layer-count mismatch");
    PC_CHECK(begin >= 0 && begin <= end &&
             end <= static_cast<int>(src_pos.size()));
    PC_CHECK_MSG(tail_.size() == 0,
                 "segments must be borrowed before any owned appends");
    enable_q4();
    const size_t row_bytes = q4_row_bytes(kv_dim_);
    const size_t blocks = static_cast<size_t>(q4_blocks(kv_dim_));
    for (int l = 0; l < n_layers_; ++l) {
      const Q4Layer& src = layers[static_cast<size_t>(l)];
      auto& kt = k4_rows_[static_cast<size_t>(l)];
      auto& vt = v4_rows_[static_cast<size_t>(l)];
      auto& ks = k4_scales_[static_cast<size_t>(l)];
      auto& vs = v4_scales_[static_cast<size_t>(l)];
      for (int t = begin; t < end; ++t) {
        kt.push_back(src.k.data() + static_cast<size_t>(t) * row_bytes);
        vt.push_back(src.v.data() + static_cast<size_t>(t) * row_bytes);
        ks.push_back(src.k_scales.data() + static_cast<size_t>(t) * blocks);
        vs.push_back(src.v_scales.data() + static_cast<size_t>(t) * blocks);
      }
      k_rows_[static_cast<size_t>(l)].insert(
          k_rows_[static_cast<size_t>(l)].end(),
          static_cast<size_t>(end - begin), nullptr);
      v_rows_[static_cast<size_t>(l)].insert(
          v_rows_[static_cast<size_t>(l)].end(),
          static_cast<size_t>(end - begin), nullptr);
    }
    for (int t = begin; t < end; ++t) {
      pos_ids_.push_back(src_pos[static_cast<size_t>(t)]);
    }
    if (has_q8_) push_null_q8(static_cast<size_t>(end - begin));
    borrowed_tokens_ += end - begin;
  }

  // Appends owned writable token slots (the uncached/generated rows).
  // Returns the global index of the first new token.
  int append_tokens(std::span<const int> new_pos_ids) {
    PC_CHECK_MSG(tail_.size() + static_cast<int>(new_pos_ids.size()) <=
                     tail_capacity_,
                 "segmented cache tail overflow: reserve a larger "
                 "generation budget");
    const int first_tail = tail_.append_tokens(new_pos_ids);
    for (size_t i = 0; i < new_pos_ids.size(); ++i) {
      const int t = first_tail + static_cast<int>(i);
      for (int l = 0; l < n_layers_; ++l) {
        k_rows_[static_cast<size_t>(l)].push_back(tail_.k_row(l, t));
        v_rows_[static_cast<size_t>(l)].push_back(tail_.v_row(l, t));
      }
      pos_ids_.push_back(new_pos_ids[i]);
    }
    if (has_q8_) push_null_q8(new_pos_ids.size());
    if (has_q4_) push_null_q4(new_pos_ids.size());
    return size() - static_cast<int>(new_pos_ids.size());
  }

  const float* k_row(int layer, int token) const {
    return k_rows_[checked_layer(layer)][checked_token(token)];
  }
  const float* v_row(int layer, int token) const {
    return v_rows_[checked_layer(layer)][checked_token(token)];
  }

  // Raw per-layer row-pointer tables (size() entries), for the gathered
  // attention kernel: one bounds check per layer instead of one per row.
  // When has_q8(), entries for quantized tokens are null here and live in
  // the q8 tables below.
  const float* const* k_row_table(int layer) const {
    return k_rows_[checked_layer(layer)].data();
  }
  const float* const* v_row_table(int layer) const {
    return v_rows_[checked_layer(layer)].data();
  }

  // Whether any borrowed row is quantized; if so attention must use
  // attn_fused_q8_gather with the four tables below.
  bool has_q8() const { return has_q8_; }
  const int8_t* const* k8_row_table(int layer) const {
    PC_CHECK_MSG(has_q8_, "no q8 rows in this view");
    return k8_rows_[checked_layer(layer)].data();
  }
  const int8_t* const* v8_row_table(int layer) const {
    PC_CHECK_MSG(has_q8_, "no q8 rows in this view");
    return v8_rows_[checked_layer(layer)].data();
  }
  const float* k_scale_table(int layer) const {
    PC_CHECK_MSG(has_q8_, "no q8 rows in this view");
    return k_scales_[checked_layer(layer)].data();
  }
  const float* v_scale_table(int layer) const {
    PC_CHECK_MSG(has_q8_, "no q8 rows in this view");
    return v_scales_[checked_layer(layer)].data();
  }

  // Whether any borrowed row is Q4_0; if so attention must use
  // attn_fused_q4_gather with the four tables below. Unlike q8, the scale
  // tables hold POINTERS (each row has a per-block scale array).
  bool has_q4() const { return has_q4_; }
  const uint8_t* const* k4_row_table(int layer) const {
    PC_CHECK_MSG(has_q4_, "no q4 rows in this view");
    return k4_rows_[checked_layer(layer)].data();
  }
  const uint8_t* const* v4_row_table(int layer) const {
    PC_CHECK_MSG(has_q4_, "no q4 rows in this view");
    return v4_rows_[checked_layer(layer)].data();
  }
  const float* const* k4_scale_table(int layer) const {
    PC_CHECK_MSG(has_q4_, "no q4 rows in this view");
    return k4_scales_[checked_layer(layer)].data();
  }
  const float* const* v4_scale_table(int layer) const {
    PC_CHECK_MSG(has_q4_, "no q4 rows in this view");
    return v4_scales_[checked_layer(layer)].data();
  }

  // Writable access — owned tail rows only.
  float* k_row_mut(int layer, int token) {
    PC_CHECK_MSG(token >= borrowed_tokens_, "borrowed rows are read-only");
    return tail_.k_row(layer, token - borrowed_tokens_);
  }
  float* v_row_mut(int layer, int token) {
    PC_CHECK_MSG(token >= borrowed_tokens_, "borrowed rows are read-only");
    return tail_.v_row(layer, token - borrowed_tokens_);
  }

  int pos_id(int token) const {
    return pos_ids_[checked_token(token)];
  }

  // Payload bytes this view *owns* (the point of zero-copy: O(tail), not
  // O(prompt)).
  size_t owned_payload_bytes() const { return tail_.payload_bytes(); }

 private:
  size_t checked_layer(int layer) const {
    PC_CHECK_MSG(layer >= 0 && layer < n_layers_, "layer out of range");
    return static_cast<size_t>(layer);
  }
  size_t checked_token(int token) const {
    PC_CHECK_MSG(token >= 0 && token < size(),
                 "token " << token << " out of range " << size());
    return static_cast<size_t>(token);
  }

  // Creates the q8 tables and backfills null/0 entries for every token
  // already published, so all tables stay index-aligned.
  void enable_q8() {
    if (has_q8_) return;
    has_q8_ = true;
    const size_t n = pos_ids_.size();
    k8_rows_.assign(static_cast<size_t>(n_layers_), {});
    v8_rows_.assign(static_cast<size_t>(n_layers_), {});
    k_scales_.assign(static_cast<size_t>(n_layers_), {});
    v_scales_.assign(static_cast<size_t>(n_layers_), {});
    for (int l = 0; l < n_layers_; ++l) {
      k8_rows_[static_cast<size_t>(l)].assign(n, nullptr);
      v8_rows_[static_cast<size_t>(l)].assign(n, nullptr);
      k_scales_[static_cast<size_t>(l)].assign(n, 0.0f);
      v_scales_[static_cast<size_t>(l)].assign(n, 0.0f);
    }
  }

  void push_null_q8(size_t n) {
    for (int l = 0; l < n_layers_; ++l) {
      k8_rows_[static_cast<size_t>(l)].insert(
          k8_rows_[static_cast<size_t>(l)].end(), n, nullptr);
      v8_rows_[static_cast<size_t>(l)].insert(
          v8_rows_[static_cast<size_t>(l)].end(), n, nullptr);
      k_scales_[static_cast<size_t>(l)].insert(
          k_scales_[static_cast<size_t>(l)].end(), n, 0.0f);
      v_scales_[static_cast<size_t>(l)].insert(
          v_scales_[static_cast<size_t>(l)].end(), n, 0.0f);
    }
  }

  // q4 analog of enable_q8/push_null_q8.
  void enable_q4() {
    if (has_q4_) return;
    has_q4_ = true;
    const size_t n = pos_ids_.size();
    k4_rows_.assign(static_cast<size_t>(n_layers_), {});
    v4_rows_.assign(static_cast<size_t>(n_layers_), {});
    k4_scales_.assign(static_cast<size_t>(n_layers_), {});
    v4_scales_.assign(static_cast<size_t>(n_layers_), {});
    for (int l = 0; l < n_layers_; ++l) {
      k4_rows_[static_cast<size_t>(l)].assign(n, nullptr);
      v4_rows_[static_cast<size_t>(l)].assign(n, nullptr);
      k4_scales_[static_cast<size_t>(l)].assign(n, nullptr);
      v4_scales_[static_cast<size_t>(l)].assign(n, nullptr);
    }
  }

  void push_null_q4(size_t n) {
    for (int l = 0; l < n_layers_; ++l) {
      k4_rows_[static_cast<size_t>(l)].insert(
          k4_rows_[static_cast<size_t>(l)].end(), n, nullptr);
      v4_rows_[static_cast<size_t>(l)].insert(
          v4_rows_[static_cast<size_t>(l)].end(), n, nullptr);
      k4_scales_[static_cast<size_t>(l)].insert(
          k4_scales_[static_cast<size_t>(l)].end(), n, nullptr);
      v4_scales_[static_cast<size_t>(l)].insert(
          v4_scales_[static_cast<size_t>(l)].end(), n, nullptr);
    }
  }

  int n_layers_;
  int kv_dim_;
  int tail_capacity_;
  int borrowed_tokens_ = 0;
  bool has_q8_ = false;
  bool has_q4_ = false;
  KVCache tail_;
  std::vector<std::vector<const float*>> k_rows_;  // [layer][token]
  std::vector<std::vector<const float*>> v_rows_;
  // Mixed-format tables, index-aligned with the fp32 tables when enabled:
  // exactly one of k_rows_[l][t] / k8_rows_[l][t] / k4_rows_[l][t] is
  // non-null per token.
  std::vector<std::vector<const int8_t*>> k8_rows_;
  std::vector<std::vector<const int8_t*>> v8_rows_;
  std::vector<std::vector<float>> k_scales_;  // [layer][token], 0 for fp32
  std::vector<std::vector<float>> v_scales_;
  std::vector<std::vector<const uint8_t*>> k4_rows_;   // packed Q4_0 rows
  std::vector<std::vector<const uint8_t*>> v4_rows_;
  std::vector<std::vector<const float*>> k4_scales_;   // per-block arrays
  std::vector<std::vector<const float*>> v4_scales_;
  std::vector<int> pos_ids_;
};

}  // namespace pc
