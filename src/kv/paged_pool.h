// Paged KV storage with shared, reference-counted pages.
//
// Models the batch-inference memory optimization from paper §3.4: when many
// prompts in a batch import the same prompt module, a paged allocator
// (PagedAttention, Kwon et al. 2023) lets them share *pointers* to the same
// attention-state pages instead of duplicating them. This module implements
// the allocator and the sharing accounting; PagedKVCache (kv/paged_cache.h)
// is the compute-side view that the batched serve path (sys/batch.h) runs
// attention over.
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "common/error.h"

namespace pc {

using PageId = int32_t;
constexpr PageId kInvalidPage = -1;

struct PagedPoolStats {
  uint64_t pages_allocated = 0;  // cumulative allocations (both kinds)
  uint64_t uninitialized_allocations = 0;  // subset skipping the zero-fill
  uint64_t pages_freed = 0;
  uint64_t cow_copies = 0;  // copy-on-write page duplications
};

class PagedKVPool {
 public:
  // Page kinds: fp32 (writable decode/COW pages) and the immutable
  // quantized module kinds.
  enum class Kind { kFp32, kQ8, kQ4 };

  // page_tokens: tokens per page; bytes_per_token: full per-token KV payload
  // across all layers (2 * n_layers * kv_dim * dtype_size).
  // q8_bytes_per_token (optional): per-token payload of the Q8_0 page kind
  // (Q8TokenLayout::stride()); 0 disables q8 pages. q4_bytes_per_token
  // (optional): per-token payload of the Q4_0 page kind
  // (Q4TokenLayout::stride()); 0 disables q4 pages.
  PagedKVPool(int page_tokens, size_t bytes_per_token,
              size_t q8_bytes_per_token = 0, size_t q4_bytes_per_token = 0)
      : page_tokens_(page_tokens),
        bytes_per_token_(bytes_per_token),
        q8_bytes_per_token_(q8_bytes_per_token),
        q4_bytes_per_token_(q4_bytes_per_token) {
    PC_CHECK(page_tokens > 0 && bytes_per_token > 0);
  }

  int page_tokens() const { return page_tokens_; }
  size_t page_bytes() const { return bytes_per_token_ * page_tokens_; }
  size_t page_bytes_q8() const { return q8_bytes_per_token_ * page_tokens_; }
  size_t page_bytes_q4() const { return q4_bytes_per_token_ * page_tokens_; }

  // Payload bytes of a specific page (kind-aware).
  size_t page_bytes(PageId id) const { return kind_bytes(page(id).kind); }
  bool is_q8(PageId id) const { return page(id).kind == Kind::kQ8; }
  bool is_q4(PageId id) const { return page(id).kind == Kind::kQ4; }

  // Fresh zero-filled page (decode tails start from defined contents).
  PageId allocate() { return allocate_impl(/*zero=*/true, Kind::kFp32); }

  // Uninitialized payload, for callers that overwrite the entire page
  // before reading it — the copy-on-write duplication below, which would
  // otherwise pay a redundant full-page zero-fill per copy.
  PageId allocate_uninitialized() {
    return allocate_impl(/*zero=*/false, Kind::kFp32);
  }

  // Fresh zero-filled quantized page (~4x smaller payload). Q8 pages hold
  // immutable module rows: they are shared by reference, never COW'd and
  // never written after materialization.
  PageId allocate_q8() {
    PC_CHECK_MSG(q8_bytes_per_token_ > 0,
                 "pool was constructed without a q8 page kind");
    return allocate_impl(/*zero=*/true, Kind::kQ8);
  }

  // Fresh zero-filled Q4_0 page (~8x smaller payload). Same immutability
  // contract as q8 pages.
  PageId allocate_q4() {
    PC_CHECK_MSG(q4_bytes_per_token_ > 0,
                 "pool was constructed without a q4 page kind");
    return allocate_impl(/*zero=*/true, Kind::kQ4);
  }

  void retain(PageId id) { ++page(id).refcount; }

  void release(PageId id) {
    Page& p = page(id);
    PC_CHECK_MSG(p.refcount > 0, "release of dead page " << id);
    if (--p.refcount == 0) {
      p.data.reset();
      free_list_.push_back(id);
      ++stats_.pages_freed;
    }
  }

  int refcount(PageId id) const { return page(id).refcount; }

  // Write access with copy-on-write: if the page is shared, a private copy
  // is made and its id returned; otherwise the same id is returned. fp32
  // pages only — quantized pages are immutable by contract, so no caller
  // may ask for write access to one.
  PageId make_writable(PageId id) {
    PC_CHECK_MSG(page(id).kind == Kind::kFp32,
                 "quantized pages are read-only (no COW)");
    if (page(id).refcount == 1) return id;
    const PageId fresh = allocate_uninitialized();
    // Re-fetch both pages after the allocation: growing pages_ invalidates
    // references into it.
    std::memcpy(page(fresh).data.get(), page(id).data.get(),
                page_floats(Kind::kFp32) * sizeof(float));
    ++stats_.cow_copies;
    release(id);
    return fresh;
  }

  float* data(PageId id) {
    Page& p = page(id);
    PC_CHECK_MSG(p.kind == Kind::kFp32, "fp32 access to a quantized page");
    return p.data.get();
  }
  const float* data(PageId id) const {
    const Page& p = page(id);
    PC_CHECK_MSG(p.kind == Kind::kFp32, "fp32 access to a quantized page");
    return p.data.get();
  }

  // Byte view of a Q8_0 page's payload (Q8TokenLayout slots).
  int8_t* data_q8(PageId id) {
    Page& p = page(id);
    PC_CHECK_MSG(p.kind == Kind::kQ8, "q8 access to a non-q8 page");
    return reinterpret_cast<int8_t*>(p.data.get());
  }
  const int8_t* data_q8(PageId id) const {
    const Page& p = page(id);
    PC_CHECK_MSG(p.kind == Kind::kQ8, "q8 access to a non-q8 page");
    return reinterpret_cast<const int8_t*>(p.data.get());
  }

  // Byte view of a Q4_0 page's payload (Q4TokenLayout slots).
  uint8_t* data_q4(PageId id) {
    Page& p = page(id);
    PC_CHECK_MSG(p.kind == Kind::kQ4, "q4 access to a non-q4 page");
    return reinterpret_cast<uint8_t*>(p.data.get());
  }
  const uint8_t* data_q4(PageId id) const {
    const Page& p = page(id);
    PC_CHECK_MSG(p.kind == Kind::kQ4, "q4 access to a non-q4 page");
    return reinterpret_cast<const uint8_t*>(p.data.get());
  }

  // Number of live (referenced) pages and their total payload (kind-aware:
  // a quantized page contributes its smaller payload).
  int live_pages() const {
    int n = 0;
    for (const auto& p : pages_) {
      if (p.refcount > 0) ++n;
    }
    return n;
  }
  size_t live_bytes() const {
    size_t b = 0;
    for (const auto& p : pages_) {
      if (p.refcount > 0) b += kind_bytes(p.kind);
    }
    return b;
  }

  const PagedPoolStats& stats() const { return stats_; }

 private:
  struct Page {
    std::unique_ptr<float[]> data;  // quantized payloads stored as raw
    int refcount = 0;               // float-aligned bytes (the token layouts
    Kind kind = Kind::kFp32;        // need a 4-byte-aligned base)
  };

  size_t kind_bytes(Kind kind) const {
    switch (kind) {
      case Kind::kQ8: return page_bytes_q8();
      case Kind::kQ4: return page_bytes_q4();
      case Kind::kFp32: break;
    }
    return page_bytes();
  }

  size_t page_floats(Kind kind) const {
    const size_t bytes = kind_bytes(kind);
    return bytes / sizeof(float) + (bytes % sizeof(float) != 0);
  }

  PageId allocate_impl(bool zero, Kind kind) {
    PageId id;
    if (!free_list_.empty()) {
      id = free_list_.back();
      free_list_.pop_back();
    } else {
      id = static_cast<PageId>(pages_.size());
      pages_.push_back(Page{});
    }
    Page& p = pages_[static_cast<size_t>(id)];
    p.refcount = 1;
    p.kind = kind;
    const size_t floats = page_floats(kind);
    p.data.reset(zero ? new float[floats]() : new float[floats]);
    ++stats_.pages_allocated;
    if (!zero) ++stats_.uninitialized_allocations;
    return id;
  }

  Page& page(PageId id) {
    PC_CHECK_MSG(id >= 0 && static_cast<size_t>(id) < pages_.size(),
                 "bad page id " << id);
    return pages_[static_cast<size_t>(id)];
  }
  const Page& page(PageId id) const {
    PC_CHECK_MSG(id >= 0 && static_cast<size_t>(id) < pages_.size(),
                 "bad page id " << id);
    return pages_[static_cast<size_t>(id)];
  }

  int page_tokens_;
  size_t bytes_per_token_;
  size_t q8_bytes_per_token_;
  size_t q4_bytes_per_token_;
  std::vector<Page> pages_;
  std::vector<PageId> free_list_;
  PagedPoolStats stats_;
};

// A sequence's view onto the pool: an ordered page table plus token count.
class PagedSequence {
 public:
  explicit PagedSequence(PagedKVPool& pool) : pool_(&pool) {}

  PagedSequence(const PagedSequence&) = delete;
  PagedSequence& operator=(const PagedSequence&) = delete;
  PagedSequence(PagedSequence&& other) noexcept
      : pool_(other.pool_),
        pages_(std::move(other.pages_)),
        n_tokens_(other.n_tokens_) {
    other.pages_.clear();
    other.n_tokens_ = 0;
  }

  ~PagedSequence() {
    for (PageId id : pages_) pool_->release(id);
  }

  int n_tokens() const { return n_tokens_; }
  const std::vector<PageId>& pages() const { return pages_; }

  // Appends n fresh (exclusive) tokens, allocating pages as needed.
  void append_tokens(int n) {
    PC_CHECK(n >= 0);
    while (n > 0) {
      const int room = slack();
      if (room == 0) {
        pages_.push_back(pool_->allocate());
        continue;
      }
      const int take = std::min(room, n);
      n_tokens_ += take;
      n -= take;
    }
  }

  // Appends another sequence's pages by reference (zero copy) — valid when
  // this sequence currently ends on a page boundary, which is how encoded
  // modules are laid out. This is the batch-sharing fast path of §3.4.
  void append_shared(const PagedSequence& src) {
    PC_CHECK_MSG(slack() == 0,
                 "append_shared requires a page-aligned destination");
    for (PageId id : src.pages_) {
      pool_->retain(id);
      pages_.push_back(id);
    }
    n_tokens_ += src.n_tokens_;
    // Padding inside src's final page is inherited; count it as occupied so
    // subsequent appends start on a fresh page.
    n_tokens_ += src.slack();
  }

  // Ensures the page holding `token` is exclusively owned, copying if shared.
  void make_token_writable(int token) {
    PC_CHECK(token >= 0 && token < n_tokens_);
    const size_t idx = static_cast<size_t>(token / pool_->page_tokens());
    pages_[idx] = pool_->make_writable(pages_[idx]);
  }

 private:
  int slack() const {
    const int cap = static_cast<int>(pages_.size()) * pool_->page_tokens();
    return cap - n_tokens_;
  }

  PagedKVPool* pool_;
  std::vector<PageId> pages_;
  int n_tokens_ = 0;
};

}  // namespace pc
