// Paged composite KV cache — the compute-side view onto PagedKVPool.
//
// This is what connects the §3.4 batch-inference memory optimization to the
// forward pass: a request's cache is an ordered list of pool pages plus
// per-layer row-pointer tables (one pointer per logical token, like
// SegmentedKVCache), so the gathered attention kernel reads it directly and
// tokens need not be page-aligned.
//
// Ownership model (docs/INTERNALS.md §10):
//   * Imported modules are materialized once into a packed PagedKVCache
//     (append_copy) held by the batch scheduler's registry. Requests attach
//     them with append_shared: full pages are shared by reference
//     (refcount++, zero copy), and a trailing partially-filled page is
//     copy-on-write duplicated so the request's suffix keeps filling its
//     free slots without touching the module.
//   * Uncached prompt tokens and decode tokens land in private pages
//     (append_tokens); only rows appended after the last append_shared are
//     writable (shared/COW-borrowed module rows are read-only).
//
// Page layout: token-major, layer-interleaved. A token's slot holds its K
// and V rows for every layer back to back:
//   k_row(layer, slot) = page + slot * (2 * n_layers * kv_dim)
//                             + layer * (2 * kv_dim)
//   v_row(layer, slot) = k_row(layer, slot) + kv_dim
// so one token's full KV payload is bytes_per_token contiguous floats and
// page_bytes/bytes_per_token matches the pool's accounting exactly.
//
// Pointer stability: page payloads are stable heap buffers (the pool's page
// *table* may grow, the payloads never move), so published row pointers
// stay valid for the cache's lifetime.
#pragma once

#include <span>
#include <vector>

#include "kv/kv_cache.h"
#include "kv/paged_pool.h"
#include "kv/quant.h"

namespace pc {

class PagedKVCache {
 public:
  PagedKVCache(PagedKVPool& pool, int n_layers, int kv_dim)
      : pool_(&pool), n_layers_(n_layers), kv_dim_(kv_dim) {
    PC_CHECK(n_layers > 0 && kv_dim > 0);
    PC_CHECK_MSG(pool.page_bytes() ==
                     static_cast<size_t>(pool.page_tokens()) * token_stride() *
                         sizeof(float),
                 "pool page geometry does not match 2 * n_layers * kv_dim "
                 "floats per token");
    k_rows_.resize(static_cast<size_t>(n_layers));
    v_rows_.resize(static_cast<size_t>(n_layers));
  }

  PagedKVCache(const PagedKVCache&) = delete;
  PagedKVCache& operator=(const PagedKVCache&) = delete;
  PagedKVCache(PagedKVCache&& other) noexcept
      : pool_(other.pool_),
        n_layers_(other.n_layers_),
        kv_dim_(other.kv_dim_),
        pages_(std::move(other.pages_)),
        shared_pages_(other.shared_pages_),
        writable_from_(other.writable_from_),
        packed_(other.packed_),
        tail_page_(other.tail_page_),
        tail_used_(other.tail_used_),
        tail_kind_(other.tail_kind_),
        has_q8_(other.has_q8_),
        has_q4_(other.has_q4_),
        pos_ids_(std::move(other.pos_ids_)),
        k_rows_(std::move(other.k_rows_)),
        v_rows_(std::move(other.v_rows_)),
        k8_rows_(std::move(other.k8_rows_)),
        v8_rows_(std::move(other.v8_rows_)),
        k_scales_(std::move(other.k_scales_)),
        v_scales_(std::move(other.v_scales_)),
        k4_rows_(std::move(other.k4_rows_)),
        v4_rows_(std::move(other.v4_rows_)),
        k4_scales_(std::move(other.k4_scales_)),
        v4_scales_(std::move(other.v4_scales_)) {
    other.pages_.clear();
    other.tail_page_ = kInvalidPage;
  }

  PagedKVCache& operator=(PagedKVCache&& other) noexcept {
    if (this != &other) {
      for (PageId id : pages_) pool_->release(id);
      pool_ = other.pool_;
      n_layers_ = other.n_layers_;
      kv_dim_ = other.kv_dim_;
      pages_ = std::move(other.pages_);
      shared_pages_ = other.shared_pages_;
      writable_from_ = other.writable_from_;
      packed_ = other.packed_;
      tail_page_ = other.tail_page_;
      tail_used_ = other.tail_used_;
      tail_kind_ = other.tail_kind_;
      has_q8_ = other.has_q8_;
      has_q4_ = other.has_q4_;
      pos_ids_ = std::move(other.pos_ids_);
      k_rows_ = std::move(other.k_rows_);
      v_rows_ = std::move(other.v_rows_);
      k8_rows_ = std::move(other.k8_rows_);
      v8_rows_ = std::move(other.v8_rows_);
      k_scales_ = std::move(other.k_scales_);
      v_scales_ = std::move(other.v_scales_);
      k4_rows_ = std::move(other.k4_rows_);
      v4_rows_ = std::move(other.v4_rows_);
      k4_scales_ = std::move(other.k4_scales_);
      v4_scales_ = std::move(other.v4_scales_);
      other.pages_.clear();
      other.tail_page_ = kInvalidPage;
    }
    return *this;
  }

  ~PagedKVCache() {
    for (PageId id : pages_) pool_->release(id);
  }

  int n_layers() const { return n_layers_; }
  int kv_dim() const { return kv_dim_; }
  int size() const { return static_cast<int>(pos_ids_.size()); }
  bool empty() const { return pos_ids_.empty(); }
  int pos_id(int token) const {
    return pos_ids_[checked_token(token)];
  }

  // Materializes rows [begin, end) of a dense cache into private pages —
  // how the scheduler builds a module's paged rendition from its encoded
  // (fp32) attention states.
  void append_copy(const KVCache& src, int begin, int end) {
    PC_CHECK_MSG(src.n_layers() == n_layers_ && src.kv_dim() == kv_dim_,
                 "paged append_copy geometry mismatch");
    PC_CHECK(begin >= 0 && begin <= end && end <= src.size());
    const size_t row_bytes = static_cast<size_t>(kv_dim_) * sizeof(float);
    for (int t = begin; t < end; ++t) {
      const int p = src.pos_id(t);
      const int idx = append_tokens(std::span<const int>(&p, 1));
      for (int l = 0; l < n_layers_; ++l) {
        std::memcpy(k_row_mut(l, idx), src.k_row(l, t), row_bytes);
        std::memcpy(v_row_mut(l, idx), src.v_row(l, t), row_bytes);
      }
    }
  }

  // Materializes tokens [begin, end) of a module's Q8_0 payload into
  // quantized pages — the int8 analog of append_copy. The copied rows stay
  // int8 in memory (one memcpy per K/V row plus the scale pair); they are
  // immutable once published, so a q8 rendition is shared entirely by
  // reference and never COW'd.
  void append_copy_q8(const std::vector<Q8Layer>& layers,
                      std::span<const int> src_pos, int begin, int end) {
    PC_CHECK_MSG(static_cast<int>(layers.size()) == n_layers_,
                 "paged append_copy_q8 layer-count mismatch");
    PC_CHECK(begin >= 0 && begin <= end &&
             end <= static_cast<int>(src_pos.size()));
    PC_CHECK_MSG(pool_->page_bytes_q8() ==
                     static_cast<size_t>(pool_->page_tokens()) *
                         q8_layout().stride(),
                 "pool q8 page geometry does not match Q8TokenLayout");
    enable_q8();
    const Q8TokenLayout layout = q8_layout();
    for (int t = begin; t < end; ++t) {
      if (tail_page_ == kInvalidPage ||
          tail_kind_ != PagedKVPool::Kind::kQ8 ||
          tail_used_ == pool_->page_tokens()) {
        // Abandoning a partially-filled tail of another kind leaves
        // interior slack.
        if (tail_page_ != kInvalidPage &&
            tail_kind_ != PagedKVPool::Kind::kQ8 &&
            tail_used_ < pool_->page_tokens()) {
          packed_ = false;
        }
        tail_page_ = pool_->allocate_q8();
        pages_.push_back(tail_page_);
        tail_kind_ = PagedKVPool::Kind::kQ8;
        tail_used_ = 0;
      }
      int8_t* slot = pool_->data_q8(tail_page_) +
                     static_cast<size_t>(tail_used_) * layout.stride();
      float* sc = layout.scales(slot);
      for (int l = 0; l < n_layers_; ++l) {
        const Q8Layer& src = layers[static_cast<size_t>(l)];
        std::memcpy(slot + layout.k_off(l),
                    src.k.data() + static_cast<size_t>(t) * kv_dim_,
                    static_cast<size_t>(kv_dim_));
        std::memcpy(slot + layout.v_off(l),
                    src.v.data() + static_cast<size_t>(t) * kv_dim_,
                    static_cast<size_t>(kv_dim_));
        sc[layout.k_scale_idx(l)] = src.k_scales[static_cast<size_t>(t)];
        sc[layout.v_scale_idx(l)] = src.v_scales[static_cast<size_t>(t)];
      }
      const int p = src_pos[static_cast<size_t>(t)];
      publish_q8_rows(tail_page_, tail_used_, 1, &p);
      ++tail_used_;
    }
  }

  // Materializes tokens [begin, end) of a module's Q4_0 payload into q4
  // pages — the sub-byte analog of append_copy_q8. Each token's slot copies
  // the per-layer packed nibble rows plus their per-block scale arrays
  // (Q4TokenLayout). Same immutability contract as q8 renditions.
  void append_copy_q4(const std::vector<Q4Layer>& layers,
                      std::span<const int> src_pos, int begin, int end) {
    PC_CHECK_MSG(static_cast<int>(layers.size()) == n_layers_,
                 "paged append_copy_q4 layer-count mismatch");
    PC_CHECK(begin >= 0 && begin <= end &&
             end <= static_cast<int>(src_pos.size()));
    PC_CHECK_MSG(pool_->page_bytes_q4() ==
                     static_cast<size_t>(pool_->page_tokens()) *
                         q4_layout().stride(),
                 "pool q4 page geometry does not match Q4TokenLayout");
    enable_q4();
    const Q4TokenLayout layout = q4_layout();
    const size_t row_bytes = layout.row_bytes();
    const size_t blocks = static_cast<size_t>(layout.blocks());
    for (int t = begin; t < end; ++t) {
      if (tail_page_ == kInvalidPage ||
          tail_kind_ != PagedKVPool::Kind::kQ4 ||
          tail_used_ == pool_->page_tokens()) {
        if (tail_page_ != kInvalidPage &&
            tail_kind_ != PagedKVPool::Kind::kQ4 &&
            tail_used_ < pool_->page_tokens()) {
          packed_ = false;
        }
        tail_page_ = pool_->allocate_q4();
        pages_.push_back(tail_page_);
        tail_kind_ = PagedKVPool::Kind::kQ4;
        tail_used_ = 0;
      }
      uint8_t* slot = pool_->data_q4(tail_page_) +
                      static_cast<size_t>(tail_used_) * layout.stride();
      float* sc = layout.scales(slot);
      for (int l = 0; l < n_layers_; ++l) {
        const Q4Layer& src = layers[static_cast<size_t>(l)];
        std::memcpy(slot + layout.k_off(l),
                    src.k.data() + static_cast<size_t>(t) * row_bytes,
                    row_bytes);
        std::memcpy(slot + layout.v_off(l),
                    src.v.data() + static_cast<size_t>(t) * row_bytes,
                    row_bytes);
        std::memcpy(sc + layout.k_scale_idx(l),
                    src.k_scales.data() + static_cast<size_t>(t) * blocks,
                    blocks * sizeof(float));
        std::memcpy(sc + layout.v_scale_idx(l),
                    src.v_scales.data() + static_cast<size_t>(t) * blocks,
                    blocks * sizeof(float));
      }
      const int p = src_pos[static_cast<size_t>(t)];
      publish_q4_rows(tail_page_, tail_used_, 1, &p);
      ++tail_used_;
    }
  }

  // Attaches another paged cache's tokens (§3.4 sharing): full pages by
  // reference; a trailing partial fp32 page becomes a COW duplicate whose
  // free slots become this cache's tail. A trailing partial *quantized*
  // page (q8 or q4) is attached read-only instead (quantized pages are
  // immutable — no COW exists for them); its free slots are wasted padding
  // and the next private append starts a fresh fp32 page. The source must
  // be packed — built solely by
  // append_copy/append_copy_q8/append_copy_q4/append_tokens, so token t
  // lives in page
  // t / P — which module renditions are by construction. The attached rows
  // are read-only here.
  void append_shared(const PagedKVCache& src) {
    PC_CHECK_MSG(src.pool_ == pool_, "append_shared across pools");
    PC_CHECK_MSG(src.n_layers_ == n_layers_ && src.kv_dim_ == kv_dim_,
                 "paged append_shared geometry mismatch");
    PC_CHECK_MSG(src.packed_,
                 "append_shared source must be packed (a module rendition, "
                 "not a composite request cache)");
    packed_ = false;  // our pages now carry interior slack
    const int per_page = pool_->page_tokens();
    const int full = src.size() / per_page;
    const int rem = src.size() % per_page;
    const auto attach = [&](int pi, int n_slots) {
      const PageId id = src.pages_[static_cast<size_t>(pi)];
      pool_->retain(id);
      pages_.push_back(id);
      ++shared_pages_;
      const int* pos = src.pos_ids_.data() + pi * per_page;
      if (pool_->is_q8(id)) {
        publish_q8_rows(id, 0, n_slots, pos);
      } else if (pool_->is_q4(id)) {
        publish_q4_rows(id, 0, n_slots, pos);
      } else {
        publish_rows(id, 0, n_slots, pos);
      }
    };
    for (int pi = 0; pi < full; ++pi) attach(pi, per_page);
    // Any previous private tail is closed (its free slots become padding
    // that no row table entry points at — wasted slots, never garbage rows).
    tail_page_ = kInvalidPage;
    tail_used_ = 0;
    tail_kind_ = PagedKVPool::Kind::kFp32;
    if (rem > 0) {
      const PageId id = src.pages_[static_cast<size_t>(full)];
      if (pool_->is_q8(id) || pool_->is_q4(id)) {
        // Read-only attach; slack stays unused and the tail stays closed.
        attach(full, rem);
      } else {
        pool_->retain(id);
        // src still holds the page, so refcount >= 2 and make_writable
        // always duplicates — consuming the retain above and returning a
        // private copy this cache's suffix continues filling.
        const PageId mine = pool_->make_writable(id);
        pages_.push_back(mine);
        publish_rows(mine, 0, rem, src.pos_ids_.data() + full * per_page);
        tail_page_ = mine;
        tail_used_ = rem;
      }
    }
    writable_from_ = size();
  }

  // Appends writable token slots (uncached prompt / decode rows) into the
  // private tail, allocating fresh zero-filled pages as needed. Returns the
  // index of the first new token. Private rows are always fp32 — the decode
  // tail is written token by token, which is exactly the case quantization
  // would thrash on — so a quantized tail (only possible mid-rendition)
  // closes and a fresh fp32 page starts.
  int append_tokens(std::span<const int> new_pos_ids) {
    const int first = size();
    for (const int p : new_pos_ids) {
      if (tail_page_ == kInvalidPage ||
          tail_kind_ != PagedKVPool::Kind::kFp32 ||
          tail_used_ == pool_->page_tokens()) {
        // Abandoning a partially-filled quantized tail leaves interior
        // slack.
        if (tail_page_ != kInvalidPage &&
            tail_kind_ != PagedKVPool::Kind::kFp32 &&
            tail_used_ < pool_->page_tokens()) {
          packed_ = false;
        }
        tail_page_ = pool_->allocate();
        pages_.push_back(tail_page_);
        tail_used_ = 0;
        tail_kind_ = PagedKVPool::Kind::kFp32;
      }
      publish_rows(tail_page_, tail_used_, 1, &p);
      ++tail_used_;
    }
    return first;
  }

  const float* k_row(int layer, int token) const {
    return k_rows_[checked_layer(layer)][checked_token(token)];
  }
  const float* v_row(int layer, int token) const {
    return v_rows_[checked_layer(layer)][checked_token(token)];
  }

  // Raw per-layer row-pointer tables (size() entries) for the gathered
  // attention kernel. When has_q8(), entries for quantized tokens are null
  // here and live in the q8 tables below instead.
  const float* const* k_row_table(int layer) const {
    return k_rows_[checked_layer(layer)].data();
  }
  const float* const* v_row_table(int layer) const {
    return v_rows_[checked_layer(layer)].data();
  }

  // Whether any token row is quantized; if so the attention caller must use
  // attn_fused_q8_gather with the four tables below (null/0 entries mark
  // fp32 tokens).
  bool has_q8() const { return has_q8_; }
  const int8_t* const* k8_row_table(int layer) const {
    PC_CHECK_MSG(has_q8_, "no q8 rows in this cache");
    return k8_rows_[checked_layer(layer)].data();
  }
  const int8_t* const* v8_row_table(int layer) const {
    PC_CHECK_MSG(has_q8_, "no q8 rows in this cache");
    return v8_rows_[checked_layer(layer)].data();
  }
  const float* k_scale_table(int layer) const {
    PC_CHECK_MSG(has_q8_, "no q8 rows in this cache");
    return k_scales_[checked_layer(layer)].data();
  }
  const float* v_scale_table(int layer) const {
    PC_CHECK_MSG(has_q8_, "no q8 rows in this cache");
    return v_scales_[checked_layer(layer)].data();
  }

  // Whether any token row is Q4_0; if so the attention caller must use
  // attn_fused_q4_gather with the four tables below (null entries mark
  // other-format tokens). Scale tables hold POINTERS to per-block arrays.
  bool has_q4() const { return has_q4_; }
  const uint8_t* const* k4_row_table(int layer) const {
    PC_CHECK_MSG(has_q4_, "no q4 rows in this cache");
    return k4_rows_[checked_layer(layer)].data();
  }
  const uint8_t* const* v4_row_table(int layer) const {
    PC_CHECK_MSG(has_q4_, "no q4 rows in this cache");
    return v4_rows_[checked_layer(layer)].data();
  }
  const float* const* k4_scale_table(int layer) const {
    PC_CHECK_MSG(has_q4_, "no q4 rows in this cache");
    return k4_scales_[checked_layer(layer)].data();
  }
  const float* const* v4_scale_table(int layer) const {
    PC_CHECK_MSG(has_q4_, "no q4 rows in this cache");
    return v4_scales_[checked_layer(layer)].data();
  }

  // Writable access — private fp32 rows only. Rows at or past
  // writable_from_ live in pages this cache exclusively owns (fresh
  // allocations or its COW tail), so the const_cast is the cheap path to
  // the same storage the table already points at.
  float* k_row_mut(int layer, int token) {
    PC_CHECK_MSG(token >= writable_from_, "shared module rows are read-only");
    const float* row = k_rows_[checked_layer(layer)][checked_token(token)];
    PC_CHECK_MSG(row != nullptr, "quantized rows are read-only");
    return const_cast<float*>(row);
  }
  float* v_row_mut(int layer, int token) {
    PC_CHECK_MSG(token >= writable_from_, "shared module rows are read-only");
    const float* row = v_rows_[checked_layer(layer)][checked_token(token)];
    PC_CHECK_MSG(row != nullptr, "quantized rows are read-only");
    return const_cast<float*>(row);
  }

  // Footprint accounting. Shared pages are attached by reference (held
  // once pool-wide however many requests attach them); owned pages — COW
  // duplicates and private tails — are this cache's own footprint.
  int n_pages() const { return static_cast<int>(pages_.size()); }
  int shared_pages() const { return shared_pages_; }
  int owned_pages() const {
    return static_cast<int>(pages_.size()) - shared_pages_;
  }
  size_t owned_bytes() const {
    // Owned pages (COW duplicates, private tails) are always fp32:
    // quantized pages exist only as shared module renditions.
    return static_cast<size_t>(owned_pages()) * pool_->page_bytes();
  }

  // Total payload across this cache's page table, kind-aware (q8 pages
  // contribute their quantized size). Shared pages are counted once here
  // however many caches also reference them.
  size_t total_page_bytes() const {
    size_t b = 0;
    for (PageId id : pages_) b += pool_->page_bytes(id);
    return b;
  }

 private:
  size_t token_stride() const {
    return static_cast<size_t>(2) * n_layers_ * kv_dim_;
  }
  Q8TokenLayout q8_layout() const { return Q8TokenLayout{n_layers_, kv_dim_}; }
  Q4TokenLayout q4_layout() const { return Q4TokenLayout{n_layers_, kv_dim_}; }

  // Switches the cache into mixed-format mode: the q8 tables are created
  // and backfilled with null/0 entries for every already-published fp32
  // token, so all tables stay index-aligned with pos_ids_.
  void enable_q8() {
    if (has_q8_) return;
    has_q8_ = true;
    const size_t n = pos_ids_.size();
    k8_rows_.assign(static_cast<size_t>(n_layers_), {});
    v8_rows_.assign(static_cast<size_t>(n_layers_), {});
    k_scales_.assign(static_cast<size_t>(n_layers_), {});
    v_scales_.assign(static_cast<size_t>(n_layers_), {});
    for (int l = 0; l < n_layers_; ++l) {
      k8_rows_[static_cast<size_t>(l)].assign(n, nullptr);
      v8_rows_[static_cast<size_t>(l)].assign(n, nullptr);
      k_scales_[static_cast<size_t>(l)].assign(n, 0.0f);
      v_scales_[static_cast<size_t>(l)].assign(n, 0.0f);
    }
  }

  // q4 analog of enable_q8.
  void enable_q4() {
    if (has_q4_) return;
    has_q4_ = true;
    const size_t n = pos_ids_.size();
    k4_rows_.assign(static_cast<size_t>(n_layers_), {});
    v4_rows_.assign(static_cast<size_t>(n_layers_), {});
    k4_scales_.assign(static_cast<size_t>(n_layers_), {});
    v4_scales_.assign(static_cast<size_t>(n_layers_), {});
    for (int l = 0; l < n_layers_; ++l) {
      k4_rows_[static_cast<size_t>(l)].assign(n, nullptr);
      v4_rows_[static_cast<size_t>(l)].assign(n, nullptr);
      k4_scales_[static_cast<size_t>(l)].assign(n, nullptr);
      v4_scales_[static_cast<size_t>(l)].assign(n, nullptr);
    }
  }

  void pad_q4_tables(int layer, size_t n) {
    k4_rows_[static_cast<size_t>(layer)].insert(
        k4_rows_[static_cast<size_t>(layer)].end(), n, nullptr);
    v4_rows_[static_cast<size_t>(layer)].insert(
        v4_rows_[static_cast<size_t>(layer)].end(), n, nullptr);
    k4_scales_[static_cast<size_t>(layer)].insert(
        k4_scales_[static_cast<size_t>(layer)].end(), n, nullptr);
    v4_scales_[static_cast<size_t>(layer)].insert(
        v4_scales_[static_cast<size_t>(layer)].end(), n, nullptr);
  }

  // Appends pointers for `n` consecutive slots of `id` starting at
  // `first_slot` to every layer's row table, plus their position ids.
  void publish_rows(PageId id, int first_slot, int n, const int* pos) {
    const float* base = pool_->data(id);
    for (int l = 0; l < n_layers_; ++l) {
      auto& kt = k_rows_[static_cast<size_t>(l)];
      auto& vt = v_rows_[static_cast<size_t>(l)];
      for (int s = first_slot; s < first_slot + n; ++s) {
        const float* k = base + static_cast<size_t>(s) * token_stride() +
                         static_cast<size_t>(l) * 2 * kv_dim_;
        kt.push_back(k);
        vt.push_back(k + kv_dim_);
      }
      if (has_q8_) {  // keep the q8 tables index-aligned
        k8_rows_[static_cast<size_t>(l)].insert(
            k8_rows_[static_cast<size_t>(l)].end(), static_cast<size_t>(n),
            nullptr);
        v8_rows_[static_cast<size_t>(l)].insert(
            v8_rows_[static_cast<size_t>(l)].end(), static_cast<size_t>(n),
            nullptr);
        k_scales_[static_cast<size_t>(l)].insert(
            k_scales_[static_cast<size_t>(l)].end(), static_cast<size_t>(n),
            0.0f);
        v_scales_[static_cast<size_t>(l)].insert(
            v_scales_[static_cast<size_t>(l)].end(), static_cast<size_t>(n),
            0.0f);
      }
      if (has_q4_) pad_q4_tables(l, static_cast<size_t>(n));
    }
    pos_ids_.insert(pos_ids_.end(), pos, pos + n);
  }

  // q8 counterpart of publish_rows: publishes int8 row pointers and their
  // per-row scales, with null entries in the fp32 tables.
  void publish_q8_rows(PageId id, int first_slot, int n, const int* pos) {
    enable_q8();
    const Q8TokenLayout layout = q8_layout();
    const int8_t* base = pool_->data_q8(id);
    for (int l = 0; l < n_layers_; ++l) {
      auto& kt = k8_rows_[static_cast<size_t>(l)];
      auto& vt = v8_rows_[static_cast<size_t>(l)];
      auto& ks = k_scales_[static_cast<size_t>(l)];
      auto& vs = v_scales_[static_cast<size_t>(l)];
      for (int s = first_slot; s < first_slot + n; ++s) {
        const int8_t* slot = base + static_cast<size_t>(s) * layout.stride();
        kt.push_back(slot + layout.k_off(l));
        vt.push_back(slot + layout.v_off(l));
        const float* sc = layout.scales(slot);
        ks.push_back(sc[layout.k_scale_idx(l)]);
        vs.push_back(sc[layout.v_scale_idx(l)]);
      }
      k_rows_[static_cast<size_t>(l)].insert(
          k_rows_[static_cast<size_t>(l)].end(), static_cast<size_t>(n),
          nullptr);
      v_rows_[static_cast<size_t>(l)].insert(
          v_rows_[static_cast<size_t>(l)].end(), static_cast<size_t>(n),
          nullptr);
      if (has_q4_) pad_q4_tables(l, static_cast<size_t>(n));
    }
    pos_ids_.insert(pos_ids_.end(), pos, pos + n);
  }

  // q4 counterpart of publish_rows: publishes packed-nibble row pointers
  // and per-block scale-array pointers, with null entries in the fp32 (and
  // any q8) tables.
  void publish_q4_rows(PageId id, int first_slot, int n, const int* pos) {
    enable_q4();
    const Q4TokenLayout layout = q4_layout();
    const uint8_t* base = pool_->data_q4(id);
    for (int l = 0; l < n_layers_; ++l) {
      auto& kt = k4_rows_[static_cast<size_t>(l)];
      auto& vt = v4_rows_[static_cast<size_t>(l)];
      auto& ks = k4_scales_[static_cast<size_t>(l)];
      auto& vs = v4_scales_[static_cast<size_t>(l)];
      for (int s = first_slot; s < first_slot + n; ++s) {
        const uint8_t* slot = base + static_cast<size_t>(s) * layout.stride();
        kt.push_back(slot + layout.k_off(l));
        vt.push_back(slot + layout.v_off(l));
        const float* sc = layout.scales(slot);
        ks.push_back(sc + layout.k_scale_idx(l));
        vs.push_back(sc + layout.v_scale_idx(l));
      }
      k_rows_[static_cast<size_t>(l)].insert(
          k_rows_[static_cast<size_t>(l)].end(), static_cast<size_t>(n),
          nullptr);
      v_rows_[static_cast<size_t>(l)].insert(
          v_rows_[static_cast<size_t>(l)].end(), static_cast<size_t>(n),
          nullptr);
      if (has_q8_) {
        k8_rows_[static_cast<size_t>(l)].insert(
            k8_rows_[static_cast<size_t>(l)].end(), static_cast<size_t>(n),
            nullptr);
        v8_rows_[static_cast<size_t>(l)].insert(
            v8_rows_[static_cast<size_t>(l)].end(), static_cast<size_t>(n),
            nullptr);
        k_scales_[static_cast<size_t>(l)].insert(
            k_scales_[static_cast<size_t>(l)].end(), static_cast<size_t>(n),
            0.0f);
        v_scales_[static_cast<size_t>(l)].insert(
            v_scales_[static_cast<size_t>(l)].end(), static_cast<size_t>(n),
            0.0f);
      }
    }
    pos_ids_.insert(pos_ids_.end(), pos, pos + n);
  }

  size_t checked_layer(int layer) const {
    PC_CHECK_MSG(layer >= 0 && layer < n_layers_, "layer out of range");
    return static_cast<size_t>(layer);
  }
  size_t checked_token(int token) const {
    PC_CHECK_MSG(token >= 0 && token < size(),
                 "token " << token << " out of range " << size());
    return static_cast<size_t>(token);
  }

  PagedKVPool* pool_;
  int n_layers_;
  int kv_dim_;
  std::vector<PageId> pages_;  // in token order; released on destruction
  int shared_pages_ = 0;
  int writable_from_ = 0;  // first row k_row_mut may touch
  bool packed_ = true;     // token t in page t / page_tokens (no slack)
  PageId tail_page_ = kInvalidPage;  // private page with free slots
  int tail_used_ = 0;
  // Tail page kind (quantized only mid-rendition build).
  PagedKVPool::Kind tail_kind_ = PagedKVPool::Kind::kFp32;
  bool has_q8_ = false;
  bool has_q4_ = false;
  std::vector<int> pos_ids_;
  std::vector<std::vector<const float*>> k_rows_;  // [layer][token]
  std::vector<std::vector<const float*>> v_rows_;
  // Mixed-format tables, index-aligned with the fp32 tables when enabled:
  // exactly one of k_rows_[l][t] / k8_rows_[l][t] / k4_rows_[l][t] is
  // non-null per token.
  std::vector<std::vector<const int8_t*>> k8_rows_;
  std::vector<std::vector<const int8_t*>> v8_rows_;
  std::vector<std::vector<float>> k_scales_;  // [layer][token], 0 for fp32
  std::vector<std::vector<float>> v_scales_;
  std::vector<std::vector<const uint8_t*>> k4_rows_;  // packed Q4_0 rows
  std::vector<std::vector<const uint8_t*>> v4_rows_;
  std::vector<std::vector<const float*>> k4_scales_;  // per-block arrays
  std::vector<std::vector<const float*>> v4_scales_;
};

}  // namespace pc
