// Per-row symmetric int8 quantization for cached attention states.
//
// The paper's memory analysis (§5.5) concludes that compression of cached
// states is the lever for fitting large-model modules in memory, and lists
// KV compression as future work (§6). This implements the standard
// first-order scheme: each row (one token's K or V vector in one layer) is
// scaled by max|x|/127 and stored as int8, cutting the resident footprint
// to ~25% of fp32 (plus one float scale per row) at ~0.4% RMS error.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/error.h"
#include "tensor/simd.h"

namespace pc {

// Scalar reference for quantize_rows. The vectorized path below must stay
// bit-identical to this (the golden-equivalence test in test_kernels.cpp
// compares them on every build): max/abs are element-pure, the multiply/
// round/clamp sequence is per-element IEEE, and the default
// round-to-nearest-even mode matches _mm256_cvtps_epi32.
inline void quantize_rows_scalar(const float* src, int n_rows, int width,
                                 int8_t* dst, float* scales) {
  PC_CHECK(n_rows >= 0 && width > 0);
  for (int r = 0; r < n_rows; ++r) {
    const float* row = src + static_cast<size_t>(r) * width;
    float max_abs = 0.0f;
    for (int i = 0; i < width; ++i) {
      max_abs = std::max(max_abs, std::fabs(row[i]));
    }
    const float scale = max_abs > 0.0f ? max_abs / 127.0f : 1.0f;
    const float inv = 1.0f / scale;
    int8_t* out = dst + static_cast<size_t>(r) * width;
    for (int i = 0; i < width; ++i) {
      const float q = std::nearbyint(row[i] * inv);
      out[i] = static_cast<int8_t>(std::max(-127.0f, std::min(127.0f, q)));
    }
    scales[r] = scale;
  }
}

// Quantizes n_rows rows of `width` floats. dst must hold n_rows*width
// int8s; scales must hold n_rows floats. Vectorized max-abs scan and
// round/clamp via tensor/simd.h; output bits match quantize_rows_scalar.
inline void quantize_rows(const float* src, int n_rows, int width,
                          int8_t* dst, float* scales) {
  PC_CHECK(n_rows >= 0 && width > 0);
  for (int r = 0; r < n_rows; ++r) {
    const float* row = src + static_cast<size_t>(r) * width;
    const float max_abs =
        simd::reduce_max_abs(row, static_cast<size_t>(width));
    const float scale = max_abs > 0.0f ? max_abs / 127.0f : 1.0f;
    simd::quantize_i8(row, 1.0f / scale,
                      dst + static_cast<size_t>(r) * width,
                      static_cast<size_t>(width));
    scales[r] = scale;
  }
}

inline void dequantize_row(const int8_t* src, float scale, int width,
                           float* dst) {
  simd::dequant_store(src, scale, dst, static_cast<size_t>(width));
}

// Convenience container for one layer's quantized K/V payload.
struct Q8Layer {
  std::vector<int8_t> k;       // [n_tokens * kv_dim]
  std::vector<int8_t> v;
  std::vector<float> k_scales; // [n_tokens]
  std::vector<float> v_scales;
};

// Byte layout of one token's quantized KV slot inside a q8 page (the paged
// analog of the fp32 token-major layout in kv/paged_cache.h): per layer the
// K then V int8 rows back to back, the int8 region padded to a float
// boundary, then one (k_scale, v_scale) float pair per layer. The base of
// every slot is 4-byte aligned because the stride itself is.
struct Q8TokenLayout {
  int n_layers = 0;
  int kv_dim = 0;

  size_t int8_bytes() const {
    return static_cast<size_t>(2) * n_layers * kv_dim;
  }
  size_t padded_int8_bytes() const { return (int8_bytes() + 3) & ~size_t{3}; }
  size_t stride() const {
    return padded_int8_bytes() +
           static_cast<size_t>(2) * n_layers * sizeof(float);
  }
  size_t k_off(int layer) const {
    return static_cast<size_t>(layer) * 2 * kv_dim;
  }
  size_t v_off(int layer) const { return k_off(layer) + kv_dim; }
  // Offsets of the scale pair, in floats from the (aligned) scale region.
  size_t k_scale_idx(int layer) const {
    return static_cast<size_t>(layer) * 2;
  }
  size_t v_scale_idx(int layer) const { return k_scale_idx(layer) + 1; }
  float* scales(int8_t* slot_base) const {
    return reinterpret_cast<float*>(slot_base + padded_int8_bytes());
  }
  const float* scales(const int8_t* slot_base) const {
    return reinterpret_cast<const float*>(slot_base + padded_int8_bytes());
  }
};

// ---- Q4_0: blocked 4-bit quantization ---------------------------------------
//
// The sub-byte format (ROADMAP: another ~2x residency win over Q8_0). A row
// is split into blocks of 32 values; each block stores one fp32 scale and 16
// packed bytes (element j in the low nibble of byte j, element j+16 in the
// high nibble — the classic llama.cpp Q4_0 packing, which is what lets the
// AVX2 kernels unpack a whole block with one mask+shift). The scale is
// amax/-8 where amax is the signed extremum of the block (so the value with
// the largest magnitude maps exactly to quant level -8 or +7); stored
// nibbles are q+8 in [0,15]. Partial final blocks pad with nibble 8 — the
// quantized zero — so padded lanes contribute nothing to dots or mixes.

inline constexpr int kQ4BlockSize = 32;

inline int q4_blocks(int width) {
  return (width + kQ4BlockSize - 1) / kQ4BlockSize;
}

// Packed bytes per row of `width` values (16 bytes per block).
inline size_t q4_row_bytes(int width) {
  return static_cast<size_t>(q4_blocks(width)) * (kQ4BlockSize / 2);
}

// Scalar reference for quantize_rows_q4. The vectorized path must stay
// bit-identical (golden-equivalence test in test_kernels.cpp): the scale
// pick is pure comparisons, and round-then-clamp here equals the SIMD
// clamp-then-round because rounding is monotonic (same argument as q8).
inline void quantize_rows_q4_scalar(const float* src, int n_rows, int width,
                                    uint8_t* dst, float* block_scales) {
  PC_CHECK(n_rows >= 0 && width > 0);
  const int blocks = q4_blocks(width);
  const size_t row_bytes = q4_row_bytes(width);
  for (int r = 0; r < n_rows; ++r) {
    const float* row = src + static_cast<size_t>(r) * width;
    uint8_t* out = dst + static_cast<size_t>(r) * row_bytes;
    float* scales = block_scales + static_cast<size_t>(r) * blocks;
    for (int b = 0; b < blocks; ++b) {
      const int base = b * kQ4BlockSize;
      const int count = std::min(kQ4BlockSize, width - base);
      // Signed extremum: the absolute max, keeping its sign (ties between
      // +x and -x resolve to +x so scale signs are deterministic).
      float amax = 0.0f;
      for (int i = 0; i < count; ++i) {
        const float x = row[base + i];
        if (std::fabs(x) > std::fabs(amax)) amax = x;
      }
      const float scale = amax != 0.0f ? amax / -8.0f : 1.0f;
      const float inv = 1.0f / scale;
      uint8_t* pk = out + static_cast<size_t>(b) * (kQ4BlockSize / 2);
      for (int j = 0; j < kQ4BlockSize / 2; ++j) {
        int lo = 8, hi = 8;  // quantized zero pads the partial tail
        if (j < count) {
          const float q = std::nearbyint(row[base + j] * inv);
          lo = static_cast<int>(std::max(-8.0f, std::min(7.0f, q))) + 8;
        }
        if (j + kQ4BlockSize / 2 < count) {
          const float q =
              std::nearbyint(row[base + j + kQ4BlockSize / 2] * inv);
          hi = static_cast<int>(std::max(-8.0f, std::min(7.0f, q))) + 8;
        }
        pk[j] = static_cast<uint8_t>(lo | (hi << 4));
      }
      scales[b] = scale;
    }
  }
}

// Vectorized Q4_0 row quantization; bit-identical to the scalar golden.
// dst must hold n_rows * q4_row_bytes(width) bytes; block_scales must hold
// n_rows * q4_blocks(width) floats.
inline void quantize_rows_q4(const float* src, int n_rows, int width,
                             uint8_t* dst, float* block_scales) {
  PC_CHECK(n_rows >= 0 && width > 0);
  const int blocks = q4_blocks(width);
  const size_t row_bytes = q4_row_bytes(width);
  for (int r = 0; r < n_rows; ++r) {
    const float* row = src + static_cast<size_t>(r) * width;
    uint8_t* out = dst + static_cast<size_t>(r) * row_bytes;
    float* scales = block_scales + static_cast<size_t>(r) * blocks;
    for (int b = 0; b < blocks; ++b) {
      const int base = b * kQ4BlockSize;
      const int count = std::min(kQ4BlockSize, width - base);
      const float amax = simd::signed_extremum(row + base,
                                               static_cast<size_t>(count));
      const float scale = amax != 0.0f ? amax / -8.0f : 1.0f;
      simd::quantize_i4(row + base, 1.0f / scale, static_cast<size_t>(count),
                        out + static_cast<size_t>(b) * (kQ4BlockSize / 2));
      scales[b] = scale;
    }
  }
}

// Expands one Q4_0 row back to fp32: dst[i] = scale_b * (nibble_i - 8).
inline void dequantize_row_q4(const uint8_t* packed,
                              const float* block_scales, int width,
                              float* dst) {
  const int blocks = q4_blocks(width);
  for (int b = 0; b < blocks; ++b) {
    const int base = b * kQ4BlockSize;
    const int count = std::min(kQ4BlockSize, width - base);
    simd::dequant_store_i4(packed + static_cast<size_t>(b) *
                               (kQ4BlockSize / 2),
                           block_scales[b], dst + base,
                           static_cast<size_t>(count));
  }
}

// Convenience container for one layer's Q4_0 payload.
struct Q4Layer {
  std::vector<uint8_t> k;      // [n_tokens * q4_row_bytes(kv_dim)]
  std::vector<uint8_t> v;
  std::vector<float> k_scales; // [n_tokens * q4_blocks(kv_dim)]
  std::vector<float> v_scales;
};

// Byte layout of one token's Q4_0 KV slot inside a q4 page (sibling of
// Q8TokenLayout): per layer the K then V packed rows back to back (16 bytes
// per block, so the region is always 4-byte aligned), then per layer the
// (k, v) block-scale arrays. Slot bases stay 4-byte aligned because the
// stride is a multiple of 4.
struct Q4TokenLayout {
  int n_layers = 0;
  int kv_dim = 0;

  int blocks() const { return q4_blocks(kv_dim); }
  size_t row_bytes() const { return q4_row_bytes(kv_dim); }
  size_t packed_bytes() const {
    return static_cast<size_t>(2) * n_layers * row_bytes();
  }
  size_t stride() const {
    return packed_bytes() +
           static_cast<size_t>(2) * n_layers * blocks() * sizeof(float);
  }
  size_t k_off(int layer) const {
    return static_cast<size_t>(layer) * 2 * row_bytes();
  }
  size_t v_off(int layer) const { return k_off(layer) + row_bytes(); }
  // Offsets of the per-layer scale arrays, in floats from the scale region.
  size_t k_scale_idx(int layer) const {
    return static_cast<size_t>(layer) * 2 * blocks();
  }
  size_t v_scale_idx(int layer) const {
    return k_scale_idx(layer) + static_cast<size_t>(blocks());
  }
  float* scales(uint8_t* slot_base) const {
    return reinterpret_cast<float*>(slot_base + packed_bytes());
  }
  const float* scales(const uint8_t* slot_base) const {
    return reinterpret_cast<const float*>(slot_base + packed_bytes());
  }
};

}  // namespace pc
