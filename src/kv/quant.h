// Per-row symmetric int8 quantization for cached attention states.
//
// The paper's memory analysis (§5.5) concludes that compression of cached
// states is the lever for fitting large-model modules in memory, and lists
// KV compression as future work (§6). This implements the standard
// first-order scheme: each row (one token's K or V vector in one layer) is
// scaled by max|x|/127 and stored as int8, cutting the resident footprint
// to ~25% of fp32 (plus one float scale per row) at ~0.4% RMS error.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/error.h"
#include "tensor/simd.h"

namespace pc {

// Scalar reference for quantize_rows. The vectorized path below must stay
// bit-identical to this (the golden-equivalence test in test_kernels.cpp
// compares them on every build): max/abs are element-pure, the multiply/
// round/clamp sequence is per-element IEEE, and the default
// round-to-nearest-even mode matches _mm256_cvtps_epi32.
inline void quantize_rows_scalar(const float* src, int n_rows, int width,
                                 int8_t* dst, float* scales) {
  PC_CHECK(n_rows >= 0 && width > 0);
  for (int r = 0; r < n_rows; ++r) {
    const float* row = src + static_cast<size_t>(r) * width;
    float max_abs = 0.0f;
    for (int i = 0; i < width; ++i) {
      max_abs = std::max(max_abs, std::fabs(row[i]));
    }
    const float scale = max_abs > 0.0f ? max_abs / 127.0f : 1.0f;
    const float inv = 1.0f / scale;
    int8_t* out = dst + static_cast<size_t>(r) * width;
    for (int i = 0; i < width; ++i) {
      const float q = std::nearbyint(row[i] * inv);
      out[i] = static_cast<int8_t>(std::max(-127.0f, std::min(127.0f, q)));
    }
    scales[r] = scale;
  }
}

// Quantizes n_rows rows of `width` floats. dst must hold n_rows*width
// int8s; scales must hold n_rows floats. Vectorized max-abs scan and
// round/clamp via tensor/simd.h; output bits match quantize_rows_scalar.
inline void quantize_rows(const float* src, int n_rows, int width,
                          int8_t* dst, float* scales) {
  PC_CHECK(n_rows >= 0 && width > 0);
  for (int r = 0; r < n_rows; ++r) {
    const float* row = src + static_cast<size_t>(r) * width;
    const float max_abs =
        simd::reduce_max_abs(row, static_cast<size_t>(width));
    const float scale = max_abs > 0.0f ? max_abs / 127.0f : 1.0f;
    simd::quantize_i8(row, 1.0f / scale,
                      dst + static_cast<size_t>(r) * width,
                      static_cast<size_t>(width));
    scales[r] = scale;
  }
}

inline void dequantize_row(const int8_t* src, float scale, int width,
                           float* dst) {
  simd::dequant_store(src, scale, dst, static_cast<size_t>(width));
}

// Convenience container for one layer's quantized K/V payload.
struct Q8Layer {
  std::vector<int8_t> k;       // [n_tokens * kv_dim]
  std::vector<int8_t> v;
  std::vector<float> k_scales; // [n_tokens]
  std::vector<float> v_scales;
};

// Byte layout of one token's quantized KV slot inside a q8 page (the paged
// analog of the fp32 token-major layout in kv/paged_cache.h): per layer the
// K then V int8 rows back to back, the int8 region padded to a float
// boundary, then one (k_scale, v_scale) float pair per layer. The base of
// every slot is 4-byte aligned because the stride itself is.
struct Q8TokenLayout {
  int n_layers = 0;
  int kv_dim = 0;

  size_t int8_bytes() const {
    return static_cast<size_t>(2) * n_layers * kv_dim;
  }
  size_t padded_int8_bytes() const { return (int8_bytes() + 3) & ~size_t{3}; }
  size_t stride() const {
    return padded_int8_bytes() +
           static_cast<size_t>(2) * n_layers * sizeof(float);
  }
  size_t k_off(int layer) const {
    return static_cast<size_t>(layer) * 2 * kv_dim;
  }
  size_t v_off(int layer) const { return k_off(layer) + kv_dim; }
  // Offsets of the scale pair, in floats from the (aligned) scale region.
  size_t k_scale_idx(int layer) const {
    return static_cast<size_t>(layer) * 2;
  }
  size_t v_scale_idx(int layer) const { return k_scale_idx(layer) + 1; }
  float* scales(int8_t* slot_base) const {
    return reinterpret_cast<float*>(slot_base + padded_int8_bytes());
  }
  const float* scales(const int8_t* slot_base) const {
    return reinterpret_cast<const float*>(slot_base + padded_int8_bytes());
  }
};

}  // namespace pc
