// Per-row symmetric int8 quantization for cached attention states.
//
// The paper's memory analysis (§5.5) concludes that compression of cached
// states is the lever for fitting large-model modules in memory, and lists
// KV compression as future work (§6). This implements the standard
// first-order scheme: each row (one token's K or V vector in one layer) is
// scaled by max|x|/127 and stored as int8, cutting the resident footprint
// to ~25% of fp32 (plus one float scale per row) at ~0.4% RMS error.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/error.h"

namespace pc {

// Quantizes n_rows rows of `width` floats. dst must hold n_rows*width
// int8s; scales must hold n_rows floats.
inline void quantize_rows(const float* src, int n_rows, int width,
                          int8_t* dst, float* scales) {
  PC_CHECK(n_rows >= 0 && width > 0);
  for (int r = 0; r < n_rows; ++r) {
    const float* row = src + static_cast<size_t>(r) * width;
    float max_abs = 0.0f;
    for (int i = 0; i < width; ++i) {
      max_abs = std::max(max_abs, std::fabs(row[i]));
    }
    const float scale = max_abs > 0.0f ? max_abs / 127.0f : 1.0f;
    const float inv = 1.0f / scale;
    int8_t* out = dst + static_cast<size_t>(r) * width;
    for (int i = 0; i < width; ++i) {
      const float q = std::nearbyint(row[i] * inv);
      out[i] = static_cast<int8_t>(std::max(-127.0f, std::min(127.0f, q)));
    }
    scales[r] = scale;
  }
}

inline void dequantize_row(const int8_t* src, float scale, int width,
                           float* dst) {
  for (int i = 0; i < width; ++i) {
    dst[i] = static_cast<float>(src[i]) * scale;
  }
}

// Convenience container for one layer's quantized K/V payload.
struct Q8Layer {
  std::vector<int8_t> k;       // [n_tokens * kv_dim]
  std::vector<int8_t> v;
  std::vector<float> k_scales; // [n_tokens]
  std::vector<float> v_scales;
};

}  // namespace pc
