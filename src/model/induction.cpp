#include "model/induction.h"

namespace pc {

Model make_induction_model(const InductionModelOptions& opt) {
  PC_CHECK_MSG(opt.vocab_size > 0 && opt.max_pos > 0,
               "induction model needs vocab_size and max_pos");
  const int v = opt.vocab_size;
  const int p = opt.max_pos;
  // The construction needs 3*v + p dims; round the width up to the Q4_0
  // block size (32, kv/quant.h) so blocked sub-byte formats store KV rows
  // without partial-block padding waste. The extra dims carry zero weights
  // everywhere and do not perturb the retrieval circuit.
  const int d = (3 * v + p + 31) / 32 * 32;
  const int tok0 = 0;
  const int pos0 = v;
  const int prev0 = v + p;
  const int ind0 = 2 * v + p;

  ModelConfig c;
  c.name = "induction";
  c.family = ArchFamily::kGpt2;
  c.vocab_size = v;
  c.d_model = d;
  c.n_layers = 2;
  c.n_heads = 1;
  c.n_kv_heads = 1;
  c.d_head = d;
  c.d_ff = 0;
  c.max_pos = p;
  c.pos = PosEncodingKind::kLearned;
  c.norm = NormKind::kNone;
  c.use_mlp = false;
  c.final_norm = false;
  c.attn_scale = 1.0f;  // betas are baked into the weights
  c.chat_template = TemplateStyle::kPlain;

  ModelWeights w = ModelWeights::zeros(c);

  // Embeddings: identity one-hots into TOK and POS.
  for (int t = 0; t < v; ++t) w.tok_embed.at(t, tok0 + t) = 1.0f;
  w.pos_table = PositionTable::zeros(p, d);
  for (int q = 0; q < p; ++q) w.pos_table.tensor().at(q, pos0 + q) = 1.0f;

  // Layer 1: previous-token head.
  {
    LayerWeights& l = w.layers[0];
    for (int q = 0; q < p; ++q) {
      l.wq.at(pos0 + q, pos0 + q) = opt.beta1;  // query: my position
      if (q + 1 < p) {
        l.wk.at(pos0 + q + 1, pos0 + q) = 1.0f;  // key: my position + 1
      }
    }
    for (int t = 0; t < v; ++t) {
      l.wv.at(prev0 + t, tok0 + t) = 1.0f;  // value: my token into PREV
      l.wo.at(prev0 + t, prev0 + t) = 1.0f; // pass PREV through
    }
  }

  // Layer 2: induction head.
  {
    LayerWeights& l = w.layers[1];
    for (int t = 0; t < v; ++t) {
      l.wq.at(prev0 + t, tok0 + t) = opt.beta2;  // query: PREV==my token?
      l.wk.at(prev0 + t, prev0 + t) = 1.0f;      // key: my PREV content
      l.wv.at(ind0 + t, tok0 + t) = 1.0f;        // value: my token into IND
      l.wo.at(ind0 + t, ind0 + t) = 1.0f;        // pass IND through
    }
  }

  // Unembedding: read IND.
  for (int t = 0; t < v; ++t) w.lm_head.at(t, ind0 + t) = 1.0f;

  return Model(std::move(c), std::move(w));
}

}  // namespace pc
