// Runnable model configurations (laptop scale).
//
// The engine implements the three transformer families the paper adapts in
// §4.2 — RoPE models (Llama2, Falcon), ALiBi models (MPT), and absolute-
// position-table models (GPT-2/BERT lineage) — at dimensions small enough
// to run on a single CPU core. Weight values are random (latency is
// shape-determined, not value-determined); the accuracy experiments use the
// hand-constructed induction model from model/induction.h instead.
#pragma once

#include <string>

#include "common/error.h"
#include "tokenizer/chat_template.h"

namespace pc {

enum class ArchFamily {
  kLlama,   // RMSNorm, RoPE, SwiGLU MLP, sequential block
  kMpt,     // LayerNorm, ALiBi, GELU MLP, sequential block
  kFalcon,  // LayerNorm, RoPE, GELU MLP, parallel attention+MLP block
  kGpt2,    // LayerNorm, learned absolute positions, GELU MLP
};

enum class PosEncodingKind { kRope, kAlibi, kLearned, kSinusoidal };
enum class NormKind { kRmsNorm, kLayerNorm, kNone };
enum class ActivationKind { kSilu, kGelu };

struct ModelConfig {
  std::string name;
  ArchFamily family = ArchFamily::kLlama;

  int vocab_size = 0;
  int d_model = 0;
  int n_layers = 0;
  int n_heads = 0;
  int n_kv_heads = 0;  // < n_heads enables GQA; == n_heads is MHA
  int d_head = 0;
  int d_ff = 0;
  int max_pos = 2048;  // position-ID space (schemas address into this)

  PosEncodingKind pos = PosEncodingKind::kRope;
  NormKind norm = NormKind::kRmsNorm;
  ActivationKind activation = ActivationKind::kSilu;
  bool gated_mlp = true;       // SwiGLU-style three-matrix MLP
  bool parallel_block = false; // Falcon-style parallel attn+MLP
  bool use_mlp = true;         // attention-only models (induction) disable
  bool final_norm = true;
  float rope_theta = 10000.0f;
  float norm_eps = 1e-5f;
  float init_stddev = 0.02f;
  float attn_scale = 0.0f;  // 0 selects 1/sqrt(d_head)

  TemplateStyle chat_template = TemplateStyle::kPlain;

  int kv_dim() const { return n_kv_heads * d_head; }
  int q_dim() const { return n_heads * d_head; }

  void validate() const {
    PC_CHECK_MSG(vocab_size > 0 && d_model > 0 && n_layers > 0, "empty dims");
    PC_CHECK_MSG(n_heads > 0 && n_kv_heads > 0 && d_head > 0, "bad heads");
    PC_CHECK_MSG(n_heads % n_kv_heads == 0, "n_heads must divide by kv heads");
    PC_CHECK_MSG(max_pos > 0, "max_pos must be positive");
    if (pos == PosEncodingKind::kRope) {
      PC_CHECK_MSG(d_head % 2 == 0, "RoPE needs even d_head");
    }
    if (use_mlp) PC_CHECK_MSG(d_ff > 0, "d_ff required when MLP enabled");
  }

  // ---- presets (one per architecture family in the paper) ----

  static ModelConfig llama_tiny(int vocab_size, int max_pos = 8192) {
    ModelConfig c;
    c.name = "llama-tiny";
    c.family = ArchFamily::kLlama;
    c.vocab_size = vocab_size;
    c.d_model = 192;
    c.n_layers = 4;
    c.n_heads = 6;
    c.n_kv_heads = 3;  // exercise GQA
    c.d_head = 32;
    c.d_ff = 512;
    c.max_pos = max_pos;
    c.pos = PosEncodingKind::kRope;
    c.norm = NormKind::kRmsNorm;
    c.activation = ActivationKind::kSilu;
    c.gated_mlp = true;
    c.chat_template = TemplateStyle::kLlama2;
    return c;
  }

  static ModelConfig mpt_tiny(int vocab_size, int max_pos = 8192) {
    ModelConfig c;
    c.name = "mpt-tiny";
    c.family = ArchFamily::kMpt;
    c.vocab_size = vocab_size;
    c.d_model = 192;
    c.n_layers = 4;
    c.n_heads = 6;
    c.n_kv_heads = 6;
    c.d_head = 32;
    c.d_ff = 768;
    c.max_pos = max_pos;
    c.pos = PosEncodingKind::kAlibi;
    c.norm = NormKind::kLayerNorm;
    c.activation = ActivationKind::kGelu;
    c.gated_mlp = false;
    c.chat_template = TemplateStyle::kChatML;
    return c;
  }

  static ModelConfig falcon_tiny(int vocab_size, int max_pos = 8192) {
    ModelConfig c;
    c.name = "falcon-tiny";
    c.family = ArchFamily::kFalcon;
    c.vocab_size = vocab_size;
    c.d_model = 192;
    c.n_layers = 4;
    c.n_heads = 6;
    c.n_kv_heads = 1;  // Falcon uses multi-query attention
    c.d_head = 32;
    c.d_ff = 768;
    c.max_pos = max_pos;
    c.pos = PosEncodingKind::kRope;
    c.norm = NormKind::kLayerNorm;
    c.activation = ActivationKind::kGelu;
    c.gated_mlp = false;
    c.parallel_block = true;
    c.chat_template = TemplateStyle::kFalcon;
    return c;
  }

  static ModelConfig gpt2_tiny(int vocab_size, int max_pos = 2048) {
    ModelConfig c;
    c.name = "gpt2-tiny";
    c.family = ArchFamily::kGpt2;
    c.vocab_size = vocab_size;
    c.d_model = 192;
    c.n_layers = 4;
    c.n_heads = 6;
    c.n_kv_heads = 6;
    c.d_head = 32;
    c.d_ff = 768;
    c.max_pos = max_pos;
    c.pos = PosEncodingKind::kLearned;
    c.norm = NormKind::kLayerNorm;
    c.activation = ActivationKind::kGelu;
    c.gated_mlp = false;
    c.chat_template = TemplateStyle::kPlain;
    return c;
  }
};

}  // namespace pc
