#include "model/weights.h"

namespace pc {

namespace {

void init_layer_shapes(const ModelConfig& c, LayerWeights& l) {
  l.wq = Tensor({c.q_dim(), c.d_model});
  l.wk = Tensor({c.kv_dim(), c.d_model});
  l.wv = Tensor({c.kv_dim(), c.d_model});
  l.wo = Tensor({c.d_model, c.q_dim()});
  if (c.norm != NormKind::kNone) {
    l.norm1_w = Tensor::full({c.d_model}, 1.0f);
    l.norm2_w = Tensor::full({c.d_model}, 1.0f);
    if (c.norm == NormKind::kLayerNorm) {
      l.norm1_b = Tensor({c.d_model});
      l.norm2_b = Tensor({c.d_model});
    }
  }
  if (c.use_mlp) {
    if (c.gated_mlp) l.w_gate = Tensor({c.d_ff, c.d_model});
    l.w_up = Tensor({c.d_ff, c.d_model});
    l.w_down = Tensor({c.d_model, c.d_ff});
  }
}

}  // namespace

ModelWeights ModelWeights::zeros(const ModelConfig& c) {
  c.validate();
  ModelWeights w;
  w.tok_embed = Tensor({c.vocab_size, c.d_model});
  if (c.pos == PosEncodingKind::kLearned ||
      c.pos == PosEncodingKind::kSinusoidal) {
    w.pos_table = PositionTable::zeros(c.max_pos, c.d_model);
  }
  w.layers.resize(static_cast<size_t>(c.n_layers));
  for (auto& l : w.layers) init_layer_shapes(c, l);
  if (c.final_norm && c.norm != NormKind::kNone) {
    w.final_norm_w = Tensor::full({c.d_model}, 1.0f);
    if (c.norm == NormKind::kLayerNorm) w.final_norm_b = Tensor({c.d_model});
  }
  w.lm_head = Tensor({c.vocab_size, c.d_model});
  return w;
}

ModelWeights ModelWeights::random(const ModelConfig& c, Rng& rng) {
  ModelWeights w = zeros(c);
  const float s = c.init_stddev;
  auto fill = [&](Tensor& t) {
    for (float& x : t.span()) x = rng.gauss(0.0f, s);
  };
  fill(w.tok_embed);
  if (c.pos == PosEncodingKind::kLearned) {
    w.pos_table = PositionTable::learned(c.max_pos, c.d_model, rng, s);
  } else if (c.pos == PosEncodingKind::kSinusoidal) {
    w.pos_table = PositionTable::sinusoidal(c.max_pos, c.d_model);
  }
  for (auto& l : w.layers) {
    fill(l.wq);
    fill(l.wk);
    fill(l.wv);
    fill(l.wo);
    if (c.use_mlp) {
      if (c.gated_mlp) fill(l.w_gate);
      fill(l.w_up);
      fill(l.w_down);
    }
  }
  fill(w.lm_head);
  return w;
}

size_t ModelWeights::parameter_count() const {
  size_t n = tok_embed.numel() + lm_head.numel() + final_norm_w.numel() +
             final_norm_b.numel() + pos_table.tensor().numel();
  for (const auto& l : layers) {
    n += l.wq.numel() + l.wk.numel() + l.wv.numel() + l.wo.numel();
    n += l.norm1_w.numel() + l.norm1_b.numel() + l.norm2_w.numel() +
         l.norm2_b.numel();
    n += l.w_gate.numel() + l.w_up.numel() + l.w_down.numel();
  }
  return n;
}

}  // namespace pc
