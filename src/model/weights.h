// Model weights. All linear weights are stored [out_features, in_features]
// so forward passes use matmul_nt (row-dot-row, cache friendly).
#pragma once

#include <vector>

#include "common/rng.h"
#include "model/config.h"
#include "pos/embedding_table.h"
#include "tensor/tensor.h"

namespace pc {

struct LayerWeights {
  // Attention
  Tensor wq;  // [q_dim, d_model]
  Tensor wk;  // [kv_dim, d_model]
  Tensor wv;  // [kv_dim, d_model]
  Tensor wo;  // [d_model, q_dim]
  // Norms (b used only by LayerNorm)
  Tensor norm1_w, norm1_b;
  Tensor norm2_w, norm2_b;
  // MLP: gated uses {w_gate, w_up, w_down}; plain uses {w_up, w_down}
  Tensor w_gate;  // [d_ff, d_model]
  Tensor w_up;    // [d_ff, d_model]
  Tensor w_down;  // [d_model, d_ff]
};

struct ModelWeights {
  Tensor tok_embed;  // [vocab, d_model]
  PositionTable pos_table;  // used by kLearned / kSinusoidal only
  std::vector<LayerWeights> layers;
  Tensor final_norm_w, final_norm_b;
  Tensor lm_head;  // [vocab, d_model]

  // Gaussian init with the config's stddev; norms initialize to identity.
  static ModelWeights random(const ModelConfig& config, Rng& rng);

  // Zero weights; the induction-model builder fills them in analytically.
  static ModelWeights zeros(const ModelConfig& config);

  size_t parameter_count() const;
};

}  // namespace pc
