// Hand-constructed induction-head transformer.
//
// The paper's accuracy experiments (Table 1) require a model that actually
// *uses* its context: cached-vs-baseline accuracy is only informative if the
// model retrieves answers from the prompt. Since no pretrained weights are
// available, we construct one analytically: the classic two-layer
// attention-only "induction head" circuit (Elhage et al. / Olsson et al.)
// that performs in-context copying — given a context containing "K V1 V2 ."
// and a query ending in "K", greedy decoding emits "V1 V2 ." exactly.
//
// Construction (one head per layer, no norms, no MLP, d = 3·V + P):
//   subspaces  TOK [0,V) | POS [V,V+P) | PREV [V+P,V+P+V) | IND [V+P+V,d)
//   embed      token t at position p  ->  e_TOK(t) + e_POS(p)
//   layer 1    "previous-token head": query beta1·e_POS(p), key e_POS(p+1),
//              so position p attends (near-)hard to position p-1 and copies
//              that token's one-hot into PREV.
//   layer 2    "induction head": query beta2·e_PREV(t_i) from the current
//              token, key = PREV content, so token t attends to positions
//              whose *predecessor* was t, and copies the token found there
//              into IND.
//   unembed    logits read IND.
//
// Why this exercises exactly what the paper measures: the previous-token
// head depends on attention across adjacent positions, so module-masked
// encoding (Prompt Cache) severs it only at module boundaries. Facts wholly
// inside one module survive caching bit-for-bit; facts straddling a module
// boundary are lost under caching but retrievable by the baseline — the
// same semantic-independence condition §3.3 describes, and the mechanism
// behind Table 1's passage-retrieval outliers. Scaffolding (§3.3) restores
// the straddling facts.
#pragma once

#include "model/model.h"

namespace pc {

// Construction artifact worth knowing: the first token of any encoding has
// only itself to attend to in layer 1 (softmax over one element), so it
// copies its *own* token into PREV. If a module's first token were a fact
// key, the induction head would see a spurious "key preceded by key" match.
// The workload generator therefore always opens documents with neutral
// filler tokens — the same hygiene real prompts get for free from BOS and
// formatting tokens.
struct InductionModelOptions {
  int vocab_size = 0;  // V: total token-id space (one-hot TOK subspace)
  int max_pos = 512;   // P: position-id space (one-hot POS subspace)
  float beta1 = 24.0f; // previous-token head sharpness
  float beta2 = 24.0f; // induction head sharpness
};

// d_model chosen by the construction: 3 * vocab_size + max_pos, rounded up
// to the Q4_0 block size (32) so blocked KV formats pack without waste.
Model make_induction_model(const InductionModelOptions& options);

}  // namespace pc
