// Decoder-only transformer inference engine with explicit position IDs and
// KV-cache injection — the substrate Prompt Cache operates on.
//
// The single primitive is forward(): compute attention states for a span of
// new tokens at caller-chosen position IDs, appending them to a KVCache.
// Every mode of the paper is an instance of it:
//   * baseline prefill        — empty cache, positions 0..n-1
//   * prompt-module encoding  — empty cache, positions from the schema
//     (module-local attention falls out: nothing else is in the cache)
//   * uncached-segment filling— cache preloaded with concatenated modules
//   * autoregressive decode   — one token at a time
//
// New tokens attend to everything already in the cache plus causally to one
// another. ALiBi biases are computed from the true position IDs stored in
// the cache, and RoPE keys are cached post-rotation, so modules remain valid
// after relocation and concatenation (paper §4.2).
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "common/cancel.h"
#include "kv/kv_cache.h"
#include "kv/kv_view.h"
#include "kv/paged_cache.h"
#include "model/config.h"
#include "model/weights.h"
#include "pos/alibi.h"
#include "pos/rope.h"
#include "tokenizer/vocab.h"

namespace pc {

enum class FinishReason {
  kStopToken,      // produced a stop token
  kStopSequence,   // generated tail matched a stop sequence
  kLength,         // hit max_new_tokens
  kPositionBudget, // ran out of position IDs (model max_pos)
  kCancelled,      // the options' cancellation token expired mid-decode
};

struct GenerateOptions {
  int max_new_tokens = 16;
  // Single-token stops: generation ends when one is produced (the stop
  // token itself is not emitted).
  std::vector<TokenId> stop_tokens = {Vocab::kEos};
  // Multi-token stops: when the generated tail matches one of these
  // sequences, the match is removed from the output and generation ends.
  std::vector<std::vector<TokenId>> stop_sequences;
  // temperature == 0 selects greedy argmax decoding. Otherwise logits are
  // divided by the temperature and sampled (optionally top_k-truncated)
  // with a deterministic per-call RNG seeded by `seed`.
  float temperature = 0.0f;
  int top_k = 0;  // 0 = no truncation
  uint64_t seed = 0x5eedULL;
  // Polled before each decode step; generation stops with kCancelled when
  // it expires. The default token never expires (a null-pointer test).
  CancellationToken cancel;
};

class Model {
 public:
  Model(ModelConfig config, ModelWeights weights);

  // Convenience: random weights from a seed.
  static Model random(const ModelConfig& config, uint64_t seed);

  const ModelConfig& config() const { return config_; }
  const ModelWeights& weights() const { return weights_; }
  ModelWeights& mutable_weights() { return weights_; }

  // A cache with this model's geometry.
  KVCache make_cache(ConcatPolicy policy = ConcatPolicy::kBuffered) const {
    return KVCache(config_.n_layers, config_.kv_dim(), policy);
  }

  // Computes attention states for `tokens` at `pos_ids` (same length),
  // appends them to `cache`, and returns logits: [1, vocab] for the final
  // token, or [n, vocab] when return_all_logits is set.
  Tensor forward(std::span<const TokenId> tokens,
                 std::span<const int> pos_ids, KVCache& cache,
                 bool return_all_logits = false) const;

  // Zero-copy variant: the cache may hold borrowed module segments; new
  // rows land in its owned tail (see kv/kv_view.h).
  Tensor forward(std::span<const TokenId> tokens,
                 std::span<const int> pos_ids, SegmentedKVCache& cache,
                 bool return_all_logits = false) const;

  // One sequence of a batched step: `tokens` are the new tokens this
  // iteration (a prefill chunk or a single decode token) at `pos_ids`,
  // appended to `cache`.
  struct BatchSeq {
    std::span<const TokenId> tokens;
    std::span<const int> pos_ids;
    PagedKVCache* cache = nullptr;
  };

  // Batched step over independent sequences (continuous batching, see
  // sys/batch.h): the dense row-wise work — embeddings, norms, QKV/output
  // projections, MLP — runs once over the concatenated rows of every
  // sequence, while attention stays per-sequence (each row attends only to
  // its own cache, causally within its chunk). Every per-row computation is
  // bitwise identical to running the sequences through forward()
  // one at a time — the foundation of the batched == sequential token
  // equality the serve path guarantees. Returns [n_seqs, vocab] logits for
  // each sequence's last new token. Caches must be distinct.
  Tensor forward_batch(std::span<const BatchSeq> seqs) const;

  // Reference path: one prefill over the whole prompt with a block-diagonal
  // attention mask. Token i may attend to token j (j <= i) iff they share a
  // block id, or block_ids[i] == kGlobalBlock (attends to everything). This
  // reproduces, in a single forward, exactly the attention pattern Prompt
  // Cache realizes through per-module encoding + concatenation (§3.1), and
  // the test suite asserts bitwise equality between the two. The cache must
  // be empty on entry.
  //
  // `hidden_from_global` (optional, same length as tokens) marks rows that
  // global-block tokens must NOT attend to even though same-block tokens
  // do: exactly the behaviour of <unk> parameter placeholders, which are
  // attended during module encoding but never copied into the serving
  // cache (§3.3).
  static constexpr int kGlobalBlock = -1;
  Tensor forward_blocked(std::span<const TokenId> tokens,
                         std::span<const int> pos_ids,
                         std::span<const int> block_ids, KVCache& cache,
                         bool return_all_logits = false,
                         std::span<const bool> hidden_from_global = {}) const;

  // Decoding continuing from `last_logits` (the output of a forward over
  // the prompt). Generated tokens occupy consecutive position IDs starting
  // at next_pos. Stops at max_new_tokens, any stop token, or a stop
  // sequence (stops are not included in the result). Greedy when
  // options.temperature == 0, seeded sampling otherwise.
  std::vector<TokenId> generate_greedy(const Tensor& last_logits,
                                       int next_pos, KVCache& cache,
                                       const GenerateOptions& options) const;
  std::vector<TokenId> generate_greedy(const Tensor& last_logits,
                                       int next_pos, SegmentedKVCache& cache,
                                       const GenerateOptions& options) const;

  // As above, but also reports why generation stopped.
  struct GenerateOutput {
    std::vector<TokenId> tokens;
    FinishReason finish_reason = FinishReason::kLength;
  };
  GenerateOutput generate(const Tensor& last_logits, int next_pos,
                          KVCache& cache,
                          const GenerateOptions& options) const;
  GenerateOutput generate(const Tensor& last_logits, int next_pos,
                          SegmentedKVCache& cache,
                          const GenerateOptions& options) const;

  static TokenId argmax(const Tensor& logits, int64_t row = 0);

  // Samples one token from a logits row under the options' temperature /
  // top_k policy (argmax when temperature == 0). Exposed for tests.
  static TokenId sample_token(const Tensor& logits,
                              const GenerateOptions& options, Rng& rng);

  // Row-addressed variant for batched logits ([n_seqs, vocab]): identical
  // bits to sampling from that sequence's own [1, vocab] logits.
  static TokenId sample_token(const Tensor& logits, int64_t row,
                              const GenerateOptions& options, Rng& rng);

  // Sum of per-token log-probabilities (natural log) of `continuation`
  // under the model, given `last_logits` (the logits after the context) and
  // a cache holding that context. Appends the continuation to the cache.
  // This is the continuous output-fidelity metric: comparing the cached and
  // baseline paths' log-probabilities of the same reference text measures
  // quality impact more finely than exact-match generation.
  double continuation_logprob(const Tensor& last_logits,
                              std::span<const TokenId> continuation,
                              int next_pos, KVCache& cache) const;

  // Per-token KV payload in bytes at fp32 (engine precision).
  size_t kv_bytes_per_token() const {
    return static_cast<size_t>(2) * config_.n_layers * config_.kv_dim() *
           sizeof(float);
  }

 private:
  void embed(std::span<const TokenId> tokens, std::span<const int> pos_ids,
             Tensor& x) const;
  void apply_norm(const Tensor& w, const Tensor& b, const Tensor& x,
                  Tensor& out) const;
  // The forward pass is a template over the cache representation: KVCache
  // (contiguous, memcpy-assembled) and SegmentedKVCache (zero-copy row
  // pointer tables) share one implementation.
  template <typename CacheT>
  Tensor forward_impl(std::span<const TokenId> tokens,
                      std::span<const int> pos_ids,
                      std::span<const int> block_ids, CacheT& cache,
                      bool return_all_logits,
                      std::span<const bool> hidden_from_global = {}) const;
  template <typename CacheT>
  void attention(int layer, const Tensor& h, std::span<const int> pos_ids,
                 std::span<const int> block_ids,
                 std::span<const bool> hidden_from_global, int first_new,
                 CacheT& cache, Tensor& out) const;
  void attention_batch(int layer, const Tensor& h,
                       std::span<const BatchSeq> seqs,
                       const std::vector<int>& first_new,
                       const std::vector<int>& row_seq,
                       const std::vector<int>& row_idx,
                       std::span<const int> pos_ids, Tensor& out) const;
  template <typename CacheT>
  GenerateOutput generate_impl(const Tensor& last_logits, int next_pos,
                               CacheT& cache,
                               const GenerateOptions& options) const;
  void mlp(int layer, const Tensor& h, Tensor& out) const;

  ModelConfig config_;
  ModelWeights weights_;
  std::unique_ptr<RopeTable> rope_;   // present for kRope
  std::unique_ptr<Alibi> alibi_;      // present for kAlibi
  float attn_scale_;
};

}  // namespace pc
