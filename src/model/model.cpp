#include "model/model.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <cstring>

#include "common/thread_pool.h"
#include "obs/trace.h"
#include "tensor/ops.h"

namespace pc {

Model::Model(ModelConfig config, ModelWeights weights)
    : config_(std::move(config)), weights_(std::move(weights)) {
  config_.validate();
  if (config_.pos == PosEncodingKind::kRope) {
    rope_ = std::make_unique<RopeTable>(config_.d_head, config_.max_pos,
                                        config_.rope_theta);
  } else if (config_.pos == PosEncodingKind::kAlibi) {
    alibi_ = std::make_unique<Alibi>(config_.n_heads);
  }
  attn_scale_ = config_.attn_scale != 0.0f
                    ? config_.attn_scale
                    : 1.0f / std::sqrt(static_cast<float>(config_.d_head));
}

Model Model::random(const ModelConfig& config, uint64_t seed) {
  Rng rng(seed);
  return Model(config, ModelWeights::random(config, rng));
}

void Model::embed(std::span<const TokenId> tokens,
                  std::span<const int> pos_ids, Tensor& x) const {
  const int d = config_.d_model;
  const bool table_pos = config_.pos == PosEncodingKind::kLearned ||
                         config_.pos == PosEncodingKind::kSinusoidal;
  for (size_t i = 0; i < tokens.size(); ++i) {
    PC_CHECK_MSG(tokens[i] >= 0 && tokens[i] < config_.vocab_size,
                 "token id " << tokens[i] << " outside vocab");
    const float* src = weights_.tok_embed.row(tokens[i]);
    float* dst = x.row(static_cast<int64_t>(i));
    std::memcpy(dst, src, static_cast<size_t>(d) * sizeof(float));
    if (table_pos) {
      axpy(1.0f, weights_.pos_table.row(pos_ids[i]), dst,
           static_cast<size_t>(d));
    }
  }
}

void Model::apply_norm(const Tensor& w, const Tensor& b, const Tensor& x,
                       Tensor& out) const {
  const size_t d = static_cast<size_t>(config_.d_model);
  const int64_t n = x.dim(0);
  switch (config_.norm) {
    case NormKind::kNone:
      std::memcpy(out.data(), x.data(), x.byte_size());
      return;
    case NormKind::kRmsNorm:
      for (int64_t i = 0; i < n; ++i) {
        rmsnorm(x.row(i), w.data(), out.row(i), d, config_.norm_eps);
      }
      return;
    case NormKind::kLayerNorm:
      for (int64_t i = 0; i < n; ++i) {
        layernorm(x.row(i), w.data(), b.empty() ? nullptr : b.data(),
                  out.row(i), d, config_.norm_eps);
      }
      return;
  }
}

namespace {

// Uniform row accessors over the two cache representations.
inline float* kv_k_write(KVCache& c, int l, int t) { return c.k_row(l, t); }
inline float* kv_v_write(KVCache& c, int l, int t) { return c.v_row(l, t); }
inline const float* kv_k_read(const KVCache& c, int l, int t) {
  return c.k_row(l, t);
}
inline const float* kv_v_read(const KVCache& c, int l, int t) {
  return c.v_row(l, t);
}
inline float* kv_k_write(SegmentedKVCache& c, int l, int t) {
  return c.k_row_mut(l, t);
}
inline float* kv_v_write(SegmentedKVCache& c, int l, int t) {
  return c.v_row_mut(l, t);
}
inline const float* kv_k_read(const SegmentedKVCache& c, int l, int t) {
  return c.k_row(l, t);
}
inline const float* kv_v_read(const SegmentedKVCache& c, int l, int t) {
  return c.v_row(l, t);
}

// Fused-attention dispatch over the two cache representations. KVCache rows
// are dense [n_tokens, kv_dim], so one head's K column is a strided walk
// from row 0 — the contiguous kernel. SegmentedKVCache rows live behind a
// per-layer pointer table — the gathered kernel.
inline void fused_attend(const KVCache& c, int layer, int k_off,
                         const float* q, size_t d_head, size_t n_ctx,
                         float scale, float slope, const float* rel_pos,
                         const uint8_t* masked, float* scores, float* out) {
  attn_fused_contig(q, c.k_row(layer, 0) + k_off, c.v_row(layer, 0) + k_off,
                    static_cast<size_t>(c.kv_dim()), d_head, n_ctx, scale,
                    slope, rel_pos, masked, scores, out);
}
inline void fused_attend(const SegmentedKVCache& c, int layer, int k_off,
                         const float* q, size_t d_head, size_t n_ctx,
                         float scale, float slope, const float* rel_pos,
                         const uint8_t* masked, float* scores, float* out) {
  // At most one quantized format appears per view (a store holds one
  // precision), so the dispatch below never mixes q4 and q8 slots.
  if (c.has_q4()) {
    // Q4_0 borrowed segments: module rows are scored block-wise in the
    // integer domain (no fp32 materialization); the owned tail reads fp32.
    attn_fused_q4_gather(q, c.k4_row_table(layer), c.v4_row_table(layer),
                         c.k4_scale_table(layer), c.v4_scale_table(layer),
                         c.k_row_table(layer), c.v_row_table(layer),
                         static_cast<size_t>(k_off), d_head, n_ctx, scale,
                         slope, rel_pos, masked, scores, out);
    return;
  }
  if (c.has_q8()) {
    // Quantized borrowed segments: module rows are scored in the int8
    // domain (no fp32 materialization); the owned tail reads fp32.
    attn_fused_q8_gather(q, c.k8_row_table(layer), c.v8_row_table(layer),
                         c.k_scale_table(layer), c.v_scale_table(layer),
                         c.k_row_table(layer), c.v_row_table(layer),
                         static_cast<size_t>(k_off), d_head, n_ctx, scale,
                         slope, rel_pos, masked, scores, out);
    return;
  }
  attn_fused_gather(q, c.k_row_table(layer), c.v_row_table(layer),
                    static_cast<size_t>(k_off), d_head, n_ctx, scale, slope,
                    rel_pos, masked, scores, out);
}

}  // namespace

template <typename CacheT>
void Model::attention(int layer, const Tensor& h,
                      std::span<const int> pos_ids,
                      std::span<const int> block_ids,
                      std::span<const bool> hidden_from_global,
                      int first_new, CacheT& cache, Tensor& out) const {
  const auto& lw = weights_.layers[static_cast<size_t>(layer)];
  const int n_new = static_cast<int>(h.dim(0));
  const int d_head = config_.d_head;
  const int n_heads = config_.n_heads;
  const int group = n_heads / config_.n_kv_heads;
  const size_t kv_dim = static_cast<size_t>(config_.kv_dim());

  Tensor q = matmul_nt(h, lw.wq);   // [n_new, q_dim]
  Tensor kx = matmul_nt(h, lw.wk);  // [n_new, kv_dim]
  Tensor vx = matmul_nt(h, lw.wv);  // [n_new, kv_dim]

  if (rope_) {
    for (int i = 0; i < n_new; ++i) {
      const int pos = pos_ids[static_cast<size_t>(i)];
      float* qi = q.row(i);
      for (int hd = 0; hd < n_heads; ++hd) {
        rope_->apply(qi + hd * d_head, pos);
      }
      float* ki = kx.row(i);
      for (int hd = 0; hd < config_.n_kv_heads; ++hd) {
        rope_->apply(ki + hd * d_head, pos);
      }
    }
  }

  // Publish the new keys/values into the cache (keys post-rotation, so the
  // module stays valid if these rows are later copied elsewhere). The
  // appended rows are contiguous in both representations — KVCache layers
  // are dense buffers and the segmented tail is a dense, pre-reserved
  // KVCache — and kx/vx are row-major, so this is two memcpys per layer
  // rather than two per token.
  std::memcpy(kv_k_write(cache, layer, first_new), kx.data(),
              static_cast<size_t>(n_new) * kv_dim * sizeof(float));
  std::memcpy(kv_v_write(cache, layer, first_new), vx.data(),
              static_cast<size_t>(n_new) * kv_dim * sizeof(float));

  // Token i may attend to cache slots [0, first_new+i]. The block mask and
  // the ALiBi relative-distance vector depend only on (i, j), so they are
  // computed once per query row and shared by every head, not recomputed
  // per head as the scalar path used to.
  const int total_ctx = first_new + n_new;
  const bool use_mask = !block_ids.empty() || !hidden_from_global.empty();
  const size_t ctx_sz = static_cast<size_t>(total_ctx);

  std::vector<int> k_pos;  // position id per cache slot (ALiBi only)
  if (alibi_) {
    k_pos.resize(ctx_sz);
    for (int j = 0; j < total_ctx; ++j) k_pos[static_cast<size_t>(j)] =
        cache.pos_id(j);
  }

  // Fills mrow[0..ctx) for query row i (same predicate the scalar loop
  // applied per (head, i, j)).
  auto fill_mask_row = [&](int i, uint8_t* mrow, int ctx) {
    const int my_block = block_ids.empty()
                             ? kGlobalBlock
                             : block_ids[static_cast<size_t>(i)];
    for (int j = 0; j < ctx; ++j) {
      const bool masked =
          my_block == kGlobalBlock
              ? (!hidden_from_global.empty() &&
                 hidden_from_global[static_cast<size_t>(j)])
              : (!block_ids.empty() &&
                 block_ids[static_cast<size_t>(j)] != my_block);
      mrow[j] = masked ? 1 : 0;
    }
  };
  // Fills rrow[j] = float(q_pos - k_pos_j); the kernel applies
  // -slope * rrow[j], bit-identical to Alibi::bias().
  auto fill_rel_row = [&](int i, float* rrow, int ctx) {
    const int qp = pos_ids[static_cast<size_t>(i)];
    for (int j = 0; j < ctx; ++j) {
      rrow[j] = static_cast<float>(qp - k_pos[static_cast<size_t>(j)]);
    }
  };

  // One attention head-row: q slice (hd, i) against slots [0, ctx).
  auto attend_one = [&](int hd, int i, int ctx, const float* rel,
                        const uint8_t* masked, float* scores) {
    const int k_off = (hd / group) * d_head;
    fused_attend(cache, layer, k_off, q.row(i) + hd * d_head,
                 static_cast<size_t>(d_head), static_cast<size_t>(ctx),
                 attn_scale_, alibi_ ? alibi_->slope(hd) : 0.0f, rel, masked,
                 scores, out.row(i) + hd * d_head);
  };

  // Two schedules producing identical bits (the kernel inputs per (i, head)
  // are the same): prefill parallelizes over query rows, so mask/rel rows
  // are built once per row in-thread; decode-sized batches parallelize over
  // heads and share small precomputed mask/rel matrices.
  if (n_new >= 8) {
    auto row_work = [&](size_t row_begin, size_t row_end) {
      std::vector<float> scores(ctx_sz);
      std::vector<uint8_t> mrow(use_mask ? ctx_sz : 0);
      std::vector<float> rrow(alibi_ ? ctx_sz : 0);
      for (size_t i = row_begin; i < row_end; ++i) {
        const int ctx = first_new + static_cast<int>(i) + 1;
        if (use_mask) fill_mask_row(static_cast<int>(i), mrow.data(), ctx);
        if (alibi_) fill_rel_row(static_cast<int>(i), rrow.data(), ctx);
        for (int hd = 0; hd < n_heads; ++hd) {
          attend_one(hd, static_cast<int>(i), ctx,
                     alibi_ ? rrow.data() : nullptr,
                     use_mask ? mrow.data() : nullptr, scores.data());
        }
      }
    };
    if (ThreadPool::global().size() > 1) {
      ThreadPool::global().parallel_for(static_cast<size_t>(n_new), row_work);
    } else {
      row_work(0, static_cast<size_t>(n_new));
    }
  } else {
    std::vector<uint8_t> mask_mat(use_mask ? static_cast<size_t>(n_new) *
                                                 ctx_sz
                                           : 0);
    std::vector<float> rel_mat(alibi_ ? static_cast<size_t>(n_new) * ctx_sz
                                      : 0);
    for (int i = 0; i < n_new; ++i) {
      const int ctx = first_new + i + 1;
      if (use_mask) {
        fill_mask_row(i, mask_mat.data() + static_cast<size_t>(i) * ctx_sz,
                      ctx);
      }
      if (alibi_) {
        fill_rel_row(i, rel_mat.data() + static_cast<size_t>(i) * ctx_sz,
                     ctx);
      }
    }
    auto head_work = [&](size_t head_begin, size_t head_end) {
      std::vector<float> scores(ctx_sz);
      for (size_t hd = head_begin; hd < head_end; ++hd) {
        for (int i = 0; i < n_new; ++i) {
          const int ctx = first_new + i + 1;
          attend_one(static_cast<int>(hd), i, ctx,
                     alibi_ ? rel_mat.data() + static_cast<size_t>(i) * ctx_sz
                            : nullptr,
                     use_mask
                         ? mask_mat.data() + static_cast<size_t>(i) * ctx_sz
                         : nullptr,
                     scores.data());
        }
      }
    };
    if (ThreadPool::global().size() > 1 && n_heads > 1) {
      ThreadPool::global().parallel_for(static_cast<size_t>(n_heads),
                                        head_work);
    } else {
      head_work(0, static_cast<size_t>(n_heads));
    }
  }
}

// Per-sequence attention of a batched step. The dense projections were
// computed over the concatenated rows; here every query row r (sequence s,
// chunk-local index i) attends to its own cache's slots [0, first_new+i] via
// the gathered kernel — the same kernel, context, and inputs it would see in
// a sequential forward over that sequence alone, so the output bits match.
void Model::attention_batch(int layer, const Tensor& h,
                            std::span<const BatchSeq> seqs,
                            const std::vector<int>& first_new,
                            const std::vector<int>& row_seq,
                            const std::vector<int>& row_idx,
                            std::span<const int> pos_ids, Tensor& out) const {
  const auto& lw = weights_.layers[static_cast<size_t>(layer)];
  const int total = static_cast<int>(h.dim(0));
  const int d_head = config_.d_head;
  const int n_heads = config_.n_heads;
  const int group = n_heads / config_.n_kv_heads;
  const size_t kv_dim = static_cast<size_t>(config_.kv_dim());

  Tensor q = matmul_nt(h, lw.wq);   // [total, q_dim]
  Tensor kx = matmul_nt(h, lw.wk);  // [total, kv_dim]
  Tensor vx = matmul_nt(h, lw.wv);  // [total, kv_dim]

  if (rope_) {
    for (int r = 0; r < total; ++r) {
      const int pos = pos_ids[static_cast<size_t>(r)];
      float* qr = q.row(r);
      for (int hd = 0; hd < n_heads; ++hd) rope_->apply(qr + hd * d_head, pos);
      float* kr = kx.row(r);
      for (int hd = 0; hd < config_.n_kv_heads; ++hd) {
        rope_->apply(kr + hd * d_head, pos);
      }
    }
  }

  // Publish each row's keys/values into its sequence's page slot. Unlike
  // the dense caches, page rows are layer-interleaved, so this is one
  // memcpy per (row, layer) rather than one per layer.
  size_t max_ctx = 0;
  for (int r = 0; r < total; ++r) {
    const int s = row_seq[static_cast<size_t>(r)];
    const int t = first_new[static_cast<size_t>(s)] +
                  row_idx[static_cast<size_t>(r)];
    PagedKVCache& cache = *seqs[static_cast<size_t>(s)].cache;
    std::memcpy(cache.k_row_mut(layer, t), kx.row(r),
                kv_dim * sizeof(float));
    std::memcpy(cache.v_row_mut(layer, t), vx.row(r),
                kv_dim * sizeof(float));
    max_ctx = std::max(max_ctx, static_cast<size_t>(t) + 1);
  }

  auto row_work = [&](size_t row_begin, size_t row_end) {
    std::vector<float> scores(max_ctx);
    std::vector<float> rrow(alibi_ ? max_ctx : 0);
    for (size_t r = row_begin; r < row_end; ++r) {
      const int s = row_seq[r];
      const PagedKVCache& cache = *seqs[static_cast<size_t>(s)].cache;
      const int ctx = first_new[static_cast<size_t>(s)] + row_idx[r] + 1;
      if (alibi_) {
        const int qp = pos_ids[r];
        for (int j = 0; j < ctx; ++j) {
          rrow[static_cast<size_t>(j)] =
              static_cast<float>(qp - cache.pos_id(j));
        }
      }
      for (int hd = 0; hd < n_heads; ++hd) {
        if (cache.has_q4()) {
          // Shared q4 module pages are scored block-wise in the integer
          // domain; only the request's private fp32 tail takes the fp32
          // path per slot.
          attn_fused_q4_gather(
              q.row(static_cast<int64_t>(r)) + hd * d_head,
              cache.k4_row_table(layer), cache.v4_row_table(layer),
              cache.k4_scale_table(layer), cache.v4_scale_table(layer),
              cache.k_row_table(layer), cache.v_row_table(layer),
              static_cast<size_t>((hd / group) * d_head),
              static_cast<size_t>(d_head), static_cast<size_t>(ctx),
              attn_scale_, alibi_ ? alibi_->slope(hd) : 0.0f,
              alibi_ ? rrow.data() : nullptr, nullptr, scores.data(),
              out.row(static_cast<int64_t>(r)) + hd * d_head);
          continue;
        }
        if (cache.has_q8()) {
          // Shared q8 module pages are scored in the int8 domain; only the
          // request's private fp32 tail takes the fp32 path per slot.
          attn_fused_q8_gather(
              q.row(static_cast<int64_t>(r)) + hd * d_head,
              cache.k8_row_table(layer), cache.v8_row_table(layer),
              cache.k_scale_table(layer), cache.v_scale_table(layer),
              cache.k_row_table(layer), cache.v_row_table(layer),
              static_cast<size_t>((hd / group) * d_head),
              static_cast<size_t>(d_head), static_cast<size_t>(ctx),
              attn_scale_, alibi_ ? alibi_->slope(hd) : 0.0f,
              alibi_ ? rrow.data() : nullptr, nullptr, scores.data(),
              out.row(static_cast<int64_t>(r)) + hd * d_head);
          continue;
        }
        attn_fused_gather(
            q.row(static_cast<int64_t>(r)) + hd * d_head,
            cache.k_row_table(layer), cache.v_row_table(layer),
            static_cast<size_t>((hd / group) * d_head),
            static_cast<size_t>(d_head), static_cast<size_t>(ctx),
            attn_scale_, alibi_ ? alibi_->slope(hd) : 0.0f,
            alibi_ ? rrow.data() : nullptr, nullptr, scores.data(),
            out.row(static_cast<int64_t>(r)) + hd * d_head);
      }
    }
  };
  if (ThreadPool::global().size() > 1 && total > 1) {
    ThreadPool::global().parallel_for(static_cast<size_t>(total), row_work);
  } else {
    row_work(0, static_cast<size_t>(total));
  }
}

void Model::mlp(int layer, const Tensor& h, Tensor& out) const {
  const auto& lw = weights_.layers[static_cast<size_t>(layer)];
  Tensor up = matmul_nt(h, lw.w_up);  // [n, d_ff]
  if (config_.gated_mlp) {
    Tensor gate = matmul_nt(h, lw.w_gate);
    if (config_.activation == ActivationKind::kSilu) {
      silu_inplace(gate.data(), gate.numel());
    } else {
      gelu_inplace(gate.data(), gate.numel());
    }
    mul_inplace(up, gate);
  } else {
    if (config_.activation == ActivationKind::kSilu) {
      silu_inplace(up.data(), up.numel());
    } else {
      gelu_inplace(up.data(), up.numel());
    }
  }
  out = matmul_nt(up, lw.w_down);  // [n, d_model]
}

Tensor Model::forward(std::span<const TokenId> tokens,
                      std::span<const int> pos_ids, KVCache& cache,
                      bool return_all_logits) const {
  return forward_impl(tokens, pos_ids, {}, cache, return_all_logits);
}

Tensor Model::forward(std::span<const TokenId> tokens,
                      std::span<const int> pos_ids, SegmentedKVCache& cache,
                      bool return_all_logits) const {
  return forward_impl(tokens, pos_ids, {}, cache, return_all_logits);
}

Tensor Model::forward_blocked(std::span<const TokenId> tokens,
                              std::span<const int> pos_ids,
                              std::span<const int> block_ids, KVCache& cache,
                              bool return_all_logits,
                              std::span<const bool> hidden_from_global) const {
  PC_CHECK_MSG(cache.empty(), "forward_blocked requires an empty cache");
  PC_CHECK_MSG(block_ids.size() == tokens.size(),
               "block_ids length mismatch");
  PC_CHECK_MSG(hidden_from_global.empty() ||
                   hidden_from_global.size() == tokens.size(),
               "hidden_from_global length mismatch");
  return forward_impl(tokens, pos_ids, block_ids, cache, return_all_logits,
                      hidden_from_global);
}

template <typename CacheT>
Tensor Model::forward_impl(std::span<const TokenId> tokens,
                           std::span<const int> pos_ids,
                           std::span<const int> block_ids, CacheT& cache,
                           bool return_all_logits,
                           std::span<const bool> hidden_from_global) const {
  PC_CHECK_MSG(tokens.size() == pos_ids.size(),
               "tokens/pos_ids length mismatch");
  PC_CHECK_MSG(!tokens.empty(), "empty forward");
  PC_CHECK_MSG(cache.n_layers() == config_.n_layers &&
                   cache.kv_dim() == config_.kv_dim(),
               "cache geometry mismatch");
  for (int p : pos_ids) {
    PC_CHECK_MSG(p >= 0 && p < config_.max_pos,
                 "position id " << p << " outside max_pos " << config_.max_pos);
  }

  const int n_new = static_cast<int>(tokens.size());
  const int d = config_.d_model;
  const int first_new = cache.append_tokens(pos_ids);

  Tensor x({n_new, d});
  embed(tokens, pos_ids, x);

  Tensor h({n_new, d});
  Tensor attn_out({n_new, config_.q_dim()});
  for (int l = 0; l < config_.n_layers; ++l) {
    const auto& lw = weights_.layers[static_cast<size_t>(l)];
    apply_norm(lw.norm1_w, lw.norm1_b, x, h);
    attention(l, h, pos_ids, block_ids, hidden_from_global, first_new, cache,
              attn_out);
    Tensor attn_proj = matmul_nt(attn_out, lw.wo);  // [n, d_model]

    if (config_.parallel_block) {
      // Falcon block: MLP reads the same normed input; both add to residual.
      add_inplace(x, attn_proj);
      if (config_.use_mlp) {
        Tensor mlp_out;
        mlp(l, h, mlp_out);
        add_inplace(x, mlp_out);
      }
    } else {
      add_inplace(x, attn_proj);
      if (config_.use_mlp) {
        apply_norm(lw.norm2_w, lw.norm2_b, x, h);
        Tensor mlp_out;
        mlp(l, h, mlp_out);
        add_inplace(x, mlp_out);
      }
    }
  }

  // Logits for the requested rows.
  const int64_t out_rows = return_all_logits ? n_new : 1;
  Tensor final_in({out_rows, d});
  for (int64_t r = 0; r < out_rows; ++r) {
    const int64_t src = return_all_logits ? r : n_new - 1;
    std::memcpy(final_in.row(r), x.row(src),
                static_cast<size_t>(d) * sizeof(float));
  }
  if (config_.final_norm && config_.norm != NormKind::kNone) {
    Tensor normed({out_rows, d});
    apply_norm(weights_.final_norm_w, weights_.final_norm_b, final_in, normed);
    return matmul_nt(normed, weights_.lm_head);
  }
  return matmul_nt(final_in, weights_.lm_head);
}

Tensor Model::forward_batch(std::span<const BatchSeq> seqs) const {
  PC_CHECK_MSG(!seqs.empty(), "forward_batch: empty batch");
  const int n_seqs = static_cast<int>(seqs.size());
  int total = 0;
  for (int s = 0; s < n_seqs; ++s) {
    const BatchSeq& seq = seqs[static_cast<size_t>(s)];
    PC_CHECK_MSG(seq.cache != nullptr, "forward_batch: sequence without cache");
    PC_CHECK_MSG(seq.tokens.size() == seq.pos_ids.size(),
                 "forward_batch: tokens/pos_ids length mismatch");
    PC_CHECK_MSG(!seq.tokens.empty(), "forward_batch: empty sequence");
    PC_CHECK_MSG(seq.cache->n_layers() == config_.n_layers &&
                     seq.cache->kv_dim() == config_.kv_dim(),
                 "forward_batch: cache geometry mismatch");
    for (int p : seq.pos_ids) {
      PC_CHECK_MSG(p >= 0 && p < config_.max_pos,
                   "position id " << p << " outside max_pos "
                                  << config_.max_pos);
    }
    for (int t = 0; t < s; ++t) {
      PC_CHECK_MSG(seqs[static_cast<size_t>(t)].cache != seq.cache,
                   "forward_batch: sequences must have distinct caches");
    }
    total += static_cast<int>(seq.tokens.size());
  }
  PC_SPAN("forward_batch", {"seqs", static_cast<int64_t>(n_seqs)},
          {"tokens", static_cast<int64_t>(total)});

  // Flatten: dense row-wise stages run once over every sequence's rows.
  const int d = config_.d_model;
  std::vector<TokenId> tokens;
  std::vector<int> pos;
  std::vector<int> row_seq(static_cast<size_t>(total));
  std::vector<int> row_idx(static_cast<size_t>(total));
  std::vector<int> row_off(static_cast<size_t>(n_seqs));
  std::vector<int> first_new(static_cast<size_t>(n_seqs));
  tokens.reserve(static_cast<size_t>(total));
  pos.reserve(static_cast<size_t>(total));
  int r = 0;
  for (int s = 0; s < n_seqs; ++s) {
    const BatchSeq& seq = seqs[static_cast<size_t>(s)];
    row_off[static_cast<size_t>(s)] = r;
    first_new[static_cast<size_t>(s)] = seq.cache->append_tokens(seq.pos_ids);
    for (size_t i = 0; i < seq.tokens.size(); ++i) {
      tokens.push_back(seq.tokens[i]);
      pos.push_back(seq.pos_ids[i]);
      row_seq[static_cast<size_t>(r)] = s;
      row_idx[static_cast<size_t>(r)] = static_cast<int>(i);
      ++r;
    }
  }

  Tensor x({total, d});
  embed(tokens, pos, x);

  Tensor h({total, d});
  Tensor attn_out({total, config_.q_dim()});
  for (int l = 0; l < config_.n_layers; ++l) {
    const auto& lw = weights_.layers[static_cast<size_t>(l)];
    apply_norm(lw.norm1_w, lw.norm1_b, x, h);
    attention_batch(l, h, seqs, first_new, row_seq, row_idx, pos, attn_out);
    Tensor attn_proj = matmul_nt(attn_out, lw.wo);  // [total, d_model]

    if (config_.parallel_block) {
      add_inplace(x, attn_proj);
      if (config_.use_mlp) {
        Tensor mlp_out;
        mlp(l, h, mlp_out);
        add_inplace(x, mlp_out);
      }
    } else {
      add_inplace(x, attn_proj);
      if (config_.use_mlp) {
        apply_norm(lw.norm2_w, lw.norm2_b, x, h);
        Tensor mlp_out;
        mlp(l, h, mlp_out);
        add_inplace(x, mlp_out);
      }
    }
  }

  // One logits row per sequence: its last new token.
  Tensor final_in({n_seqs, d});
  for (int s = 0; s < n_seqs; ++s) {
    const int last = row_off[static_cast<size_t>(s)] +
                     static_cast<int>(seqs[static_cast<size_t>(s)]
                                          .tokens.size()) -
                     1;
    std::memcpy(final_in.row(s), x.row(last),
                static_cast<size_t>(d) * sizeof(float));
  }
  if (config_.final_norm && config_.norm != NormKind::kNone) {
    Tensor normed({n_seqs, d});
    apply_norm(weights_.final_norm_w, weights_.final_norm_b, final_in, normed);
    return matmul_nt(normed, weights_.lm_head);
  }
  return matmul_nt(final_in, weights_.lm_head);
}

TokenId Model::argmax(const Tensor& logits, int64_t row) {
  PC_CHECK(logits.ndim() == 2 && row < logits.dim(0));
  const float* p = logits.row(row);
  int64_t best = 0;
  for (int64_t i = 1; i < logits.dim(1); ++i) {
    if (p[i] > p[best]) best = i;
  }
  return static_cast<TokenId>(best);
}

std::vector<TokenId> Model::generate_greedy(
    const Tensor& last_logits, int next_pos, KVCache& cache,
    const GenerateOptions& options) const {
  return generate_impl(last_logits, next_pos, cache, options).tokens;
}

std::vector<TokenId> Model::generate_greedy(
    const Tensor& last_logits, int next_pos, SegmentedKVCache& cache,
    const GenerateOptions& options) const {
  return generate_impl(last_logits, next_pos, cache, options).tokens;
}

Model::GenerateOutput Model::generate(const Tensor& last_logits, int next_pos,
                                      KVCache& cache,
                                      const GenerateOptions& options) const {
  return generate_impl(last_logits, next_pos, cache, options);
}

Model::GenerateOutput Model::generate(const Tensor& last_logits, int next_pos,
                                      SegmentedKVCache& cache,
                                      const GenerateOptions& options) const {
  return generate_impl(last_logits, next_pos, cache, options);
}

namespace {

// log softmax(logits)[token], numerically stable.
double token_logprob(const Tensor& logits, TokenId token) {
  PC_CHECK(logits.ndim() == 2 && logits.dim(0) >= 1);
  PC_CHECK(token >= 0 && token < logits.dim(1));
  const float* row = logits.row(0);
  float mx = row[0];
  for (int64_t i = 1; i < logits.dim(1); ++i) mx = std::max(mx, row[i]);
  double sum = 0;
  for (int64_t i = 0; i < logits.dim(1); ++i) {
    sum += std::exp(static_cast<double>(row[i] - mx));
  }
  return static_cast<double>(row[token] - mx) - std::log(sum);
}

}  // namespace

double Model::continuation_logprob(const Tensor& last_logits,
                                   std::span<const TokenId> continuation,
                                   int next_pos, KVCache& cache) const {
  PC_CHECK_MSG(!continuation.empty(), "empty continuation");
  double total = token_logprob(last_logits, continuation[0]);
  for (size_t i = 0; i + 1 < continuation.size(); ++i) {
    const int pos = next_pos + static_cast<int>(i);
    PC_CHECK_MSG(pos < config_.max_pos, "continuation exceeds max_pos");
    const TokenId input = continuation[i];
    const Tensor logits = forward({&input, 1}, {&pos, 1}, cache);
    total += token_logprob(logits, continuation[i + 1]);
  }
  return total;
}

TokenId Model::sample_token(const Tensor& logits,
                            const GenerateOptions& options, Rng& rng) {
  return sample_token(logits, 0, options, rng);
}

TokenId Model::sample_token(const Tensor& logits, int64_t row_index,
                            const GenerateOptions& options, Rng& rng) {
  if (options.temperature <= 0.0f) return argmax(logits, row_index);
  PC_CHECK(logits.ndim() == 2 && row_index >= 0 &&
           row_index < logits.dim(0));
  const int64_t vocab = logits.dim(1);
  const float* row = logits.row(row_index);
  const double inv_temp = 1.0 / options.temperature;

  if (options.top_k > 0 && options.top_k < vocab) {
    // Top-k: nth_element on a reused index scratch (no full-vocab sort, no
    // per-token allocation once the scratch is warm), then a small sort of
    // the k survivors for a canonical order.
    const size_t k = static_cast<size_t>(options.top_k);
    static thread_local std::vector<int32_t> candidates;
    static thread_local std::vector<double> weights;
    candidates.resize(static_cast<size_t>(vocab));
    for (int64_t i = 0; i < vocab; ++i) {
      candidates[static_cast<size_t>(i)] = static_cast<int32_t>(i);
    }
    const auto by_logit_desc = [&](int32_t a, int32_t b) {
      return row[a] > row[b];
    };
    std::nth_element(candidates.begin(), candidates.begin() + options.top_k,
                     candidates.end(), by_logit_desc);
    std::sort(candidates.begin(), candidates.begin() + options.top_k,
              by_logit_desc);

    const float mx = row[candidates.front()];  // sorted: first is the max
    weights.resize(k);
    double total = 0;
    for (size_t i = 0; i < k; ++i) {
      weights[i] =
          std::exp(static_cast<double>(row[candidates[i]] - mx) * inv_temp);
      total += weights[i];
    }
    double u = rng.next_double() * total;
    for (size_t i = 0; i < k; ++i) {
      u -= weights[i];
      if (u <= 0) return static_cast<TokenId>(candidates[i]);
    }
    return static_cast<TokenId>(candidates[k - 1]);
  }

  // All-tokens path: no candidate vector at all — max, total, and the
  // inverse-CDF walk are three passes over the logits row, recomputing the
  // exp in the third (identical bits: same input, same function).
  float mx = row[0];
  for (int64_t i = 1; i < vocab; ++i) mx = std::max(mx, row[i]);
  double total = 0;
  for (int64_t i = 0; i < vocab; ++i) {
    total += std::exp(static_cast<double>(row[i] - mx) * inv_temp);
  }
  double u = rng.next_double() * total;
  for (int64_t i = 0; i < vocab; ++i) {
    u -= std::exp(static_cast<double>(row[i] - mx) * inv_temp);
    if (u <= 0) return static_cast<TokenId>(i);
  }
  return static_cast<TokenId>(vocab - 1);
}

namespace {

// Index of the matched stop sequence whose tokens form a suffix of `out`,
// or -1.
int matched_stop_sequence(const std::vector<TokenId>& out,
                          const GenerateOptions& options) {
  for (size_t s = 0; s < options.stop_sequences.size(); ++s) {
    const auto& seq = options.stop_sequences[s];
    if (seq.empty() || seq.size() > out.size()) continue;
    if (std::equal(seq.begin(), seq.end(), out.end() - seq.size())) {
      return static_cast<int>(s);
    }
  }
  return -1;
}

}  // namespace

template <typename CacheT>
Model::GenerateOutput Model::generate_impl(
    const Tensor& last_logits, int next_pos, CacheT& cache,
    const GenerateOptions& options) const {
  GenerateOutput out;
  out.finish_reason = FinishReason::kLength;
  Rng rng(options.seed);
  TokenId next = sample_token(last_logits, options, rng);
  for (int step = 0; step < options.max_new_tokens; ++step) {
    bool stop = false;
    for (TokenId s : options.stop_tokens) {
      if (next == s) {
        stop = true;
        break;
      }
    }
    if (stop) {
      out.finish_reason = FinishReason::kStopToken;
      break;
    }
    out.tokens.push_back(next);
    const int hit = matched_stop_sequence(out.tokens, options);
    if (hit >= 0) {
      out.tokens.resize(
          out.tokens.size() -
          options.stop_sequences[static_cast<size_t>(hit)].size());
      out.finish_reason = FinishReason::kStopSequence;
      break;
    }
    if (step + 1 == options.max_new_tokens) break;  // kLength
    const int pos = next_pos + step;
    if (pos >= config_.max_pos) {
      out.finish_reason = FinishReason::kPositionBudget;
      break;
    }
    if (options.cancel.expired()) {
      out.finish_reason = FinishReason::kCancelled;
      break;
    }
    PC_SPAN("decode_token", {"pos", pos});
    const TokenId input = next;
    const Tensor logits = forward({&input, 1}, {&pos, 1}, cache);
    next = sample_token(logits, options, rng);
  }
  return out;
}

}  // namespace pc
