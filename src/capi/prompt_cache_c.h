/* C API for embedding Prompt Cache from other languages.
 *
 * A deliberately small surface: create an engine over one of the built-in
 * demo models, load schemas, serve prompts, read timing, persist modules.
 * All functions are non-throwing; failures return NULL / negative values
 * and the message is retrievable with pc_last_error(). Strings returned by
 * the API are malloc'd and owned by the caller (free with pc_string_free).
 *
 * Thread-affinity follows the C++ engine: one pc_engine per thread.
 */
#ifndef PC_PROMPT_CACHE_C_H_
#define PC_PROMPT_CACHE_C_H_

#include <stddef.h>

#ifdef __cplusplus
extern "C" {
#endif

typedef struct pc_engine pc_engine;

/* Outcome taxonomy for a serve call (mirrors pc::ServeStatus). Statuses
 * PC_SERVE_OK and PC_SERVE_DEGRADED return generated text; the others do
 * not (the serve functions return -1 and pc_last_error() has the cause). */
typedef enum pc_serve_status {
  PC_SERVE_OK = 0,       /* served from the cache path */
  PC_SERVE_DEGRADED = 1, /* full-prefill fallback: same text, slower TTFT */
  PC_SERVE_TIMEOUT = 2,  /* deadline expired mid-service */
  PC_SERVE_FAILED = 3,   /* non-transient, non-degradable error */
} pc_serve_status;

typedef struct pc_serve_result {
  char* text;           /* generated text (caller frees via pc_string_free) */
  double ttft_ms;       /* retrieve + uncached compute */
  double retrieve_ms;   /* module memcpy share */
  int cached_tokens;    /* tokens restored from cache */
  int uncached_tokens;  /* tokens computed at serve time */
  int status;           /* pc_serve_status for this serve */
} pc_serve_result;

/* Model families for the demo engine. */
typedef enum pc_model_family {
  PC_MODEL_LLAMA_TINY = 0,   /* RMSNorm + RoPE + SwiGLU, GQA */
  PC_MODEL_MPT_TINY = 1,     /* LayerNorm + ALiBi */
  PC_MODEL_FALCON_TINY = 2,  /* parallel block + RoPE, MQA */
  PC_MODEL_GPT2_TINY = 3,    /* learned positions */
} pc_model_family;

/* Creates an engine over a random-weight model of the given family and the
 * built-in English vocabulary. zero_copy enables borrow-based serving.
 * Returns NULL on failure. */
pc_engine* pc_engine_create(pc_model_family family, unsigned long long seed,
                            int zero_copy);
void pc_engine_destroy(pc_engine* engine);

/* Loads (or replaces) a PML schema; its modules are encoded eagerly.
 * Returns 0 on success, -1 on failure. */
int pc_load_schema(pc_engine* engine, const char* schema_pml);

/* Serves a PML prompt with greedy decoding of up to max_new_tokens.
 * Returns 0 and fills *out on success, -1 on failure. */
int pc_serve(pc_engine* engine, const char* prompt_pml, int max_new_tokens,
             pc_serve_result* out);

/* Same content as one contiguous prefill (the paper's baseline). */
int pc_serve_baseline(pc_engine* engine, const char* prompt_pml,
                      int max_new_tokens, pc_serve_result* out);

/* Fault-tolerant serve. deadline_ms > 0 enforces a wall-clock deadline
 * (checked before every module encode and decoded token); 0 disables it.
 * Transient cache failures degrade to a full blocked prefill — identical
 * text, slower TTFT, out->status == PC_SERVE_DEGRADED. Returns 0 when text
 * was produced (PC_SERVE_OK or PC_SERVE_DEGRADED), -1 otherwise with
 * out->status set to PC_SERVE_TIMEOUT or PC_SERVE_FAILED. */
int pc_serve_deadline(pc_engine* engine, const char* prompt_pml,
                      int max_new_tokens, double deadline_ms,
                      pc_serve_result* out);

/* Module persistence. Return the number of records, or -1 on failure. */
long pc_save_modules(pc_engine* engine, const char* path);
long pc_load_modules(pc_engine* engine, const char* path);

/* Like pc_load_modules, but skips corrupt or truncated records instead of
 * failing the whole load. Returns the number of records loaded (and stores
 * the number skipped into *skipped when non-NULL), or -1 on failure. */
long pc_load_modules_recover(pc_engine* engine, const char* path,
                             long* skipped);

/* Thread-local message for the most recent failure ("" if none). The
 * returned pointer is valid until the next API call on this thread. */
const char* pc_last_error(void);

void pc_string_free(char* s);

#ifdef __cplusplus
}
#endif

#endif /* PC_PROMPT_CACHE_C_H_ */
