#include "capi/prompt_cache_c.h"

#include <cstdlib>
#include <cstring>
#include <string>

#include "core/engine.h"

namespace {

thread_local std::string g_last_error;

char* dup_string(const std::string& s) {
  char* out = static_cast<char*>(std::malloc(s.size() + 1));
  if (out != nullptr) std::memcpy(out, s.c_str(), s.size() + 1);
  return out;
}

template <typename Fn>
int guarded(Fn&& fn) {
  try {
    fn();
    g_last_error.clear();
    return 0;
  } catch (const std::exception& e) {
    g_last_error = e.what();
    return -1;
  } catch (...) {
    g_last_error = "unknown error";
    return -1;
  }
}

}  // namespace

// The opaque handle owns the whole stack: vocabulary-backed tokenizer,
// model, engine (which hold references into the handle).
struct pc_engine {
  pc::Tokenizer tokenizer;
  pc::Model model;
  pc::PromptCacheEngine engine;

  pc_engine(pc::ModelConfig config, unsigned long long seed,
            pc::EngineConfig engine_config)
      : tokenizer(pc::Vocab::basic_english()),
        model(pc::Model::random(config, seed)),
        engine(model, tokenizer, engine_config) {}
};

extern "C" {

pc_engine* pc_engine_create(pc_model_family family, unsigned long long seed,
                            int zero_copy) {
  pc_engine* out = nullptr;
  const int rc = guarded([&] {
    const int vocab = pc::Vocab::basic_english().size();
    pc::ModelConfig config;
    switch (family) {
      case PC_MODEL_LLAMA_TINY:
        config = pc::ModelConfig::llama_tiny(vocab);
        break;
      case PC_MODEL_MPT_TINY:
        config = pc::ModelConfig::mpt_tiny(vocab);
        break;
      case PC_MODEL_FALCON_TINY:
        config = pc::ModelConfig::falcon_tiny(vocab);
        break;
      case PC_MODEL_GPT2_TINY:
        config = pc::ModelConfig::gpt2_tiny(vocab);
        break;
      default:
        throw pc::Error("unknown model family");
    }
    pc::EngineConfig engine_config;
    engine_config.zero_copy = zero_copy != 0;
    out = new pc_engine(std::move(config), seed, engine_config);
  });
  return rc == 0 ? out : nullptr;
}

void pc_engine_destroy(pc_engine* engine) { delete engine; }

int pc_load_schema(pc_engine* engine, const char* schema_pml) {
  if (engine == nullptr || schema_pml == nullptr) {
    g_last_error = "null argument";
    return -1;
  }
  return guarded([&] { engine->engine.load_schema(schema_pml); });
}

namespace {

void fill_result(pc_serve_result* out, const pc::ServeResult& r,
                 pc_serve_status status) {
  out->text = dup_string(r.text);
  out->ttft_ms = r.ttft.total_ms();
  out->retrieve_ms = r.ttft.retrieve_ms;
  out->cached_tokens = r.ttft.cached_tokens;
  out->uncached_tokens = r.ttft.uncached_tokens;
  out->status = status;
}

int serve_impl(pc_engine* engine, const char* prompt_pml, int max_new_tokens,
               pc_serve_result* out, bool baseline) {
  if (engine == nullptr || prompt_pml == nullptr || out == nullptr) {
    g_last_error = "null argument";
    return -1;
  }
  const int rc = guarded([&] {
    pc::GenerateOptions options;
    options.max_new_tokens = max_new_tokens;
    const pc::ServeResult r =
        baseline ? engine->engine.serve_baseline(prompt_pml, options)
                 : engine->engine.serve(prompt_pml, options);
    fill_result(out, r, PC_SERVE_OK);
  });
  if (rc != 0) out->status = PC_SERVE_FAILED;
  return rc;
}

}  // namespace

int pc_serve(pc_engine* engine, const char* prompt_pml, int max_new_tokens,
             pc_serve_result* out) {
  return serve_impl(engine, prompt_pml, max_new_tokens, out, false);
}

int pc_serve_baseline(pc_engine* engine, const char* prompt_pml,
                      int max_new_tokens, pc_serve_result* out) {
  return serve_impl(engine, prompt_pml, max_new_tokens, out, true);
}

int pc_serve_deadline(pc_engine* engine, const char* prompt_pml,
                      int max_new_tokens, double deadline_ms,
                      pc_serve_result* out) {
  if (engine == nullptr || prompt_pml == nullptr || out == nullptr) {
    g_last_error = "null argument";
    return -1;
  }
  out->status = PC_SERVE_FAILED;
  return guarded([&] {
    pc::GenerateOptions options;
    options.max_new_tokens = max_new_tokens;
    if (deadline_ms > 0) {
      options.cancel = pc::CancellationToken::after_ms(deadline_ms);
    }
    try {
      const pc::ServeResult r = engine->engine.serve(prompt_pml, options);
      fill_result(out, r, PC_SERVE_OK);
      return;
    } catch (const pc::CancelledError&) {
      engine->engine.release_borrowed_pins();
      out->status = PC_SERVE_TIMEOUT;
      throw;
    } catch (const pc::TransientError&) {
      engine->engine.release_borrowed_pins();
    } catch (const pc::CacheError&) {
      engine->engine.release_borrowed_pins();
    }
    // Degrade: re-serve as one full blocked prefill — identical text,
    // degraded TTFT (see PromptCacheEngine::serve_full_prefill).
    try {
      const pc::ServeResult r =
          engine->engine.serve_full_prefill(prompt_pml, options);
      fill_result(out, r, PC_SERVE_DEGRADED);
    } catch (const pc::CancelledError&) {
      out->status = PC_SERVE_TIMEOUT;
      throw;
    }
  });
}

long pc_save_modules(pc_engine* engine, const char* path) {
  if (engine == nullptr || path == nullptr) {
    g_last_error = "null argument";
    return -1;
  }
  long count = -1;
  const int rc = guarded(
      [&] { count = static_cast<long>(engine->engine.save_modules(path)); });
  return rc == 0 ? count : -1;
}

long pc_load_modules(pc_engine* engine, const char* path) {
  if (engine == nullptr || path == nullptr) {
    g_last_error = "null argument";
    return -1;
  }
  long count = -1;
  const int rc = guarded(
      [&] { count = static_cast<long>(engine->engine.load_modules(path)); });
  return rc == 0 ? count : -1;
}

long pc_load_modules_recover(pc_engine* engine, const char* path,
                             long* skipped) {
  if (engine == nullptr || path == nullptr) {
    g_last_error = "null argument";
    return -1;
  }
  long count = -1;
  const int rc = guarded([&] {
    const pc::PromptCacheEngine::LoadReport report =
        engine->engine.load_modules(path,
                                    pc::PromptCacheEngine::LoadPolicy::kSkipCorrupt);
    count = static_cast<long>(report.loaded);
    if (skipped != nullptr) *skipped = static_cast<long>(report.skipped);
  });
  return rc == 0 ? count : -1;
}

const char* pc_last_error(void) { return g_last_error.c_str(); }

void pc_string_free(char* s) { std::free(s); }

}  // extern "C"
