// A minimal dense tensor: contiguous, row-major, fp32.
//
// The inference engine only ever needs contiguous fp32 buffers with explicit
// shapes; views and broadcasting are intentionally out of scope (Core
// Guidelines P.11 — keep the messy indexing encapsulated in the kernels that
// need it). Half-precision storage for cached attention states lives in
// tensor/fp16.h.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <numeric>
#include <span>
#include <string>
#include <vector>

#include "common/error.h"

namespace pc {

class Tensor {
 public:
  Tensor() = default;

  explicit Tensor(std::vector<int64_t> shape) : shape_(std::move(shape)) {
    data_.assign(checked_numel(shape_), 0.0f);
  }

  Tensor(std::initializer_list<int64_t> shape)
      : Tensor(std::vector<int64_t>(shape)) {}

  static Tensor zeros(std::vector<int64_t> shape) {
    return Tensor(std::move(shape));
  }

  static Tensor full(std::vector<int64_t> shape, float value) {
    Tensor t(std::move(shape));
    for (auto& x : t.data_) x = value;
    return t;
  }

  static Tensor from(std::vector<float> data, std::vector<int64_t> shape) {
    PC_CHECK_MSG(data.size() == checked_numel(shape),
                 "data size " << data.size() << " != shape numel");
    Tensor t;
    t.shape_ = std::move(shape);
    t.data_ = std::move(data);
    return t;
  }

  bool empty() const { return data_.empty(); }
  size_t numel() const { return data_.size(); }
  size_t ndim() const { return shape_.size(); }
  const std::vector<int64_t>& shape() const { return shape_; }

  int64_t dim(size_t i) const {
    PC_CHECK(i < shape_.size());
    return shape_[i];
  }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  std::span<float> span() { return {data_.data(), data_.size()}; }
  std::span<const float> span() const { return {data_.data(), data_.size()}; }

  float& at(int64_t i) {
    PC_CHECK(ndim() == 1);
    return data_[checked_index(i, shape_[0])];
  }
  float at(int64_t i) const { return const_cast<Tensor*>(this)->at(i); }

  float& at(int64_t i, int64_t j) {
    PC_CHECK(ndim() == 2);
    return data_[checked_index(i, shape_[0]) * shape_[1] +
                 checked_index(j, shape_[1])];
  }
  float at(int64_t i, int64_t j) const {
    return const_cast<Tensor*>(this)->at(i, j);
  }

  float& at(int64_t i, int64_t j, int64_t k) {
    PC_CHECK(ndim() == 3);
    return data_[(checked_index(i, shape_[0]) * shape_[1] +
                  checked_index(j, shape_[1])) *
                     shape_[2] +
                 checked_index(k, shape_[2])];
  }
  float at(int64_t i, int64_t j, int64_t k) const {
    return const_cast<Tensor*>(this)->at(i, j, k);
  }

  // Pointer to row i of a 2-D tensor.
  float* row(int64_t i) {
    PC_CHECK(ndim() == 2);
    return data_.data() + checked_index(i, shape_[0]) * shape_[1];
  }
  const float* row(int64_t i) const { return const_cast<Tensor*>(this)->row(i); }

  std::span<float> row_span(int64_t i) {
    return {row(i), static_cast<size_t>(shape_[1])};
  }
  std::span<const float> row_span(int64_t i) const {
    return {row(i), static_cast<size_t>(shape_[1])};
  }

  // Returns a tensor with the same data and a new shape (numel must match).
  Tensor reshaped(std::vector<int64_t> new_shape) const {
    PC_CHECK_MSG(checked_numel(new_shape) == numel(),
                 "reshape numel mismatch");
    Tensor t;
    t.shape_ = std::move(new_shape);
    t.data_ = data_;
    return t;
  }

  void fill(float value) {
    for (auto& x : data_) x = value;
  }

  size_t byte_size() const { return data_.size() * sizeof(float); }

  std::string shape_str() const {
    std::string s = "[";
    for (size_t i = 0; i < shape_.size(); ++i) {
      if (i) s += ", ";
      s += std::to_string(shape_[i]);
    }
    return s + "]";
  }

 private:
  static size_t checked_numel(const std::vector<int64_t>& shape) {
    size_t n = 1;
    for (int64_t d : shape) {
      PC_CHECK_MSG(d >= 0, "negative dimension");
      n *= static_cast<size_t>(d);
    }
    return n;
  }

  static int64_t checked_index(int64_t i, int64_t bound) {
    PC_CHECK_MSG(i >= 0 && i < bound,
                 "index " << i << " out of bound " << bound);
    return i;
  }

  std::vector<int64_t> shape_;
  std::vector<float> data_;
};

}  // namespace pc
