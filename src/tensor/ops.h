// Numeric kernels used by the transformer engine.
//
// Two layers of API: raw pointer kernels (hot paths inside attention where
// the head layout makes Tensor-shaped calls awkward) and Tensor-shaped
// wrappers with full shape checking. Matmuls parallelize over output rows
// via the global thread pool; the inner loops run through the vectorized
// primitives in tensor/simd.h (AVX2/SSE2/NEON with a scalar fallback).
#pragma once

#include <cstddef>
#include <cstdint>

#include "tensor/tensor.h"

namespace pc {

// ---- raw kernels -----------------------------------------------------------

// c[m,n] = a[m,k] * b[k,n]    (all row-major, c overwritten)
void gemm(const float* a, const float* b, float* c, size_t m, size_t k,
          size_t n);

// c[m,n] = a[m,k] * b[n,k]^T  (b stored transposed: n rows of length k)
void gemm_nt(const float* a, const float* b, float* c, size_t m, size_t k,
             size_t n);

float dot(const float* a, const float* b, size_t n);

// y += alpha * x
void axpy(float alpha, const float* x, float* y, size_t n);

// Numerically stable in-place softmax over row[0..n).
void softmax_inplace(float* row, size_t n);

// out = x * w / rms(x)  (RMSNorm, Llama-style)
void rmsnorm(const float* x, const float* w, float* out, size_t n, float eps);

// out = (x - mean) / std * w + b  (LayerNorm; b may be nullptr)
void layernorm(const float* x, const float* w, const float* b, float* out,
               size_t n, float eps);

// x *= sigmoid(x)
void silu_inplace(float* x, size_t n);

// tanh-approximation GELU
void gelu_inplace(float* x, size_t n);

// ---- fused attention -------------------------------------------------------
//
// One query head against a cached context: scores = scale * q·K^T (+ ALiBi
// bias, + mask), softmax, out = scores·V — fused so the scores never leave a
// caller-provided scratch row and the value mix starts immediately.
//
// Contract (shared by both variants):
//  * `q` points at the head's d_head query slice; `out` (d_head floats) is
//    overwritten.
//  * `masked`, when non-null, has n_ctx bytes; masked[j] != 0 forces score
//    -inf for slot j. Masked slots contribute an exact 0.0f to the softmax
//    sum (added in sequence order) and are skipped in the value mix, so the
//    result is bitwise identical to running the same kernel over only the
//    unmasked slots in the same order — the property docs/INTERNALS.md §2
//    relies on.
//  * `rel_pos`, when non-null, has n_ctx floats: rel_pos[j] = float(q_pos -
//    k_pos_j). The kernel adds `-alibi_slope * rel_pos[j]` to score j,
//    matching Alibi::bias() bit-for-bit. Pass nullptr for RoPE/learned
//    models (alibi_slope is then ignored).
//  * `scores` is caller scratch of at least n_ctx floats; on return it holds
//    the softmax weights (tests use this; the engine just reuses it).
//  * If every slot is masked the softmax is undefined; the kernel defines
//    the result as all-zero output and all-zero weights. The engine never
//    hits this (a token always attends to itself) but the kernel-level
//    contract must totalize it.
//
// Contiguous variant: K/V token rows live at k[j*row_stride], v[j*row_stride]
// (KVCache layout: row_stride == kv_dim, base pre-offset to the head).
void attn_fused_contig(const float* q, const float* k, const float* v,
                       size_t row_stride, size_t d_head, size_t n_ctx,
                       float scale, float alibi_slope, const float* rel_pos,
                       const uint8_t* masked, float* scores, float* out);

// Gathered variant for SegmentedKVCache: token row j lives at
// k_rows[j] + head_off (one pointer chase per row, dots still vectorized).
void attn_fused_gather(const float* q, const float* const* k_rows,
                       const float* const* v_rows, size_t head_off,
                       size_t d_head, size_t n_ctx, float scale,
                       float alibi_slope, const float* rel_pos,
                       const uint8_t* masked, float* scores, float* out);

// Mixed-format gathered variant for quantized (Q8_0) module rows. Slot j is
// quantized when k8_rows[j] != nullptr: its K/V rows are int8 at
// k8_rows[j] + head_off / v8_rows[j] + head_off with per-row scales
// k_scales[j] / v_scales[j] (scales cover the full kv_dim row, so any
// head's d_head subslice uses the same scale). Otherwise the slot is fp32
// and reads k_rows[j] + head_off / v_rows[j] + head_off as in
// attn_fused_gather. All five tables have n_ctx entries; entries of the
// other format may be null.
//
// q is quantized once per call (symmetric, max-abs/127) and scores for q8
// slots are computed entirely in the int8 domain:
//   score_j = float(sum_i q8[i] * k8[j][i]) * (scale * q_scale * k_scales[j])
// so no fp32 K/V row is ever materialized for quantized slots. The softmax
// and mix structure (sequence-order exp-sum, in-order value mix, all-masked
// => zeros) is identical to the fp32 kernels, so the masking contract above
// carries over. d_head must be <= 1024 (query quantization scratch).
void attn_fused_q8_gather(const float* q, const int8_t* const* k8_rows,
                          const int8_t* const* v8_rows, const float* k_scales,
                          const float* v_scales, const float* const* k_rows,
                          const float* const* v_rows, size_t head_off,
                          size_t d_head, size_t n_ctx, float scale,
                          float alibi_slope, const float* rel_pos,
                          const uint8_t* masked, float* scores, float* out);

// Mixed-format gathered variant for Q4_0 module rows — the sibling of
// attn_fused_q8_gather one format down. Slot j is quantized when
// k4_rows[j] != nullptr: its K/V rows are packed nibbles (kv/quant.h Q4_0
// layout, 16 bytes per 32-value block) and k4_scales[j] / v4_scales[j]
// point at the row's per-block fp32 scale arrays (POINTER tables — q4
// scales are per block, not per row like q8). Otherwise the slot is fp32
// and reads k_rows[j] + head_off / v_rows[j] + head_off. All seven tables
// have n_ctx entries; entries of the other format may be null.
//
// q is quantized to int8 once per call and q4 slots score block-wise in the
// integer domain (simd::dot_i4i8; per-block scale fixup, strictly
// sequential float block accumulation). head_off must be a multiple of 32
// so the head slice starts on a block boundary; a head slice that ends
// mid-block is exact anyway because the query padding is zero. Softmax and
// mix structure are identical to the fp32 kernels, so the masking contract
// and the all-fp32-tables bitwise-equality property carry over. d_head must
// be <= 1024.
void attn_fused_q4_gather(const float* q, const uint8_t* const* k4_rows,
                          const uint8_t* const* v4_rows,
                          const float* const* k4_scales,
                          const float* const* v4_scales,
                          const float* const* k_rows,
                          const float* const* v_rows, size_t head_off,
                          size_t d_head, size_t n_ctx, float scale,
                          float alibi_slope, const float* rel_pos,
                          const uint8_t* masked, float* scores, float* out);

// ---- Tensor wrappers -------------------------------------------------------

// out[m,n] = a[m,k] * b[k,n]
Tensor matmul(const Tensor& a, const Tensor& b);

// out[m,n] = a[m,k] * b_t[n,k]^T — the natural call for y = x * W^T with
// weights stored [out_features, in_features].
Tensor matmul_nt(const Tensor& a, const Tensor& b_t);

// a += b (same shape)
void add_inplace(Tensor& a, const Tensor& b);

// a *= s
void scale_inplace(Tensor& a, float s);

// Elementwise a *= b (same shape)
void mul_inplace(Tensor& a, const Tensor& b);

// Max-abs difference between two same-shaped tensors (test helper).
float max_abs_diff(const Tensor& a, const Tensor& b);

}  // namespace pc
