// Numeric kernels used by the transformer engine.
//
// Two layers of API: raw pointer kernels (hot paths inside attention where
// the head layout makes Tensor-shaped calls awkward) and Tensor-shaped
// wrappers with full shape checking. Matmuls parallelize over output rows
// via the global thread pool.
#pragma once

#include <cstddef>

#include "tensor/tensor.h"

namespace pc {

// ---- raw kernels -----------------------------------------------------------

// c[m,n] = a[m,k] * b[k,n]    (all row-major, c overwritten)
void gemm(const float* a, const float* b, float* c, size_t m, size_t k,
          size_t n);

// c[m,n] = a[m,k] * b[n,k]^T  (b stored transposed: n rows of length k)
void gemm_nt(const float* a, const float* b, float* c, size_t m, size_t k,
             size_t n);

float dot(const float* a, const float* b, size_t n);

// y += alpha * x
void axpy(float alpha, const float* x, float* y, size_t n);

// Numerically stable in-place softmax over row[0..n).
void softmax_inplace(float* row, size_t n);

// out = x * w / rms(x)  (RMSNorm, Llama-style)
void rmsnorm(const float* x, const float* w, float* out, size_t n, float eps);

// out = (x - mean) / std * w + b  (LayerNorm; b may be nullptr)
void layernorm(const float* x, const float* w, const float* b, float* out,
               size_t n, float eps);

// x *= sigmoid(x)
void silu_inplace(float* x, size_t n);

// tanh-approximation GELU
void gelu_inplace(float* x, size_t n);

// ---- Tensor wrappers -------------------------------------------------------

// out[m,n] = a[m,k] * b[k,n]
Tensor matmul(const Tensor& a, const Tensor& b);

// out[m,n] = a[m,k] * b_t[n,k]^T — the natural call for y = x * W^T with
// weights stored [out_features, in_features].
Tensor matmul_nt(const Tensor& a, const Tensor& b_t);

// a += b (same shape)
void add_inplace(Tensor& a, const Tensor& b);

// a *= s
void scale_inplace(Tensor& a, float s);

// Elementwise a *= b (same shape)
void mul_inplace(Tensor& a, const Tensor& b);

// Max-abs difference between two same-shaped tensors (test helper).
float max_abs_diff(const Tensor& a, const Tensor& b);

}  // namespace pc
