#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/thread_pool.h"
#include "tensor/simd.h"

namespace pc {

namespace {

// Total elements-of-work below which a matmul is not worth shipping to the
// pool: queue/wake latency (~microseconds) dwarfs the compute. The check is
// work-size-aware (m*k*n), not row-count-aware, so a tall-skinny or decode
// (m=1) matmul never pays pool latency.
constexpr size_t kParallelWorkThreshold = size_t{1} << 18;

void for_rows(size_t m, size_t work_per_row,
              const std::function<void(size_t, size_t)>& fn) {
  if (m < 2 || m * work_per_row < kParallelWorkThreshold ||
      ThreadPool::global().size() <= 1) {
    fn(0, m);
  } else {
    ThreadPool::global().parallel_for(m, fn);
  }
}

// Cache-blocking parameters. gemm streams B in l-blocks of KC rows so a
// block (KC * n floats) stays resident across the rows of the worker's
// range; gemm_nt walks B-column panels of NC rows so a panel (NC * k
// floats) is reused across every A-row tile. Both are sized for a few
// hundred KB — comfortably L2 on anything this runs on.
constexpr size_t kGemmKC = 128;
constexpr size_t kGemmNtNC = 64;

}  // namespace

void gemm(const float* a, const float* b, float* c, size_t m, size_t k,
          size_t n) {
  for_rows(m, k * n, [&](size_t row_begin, size_t row_end) {
    for (size_t i = row_begin; i < row_end; ++i) {
      std::fill(c + i * n, c + i * n + n, 0.0f);
    }
    // l-blocked broadcast-FMA: per output element the accumulation order
    // over l is strictly sequential (store/reload between blocks is exact),
    // so blocking never changes bits. No per-element zero-skip branch: the
    // branch costs more than the multiply on any vector unit.
    for (size_t lb = 0; lb < k; lb += kGemmKC) {
      const size_t le = std::min(k, lb + kGemmKC);
      for (size_t i = row_begin; i < row_end; ++i) {
        const float* ai = a + i * k;
        float* ci = c + i * n;
        for (size_t l = lb; l < le; ++l) {
          simd::axpy(ai[l], b + l * n, ci, n);
        }
      }
    }
  });
}

void gemm_nt(const float* a, const float* b, float* c, size_t m, size_t k,
             size_t n) {
  for_rows(m, k * n, [&](size_t row_begin, size_t row_end) {
    // Column panels of NC B-rows; within a panel, 2x4 register tiles (two
    // A rows x four B rows) so every loaded vector is reused across the
    // tile. Edge rows use the 1x4 tile and edge columns the plain dot —
    // both share the 2x4 tile's per-(row, column) accumulation order, so
    // the result for any output element is independent of m and of the
    // blocking (see simd.h).
    for (size_t jb = 0; jb < n; jb += kGemmNtNC) {
      const size_t je = std::min(n, jb + kGemmNtNC);
      size_t i = row_begin;
      for (; i + 2 <= row_end; i += 2) {
        const float* a0 = a + i * k;
        const float* a1 = a0 + k;
        float* c0 = c + i * n;
        float* c1 = c0 + n;
        size_t j = jb;
        for (; j + 4 <= je; j += 4) {
          simd::dot2x4(a0, a1, b + j * k, b + (j + 1) * k, b + (j + 2) * k,
                       b + (j + 3) * k, k, c0 + j, c1 + j);
        }
        for (; j < je; ++j) {
          c0[j] = simd::dot(a0, b + j * k, k);
          c1[j] = simd::dot(a1, b + j * k, k);
        }
      }
      for (; i < row_end; ++i) {
        const float* ai = a + i * k;
        float* ci = c + i * n;
        size_t j = jb;
        for (; j + 4 <= je; j += 4) {
          simd::dot4(ai, b + j * k, b + (j + 1) * k, b + (j + 2) * k,
                     b + (j + 3) * k, k, ci + j);
        }
        for (; j < je; ++j) ci[j] = simd::dot(ai, b + j * k, k);
      }
    }
  });
}

float dot(const float* a, const float* b, size_t n) {
  return simd::dot(a, b, n);
}

void axpy(float alpha, const float* x, float* y, size_t n) {
  simd::axpy(alpha, x, y, n);
}

void softmax_inplace(float* row, size_t n) {
  if (n == 0) return;
  // Max via vector lanes (exact for float max); the exp-sum stays strictly
  // sequential — lane-grouped accumulation would break the bitwise
  // equivalence between masked and compacted contexts that
  // docs/INTERNALS.md §2 proves (a masked slot must contribute an exact
  // +0.0f at its sequence position, nothing else may move).
  const float mx = simd::reduce_max(row, n);
  float sum = 0.0f;
  for (size_t i = 0; i < n; ++i) {
    row[i] = std::exp(row[i] - mx);
    sum += row[i];
  }
  simd::scale(row, 1.0f / sum, n);
}

void rmsnorm(const float* x, const float* w, float* out, size_t n, float eps) {
  const float ss = simd::reduce_sumsq(x, n);
  const float inv = 1.0f / std::sqrt(ss / static_cast<float>(n) + eps);
  for (size_t i = 0; i < n; ++i) out[i] = x[i] * inv * w[i];
}

void layernorm(const float* x, const float* w, const float* b, float* out,
               size_t n, float eps) {
  float mean = 0.0f;
  for (size_t i = 0; i < n; ++i) mean += x[i];
  mean /= static_cast<float>(n);
  float var = 0.0f;
  for (size_t i = 0; i < n; ++i) {
    const float d = x[i] - mean;
    var += d * d;
  }
  var /= static_cast<float>(n);
  const float inv = 1.0f / std::sqrt(var + eps);
  for (size_t i = 0; i < n; ++i) {
    out[i] = (x[i] - mean) * inv * w[i] + (b ? b[i] : 0.0f);
  }
}

void silu_inplace(float* x, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    x[i] = x[i] / (1.0f + std::exp(-x[i]));
  }
}

void gelu_inplace(float* x, size_t n) {
  constexpr float kSqrt2OverPi = 0.7978845608028654f;
  for (size_t i = 0; i < n; ++i) {
    const float v = x[i];
    x[i] = 0.5f * v *
           (1.0f + std::tanh(kSqrt2OverPi * (v + 0.044715f * v * v * v)));
  }
}

// ---- fused attention -------------------------------------------------------

namespace {

// Shared body of the two attention variants; KRow/VRow map a context slot
// index to its d_head-long row. The score pass, the strictly sequential
// exp-sum, and the in-order value mix together give the bitwise-equality
// contract documented in ops.h.
template <typename KRow, typename VRow>
inline void attn_fused_impl(const float* q, KRow k_of, VRow v_of,
                            size_t d_head, size_t n_ctx, float scale,
                            float alibi_slope, const float* rel_pos,
                            const uint8_t* masked, float* scores, float* out) {
  constexpr float kNegInf = -std::numeric_limits<float>::infinity();
  if (n_ctx == 0) {
    std::fill(out, out + d_head, 0.0f);
    return;
  }
  for (size_t j = 0; j < n_ctx; ++j) {
    if (masked != nullptr && masked[j] != 0) {
      scores[j] = kNegInf;
      continue;
    }
    float s = simd::dot(q, k_of(j), d_head) * scale;
    if (rel_pos != nullptr) s += -alibi_slope * rel_pos[j];
    scores[j] = s;
  }
  const float mx = simd::reduce_max(scores, n_ctx);
  if (mx == kNegInf) {  // every slot masked: defined as the zero mix
    std::fill(scores, scores + n_ctx, 0.0f);
    std::fill(out, out + d_head, 0.0f);
    return;
  }
  float sum = 0.0f;
  for (size_t j = 0; j < n_ctx; ++j) {
    scores[j] = std::exp(scores[j] - mx);  // masked: exp(-inf) == +0.0f
    sum += scores[j];
  }
  simd::scale(scores, 1.0f / sum, n_ctx);
  std::fill(out, out + d_head, 0.0f);
  for (size_t j = 0; j < n_ctx; ++j) {
    const float w = scores[j];
    if (w == 0.0f) continue;  // masked or underflowed — identical either way
    simd::axpy(w, v_of(j), out, d_head);
  }
}

}  // namespace

void attn_fused_contig(const float* q, const float* k, const float* v,
                       size_t row_stride, size_t d_head, size_t n_ctx,
                       float scale, float alibi_slope, const float* rel_pos,
                       const uint8_t* masked, float* scores, float* out) {
  attn_fused_impl(
      q, [=](size_t j) { return k + j * row_stride; },
      [=](size_t j) { return v + j * row_stride; }, d_head, n_ctx, scale,
      alibi_slope, rel_pos, masked, scores, out);
}

void attn_fused_gather(const float* q, const float* const* k_rows,
                       const float* const* v_rows, size_t head_off,
                       size_t d_head, size_t n_ctx, float scale,
                       float alibi_slope, const float* rel_pos,
                       const uint8_t* masked, float* scores, float* out) {
  attn_fused_impl(
      q, [=](size_t j) { return k_rows[j] + head_off; },
      [=](size_t j) { return v_rows[j] + head_off; }, d_head, n_ctx, scale,
      alibi_slope, rel_pos, masked, scores, out);
}

void attn_fused_q8_gather(const float* q, const int8_t* const* k8_rows,
                          const int8_t* const* v8_rows, const float* k_scales,
                          const float* v_scales, const float* const* k_rows,
                          const float* const* v_rows, size_t head_off,
                          size_t d_head, size_t n_ctx, float scale,
                          float alibi_slope, const float* rel_pos,
                          const uint8_t* masked, float* scores, float* out) {
  constexpr float kNegInf = -std::numeric_limits<float>::infinity();
  constexpr size_t kMaxDHead = 1024;
  PC_CHECK_MSG(d_head <= kMaxDHead, "attn_fused_q8_gather: d_head too large");
  if (n_ctx == 0) {
    std::fill(out, out + d_head, 0.0f);
    return;
  }
  // Quantize the query head slice once; its error is shared by every q8
  // score of this call, so relative score order within the module is driven
  // by the per-row K scales alone.
  int8_t q8[kMaxDHead];
  const float q_max = simd::reduce_max_abs(q, d_head);
  const float q_scale = q_max > 0.0f ? q_max / 127.0f : 1.0f;
  simd::quantize_i8(q, 1.0f / q_scale, q8, d_head);
  const float fix = scale * q_scale;  // per-slot fixup is fix * k_scales[j]
  for (size_t j = 0; j < n_ctx; ++j) {
    if (masked != nullptr && masked[j] != 0) {
      scores[j] = kNegInf;
      continue;
    }
    float s;
    if (k8_rows[j] != nullptr) {
      const int32_t d = simd::dot_i8(q8, k8_rows[j] + head_off, d_head);
      s = static_cast<float>(d) * (fix * k_scales[j]);
    } else {
      s = simd::dot(q, k_rows[j] + head_off, d_head) * scale;
    }
    if (rel_pos != nullptr) s += -alibi_slope * rel_pos[j];
    scores[j] = s;
  }
  const float mx = simd::reduce_max(scores, n_ctx);
  if (mx == kNegInf) {
    std::fill(scores, scores + n_ctx, 0.0f);
    std::fill(out, out + d_head, 0.0f);
    return;
  }
  float sum = 0.0f;
  for (size_t j = 0; j < n_ctx; ++j) {
    scores[j] = std::exp(scores[j] - mx);
    sum += scores[j];
  }
  simd::scale(scores, 1.0f / sum, n_ctx);
  std::fill(out, out + d_head, 0.0f);
  for (size_t j = 0; j < n_ctx; ++j) {
    const float w = scores[j];
    if (w == 0.0f) continue;
    if (v8_rows[j] != nullptr) {
      simd::axpy_i8(w * v_scales[j], v8_rows[j] + head_off, out, d_head);
    } else {
      simd::axpy(w, v_rows[j] + head_off, out, d_head);
    }
  }
}

void attn_fused_q4_gather(const float* q, const uint8_t* const* k4_rows,
                          const uint8_t* const* v4_rows,
                          const float* const* k4_scales,
                          const float* const* v4_scales,
                          const float* const* k_rows,
                          const float* const* v_rows, size_t head_off,
                          size_t d_head, size_t n_ctx, float scale,
                          float alibi_slope, const float* rel_pos,
                          const uint8_t* masked, float* scores, float* out) {
  constexpr float kNegInf = -std::numeric_limits<float>::infinity();
  constexpr size_t kMaxDHead = 1024;
  PC_CHECK_MSG(d_head <= kMaxDHead, "attn_fused_q4_gather: d_head too large");
  PC_CHECK_MSG(head_off % 32 == 0,
               "attn_fused_q4_gather: head_off must be 32-aligned (Q4_0 "
               "blocks); models with d_head % 32 != 0 and n_kv_heads > 1 "
               "cannot serve q4");
  if (n_ctx == 0) {
    std::fill(out, out + d_head, 0.0f);
    return;
  }
  // Quantize the query head slice once (same scheme as the q8 kernel) and
  // zero-pad it to a whole number of blocks: padded query lanes multiply
  // whatever nibbles sit past d_head, contributing exactly 0 to both the
  // nibble products and the block sums, so a head slice ending mid-block
  // stays exact.
  const size_t n_blocks = (d_head + 31) / 32;
  const size_t blk_off = head_off / 32;       // block index of the slice
  const size_t byte_off = blk_off * 16;       // packed bytes per block
  int8_t q8[kMaxDHead + 32];
  const float q_max = simd::reduce_max_abs(q, d_head);
  const float q_scale = q_max > 0.0f ? q_max / 127.0f : 1.0f;
  simd::quantize_i8(q, 1.0f / q_scale, q8, d_head);
  std::fill(q8 + d_head, q8 + n_blocks * 32, static_cast<int8_t>(0));
  int32_t q_sums[(kMaxDHead + 31) / 32 + 1];
  for (size_t b = 0; b < n_blocks; ++b) {
    int32_t s = 0;
    for (size_t i = 0; i < 32; ++i) s += q8[b * 32 + i];
    q_sums[b] = s;
  }
  const float fix = scale * q_scale;
  for (size_t j = 0; j < n_ctx; ++j) {
    if (masked != nullptr && masked[j] != 0) {
      scores[j] = kNegInf;
      continue;
    }
    float s;
    if (k4_rows[j] != nullptr) {
      s = simd::dot_i4i8(q8, k4_rows[j] + byte_off, k4_scales[j] + blk_off,
                         q_sums, n_blocks) *
          fix;
    } else {
      s = simd::dot(q, k_rows[j] + head_off, d_head) * scale;
    }
    if (rel_pos != nullptr) s += -alibi_slope * rel_pos[j];
    scores[j] = s;
  }
  const float mx = simd::reduce_max(scores, n_ctx);
  if (mx == kNegInf) {
    std::fill(scores, scores + n_ctx, 0.0f);
    std::fill(out, out + d_head, 0.0f);
    return;
  }
  float sum = 0.0f;
  for (size_t j = 0; j < n_ctx; ++j) {
    scores[j] = std::exp(scores[j] - mx);
    sum += scores[j];
  }
  simd::scale(scores, 1.0f / sum, n_ctx);
  std::fill(out, out + d_head, 0.0f);
  for (size_t j = 0; j < n_ctx; ++j) {
    const float w = scores[j];
    if (w == 0.0f) continue;
    if (v4_rows[j] != nullptr) {
      simd::axpy_i4(w, v4_rows[j] + byte_off, v4_scales[j] + blk_off, out,
                    d_head);
    } else {
      simd::axpy(w, v_rows[j] + head_off, out, d_head);
    }
  }
}

// ---- Tensor wrappers -------------------------------------------------------

Tensor matmul(const Tensor& a, const Tensor& b) {
  PC_CHECK_MSG(a.ndim() == 2 && b.ndim() == 2, "matmul needs 2-D tensors");
  PC_CHECK_MSG(a.dim(1) == b.dim(0), "matmul inner-dim mismatch: "
                                         << a.shape_str() << " x "
                                         << b.shape_str());
  Tensor out({a.dim(0), b.dim(1)});
  gemm(a.data(), b.data(), out.data(), static_cast<size_t>(a.dim(0)),
       static_cast<size_t>(a.dim(1)), static_cast<size_t>(b.dim(1)));
  return out;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b_t) {
  PC_CHECK_MSG(a.ndim() == 2 && b_t.ndim() == 2, "matmul_nt needs 2-D tensors");
  PC_CHECK_MSG(a.dim(1) == b_t.dim(1), "matmul_nt inner-dim mismatch: "
                                           << a.shape_str() << " x "
                                           << b_t.shape_str() << "^T");
  Tensor out({a.dim(0), b_t.dim(0)});
  gemm_nt(a.data(), b_t.data(), out.data(), static_cast<size_t>(a.dim(0)),
          static_cast<size_t>(a.dim(1)), static_cast<size_t>(b_t.dim(0)));
  return out;
}

namespace {

// Elementwise ops parallelize only when the tensor is large enough to
// amortize pool wakeup; lane or chunk splitting is safe here because every
// output element depends on its own inputs alone.
constexpr size_t kElementwiseParallelThreshold = size_t{1} << 17;

void for_span(size_t n, const std::function<void(size_t, size_t)>& fn) {
  if (n < kElementwiseParallelThreshold || ThreadPool::global().size() <= 1) {
    fn(0, n);
  } else {
    ThreadPool::global().parallel_for(n, fn);
  }
}

}  // namespace

void add_inplace(Tensor& a, const Tensor& b) {
  PC_CHECK_MSG(a.shape() == b.shape(), "add_inplace shape mismatch");
  float* pa = a.data();
  const float* pb = b.data();
  for_span(a.numel(), [&](size_t begin, size_t end) {
    simd::add(pa + begin, pb + begin, end - begin);
  });
}

void scale_inplace(Tensor& a, float s) {
  float* pa = a.data();
  for_span(a.numel(), [&](size_t begin, size_t end) {
    simd::scale(pa + begin, s, end - begin);
  });
}

void mul_inplace(Tensor& a, const Tensor& b) {
  PC_CHECK_MSG(a.shape() == b.shape(), "mul_inplace shape mismatch");
  float* pa = a.data();
  const float* pb = b.data();
  for_span(a.numel(), [&](size_t begin, size_t end) {
    simd::mul(pa + begin, pb + begin, end - begin);
  });
}

float max_abs_diff(const Tensor& a, const Tensor& b) {
  PC_CHECK_MSG(a.shape() == b.shape(), "max_abs_diff shape mismatch");
  float mx = 0.0f;
  const float* pa = a.data();
  const float* pb = b.data();
  for (size_t i = 0; i < a.numel(); ++i) {
    mx = std::max(mx, std::abs(pa[i] - pb[i]));
  }
  return mx;
}

}  // namespace pc
