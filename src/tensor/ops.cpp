#include "tensor/ops.h"

#include <algorithm>
#include <cmath>

#include "common/thread_pool.h"

namespace pc {

namespace {

// Rows below this are not worth shipping to the pool.
constexpr size_t kParallelRowThreshold = 8;

void for_rows(size_t m, const std::function<void(size_t, size_t)>& fn) {
  if (m < kParallelRowThreshold || ThreadPool::global().size() <= 1) {
    fn(0, m);
  } else {
    ThreadPool::global().parallel_for(m, fn);
  }
}

}  // namespace

void gemm(const float* a, const float* b, float* c, size_t m, size_t k,
          size_t n) {
  for_rows(m, [&](size_t row_begin, size_t row_end) {
    for (size_t i = row_begin; i < row_end; ++i) {
      float* ci = c + i * n;
      std::fill(ci, ci + n, 0.0f);
      const float* ai = a + i * k;
      for (size_t l = 0; l < k; ++l) {
        const float av = ai[l];
        if (av == 0.0f) continue;  // structured-sparse weights are common here
        const float* bl = b + l * n;
        for (size_t j = 0; j < n; ++j) ci[j] += av * bl[j];
      }
    }
  });
}

void gemm_nt(const float* a, const float* b, float* c, size_t m, size_t k,
             size_t n) {
  for_rows(m, [&](size_t row_begin, size_t row_end) {
    for (size_t i = row_begin; i < row_end; ++i) {
      const float* ai = a + i * k;
      float* ci = c + i * n;
      // Process four output columns at a time to reuse the a-row in registers.
      size_t j = 0;
      for (; j + 4 <= n; j += 4) {
        const float* b0 = b + (j + 0) * k;
        const float* b1 = b + (j + 1) * k;
        const float* b2 = b + (j + 2) * k;
        const float* b3 = b + (j + 3) * k;
        float s0 = 0, s1 = 0, s2 = 0, s3 = 0;
        for (size_t l = 0; l < k; ++l) {
          const float av = ai[l];
          s0 += av * b0[l];
          s1 += av * b1[l];
          s2 += av * b2[l];
          s3 += av * b3[l];
        }
        ci[j + 0] = s0;
        ci[j + 1] = s1;
        ci[j + 2] = s2;
        ci[j + 3] = s3;
      }
      for (; j < n; ++j) ci[j] = dot(ai, b + j * k, k);
    }
  });
}

float dot(const float* a, const float* b, size_t n) {
  float s = 0.0f;
  for (size_t i = 0; i < n; ++i) s += a[i] * b[i];
  return s;
}

void axpy(float alpha, const float* x, float* y, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void softmax_inplace(float* row, size_t n) {
  if (n == 0) return;
  float mx = row[0];
  for (size_t i = 1; i < n; ++i) mx = std::max(mx, row[i]);
  float sum = 0.0f;
  for (size_t i = 0; i < n; ++i) {
    row[i] = std::exp(row[i] - mx);
    sum += row[i];
  }
  const float inv = 1.0f / sum;
  for (size_t i = 0; i < n; ++i) row[i] *= inv;
}

void rmsnorm(const float* x, const float* w, float* out, size_t n, float eps) {
  float ss = 0.0f;
  for (size_t i = 0; i < n; ++i) ss += x[i] * x[i];
  const float inv = 1.0f / std::sqrt(ss / static_cast<float>(n) + eps);
  for (size_t i = 0; i < n; ++i) out[i] = x[i] * inv * w[i];
}

void layernorm(const float* x, const float* w, const float* b, float* out,
               size_t n, float eps) {
  float mean = 0.0f;
  for (size_t i = 0; i < n; ++i) mean += x[i];
  mean /= static_cast<float>(n);
  float var = 0.0f;
  for (size_t i = 0; i < n; ++i) {
    const float d = x[i] - mean;
    var += d * d;
  }
  var /= static_cast<float>(n);
  const float inv = 1.0f / std::sqrt(var + eps);
  for (size_t i = 0; i < n; ++i) {
    out[i] = (x[i] - mean) * inv * w[i] + (b ? b[i] : 0.0f);
  }
}

void silu_inplace(float* x, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    x[i] = x[i] / (1.0f + std::exp(-x[i]));
  }
}

void gelu_inplace(float* x, size_t n) {
  constexpr float kSqrt2OverPi = 0.7978845608028654f;
  for (size_t i = 0; i < n; ++i) {
    const float v = x[i];
    x[i] = 0.5f * v *
           (1.0f + std::tanh(kSqrt2OverPi * (v + 0.044715f * v * v * v)));
  }
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  PC_CHECK_MSG(a.ndim() == 2 && b.ndim() == 2, "matmul needs 2-D tensors");
  PC_CHECK_MSG(a.dim(1) == b.dim(0), "matmul inner-dim mismatch: "
                                         << a.shape_str() << " x "
                                         << b.shape_str());
  Tensor out({a.dim(0), b.dim(1)});
  gemm(a.data(), b.data(), out.data(), static_cast<size_t>(a.dim(0)),
       static_cast<size_t>(a.dim(1)), static_cast<size_t>(b.dim(1)));
  return out;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b_t) {
  PC_CHECK_MSG(a.ndim() == 2 && b_t.ndim() == 2, "matmul_nt needs 2-D tensors");
  PC_CHECK_MSG(a.dim(1) == b_t.dim(1), "matmul_nt inner-dim mismatch: "
                                           << a.shape_str() << " x "
                                           << b_t.shape_str() << "^T");
  Tensor out({a.dim(0), b_t.dim(0)});
  gemm_nt(a.data(), b_t.data(), out.data(), static_cast<size_t>(a.dim(0)),
          static_cast<size_t>(a.dim(1)), static_cast<size_t>(b_t.dim(0)));
  return out;
}

void add_inplace(Tensor& a, const Tensor& b) {
  PC_CHECK_MSG(a.shape() == b.shape(), "add_inplace shape mismatch");
  float* pa = a.data();
  const float* pb = b.data();
  for (size_t i = 0; i < a.numel(); ++i) pa[i] += pb[i];
}

void scale_inplace(Tensor& a, float s) {
  for (float& x : a.span()) x *= s;
}

void mul_inplace(Tensor& a, const Tensor& b) {
  PC_CHECK_MSG(a.shape() == b.shape(), "mul_inplace shape mismatch");
  float* pa = a.data();
  const float* pb = b.data();
  for (size_t i = 0; i < a.numel(); ++i) pa[i] *= pb[i];
}

float max_abs_diff(const Tensor& a, const Tensor& b) {
  PC_CHECK_MSG(a.shape() == b.shape(), "max_abs_diff shape mismatch");
  float mx = 0.0f;
  const float* pa = a.data();
  const float* pb = b.data();
  for (size_t i = 0; i < a.numel(); ++i) {
    mx = std::max(mx, std::abs(pa[i] - pb[i]));
  }
  return mx;
}

}  // namespace pc
