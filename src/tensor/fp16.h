// Software IEEE-754 binary16 conversion, used for half-precision storage of
// cached attention states (the paper's memory-overhead analysis in Table 2
// assumes fp16 storage). Compute stays in fp32.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

namespace pc {

using f16 = uint16_t;

// fp32 -> fp16 with round-to-nearest-even; overflow saturates to +/-inf.
inline f16 float_to_half(float f) {
  uint32_t x;
  std::memcpy(&x, &f, sizeof(x));
  const uint32_t sign = (x >> 16) & 0x8000u;
  const int32_t exp = static_cast<int32_t>((x >> 23) & 0xffu) - 127 + 15;
  uint32_t mant = x & 0x7fffffu;

  if (((x >> 23) & 0xffu) == 0xffu) {  // inf / nan
    return static_cast<f16>(sign | 0x7c00u | (mant ? 0x200u : 0u));
  }
  if (exp >= 31) {  // overflow -> inf
    return static_cast<f16>(sign | 0x7c00u);
  }
  if (exp <= 0) {  // subnormal or zero
    if (exp < -10) return static_cast<f16>(sign);
    mant |= 0x800000u;
    const int shift = 14 - exp;
    uint32_t half_mant = mant >> shift;
    // round-to-nearest-even on the dropped bits
    const uint32_t rem = mant & ((1u << shift) - 1);
    const uint32_t halfway = 1u << (shift - 1);
    if (rem > halfway || (rem == halfway && (half_mant & 1u))) ++half_mant;
    return static_cast<f16>(sign | half_mant);
  }
  uint32_t half = sign | (static_cast<uint32_t>(exp) << 10) | (mant >> 13);
  const uint32_t rem = mant & 0x1fffu;
  if (rem > 0x1000u || (rem == 0x1000u && (half & 1u))) ++half;
  return static_cast<f16>(half);
}

inline float half_to_float(f16 h) {
  const uint32_t sign = (static_cast<uint32_t>(h) & 0x8000u) << 16;
  const uint32_t exp = (h >> 10) & 0x1fu;
  const uint32_t mant = h & 0x3ffu;
  uint32_t x;
  if (exp == 0) {
    if (mant == 0) {
      x = sign;
    } else {  // subnormal: normalize
      int e = -1;
      uint32_t m = mant;
      do {
        ++e;
        m <<= 1;
      } while ((m & 0x400u) == 0);
      x = sign | (static_cast<uint32_t>(127 - 15 - e) << 23) |
          ((m & 0x3ffu) << 13);
    }
  } else if (exp == 0x1f) {
    x = sign | 0x7f800000u | (mant << 13);
  } else {
    x = sign | ((exp - 15 + 127) << 23) | (mant << 13);
  }
  float f;
  std::memcpy(&f, &x, sizeof(f));
  return f;
}

inline std::vector<f16> to_half(std::span<const float> src) {
  std::vector<f16> out(src.size());
  for (size_t i = 0; i < src.size(); ++i) out[i] = float_to_half(src[i]);
  return out;
}

inline std::vector<float> to_float(std::span<const f16> src) {
  std::vector<float> out(src.size());
  for (size_t i = 0; i < src.size(); ++i) out[i] = half_to_float(src[i]);
  return out;
}

}  // namespace pc
