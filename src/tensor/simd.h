// Portable vectorized primitives for the tensor kernels.
//
// One scalar implementation (written so the compiler can vectorize the
// non-reduction loops) plus explicit intrinsic paths selected at compile
// time: AVX2(+FMA) > SSE2 > NEON > scalar. The reduction kernels (dot,
// reduce_*) cannot be auto-vectorized without -ffast-math because lane-wise
// accumulation reorders float additions, so the intrinsic paths are where
// all of the matmul/attention speedup comes from.
//
// Determinism contract (relied on by docs/INTERNALS.md and the bitwise
// equality tests): every function here is a pure function of its inputs —
// same pointers-contents and length always produce the same bits. Lane
// accumulation order is fixed per build, never data- or alignment-dependent:
// all loads are unaligned-safe and there is no runtime dispatch.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>

#if defined(__AVX2__)
#include <immintrin.h>
#define PC_SIMD_AVX2 1
#elif defined(__SSE2__) || defined(_M_X64) || \
    (defined(_M_IX86_FP) && _M_IX86_FP >= 2)
#include <emmintrin.h>
#define PC_SIMD_SSE2 1
#elif defined(__ARM_NEON) || defined(__ARM_NEON__)
#include <arm_neon.h>
#define PC_SIMD_NEON 1
#endif

namespace pc::simd {

// Name of the active instruction-set path (for bench/report banners).
inline const char* isa_name() {
#if defined(PC_SIMD_AVX2)
  return "avx2";
#elif defined(PC_SIMD_SSE2)
  return "sse2";
#elif defined(PC_SIMD_NEON)
  return "neon";
#else
  return "scalar";
#endif
}

// ---- dot --------------------------------------------------------------------

// sum_i a[i]*b[i]. Four independent accumulator chains hide FMA latency.
inline float dot(const float* a, const float* b, size_t n) {
#if defined(PC_SIMD_AVX2)
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  __m256 acc2 = _mm256_setzero_ps();
  __m256 acc3 = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
#if defined(__FMA__)
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 8),
                           _mm256_loadu_ps(b + i + 8), acc1);
    acc2 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 16),
                           _mm256_loadu_ps(b + i + 16), acc2);
    acc3 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 24),
                           _mm256_loadu_ps(b + i + 24), acc3);
#else
    acc0 = _mm256_add_ps(
        acc0, _mm256_mul_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
    acc1 = _mm256_add_ps(acc1, _mm256_mul_ps(_mm256_loadu_ps(a + i + 8),
                                             _mm256_loadu_ps(b + i + 8)));
    acc2 = _mm256_add_ps(acc2, _mm256_mul_ps(_mm256_loadu_ps(a + i + 16),
                                             _mm256_loadu_ps(b + i + 16)));
    acc3 = _mm256_add_ps(acc3, _mm256_mul_ps(_mm256_loadu_ps(a + i + 24),
                                             _mm256_loadu_ps(b + i + 24)));
#endif
  }
  for (; i + 8 <= n; i += 8) {
#if defined(__FMA__)
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
#else
    acc0 = _mm256_add_ps(
        acc0, _mm256_mul_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
#endif
  }
  acc0 = _mm256_add_ps(_mm256_add_ps(acc0, acc1), _mm256_add_ps(acc2, acc3));
  __m128 lo = _mm256_castps256_ps128(acc0);
  __m128 hi = _mm256_extractf128_ps(acc0, 1);
  lo = _mm_add_ps(lo, hi);
  lo = _mm_add_ps(lo, _mm_movehl_ps(lo, lo));
  lo = _mm_add_ss(lo, _mm_shuffle_ps(lo, lo, 1));
  float s = _mm_cvtss_f32(lo);
  for (; i < n; ++i) s += a[i] * b[i];
  return s;
#elif defined(PC_SIMD_SSE2)
  __m128 acc0 = _mm_setzero_ps();
  __m128 acc1 = _mm_setzero_ps();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm_add_ps(acc0,
                      _mm_mul_ps(_mm_loadu_ps(a + i), _mm_loadu_ps(b + i)));
    acc1 = _mm_add_ps(
        acc1, _mm_mul_ps(_mm_loadu_ps(a + i + 4), _mm_loadu_ps(b + i + 4)));
  }
  acc0 = _mm_add_ps(acc0, acc1);
  acc0 = _mm_add_ps(acc0, _mm_movehl_ps(acc0, acc0));
  acc0 = _mm_add_ss(acc0, _mm_shuffle_ps(acc0, acc0, 1));
  float s = _mm_cvtss_f32(acc0);
  for (; i < n; ++i) s += a[i] * b[i];
  return s;
#elif defined(PC_SIMD_NEON)
  float32x4_t acc0 = vdupq_n_f32(0.0f);
  float32x4_t acc1 = vdupq_n_f32(0.0f);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc0 = vmlaq_f32(acc0, vld1q_f32(a + i), vld1q_f32(b + i));
    acc1 = vmlaq_f32(acc1, vld1q_f32(a + i + 4), vld1q_f32(b + i + 4));
  }
  acc0 = vaddq_f32(acc0, acc1);
  float s = vaddvq_f32(acc0);
  for (; i < n; ++i) s += a[i] * b[i];
  return s;
#else
  float s = 0.0f;
  for (size_t i = 0; i < n; ++i) s += a[i] * b[i];
  return s;
#endif
}

// ---- matmul micro-kernels ---------------------------------------------------
//
// dot4 / dot2x4 are the register tiles of gemm_nt: one (or two) A rows
// against four B rows, accumulators held in registers so each loaded vector
// is reused across the tile. Per-column accumulation order is IDENTICAL
// between the two (one 8-lane chain per (row, column), then a scalar tail),
// so whether a row is computed by the 2x4 tile or the 1x4 edge tile cannot
// change its bits — matmul results depend only on (a_row, b_col, k), never
// on the batch size m. The scalar fallbacks preserve the same property by
// delegating per column to dot().

#if defined(PC_SIMD_AVX2)
namespace detail {
inline float hadd8(__m256 v) {
  __m128 lo = _mm_add_ps(_mm256_castps256_ps128(v),
                         _mm256_extractf128_ps(v, 1));
  lo = _mm_add_ps(lo, _mm_movehl_ps(lo, lo));
  lo = _mm_add_ss(lo, _mm_shuffle_ps(lo, lo, 1));
  return _mm_cvtss_f32(lo);
}
#if defined(__FMA__)
inline __m256 fma8(__m256 a, __m256 b, __m256 c) {
  return _mm256_fmadd_ps(a, b, c);
}
#else
inline __m256 fma8(__m256 a, __m256 b, __m256 c) {
  return _mm256_add_ps(c, _mm256_mul_ps(a, b));
}
#endif
}  // namespace detail
#endif

// out[c] = sum_l a[l] * bc[l] for the four B rows b0..b3.
inline void dot4(const float* a, const float* b0, const float* b1,
                 const float* b2, const float* b3, size_t n, float* out) {
#if defined(PC_SIMD_AVX2)
  __m256 c0 = _mm256_setzero_ps();
  __m256 c1 = _mm256_setzero_ps();
  __m256 c2 = _mm256_setzero_ps();
  __m256 c3 = _mm256_setzero_ps();
  size_t l = 0;
  for (; l + 8 <= n; l += 8) {
    const __m256 av = _mm256_loadu_ps(a + l);
    c0 = detail::fma8(av, _mm256_loadu_ps(b0 + l), c0);
    c1 = detail::fma8(av, _mm256_loadu_ps(b1 + l), c1);
    c2 = detail::fma8(av, _mm256_loadu_ps(b2 + l), c2);
    c3 = detail::fma8(av, _mm256_loadu_ps(b3 + l), c3);
  }
  float s0 = detail::hadd8(c0);
  float s1 = detail::hadd8(c1);
  float s2 = detail::hadd8(c2);
  float s3 = detail::hadd8(c3);
  for (; l < n; ++l) {
    const float av = a[l];
    s0 += av * b0[l];
    s1 += av * b1[l];
    s2 += av * b2[l];
    s3 += av * b3[l];
  }
  out[0] = s0;
  out[1] = s1;
  out[2] = s2;
  out[3] = s3;
#else
  // Scalar/SSE/NEON fallback: per-column dot keeps the order contract.
  out[0] = dot(a, b0, n);
  out[1] = dot(a, b1, n);
  out[2] = dot(a, b2, n);
  out[3] = dot(a, b3, n);
#endif
}

// Two A rows against four B rows: out_r[c] = sum_l ar[l] * bc[l].
inline void dot2x4(const float* a0, const float* a1, const float* b0,
                   const float* b1, const float* b2, const float* b3, size_t n,
                   float* out0, float* out1) {
#if defined(PC_SIMD_AVX2)
  __m256 c00 = _mm256_setzero_ps(), c01 = _mm256_setzero_ps();
  __m256 c02 = _mm256_setzero_ps(), c03 = _mm256_setzero_ps();
  __m256 c10 = _mm256_setzero_ps(), c11 = _mm256_setzero_ps();
  __m256 c12 = _mm256_setzero_ps(), c13 = _mm256_setzero_ps();
  size_t l = 0;
  for (; l + 8 <= n; l += 8) {
    const __m256 a0v = _mm256_loadu_ps(a0 + l);
    const __m256 a1v = _mm256_loadu_ps(a1 + l);
    const __m256 b0v = _mm256_loadu_ps(b0 + l);
    const __m256 b1v = _mm256_loadu_ps(b1 + l);
    const __m256 b2v = _mm256_loadu_ps(b2 + l);
    const __m256 b3v = _mm256_loadu_ps(b3 + l);
    c00 = detail::fma8(a0v, b0v, c00);
    c01 = detail::fma8(a0v, b1v, c01);
    c02 = detail::fma8(a0v, b2v, c02);
    c03 = detail::fma8(a0v, b3v, c03);
    c10 = detail::fma8(a1v, b0v, c10);
    c11 = detail::fma8(a1v, b1v, c11);
    c12 = detail::fma8(a1v, b2v, c12);
    c13 = detail::fma8(a1v, b3v, c13);
  }
  float s00 = detail::hadd8(c00), s01 = detail::hadd8(c01);
  float s02 = detail::hadd8(c02), s03 = detail::hadd8(c03);
  float s10 = detail::hadd8(c10), s11 = detail::hadd8(c11);
  float s12 = detail::hadd8(c12), s13 = detail::hadd8(c13);
  for (; l < n; ++l) {
    const float a0v = a0[l], a1v = a1[l];
    s00 += a0v * b0[l];
    s01 += a0v * b1[l];
    s02 += a0v * b2[l];
    s03 += a0v * b3[l];
    s10 += a1v * b0[l];
    s11 += a1v * b1[l];
    s12 += a1v * b2[l];
    s13 += a1v * b3[l];
  }
  out0[0] = s00;
  out0[1] = s01;
  out0[2] = s02;
  out0[3] = s03;
  out1[0] = s10;
  out1[1] = s11;
  out1[2] = s12;
  out1[3] = s13;
#else
  dot4(a0, b0, b1, b2, b3, n, out0);
  dot4(a1, b0, b1, b2, b3, n, out1);
#endif
}

// ---- axpy / elementwise -----------------------------------------------------

// y += alpha * x
inline void axpy(float alpha, const float* x, float* y, size_t n) {
#if defined(PC_SIMD_AVX2)
  const __m256 va = _mm256_set1_ps(alpha);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
#if defined(__FMA__)
    _mm256_storeu_ps(
        y + i, _mm256_fmadd_ps(va, _mm256_loadu_ps(x + i),
                               _mm256_loadu_ps(y + i)));
#else
    _mm256_storeu_ps(y + i,
                     _mm256_add_ps(_mm256_loadu_ps(y + i),
                                   _mm256_mul_ps(va, _mm256_loadu_ps(x + i))));
#endif
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
#elif defined(PC_SIMD_SSE2)
  const __m128 va = _mm_set1_ps(alpha);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm_storeu_ps(y + i, _mm_add_ps(_mm_loadu_ps(y + i),
                                    _mm_mul_ps(va, _mm_loadu_ps(x + i))));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
#elif defined(PC_SIMD_NEON)
  const float32x4_t va = vdupq_n_f32(alpha);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(y + i, vmlaq_f32(vld1q_f32(y + i), va, vld1q_f32(x + i)));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
#else
  for (size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
#endif
}

// y = alpha * x  (overwrite; the fused attention mix uses this for the
// first value row so the output needs no pre-zeroing pass)
inline void scale_store(float alpha, const float* x, float* y, size_t n) {
#if defined(PC_SIMD_AVX2)
  const __m256 va = _mm256_set1_ps(alpha);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(y + i, _mm256_mul_ps(va, _mm256_loadu_ps(x + i)));
  }
  for (; i < n; ++i) y[i] = alpha * x[i];
#elif defined(PC_SIMD_SSE2)
  const __m128 va = _mm_set1_ps(alpha);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm_storeu_ps(y + i, _mm_mul_ps(va, _mm_loadu_ps(x + i)));
  }
  for (; i < n; ++i) y[i] = alpha * x[i];
#elif defined(PC_SIMD_NEON)
  const float32x4_t va = vdupq_n_f32(alpha);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(y + i, vmulq_f32(va, vld1q_f32(x + i)));
  }
  for (; i < n; ++i) y[i] = alpha * x[i];
#else
  for (size_t i = 0; i < n; ++i) y[i] = alpha * x[i];
#endif
}

// a += b
inline void add(float* a, const float* b, size_t n) {
#if defined(PC_SIMD_AVX2)
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        a + i, _mm256_add_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
  }
  for (; i < n; ++i) a[i] += b[i];
#elif defined(PC_SIMD_SSE2)
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm_storeu_ps(a + i, _mm_add_ps(_mm_loadu_ps(a + i), _mm_loadu_ps(b + i)));
  }
  for (; i < n; ++i) a[i] += b[i];
#elif defined(PC_SIMD_NEON)
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(a + i, vaddq_f32(vld1q_f32(a + i), vld1q_f32(b + i)));
  }
  for (; i < n; ++i) a[i] += b[i];
#else
  for (size_t i = 0; i < n; ++i) a[i] += b[i];
#endif
}

// a *= b (elementwise)
inline void mul(float* a, const float* b, size_t n) {
#if defined(PC_SIMD_AVX2)
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        a + i, _mm256_mul_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
  }
  for (; i < n; ++i) a[i] *= b[i];
#elif defined(PC_SIMD_SSE2)
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm_storeu_ps(a + i, _mm_mul_ps(_mm_loadu_ps(a + i), _mm_loadu_ps(b + i)));
  }
  for (; i < n; ++i) a[i] *= b[i];
#elif defined(PC_SIMD_NEON)
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(a + i, vmulq_f32(vld1q_f32(a + i), vld1q_f32(b + i)));
  }
  for (; i < n; ++i) a[i] *= b[i];
#else
  for (size_t i = 0; i < n; ++i) a[i] *= b[i];
#endif
}

// a *= s
inline void scale(float* a, float s, size_t n) {
#if defined(PC_SIMD_AVX2)
  const __m256 vs = _mm256_set1_ps(s);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(a + i, _mm256_mul_ps(_mm256_loadu_ps(a + i), vs));
  }
  for (; i < n; ++i) a[i] *= s;
#elif defined(PC_SIMD_SSE2)
  const __m128 vs = _mm_set1_ps(s);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm_storeu_ps(a + i, _mm_mul_ps(_mm_loadu_ps(a + i), vs));
  }
  for (; i < n; ++i) a[i] *= s;
#elif defined(PC_SIMD_NEON)
  const float32x4_t vs = vdupq_n_f32(s);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(a + i, vmulq_f32(vld1q_f32(a + i), vs));
  }
  for (; i < n; ++i) a[i] *= s;
#else
  for (size_t i = 0; i < n; ++i) a[i] *= s;
#endif
}

// ---- reductions -------------------------------------------------------------

// max_i a[i] over a non-empty range. Exact regardless of lane grouping
// (float max is associative and commutative), so safe on bitwise-pinned
// paths like the softmax row max.
inline float reduce_max(const float* a, size_t n) {
#if defined(PC_SIMD_AVX2)
  size_t i = 0;
  float s = a[0];
  if (n >= 8) {
    __m256 m = _mm256_loadu_ps(a);
    for (i = 8; i + 8 <= n; i += 8) {
      m = _mm256_max_ps(m, _mm256_loadu_ps(a + i));
    }
    __m128 lo = _mm_max_ps(_mm256_castps256_ps128(m),
                           _mm256_extractf128_ps(m, 1));
    lo = _mm_max_ps(lo, _mm_movehl_ps(lo, lo));
    lo = _mm_max_ss(lo, _mm_shuffle_ps(lo, lo, 1));
    s = _mm_cvtss_f32(lo);
  }
  for (; i < n; ++i) s = s > a[i] ? s : a[i];
  return s;
#else
  float s = a[0];
  for (size_t i = 1; i < n; ++i) s = s > a[i] ? s : a[i];
  return s;
#endif
}

// sum_i a[i]*a[i] (for RMSNorm). Lane-grouped accumulation — do NOT use on a
// path that must be bitwise-stable under element re-indexing.
inline float reduce_sumsq(const float* a, size_t n) {
  return dot(a, a, n);
}

// max_i |a[i]| over [0, n); returns 0 for an empty range. Exact regardless
// of lane grouping (abs/max are element-pure), so the vectorized Q8_0
// max-abs scan produces the same scale as the scalar one, bit for bit.
inline float reduce_max_abs(const float* a, size_t n) {
#if defined(PC_SIMD_AVX2)
  size_t i = 0;
  float s = 0.0f;
  if (n >= 8) {
    const __m256 sign_mask = _mm256_set1_ps(-0.0f);
    __m256 m = _mm256_setzero_ps();
    for (; i + 8 <= n; i += 8) {
      m = _mm256_max_ps(m, _mm256_andnot_ps(sign_mask, _mm256_loadu_ps(a + i)));
    }
    __m128 lo = _mm_max_ps(_mm256_castps256_ps128(m),
                           _mm256_extractf128_ps(m, 1));
    lo = _mm_max_ps(lo, _mm_movehl_ps(lo, lo));
    lo = _mm_max_ss(lo, _mm_shuffle_ps(lo, lo, 1));
    s = _mm_cvtss_f32(lo);
  }
  for (; i < n; ++i) {
    const float v = a[i] < 0.0f ? -a[i] : a[i];
    s = s > v ? s : v;
  }
  return s;
#else
  float s = 0.0f;
  for (size_t i = 0; i < n; ++i) {
    const float v = a[i] < 0.0f ? -a[i] : a[i];
    s = s > v ? s : v;
  }
  return s;
#endif
}

// ---- int8 (Q8_0) primitives -------------------------------------------------
//
// The quantized-KV compute path stores rows as int8 with one float scale per
// row; scores are taken directly in the int8 domain and fixed up with
// (q_scale * k_scale) afterwards. Integer accumulation is exact, so unlike
// the float reductions these are bitwise-stable under any lane grouping.
//
// Precondition everywhere: int8 inputs lie in [-127, 127] (the Q8_0
// quantizer clamps to that range). -128 is excluded so |a[i]| fits int8 and
// the AVX2 maddubs pair-sums (≤ 2 * 127 * 127) cannot saturate int16.

// sum_i a[i]*b[i] as int32. Exact for n up to ~128K at |x| ≤ 127.
inline int32_t dot_i8(const int8_t* a, const int8_t* b, size_t n) {
#if defined(PC_SIMD_AVX2)
  __m256i acc = _mm256_setzero_si256();
  const __m256i ones = _mm256_set1_epi16(1);
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    // maddubs needs one unsigned operand: |a| is representable (no -128 by
    // precondition) and moving a's sign onto b keeps the product a[i]*b[i].
    const __m256i abs_a = _mm256_sign_epi8(va, va);
    const __m256i sgn_b = _mm256_sign_epi8(vb, va);
    const __m256i prod16 = _mm256_maddubs_epi16(abs_a, sgn_b);
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(prod16, ones));
  }
  __m128i lo = _mm_add_epi32(_mm256_castsi256_si128(acc),
                             _mm256_extracti128_si256(acc, 1));
  lo = _mm_add_epi32(lo, _mm_shuffle_epi32(lo, 0x4e));
  lo = _mm_add_epi32(lo, _mm_shuffle_epi32(lo, 0xb1));
  int32_t s = _mm_cvtsi128_si32(lo);
  for (; i < n; ++i) {
    s += static_cast<int32_t>(a[i]) * static_cast<int32_t>(b[i]);
  }
  return s;
#elif defined(PC_SIMD_SSE2)
  __m128i acc = _mm_setzero_si128();
  const __m128i zero = _mm_setzero_si128();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i va =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    // Sign-extend int8 lanes to int16 (unpack into the high byte, then
    // arithmetic shift right) — plain SSE2, no SSSE3 maddubs needed.
    const __m128i a_lo = _mm_srai_epi16(_mm_unpacklo_epi8(zero, va), 8);
    const __m128i a_hi = _mm_srai_epi16(_mm_unpackhi_epi8(zero, va), 8);
    const __m128i b_lo = _mm_srai_epi16(_mm_unpacklo_epi8(zero, vb), 8);
    const __m128i b_hi = _mm_srai_epi16(_mm_unpackhi_epi8(zero, vb), 8);
    acc = _mm_add_epi32(acc, _mm_madd_epi16(a_lo, b_lo));
    acc = _mm_add_epi32(acc, _mm_madd_epi16(a_hi, b_hi));
  }
  acc = _mm_add_epi32(acc, _mm_shuffle_epi32(acc, 0x4e));
  acc = _mm_add_epi32(acc, _mm_shuffle_epi32(acc, 0xb1));
  int32_t s = _mm_cvtsi128_si32(acc);
  for (; i < n; ++i) {
    s += static_cast<int32_t>(a[i]) * static_cast<int32_t>(b[i]);
  }
  return s;
#elif defined(PC_SIMD_NEON)
  int32x4_t acc = vdupq_n_s32(0);
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const int8x16_t va = vld1q_s8(a + i);
    const int8x16_t vb = vld1q_s8(b + i);
    const int16x8_t p_lo = vmull_s8(vget_low_s8(va), vget_low_s8(vb));
    const int16x8_t p_hi = vmull_s8(vget_high_s8(va), vget_high_s8(vb));
    acc = vpadalq_s16(acc, p_lo);
    acc = vpadalq_s16(acc, p_hi);
  }
  int32_t s = vaddvq_s32(acc);
  for (; i < n; ++i) {
    s += static_cast<int32_t>(a[i]) * static_cast<int32_t>(b[i]);
  }
  return s;
#else
  int32_t s = 0;
  for (size_t i = 0; i < n; ++i) {
    s += static_cast<int32_t>(a[i]) * static_cast<int32_t>(b[i]);
  }
  return s;
#endif
}

// y[i] = clamp(nearbyint(x[i] * inv_scale), -127, 127) as int8. Bitwise
// identical to the scalar loop: per-lane multiply/round/convert are the same
// IEEE operations, and clamping before the round is equivalent to clamping
// after it (rounding is monotonic; both orders land on the same int8).
// Assumes the default round-to-nearest-even FP environment, as nearbyint
// does.
inline void quantize_i8(const float* x, float inv_scale, int8_t* y, size_t n) {
#if defined(PC_SIMD_AVX2)
  const __m256 vinv = _mm256_set1_ps(inv_scale);
  const __m256 vmin = _mm256_set1_ps(-127.0f);
  const __m256 vmax = _mm256_set1_ps(127.0f);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 v = _mm256_mul_ps(_mm256_loadu_ps(x + i), vinv);
    v = _mm256_min_ps(_mm256_max_ps(v, vmin), vmax);
    const __m256i i32 = _mm256_cvtps_epi32(v);  // rounds to nearest even
    const __m128i i16 = _mm_packs_epi32(_mm256_castsi256_si128(i32),
                                        _mm256_extracti128_si256(i32, 1));
    const __m128i i8 = _mm_packs_epi16(i16, i16);
    _mm_storel_epi64(reinterpret_cast<__m128i*>(y + i), i8);
  }
  for (; i < n; ++i) {
    float q = x[i] * inv_scale;
    q = q < -127.0f ? -127.0f : (q > 127.0f ? 127.0f : q);
    y[i] = static_cast<int8_t>(static_cast<int32_t>(
        std::nearbyintf(q)));
  }
#else
  for (size_t i = 0; i < n; ++i) {
    float q = x[i] * inv_scale;
    q = q < -127.0f ? -127.0f : (q > 127.0f ? 127.0f : q);
    q = std::nearbyintf(q);
    y[i] = static_cast<int8_t>(static_cast<int32_t>(q));
  }
#endif
}

// y[i] = scale * float(x[i])  (Q8_0 row dequantization, overwrite)
inline void dequant_store(const int8_t* x, float scale, float* y, size_t n) {
#if defined(PC_SIMD_AVX2)
  const __m256 vs = _mm256_set1_ps(scale);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i bytes =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(x + i));
    const __m256 vals = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(bytes));
    _mm256_storeu_ps(y + i, _mm256_mul_ps(vs, vals));
  }
  for (; i < n; ++i) y[i] = scale * static_cast<float>(x[i]);
#else
  for (size_t i = 0; i < n; ++i) y[i] = scale * static_cast<float>(x[i]);
#endif
}

// y[i] += alpha * float(x[i]) — the value-mix step of the q8 attention
// kernel (alpha folds the softmax weight and the row's V scale together).
inline void axpy_i8(float alpha, const int8_t* x, float* y, size_t n) {
#if defined(PC_SIMD_AVX2)
  const __m256 va = _mm256_set1_ps(alpha);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i bytes =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(x + i));
    const __m256 vals = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(bytes));
    _mm256_storeu_ps(y + i,
                     detail::fma8(va, vals, _mm256_loadu_ps(y + i)));
  }
  for (; i < n; ++i) y[i] += alpha * static_cast<float>(x[i]);
#else
  for (size_t i = 0; i < n; ++i) y[i] += alpha * static_cast<float>(x[i]);
#endif
}

}  // namespace pc::simd
