// Portable vectorized primitives for the tensor kernels.
//
// One scalar implementation (written so the compiler can vectorize the
// non-reduction loops) plus explicit intrinsic paths selected at compile
// time: AVX2(+FMA) > SSE2 > NEON > scalar. The reduction kernels (dot,
// reduce_*) cannot be auto-vectorized without -ffast-math because lane-wise
// accumulation reorders float additions, so the intrinsic paths are where
// all of the matmul/attention speedup comes from.
//
// Determinism contract (relied on by docs/INTERNALS.md and the bitwise
// equality tests): every function here is a pure function of its inputs —
// same pointers-contents and length always produce the same bits. Lane
// accumulation order is fixed per build, never data- or alignment-dependent:
// all loads are unaligned-safe and there is no runtime dispatch.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>

#if defined(__AVX2__)
#include <immintrin.h>
#define PC_SIMD_AVX2 1
#elif defined(__SSE2__) || defined(_M_X64) || \
    (defined(_M_IX86_FP) && _M_IX86_FP >= 2)
#include <emmintrin.h>
#define PC_SIMD_SSE2 1
#elif defined(__ARM_NEON) || defined(__ARM_NEON__)
#include <arm_neon.h>
#define PC_SIMD_NEON 1
#endif

namespace pc::simd {

// Name of the active instruction-set path (for bench/report banners).
inline const char* isa_name() {
#if defined(PC_SIMD_AVX2)
  return "avx2";
#elif defined(PC_SIMD_SSE2)
  return "sse2";
#elif defined(PC_SIMD_NEON)
  return "neon";
#else
  return "scalar";
#endif
}

// ---- dot --------------------------------------------------------------------

// sum_i a[i]*b[i]. Four independent accumulator chains hide FMA latency.
inline float dot(const float* a, const float* b, size_t n) {
#if defined(PC_SIMD_AVX2)
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  __m256 acc2 = _mm256_setzero_ps();
  __m256 acc3 = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
#if defined(__FMA__)
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 8),
                           _mm256_loadu_ps(b + i + 8), acc1);
    acc2 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 16),
                           _mm256_loadu_ps(b + i + 16), acc2);
    acc3 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 24),
                           _mm256_loadu_ps(b + i + 24), acc3);
#else
    acc0 = _mm256_add_ps(
        acc0, _mm256_mul_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
    acc1 = _mm256_add_ps(acc1, _mm256_mul_ps(_mm256_loadu_ps(a + i + 8),
                                             _mm256_loadu_ps(b + i + 8)));
    acc2 = _mm256_add_ps(acc2, _mm256_mul_ps(_mm256_loadu_ps(a + i + 16),
                                             _mm256_loadu_ps(b + i + 16)));
    acc3 = _mm256_add_ps(acc3, _mm256_mul_ps(_mm256_loadu_ps(a + i + 24),
                                             _mm256_loadu_ps(b + i + 24)));
#endif
  }
  for (; i + 8 <= n; i += 8) {
#if defined(__FMA__)
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
#else
    acc0 = _mm256_add_ps(
        acc0, _mm256_mul_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
#endif
  }
  acc0 = _mm256_add_ps(_mm256_add_ps(acc0, acc1), _mm256_add_ps(acc2, acc3));
  __m128 lo = _mm256_castps256_ps128(acc0);
  __m128 hi = _mm256_extractf128_ps(acc0, 1);
  lo = _mm_add_ps(lo, hi);
  lo = _mm_add_ps(lo, _mm_movehl_ps(lo, lo));
  lo = _mm_add_ss(lo, _mm_shuffle_ps(lo, lo, 1));
  float s = _mm_cvtss_f32(lo);
  for (; i < n; ++i) s += a[i] * b[i];
  return s;
#elif defined(PC_SIMD_SSE2)
  __m128 acc0 = _mm_setzero_ps();
  __m128 acc1 = _mm_setzero_ps();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm_add_ps(acc0,
                      _mm_mul_ps(_mm_loadu_ps(a + i), _mm_loadu_ps(b + i)));
    acc1 = _mm_add_ps(
        acc1, _mm_mul_ps(_mm_loadu_ps(a + i + 4), _mm_loadu_ps(b + i + 4)));
  }
  acc0 = _mm_add_ps(acc0, acc1);
  acc0 = _mm_add_ps(acc0, _mm_movehl_ps(acc0, acc0));
  acc0 = _mm_add_ss(acc0, _mm_shuffle_ps(acc0, acc0, 1));
  float s = _mm_cvtss_f32(acc0);
  for (; i < n; ++i) s += a[i] * b[i];
  return s;
#elif defined(PC_SIMD_NEON)
  float32x4_t acc0 = vdupq_n_f32(0.0f);
  float32x4_t acc1 = vdupq_n_f32(0.0f);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc0 = vmlaq_f32(acc0, vld1q_f32(a + i), vld1q_f32(b + i));
    acc1 = vmlaq_f32(acc1, vld1q_f32(a + i + 4), vld1q_f32(b + i + 4));
  }
  acc0 = vaddq_f32(acc0, acc1);
  float s = vaddvq_f32(acc0);
  for (; i < n; ++i) s += a[i] * b[i];
  return s;
#else
  float s = 0.0f;
  for (size_t i = 0; i < n; ++i) s += a[i] * b[i];
  return s;
#endif
}

// ---- matmul micro-kernels ---------------------------------------------------
//
// dot4 / dot2x4 are the register tiles of gemm_nt: one (or two) A rows
// against four B rows, accumulators held in registers so each loaded vector
// is reused across the tile. Per-column accumulation order is IDENTICAL
// between the two (one 8-lane chain per (row, column), then a scalar tail),
// so whether a row is computed by the 2x4 tile or the 1x4 edge tile cannot
// change its bits — matmul results depend only on (a_row, b_col, k), never
// on the batch size m. The scalar fallbacks preserve the same property by
// delegating per column to dot().

#if defined(PC_SIMD_AVX2)
namespace detail {
inline float hadd8(__m256 v) {
  __m128 lo = _mm_add_ps(_mm256_castps256_ps128(v),
                         _mm256_extractf128_ps(v, 1));
  lo = _mm_add_ps(lo, _mm_movehl_ps(lo, lo));
  lo = _mm_add_ss(lo, _mm_shuffle_ps(lo, lo, 1));
  return _mm_cvtss_f32(lo);
}
#if defined(__FMA__)
inline __m256 fma8(__m256 a, __m256 b, __m256 c) {
  return _mm256_fmadd_ps(a, b, c);
}
#else
inline __m256 fma8(__m256 a, __m256 b, __m256 c) {
  return _mm256_add_ps(c, _mm256_mul_ps(a, b));
}
#endif
}  // namespace detail
#endif

// out[c] = sum_l a[l] * bc[l] for the four B rows b0..b3.
inline void dot4(const float* a, const float* b0, const float* b1,
                 const float* b2, const float* b3, size_t n, float* out) {
#if defined(PC_SIMD_AVX2)
  __m256 c0 = _mm256_setzero_ps();
  __m256 c1 = _mm256_setzero_ps();
  __m256 c2 = _mm256_setzero_ps();
  __m256 c3 = _mm256_setzero_ps();
  size_t l = 0;
  for (; l + 8 <= n; l += 8) {
    const __m256 av = _mm256_loadu_ps(a + l);
    c0 = detail::fma8(av, _mm256_loadu_ps(b0 + l), c0);
    c1 = detail::fma8(av, _mm256_loadu_ps(b1 + l), c1);
    c2 = detail::fma8(av, _mm256_loadu_ps(b2 + l), c2);
    c3 = detail::fma8(av, _mm256_loadu_ps(b3 + l), c3);
  }
  float s0 = detail::hadd8(c0);
  float s1 = detail::hadd8(c1);
  float s2 = detail::hadd8(c2);
  float s3 = detail::hadd8(c3);
  for (; l < n; ++l) {
    const float av = a[l];
    s0 += av * b0[l];
    s1 += av * b1[l];
    s2 += av * b2[l];
    s3 += av * b3[l];
  }
  out[0] = s0;
  out[1] = s1;
  out[2] = s2;
  out[3] = s3;
#else
  // Scalar/SSE/NEON fallback: per-column dot keeps the order contract.
  out[0] = dot(a, b0, n);
  out[1] = dot(a, b1, n);
  out[2] = dot(a, b2, n);
  out[3] = dot(a, b3, n);
#endif
}

// Two A rows against four B rows: out_r[c] = sum_l ar[l] * bc[l].
inline void dot2x4(const float* a0, const float* a1, const float* b0,
                   const float* b1, const float* b2, const float* b3, size_t n,
                   float* out0, float* out1) {
#if defined(PC_SIMD_AVX2)
  __m256 c00 = _mm256_setzero_ps(), c01 = _mm256_setzero_ps();
  __m256 c02 = _mm256_setzero_ps(), c03 = _mm256_setzero_ps();
  __m256 c10 = _mm256_setzero_ps(), c11 = _mm256_setzero_ps();
  __m256 c12 = _mm256_setzero_ps(), c13 = _mm256_setzero_ps();
  size_t l = 0;
  for (; l + 8 <= n; l += 8) {
    const __m256 a0v = _mm256_loadu_ps(a0 + l);
    const __m256 a1v = _mm256_loadu_ps(a1 + l);
    const __m256 b0v = _mm256_loadu_ps(b0 + l);
    const __m256 b1v = _mm256_loadu_ps(b1 + l);
    const __m256 b2v = _mm256_loadu_ps(b2 + l);
    const __m256 b3v = _mm256_loadu_ps(b3 + l);
    c00 = detail::fma8(a0v, b0v, c00);
    c01 = detail::fma8(a0v, b1v, c01);
    c02 = detail::fma8(a0v, b2v, c02);
    c03 = detail::fma8(a0v, b3v, c03);
    c10 = detail::fma8(a1v, b0v, c10);
    c11 = detail::fma8(a1v, b1v, c11);
    c12 = detail::fma8(a1v, b2v, c12);
    c13 = detail::fma8(a1v, b3v, c13);
  }
  float s00 = detail::hadd8(c00), s01 = detail::hadd8(c01);
  float s02 = detail::hadd8(c02), s03 = detail::hadd8(c03);
  float s10 = detail::hadd8(c10), s11 = detail::hadd8(c11);
  float s12 = detail::hadd8(c12), s13 = detail::hadd8(c13);
  for (; l < n; ++l) {
    const float a0v = a0[l], a1v = a1[l];
    s00 += a0v * b0[l];
    s01 += a0v * b1[l];
    s02 += a0v * b2[l];
    s03 += a0v * b3[l];
    s10 += a1v * b0[l];
    s11 += a1v * b1[l];
    s12 += a1v * b2[l];
    s13 += a1v * b3[l];
  }
  out0[0] = s00;
  out0[1] = s01;
  out0[2] = s02;
  out0[3] = s03;
  out1[0] = s10;
  out1[1] = s11;
  out1[2] = s12;
  out1[3] = s13;
#else
  dot4(a0, b0, b1, b2, b3, n, out0);
  dot4(a1, b0, b1, b2, b3, n, out1);
#endif
}

// ---- axpy / elementwise -----------------------------------------------------

// y += alpha * x
inline void axpy(float alpha, const float* x, float* y, size_t n) {
#if defined(PC_SIMD_AVX2)
  const __m256 va = _mm256_set1_ps(alpha);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
#if defined(__FMA__)
    _mm256_storeu_ps(
        y + i, _mm256_fmadd_ps(va, _mm256_loadu_ps(x + i),
                               _mm256_loadu_ps(y + i)));
#else
    _mm256_storeu_ps(y + i,
                     _mm256_add_ps(_mm256_loadu_ps(y + i),
                                   _mm256_mul_ps(va, _mm256_loadu_ps(x + i))));
#endif
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
#elif defined(PC_SIMD_SSE2)
  const __m128 va = _mm_set1_ps(alpha);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm_storeu_ps(y + i, _mm_add_ps(_mm_loadu_ps(y + i),
                                    _mm_mul_ps(va, _mm_loadu_ps(x + i))));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
#elif defined(PC_SIMD_NEON)
  const float32x4_t va = vdupq_n_f32(alpha);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(y + i, vmlaq_f32(vld1q_f32(y + i), va, vld1q_f32(x + i)));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
#else
  for (size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
#endif
}

// y = alpha * x  (overwrite; the fused attention mix uses this for the
// first value row so the output needs no pre-zeroing pass)
inline void scale_store(float alpha, const float* x, float* y, size_t n) {
#if defined(PC_SIMD_AVX2)
  const __m256 va = _mm256_set1_ps(alpha);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(y + i, _mm256_mul_ps(va, _mm256_loadu_ps(x + i)));
  }
  for (; i < n; ++i) y[i] = alpha * x[i];
#elif defined(PC_SIMD_SSE2)
  const __m128 va = _mm_set1_ps(alpha);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm_storeu_ps(y + i, _mm_mul_ps(va, _mm_loadu_ps(x + i)));
  }
  for (; i < n; ++i) y[i] = alpha * x[i];
#elif defined(PC_SIMD_NEON)
  const float32x4_t va = vdupq_n_f32(alpha);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(y + i, vmulq_f32(va, vld1q_f32(x + i)));
  }
  for (; i < n; ++i) y[i] = alpha * x[i];
#else
  for (size_t i = 0; i < n; ++i) y[i] = alpha * x[i];
#endif
}

// a += b
inline void add(float* a, const float* b, size_t n) {
#if defined(PC_SIMD_AVX2)
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        a + i, _mm256_add_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
  }
  for (; i < n; ++i) a[i] += b[i];
#elif defined(PC_SIMD_SSE2)
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm_storeu_ps(a + i, _mm_add_ps(_mm_loadu_ps(a + i), _mm_loadu_ps(b + i)));
  }
  for (; i < n; ++i) a[i] += b[i];
#elif defined(PC_SIMD_NEON)
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(a + i, vaddq_f32(vld1q_f32(a + i), vld1q_f32(b + i)));
  }
  for (; i < n; ++i) a[i] += b[i];
#else
  for (size_t i = 0; i < n; ++i) a[i] += b[i];
#endif
}

// a *= b (elementwise)
inline void mul(float* a, const float* b, size_t n) {
#if defined(PC_SIMD_AVX2)
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        a + i, _mm256_mul_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
  }
  for (; i < n; ++i) a[i] *= b[i];
#elif defined(PC_SIMD_SSE2)
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm_storeu_ps(a + i, _mm_mul_ps(_mm_loadu_ps(a + i), _mm_loadu_ps(b + i)));
  }
  for (; i < n; ++i) a[i] *= b[i];
#elif defined(PC_SIMD_NEON)
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(a + i, vmulq_f32(vld1q_f32(a + i), vld1q_f32(b + i)));
  }
  for (; i < n; ++i) a[i] *= b[i];
#else
  for (size_t i = 0; i < n; ++i) a[i] *= b[i];
#endif
}

// a *= s
inline void scale(float* a, float s, size_t n) {
#if defined(PC_SIMD_AVX2)
  const __m256 vs = _mm256_set1_ps(s);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(a + i, _mm256_mul_ps(_mm256_loadu_ps(a + i), vs));
  }
  for (; i < n; ++i) a[i] *= s;
#elif defined(PC_SIMD_SSE2)
  const __m128 vs = _mm_set1_ps(s);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm_storeu_ps(a + i, _mm_mul_ps(_mm_loadu_ps(a + i), vs));
  }
  for (; i < n; ++i) a[i] *= s;
#elif defined(PC_SIMD_NEON)
  const float32x4_t vs = vdupq_n_f32(s);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(a + i, vmulq_f32(vld1q_f32(a + i), vs));
  }
  for (; i < n; ++i) a[i] *= s;
#else
  for (size_t i = 0; i < n; ++i) a[i] *= s;
#endif
}

// ---- reductions -------------------------------------------------------------

// max_i a[i] over a non-empty range. Exact regardless of lane grouping
// (float max is associative and commutative), so safe on bitwise-pinned
// paths like the softmax row max.
inline float reduce_max(const float* a, size_t n) {
#if defined(PC_SIMD_AVX2)
  size_t i = 0;
  float s = a[0];
  if (n >= 8) {
    __m256 m = _mm256_loadu_ps(a);
    for (i = 8; i + 8 <= n; i += 8) {
      m = _mm256_max_ps(m, _mm256_loadu_ps(a + i));
    }
    __m128 lo = _mm_max_ps(_mm256_castps256_ps128(m),
                           _mm256_extractf128_ps(m, 1));
    lo = _mm_max_ps(lo, _mm_movehl_ps(lo, lo));
    lo = _mm_max_ss(lo, _mm_shuffle_ps(lo, lo, 1));
    s = _mm_cvtss_f32(lo);
  }
  for (; i < n; ++i) s = s > a[i] ? s : a[i];
  return s;
#else
  float s = a[0];
  for (size_t i = 1; i < n; ++i) s = s > a[i] ? s : a[i];
  return s;
#endif
}

// sum_i a[i]*a[i] (for RMSNorm). Lane-grouped accumulation — do NOT use on a
// path that must be bitwise-stable under element re-indexing.
inline float reduce_sumsq(const float* a, size_t n) {
  return dot(a, a, n);
}

// max_i |a[i]| over [0, n); returns 0 for an empty range. Exact regardless
// of lane grouping (abs/max are element-pure), so the vectorized Q8_0
// max-abs scan produces the same scale as the scalar one, bit for bit.
inline float reduce_max_abs(const float* a, size_t n) {
#if defined(PC_SIMD_AVX2)
  size_t i = 0;
  float s = 0.0f;
  if (n >= 8) {
    const __m256 sign_mask = _mm256_set1_ps(-0.0f);
    __m256 m = _mm256_setzero_ps();
    for (; i + 8 <= n; i += 8) {
      m = _mm256_max_ps(m, _mm256_andnot_ps(sign_mask, _mm256_loadu_ps(a + i)));
    }
    __m128 lo = _mm_max_ps(_mm256_castps256_ps128(m),
                           _mm256_extractf128_ps(m, 1));
    lo = _mm_max_ps(lo, _mm_movehl_ps(lo, lo));
    lo = _mm_max_ss(lo, _mm_shuffle_ps(lo, lo, 1));
    s = _mm_cvtss_f32(lo);
  }
  for (; i < n; ++i) {
    const float v = a[i] < 0.0f ? -a[i] : a[i];
    s = s > v ? s : v;
  }
  return s;
#else
  float s = 0.0f;
  for (size_t i = 0; i < n; ++i) {
    const float v = a[i] < 0.0f ? -a[i] : a[i];
    s = s > v ? s : v;
  }
  return s;
#endif
}

// ---- int8 (Q8_0) primitives -------------------------------------------------
//
// The quantized-KV compute path stores rows as int8 with one float scale per
// row; scores are taken directly in the int8 domain and fixed up with
// (q_scale * k_scale) afterwards. Integer accumulation is exact, so unlike
// the float reductions these are bitwise-stable under any lane grouping.
//
// Precondition everywhere: int8 inputs lie in [-127, 127] (the Q8_0
// quantizer clamps to that range). -128 is excluded so |a[i]| fits int8 and
// the AVX2 maddubs pair-sums (≤ 2 * 127 * 127) cannot saturate int16.

// sum_i a[i]*b[i] as int32. Exact for n up to ~128K at |x| ≤ 127.
inline int32_t dot_i8(const int8_t* a, const int8_t* b, size_t n) {
#if defined(PC_SIMD_AVX2)
  __m256i acc = _mm256_setzero_si256();
  const __m256i ones = _mm256_set1_epi16(1);
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    // maddubs needs one unsigned operand: |a| is representable (no -128 by
    // precondition) and moving a's sign onto b keeps the product a[i]*b[i].
    const __m256i abs_a = _mm256_sign_epi8(va, va);
    const __m256i sgn_b = _mm256_sign_epi8(vb, va);
    const __m256i prod16 = _mm256_maddubs_epi16(abs_a, sgn_b);
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(prod16, ones));
  }
  __m128i lo = _mm_add_epi32(_mm256_castsi256_si128(acc),
                             _mm256_extracti128_si256(acc, 1));
  lo = _mm_add_epi32(lo, _mm_shuffle_epi32(lo, 0x4e));
  lo = _mm_add_epi32(lo, _mm_shuffle_epi32(lo, 0xb1));
  int32_t s = _mm_cvtsi128_si32(lo);
  for (; i < n; ++i) {
    s += static_cast<int32_t>(a[i]) * static_cast<int32_t>(b[i]);
  }
  return s;
#elif defined(PC_SIMD_SSE2)
  __m128i acc = _mm_setzero_si128();
  const __m128i zero = _mm_setzero_si128();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i va =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    // Sign-extend int8 lanes to int16 (unpack into the high byte, then
    // arithmetic shift right) — plain SSE2, no SSSE3 maddubs needed.
    const __m128i a_lo = _mm_srai_epi16(_mm_unpacklo_epi8(zero, va), 8);
    const __m128i a_hi = _mm_srai_epi16(_mm_unpackhi_epi8(zero, va), 8);
    const __m128i b_lo = _mm_srai_epi16(_mm_unpacklo_epi8(zero, vb), 8);
    const __m128i b_hi = _mm_srai_epi16(_mm_unpackhi_epi8(zero, vb), 8);
    acc = _mm_add_epi32(acc, _mm_madd_epi16(a_lo, b_lo));
    acc = _mm_add_epi32(acc, _mm_madd_epi16(a_hi, b_hi));
  }
  acc = _mm_add_epi32(acc, _mm_shuffle_epi32(acc, 0x4e));
  acc = _mm_add_epi32(acc, _mm_shuffle_epi32(acc, 0xb1));
  int32_t s = _mm_cvtsi128_si32(acc);
  for (; i < n; ++i) {
    s += static_cast<int32_t>(a[i]) * static_cast<int32_t>(b[i]);
  }
  return s;
#elif defined(PC_SIMD_NEON)
  int32x4_t acc = vdupq_n_s32(0);
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const int8x16_t va = vld1q_s8(a + i);
    const int8x16_t vb = vld1q_s8(b + i);
    const int16x8_t p_lo = vmull_s8(vget_low_s8(va), vget_low_s8(vb));
    const int16x8_t p_hi = vmull_s8(vget_high_s8(va), vget_high_s8(vb));
    acc = vpadalq_s16(acc, p_lo);
    acc = vpadalq_s16(acc, p_hi);
  }
  int32_t s = vaddvq_s32(acc);
  for (; i < n; ++i) {
    s += static_cast<int32_t>(a[i]) * static_cast<int32_t>(b[i]);
  }
  return s;
#else
  int32_t s = 0;
  for (size_t i = 0; i < n; ++i) {
    s += static_cast<int32_t>(a[i]) * static_cast<int32_t>(b[i]);
  }
  return s;
#endif
}

// y[i] = clamp(nearbyint(x[i] * inv_scale), -127, 127) as int8. Bitwise
// identical to the scalar loop: per-lane multiply/round/convert are the same
// IEEE operations, and clamping before the round is equivalent to clamping
// after it (rounding is monotonic; both orders land on the same int8).
// Assumes the default round-to-nearest-even FP environment, as nearbyint
// does.
inline void quantize_i8(const float* x, float inv_scale, int8_t* y, size_t n) {
#if defined(PC_SIMD_AVX2)
  const __m256 vinv = _mm256_set1_ps(inv_scale);
  const __m256 vmin = _mm256_set1_ps(-127.0f);
  const __m256 vmax = _mm256_set1_ps(127.0f);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 v = _mm256_mul_ps(_mm256_loadu_ps(x + i), vinv);
    v = _mm256_min_ps(_mm256_max_ps(v, vmin), vmax);
    const __m256i i32 = _mm256_cvtps_epi32(v);  // rounds to nearest even
    const __m128i i16 = _mm_packs_epi32(_mm256_castsi256_si128(i32),
                                        _mm256_extracti128_si256(i32, 1));
    const __m128i i8 = _mm_packs_epi16(i16, i16);
    _mm_storel_epi64(reinterpret_cast<__m128i*>(y + i), i8);
  }
  for (; i < n; ++i) {
    float q = x[i] * inv_scale;
    q = q < -127.0f ? -127.0f : (q > 127.0f ? 127.0f : q);
    y[i] = static_cast<int8_t>(static_cast<int32_t>(
        std::nearbyintf(q)));
  }
#else
  for (size_t i = 0; i < n; ++i) {
    float q = x[i] * inv_scale;
    q = q < -127.0f ? -127.0f : (q > 127.0f ? 127.0f : q);
    q = std::nearbyintf(q);
    y[i] = static_cast<int8_t>(static_cast<int32_t>(q));
  }
#endif
}

// y[i] = scale * float(x[i])  (Q8_0 row dequantization, overwrite)
inline void dequant_store(const int8_t* x, float scale, float* y, size_t n) {
#if defined(PC_SIMD_AVX2)
  const __m256 vs = _mm256_set1_ps(scale);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i bytes =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(x + i));
    const __m256 vals = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(bytes));
    _mm256_storeu_ps(y + i, _mm256_mul_ps(vs, vals));
  }
  for (; i < n; ++i) y[i] = scale * static_cast<float>(x[i]);
#else
  for (size_t i = 0; i < n; ++i) y[i] = scale * static_cast<float>(x[i]);
#endif
}

// y[i] += alpha * float(x[i]) — the value-mix step of the q8 attention
// kernel (alpha folds the softmax weight and the row's V scale together).
inline void axpy_i8(float alpha, const int8_t* x, float* y, size_t n) {
#if defined(PC_SIMD_AVX2)
  const __m256 va = _mm256_set1_ps(alpha);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i bytes =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(x + i));
    const __m256 vals = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(bytes));
    _mm256_storeu_ps(y + i,
                     detail::fma8(va, vals, _mm256_loadu_ps(y + i)));
  }
  for (; i < n; ++i) y[i] += alpha * static_cast<float>(x[i]);
#else
  for (size_t i = 0; i < n; ++i) y[i] += alpha * static_cast<float>(x[i]);
#endif
}

// ---- int4 (Q4_0) primitives -------------------------------------------------
//
// Q4_0 packs values in blocks of 32: stored nibbles are q+8 in [0,15]
// (element j in the low nibble of byte j, element j+16 in the high nibble),
// one float scale per block. Scores against an int8 query decompose per
// block as
//
//   sum_i q8[i]*q4[i] = sum_i q8[i]*(nib[i]-8) = p_b - 8*qsum_b
//
// with p_b = sum_i q8[i]*nib[i] (unsigned-nibble times signed-int8, the
// exact shape maddubs computes without saturating: pair sums are at most
// 2*15*127 = 3810) and qsum_b the query block sum, computed once per call.
// The integer parts are exact, and the per-block float accumulation below is
// strictly sequential, so every ISA path is bitwise-identical to scalar.

// The signed extremum of a block: the element with the largest |x|, keeping
// its sign (first occurrence wins between equal magnitudes — the fixed
// sequential scan IS the determinism contract; the Q4_0 scale is
// extremum/-8 so the extreme value quantizes exactly to level -8 or +7).
inline float signed_extremum(const float* a, size_t n) {
  float amax = 0.0f;
  float aabs = 0.0f;
  for (size_t i = 0; i < n; ++i) {
    const float v = a[i] < 0.0f ? -a[i] : a[i];
    if (v > aabs) {
      aabs = v;
      amax = a[i];
    }
  }
  return amax;
}

// Packs n <= 32 floats into Q4_0 nibbles (16 output bytes): nibble =
// clamp(nearbyint(x * inv_scale), -8, 7) + 8, missing tail elements pad
// with 8 (the quantized zero). The multiply/round/clamp runs vectorized on
// AVX2 and is bitwise-identical to the scalar path (same argument as
// quantize_i8: rounding is monotonic and _mm256_cvtps_epi32 rounds to
// nearest even exactly like nearbyint); the nibble interleave is exact
// integer work either way.
inline void quantize_i4(const float* x, float inv_scale, size_t n,
                        uint8_t* out) {
  int32_t q[32];
#if defined(PC_SIMD_AVX2)
  if (n == 32) {
    const __m256 vinv = _mm256_set1_ps(inv_scale);
    const __m256 vmin = _mm256_set1_ps(-8.0f);
    const __m256 vmax = _mm256_set1_ps(7.0f);
    for (size_t i = 0; i < 32; i += 8) {
      __m256 v = _mm256_mul_ps(_mm256_loadu_ps(x + i), vinv);
      v = _mm256_min_ps(_mm256_max_ps(v, vmin), vmax);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(q + i),
                          _mm256_cvtps_epi32(v));
    }
  } else
#endif
  {
    for (size_t i = 0; i < n; ++i) {
      float v = x[i] * inv_scale;
      v = v < -8.0f ? -8.0f : (v > 7.0f ? 7.0f : v);
      q[i] = static_cast<int32_t>(std::nearbyintf(v));
    }
    for (size_t i = n; i < 32; ++i) q[i] = 0;
  }
  for (size_t j = 0; j < 16; ++j) {
    out[j] = static_cast<uint8_t>((q[j] + 8) | ((q[j + 16] + 8) << 4));
  }
}

// Scores one Q4_0 row against an int8 query:
//   sum_b block_scales[b] * float(p_b - 8 * q_sums[b])
// q8 must be zero-padded to n_blocks*32 elements; q_sums[b] is the int sum
// of query block b (precompute once per query). The float block
// accumulation is strictly sequential on every path.
inline float dot_i4i8(const int8_t* q8, const uint8_t* packed,
                      const float* block_scales, const int32_t* q_sums,
                      size_t n_blocks) {
  float s = 0.0f;
#if defined(PC_SIMD_AVX2)
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i ones = _mm256_set1_epi16(1);
  for (size_t b = 0; b < n_blocks; ++b) {
    const __m128i bytes = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(packed + b * 16));
    // Element order [0..15 | 16..31]: low nibbles then high nibbles.
    const __m256i nib = _mm256_and_si256(
        _mm256_set_m128i(_mm_srli_epi16(bytes, 4), bytes), low_mask);
    const __m256i q = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(q8 + b * 32));
    const __m256i prod16 = _mm256_maddubs_epi16(nib, q);
    const __m256i acc = _mm256_madd_epi16(prod16, ones);
    __m128i lo = _mm_add_epi32(_mm256_castsi256_si128(acc),
                               _mm256_extracti128_si256(acc, 1));
    lo = _mm_add_epi32(lo, _mm_shuffle_epi32(lo, 0x4e));
    lo = _mm_add_epi32(lo, _mm_shuffle_epi32(lo, 0xb1));
    const int32_t p = _mm_cvtsi128_si32(lo);
    s += block_scales[b] * static_cast<float>(p - 8 * q_sums[b]);
  }
#elif defined(PC_SIMD_SSE2)
  const __m128i low_mask = _mm_set1_epi8(0x0f);
  const __m128i zero = _mm_setzero_si128();
  for (size_t b = 0; b < n_blocks; ++b) {
    const __m128i bytes = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(packed + b * 16));
    const __m128i lo_nib = _mm_and_si128(bytes, low_mask);
    const __m128i hi_nib = _mm_and_si128(_mm_srli_epi16(bytes, 4), low_mask);
    const __m128i q_lo = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(q8 + b * 32));
    const __m128i q_hi = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(q8 + b * 32 + 16));
    // Nibbles are unsigned [0,15]: zero-extend; query sign-extends.
    __m128i acc = _mm_madd_epi16(
        _mm_unpacklo_epi8(lo_nib, zero),
        _mm_srai_epi16(_mm_unpacklo_epi8(zero, q_lo), 8));
    acc = _mm_add_epi32(
        acc, _mm_madd_epi16(_mm_unpackhi_epi8(lo_nib, zero),
                            _mm_srai_epi16(_mm_unpackhi_epi8(zero, q_lo), 8)));
    acc = _mm_add_epi32(
        acc, _mm_madd_epi16(_mm_unpacklo_epi8(hi_nib, zero),
                            _mm_srai_epi16(_mm_unpacklo_epi8(zero, q_hi), 8)));
    acc = _mm_add_epi32(
        acc, _mm_madd_epi16(_mm_unpackhi_epi8(hi_nib, zero),
                            _mm_srai_epi16(_mm_unpackhi_epi8(zero, q_hi), 8)));
    acc = _mm_add_epi32(acc, _mm_shuffle_epi32(acc, 0x4e));
    acc = _mm_add_epi32(acc, _mm_shuffle_epi32(acc, 0xb1));
    const int32_t p = _mm_cvtsi128_si32(acc);
    s += block_scales[b] * static_cast<float>(p - 8 * q_sums[b]);
  }
#elif defined(PC_SIMD_NEON)
  const uint8x16_t low_mask = vdupq_n_u8(0x0f);
  for (size_t b = 0; b < n_blocks; ++b) {
    const uint8x16_t bytes = vld1q_u8(packed + b * 16);
    const int8x16_t lo_nib =
        vreinterpretq_s8_u8(vandq_u8(bytes, low_mask));
    const int8x16_t hi_nib =
        vreinterpretq_s8_u8(vshrq_n_u8(bytes, 4));
    const int8x16_t q_lo = vld1q_s8(q8 + b * 32);
    const int8x16_t q_hi = vld1q_s8(q8 + b * 32 + 16);
    int32x4_t acc = vdupq_n_s32(0);
    acc = vpadalq_s16(acc, vmull_s8(vget_low_s8(lo_nib), vget_low_s8(q_lo)));
    acc = vpadalq_s16(acc, vmull_s8(vget_high_s8(lo_nib), vget_high_s8(q_lo)));
    acc = vpadalq_s16(acc, vmull_s8(vget_low_s8(hi_nib), vget_low_s8(q_hi)));
    acc = vpadalq_s16(acc, vmull_s8(vget_high_s8(hi_nib), vget_high_s8(q_hi)));
    const int32_t p = vaddvq_s32(acc);
    s += block_scales[b] * static_cast<float>(p - 8 * q_sums[b]);
  }
#else
  for (size_t b = 0; b < n_blocks; ++b) {
    int32_t p = 0;
    for (size_t j = 0; j < 16; ++j) {
      const uint8_t byte = packed[b * 16 + j];
      p += static_cast<int32_t>(q8[b * 32 + j]) * (byte & 0x0f);
      p += static_cast<int32_t>(q8[b * 32 + 16 + j]) * (byte >> 4);
    }
    s += block_scales[b] * static_cast<float>(p - 8 * q_sums[b]);
  }
#endif
  return s;
}

// y[i] = scale * (nibble_i - 8) for one block's n <= 32 values (overwrite).
inline void dequant_store_i4(const uint8_t* packed, float scale, float* y,
                             size_t n) {
#if defined(PC_SIMD_AVX2)
  if (n == 32) {
    const __m256 vs = _mm256_set1_ps(scale);
    const __m128i low_mask = _mm_set1_epi8(0x0f);
    const __m128i bias = _mm_set1_epi8(8);
    const __m128i bytes =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(packed));
    const __m128i lo =
        _mm_sub_epi8(_mm_and_si128(bytes, low_mask), bias);
    const __m128i hi = _mm_sub_epi8(
        _mm_and_si128(_mm_srli_epi16(bytes, 4), low_mask), bias);
    const __m128i halves[2] = {lo, hi};
    for (int h = 0; h < 2; ++h) {
      const __m128i v = halves[h];
      const __m256 f0 = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(v));
      const __m256 f1 = _mm256_cvtepi32_ps(
          _mm256_cvtepi8_epi32(_mm_srli_si128(v, 8)));
      _mm256_storeu_ps(y + h * 16, _mm256_mul_ps(vs, f0));
      _mm256_storeu_ps(y + h * 16 + 8, _mm256_mul_ps(vs, f1));
    }
    return;
  }
#endif
  for (size_t i = 0; i < n; ++i) {
    const uint8_t byte = packed[i & 15];
    const int nib = i < 16 ? (byte & 0x0f) : (byte >> 4);
    y[i] = scale * static_cast<float>(nib - 8);
  }
}

// y[i] += w * block_scales[b] * (nibble_i - 8) over a row of n values — the
// value-mix step of the q4 attention kernel (w is the softmax weight; the
// per-block V scale folds in here). Uses fused multiply-add on AVX2 like
// axpy_i8, so the kernel tests compare against fp32 mixing with a small
// tolerance rather than bitwise.
inline void axpy_i4(float w, const uint8_t* packed, const float* block_scales,
                    float* y, size_t n) {
  const size_t n_blocks = (n + 31) / 32;
  for (size_t b = 0; b < n_blocks; ++b) {
    const float alpha = w * block_scales[b];
    const size_t base = b * 32;
    const size_t count = n - base < 32 ? n - base : 32;
#if defined(PC_SIMD_AVX2)
    if (count == 32) {
      const __m256 va = _mm256_set1_ps(alpha);
      const __m128i low_mask = _mm_set1_epi8(0x0f);
      const __m128i bias = _mm_set1_epi8(8);
      const __m128i bytes = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(packed + b * 16));
      const __m128i lo =
          _mm_sub_epi8(_mm_and_si128(bytes, low_mask), bias);
      const __m128i hi = _mm_sub_epi8(
          _mm_and_si128(_mm_srli_epi16(bytes, 4), low_mask), bias);
      const __m128i halves[2] = {lo, hi};
      for (int h = 0; h < 2; ++h) {
        const __m128i v = halves[h];
        const __m256 f0 = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(v));
        const __m256 f1 = _mm256_cvtepi32_ps(
            _mm256_cvtepi8_epi32(_mm_srli_si128(v, 8)));
        float* yb = y + base + static_cast<size_t>(h) * 16;
        _mm256_storeu_ps(yb, detail::fma8(va, f0, _mm256_loadu_ps(yb)));
        _mm256_storeu_ps(yb + 8,
                         detail::fma8(va, f1, _mm256_loadu_ps(yb + 8)));
      }
      continue;
    }
#endif
    for (size_t i = 0; i < count; ++i) {
      const uint8_t byte = packed[b * 16 + (i & 15)];
      const int nib = i < 16 ? (byte & 0x0f) : (byte >> 4);
      y[base + i] += alpha * static_cast<float>(nib - 8);
    }
  }
}

// ---- NoMAD-style LUT scoring ------------------------------------------------
//
// NoMAD-Attention's observation: when keys are sub-byte codes, q·k needs no
// multiplies at all — quantize the query per block to int4, precompute the
// 16 possible per-dimension products q4_d * (code - 8) into an int8 table,
// and score 16 keys at once with byte shuffles (`pshufb` applies one
// 16-entry LUT to 16 lanes in a single instruction). Products lie in
// [-8*7, -8*-8] = [-56, 64], so every entry fits int8 exactly, and a
// 32-dim block accumulates at most 32*64 = 2048 into int16 — no
// saturation anywhere, which keeps the path bit-exact vs scalar.
//
// Layout contract: keys are transposed into code-major 16-key tiles
// (nomad_transpose_tile16) so one 16-byte load yields byte position p of 16
// consecutive keys — the in-register analog of NoMAD's key-centric store.
// The fused serving kernel keeps the row-major dot_i4i8 path (pages store
// rows); the LUT path is benched standalone in bench_kernels (`attn_q4`).

// tile[p*16 + r] = rows[r][p] for 16 packed bytes per block and n_rows <=
// 16 keys (absent rows pad with 0x88, the quantized-zero byte).
inline void nomad_transpose_tile16(const uint8_t* const* rows, size_t n_rows,
                                   size_t n_blocks, uint8_t* tile) {
  const size_t n_bytes = n_blocks * 16;
  for (size_t p = 0; p < n_bytes; ++p) {
    for (size_t r = 0; r < 16; ++r) {
      tile[p * 16 + r] = r < n_rows ? rows[r][p] : 0x88;
    }
  }
}

// Builds one block's shuffle tables from its int4 query values (q4 in
// [-8,7], 32 values): luts[(2*j+0)*16 + v] = q4[j] * (v-8) (low nibble of
// byte j), luts[(2*j+1)*16 + v] = q4[j+16] * (v-8) (high nibble). 32 tables
// of 16 int8 entries per block.
inline void nomad_build_block_luts(const int32_t* q4, int8_t* luts) {
  for (int j = 0; j < 16; ++j) {
    for (int v = 0; v < 16; ++v) {
      luts[(2 * j + 0) * 16 + v] = static_cast<int8_t>(q4[j] * (v - 8));
      luts[(2 * j + 1) * 16 + v] = static_cast<int8_t>(q4[j + 16] * (v - 8));
    }
  }
}

// Scores 16 keys against one query block without a single multiply-add:
// out16[r] += sum_j lut_lo_j[lo_nib(tile_j[r])] + lut_hi_j[hi_nib(tile_j[r])]
// where tile points at this block's 16 code-major byte rows. The caller
// applies the per-key block-scale fixup in float afterwards.
inline void nomad_score_block16(const uint8_t* tile, const int8_t* luts,
                                int16_t* out16) {
#if defined(PC_SIMD_AVX2)
  const __m128i low_mask = _mm_set1_epi8(0x0f);
  __m256i acc = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(out16));
  for (int j = 0; j < 16; ++j) {
    const __m128i codes =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(tile + j * 16));
    const __m128i lut_lo = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(luts + (2 * j + 0) * 16));
    const __m128i lut_hi = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(luts + (2 * j + 1) * 16));
    const __m128i lo = _mm_and_si128(codes, low_mask);
    const __m128i hi = _mm_and_si128(_mm_srli_epi16(codes, 4), low_mask);
    const __m128i c_lo = _mm_shuffle_epi8(lut_lo, lo);   // the LUT step:
    const __m128i c_hi = _mm_shuffle_epi8(lut_hi, hi);   // no multiplies
    acc = _mm256_add_epi16(acc, _mm256_cvtepi8_epi16(c_lo));
    acc = _mm256_add_epi16(acc, _mm256_cvtepi8_epi16(c_hi));
  }
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out16), acc);
#else
  for (int j = 0; j < 16; ++j) {
    for (int r = 0; r < 16; ++r) {
      const uint8_t code = tile[j * 16 + r];
      out16[r] = static_cast<int16_t>(
          out16[r] + luts[(2 * j + 0) * 16 + (code & 0x0f)] +
          luts[(2 * j + 1) * 16 + (code >> 4)]);
    }
  }
#endif
}

}  // namespace pc::simd
