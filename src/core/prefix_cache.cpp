#include "core/prefix_cache.h"

#include <numeric>

#include "common/timer.h"

namespace pc {

namespace {

int common_prefix(const std::vector<TokenId>& a,
                  const std::vector<TokenId>& b) {
  const size_t n = std::min(a.size(), b.size());
  size_t i = 0;
  while (i < n && a[i] == b[i]) ++i;
  return static_cast<int>(i);
}

}  // namespace

int PrefixCacheEngine::longest_prefix(
    const std::vector<TokenId>& prompt) const {
  int best = 0;
  for (const Entry& e : entries_) {
    best = std::max(best, common_prefix(prompt, e.tokens));
  }
  return best;
}

void PrefixCacheEngine::insert(std::vector<TokenId> tokens, KVCache states) {
  const size_t bytes = states.payload_bytes();
  if (capacity_ != 0) {
    if (bytes > capacity_) return;  // never fits; don't thrash
    while (resident_bytes_ + bytes > capacity_ && !entries_.empty()) {
      resident_bytes_ -= entries_.back().states.payload_bytes();
      entries_.pop_back();
      ++stats_.evictions;
    }
  }
  resident_bytes_ += bytes;
  entries_.emplace_front(std::move(tokens), std::move(states));
}

PrefixCacheEngine::Result PrefixCacheEngine::serve(
    const std::vector<TokenId>& prompt, const GenerateOptions& options) {
  PC_CHECK_MSG(!prompt.empty(), "empty prompt");
  PC_CHECK_MSG(static_cast<int>(prompt.size()) < model_.config().max_pos,
               "prompt exceeds max_pos");
  ++stats_.requests;

  WallTimer timer;
  // Longest-prefix lookup; bump the winner's recency.
  auto best_it = entries_.end();
  int best_len = 0;
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    const int len = common_prefix(prompt, it->tokens);
    if (len > best_len) {
      best_len = len;
      best_it = it;
    }
  }
  if (best_it != entries_.end()) {
    entries_.splice(entries_.begin(), entries_, best_it);
  }

  // All-but-last reuse still requires computing the final position for
  // logits, mirroring Prompt Cache's kickoff rule.
  const int reuse = std::min(best_len, static_cast<int>(prompt.size()) - 1);
  KVCache cache = model_.make_cache();
  cache.reserve(static_cast<int>(prompt.size()) + options.max_new_tokens);
  if (reuse > 0) {
    cache.append_range(entries_.front().states, 0, reuse);
  }

  const int remainder = static_cast<int>(prompt.size()) - reuse;
  std::vector<int> pos(static_cast<size_t>(remainder));
  std::iota(pos.begin(), pos.end(), reuse);
  const Tensor logits = model_.forward(
      std::span<const TokenId>(prompt.data() + reuse,
                               static_cast<size_t>(remainder)),
      pos, cache);

  Result result;
  result.reused_tokens = reuse;
  result.computed_tokens = remainder;
  result.ttft_ms = timer.elapsed_ms();

  stats_.tokens_reused += static_cast<uint64_t>(reuse);
  stats_.tokens_computed += static_cast<uint64_t>(remainder);
  if (reuse == 0) {
    ++stats_.misses;
  } else if (remainder <= 1) {
    ++stats_.full_hits;
  } else {
    ++stats_.partial_hits;
  }

  // Cache this prompt's full prefill states (copy of the prompt span only).
  KVCache snapshot = model_.make_cache();
  snapshot.append_range(cache, 0, static_cast<int>(prompt.size()));
  insert(prompt, std::move(snapshot));

  result.tokens = model_.generate_greedy(
      logits, static_cast<int>(prompt.size()), cache, options);
  result.text = tokenizer_.decode(result.tokens);
  return result;
}

}  // namespace pc
