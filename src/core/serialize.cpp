#include "core/serialize.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <vector>

#include "common/error.h"
#include "sys/fault.h"

namespace pc {

namespace {

constexpr char kMagic[8] = {'P', 'C', 'M', 'O', 'D', '0', '2', '\n'};
constexpr uint32_t kRecordTag = 0x4d434450;  // "PDCM"

// FNV-1a over a byte span, used as a corruption check (not security).
uint64_t fnv1a(const void* data, size_t n, uint64_t h = 1469598103934665603ULL) {
  const auto* p = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

class Writer {
 public:
  explicit Writer(std::ostream& os) : os_(os) {}

  template <typename T>
  void pod(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    os_.write(reinterpret_cast<const char*>(&v), sizeof(T));
    hash_ = fnv1a(&v, sizeof(T), hash_);
  }

  void bytes(const void* data, size_t n) {
    os_.write(static_cast<const char*>(data), static_cast<std::streamsize>(n));
    hash_ = fnv1a(data, n, hash_);
  }

  template <typename T>
  void vec(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    pod(static_cast<uint64_t>(v.size()));
    if (!v.empty()) bytes(v.data(), v.size() * sizeof(T));
  }

  void str(const std::string& s) {
    pod(static_cast<uint64_t>(s.size()));
    bytes(s.data(), s.size());
  }

  uint64_t hash() const { return hash_; }

  void check() {
    if (!os_) throw Error("module serialization: stream write failed");
  }

 private:
  std::ostream& os_;
  uint64_t hash_ = 1469598103934665603ULL;
};

class Reader {
 public:
  explicit Reader(std::istream& is) : is_(is) {}

  template <typename T>
  T pod() {
    T v{};
    is_.read(reinterpret_cast<char*>(&v), sizeof(T));
    if (!is_) throw Error("module deserialization: truncated stream");
    hash_ = fnv1a(&v, sizeof(T), hash_);
    return v;
  }

  void bytes(void* data, size_t n) {
    is_.read(static_cast<char*>(data), static_cast<std::streamsize>(n));
    if (!is_) throw Error("module deserialization: truncated stream");
    hash_ = fnv1a(data, n, hash_);
  }

  template <typename T>
  std::vector<T> vec(uint64_t sanity_max = (1ULL << 32)) {
    const uint64_t n = pod<uint64_t>();
    if (n > sanity_max) {
      throw Error("module deserialization: implausible vector length");
    }
    std::vector<T> v(static_cast<size_t>(n));
    if (n > 0) bytes(v.data(), v.size() * sizeof(T));
    return v;
  }

  std::string str() {
    const uint64_t n = pod<uint64_t>();
    if (n > (1ULL << 20)) {
      throw Error("module deserialization: implausible key length");
    }
    std::string s(static_cast<size_t>(n), '\0');
    if (n > 0) bytes(s.data(), s.size());
    return s;
  }

  uint64_t hash() const { return hash_; }

 private:
  std::istream& is_;
  uint64_t hash_ = 1469598103934665603ULL;
};

}  // namespace

void write_store_header(std::ostream& os) {
  os.write(kMagic, sizeof(kMagic));
  if (!os) throw Error("module serialization: cannot write header");
}

void read_store_header(std::istream& is) {
  char magic[sizeof(kMagic)] = {};
  is.read(magic, sizeof(magic));
  if (!is || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw Error("module deserialization: bad or missing header");
  }
}

void write_module_record(std::ostream& os, const std::string& key,
                         const EncodedModule& m) {
  Writer w(os);
  w.pod(kRecordTag);
  w.str(key);
  w.pod(static_cast<uint8_t>(m.precision));
  w.pod(static_cast<int32_t>(m.n_tokens));
  w.pod(static_cast<int32_t>(m.kv_dim));
  w.pod(static_cast<int32_t>(m.n_layers));

  std::vector<int32_t> ranges;
  for (const auto& [b, e] : m.text_row_ranges) {
    ranges.push_back(b);
    ranges.push_back(e);
  }
  w.vec(ranges);

  std::vector<int32_t> params;
  for (const auto& p : m.params) {
    params.push_back(p.param_index);
    params.push_back(p.row_begin);
    params.push_back(p.row_end);
  }
  w.vec(params);

  switch (m.precision) {
    case StorePrecision::kFp32: {
      PC_CHECK(m.kv32.has_value());
      w.vec(m.kv32->pos_ids());
      const size_t row_floats = static_cast<size_t>(m.kv_dim);
      for (int l = 0; l < m.n_layers; ++l) {
        // Rows are contiguous per layer; write K then V blocks.
        if (m.n_tokens > 0) {
          w.bytes(m.kv32->k_row(l, 0),
                  row_floats * static_cast<size_t>(m.n_tokens) *
                      sizeof(float));
          w.bytes(m.kv32->v_row(l, 0),
                  row_floats * static_cast<size_t>(m.n_tokens) *
                      sizeof(float));
        }
      }
      break;
    }
    case StorePrecision::kFp16:
      w.vec(m.pos_ids);
      for (const auto& layer : m.kv16_layers) {
        w.vec(layer.k);
        w.vec(layer.v);
      }
      break;
    case StorePrecision::kQ8:
      w.vec(m.pos_ids);
      for (const auto& layer : m.kv8_layers) {
        w.vec(layer.k);
        w.vec(layer.v);
        w.vec(layer.k_scales);
        w.vec(layer.v_scales);
      }
      break;
    case StorePrecision::kQ4:
      w.vec(m.pos_ids);
      for (const auto& layer : m.kv4_layers) {
        w.vec(layer.k);
        w.vec(layer.v);
        w.vec(layer.k_scales);
        w.vec(layer.v_scales);
      }
      break;
  }

  const uint64_t checksum = w.hash();
  os.write(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  w.check();
}

bool read_module_record(std::istream& is, std::string* key,
                        EncodedModule* out) {
  // Clean EOF detection before committing to a record.
  if (is.peek() == std::char_traits<char>::eof()) return false;

  Reader r(is);
  const uint32_t tag = r.pod<uint32_t>();
  if (tag != kRecordTag) {
    throw Error("module deserialization: bad record tag");
  }
  *key = r.str();

  EncodedModule m;
  m.precision = static_cast<StorePrecision>(r.pod<uint8_t>());
  if (m.precision != StorePrecision::kFp32 &&
      m.precision != StorePrecision::kFp16 &&
      m.precision != StorePrecision::kQ8 &&
      m.precision != StorePrecision::kQ4) {
    throw Error("module deserialization: unknown precision");
  }
  m.n_tokens = r.pod<int32_t>();
  m.kv_dim = r.pod<int32_t>();
  m.n_layers = r.pod<int32_t>();
  if (m.n_tokens < 0 || m.kv_dim <= 0 || m.n_layers <= 0) {
    throw Error("module deserialization: bad geometry");
  }

  const auto ranges = r.vec<int32_t>();
  if (ranges.size() % 2 != 0) {
    throw Error("module deserialization: odd range list");
  }
  for (size_t i = 0; i < ranges.size(); i += 2) {
    m.text_row_ranges.emplace_back(ranges[i], ranges[i + 1]);
  }
  const auto params = r.vec<int32_t>();
  if (params.size() % 3 != 0) {
    throw Error("module deserialization: bad param list");
  }
  for (size_t i = 0; i < params.size(); i += 3) {
    m.params.push_back({params[i], params[i + 1], params[i + 2]});
  }

  const size_t row_elems = static_cast<size_t>(m.kv_dim);
  const size_t layer_elems = row_elems * static_cast<size_t>(m.n_tokens);
  switch (m.precision) {
    case StorePrecision::kFp32: {
      const std::vector<int> pos = r.vec<int>();
      if (static_cast<int>(pos.size()) != m.n_tokens) {
        throw Error("module deserialization: pos id count mismatch");
      }
      KVCache kv(m.n_layers, m.kv_dim);
      kv.reserve(m.n_tokens);
      kv.append_tokens(pos);
      std::vector<float> buf(layer_elems);
      for (int l = 0; l < m.n_layers; ++l) {
        if (m.n_tokens == 0) break;
        r.bytes(buf.data(), layer_elems * sizeof(float));
        std::memcpy(kv.k_row(l, 0), buf.data(), layer_elems * sizeof(float));
        r.bytes(buf.data(), layer_elems * sizeof(float));
        std::memcpy(kv.v_row(l, 0), buf.data(), layer_elems * sizeof(float));
      }
      m.kv32 = std::move(kv);
      break;
    }
    case StorePrecision::kFp16:
      m.pos_ids = r.vec<int>();
      m.kv16_layers.resize(static_cast<size_t>(m.n_layers));
      for (auto& layer : m.kv16_layers) {
        layer.k = r.vec<f16>();
        layer.v = r.vec<f16>();
        if (layer.k.size() != layer_elems || layer.v.size() != layer_elems) {
          throw Error("module deserialization: fp16 payload size mismatch");
        }
      }
      break;
    case StorePrecision::kQ8:
      m.pos_ids = r.vec<int>();
      m.kv8_layers.resize(static_cast<size_t>(m.n_layers));
      for (auto& layer : m.kv8_layers) {
        layer.k = r.vec<int8_t>();
        layer.v = r.vec<int8_t>();
        layer.k_scales = r.vec<float>();
        layer.v_scales = r.vec<float>();
        if (layer.k.size() != layer_elems || layer.v.size() != layer_elems ||
            layer.k_scales.size() != static_cast<size_t>(m.n_tokens) ||
            layer.v_scales.size() != static_cast<size_t>(m.n_tokens)) {
          throw Error("module deserialization: q8 payload size mismatch");
        }
      }
      break;
    case StorePrecision::kQ4: {
      m.pos_ids = r.vec<int>();
      const size_t packed_bytes =
          q4_row_bytes(m.kv_dim) * static_cast<size_t>(m.n_tokens);
      const size_t scale_elems = static_cast<size_t>(q4_blocks(m.kv_dim)) *
                                 static_cast<size_t>(m.n_tokens);
      m.kv4_layers.resize(static_cast<size_t>(m.n_layers));
      for (auto& layer : m.kv4_layers) {
        layer.k = r.vec<uint8_t>();
        layer.v = r.vec<uint8_t>();
        layer.k_scales = r.vec<float>();
        layer.v_scales = r.vec<float>();
        if (layer.k.size() != packed_bytes ||
            layer.v.size() != packed_bytes ||
            layer.k_scales.size() != scale_elems ||
            layer.v_scales.size() != scale_elems) {
          throw Error("module deserialization: q4 payload size mismatch");
        }
      }
      break;
    }
  }

  const uint64_t computed = r.hash();
  uint64_t stored = 0;
  is.read(reinterpret_cast<char*>(&stored), sizeof(stored));
  if (!is || stored != computed ||
      FaultInjector::global().should_fail(FaultPoint::kCorrupt)) {
    throw Error("module deserialization: checksum mismatch");
  }
  *out = std::move(m);
  return true;
}

void write_module_file(const std::string& path, const std::string& key,
                       const EncodedModule& module) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) throw Error("cannot open '" + tmp + "' for writing");
    try {
      write_store_header(os);
      write_module_record(os, key, module);
      os.flush();
      if (!os) throw Error("write failure persisting module to '" + tmp + "'");
    } catch (...) {
      os.close();
      std::remove(tmp.c_str());
      throw;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw Error("cannot rename '" + tmp + "' over '" + path + "'");
  }
}

EncodedModule read_module_file(const std::string& path,
                               const std::string& expected_key) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw Error("cannot open '" + path + "' for reading");
  read_store_header(is);
  std::string key;
  EncodedModule module;
  if (!read_module_record(is, &key, &module)) {
    throw Error("module file '" + path + "' holds no record");
  }
  if (key != expected_key) {
    throw Error("module file '" + path + "' holds key '" + key +
                "', expected '" + expected_key + "'");
  }
  return module;
}

bool resync_to_next_record(std::istream& is) {
  is.clear();  // a truncated read leaves failbit set
  // kRecordTag little-endian on the wire: "PDCM".
  constexpr unsigned char kPattern[4] = {0x50, 0x44, 0x43, 0x4d};
  size_t matched = 0;
  for (int c = is.get(); c != std::char_traits<char>::eof(); c = is.get()) {
    const auto b = static_cast<unsigned char>(c);
    if (b == kPattern[matched]) {
      if (++matched == sizeof(kPattern)) {
        is.seekg(-static_cast<std::streamoff>(sizeof(kPattern)),
                 std::ios::cur);
        return true;
      }
    } else {
      matched = (b == kPattern[0]) ? 1 : 0;
    }
  }
  return false;
}

}  // namespace pc
