#include "core/module_store.h"

#include <vector>

namespace pc {

ModuleStoreCells::ModuleStoreCells() {
  auto& reg = obs::MetricsRegistry::global();
  hits = reg.counter("pc_store_hits_total", "module store lookup hits");
  misses = reg.counter("pc_store_misses_total", "module store lookup misses");
  insertions =
      reg.counter("pc_store_insertions_total", "modules inserted into store");
  evictions = reg.counter("pc_store_evictions_total",
                          "modules dropped entirely (re-encode on next use)");
  demotions = reg.counter("pc_store_demotions_total",
                          "modules moved device -> host to make room");
  promotions = reg.counter("pc_store_promotions_total",
                           "modules moved host -> device (prefetch/warm-up)");
  dequant_rows = reg.counter("pc_store_dequant_rows_total",
                             "module rows dequantized int8 -> fp32 on read");
  resident_bytes =
      reg.gauge("pc_store_resident_bytes", "encoded bytes resident, all tiers");
  resident_bytes_fp32 = reg.gauge(
      "pc_store_resident_bytes_fp32",
      "resident bytes in unquantized (fp32/fp16) module payloads");
  resident_bytes_q8 = reg.gauge("pc_store_resident_bytes_q8",
                                "resident bytes in Q8_0 module payloads");
  resident_bytes_q4 = reg.gauge("pc_store_resident_bytes_q4",
                                "resident bytes in Q4_0 module payloads");
  pinned_entries =
      reg.gauge("pc_store_pinned_entries", "entries exempt from eviction");
}

const EncodedModule* ModuleStore::find(const std::string& key,
                                       ModuleLocation* location) {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    cells_.misses.inc();
    return nullptr;
  }
  cells_.hits.inc();
  touch(it->second, key);
  if (location != nullptr) *location = it->second.location;
  return &it->second.module;
}

void ModuleStore::touch(Entry& e, const std::string& key) {
  lru_.erase(e.lru_it);
  lru_.push_front(key);
  e.lru_it = lru_.begin();
}

bool ModuleStore::make_room(ModuleLocation loc, size_t bytes) {
  const TierUsage& u = tiers_.usage(loc);
  if (!u.unlimited() && bytes > u.capacity_bytes) return false;
  while (!tiers_.can_fit(loc, bytes)) {
    // Evict the coldest unpinned entry in this tier.
    std::string victim;
    for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
      const Entry& e = entries_.at(*it);
      if (e.location == loc && !e.pinned) {
        victim = *it;
        break;
      }
    }
    if (victim.empty()) return false;  // nothing evictable left

    // Device victims demote to host when it has room (encoded states are
    // expensive to recompute and host memory is the abundant tier, §4.1);
    // anything else is dropped and re-encoded on next use.
    Entry& ve = entries_.at(victim);
    const size_t vbytes = ve.module.payload_bytes();
    const ModuleLocation other = loc == ModuleLocation::kDeviceMemory
                                     ? ModuleLocation::kHostMemory
                                     : ModuleLocation::kDeviceMemory;
    if (loc == ModuleLocation::kDeviceMemory &&
        tiers_.can_fit(other, vbytes)) {
      tiers_.credit(loc, vbytes);
      tiers_.charge(other, vbytes);
      ve.location = other;
      cells_.demotions.inc();
    } else {
      erase(victim);
      cells_.evictions.inc();
    }
  }
  return true;
}

bool ModuleStore::pin(const std::string& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return false;
  if (!it->second.pinned) cells_.pinned_entries.add(1);
  it->second.pinned = true;
  return true;
}

bool ModuleStore::unpin(const std::string& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return false;
  if (it->second.pinned) cells_.pinned_entries.sub(1);
  it->second.pinned = false;
  return true;
}

bool ModuleStore::is_pinned(const std::string& key) const {
  auto it = entries_.find(key);
  return it != entries_.end() && it->second.pinned;
}

bool ModuleStore::promote(const std::string& key, ModuleLocation target) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return false;
  Entry& e = it->second;
  if (e.location == target) return true;
  const size_t bytes = e.module.payload_bytes();
  if (!make_room(target, bytes)) return false;
  // make_room may have evicted entries but never this one (wrong tier).
  tiers_.credit(e.location, bytes);
  tiers_.charge(target, bytes);
  e.location = target;
  cells_.promotions.inc();
  sync_resident_gauge();
  return true;
}

void ModuleStore::insert(const std::string& key, EncodedModule module) {
  erase(key);  // replace semantics
  const size_t bytes = module.payload_bytes();
  size_t* bucket = &resident_fp32_bytes_;
  if (module.precision == StorePrecision::kQ8) bucket = &resident_q8_bytes_;
  if (module.precision == StorePrecision::kQ4) bucket = &resident_q4_bytes_;

  // Placement: free device space, then free host space (spilling keeps
  // every module resident, paper §4.1), and only then evict — device tier
  // first, since its entries can be re-fetched from nowhere cheaper.
  ModuleLocation loc;
  if (tiers_.can_fit(ModuleLocation::kDeviceMemory, bytes)) {
    loc = ModuleLocation::kDeviceMemory;
  } else if (tiers_.can_fit(ModuleLocation::kHostMemory, bytes)) {
    loc = ModuleLocation::kHostMemory;
  } else if (make_room(ModuleLocation::kDeviceMemory, bytes)) {
    loc = ModuleLocation::kDeviceMemory;
  } else if (make_room(ModuleLocation::kHostMemory, bytes)) {
    loc = ModuleLocation::kHostMemory;
  } else {
    throw CacheError("module '" + key + "' (" + std::to_string(bytes) +
                     " bytes) does not fit in any memory tier");
  }
  tiers_.charge(loc, bytes);
  *bucket += bytes;

  lru_.push_front(key);
  Entry e{std::move(module), loc, /*pinned=*/false, lru_.begin()};
  entries_.emplace(key, std::move(e));
  cells_.insertions.inc();
  sync_resident_gauge();
}

void ModuleStore::erase(const std::string& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return;
  const size_t bytes = it->second.module.payload_bytes();
  tiers_.credit(it->second.location, bytes);
  switch (it->second.module.precision) {
    case StorePrecision::kQ8:
      resident_q8_bytes_ -= bytes;
      break;
    case StorePrecision::kQ4:
      resident_q4_bytes_ -= bytes;
      break;
    default:
      resident_fp32_bytes_ -= bytes;
      break;
  }
  if (it->second.pinned) cells_.pinned_entries.sub(1);
  lru_.erase(it->second.lru_it);
  entries_.erase(it);
  sync_resident_gauge();
}

void ModuleStore::sync_resident_gauge() {
  cells_.resident_bytes.set(static_cast<int64_t>(
      tiers_.usage(ModuleLocation::kDeviceMemory).used_bytes +
      tiers_.usage(ModuleLocation::kHostMemory).used_bytes));
  cells_.resident_bytes_fp32.set(static_cast<int64_t>(resident_fp32_bytes_));
  cells_.resident_bytes_q8.set(static_cast<int64_t>(resident_q8_bytes_));
  cells_.resident_bytes_q4.set(static_cast<int64_t>(resident_q4_bytes_));
}

void ModuleStore::clear() {
  std::vector<std::string> keys;
  keys.reserve(entries_.size());
  for (const auto& [k, _] : entries_) keys.push_back(k);
  for (const auto& k : keys) erase(k);
}

}  // namespace pc
