#include "core/module_store.h"

#include <vector>

namespace pc {

const EncodedModule* ModuleStore::find(const std::string& key,
                                       ModuleLocation* location) {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  touch(it->second, key);
  if (location != nullptr) *location = it->second.location;
  return &it->second.module;
}

void ModuleStore::touch(Entry& e, const std::string& key) {
  lru_.erase(e.lru_it);
  lru_.push_front(key);
  e.lru_it = lru_.begin();
}

bool ModuleStore::make_room(ModuleLocation loc, size_t bytes) {
  const TierUsage& u = tiers_.usage(loc);
  if (u.capacity_bytes != 0 && bytes > u.capacity_bytes) return false;
  while (!tiers_.can_fit(loc, bytes)) {
    // Evict the coldest unpinned entry in this tier.
    std::string victim;
    for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
      const Entry& e = entries_.at(*it);
      if (e.location == loc && !e.pinned) {
        victim = *it;
        break;
      }
    }
    if (victim.empty()) return false;  // nothing evictable left

    // Device victims demote to host when it has room (encoded states are
    // expensive to recompute and host memory is the abundant tier, §4.1);
    // anything else is dropped and re-encoded on next use.
    Entry& ve = entries_.at(victim);
    const size_t vbytes = ve.module.payload_bytes();
    const ModuleLocation other = loc == ModuleLocation::kDeviceMemory
                                     ? ModuleLocation::kHostMemory
                                     : ModuleLocation::kDeviceMemory;
    if (loc == ModuleLocation::kDeviceMemory &&
        tiers_.can_fit(other, vbytes)) {
      tiers_.credit(loc, vbytes);
      tiers_.charge(other, vbytes);
      ve.location = other;
      ++stats_.demotions;
    } else {
      erase(victim);
      ++stats_.evictions;
    }
  }
  return true;
}

bool ModuleStore::pin(const std::string& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return false;
  it->second.pinned = true;
  return true;
}

bool ModuleStore::unpin(const std::string& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return false;
  it->second.pinned = false;
  return true;
}

bool ModuleStore::is_pinned(const std::string& key) const {
  auto it = entries_.find(key);
  return it != entries_.end() && it->second.pinned;
}

bool ModuleStore::promote(const std::string& key, ModuleLocation target) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return false;
  Entry& e = it->second;
  if (e.location == target) return true;
  const size_t bytes = e.module.payload_bytes();
  if (!make_room(target, bytes)) return false;
  // make_room may have evicted entries but never this one (wrong tier).
  tiers_.credit(e.location, bytes);
  tiers_.charge(target, bytes);
  e.location = target;
  ++stats_.promotions;
  return true;
}

void ModuleStore::insert(const std::string& key, EncodedModule module) {
  erase(key);  // replace semantics
  const size_t bytes = module.payload_bytes();

  // Placement: free device space, then free host space (spilling keeps
  // every module resident, paper §4.1), and only then evict — device tier
  // first, since its entries can be re-fetched from nowhere cheaper.
  ModuleLocation loc;
  if (tiers_.can_fit(ModuleLocation::kDeviceMemory, bytes)) {
    loc = ModuleLocation::kDeviceMemory;
  } else if (tiers_.can_fit(ModuleLocation::kHostMemory, bytes)) {
    loc = ModuleLocation::kHostMemory;
  } else if (make_room(ModuleLocation::kDeviceMemory, bytes)) {
    loc = ModuleLocation::kDeviceMemory;
  } else if (make_room(ModuleLocation::kHostMemory, bytes)) {
    loc = ModuleLocation::kHostMemory;
  } else {
    throw CacheError("module '" + key + "' (" + std::to_string(bytes) +
                     " bytes) does not fit in any memory tier");
  }
  tiers_.charge(loc, bytes);

  lru_.push_front(key);
  Entry e{std::move(module), loc, /*pinned=*/false, lru_.begin()};
  entries_.emplace(key, std::move(e));
  ++stats_.insertions;
}

void ModuleStore::erase(const std::string& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return;
  tiers_.credit(it->second.location, it->second.module.payload_bytes());
  lru_.erase(it->second.lru_it);
  entries_.erase(it);
}

void ModuleStore::clear() {
  std::vector<std::string> keys;
  keys.reserve(entries_.size());
  for (const auto& [k, _] : entries_) keys.push_back(k);
  for (const auto& k : keys) erase(k);
}

}  // namespace pc
