// Prefix-cache baseline: the "simple prefix sharing" the paper contrasts
// against (§2.2, PagedAttention / vLLM-style automatic prefix caching).
//
// Attention states are reused only when a new request's token stream shares
// an exact *prefix* (same tokens at positions 0..k) with a previously
// served one — no schema, no position relocation, no masking. This is the
// strongest schema-free baseline: it is exact (prefix states are identical
// by construction) but brittle, because any reordering or substitution of
// shared content breaks the match. bench_prefix_vs_modular quantifies the
// gap against Prompt Cache's modular reuse.
#pragma once

#include <cstdint>
#include <list>
#include <string>
#include <vector>

#include "model/model.h"
#include "tokenizer/tokenizer.h"

namespace pc {

struct PrefixCacheStats {
  uint64_t requests = 0;
  uint64_t full_hits = 0;      // entire prompt prefilled from cache
  uint64_t partial_hits = 0;   // some prefix reused
  uint64_t misses = 0;         // nothing reusable
  uint64_t tokens_reused = 0;
  uint64_t tokens_computed = 0;
  uint64_t evictions = 0;
};

class PrefixCacheEngine {
 public:
  // capacity_bytes bounds the resident prefix states (0 = unlimited);
  // eviction is LRU over whole entries.
  PrefixCacheEngine(const Model& model, const TextTokenizer& tokenizer,
                    size_t capacity_bytes = 0)
      : model_(model), tokenizer_(tokenizer), capacity_(capacity_bytes) {}

  struct Result {
    std::vector<TokenId> tokens;
    std::string text;
    double ttft_ms = 0;
    int reused_tokens = 0;
    int computed_tokens = 0;
  };

  // Serves a plain prompt: longest-prefix lookup, copy, compute the rest,
  // generate; the prompt's full prefill states are cached for future
  // requests.
  Result serve(const std::vector<TokenId>& prompt,
               const GenerateOptions& options = {});

  // Longest cached prefix (in tokens) of `prompt`, without serving.
  int longest_prefix(const std::vector<TokenId>& prompt) const;

  const PrefixCacheStats& stats() const { return stats_; }
  size_t resident_bytes() const { return resident_bytes_; }
  size_t entries() const { return entries_.size(); }

 private:
  struct Entry {
    std::vector<TokenId> tokens;
    KVCache states;
    Entry(std::vector<TokenId> t, KVCache s)
        : tokens(std::move(t)), states(std::move(s)) {}
  };

  void insert(std::vector<TokenId> tokens, KVCache states);

  const Model& model_;
  const TextTokenizer& tokenizer_;
  size_t capacity_;
  size_t resident_bytes_ = 0;
  std::list<Entry> entries_;  // front = most recently used
  PrefixCacheStats stats_;
};

}  // namespace pc
