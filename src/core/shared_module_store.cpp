#include "core/shared_module_store.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <thread>

#include "core/serialize.h"
#include "obs/trace.h"
#include "sys/fault.h"

namespace pc {

namespace {

// Shard slices sum EXACTLY to `total`: base = total / n, with the first
// total % n shards taking one extra byte. When capacity < n_shards some
// slices are genuinely 0 bytes — those shards are closed (zero_capacity),
// not unlimited and not rounded up. The old clamp to "at least 1 byte"
// made per-shard capacities sum to more than the configured total, so a
// store configured for N bytes could admit more than N.
size_t split_capacity(size_t total, size_t n_shards, size_t shard_index) {
  if (total == 0) return 0;  // unlimited stays unlimited per shard
  const size_t base = total / n_shards;
  const size_t extra = shard_index < total % n_shards ? 1 : 0;
  return base + extra;
}

uint64_t elapsed_us(std::chrono::steady_clock::time_point since) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - since)
          .count());
}

}  // namespace

DiskTierConfig DiskTierConfig::from_env() {
  DiskTierConfig cfg;
  const char* dir = std::getenv("PC_DISK_DIR");
  if (dir != nullptr && *dir != '\0') {
    cfg.enabled = true;
    cfg.dir = dir;
  }
  const char* cap = std::getenv("PC_DISK_CAPACITY");
  if (cap != nullptr && *cap != '\0') {
    cfg.capacity_bytes = std::strtoull(cap, nullptr, 10);
  }
  return cfg;
}

SharedModuleStore::SharedModuleStore(size_t device_capacity,
                                     size_t host_capacity, size_t n_shards)
    : SharedModuleStore(device_capacity, host_capacity,
                        DiskTierConfig::from_env(), n_shards) {}

SharedModuleStore::SharedModuleStore(size_t device_capacity,
                                     size_t host_capacity, DiskTierConfig disk,
                                     size_t n_shards)
    : device_capacity_total_(device_capacity),
      host_capacity_total_(host_capacity),
      disk_(std::move(disk)),
      single_flight_waits_(obs::MetricsRegistry::global().counter(
          "pc_store_single_flight_waits_total",
          "callers that blocked on another thread's in-flight encode")),
      disk_spills_(obs::MetricsRegistry::global().counter(
          "pc_store_disk_spills_total",
          "entries serialized to the disk tier instead of destroyed")),
      disk_faults_(obs::MetricsRegistry::global().counter(
          "pc_store_disk_faults_total",
          "spill records faulted back into RAM")),
      disk_prefetch_hits_(obs::MetricsRegistry::global().counter(
          "pc_store_disk_prefetch_hits_total",
          "serves that found their module already prefetched from disk")),
      disk_prefetch_misses_(obs::MetricsRegistry::global().counter(
          "pc_store_disk_prefetch_misses_total",
          "demand fault-ins on the serve path the prefetcher missed")),
      disk_evictions_(obs::MetricsRegistry::global().counter(
          "pc_store_disk_evictions_total",
          "spill records destroyed (disk pressure, replacement, or erase)")),
      disk_read_failures_(obs::MetricsRegistry::global().counter(
          "pc_store_disk_read_failures_total",
          "fault-ins dropped on I/O failure or corruption")),
      disk_spill_failures_(obs::MetricsRegistry::global().counter(
          "pc_store_disk_spill_failures_total",
          "spill writes that failed; the victim was destroyed instead")),
      disk_stall_us_(obs::MetricsRegistry::global().counter(
          "pc_store_disk_stall_us_total",
          "wall microseconds spent inside disk fault-in reads")),
      disk_spilled_bytes_(obs::MetricsRegistry::global().gauge(
          "pc_store_disk_spilled_bytes",
          "payload bytes currently resident on the disk tier")) {
  PC_CHECK_MSG(n_shards > 0, "SharedModuleStore needs at least one shard");
  shards_.reserve(n_shards);
  for (size_t i = 0; i < n_shards; ++i) {
    const size_t host_slice = split_capacity(host_capacity, n_shards, i);
    const size_t device_slice = split_capacity(device_capacity, n_shards, i);
    shards_.push_back(std::make_unique<Shard>(
        host_slice, device_slice,
        /*host_zero=*/host_capacity != 0 && host_slice == 0,
        /*device_zero=*/device_capacity != 0 && device_slice == 0));
    Shard& s = *shards_.back();
    const size_t disk_slice =
        split_capacity(disk_.capacity_bytes, n_shards, i);
    s.disk.capacity_bytes = disk_slice;
    s.disk.zero_capacity = disk_.capacity_bytes != 0 && disk_slice == 0;
  }
  if (disk_.enabled) {
    namespace fs = std::filesystem;
    // One unique subdirectory per store instance: parallel stores (and
    // parallel test binaries) never collide, and the destructor can remove
    // the whole directory without touching anyone else's spill files.
    static std::atomic<uint64_t> instance{0};
    std::error_code ec;
    fs::path base = disk_.dir.empty() ? fs::temp_directory_path(ec)
                                      : fs::path(disk_.dir);
    fs::path dir = base / ("pc_spill_" +
                           std::to_string(static_cast<uint64_t>(::getpid())) +
                           "_" + std::to_string(instance.fetch_add(1)));
    fs::create_directories(dir, ec);
    if (ec) {
      throw ConfigError("cannot create spill directory '" + dir.string() +
                        "': " + ec.message());
    }
    spill_dir_ = dir.string();
  }
}

SharedModuleStore::~SharedModuleStore() {
  if (!spill_dir_.empty()) {
    std::error_code ec;
    std::filesystem::remove_all(spill_dir_, ec);  // best-effort cleanup
  }
}

SharedModuleStore::ModuleRef SharedModuleStore::find(const std::string& key,
                                                     bool and_pin) {
  Shard& s = shard_for(key);
  for (;;) {
    std::shared_ptr<Flight> flight;
    SpillInfo spill;  // non-empty path <=> this caller leads a fault-in
    {
      std::unique_lock lock(s.mutex);
      auto it = s.entries.find(key);
      // Injected store pressure: spuriously evict the (unpinned) entry so
      // the caller takes the thrash-reencode path. Pinned entries are
      // exempt, as in real eviction. The fault poll runs last so no draw
      // is consumed when there is nothing to evict.
      if (it != s.entries.end() && it->second.pin_count == 0 &&
          FaultInjector::global().should_fail(FaultPoint::kEvict)) {
        erase_locked(s, it);
        cells_.evictions.inc();
        it = s.entries.end();
      }
      if (it != s.entries.end()) {
        cells_.hits.inc();
        it->second.last_used = tick();
        if (it->second.prefetched) {
          it->second.prefetched = false;
          disk_prefetch_hits_.inc();
        }
        if (and_pin && ++it->second.pin_count == 1) {
          cells_.pinned_entries.add(1);
        }
        return ModuleRef(it->second.module, it->second.location);
      }
      auto sit = s.spilled.find(key);
      if (sit == s.spilled.end()) {
        cells_.misses.inc();
        return {};
      }
      // The key is on the disk tier: fault it in, single-flight against
      // concurrent encodes and other fault-ins.
      auto fit = s.in_flight.find(key);
      if (fit == s.in_flight.end()) {
        flight = std::make_shared<Flight>();
        s.in_flight.emplace(key, flight);
        spill = sit->second;
      } else {
        flight = fit->second;
        single_flight_waits_.inc();
      }
    }
    if (spill.path.empty()) {
      // Waiter: block on the leader's flight, then retry the lookup.
      PC_SPAN("single_flight_wait");
      std::unique_lock fl(flight->mutex);
      flight->cv.wait(fl, [&] { return flight->done; });
      continue;
    }
    ModuleRef ref = fault_in(s, key, std::move(spill), and_pin,
                             /*prefetching=*/false);
    finish_flight(s, key);
    // A successful fault-in is a (disk) hit: the caller proceeds without
    // re-encoding. A failed read is a miss — the record was dropped and
    // the caller re-encodes, exactly like a destroyed entry.
    (ref ? cells_.hits : cells_.misses).inc();
    return ref;
  }
}

bool SharedModuleStore::prefetch(const std::string& key) {
  Shard& s = shard_for(key);
  SpillInfo spill;
  {
    std::unique_lock lock(s.mutex);
    auto it = s.entries.find(key);
    if (it != s.entries.end()) {
      // Already resident; it is about to be used, so bump its recency.
      it->second.last_used = tick();
      return true;
    }
    auto sit = s.spilled.find(key);
    if (sit == s.spilled.end()) return false;
    // Single-flight dedup: if an ensure() leader or another fault-in is
    // already producing the key, the prefetch's job is done — never block
    // the pipeline behind someone else's flight.
    if (s.in_flight.contains(key)) return true;
    auto flight = std::make_shared<Flight>();
    s.in_flight.emplace(key, flight);
    spill = sit->second;
  }
  ModuleRef ref =
      fault_in(s, key, std::move(spill), /*and_pin=*/false,
               /*prefetching=*/true);
  finish_flight(s, key);
  return static_cast<bool>(ref);
}

SharedModuleStore::ModuleRef SharedModuleStore::fault_in(Shard& s,
                                                         const std::string& key,
                                                         SpillInfo info,
                                                         bool and_pin,
                                                         bool prefetching) {
  PC_SPAN("disk_fault_in");
  const auto t0 = std::chrono::steady_clock::now();
  // The read runs with no store locks held, like the encode leader path.
  std::shared_ptr<const EncodedModule> payload;
  if (!FaultInjector::global().should_fail(FaultPoint::kDiskRead)) {
    try {
      payload =
          std::make_shared<const EncodedModule>(read_module_file(info.path, key));
    } catch (const Error&) {
      payload = nullptr;  // corrupt/truncated/missing: a read failure
    }
  }
  if (payload != nullptr && (disk_.read_latency_s > 0 ||
                             disk_.read_bandwidth_bytes_per_s > 0)) {
    // Simulated disk-link cost on top of the real file read (see
    // sys/server.h's host-link rationale: modeled hardware sleeps for the
    // time the real transfer would take, overlapping across threads).
    double cost_s = disk_.read_latency_s;
    if (disk_.read_bandwidth_bytes_per_s > 0) {
      cost_s += static_cast<double>(info.bytes) /
                disk_.read_bandwidth_bytes_per_s;
    }
    std::this_thread::sleep_for(std::chrono::duration<double>(cost_s));
  }
  disk_stall_us_.inc(elapsed_us(t0));

  std::unique_lock lock(s.mutex);
  // The record may have been administratively erased (or replaced) while
  // we read; only account transitions for a record that is still ours.
  auto sit = s.spilled.find(key);
  const bool record_live =
      sit != s.spilled.end() && sit->second.path == info.path;
  if (payload == nullptr) {
    if (record_live) {
      drop_spill_locked(s, sit, /*count_eviction=*/false);
      disk_read_failures_.inc();
    }
    return {};
  }
  if (record_live) {
    drop_spill_locked(s, sit, /*count_eviction=*/false);
    disk_faults_.inc();
    // A fault-in on the serve path is latency the prefetcher failed to
    // hide; a prefetcher fault-in is the pipeline doing its job.
    if (!prefetching) disk_prefetch_misses_.inc();
  }
  try {
    // Host-first: disk bytes surface as host-resident, so the serve path
    // charges them through the LinkModel like any host-tier module.
    const ModuleLocation loc = place_locked(s, key, payload,
                                            /*pins=*/and_pin ? 1 : 0,
                                            PlacePref::kHostFirst);
    auto eit = s.entries.find(key);
    if (eit != s.entries.end()) eit->second.prefetched = prefetching;
    return ModuleRef(std::move(payload), loc);
  } catch (const CacheError&) {
    // Every RAM tier is wedged shut (pinned bytes). The payload is in
    // hand, so serve this caller through the ref; the key simply stops
    // being resident and a later lookup re-encodes it (deterministically —
    // bitwise identity is preserved either way).
    return ModuleRef(std::move(payload), ModuleLocation::kHostMemory);
  }
}

SharedModuleStore::ModuleRef SharedModuleStore::ensure(
    const std::string& key, const std::function<EncodedModule()>& encode,
    bool* encoded_here, bool and_pin) {
  if (encoded_here != nullptr) *encoded_here = false;
  Shard& s = shard_for(key);
  SpillInfo spill;
  for (;;) {
    std::shared_ptr<Flight> flight;
    {
      std::unique_lock lock(s.mutex);
      auto it = s.entries.find(key);
      if (it != s.entries.end()) {
        cells_.hits.inc();
        it->second.last_used = tick();
        if (it->second.prefetched) {
          it->second.prefetched = false;
          disk_prefetch_hits_.inc();
        }
        if (and_pin && ++it->second.pin_count == 1) {
          cells_.pinned_entries.add(1);
        }
        return ModuleRef(it->second.module, it->second.location);
      }
      auto fit = s.in_flight.find(key);
      if (fit == s.in_flight.end()) {
        // This caller is the leader for the key.
        flight = std::make_shared<Flight>();
        s.in_flight.emplace(key, flight);
        if (auto sit = s.spilled.find(key); sit != s.spilled.end()) {
          spill = sit->second;
        }
        break;
      }
      flight = fit->second;
      single_flight_waits_.inc();
    }
    // Wait for the leader, then re-check the entry table. A failed leader
    // leaves no entry; the loop makes one waiter the next leader.
    PC_SPAN("single_flight_wait");
    std::unique_lock fl(flight->mutex);
    flight->cv.wait(fl, [&] { return flight->done; });
  }

  // Leader path. A spilled record short-circuits the encode: the disk
  // payload is byte-exact, so faulting it in costs a read, not a forward
  // pass. A failed read falls through to the encode, still as the same
  // flight leader (waiters stay parked — no duplicate encodes).
  if (!spill.path.empty()) {
    ModuleRef ref = fault_in(s, key, std::move(spill), and_pin,
                             /*prefetching=*/false);
    if (ref) {
      finish_flight(s, key);
      cells_.hits.inc();  // a disk hit: no encode was needed
      return ref;
    }
  }
  cells_.misses.inc();

  // The forward pass runs with no store locks held, so other shard keys
  // (and other shards) stay fully available meanwhile.
  std::shared_ptr<const EncodedModule> payload;
  ModuleLocation loc;
  try {
    payload = std::make_shared<const EncodedModule>(encode());
    std::unique_lock lock(s.mutex);
    loc = place_locked(s, key, payload, /*pins=*/and_pin ? 1 : 0);
  } catch (...) {
    finish_flight(s, key);
    throw;
  }
  finish_flight(s, key);
  if (encoded_here != nullptr) *encoded_here = true;
  // The ref is built from the leader's own payload pointer: valid even if
  // the entry was already evicted again by a racing insert.
  return ModuleRef(std::move(payload), loc);
}

void SharedModuleStore::finish_flight(Shard& s, const std::string& key) {
  std::shared_ptr<Flight> flight;
  {
    std::unique_lock lock(s.mutex);
    auto it = s.in_flight.find(key);
    PC_CHECK_MSG(it != s.in_flight.end(), "single-flight entry vanished");
    flight = std::move(it->second);
    s.in_flight.erase(it);
  }
  {
    std::lock_guard fl(flight->mutex);
    flight->done = true;
  }
  flight->cv.notify_all();
}

void SharedModuleStore::insert(const std::string& key, EncodedModule module) {
  Shard& s = shard_for(key);
  auto payload = std::make_shared<const EncodedModule>(std::move(module));
  std::unique_lock lock(s.mutex);
  (void)place_locked(s, key, std::move(payload), /*pins=*/0);
}

ModuleLocation SharedModuleStore::place_locked(
    Shard& s, const std::string& key,
    std::shared_ptr<const EncodedModule> module, int pins, PlacePref pref) {
  // Replace semantics: free the old entry first, carrying its pin count
  // over (live borrowers keep the old payload alive through their refs).
  auto old = s.entries.find(key);
  if (old != s.entries.end()) {
    pins += old->second.pin_count;
    erase_locked(s, old);
  }
  // A (re)placed key obsoletes any spill record still on disk for it — a
  // stale record must never fault in over newer content.
  if (auto srec = s.spilled.find(key); srec != s.spilled.end()) {
    drop_spill_locked(s, srec, /*count_eviction=*/true);
  }

  const size_t bytes = module->payload_bytes();
  const ModuleLocation first = pref == PlacePref::kDeviceFirst
                                   ? ModuleLocation::kDeviceMemory
                                   : ModuleLocation::kHostMemory;
  const ModuleLocation second = pref == PlacePref::kDeviceFirst
                                    ? ModuleLocation::kHostMemory
                                    : ModuleLocation::kDeviceMemory;
  ModuleLocation loc;
  if (s.tiers.can_fit(first, bytes)) {
    loc = first;
  } else if (s.tiers.can_fit(second, bytes)) {
    loc = second;
  } else if (make_room_locked(s, first, bytes)) {
    loc = first;
  } else if (make_room_locked(s, second, bytes)) {
    loc = second;
  } else {
    // Distinguish "too big for the store" from "too big for a 1/N shard
    // slice of it": the latter is a sharding-configuration problem, not a
    // capacity problem, and the fix is different.
    const size_t max_total =
        std::max(device_capacity_total_, host_capacity_total_);
    if (bytes <= max_total) {
      throw CacheError(
          "module '" + key + "' (" + std::to_string(bytes) +
          " bytes) exceeds its per-shard slice of every memory tier "
          "(capacities are split across " +
          std::to_string(shards_.size()) +
          " shards) but fits the configured total — lower n_shards or "
          "raise capacity");
    }
    throw CacheError("module '" + key + "' (" + std::to_string(bytes) +
                     " bytes) does not fit in any memory tier shard");
  }
  s.tiers.charge(loc, bytes);
  obs::Gauge* format_gauge = &cells_.resident_bytes_fp32;
  if (module->precision == StorePrecision::kQ8) {
    format_gauge = &cells_.resident_bytes_q8;
  } else if (module->precision == StorePrecision::kQ4) {
    format_gauge = &cells_.resident_bytes_q4;
  }
  s.entries.emplace(key, Entry{std::move(module), loc, pins, tick(),
                               /*prefetched=*/false});
  cells_.insertions.inc();
  cells_.resident_bytes.add(static_cast<int64_t>(bytes));
  note_resident_peak();
  format_gauge->add(static_cast<int64_t>(bytes));
  if (pins > 0) cells_.pinned_entries.add(1);
  return loc;
}

bool SharedModuleStore::make_room_locked(Shard& s, ModuleLocation loc,
                                         size_t bytes) {
  const TierUsage& u = s.tiers.usage(loc);
  if (!u.unlimited() && bytes > u.capacity_bytes) return false;
  while (!s.tiers.can_fit(loc, bytes)) {
    // Victim: the coldest unpinned entry resident in this tier.
    auto victim = s.entries.end();
    for (auto it = s.entries.begin(); it != s.entries.end(); ++it) {
      if (it->second.location != loc || it->second.pin_count > 0) continue;
      if (victim == s.entries.end() ||
          it->second.last_used < victim->second.last_used) {
        victim = it;
      }
    }
    if (victim == s.entries.end()) return false;  // nothing evictable left

    // Device victims demote to host when it has room (encoded states are
    // expensive to recompute and host is the abundant tier, §4.1).
    const size_t vbytes = victim->second.module->payload_bytes();
    if (loc == ModuleLocation::kDeviceMemory &&
        s.tiers.can_fit(ModuleLocation::kHostMemory, vbytes)) {
      s.tiers.credit(loc, vbytes);
      s.tiers.charge(ModuleLocation::kHostMemory, vbytes);
      victim->second.location = ModuleLocation::kHostMemory;
      cells_.demotions.inc();
    } else if (spill_locked(s, victim)) {
      // The victim left RAM for the disk tier instead of being destroyed;
      // a later lookup faults it back in byte-exact.
    } else {
      erase_locked(s, victim);
      cells_.evictions.inc();
    }
  }
  return true;
}

bool SharedModuleStore::spill_locked(
    Shard& s, std::unordered_map<std::string, Entry>::iterator victim) {
  if (spill_dir_.empty()) return false;
  const size_t bytes = victim->second.module->payload_bytes();
  if (!make_disk_room_locked(s, bytes)) return false;
  if (FaultInjector::global().should_fail(FaultPoint::kDiskWrite)) {
    disk_spill_failures_.inc();
    return false;
  }
  const std::string path = spill_dir_ + "/m" +
                           std::to_string(spill_seq_.fetch_add(
                               1, std::memory_order_relaxed)) +
                           ".pcmod";
  try {
    // Crash-atomic (tmp + flush + rename, core/serialize.cpp): a crash or
    // write fault mid-spill never leaves a partial file to fault in from.
    write_module_file(path, victim->first, *victim->second.module);
  } catch (const Error&) {
    disk_spill_failures_.inc();
    return false;
  }
  // A stale record for the same key (entry was re-inserted while a spill
  // record existed) is replaced, not leaked.
  if (auto old = s.spilled.find(victim->first); old != s.spilled.end()) {
    drop_spill_locked(s, old, /*count_eviction=*/true);
  }
  s.spilled.emplace(victim->first,
                    SpillInfo{path, bytes, victim->second.last_used});
  s.disk.used_bytes += bytes;
  disk_spills_.inc();
  disk_spilled_bytes_.add(static_cast<int64_t>(bytes));
  erase_locked(s, victim);
  return true;
}

bool SharedModuleStore::make_disk_room_locked(Shard& s, size_t bytes) {
  if (s.disk.unlimited()) return true;
  if (bytes > s.disk.capacity_bytes) return false;
  while (bytes > s.disk.capacity_bytes - s.disk.used_bytes) {
    // Victim: the coldest spilled record without an active flight (a file
    // mid-fault-in must not be deleted under the reader).
    auto victim = s.spilled.end();
    for (auto it = s.spilled.begin(); it != s.spilled.end(); ++it) {
      if (s.in_flight.contains(it->first)) continue;
      if (victim == s.spilled.end() ||
          it->second.last_used < victim->second.last_used) {
        victim = it;
      }
    }
    if (victim == s.spilled.end()) return false;
    drop_spill_locked(s, victim, /*count_eviction=*/true);
  }
  return true;
}

void SharedModuleStore::drop_spill_locked(
    Shard& s, std::unordered_map<std::string, SpillInfo>::iterator it,
    bool count_eviction) {
  PC_CHECK_MSG(s.disk.used_bytes >= it->second.bytes, "disk tier under-flow");
  s.disk.used_bytes -= it->second.bytes;
  disk_spilled_bytes_.sub(static_cast<int64_t>(it->second.bytes));
  std::error_code ec;
  std::filesystem::remove(it->second.path, ec);  // best-effort
  if (count_eviction) disk_evictions_.inc();
  s.spilled.erase(it);
}

void SharedModuleStore::note_resident_peak() {
  const auto resident = static_cast<size_t>(cells_.resident_bytes.value());
  size_t prev = peak_resident_bytes_.load(std::memory_order_relaxed);
  while (resident > prev &&
         !peak_resident_bytes_.compare_exchange_weak(
             prev, resident, std::memory_order_relaxed)) {
  }
}

void SharedModuleStore::erase_locked(
    Shard& s, std::unordered_map<std::string, Entry>::iterator it) {
  const size_t bytes = it->second.module->payload_bytes();
  s.tiers.credit(it->second.location, bytes);
  cells_.resident_bytes.sub(static_cast<int64_t>(bytes));
  obs::Gauge* format_gauge = &cells_.resident_bytes_fp32;
  if (it->second.module->precision == StorePrecision::kQ8) {
    format_gauge = &cells_.resident_bytes_q8;
  } else if (it->second.module->precision == StorePrecision::kQ4) {
    format_gauge = &cells_.resident_bytes_q4;
  }
  format_gauge->sub(static_cast<int64_t>(bytes));
  if (it->second.pin_count > 0) cells_.pinned_entries.sub(1);
  s.entries.erase(it);
}

bool SharedModuleStore::contains(const std::string& key) const {
  const Shard& s = shard_for(key);
  std::shared_lock lock(s.mutex);
  return s.entries.contains(key) || s.spilled.contains(key);
}

bool SharedModuleStore::pin(const std::string& key) {
  Shard& s = shard_for(key);
  std::unique_lock lock(s.mutex);
  auto it = s.entries.find(key);
  if (it == s.entries.end()) return false;
  if (++it->second.pin_count == 1) cells_.pinned_entries.add(1);
  return true;
}

bool SharedModuleStore::unpin(const std::string& key) {
  Shard& s = shard_for(key);
  std::unique_lock lock(s.mutex);
  auto it = s.entries.find(key);
  if (it == s.entries.end() || it->second.pin_count == 0) return false;
  if (--it->second.pin_count == 0) cells_.pinned_entries.sub(1);
  return true;
}

bool SharedModuleStore::is_pinned(const std::string& key) const {
  return pin_count(key) > 0;
}

int SharedModuleStore::pin_count(const std::string& key) const {
  const Shard& s = shard_for(key);
  std::shared_lock lock(s.mutex);
  auto it = s.entries.find(key);
  return it == s.entries.end() ? 0 : it->second.pin_count;
}

bool SharedModuleStore::promote(const std::string& key, ModuleLocation target,
                                bool* moved) {
  if (moved != nullptr) *moved = false;
  Shard& s = shard_for(key);
  std::unique_lock lock(s.mutex);
  auto it = s.entries.find(key);
  if (it == s.entries.end()) return false;
  Entry& e = it->second;
  if (e.location == target) return true;
  const size_t bytes = e.module->payload_bytes();
  // make_room may evict entries but never this one (it is in the other
  // tier, and pinned entries are skipped anyway).
  if (!make_room_locked(s, target, bytes)) return false;
  s.tiers.credit(e.location, bytes);
  s.tiers.charge(target, bytes);
  e.location = target;
  cells_.promotions.inc();
  if (moved != nullptr) *moved = true;
  return true;
}

void SharedModuleStore::erase(const std::string& key) {
  Shard& s = shard_for(key);
  std::unique_lock lock(s.mutex);
  auto it = s.entries.find(key);
  if (it != s.entries.end()) erase_locked(s, it);
  if (auto sit = s.spilled.find(key); sit != s.spilled.end()) {
    drop_spill_locked(s, sit, /*count_eviction=*/true);
  }
}

void SharedModuleStore::clear() {
  for (auto& shard : shards_) {
    std::unique_lock lock(shard->mutex);
    while (!shard->entries.empty()) {
      erase_locked(*shard, shard->entries.begin());
    }
    while (!shard->spilled.empty()) {
      drop_spill_locked(*shard, shard->spilled.begin(),
                        /*count_eviction=*/true);
    }
  }
}

void SharedModuleStore::for_each(
    const std::function<void(const std::string& key,
                             const EncodedModule& module,
                             ModuleLocation location)>& fn) const {
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mutex);
    for (const auto& [key, entry] : shard->entries) {
      fn(key, *entry.module, entry.location);
    }
  }
}

size_t SharedModuleStore::size() const {
  size_t n = 0;
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mutex);
    n += shard->entries.size();
  }
  return n;
}

size_t SharedModuleStore::spilled_count() const {
  size_t n = 0;
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mutex);
    n += shard->spilled.size();
  }
  return n;
}

DiskTierStats SharedModuleStore::disk_stats() const {
  DiskTierStats d;
  d.spills = disk_spills_.value();
  d.faults = disk_faults_.value();
  d.prefetch_hits = disk_prefetch_hits_.value();
  d.prefetch_misses = disk_prefetch_misses_.value();
  d.evictions = disk_evictions_.value();
  d.read_failures = disk_read_failures_.value();
  d.spill_failures = disk_spill_failures_.value();
  d.stall_us = disk_stall_us_.value();
  d.spilled_bytes = spilled_bytes();
  d.spilled = spilled_count();
  return d;
}

TierUsage SharedModuleStore::usage(ModuleLocation loc) const {
  TierUsage total;
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mutex);
    const TierUsage& u = shard->tiers.usage(loc);
    total.capacity_bytes += u.capacity_bytes;
    total.used_bytes += u.used_bytes;
  }
  return total;
}

size_t SharedModuleStore::resident_bytes() const {
  return usage(ModuleLocation::kDeviceMemory).used_bytes +
         usage(ModuleLocation::kHostMemory).used_bytes;
}

}  // namespace pc
