#include "core/shared_module_store.h"

#include <algorithm>

#include "obs/trace.h"
#include "sys/fault.h"

namespace pc {

namespace {

size_t split_capacity(size_t total, size_t n_shards, size_t shard_index) {
  if (total == 0) return 0;  // unlimited stays unlimited per shard
  const size_t base = total / n_shards;
  // Distribute the remainder so shard capacities sum exactly to `total`.
  const size_t extra = shard_index < total % n_shards ? 1 : 0;
  // A zero-capacity shard would reject every module; keep at least 1 byte
  // so "too small" surfaces as CacheError with the module's size in it.
  return std::max<size_t>(base + extra, 1);
}

}  // namespace

SharedModuleStore::SharedModuleStore(size_t device_capacity,
                                     size_t host_capacity, size_t n_shards)
    : single_flight_waits_(obs::MetricsRegistry::global().counter(
          "pc_store_single_flight_waits_total",
          "callers that blocked on another thread's in-flight encode")) {
  PC_CHECK_MSG(n_shards > 0, "SharedModuleStore needs at least one shard");
  shards_.reserve(n_shards);
  for (size_t i = 0; i < n_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(
        split_capacity(host_capacity, n_shards, i),
        split_capacity(device_capacity, n_shards, i)));
  }
}

SharedModuleStore::ModuleRef SharedModuleStore::find(const std::string& key,
                                                     bool and_pin) {
  Shard& s = shard_for(key);
  std::unique_lock lock(s.mutex);
  auto it = s.entries.find(key);
  // Injected store pressure: spuriously evict the (unpinned) entry so the
  // caller takes the thrash-reencode path. Pinned entries are exempt, as
  // in real eviction. The fault poll runs last so no draw is consumed when
  // there is nothing to evict.
  if (it != s.entries.end() && it->second.pin_count == 0 &&
      FaultInjector::global().should_fail(FaultPoint::kEvict)) {
    erase_locked(s, it);
    cells_.evictions.inc();
    it = s.entries.end();
  }
  if (it == s.entries.end()) {
    cells_.misses.inc();
    return {};
  }
  cells_.hits.inc();
  it->second.last_used = tick();
  if (and_pin && ++it->second.pin_count == 1) cells_.pinned_entries.add(1);
  return ModuleRef(it->second.module, it->second.location);
}

SharedModuleStore::ModuleRef SharedModuleStore::ensure(
    const std::string& key, const std::function<EncodedModule()>& encode,
    bool* encoded_here, bool and_pin) {
  if (encoded_here != nullptr) *encoded_here = false;
  Shard& s = shard_for(key);
  for (;;) {
    std::shared_ptr<Flight> flight;
    {
      std::unique_lock lock(s.mutex);
      auto it = s.entries.find(key);
      if (it != s.entries.end()) {
        cells_.hits.inc();
        it->second.last_used = tick();
        if (and_pin && ++it->second.pin_count == 1) {
          cells_.pinned_entries.add(1);
        }
        return ModuleRef(it->second.module, it->second.location);
      }
      auto fit = s.in_flight.find(key);
      if (fit == s.in_flight.end()) {
        // This caller is the leader for the key.
        cells_.misses.inc();
        flight = std::make_shared<Flight>();
        s.in_flight.emplace(key, flight);
        break;
      }
      flight = fit->second;
      single_flight_waits_.inc();
    }
    // Wait for the leader, then re-check the entry table. A failed leader
    // leaves no entry; the loop makes one waiter the next leader.
    PC_SPAN("single_flight_wait");
    std::unique_lock fl(flight->mutex);
    flight->cv.wait(fl, [&] { return flight->done; });
  }

  // Leader path: the forward pass runs with no store locks held, so other
  // shard keys (and other shards) stay fully available meanwhile.
  std::shared_ptr<const EncodedModule> payload;
  ModuleLocation loc;
  try {
    payload = std::make_shared<const EncodedModule>(encode());
    std::unique_lock lock(s.mutex);
    loc = place_locked(s, key, payload, /*pins=*/and_pin ? 1 : 0);
  } catch (...) {
    finish_flight(s, key);
    throw;
  }
  finish_flight(s, key);
  if (encoded_here != nullptr) *encoded_here = true;
  // The ref is built from the leader's own payload pointer: valid even if
  // the entry was already evicted again by a racing insert.
  return ModuleRef(std::move(payload), loc);
}

void SharedModuleStore::finish_flight(Shard& s, const std::string& key) {
  std::shared_ptr<Flight> flight;
  {
    std::unique_lock lock(s.mutex);
    auto it = s.in_flight.find(key);
    PC_CHECK_MSG(it != s.in_flight.end(), "single-flight entry vanished");
    flight = std::move(it->second);
    s.in_flight.erase(it);
  }
  {
    std::lock_guard fl(flight->mutex);
    flight->done = true;
  }
  flight->cv.notify_all();
}

void SharedModuleStore::insert(const std::string& key, EncodedModule module) {
  Shard& s = shard_for(key);
  auto payload = std::make_shared<const EncodedModule>(std::move(module));
  std::unique_lock lock(s.mutex);
  (void)place_locked(s, key, std::move(payload), /*pins=*/0);
}

ModuleLocation SharedModuleStore::place_locked(
    Shard& s, const std::string& key,
    std::shared_ptr<const EncodedModule> module, int pins) {
  // Replace semantics: free the old entry first, carrying its pin count
  // over (live borrowers keep the old payload alive through their refs).
  auto old = s.entries.find(key);
  if (old != s.entries.end()) {
    pins += old->second.pin_count;
    erase_locked(s, old);
  }

  const size_t bytes = module->payload_bytes();
  ModuleLocation loc;
  if (s.tiers.can_fit(ModuleLocation::kDeviceMemory, bytes)) {
    loc = ModuleLocation::kDeviceMemory;
  } else if (s.tiers.can_fit(ModuleLocation::kHostMemory, bytes)) {
    loc = ModuleLocation::kHostMemory;
  } else if (make_room_locked(s, ModuleLocation::kDeviceMemory, bytes)) {
    loc = ModuleLocation::kDeviceMemory;
  } else if (make_room_locked(s, ModuleLocation::kHostMemory, bytes)) {
    loc = ModuleLocation::kHostMemory;
  } else {
    throw CacheError("module '" + key + "' (" + std::to_string(bytes) +
                     " bytes) does not fit in any memory tier shard");
  }
  s.tiers.charge(loc, bytes);
  obs::Gauge* format_gauge = &cells_.resident_bytes_fp32;
  if (module->precision == StorePrecision::kQ8) {
    format_gauge = &cells_.resident_bytes_q8;
  } else if (module->precision == StorePrecision::kQ4) {
    format_gauge = &cells_.resident_bytes_q4;
  }
  s.entries.emplace(key, Entry{std::move(module), loc, pins, tick()});
  cells_.insertions.inc();
  cells_.resident_bytes.add(static_cast<int64_t>(bytes));
  format_gauge->add(static_cast<int64_t>(bytes));
  if (pins > 0) cells_.pinned_entries.add(1);
  return loc;
}

bool SharedModuleStore::make_room_locked(Shard& s, ModuleLocation loc,
                                         size_t bytes) {
  const TierUsage& u = s.tiers.usage(loc);
  if (!u.unlimited() && bytes > u.capacity_bytes) return false;
  while (!s.tiers.can_fit(loc, bytes)) {
    // Victim: the coldest unpinned entry resident in this tier.
    auto victim = s.entries.end();
    for (auto it = s.entries.begin(); it != s.entries.end(); ++it) {
      if (it->second.location != loc || it->second.pin_count > 0) continue;
      if (victim == s.entries.end() ||
          it->second.last_used < victim->second.last_used) {
        victim = it;
      }
    }
    if (victim == s.entries.end()) return false;  // nothing evictable left

    // Device victims demote to host when it has room (encoded states are
    // expensive to recompute and host is the abundant tier, §4.1).
    const size_t vbytes = victim->second.module->payload_bytes();
    if (loc == ModuleLocation::kDeviceMemory &&
        s.tiers.can_fit(ModuleLocation::kHostMemory, vbytes)) {
      s.tiers.credit(loc, vbytes);
      s.tiers.charge(ModuleLocation::kHostMemory, vbytes);
      victim->second.location = ModuleLocation::kHostMemory;
      cells_.demotions.inc();
    } else {
      erase_locked(s, victim);
      cells_.evictions.inc();
    }
  }
  return true;
}

void SharedModuleStore::erase_locked(
    Shard& s, std::unordered_map<std::string, Entry>::iterator it) {
  const size_t bytes = it->second.module->payload_bytes();
  s.tiers.credit(it->second.location, bytes);
  cells_.resident_bytes.sub(static_cast<int64_t>(bytes));
  obs::Gauge* format_gauge = &cells_.resident_bytes_fp32;
  if (it->second.module->precision == StorePrecision::kQ8) {
    format_gauge = &cells_.resident_bytes_q8;
  } else if (it->second.module->precision == StorePrecision::kQ4) {
    format_gauge = &cells_.resident_bytes_q4;
  }
  format_gauge->sub(static_cast<int64_t>(bytes));
  if (it->second.pin_count > 0) cells_.pinned_entries.sub(1);
  s.entries.erase(it);
}

bool SharedModuleStore::contains(const std::string& key) const {
  const Shard& s = shard_for(key);
  std::shared_lock lock(s.mutex);
  return s.entries.contains(key);
}

bool SharedModuleStore::pin(const std::string& key) {
  Shard& s = shard_for(key);
  std::unique_lock lock(s.mutex);
  auto it = s.entries.find(key);
  if (it == s.entries.end()) return false;
  if (++it->second.pin_count == 1) cells_.pinned_entries.add(1);
  return true;
}

bool SharedModuleStore::unpin(const std::string& key) {
  Shard& s = shard_for(key);
  std::unique_lock lock(s.mutex);
  auto it = s.entries.find(key);
  if (it == s.entries.end() || it->second.pin_count == 0) return false;
  if (--it->second.pin_count == 0) cells_.pinned_entries.sub(1);
  return true;
}

bool SharedModuleStore::is_pinned(const std::string& key) const {
  return pin_count(key) > 0;
}

int SharedModuleStore::pin_count(const std::string& key) const {
  const Shard& s = shard_for(key);
  std::shared_lock lock(s.mutex);
  auto it = s.entries.find(key);
  return it == s.entries.end() ? 0 : it->second.pin_count;
}

bool SharedModuleStore::promote(const std::string& key, ModuleLocation target,
                                bool* moved) {
  if (moved != nullptr) *moved = false;
  Shard& s = shard_for(key);
  std::unique_lock lock(s.mutex);
  auto it = s.entries.find(key);
  if (it == s.entries.end()) return false;
  Entry& e = it->second;
  if (e.location == target) return true;
  const size_t bytes = e.module->payload_bytes();
  // make_room may evict entries but never this one (it is in the other
  // tier, and pinned entries are skipped anyway).
  if (!make_room_locked(s, target, bytes)) return false;
  s.tiers.credit(e.location, bytes);
  s.tiers.charge(target, bytes);
  e.location = target;
  cells_.promotions.inc();
  if (moved != nullptr) *moved = true;
  return true;
}

void SharedModuleStore::erase(const std::string& key) {
  Shard& s = shard_for(key);
  std::unique_lock lock(s.mutex);
  auto it = s.entries.find(key);
  if (it != s.entries.end()) erase_locked(s, it);
}

void SharedModuleStore::clear() {
  for (auto& shard : shards_) {
    std::unique_lock lock(shard->mutex);
    while (!shard->entries.empty()) {
      erase_locked(*shard, shard->entries.begin());
    }
  }
}

void SharedModuleStore::for_each(
    const std::function<void(const std::string& key,
                             const EncodedModule& module,
                             ModuleLocation location)>& fn) const {
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mutex);
    for (const auto& [key, entry] : shard->entries) {
      fn(key, *entry.module, entry.location);
    }
  }
}

size_t SharedModuleStore::size() const {
  size_t n = 0;
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mutex);
    n += shard->entries.size();
  }
  return n;
}

TierUsage SharedModuleStore::usage(ModuleLocation loc) const {
  TierUsage total;
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mutex);
    const TierUsage& u = shard->tiers.usage(loc);
    total.capacity_bytes += u.capacity_bytes;
    total.used_bytes += u.used_bytes;
  }
  return total;
}

size_t SharedModuleStore::resident_bytes() const {
  return usage(ModuleLocation::kDeviceMemory).used_bytes +
         usage(ModuleLocation::kHostMemory).used_bytes;
}

}  // namespace pc
