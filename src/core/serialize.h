// Binary persistence for encoded prompt modules.
//
// A serving process encodes a schema's modules once; persisting them lets a
// restarted (or scaled-out) server skip re-encoding entirely — the offline
// half of the paper's deployment story. The format is a little-endian
// stream of (key, EncodedModule) records with a magic header and a per-
// record FNV-1a checksum; corrupt or truncated files fail loudly with
// pc::Error rather than loading partial state silently.
#pragma once

#include <iosfwd>
#include <string>

#include "core/encoded_module.h"

namespace pc {

// Serializes one record. Throws pc::Error on stream failure.
void write_module_record(std::ostream& os, const std::string& key,
                         const EncodedModule& module);

// Reads the next record. Returns false at a clean end-of-stream; throws
// pc::Error on malformed input or checksum mismatch.
bool read_module_record(std::istream& is, std::string* key,
                        EncodedModule* module);

// Recovery: clears the stream's error state and scans forward to the next
// record-tag boundary, so a reader can skip a corrupt or truncated record
// and resume. Returns false when end-of-stream is reached first. The
// resynced record is still checksum-verified by read_module_record, so a
// false tag match inside corrupt payload bytes cannot load bad state.
bool resync_to_next_record(std::istream& is);

// File header handling: call before the first record on each side.
void write_store_header(std::ostream& os);
void read_store_header(std::istream& is);

// Crash-atomic single-record persistence, used for disk-tier spill files:
// writes header + one record into `path + ".tmp"`, flushes, and renames
// over `path` only on success — a crash (or write fault) mid-write leaves
// at most a stray .tmp behind, never a partial file at `path`. Throws
// pc::Error on any I/O failure (the .tmp is cleaned up first).
void write_module_file(const std::string& path, const std::string& key,
                       const EncodedModule& module);

// Reads back a file written by write_module_file. Throws pc::Error on open
// failure, corruption, truncation, or when the stored key differs from
// `expected_key`.
EncodedModule read_module_file(const std::string& path,
                               const std::string& expected_key);

}  // namespace pc
