// Binary persistence for encoded prompt modules.
//
// A serving process encodes a schema's modules once; persisting them lets a
// restarted (or scaled-out) server skip re-encoding entirely — the offline
// half of the paper's deployment story. The format is a little-endian
// stream of (key, EncodedModule) records with a magic header and a per-
// record FNV-1a checksum; corrupt or truncated files fail loudly with
// pc::Error rather than loading partial state silently.
#pragma once

#include <iosfwd>
#include <string>

#include "core/encoded_module.h"

namespace pc {

// Serializes one record. Throws pc::Error on stream failure.
void write_module_record(std::ostream& os, const std::string& key,
                         const EncodedModule& module);

// Reads the next record. Returns false at a clean end-of-stream; throws
// pc::Error on malformed input or checksum mismatch.
bool read_module_record(std::istream& is, std::string* key,
                        EncodedModule* module);

// File header handling: call before the first record on each side.
void write_store_header(std::ostream& os);
void read_store_header(std::istream& is);

}  // namespace pc
