// Multi-turn conversations over a cached context.
//
// A session assembles its prompt's cached modules once, then keeps the
// sequence KV cache alive across turns: each user message and assistant
// reply is appended incrementally (the classic single-prompt KV-Cache reuse
// of §2.2) on top of the inter-request module reuse of Prompt Cache. The
// standing context — documents, instructions — costs its memcpy once per
// session instead of once per turn.
//
// Turns are wrapped with the model family's chat template (§3.2.3).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "core/engine.h"

namespace pc {

class ChatSession {
 public:
  // Binds and assembles `prompt_pml` (its schema must already be loaded in
  // the engine). The prompt's free text, if any, becomes standing context.
  // wrap_turns renders each turn through the model's chat template; pass
  // false to append raw text (models without conversation formatting).
  ChatSession(PromptCacheEngine& engine, std::string_view prompt_pml,
              bool wrap_turns = true);

  struct TurnResult {
    std::string text;
    std::vector<TokenId> tokens;
    double latency_ms = 0;
    int input_tokens = 0;  // user-turn tokens appended to the cache
  };

  // Appends one user turn and generates the assistant reply.
  TurnResult send(std::string_view user_text,
                  const GenerateOptions& options = {});

  int turns() const { return turns_; }
  int context_tokens() const { return cache_.size(); }

  // Positions left before the model's max_pos is exhausted.
  int remaining_positions() const {
    return engine_->model().config().max_pos - next_pos_;
  }

 private:
  PromptCacheEngine* engine_;
  KVCache cache_;
  bool wrap_turns_;
  int next_pos_ = 0;
  int turns_ = 0;
};

}  // namespace pc
