#include "core/session.h"

#include <numeric>

#include "common/timer.h"

namespace pc {

ChatSession::ChatSession(PromptCacheEngine& engine,
                         std::string_view prompt_pml, bool wrap_turns)
    : engine_(&engine),
      cache_(engine.model().make_cache()),
      wrap_turns_(wrap_turns) {
  const pml::PromptBinding binding = engine.bind(prompt_pml);
  (void)engine.ensure_encoded(binding);
  (void)engine.assemble_and_prefill(binding, cache_, nullptr);
  // assemble added a <s> kickoff row at next_pos when the prompt had no
  // uncached content; account for it.
  const bool kickoff = binding.args.empty() && binding.texts.empty();
  next_pos_ = binding.next_pos + (kickoff ? 1 : 0);
}

ChatSession::TurnResult ChatSession::send(std::string_view user_text,
                                          const GenerateOptions& options) {
  WallTimer timer;
  const ChatTemplate tmpl(engine_->model().config().chat_template);

  // "user : <text>\n assistant-prefix" in the model family's format.
  const std::string turn_text =
      wrap_turns_ ? tmpl.render(ChatRole::kUser, user_text) +
                        tmpl.wrap(ChatRole::kAssistant).prefix
                  : std::string(user_text);
  const std::vector<TokenId> turn_tokens =
      engine_->tokenizer().encode(turn_text);
  PC_CHECK_MSG(!turn_tokens.empty(), "empty user turn");
  PC_CHECK_MSG(next_pos_ + static_cast<int>(turn_tokens.size()) +
                       options.max_new_tokens <
                   engine_->model().config().max_pos,
               "session position budget exhausted after "
                   << turns_ << " turns; start a new session");

  std::vector<int> pos(turn_tokens.size());
  std::iota(pos.begin(), pos.end(), next_pos_);
  const Tensor logits = engine_->model().forward(turn_tokens, pos, cache_);
  next_pos_ += static_cast<int>(turn_tokens.size());

  const int before_reply = cache_.size();
  TurnResult result;
  result.input_tokens = static_cast<int>(turn_tokens.size());
  result.tokens =
      engine_->model().generate_greedy(logits, next_pos_, cache_, options);
  // Generation forwards every emitted token except possibly the last one
  // (emitted but not yet fed back). Keep the cache complete so the next
  // turn sees the whole reply.
  const int forwarded = cache_.size() - before_reply;
  next_pos_ += forwarded;
  if (static_cast<int>(result.tokens.size()) > forwarded &&
      next_pos_ < engine_->model().config().max_pos) {
    const TokenId last = result.tokens.back();
    const int p = next_pos_;
    (void)engine_->model().forward({&last, 1}, {&p, 1}, cache_);
    ++next_pos_;
  }

  // Close the assistant block so the following turn is well-formed.
  const std::string closing =
      wrap_turns_ ? tmpl.wrap(ChatRole::kAssistant).suffix : std::string();
  const std::vector<TokenId> closing_tokens =
      engine_->tokenizer().encode(closing);
  if (!closing_tokens.empty() &&
      next_pos_ + static_cast<int>(closing_tokens.size()) <
          engine_->model().config().max_pos) {
    std::vector<int> cpos(closing_tokens.size());
    std::iota(cpos.begin(), cpos.end(), next_pos_);
    (void)engine_->model().forward(closing_tokens, cpos, cache_);
    next_pos_ += static_cast<int>(closing_tokens.size());
  }

  result.text = engine_->tokenizer().decode(result.tokens);
  result.latency_ms = timer.elapsed_ms();
  ++turns_;
  return result;
}

}  // namespace pc
