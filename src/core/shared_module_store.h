// Thread-safe shared module store for concurrent serving.
//
// The private ModuleStore gives each engine its own registry, so N workers
// encode and hold every module N times — forfeiting exactly the reuse the
// paper's TTFT claim rests on (§3.4, §5). SharedModuleStore is the shared,
// concurrent counterpart: N engines over one store hold each encoded module
// once, and a module encoded by any worker is a hit for all of them.
//
// Concurrency design:
//
//   * Striped locking. Entries are partitioned into shards by key hash;
//     each shard has its own std::shared_mutex. Mutations (insert, evict,
//     pin, recency updates) take the shard lock exclusively; const queries
//     (contains, is_pinned, for_each) take it shared. Capacities are split
//     evenly across shards, so eviction decisions are shard-local and never
//     serialize the whole store.
//
//   * Shared-ownership reads. Lookups return a ModuleRef — a
//     shared_ptr-backed handle acquired under the shard lock — instead of a
//     raw pointer. The expensive part of a hit (memcpying module rows into
//     a request cache) runs entirely outside any lock, and a ref keeps its
//     payload alive even if another worker evicts or replaces the entry
//     mid-copy. Zero-copy SegmentedKVCache views hold their refs for the
//     whole request, so borrowed rows can never dangle.
//
//   * Reference-counted pins. pin()/unpin() count references instead of
//     setting a flag: two requests borrowing the same module on different
//     workers each take a pin, and the entry stays ineligible for eviction
//     until the *last* borrower releases. (Refs make eviction safe; pins
//     make it not happen — keeping hot modules resident and the footprint
//     accounting honest.)
//
//   * Single-flight encoding. ensure() runs the encode callback at most
//     once per missing key across all threads: the first caller becomes the
//     leader and encodes outside all locks while later callers block on a
//     per-key flight; they wake holding a ref to the leader's result. A
//     failed leader wakes the waiters and the next caller retries.
//
//   * Disk tier (docs/INTERNALS.md §15). With a DiskTierConfig the store
//     gains a third, cold tier: when make_room runs out of unpinned RAM
//     victims, the coldest entries serialize to per-module spill files
//     (core/serialize.h's checksummed record format, written crash-
//     atomically via tmp+rename) instead of being destroyed. find()/
//     ensure() transparently fault spilled entries back in — the disk read
//     runs outside all shard locks under the same per-key single-flight
//     Flight that deduplicates encodes, and the faulted payload is placed
//     host-first so its bytes are charged through the serving LinkModel
//     like any host-resident module. prefetch() is the async pipeline's
//     entry point (sys/prefetch.h): it faults a key in ahead of admission
//     and tags the entry so the first serve that lands on it counts as a
//     prefetch hit. Spill round-trips are byte-exact (serialize round-trip
//     is), so RAM-capped tiered serving stays bitwise-identical.
//
// Stats live in registry cells (obs/metrics.h) shared with the private
// store's metric families — one pc_store_* naming scheme covers both — and
// the hit/miss/insert/evict semantics mirror ModuleStoreStats so existing
// telemetry carries over. The disk tier adds pc_store_disk_* families
// (spills, faults, prefetch hits/misses, evictions, failures, stall time,
// spilled bytes) local to each store instance.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/encoded_module.h"
#include "core/module_store.h"
#include "sys/memory_tier.h"

namespace pc {

// Configuration for the store's disk spill tier (docs/INTERNALS.md §15).
struct DiskTierConfig {
  bool enabled = false;
  // Spill directory; "" uses the system temp directory. Each store creates
  // (and removes on destruction) a unique subdirectory underneath it.
  std::string dir;
  // Disk budget in bytes, split across shards like the RAM tiers; 0 means
  // unbounded. When full, the coldest spilled records are destroyed.
  size_t capacity_bytes = 0;
  // Simulated disk-link cost added to every fault-in on top of the real
  // file read (same shape as sys/serve_types.h's LinkModel, restated here
  // because core cannot include sys serving headers). 0-valued fields
  // contribute nothing.
  double read_latency_s = 0;
  double read_bandwidth_bytes_per_s = 0;

  // Environment-driven config: PC_DISK_DIR (presence enables the tier;
  // the value is `dir`) and PC_DISK_CAPACITY (bytes; optional). Stores
  // constructed without an explicit DiskTierConfig use this.
  static DiskTierConfig from_env();
};

// Snapshot of the disk tier's counters (exact individually; cross-field
// invariants can be momentarily off mid-update). Conservation law, exact
// at quiescence:  spills == faults + evictions + read_failures + spilled.
struct DiskTierStats {
  uint64_t spills = 0;          // entries written to spill files
  uint64_t faults = 0;          // spill files read back into RAM
  uint64_t prefetch_hits = 0;   // serves that found a prefetched entry
  uint64_t prefetch_misses = 0; // demand fault-ins the prefetcher missed
  uint64_t evictions = 0;       // spilled records destroyed (disk pressure
                                // or administrative erase/clear)
  uint64_t read_failures = 0;   // fault-ins dropped (I/O fault, corruption)
  uint64_t spill_failures = 0;  // spill writes failed; victim was destroyed
  uint64_t stall_us = 0;        // wall time spent inside fault-in reads
  size_t spilled_bytes = 0;     // payload bytes currently on disk
  size_t spilled = 0;           // records currently on disk

  double stall_ms() const { return static_cast<double>(stall_us) / 1000.0; }
  // Fraction of disk reads the prefetcher hid from the serve path.
  double prefetch_hit_rate() const {
    const uint64_t denom = prefetch_hits + prefetch_misses;
    return denom == 0 ? 0.0
                      : static_cast<double>(prefetch_hits) /
                            static_cast<double>(denom);
  }
};

class SharedModuleStore {
 public:
  static constexpr size_t kDefaultShards = 8;

  // Capacities in bytes, split across shards summing exactly to the given
  // totals; 0 means unlimited. A single module larger than its shard's
  // slice (at most ceil(capacity / n_shards)) cannot be stored in a
  // capacity-limited tier — size shard counts to the workload. The disk
  // tier defaults to DiskTierConfig::from_env() (disabled unless
  // PC_DISK_DIR is set).
  SharedModuleStore(size_t device_capacity, size_t host_capacity,
                    size_t n_shards = kDefaultShards);
  SharedModuleStore(size_t device_capacity, size_t host_capacity,
                    DiskTierConfig disk, size_t n_shards = kDefaultShards);
  ~SharedModuleStore();

  SharedModuleStore(const SharedModuleStore&) = delete;
  SharedModuleStore& operator=(const SharedModuleStore&) = delete;

  // A pinned-by-ownership read handle: dereferencing is lock-free and the
  // payload outlives concurrent eviction/replacement of the entry.
  class ModuleRef {
   public:
    ModuleRef() = default;
    ModuleRef(std::shared_ptr<const EncodedModule> module, ModuleLocation loc)
        : module_(std::move(module)), location_(loc) {}

    explicit operator bool() const { return module_ != nullptr; }
    const EncodedModule& operator*() const { return *module_; }
    const EncodedModule* operator->() const { return module_.get(); }
    const EncodedModule* get() const { return module_.get(); }
    ModuleLocation location() const { return location_; }
    void reset() { module_.reset(); }

   private:
    std::shared_ptr<const EncodedModule> module_;
    ModuleLocation location_ = ModuleLocation::kHostMemory;
  };

  // Looks up a module and bumps its recency; empty ref on miss. With
  // and_pin, the lookup and the pin are one atomic step (no window where
  // another worker can evict between them). A key resident on the disk
  // tier is transparently faulted back in (single-flight; the read runs
  // outside all shard locks) and counts as a hit; only a key resident
  // nowhere is a miss.
  ModuleRef find(const std::string& key, bool and_pin = false);

  // Async-prefetch entry point: fault `key` in from the disk tier ahead of
  // demand. Returns true when the key is (or is about to be, when another
  // thread's flight is already on it) RAM-resident; false when the key is
  // resident nowhere or the fault-in failed. Entries faulted in here are
  // tagged; the first find()/ensure() that lands on the tag counts one
  // prefetch hit, while demand fault-ins on the serve path count prefetch
  // misses — hit rate = hits / (hits + misses). Never encodes, never
  // blocks on another thread's flight, and does not touch hit/miss cells.
  bool prefetch(const std::string& key);

  // Single-flight lookup-or-encode: returns a ref to the resident module,
  // running `encode` (outside all store locks) only if this caller is the
  // first to need a missing key. `encoded_here` (if non-null) reports
  // whether this call ran the encode — the caller's "I paid the forward
  // pass" signal for its own stats. Propagates exceptions from `encode`;
  // waiters behind a failed leader retry (one becomes the next leader).
  ModuleRef ensure(const std::string& key,
                   const std::function<EncodedModule()>& encode,
                   bool* encoded_here = nullptr, bool and_pin = false);

  // Inserts (or replaces) a module, placing it device-first and evicting
  // unpinned LRU entries as needed. A replaced entry keeps its pin count
  // (live borrowers hold refs to the old payload, which stays valid).
  // Throws pc::CacheError when the module fits in neither tier.
  void insert(const std::string& key, EncodedModule module);

  // True when the key is resident in RAM or spilled to the disk tier
  // (either way a lookup will produce it without re-encoding).
  bool contains(const std::string& key) const;

  // Reference-counted pins: the entry is not evictable while the count is
  // positive. pin() returns false if the key is absent; unpin() returns
  // false if absent or not pinned (the count never goes negative).
  bool pin(const std::string& key);
  bool unpin(const std::string& key);
  bool is_pinned(const std::string& key) const;  // pin count > 0
  int pin_count(const std::string& key) const;   // 0 if absent

  // Moves an entry to `target`, evicting unpinned LRU entries there as
  // needed; false when absent or it cannot fit. `moved` (if non-null)
  // reports whether a transfer actually happened (false for already-there).
  bool promote(const std::string& key, ModuleLocation target,
               bool* moved = nullptr);

  // Administrative removal (schema reload): erases the entry even if
  // pinned — live borrowers stay safe through their refs, and their later
  // unpin simply returns false. Contrast eviction, which respects pins.
  void erase(const std::string& key);
  void clear();

  // Visits a weakly-consistent snapshot of resident entries (entries
  // inserted or evicted concurrently may or may not be seen). The callback
  // runs under a shared shard lock and must not call back into the store.
  void for_each(const std::function<void(const std::string& key,
                                         const EncodedModule& module,
                                         ModuleLocation location)>& fn) const;

  size_t size() const;
  size_t n_shards() const { return shards_.size(); }

  // Summed usage across shards for `loc`, and total resident payload.
  TierUsage usage(ModuleLocation loc) const;
  size_t resident_bytes() const;
  // High-water mark of resident RAM bytes across the store's lifetime —
  // the "peak RSS" the tiered bench reports against the configured cap.
  size_t peak_resident_bytes() const {
    return peak_resident_bytes_.load(std::memory_order_relaxed);
  }

  // Disk tier telemetry. disk_stats() snapshots the pc_store_disk_* cells;
  // spilled_count()/spilled_bytes() are the current on-disk footprint.
  bool disk_enabled() const { return disk_.enabled; }
  DiskTierStats disk_stats() const;
  size_t spilled_count() const;
  size_t spilled_bytes() const {
    return static_cast<size_t>(disk_spilled_bytes_.value());
  }

  // Consistent-enough snapshot of the counter cells (individual fields are
  // exact; cross-field invariants can be momentarily off mid-update).
  ModuleStoreStats stats() const { return cells_.snapshot(); }
  // Telemetry hook for retrieval paths that dequantize module rows into a
  // request cache (engine append_text_rows): n rows converted int8 -> fp32.
  void note_dequant_rows(uint64_t n) { cells_.dequant_rows.inc(n); }
  uint64_t dequant_rows() const { return cells_.dequant_rows.value(); }
  // Resident payload split by format (mirrors the pc_store_resident_bytes_*
  // gauges; q8 = Q8_0 modules, q4 = Q4_0 modules, fp32 = unquantized
  // fp32/fp16 payloads).
  size_t resident_bytes_q8() const {
    return static_cast<size_t>(cells_.resident_bytes_q8.value());
  }
  size_t resident_bytes_q4() const {
    return static_cast<size_t>(cells_.resident_bytes_q4.value());
  }
  size_t resident_bytes_fp32() const {
    return static_cast<size_t>(cells_.resident_bytes_fp32.value());
  }
  // Callers that blocked on another thread's in-flight encode — each one is
  // a duplicate forward pass single-flight saved.
  uint64_t single_flight_waits() const { return single_flight_waits_.value(); }

 private:
  struct Entry {
    std::shared_ptr<const EncodedModule> module;
    ModuleLocation location = ModuleLocation::kHostMemory;
    int pin_count = 0;
    uint64_t last_used = 0;  // global clock stamp; smallest = coldest
    // Faulted in by prefetch() and not yet used by a serve: the first
    // find()/ensure() hit clears this and counts one prefetch hit.
    bool prefetched = false;
  };

  // A record resident on the disk tier (absent from `entries`).
  struct SpillInfo {
    std::string path;
    size_t bytes = 0;
    uint64_t last_used = 0;  // recency at spill time; smallest = coldest
  };

  // One single-flight encode in progress for a key.
  struct Flight {
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;  // leader finished (successfully or not)
  };

  struct Shard {
    mutable std::shared_mutex mutex;
    std::unordered_map<std::string, Entry> entries;
    std::unordered_map<std::string, std::shared_ptr<Flight>> in_flight;
    TierAllocator tiers;
    // Disk tier: spilled records and this shard's slice of the disk budget.
    std::unordered_map<std::string, SpillInfo> spilled;
    TierUsage disk;

    Shard(size_t host_capacity, size_t device_capacity, bool host_zero,
          bool device_zero)
        : tiers(host_capacity, device_capacity, host_zero, device_zero) {}
  };

  Shard& shard_for(const std::string& key) {
    return *shards_[std::hash<std::string>{}(key) % shards_.size()];
  }
  const Shard& shard_for(const std::string& key) const {
    return *shards_[std::hash<std::string>{}(key) % shards_.size()];
  }

  uint64_t tick() { return clock_.fetch_add(1, std::memory_order_relaxed); }

  // All *_locked helpers require the shard's exclusive lock.
  bool make_room_locked(Shard& s, ModuleLocation loc, size_t bytes);
  void erase_locked(Shard& s,
                    std::unordered_map<std::string, Entry>::iterator it);
  // Places the payload, preserving `pins` from a replaced entry. Returns
  // the chosen tier; throws CacheError when nothing fits. kDeviceFirst is
  // the insert/encode order; fault-ins place kHostFirst so disk bytes
  // surface as host-resident (and get charged through the LinkModel).
  enum class PlacePref { kDeviceFirst, kHostFirst };
  ModuleLocation place_locked(Shard& s, const std::string& key,
                              std::shared_ptr<const EncodedModule> module,
                              int pins,
                              PlacePref pref = PlacePref::kDeviceFirst);
  void finish_flight(Shard& s, const std::string& key);

  // Disk-tier helpers. spill_locked serializes the victim crash-atomically
  // and converts the entry into a spill record; false (injected write
  // fault, disk full, I/O error) means the caller must destroy-evict
  // instead. make_disk_room_locked destroys the coldest spilled records
  // (skipping keys with an active flight) until `bytes` fit.
  bool spill_locked(Shard& s,
                    std::unordered_map<std::string, Entry>::iterator victim);
  bool make_disk_room_locked(Shard& s, size_t bytes);
  void drop_spill_locked(Shard& s,
                         std::unordered_map<std::string, SpillInfo>::iterator it,
                         bool count_eviction);
  // Single-flight fault-in leader path: reads `info` outside all locks and
  // places the payload. The caller registered the key's Flight and is
  // responsible for finishing it — ensure() keeps the flight alive to fall
  // back to an encode when the read fails (empty ref; record dropped).
  ModuleRef fault_in(Shard& s, const std::string& key, SpillInfo info,
                     bool and_pin, bool prefetching);
  void note_resident_peak();

  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> clock_{1};
  // Configured RAM totals, for the over-slice diagnostic in place_locked.
  size_t device_capacity_total_ = 0;
  size_t host_capacity_total_ = 0;
  std::atomic<size_t> peak_resident_bytes_{0};

  DiskTierConfig disk_;
  std::string spill_dir_;  // this store's unique subdir ("" = disk off)
  std::atomic<uint64_t> spill_seq_{0};

  ModuleStoreCells cells_;
  obs::Counter single_flight_waits_;  // pc_store_single_flight_waits_total
  obs::Counter disk_spills_;          // pc_store_disk_spills_total
  obs::Counter disk_faults_;          // pc_store_disk_faults_total
  obs::Counter disk_prefetch_hits_;   // pc_store_disk_prefetch_hits_total
  obs::Counter disk_prefetch_misses_; // pc_store_disk_prefetch_misses_total
  obs::Counter disk_evictions_;       // pc_store_disk_evictions_total
  obs::Counter disk_read_failures_;   // pc_store_disk_read_failures_total
  obs::Counter disk_spill_failures_;  // pc_store_disk_spill_failures_total
  obs::Counter disk_stall_us_;        // pc_store_disk_stall_us_total
  obs::Gauge disk_spilled_bytes_;     // pc_store_disk_spilled_bytes
};

}  // namespace pc
