// Thread-safe shared module store for concurrent serving.
//
// The private ModuleStore gives each engine its own registry, so N workers
// encode and hold every module N times — forfeiting exactly the reuse the
// paper's TTFT claim rests on (§3.4, §5). SharedModuleStore is the shared,
// concurrent counterpart: N engines over one store hold each encoded module
// once, and a module encoded by any worker is a hit for all of them.
//
// Concurrency design:
//
//   * Striped locking. Entries are partitioned into shards by key hash;
//     each shard has its own std::shared_mutex. Mutations (insert, evict,
//     pin, recency updates) take the shard lock exclusively; const queries
//     (contains, is_pinned, for_each) take it shared. Capacities are split
//     evenly across shards, so eviction decisions are shard-local and never
//     serialize the whole store.
//
//   * Shared-ownership reads. Lookups return a ModuleRef — a
//     shared_ptr-backed handle acquired under the shard lock — instead of a
//     raw pointer. The expensive part of a hit (memcpying module rows into
//     a request cache) runs entirely outside any lock, and a ref keeps its
//     payload alive even if another worker evicts or replaces the entry
//     mid-copy. Zero-copy SegmentedKVCache views hold their refs for the
//     whole request, so borrowed rows can never dangle.
//
//   * Reference-counted pins. pin()/unpin() count references instead of
//     setting a flag: two requests borrowing the same module on different
//     workers each take a pin, and the entry stays ineligible for eviction
//     until the *last* borrower releases. (Refs make eviction safe; pins
//     make it not happen — keeping hot modules resident and the footprint
//     accounting honest.)
//
//   * Single-flight encoding. ensure() runs the encode callback at most
//     once per missing key across all threads: the first caller becomes the
//     leader and encodes outside all locks while later callers block on a
//     per-key flight; they wake holding a ref to the leader's result. A
//     failed leader wakes the waiters and the next caller retries.
//
// Stats live in registry cells (obs/metrics.h) shared with the private
// store's metric families — one pc_store_* naming scheme covers both — and
// the hit/miss/insert/evict semantics mirror ModuleStoreStats so existing
// telemetry carries over.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/encoded_module.h"
#include "core/module_store.h"
#include "sys/memory_tier.h"

namespace pc {

class SharedModuleStore {
 public:
  static constexpr size_t kDefaultShards = 8;

  // Capacities in bytes, split evenly across shards; 0 means unlimited.
  // A single module larger than capacity / n_shards cannot be stored in a
  // capacity-limited tier — size shard counts to the workload.
  SharedModuleStore(size_t device_capacity, size_t host_capacity,
                    size_t n_shards = kDefaultShards);

  SharedModuleStore(const SharedModuleStore&) = delete;
  SharedModuleStore& operator=(const SharedModuleStore&) = delete;

  // A pinned-by-ownership read handle: dereferencing is lock-free and the
  // payload outlives concurrent eviction/replacement of the entry.
  class ModuleRef {
   public:
    ModuleRef() = default;
    ModuleRef(std::shared_ptr<const EncodedModule> module, ModuleLocation loc)
        : module_(std::move(module)), location_(loc) {}

    explicit operator bool() const { return module_ != nullptr; }
    const EncodedModule& operator*() const { return *module_; }
    const EncodedModule* operator->() const { return module_.get(); }
    const EncodedModule* get() const { return module_.get(); }
    ModuleLocation location() const { return location_; }
    void reset() { module_.reset(); }

   private:
    std::shared_ptr<const EncodedModule> module_;
    ModuleLocation location_ = ModuleLocation::kHostMemory;
  };

  // Looks up a module and bumps its recency; empty ref on miss. With
  // and_pin, the lookup and the pin are one atomic step (no window where
  // another worker can evict between them).
  ModuleRef find(const std::string& key, bool and_pin = false);

  // Single-flight lookup-or-encode: returns a ref to the resident module,
  // running `encode` (outside all store locks) only if this caller is the
  // first to need a missing key. `encoded_here` (if non-null) reports
  // whether this call ran the encode — the caller's "I paid the forward
  // pass" signal for its own stats. Propagates exceptions from `encode`;
  // waiters behind a failed leader retry (one becomes the next leader).
  ModuleRef ensure(const std::string& key,
                   const std::function<EncodedModule()>& encode,
                   bool* encoded_here = nullptr, bool and_pin = false);

  // Inserts (or replaces) a module, placing it device-first and evicting
  // unpinned LRU entries as needed. A replaced entry keeps its pin count
  // (live borrowers hold refs to the old payload, which stays valid).
  // Throws pc::CacheError when the module fits in neither tier.
  void insert(const std::string& key, EncodedModule module);

  bool contains(const std::string& key) const;

  // Reference-counted pins: the entry is not evictable while the count is
  // positive. pin() returns false if the key is absent; unpin() returns
  // false if absent or not pinned (the count never goes negative).
  bool pin(const std::string& key);
  bool unpin(const std::string& key);
  bool is_pinned(const std::string& key) const;  // pin count > 0
  int pin_count(const std::string& key) const;   // 0 if absent

  // Moves an entry to `target`, evicting unpinned LRU entries there as
  // needed; false when absent or it cannot fit. `moved` (if non-null)
  // reports whether a transfer actually happened (false for already-there).
  bool promote(const std::string& key, ModuleLocation target,
               bool* moved = nullptr);

  // Administrative removal (schema reload): erases the entry even if
  // pinned — live borrowers stay safe through their refs, and their later
  // unpin simply returns false. Contrast eviction, which respects pins.
  void erase(const std::string& key);
  void clear();

  // Visits a weakly-consistent snapshot of resident entries (entries
  // inserted or evicted concurrently may or may not be seen). The callback
  // runs under a shared shard lock and must not call back into the store.
  void for_each(const std::function<void(const std::string& key,
                                         const EncodedModule& module,
                                         ModuleLocation location)>& fn) const;

  size_t size() const;
  size_t n_shards() const { return shards_.size(); }

  // Summed usage across shards for `loc`, and total resident payload.
  TierUsage usage(ModuleLocation loc) const;
  size_t resident_bytes() const;

  // Consistent-enough snapshot of the counter cells (individual fields are
  // exact; cross-field invariants can be momentarily off mid-update).
  ModuleStoreStats stats() const { return cells_.snapshot(); }
  // Telemetry hook for retrieval paths that dequantize module rows into a
  // request cache (engine append_text_rows): n rows converted int8 -> fp32.
  void note_dequant_rows(uint64_t n) { cells_.dequant_rows.inc(n); }
  uint64_t dequant_rows() const { return cells_.dequant_rows.value(); }
  // Resident payload split by format (mirrors the pc_store_resident_bytes_*
  // gauges; q8 = Q8_0 modules, q4 = Q4_0 modules, fp32 = unquantized
  // fp32/fp16 payloads).
  size_t resident_bytes_q8() const {
    return static_cast<size_t>(cells_.resident_bytes_q8.value());
  }
  size_t resident_bytes_q4() const {
    return static_cast<size_t>(cells_.resident_bytes_q4.value());
  }
  size_t resident_bytes_fp32() const {
    return static_cast<size_t>(cells_.resident_bytes_fp32.value());
  }
  // Callers that blocked on another thread's in-flight encode — each one is
  // a duplicate forward pass single-flight saved.
  uint64_t single_flight_waits() const { return single_flight_waits_.value(); }

 private:
  struct Entry {
    std::shared_ptr<const EncodedModule> module;
    ModuleLocation location = ModuleLocation::kHostMemory;
    int pin_count = 0;
    uint64_t last_used = 0;  // global clock stamp; smallest = coldest
  };

  // One single-flight encode in progress for a key.
  struct Flight {
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;  // leader finished (successfully or not)
  };

  struct Shard {
    mutable std::shared_mutex mutex;
    std::unordered_map<std::string, Entry> entries;
    std::unordered_map<std::string, std::shared_ptr<Flight>> in_flight;
    TierAllocator tiers;

    Shard(size_t host_capacity, size_t device_capacity)
        : tiers(host_capacity, device_capacity) {}
  };

  Shard& shard_for(const std::string& key) {
    return *shards_[std::hash<std::string>{}(key) % shards_.size()];
  }
  const Shard& shard_for(const std::string& key) const {
    return *shards_[std::hash<std::string>{}(key) % shards_.size()];
  }

  uint64_t tick() { return clock_.fetch_add(1, std::memory_order_relaxed); }

  // All *_locked helpers require the shard's exclusive lock.
  bool make_room_locked(Shard& s, ModuleLocation loc, size_t bytes);
  void erase_locked(Shard& s,
                    std::unordered_map<std::string, Entry>::iterator it);
  // Places the payload (device-first), preserving `pins` from a replaced
  // entry. Returns the chosen tier; throws CacheError when nothing fits.
  ModuleLocation place_locked(Shard& s, const std::string& key,
                              std::shared_ptr<const EncodedModule> module,
                              int pins);
  void finish_flight(Shard& s, const std::string& key);

  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> clock_{1};

  ModuleStoreCells cells_;
  obs::Counter single_flight_waits_;  // pc_store_single_flight_waits_total
};

}  // namespace pc
