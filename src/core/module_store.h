// Two-tier module registry with LRU eviction.
//
// Encoded modules are placed in device memory (fast, scarce) while it has
// room, spilling to host memory (abundant, but costs a transfer at serve
// time) — the memory trade-off of paper §4.1. Eviction is least-recently-
// used within a tier; the paper leaves replacement policy to future serving
// systems (§6), so the policy here is deliberately simple and pluggable
// through this one class.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <string>
#include <unordered_map>

#include "core/encoded_module.h"
#include "obs/metrics.h"
#include "sys/memory_tier.h"

namespace pc {

// Snapshot view of one store's counters. Backed by the observability
// registry (obs/metrics.h): every store — private or shared — owns cells
// in the pc_store_* metric families, so a Prometheus scrape sees the whole
// process's cache behavior under one naming scheme while stats() keeps the
// per-instance view this struct always provided.
struct ModuleStoreStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;   // dropped entirely (re-encode on next use)
  uint64_t demotions = 0;   // moved device -> host to make room
  uint64_t promotions = 0;  // moved host -> device (prefetch / warm-up)
};

// The registry cells behind ModuleStoreStats; shared by both store
// implementations so the metric names stay identical.
struct ModuleStoreCells {
  ModuleStoreCells();

  obs::Counter hits;
  obs::Counter misses;
  obs::Counter insertions;
  obs::Counter evictions;
  obs::Counter demotions;
  obs::Counter promotions;
  // Rows converted from a quantized payload (q8 or q4) to fp32 at
  // retrieval time (the copy path's dequantize-on-read; the zero-copy/paged
  // paths never dequantize modules and so never bump this).
  obs::Counter dequant_rows;   // pc_store_dequant_rows_total
  obs::Gauge resident_bytes;   // pc_store_resident_bytes
  // resident_bytes split by payload format: q8 counts Q8_0 modules, q4
  // counts Q4_0 modules, fp32 counts everything unquantized (fp32 and fp16
  // payloads).
  obs::Gauge resident_bytes_fp32;  // pc_store_resident_bytes_fp32
  obs::Gauge resident_bytes_q8;    // pc_store_resident_bytes_q8
  obs::Gauge resident_bytes_q4;    // pc_store_resident_bytes_q4
  obs::Gauge pinned_entries;   // pc_store_pinned_entries

  ModuleStoreStats snapshot() const {
    ModuleStoreStats out;
    out.hits = hits.value();
    out.misses = misses.value();
    out.insertions = insertions.value();
    out.evictions = evictions.value();
    out.demotions = demotions.value();
    out.promotions = promotions.value();
    return out;
  }
};

class ModuleStore {
 public:
  // Capacities in bytes; 0 means unlimited.
  ModuleStore(size_t device_capacity, size_t host_capacity)
      : tiers_(host_capacity, device_capacity) {}

  // Looks up an encoded module and bumps its recency. Returns nullptr on
  // miss. `location` (if non-null) receives the tier it resides in.
  const EncodedModule* find(const std::string& key,
                            ModuleLocation* location = nullptr);

  // Inserts (or replaces) a module, placing it device-first and evicting
  // LRU entries as needed. Throws pc::CacheError when the module fits in
  // neither tier even after evicting everything else.
  void insert(const std::string& key, EncodedModule module);

  bool contains(const std::string& key) const {
    return entries_.contains(key);
  }

  // Pinned entries are never chosen as eviction victims (e.g. a system
  // prompt every request imports). Returns false if the key is absent.
  bool pin(const std::string& key);
  bool unpin(const std::string& key);
  bool is_pinned(const std::string& key) const;

  // Moves an entry to `target` (union-sibling prefetch, §3.2.3: when one
  // member of a union is served, its alternatives are likely next). Evicts
  // unpinned LRU entries in the target tier as needed; returns false when
  // the entry is absent or cannot fit. A no-op success if already there.
  bool promote(const std::string& key, ModuleLocation target);

  void erase(const std::string& key);
  void clear();

  // Visits every resident entry (hot-to-cold order is not guaranteed).
  // The callback must not mutate the store.
  void for_each(const std::function<void(const std::string& key,
                                         const EncodedModule& module,
                                         ModuleLocation location)>& fn) const {
    for (const auto& [key, entry] : entries_) {
      fn(key, entry.module, entry.location);
    }
  }

  size_t size() const { return entries_.size(); }
  // Counter snapshot (a view over this store's registry cells).
  ModuleStoreStats stats() const { return cells_.snapshot(); }
  const TierUsage& usage(ModuleLocation loc) const { return tiers_.usage(loc); }

  // Telemetry hook for retrieval paths that dequantize module rows into a
  // request cache (engine append_text_rows): n rows converted int8 -> fp32.
  void note_dequant_rows(uint64_t n) { cells_.dequant_rows.inc(n); }
  uint64_t dequant_rows() const { return cells_.dequant_rows.value(); }
  // Resident payload split by format (mirrors the pc_store_resident_bytes_*
  // gauges; q8 = Q8_0, q4 = Q4_0, fp32 = unquantized fp32/fp16 payloads).
  size_t resident_bytes_q8() const { return resident_q8_bytes_; }
  size_t resident_bytes_q4() const { return resident_q4_bytes_; }
  size_t resident_bytes_fp32() const { return resident_fp32_bytes_; }

 private:
  struct Entry {
    EncodedModule module;
    ModuleLocation location;
    bool pinned = false;
    std::list<std::string>::iterator lru_it;  // into lru_ (front = hottest)
  };

  // Frees LRU entries in `loc` until `bytes` fit; returns false if
  // impossible (capacity too small even when empty).
  bool make_room(ModuleLocation loc, size_t bytes);

  void touch(Entry& e, const std::string& key);
  // Refreshes the resident-bytes gauge from the tier allocator.
  void sync_resident_gauge();

  TierAllocator tiers_;
  std::unordered_map<std::string, Entry> entries_;
  std::list<std::string> lru_;  // most-recently-used first
  ModuleStoreCells cells_;
  // Running by-format payload totals behind the split gauges (the tier
  // allocator tracks placement, not format).
  size_t resident_fp32_bytes_ = 0;
  size_t resident_q8_bytes_ = 0;
  size_t resident_q4_bytes_ = 0;
};

}  // namespace pc
