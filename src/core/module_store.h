// Two-tier module registry with LRU eviction.
//
// Encoded modules are placed in device memory (fast, scarce) while it has
// room, spilling to host memory (abundant, but costs a transfer at serve
// time) — the memory trade-off of paper §4.1. Eviction is least-recently-
// used within a tier; the paper leaves replacement policy to future serving
// systems (§6), so the policy here is deliberately simple and pluggable
// through this one class.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <string>
#include <unordered_map>

#include "core/encoded_module.h"
#include "sys/memory_tier.h"

namespace pc {

struct ModuleStoreStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;   // dropped entirely (re-encode on next use)
  uint64_t demotions = 0;   // moved device -> host to make room
  uint64_t promotions = 0;  // moved host -> device (prefetch / warm-up)
};

class ModuleStore {
 public:
  // Capacities in bytes; 0 means unlimited.
  ModuleStore(size_t device_capacity, size_t host_capacity)
      : tiers_(host_capacity, device_capacity) {}

  // Looks up an encoded module and bumps its recency. Returns nullptr on
  // miss. `location` (if non-null) receives the tier it resides in.
  const EncodedModule* find(const std::string& key,
                            ModuleLocation* location = nullptr);

  // Inserts (or replaces) a module, placing it device-first and evicting
  // LRU entries as needed. Throws pc::CacheError when the module fits in
  // neither tier even after evicting everything else.
  void insert(const std::string& key, EncodedModule module);

  bool contains(const std::string& key) const {
    return entries_.contains(key);
  }

  // Pinned entries are never chosen as eviction victims (e.g. a system
  // prompt every request imports). Returns false if the key is absent.
  bool pin(const std::string& key);
  bool unpin(const std::string& key);
  bool is_pinned(const std::string& key) const;

  // Moves an entry to `target` (union-sibling prefetch, §3.2.3: when one
  // member of a union is served, its alternatives are likely next). Evicts
  // unpinned LRU entries in the target tier as needed; returns false when
  // the entry is absent or cannot fit. A no-op success if already there.
  bool promote(const std::string& key, ModuleLocation target);

  void erase(const std::string& key);
  void clear();

  // Visits every resident entry (hot-to-cold order is not guaranteed).
  // The callback must not mutate the store.
  void for_each(const std::function<void(const std::string& key,
                                         const EncodedModule& module,
                                         ModuleLocation location)>& fn) const {
    for (const auto& [key, entry] : entries_) {
      fn(key, entry.module, entry.location);
    }
  }

  size_t size() const { return entries_.size(); }
  const ModuleStoreStats& stats() const { return stats_; }
  const TierUsage& usage(ModuleLocation loc) const { return tiers_.usage(loc); }

 private:
  struct Entry {
    EncodedModule module;
    ModuleLocation location;
    bool pinned = false;
    std::list<std::string>::iterator lru_it;  // into lru_ (front = hottest)
  };

  // Frees LRU entries in `loc` until `bytes` fit; returns false if
  // impossible (capacity too small even when empty).
  bool make_room(ModuleLocation loc, size_t bytes);

  void touch(Entry& e, const std::string& key);

  TierAllocator tiers_;
  std::unordered_map<std::string, Entry> entries_;
  std::list<std::string> lru_;  // most-recently-used first
  ModuleStoreStats stats_;
};

}  // namespace pc
