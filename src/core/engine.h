// The Prompt Cache engine (paper §3): schema registration + module
// encoding, scaffolds, and cached inference, with a regular KV-Cache
// baseline sharing the identical pipeline (§5: "Prompt Cache and KV Cache
// share the exact same inference pipeline except for attention state
// computation").
//
// serve() implements §3.4:
//   1. parse the prompt and verify it against its schema (bind_prompt);
//   2. retrieve the encoded attention states of imported modules and
//      concatenate them into the sequence KV cache (a pure memcpy;
//      parameter-placeholder rows are skipped);
//   3. compute attention states for uncached content — parameter arguments
//      (at their placeholder position IDs) and free text segments — in one
//      forward pass that attends over the concatenated cache;
//   4. greedy-decode from the resulting logits.
// TTFT = step 2 + step 3 (+ the argmax); module encoding is offline and
// reported separately.
//
// Threading contract: a single engine is single-threaded — serve(),
// load_schema() and the other mutating calls must not run concurrently (the
// per-engine stats and histograms are unsynchronized). Scale out with one
// engine per worker thread over a shared (const) Model, in one of two
// configurations:
//
//   * Private stores (the default constructor): each engine owns a
//     ModuleStore. Workers are fully isolated but encode and hold every
//     module once *per worker*; share encoded modules between processes via
//     save_modules()/load_modules().
//   * Shared store (the SharedModuleStore& constructor): N engines route
//     find/insert/pin through one thread-safe store, so each module is
//     encoded once fleet-wide (single-flight) and held once. Zero-copy
//     views take reference-counted pins, so a request on one worker blocks
//     eviction triggered by another; per-engine TTFT histograms merge()
//     into fleet percentiles. This is the serving configuration — see
//     src/sys/server.h for the queue + worker-pool frontend.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/histogram.h"
#include "core/module_store.h"
#include "core/shared_module_store.h"
#include "model/model.h"
#include "pml/prompt.h"
#include "pml/schema.h"

namespace pc {

// Process default for EngineConfig::precision, from the PC_KV_FORMAT
// environment variable: "q4" selects Q4_0 (blocked 4-bit) module storage,
// "q8" Q8_0, "fp16" half floats, "fp32" (or unset) the engine's native
// states. Read on every call so tests can flip the variable between engine
// constructions. Throws pc::Error on an unrecognized value.
StorePrecision default_store_precision();

struct EngineConfig {
  size_t device_capacity_bytes = 0;  // 0 = unlimited (simulated GPU HBM tier)
  size_t host_capacity_bytes = 0;    // 0 = unlimited (host DRAM tier)
  // Module storage precision (§5.5): fp16 halves, int8 quarters, and
  // blocked 4-bit (q4) roughly eighths the resident footprint. fp16
  // converts back to fp32 during retrieval; q8/q4 modules stay quantized
  // end-to-end on the zero-copy and paged serve paths (attention scores
  // them in the integer domain) and dequantize on read only on the copy
  // path. A q4 engine on a model whose head geometry the q4 kernel cannot
  // serve (d_head not a multiple of 32 with several KV heads) falls back
  // to q8 at construction.
  StorePrecision precision = default_store_precision();
  bool eager_encode = true;  // encode all modules at schema load
  // Union-sibling prefetch (§3.2.3): after serving a prompt that used a
  // union member, promote the member's siblings into device memory — the
  // next request is likely to pick one of them.
  bool prefetch_union_siblings = false;
  // Zero-copy serving (§6 direction: share attention states across
  // requests): the per-request cache borrows module rows from the store
  // instead of copying them; only uncached/generated rows are owned.
  // Requires kFp32, kQ8, or kQ4 precision (borrowed rows are read in
  // place; quantized rows are scored in the integer domain, never
  // materialized as fp32).
  bool zero_copy = false;
  // Owned-tail headroom for zero-copy serving beyond the request's
  // max_new_tokens (kickoff token, rounding).
  int zero_copy_tail_slack = 8;
};

// The uncached token stream of a binding: parameter arguments and free
// texts, ordered by their assigned position IDs (layout order) so later
// segments causally see earlier ones, matching the baseline's reading
// order. Used by serve()'s prefill and by the batch scheduler's chunked
// prefill (sys/batch.h).
struct UncachedStream {
  std::vector<TokenId> tokens;
  std::vector<int> pos_ids;
};

UncachedStream collect_uncached(const pml::PromptBinding& binding);

struct TtftBreakdown {
  double retrieve_ms = 0;  // module state concatenation (memcpy)
  double uncached_ms = 0;  // forward pass over uncached tokens + first argmax
  int cached_tokens = 0;
  int uncached_tokens = 0;
  int modules = 0;  // encoded modules/scaffolds whose states this serve reused
  size_t bytes_from_host = 0;    // copied over the host link
  size_t bytes_from_device = 0;  // copied within device memory
  size_t bytes_zero_copy = 0;    // borrowed in place, nothing moved
  // Copy-path retrieval of quantized (q8/q4) modules dequantizes K and V
  // rows into the sequence cache; zero-copy and paged serving never do.
  // Per-request counterpart of pc_store_dequant_rows_total.
  uint64_t dequant_rows = 0;

  double total_ms() const { return retrieve_ms + uncached_ms; }
};

struct ServeResult {
  std::vector<TokenId> tokens;  // generated token ids
  std::string text;             // decoded
  FinishReason finish_reason = FinishReason::kLength;
  TtftBreakdown ttft;
  double encode_ms = 0;  // offline module encoding triggered by this call
  double decode_ms = 0;  // autoregressive steps after the first token
  int prompt_tokens = 0;
  // True when this result came from serve_full_prefill (the degradation
  // path): identical tokens, no cache reuse, degraded TTFT.
  bool degraded = false;
};

// Snapshot view of one engine's counters. Backed by the observability
// registry (obs/metrics.h): every engine owns cells in the pc_engine_*
// metric families, so a Prometheus scrape aggregates the worker fleet while
// stats() keeps the per-engine view this struct always provided.
struct EngineStats {
  uint64_t serves = 0;
  uint64_t baseline_serves = 0;
  uint64_t degraded_serves = 0;   // full-prefill fallbacks (fault recovery)
  uint64_t modules_encoded = 0;
  uint64_t scaffolds_encoded = 0;
  uint64_t thrash_reencodes = 0;  // cache misses inside the TTFT window
  uint64_t sibling_prefetches = 0;
};

// The registry cells behind EngineStats plus the TTFT histograms.
struct EngineCells {
  EngineCells();

  obs::Counter serves;
  obs::Counter baseline_serves;
  obs::Counter degraded_serves;
  obs::Counter modules_encoded;
  obs::Counter scaffolds_encoded;
  obs::Counter thrash_reencodes;
  obs::Counter sibling_prefetches;
  obs::Histogram cached_ttft;    // pc_engine_ttft_cached_seconds
  obs::Histogram baseline_ttft;  // pc_engine_ttft_baseline_seconds
  obs::Histogram degraded_ttft;  // pc_engine_ttft_degraded_seconds

  EngineStats snapshot() const {
    EngineStats out;
    out.serves = serves.value();
    out.baseline_serves = baseline_serves.value();
    out.degraded_serves = degraded_serves.value();
    out.modules_encoded = modules_encoded.value();
    out.scaffolds_encoded = scaffolds_encoded.value();
    out.thrash_reencodes = thrash_reencodes.value();
    out.sibling_prefetches = sibling_prefetches.value();
    return out;
  }
};

class PromptCacheEngine {
 public:
  PromptCacheEngine(const Model& model, const TextTokenizer& tokenizer,
                    EngineConfig config = {});

  // Shared-store engine: encoded modules live in (and are served from)
  // `shared_store`, which must outlive the engine; the EngineConfig
  // capacity fields are ignored (the shared store was sized at
  // construction). Many engines on different threads may share one store.
  PromptCacheEngine(const Model& model, const TextTokenizer& tokenizer,
                    SharedModuleStore& shared_store, EngineConfig config = {});

  // Parses, lays out, and (eagerly) encodes a schema. Returns it.
  const pml::Schema& load_schema(std::string_view schema_pml);

  const pml::Schema* find_schema(const std::string& name) const;

  // Registers a scaffold (§3.3): the named modules are additionally encoded
  // *jointly* (shared attention span); when a prompt imports all of them,
  // the joint states override the individual ones.
  void add_scaffold(const std::string& schema_name,
                    std::vector<std::string> module_names);

  // Parses and validates a prompt against its (loaded) schema.
  pml::PromptBinding bind(std::string_view prompt_pml) const;

  // Cached inference (§3.4).
  ServeResult serve(std::string_view prompt_pml,
                    const GenerateOptions& options = {});

  // Regular KV-Cache baseline: the same prompt content as one contiguous
  // prefill at positions 0..n-1.
  ServeResult serve_baseline(std::string_view prompt_pml,
                             const GenerateOptions& options = {});

  // Degradation path: serves the prompt WITHOUT touching the module store —
  // one blocked prefill (Model::forward_blocked) reproduces the exact
  // attention pattern of per-module encoding + concatenation, so the tokens
  // are bitwise-identical to serve()'s while the TTFT pays the full
  // forward pass. The server falls back to this when a module cannot be
  // obtained (encode fault, corrupt record, thrash under pin pressure).
  ServeResult serve_full_prefill(std::string_view prompt_pml,
                                 const GenerateOptions& options = {});

  // Serves a batch of prompts and accounts for module sharing across them
  // (§3.4): modules imported by several requests are stored (and, under
  // zero_copy, referenced) once. shared_module_bytes counts each distinct
  // module once; owned_bytes is the per-request memory actually allocated
  // (tails under zero_copy, full caches otherwise).
  struct BatchStats {
    size_t shared_module_bytes = 0;
    size_t owned_bytes = 0;
    size_t duplicate_module_bytes_avoided = 0;
    int requests = 0;
  };
  std::vector<ServeResult> serve_batch(
      const std::vector<std::string>& prompts,
      const GenerateOptions& options = {}, BatchStats* stats = nullptr);

  // Building blocks, exposed for tests and benchmarks -----------------------

  // Steps 2-3 of serve() without generation: assembles the sequence cache
  // and returns the first-token logits.
  Tensor assemble_and_prefill(const pml::PromptBinding& binding,
                              KVCache& sequence_cache, TtftBreakdown* ttft);

  // Zero-copy variant: borrows module rows from the store (pinning them
  // for the view's lifetime is the caller's job in manual use; serve()
  // handles it). The view must have tail capacity for the uncached tokens.
  Tensor assemble_and_prefill(const pml::PromptBinding& binding,
                              SegmentedKVCache& view, TtftBreakdown* ttft);

  // Zero-copy assembly pins the borrowed modules so eviction cannot free
  // rows a live view references; this releases those pins. serve() calls
  // it automatically after generation.
  void release_borrowed_pins();

  // Ensures every module used by `binding` is encoded; returns ms spent.
  // `cancel` is polled before each module/scaffold encode: an expired token
  // throws pc::CancelledError instead of starting the next forward pass.
  double ensure_encoded(const pml::PromptBinding& binding,
                        const CancellationToken& cancel = {});

  // Persists every resident encoded module (and scaffold) to `path`, and
  // restores them on a fresh engine so serving can resume without
  // re-encoding. Returns the number of records written/read. Throws
  // pc::Error on I/O or corruption.
  size_t save_modules(const std::string& path) const;
  size_t load_modules(const std::string& path);

  // Recovery policy for load_modules: kStrict is the all-or-nothing
  // behavior above; kSkipCorrupt skips corrupt or truncated records
  // (resyncing on the record tag) and loads the rest — a missing module is
  // merely a cache miss, re-encoded lazily at serve time.
  enum class LoadPolicy { kStrict, kSkipCorrupt };
  struct LoadReport {
    size_t loaded = 0;
    size_t skipped = 0;  // corrupt/truncated records passed over
  };
  LoadReport load_modules(const std::string& path, LoadPolicy policy);

  // Pins a module's encoded states so the store never evicts them
  // (encodes first if needed). Throws if the schema/module is unknown.
  void pin_module(const std::string& schema_name,
                  const std::string& module_name);

  const Model& model() const { return model_; }
  const TextTokenizer& tokenizer() const { return tokenizer_; }
  // The private store; contract violation on a shared-store engine (its
  // registry is the SharedModuleStore — use shared_store()).
  ModuleStore& store() {
    PC_CHECK_MSG(shared_ == nullptr,
                 "engine uses a SharedModuleStore; query shared_store()");
    return store_;
  }
  SharedModuleStore* shared_store() const { return shared_; }
  // Counter snapshot (a view over this engine's registry cells).
  EngineStats stats() const { return cells_.snapshot(); }

  // Per-request TTFT distributions (serving telemetry). Snapshots of this
  // engine's histogram cells; merge() per-worker snapshots for fleet
  // percentiles.
  LatencyHistogram cached_ttft_histogram() const {
    return cells_.cached_ttft.snapshot();
  }
  LatencyHistogram baseline_ttft_histogram() const {
    return cells_.baseline_ttft.snapshot();
  }

  // Resolves the encoded payload for every module/scaffold of a binding
  // (re-encoding evicted entries) and emits them in concatenation order.
  // With `borrow` (zero-copy assembly over a shared store), each emitted
  // module is pinned and its ref retained in borrowed_refs_ until
  // release_borrowed_pins(), so rows stay valid and resident for the
  // lifetime of the borrowing view. Public for the batch scheduler
  // (sys/batch.h), which materializes emitted modules into shared KV pages
  // during the emit callback (the ref keeps rows valid for that long even
  // without borrow).
  void for_each_encoded(
      const pml::PromptBinding& binding,
      const std::function<void(const std::string& key,
                               const EncodedModule& module,
                               ModuleLocation location)>& emit,
      bool borrow = false);

  // The store keys for_each_encoded would emit for `binding` (modules, with
  // active scaffolds collapsed to their joint key), in concatenation order,
  // WITHOUT touching any store or encoding anything. The prefetch
  // pipeline's lookahead (sys/prefetch.h): a binder engine maps queued
  // prompts to keys so spilled payloads can fault in ahead of admission.
  std::vector<std::string> module_keys(const pml::PromptBinding& binding) const;

 private:
  struct Scaffold {
    std::string schema_name;
    std::vector<std::string> module_names;  // as registered
    std::vector<int> module_indices;        // resolved, sorted
    std::string key;
  };

  std::string module_key(const pml::Schema& schema, int mi) const {
    return schema.name + "::" + schema.module(mi).name;
  }

  void encode_module(const pml::Schema& schema, int mi);
  void encode_scaffold(const pml::Schema& schema, const Scaffold& scaffold);
  // The forward pass + packaging shared by both store configurations.
  EncodedModule build_module_payload(const pml::Schema& schema, int mi);
  EncodedModule build_scaffold_payload(const pml::Schema& schema,
                                       const Scaffold& scaffold);

  EncodedModule finalize_encoding(KVCache kv,
                                  const std::vector<pml::TokenRun>& runs);

  // Appends an encoded payload's text rows to the sequence cache, tallying
  // transfer bytes by tier (and dequantized rows in the store's telemetry —
  // hence non-const).
  void append_text_rows(const EncodedModule& module, ModuleLocation loc,
                        KVCache& sequence_cache, TtftBreakdown* ttft);

  // Scaffolds covering a binding (all members imported), plus the set of
  // module indices they cover.
  std::vector<const Scaffold*> active_scaffolds(
      const pml::PromptBinding& binding, std::vector<bool>* covered) const;

  const Model& model_;
  const TextTokenizer& tokenizer_;
  ChatTemplate chat_template_;
  EngineConfig config_;
  std::map<std::string, pml::Schema> schemas_;
  std::vector<Scaffold> scaffolds_;
  ModuleStore store_;                  // unused when shared_ != nullptr
  SharedModuleStore* shared_ = nullptr;
  EngineCells cells_;
  std::vector<std::string> borrowed_pins_;
  // Shared-store mode: refs held for live zero-copy views (see
  // for_each_encoded's `borrow`); cleared by release_borrowed_pins().
  std::vector<SharedModuleStore::ModuleRef> borrowed_refs_;
};

}  // namespace pc
