#include "core/engine.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <string_view>

#include "common/logging.h"
#include "common/timer.h"
#include "core/serialize.h"
#include "obs/trace.h"
#include "sys/fault.h"
#include "tensor/fp16.h"

namespace pc {

StorePrecision default_store_precision() {
  const char* fmt = std::getenv("PC_KV_FORMAT");
  if (fmt == nullptr) return StorePrecision::kFp32;
  const std::string_view v(fmt);
  if (v == "q4") return StorePrecision::kQ4;
  if (v == "q8") return StorePrecision::kQ8;
  if (v == "fp16") return StorePrecision::kFp16;
  PC_CHECK_MSG(v.empty() || v == "fp32",
               "PC_KV_FORMAT must be q4, q8, fp16, or fp32 (got '" << fmt
                                                                   << "')");
  return StorePrecision::kFp32;
}

EngineCells::EngineCells() {
  auto& reg = obs::MetricsRegistry::global();
  serves = reg.counter("pc_engine_serves_total", "cached serve() calls");
  baseline_serves = reg.counter("pc_engine_baseline_serves_total",
                                "KV-cache baseline serves");
  modules_encoded =
      reg.counter("pc_engine_modules_encoded_total", "module forward passes");
  scaffolds_encoded = reg.counter("pc_engine_scaffolds_encoded_total",
                                  "joint scaffold forward passes");
  thrash_reencodes = reg.counter("pc_engine_thrash_reencodes_total",
                                 "cache misses inside the TTFT window");
  sibling_prefetches = reg.counter("pc_engine_sibling_prefetches_total",
                                   "union siblings promoted to device");
  degraded_serves = reg.counter("pc_engine_degraded_serves_total",
                                "full-prefill fallback serves");
  cached_ttft = reg.histogram("pc_engine_ttft_cached_seconds",
                              "TTFT of cached serves");
  baseline_ttft = reg.histogram("pc_engine_ttft_baseline_seconds",
                                "TTFT of baseline serves");
  degraded_ttft = reg.histogram("pc_engine_ttft_degraded_seconds",
                                "TTFT of full-prefill fallback serves");
}

UncachedStream collect_uncached(const pml::PromptBinding& binding) {
  struct Seg {
    int start;
    int seq;
    const std::vector<TokenId>* tokens;
  };
  std::vector<Seg> segs;
  int seq = 0;
  for (const pml::BoundArg& a : binding.args) {
    if (!a.tokens.empty()) segs.push_back({a.start_pos, seq++, &a.tokens});
  }
  for (const pml::BoundText& t : binding.texts) {
    if (!t.tokens.empty()) segs.push_back({t.start_pos, seq++, &t.tokens});
  }
  std::sort(segs.begin(), segs.end(), [](const Seg& a, const Seg& b) {
    return a.start != b.start ? a.start < b.start : a.seq < b.seq;
  });
  UncachedStream out;
  for (const Seg& s : segs) {
    for (size_t i = 0; i < s.tokens->size(); ++i) {
      out.tokens.push_back((*s.tokens)[i]);
      out.pos_ids.push_back(s.start + static_cast<int>(i));
    }
  }
  return out;
}

namespace {

// Q4_0 attention requires every head's K/V slice to start on a 32-value
// block boundary (head_off % 32 == 0): that holds when d_head is a multiple
// of kQ4BlockSize, or when the model has a single KV head (head_off is then
// always 0). A model outside that geometry falls back to Q8_0 at engine
// construction instead of failing inside the attention kernel at serve
// time. Every preset model (sys/model_spec.h) satisfies the constraint, so
// this is a safety net for custom configs.
EngineConfig resolve_precision(const Model& model, EngineConfig config) {
  if (config.precision == StorePrecision::kQ4 &&
      model.config().d_head % kQ4BlockSize != 0 &&
      model.config().n_kv_heads != 1) {
    PC_LOG_WARN << "q4 module storage needs d_head % 32 == 0 or a single "
                   "KV head (d_head="
                << model.config().d_head
                << ", n_kv_heads=" << model.config().n_kv_heads
                << "); falling back to q8";
    config.precision = StorePrecision::kQ8;
  }
  return config;
}

}  // namespace

PromptCacheEngine::PromptCacheEngine(const Model& model,
                                     const TextTokenizer& tokenizer,
                                     EngineConfig config)
    : model_(model),
      tokenizer_(tokenizer),
      chat_template_(model.config().chat_template),
      config_(resolve_precision(model, config)),
      store_(config.device_capacity_bytes, config.host_capacity_bytes) {}

PromptCacheEngine::PromptCacheEngine(const Model& model,
                                     const TextTokenizer& tokenizer,
                                     SharedModuleStore& shared_store,
                                     EngineConfig config)
    : model_(model),
      tokenizer_(tokenizer),
      chat_template_(model.config().chat_template),
      config_(resolve_precision(model, config)),
      store_(0, 0),
      shared_(&shared_store) {}

const pml::Schema& PromptCacheEngine::load_schema(
    std::string_view schema_pml) {
  pml::Schema schema = pml::Schema::parse(schema_pml, tokenizer_,
                                          chat_template_);
  PC_CHECK_MSG(schema.total_positions <= model_.config().max_pos,
               "schema '" << schema.name << "' occupies "
                          << schema.total_positions
                          << " positions, model max_pos is "
                          << model_.config().max_pos);
  const std::string name = schema.name;

  // Runtime module updates (§1): replacing a schema invalidates every
  // encoded state derived from the old version — module contents or
  // positions may have changed while the keys stay the same.
  if (const pml::Schema* old = find_schema(name)) {
    const auto erase_key = [&](const std::string& key) {
      shared_ != nullptr ? shared_->erase(key) : store_.erase(key);
    };
    for (size_t mi = 0; mi < old->modules.size(); ++mi) {
      erase_key(module_key(*old, static_cast<int>(mi)));
    }
    for (auto it = scaffolds_.begin(); it != scaffolds_.end();) {
      if (it->schema_name == name) {
        erase_key(it->key);
        it = scaffolds_.erase(it);
      } else {
        ++it;
      }
    }
  }

  auto [it, inserted] = schemas_.insert_or_assign(name, std::move(schema));
  if (config_.eager_encode) {
    for (size_t mi = 0; mi < it->second.modules.size(); ++mi) {
      encode_module(it->second, static_cast<int>(mi));
    }
  }
  return it->second;
}

const pml::Schema* PromptCacheEngine::find_schema(
    const std::string& name) const {
  auto it = schemas_.find(name);
  return it == schemas_.end() ? nullptr : &it->second;
}

void PromptCacheEngine::add_scaffold(const std::string& schema_name,
                                     std::vector<std::string> module_names) {
  const pml::Schema* schema = find_schema(schema_name);
  PC_CHECK_MSG(schema != nullptr, "scaffold references unloaded schema '"
                                      << schema_name << "'");
  Scaffold s;
  s.schema_name = schema_name;
  s.module_names = std::move(module_names);
  PC_CHECK_MSG(s.module_names.size() >= 2,
               "a scaffold needs at least two modules");
  for (const std::string& mn : s.module_names) {
    const int mi = schema->find_module(mn);
    PC_CHECK_MSG(mi != -1, "scaffold references unknown module '" << mn
                                                                  << "'");
    s.module_indices.push_back(mi);
  }
  // Joint encoding follows layout order.
  std::sort(s.module_indices.begin(), s.module_indices.end(),
            [&](int a, int b) {
              return schema->module(a).start_pos < schema->module(b).start_pos;
            });
  s.key = schema_name + "::scaffold";
  for (int mi : s.module_indices) s.key += ":" + schema->module(mi).name;
  if (config_.eager_encode) encode_scaffold(*schema, s);
  scaffolds_.push_back(std::move(s));
}

namespace {

// Re-encodes an fp32 payload as Q8_0 in place (finalize_encoding's kQ8
// packaging, also applied to legacy fp32 records loaded into a quantized
// store). Rows are contiguous in the cache's layer buffer, so each layer
// quantizes in one vectorized sweep.
void quantize_module_in_place(EncodedModule& m) {
  PC_CHECK_MSG(m.precision == StorePrecision::kFp32 && m.kv32.has_value(),
               "quantize_module_in_place needs an fp32 payload");
  const KVCache& kv = *m.kv32;
  m.pos_ids = kv.pos_ids();
  m.kv8_layers.resize(static_cast<size_t>(kv.n_layers()));
  const int width = kv.kv_dim();
  const size_t elems =
      static_cast<size_t>(kv.size()) * static_cast<size_t>(width);
  for (int l = 0; l < kv.n_layers(); ++l) {
    Q8Layer& layer = m.kv8_layers[static_cast<size_t>(l)];
    layer.k.resize(elems);
    layer.v.resize(elems);
    layer.k_scales.resize(static_cast<size_t>(kv.size()));
    layer.v_scales.resize(static_cast<size_t>(kv.size()));
    if (kv.size() > 0) {
      quantize_rows(kv.k_row(l, 0), kv.size(), width, layer.k.data(),
                    layer.k_scales.data());
      quantize_rows(kv.v_row(l, 0), kv.size(), width, layer.v.data(),
                    layer.v_scales.data());
    }
  }
  m.kv32.reset();
  m.precision = StorePrecision::kQ8;
}

// Q4_0 sibling of quantize_module_in_place: re-encodes an fp32 payload as
// blocked 4-bit (finalize_encoding's kQ4 packaging, also applied to legacy
// fp32 records loaded into a q4 store).
void quantize_module_q4_in_place(EncodedModule& m) {
  PC_CHECK_MSG(m.precision == StorePrecision::kFp32 && m.kv32.has_value(),
               "quantize_module_q4_in_place needs an fp32 payload");
  const KVCache& kv = *m.kv32;
  m.pos_ids = kv.pos_ids();
  m.kv4_layers.resize(static_cast<size_t>(kv.n_layers()));
  const int width = kv.kv_dim();
  const size_t row_bytes = q4_row_bytes(width);
  const size_t blocks = static_cast<size_t>(q4_blocks(width));
  const size_t n_tokens = static_cast<size_t>(kv.size());
  for (int l = 0; l < kv.n_layers(); ++l) {
    Q4Layer& layer = m.kv4_layers[static_cast<size_t>(l)];
    layer.k.resize(n_tokens * row_bytes);
    layer.v.resize(n_tokens * row_bytes);
    layer.k_scales.resize(n_tokens * blocks);
    layer.v_scales.resize(n_tokens * blocks);
    if (kv.size() > 0) {
      quantize_rows_q4(kv.k_row(l, 0), kv.size(), width, layer.k.data(),
                       layer.k_scales.data());
      quantize_rows_q4(kv.v_row(l, 0), kv.size(), width, layer.v.data(),
                       layer.v_scales.data());
    }
  }
  m.kv32.reset();
  m.precision = StorePrecision::kQ4;
}

}  // namespace

EncodedModule PromptCacheEngine::finalize_encoding(
    KVCache kv, const std::vector<pml::TokenRun>& runs) {
  EncodedModule m;
  m.n_tokens = kv.size();
  m.kv_dim = kv.kv_dim();
  m.n_layers = kv.n_layers();

  int row = 0;
  for (const pml::TokenRun& run : runs) {
    const int n = static_cast<int>(run.tokens.size());
    if (run.is_param) {
      m.params.push_back({run.param_index, row, row + n});
    } else if (n > 0) {
      // Merge adjacent text ranges so serve-time copies are large memcpys.
      if (!m.text_row_ranges.empty() && m.text_row_ranges.back().second == row) {
        m.text_row_ranges.back().second = row + n;
      } else {
        m.text_row_ranges.emplace_back(row, row + n);
      }
    }
    row += n;
  }

  m.precision = config_.precision;
  switch (config_.precision) {
    case StorePrecision::kFp32:
      m.kv32 = std::move(kv);
      return m;
    case StorePrecision::kFp16: {
      m.pos_ids = kv.pos_ids();
      m.kv16_layers.resize(static_cast<size_t>(kv.n_layers()));
      const size_t row_elems = static_cast<size_t>(kv.kv_dim());
      for (int l = 0; l < kv.n_layers(); ++l) {
        auto& layer = m.kv16_layers[static_cast<size_t>(l)];
        layer.k.reserve(row_elems * static_cast<size_t>(kv.size()));
        layer.v.reserve(row_elems * static_cast<size_t>(kv.size()));
        for (int t = 0; t < kv.size(); ++t) {
          for (size_t e = 0; e < row_elems; ++e) {
            layer.k.push_back(float_to_half(kv.k_row(l, t)[e]));
            layer.v.push_back(float_to_half(kv.v_row(l, t)[e]));
          }
        }
      }
      return m;
    }
    case StorePrecision::kQ8: {
      m.precision = StorePrecision::kFp32;
      m.kv32 = std::move(kv);
      quantize_module_in_place(m);
      return m;
    }
    case StorePrecision::kQ4: {
      m.precision = StorePrecision::kFp32;
      m.kv32 = std::move(kv);
      quantize_module_q4_in_place(m);
      return m;
    }
  }
  return m;
}

EncodedModule PromptCacheEngine::build_module_payload(const pml::Schema& schema,
                                                      int mi) {
  if (FaultInjector::global().should_fail(FaultPoint::kEncode)) {
    throw TransientError("injected fault: encode of module '" +
                         schema.module(mi).name + "' failed");
  }
  PC_SPAN("encode_module",
          {"tokens", static_cast<int64_t>(schema.module(mi).own_token_count())});
  const std::vector<pml::TokenRun> runs = schema.module_own_runs(mi);
  std::vector<TokenId> tokens;
  std::vector<int> pos_ids;
  for (const pml::TokenRun& run : runs) {
    for (size_t i = 0; i < run.tokens.size(); ++i) {
      tokens.push_back(run.tokens[i]);
      pos_ids.push_back(run.start_pos + static_cast<int>(i));
    }
  }

  KVCache kv = model_.make_cache();
  if (!tokens.empty()) {
    kv.reserve(static_cast<int>(tokens.size()));
    (void)model_.forward(tokens, pos_ids, kv);  // module-local attention
  }
  return finalize_encoding(std::move(kv), runs);
}

EncodedModule PromptCacheEngine::build_scaffold_payload(
    const pml::Schema& schema, const Scaffold& scaffold) {
  if (FaultInjector::global().should_fail(FaultPoint::kEncode)) {
    throw TransientError("injected fault: encode of scaffold '" +
                         scaffold.key + "' failed");
  }
  PC_SPAN("encode_scaffold",
          {"modules", static_cast<int64_t>(scaffold.module_indices.size())});
  std::vector<pml::TokenRun> runs;
  for (int mi : scaffold.module_indices) {
    for (pml::TokenRun& run : schema.module_own_runs(mi)) {
      runs.push_back(std::move(run));
    }
  }
  std::vector<TokenId> tokens;
  std::vector<int> pos_ids;
  for (const pml::TokenRun& run : runs) {
    for (size_t i = 0; i < run.tokens.size(); ++i) {
      tokens.push_back(run.tokens[i]);
      pos_ids.push_back(run.start_pos + static_cast<int>(i));
    }
  }

  KVCache kv = model_.make_cache();
  if (!tokens.empty()) {
    kv.reserve(static_cast<int>(tokens.size()));
    (void)model_.forward(tokens, pos_ids, kv);  // shared attention span
  }
  return finalize_encoding(std::move(kv), runs);
}

void PromptCacheEngine::encode_module(const pml::Schema& schema, int mi) {
  const std::string key = module_key(schema, mi);
  if (shared_ != nullptr) {
    if (shared_->contains(key)) return;
    bool encoded_here = false;
    (void)shared_->ensure(
        key, [&] { return build_module_payload(schema, mi); }, &encoded_here);
    if (encoded_here) cells_.modules_encoded.inc();
    return;
  }
  if (store_.contains(key)) return;
  store_.insert(key, build_module_payload(schema, mi));
  cells_.modules_encoded.inc();
}

void PromptCacheEngine::encode_scaffold(const pml::Schema& schema,
                                        const Scaffold& scaffold) {
  if (shared_ != nullptr) {
    if (shared_->contains(scaffold.key)) return;
    bool encoded_here = false;
    (void)shared_->ensure(
        scaffold.key, [&] { return build_scaffold_payload(schema, scaffold); },
        &encoded_here);
    if (encoded_here) cells_.scaffolds_encoded.inc();
    return;
  }
  if (store_.contains(scaffold.key)) return;
  store_.insert(scaffold.key, build_scaffold_payload(schema, scaffold));
  cells_.scaffolds_encoded.inc();
}

pml::PromptBinding PromptCacheEngine::bind(std::string_view prompt_pml) const {
  const pml::PromptAst ast = pml::parse_prompt(prompt_pml);
  const pml::Schema* schema = find_schema(ast.schema_name);
  if (schema == nullptr) {
    throw SchemaError("prompt references schema '" + ast.schema_name +
                      "' which has not been loaded");
  }
  return pml::bind_prompt(*schema, ast, tokenizer_);
}

std::vector<const PromptCacheEngine::Scaffold*>
PromptCacheEngine::active_scaffolds(const pml::PromptBinding& binding,
                                    std::vector<bool>* covered) const {
  covered->assign(binding.schema->modules.size(), false);
  std::vector<bool> included(binding.schema->modules.size(), false);
  for (int mi : binding.modules) included[static_cast<size_t>(mi)] = true;

  std::vector<const Scaffold*> active;
  for (const Scaffold& s : scaffolds_) {
    if (s.schema_name != binding.schema->name) continue;
    bool all = true;
    for (int mi : s.module_indices) {
      if (!included[static_cast<size_t>(mi)] ||
          (*covered)[static_cast<size_t>(mi)]) {
        all = false;
        break;
      }
    }
    if (!all) continue;
    for (int mi : s.module_indices) (*covered)[static_cast<size_t>(mi)] = true;
    active.push_back(&s);
  }
  return active;
}

double PromptCacheEngine::ensure_encoded(const pml::PromptBinding& binding,
                                         const CancellationToken& cancel) {
  PC_SPAN("ensure_encoded",
          {"modules", static_cast<int64_t>(binding.modules.size())});
  WallTimer timer;
  const auto check_cancel = [&] {
    if (cancel.expired()) {
      throw CancelledError(
          "ensure_encoded: deadline expired before module encode");
    }
  };
  std::vector<bool> covered;
  const auto active = active_scaffolds(binding, &covered);
  for (const Scaffold* s : active) {
    check_cancel();
    encode_scaffold(*binding.schema, *s);
  }
  for (int mi : binding.modules) {
    if (!covered[static_cast<size_t>(mi)]) {
      check_cancel();
      encode_module(*binding.schema, mi);
    }
  }
  return timer.elapsed_ms();
}

void PromptCacheEngine::append_text_rows(const EncodedModule& module,
                                         ModuleLocation loc,
                                         KVCache& sequence_cache,
                                         TtftBreakdown* ttft) {
  const size_t row_elems = static_cast<size_t>(module.kv_dim);
  if (ttft != nullptr) ++ttft->modules;  // one emitted module per call
  for (const auto& [begin, end] : module.text_row_ranges) {
    switch (module.precision) {
      case StorePrecision::kFp32:
        sequence_cache.append_range(*module.kv32, begin, end);
        break;
      case StorePrecision::kFp16: {
        const int first = sequence_cache.append_tokens(std::span<const int>(
            module.pos_ids.data() + begin, static_cast<size_t>(end - begin)));
        for (int l = 0; l < module.n_layers; ++l) {
          const auto& layer = module.kv16_layers[static_cast<size_t>(l)];
          for (int t = begin; t < end; ++t) {
            float* kd = sequence_cache.k_row(l, first + (t - begin));
            float* vd = sequence_cache.v_row(l, first + (t - begin));
            const size_t off = static_cast<size_t>(t) * row_elems;
            for (size_t e = 0; e < row_elems; ++e) {
              kd[e] = half_to_float(layer.k[off + e]);
              vd[e] = half_to_float(layer.v[off + e]);
            }
          }
        }
        break;
      }
      case StorePrecision::kQ8: {
        const int first = sequence_cache.append_tokens(std::span<const int>(
            module.pos_ids.data() + begin, static_cast<size_t>(end - begin)));
        for (int l = 0; l < module.n_layers; ++l) {
          const Q8Layer& layer = module.kv8_layers[static_cast<size_t>(l)];
          for (int t = begin; t < end; ++t) {
            const size_t off = static_cast<size_t>(t) * row_elems;
            dequantize_row(layer.k.data() + off,
                           layer.k_scales[static_cast<size_t>(t)],
                           module.kv_dim,
                           sequence_cache.k_row(l, first + (t - begin)));
            dequantize_row(layer.v.data() + off,
                           layer.v_scales[static_cast<size_t>(t)],
                           module.kv_dim,
                           sequence_cache.v_row(l, first + (t - begin)));
          }
        }
        // The copy path pays a dequantize per K and V row; the zero-copy
        // and paged paths keep module rows int8 and never reach here.
        const uint64_t rows = static_cast<uint64_t>(2) *
                              static_cast<uint64_t>(module.n_layers) *
                              static_cast<uint64_t>(end - begin);
        shared_ != nullptr ? shared_->note_dequant_rows(rows)
                           : store_.note_dequant_rows(rows);
        if (ttft != nullptr) ttft->dequant_rows += rows;
        break;
      }
      case StorePrecision::kQ4: {
        const int first = sequence_cache.append_tokens(std::span<const int>(
            module.pos_ids.data() + begin, static_cast<size_t>(end - begin)));
        const size_t row_bytes = q4_row_bytes(module.kv_dim);
        const size_t blocks = static_cast<size_t>(q4_blocks(module.kv_dim));
        for (int l = 0; l < module.n_layers; ++l) {
          const Q4Layer& layer = module.kv4_layers[static_cast<size_t>(l)];
          for (int t = begin; t < end; ++t) {
            const size_t off = static_cast<size_t>(t) * row_bytes;
            const size_t soff = static_cast<size_t>(t) * blocks;
            dequantize_row_q4(layer.k.data() + off,
                              layer.k_scales.data() + soff, module.kv_dim,
                              sequence_cache.k_row(l, first + (t - begin)));
            dequantize_row_q4(layer.v.data() + off,
                              layer.v_scales.data() + soff, module.kv_dim,
                              sequence_cache.v_row(l, first + (t - begin)));
          }
        }
        // Same accounting as q8: only the copy path ever dequantizes.
        const uint64_t rows = static_cast<uint64_t>(2) *
                              static_cast<uint64_t>(module.n_layers) *
                              static_cast<uint64_t>(end - begin);
        shared_ != nullptr ? shared_->note_dequant_rows(rows)
                           : store_.note_dequant_rows(rows);
        if (ttft != nullptr) ttft->dequant_rows += rows;
        break;
      }
    }
    if (ttft != nullptr) {
      const size_t bytes =
          module.bytes_per_token() * static_cast<size_t>(end - begin);
      ttft->cached_tokens += end - begin;
      if (loc == ModuleLocation::kHostMemory) {
        ttft->bytes_from_host += bytes;
      } else {
        ttft->bytes_from_device += bytes;
      }
    }
  }
}

void PromptCacheEngine::for_each_encoded(
    const pml::PromptBinding& binding,
    const std::function<void(const std::string& key,
                             const EncodedModule& module,
                             ModuleLocation location)>& emit,
    bool borrow) {
  std::vector<bool> covered;
  const auto active = active_scaffolds(binding, &covered);

  std::vector<bool> scaffold_done(active.size(), false);
  auto scaffold_of = [&](int mi) -> size_t {
    for (size_t si = 0; si < active.size(); ++si) {
      const auto& members = active[si]->module_indices;
      if (std::find(members.begin(), members.end(), mi) != members.end()) {
        return si;
      }
    }
    PC_CHECK_MSG(false, "covered module without scaffold");
    return 0;
  };

  for (int mi : binding.modules) {
    const bool is_scaffold = covered[static_cast<size_t>(mi)];
    std::string key;
    if (is_scaffold) {
      const size_t si = scaffold_of(mi);
      if (scaffold_done[si]) continue;
      scaffold_done[si] = true;
      key = active[si]->key;
    } else {
      key = module_key(*binding.schema, mi);
    }

    if (shared_ != nullptr) {
      // With `borrow` (zero-copy), lookup and pin are one atomic step and
      // the ref outlives this loop, so rows the view borrows can neither
      // dangle (ref) nor be evicted out from under other requests (pin).
      SharedModuleStore::ModuleRef ref = shared_->find(key, borrow);
      if (!ref) {
        // Evicted since the ensure pass (cache thrash): re-encode — or,
        // single-flight, adopt another worker's in-progress encode.
        cells_.thrash_reencodes.inc();
        bool encoded_here = false;
        ref = shared_->ensure(
            key,
            [&]() -> EncodedModule {
              if (is_scaffold) {
                return build_scaffold_payload(*binding.schema,
                                              *active[scaffold_of(mi)]);
              }
              return build_module_payload(*binding.schema, mi);
            },
            &encoded_here, borrow);
        if (encoded_here) {
          (is_scaffold ? cells_.scaffolds_encoded : cells_.modules_encoded)
              .inc();
        }
      }
      if (borrow) {
        borrowed_pins_.push_back(key);
        borrowed_refs_.push_back(ref);
      }
      emit(key, *ref, ref.location());
      continue;
    }

    ModuleLocation loc = ModuleLocation::kHostMemory;
    const EncodedModule* encoded = store_.find(key, &loc);
    if (encoded == nullptr) {
      // Evicted since the ensure pass (cache thrash): re-encode inline.
      cells_.thrash_reencodes.inc();
      if (is_scaffold) {
        encode_scaffold(*binding.schema, *active[scaffold_of(mi)]);
      } else {
        encode_module(*binding.schema, mi);
      }
      encoded = store_.find(key, &loc);
      PC_CHECK(encoded != nullptr);
    }
    emit(key, *encoded, loc);
  }
}

std::vector<std::string> PromptCacheEngine::module_keys(
    const pml::PromptBinding& binding) const {
  std::vector<bool> covered;
  const auto active = active_scaffolds(binding, &covered);
  std::vector<bool> scaffold_done(active.size(), false);

  std::vector<std::string> keys;
  keys.reserve(binding.modules.size());
  for (int mi : binding.modules) {
    if (covered[static_cast<size_t>(mi)]) {
      for (size_t si = 0; si < active.size(); ++si) {
        const auto& members = active[si]->module_indices;
        if (std::find(members.begin(), members.end(), mi) == members.end()) {
          continue;
        }
        if (!scaffold_done[si]) {
          scaffold_done[si] = true;
          keys.push_back(active[si]->key);
        }
        break;
      }
    } else {
      keys.push_back(module_key(*binding.schema, mi));
    }
  }
  return keys;
}

namespace {

// Shared tail of both assembly paths: one forward pass over the uncached
// content. A fully cached prompt still needs one computed position to
// produce logits; we kick off with <s> at the next free position.
template <typename CacheT>
Tensor prefill_uncached(const Model& model, const pml::PromptBinding& binding,
                        CacheT& cache, TtftBreakdown* ttft) {
  WallTimer uncached_timer;
  UncachedStream stream = collect_uncached(binding);
  if (stream.tokens.empty()) {
    stream.tokens.push_back(Vocab::kBos);
    stream.pos_ids.push_back(binding.next_pos);
  }
  PC_SPAN("prefill", {"tokens", static_cast<int64_t>(stream.tokens.size())});
  Tensor logits = model.forward(stream.tokens, stream.pos_ids, cache);
  if (ttft != nullptr) {
    ttft->uncached_ms = uncached_timer.elapsed_ms();
    ttft->uncached_tokens = static_cast<int>(stream.tokens.size());
  }
  return logits;
}

}  // namespace

Tensor PromptCacheEngine::assemble_and_prefill(
    const pml::PromptBinding& binding, KVCache& sequence_cache,
    TtftBreakdown* ttft) {
  WallTimer retrieve_timer;
  {
    PC_SPAN("kv_concat",
            {"modules", static_cast<int64_t>(binding.modules.size())});
    sequence_cache.reserve(binding.cached_token_count() +
                           binding.uncached_token_count() + 64);
    for_each_encoded(binding, [&](const std::string&, const EncodedModule& m,
                                  ModuleLocation loc) {
      append_text_rows(m, loc, sequence_cache, ttft);
    });
  }
  if (ttft != nullptr) ttft->retrieve_ms = retrieve_timer.elapsed_ms();
  return prefill_uncached(model_, binding, sequence_cache, ttft);
}

Tensor PromptCacheEngine::assemble_and_prefill(
    const pml::PromptBinding& binding, SegmentedKVCache& view,
    TtftBreakdown* ttft) {
  WallTimer retrieve_timer;
  {
    PC_SPAN("kv_concat",
            {"modules", static_cast<int64_t>(binding.modules.size())},
            {"zero_copy", 1});
    for_each_encoded(
        binding,
        [&](const std::string& key, const EncodedModule& m, ModuleLocation) {
          PC_CHECK_MSG(
              m.precision == StorePrecision::kFp32 ||
                  m.precision == StorePrecision::kQ8 ||
                  m.precision == StorePrecision::kQ4,
              "zero-copy serving requires kFp32, kQ8, or kQ4 module storage "
              "(module '"
                  << key << "' is stored as fp16, which has no in-place "
                  << "attention kernel)");
          // Pin so later thrash re-encodes cannot evict rows this view
          // borrowed. Shared-store pinning already happened atomically inside
          // for_each_encoded (borrow=true); only the private boolean-pin
          // store needs the explicit dance here.
          if (shared_ == nullptr && !store_.is_pinned(key)) {
            store_.pin(key);
            borrowed_pins_.push_back(key);
          }
          if (ttft != nullptr) ++ttft->modules;
          for (const auto& [begin, end] : m.text_row_ranges) {
            if (m.precision == StorePrecision::kQ8) {
              // Q8 rows are borrowed as int8 + scale; attention scores them
              // in the int8 domain (attn_fused_q8_gather), so nothing is
              // dequantized, copied, or converted on this path.
              view.append_borrowed_q8(m.kv8_layers, m.pos_ids, begin, end);
            } else if (m.precision == StorePrecision::kQ4) {
              // Q4 rows are borrowed as packed nibbles + per-block scales;
              // attention scores them block-wise in the integer domain
              // (attn_fused_q4_gather) — nothing dequantized here either.
              view.append_borrowed_q4(m.kv4_layers, m.pos_ids, begin, end);
            } else {
              view.append_borrowed(*m.kv32, begin, end);
            }
            if (ttft != nullptr) {
              ttft->cached_tokens += end - begin;
              ttft->bytes_zero_copy +=
                  m.bytes_per_token() * static_cast<size_t>(end - begin);
            }
          }
        },
        /*borrow=*/shared_ != nullptr);
  }
  if (ttft != nullptr) ttft->retrieve_ms = retrieve_timer.elapsed_ms();
  return prefill_uncached(model_, binding, view, ttft);
}

void PromptCacheEngine::release_borrowed_pins() {
  if (shared_ != nullptr) {
    for (const std::string& key : borrowed_pins_) shared_->unpin(key);
    borrowed_pins_.clear();
    // Dropping the refs last: rows stay valid until every pin is returned.
    borrowed_refs_.clear();
    return;
  }
  for (const std::string& key : borrowed_pins_) store_.unpin(key);
  borrowed_pins_.clear();
}

ServeResult PromptCacheEngine::serve(std::string_view prompt_pml,
                                     const GenerateOptions& options) {
  cells_.serves.inc();
  PC_SPAN("serve", {"zero_copy", config_.zero_copy ? 1 : 0});
  const pml::PromptBinding binding = [&] {
    PC_SPAN("tokenize_bind");
    return bind(prompt_pml);
  }();

  ServeResult result;
  result.encode_ms = ensure_encoded(binding, options.cancel);

  // The kickoff token (fully cached prompt) occupies next_pos itself.
  const bool kickoff = binding.args.empty() && binding.texts.empty();
  const int gen_start = binding.next_pos + (kickoff ? 1 : 0);

  WallTimer decode_timer;
  if (config_.zero_copy) {
    const int tail_capacity = binding.uncached_token_count() + 1 +
                              options.max_new_tokens +
                              config_.zero_copy_tail_slack;
    SegmentedKVCache view(model_.config().n_layers, model_.config().kv_dim(),
                          tail_capacity);
    const Tensor logits = assemble_and_prefill(binding, view, &result.ttft);
    decode_timer.reset();
    Model::GenerateOutput gen = [&] {
      PC_SPAN("decode");
      return model_.generate(logits, gen_start, view, options);
    }();
    release_borrowed_pins();
    if (gen.finish_reason == FinishReason::kCancelled) {
      throw CancelledError("serve: deadline expired mid-decode");
    }
    result.tokens = std::move(gen.tokens);
    result.finish_reason = gen.finish_reason;
  } else {
    KVCache sequence_cache = model_.make_cache();
    const Tensor logits =
        assemble_and_prefill(binding, sequence_cache, &result.ttft);
    decode_timer.reset();
    Model::GenerateOutput gen = [&] {
      PC_SPAN("decode");
      return model_.generate(logits, gen_start, sequence_cache, options);
    }();
    if (gen.finish_reason == FinishReason::kCancelled) {
      throw CancelledError("serve: deadline expired mid-decode");
    }
    result.tokens = std::move(gen.tokens);
    result.finish_reason = gen.finish_reason;
  }
  result.prompt_tokens =
      result.ttft.cached_tokens + result.ttft.uncached_tokens;
  result.decode_ms = decode_timer.elapsed_ms();
  result.text = tokenizer_.decode(result.tokens);
  cells_.cached_ttft.record_ms(result.ttft.total_ms());

  if (config_.prefetch_union_siblings) {
    // Off the latency path: warm the alternatives of every union member
    // this prompt used, so the next profile/locale/variant request finds
    // them already in device memory.
    // Private mode counts via the store's promotion delta; in shared mode
    // that counter is fleet-global, so count this engine's own moves.
    const uint64_t before =
        shared_ != nullptr ? 0 : store_.stats().promotions;
    uint64_t moved_here = 0;
    for (int mi : binding.modules) {
      const pml::ModuleNode& m = binding.schema->module(mi);
      if (m.union_id < 0) continue;
      for (int sibling :
           binding.schema->unions[static_cast<size_t>(m.union_id)].members) {
        if (sibling == mi) continue;
        const std::string key = module_key(*binding.schema, sibling);
        if (shared_ != nullptr) {
          bool moved = false;
          (void)shared_->promote(key, ModuleLocation::kDeviceMemory, &moved);
          if (moved) ++moved_here;
        } else {
          (void)store_.promote(key, ModuleLocation::kDeviceMemory);
        }
      }
    }
    cells_.sibling_prefetches.inc(
        shared_ != nullptr ? moved_here
                           : store_.stats().promotions - before);
  }
  return result;
}

ServeResult PromptCacheEngine::serve_full_prefill(
    std::string_view prompt_pml, const GenerateOptions& options) {
  cells_.degraded_serves.inc();
  PC_SPAN("serve_degraded");
  const pml::PromptBinding binding = [&] {
    PC_SPAN("tokenize_bind");
    return bind(prompt_pml);
  }();
  if (options.cancel.expired()) {
    throw CancelledError("serve_full_prefill: deadline expired before prefill");
  }

  // Rebuild, in one forward pass and without touching the module store, the
  // exact attention pattern that per-module encoding + concatenation
  // realizes (§3.1): each module — or jointly-encoded scaffold — is one
  // block, parameter-placeholder rows are attended inside their block but
  // hidden from global rows, and the uncached stream attends globally. The
  // blocks are emitted in for_each_encoded's concatenation order, so the
  // rows kept below land in the sequence cache exactly where
  // append_text_rows would have put them.
  std::vector<TokenId> tokens;
  std::vector<int> pos_ids;
  std::vector<int> block_ids;
  std::vector<uint8_t> hidden;
  std::vector<std::pair<int, int>> keep;  // non-placeholder row ranges
  int block = 0;

  const auto emit_rows = [&](std::span<const TokenId> toks, int start_pos,
                             int block_id, bool is_hidden) {
    const int begin = static_cast<int>(tokens.size());
    for (size_t i = 0; i < toks.size(); ++i) {
      tokens.push_back(toks[i]);
      pos_ids.push_back(start_pos + static_cast<int>(i));
      block_ids.push_back(block_id);
      hidden.push_back(is_hidden ? 1 : 0);
    }
    const int end = static_cast<int>(tokens.size());
    if (!is_hidden && end > begin) {
      if (!keep.empty() && keep.back().second == begin) {
        keep.back().second = end;
      } else {
        keep.emplace_back(begin, end);
      }
    }
  };
  const auto emit_module = [&](int mi) {
    for (const pml::TokenRun& run : binding.schema->module_own_runs(mi)) {
      emit_rows(run.tokens, run.start_pos, block, run.is_param);
    }
  };

  std::vector<bool> covered;
  const auto active = active_scaffolds(binding, &covered);
  std::vector<bool> scaffold_done(active.size(), false);
  for (int mi : binding.modules) {
    if (covered[static_cast<size_t>(mi)]) {
      size_t si = 0;
      while (si < active.size()) {
        const auto& members = active[si]->module_indices;
        if (std::find(members.begin(), members.end(), mi) != members.end()) {
          break;
        }
        ++si;
      }
      if (scaffold_done[si]) continue;
      scaffold_done[si] = true;
      ++block;  // scaffold members share one attention block
      for (int mj : active[si]->module_indices) emit_module(mj);
    } else {
      ++block;
      emit_module(mi);
    }
  }

  UncachedStream stream = collect_uncached(binding);
  const bool kickoff = stream.tokens.empty();
  if (kickoff) {
    // Same kickoff rule as serve(): a fully cached prompt still needs one
    // computed position to produce logits.
    stream.tokens.push_back(Vocab::kBos);
    stream.pos_ids.push_back(binding.next_pos);
  }
  for (size_t i = 0; i < stream.tokens.size(); ++i) {
    emit_rows({&stream.tokens[i], 1}, stream.pos_ids[i], Model::kGlobalBlock,
              false);
  }

  ServeResult result;
  result.degraded = true;
  const int n = static_cast<int>(tokens.size());
  std::unique_ptr<bool[]> hidden_arr(new bool[static_cast<size_t>(n)]);
  for (int i = 0; i < n; ++i) {
    hidden_arr[static_cast<size_t>(i)] = hidden[static_cast<size_t>(i)] != 0;
  }

  WallTimer prefill_timer;
  KVCache scratch = model_.make_cache();
  scratch.reserve(n);
  const Tensor logits = [&] {
    PC_SPAN("prefill", {"tokens", static_cast<int64_t>(n)});
    return model_.forward_blocked(
        tokens, pos_ids, block_ids, scratch, false,
        std::span<const bool>(hidden_arr.get(), static_cast<size_t>(n)));
  }();

  // Decode continues from a fresh sequence cache holding exactly the rows
  // the cached path would have assembled (placeholder rows dropped).
  KVCache sequence_cache = model_.make_cache();
  int kept_rows = 0;
  for (const auto& [b, e] : keep) kept_rows += e - b;
  sequence_cache.reserve(kept_rows + options.max_new_tokens + 1);
  for (const auto& [b, e] : keep) sequence_cache.append_range(scratch, b, e);
  result.ttft.uncached_ms = prefill_timer.elapsed_ms();
  result.ttft.uncached_tokens = n;  // everything was recomputed

  const int gen_start = binding.next_pos + (kickoff ? 1 : 0);
  WallTimer decode_timer;
  Model::GenerateOutput gen = [&] {
    PC_SPAN("decode");
    return model_.generate(logits, gen_start, sequence_cache, options);
  }();
  if (gen.finish_reason == FinishReason::kCancelled) {
    throw CancelledError("serve_full_prefill: deadline expired mid-decode");
  }
  result.tokens = std::move(gen.tokens);
  result.finish_reason = gen.finish_reason;
  result.prompt_tokens = n;
  result.decode_ms = decode_timer.elapsed_ms();
  result.text = tokenizer_.decode(result.tokens);
  cells_.degraded_ttft.record_ms(result.ttft.total_ms());
  return result;
}

void PromptCacheEngine::pin_module(const std::string& schema_name,
                                   const std::string& module_name) {
  const pml::Schema* schema = find_schema(schema_name);
  PC_CHECK_MSG(schema != nullptr, "pin_module: unknown schema '"
                                      << schema_name << "'");
  const int mi = schema->find_module(module_name);
  PC_CHECK_MSG(mi != -1, "pin_module: unknown module '" << module_name
                                                        << "'");
  encode_module(*schema, mi);
  const std::string key = module_key(*schema, mi);
  PC_CHECK(shared_ != nullptr ? shared_->pin(key) : store_.pin(key));
}

size_t PromptCacheEngine::save_modules(const std::string& path) const {
  // Crash atomicity: stream into a sibling temp file and rename over the
  // destination only after a successful flush. A crash mid-write leaves the
  // previous store intact and at most a stray .tmp behind — never a
  // truncated store the next load has to kSkipCorrupt through.
  const std::string tmp = path + ".tmp";
  size_t count = 0;
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) throw Error("cannot open '" + tmp + "' for writing");
    try {
      write_store_header(os);
      const auto write_one = [&](const std::string& key,
                                 const EncodedModule& module, ModuleLocation) {
        write_module_record(os, key, module);
        ++count;
      };
      shared_ != nullptr ? shared_->for_each(write_one)
                         : store_.for_each(write_one);
      os.flush();
      if (!os) {
        throw Error("write failure persisting modules to '" + tmp + "'");
      }
    } catch (...) {
      os.close();
      std::remove(tmp.c_str());
      throw;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw Error("cannot rename '" + tmp + "' over '" + path + "'");
  }
  return count;
}

size_t PromptCacheEngine::load_modules(const std::string& path) {
  return load_modules(path, LoadPolicy::kStrict).loaded;
}

PromptCacheEngine::LoadReport PromptCacheEngine::load_modules(
    const std::string& path, LoadPolicy policy) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw Error("cannot open '" + path + "' for reading");
  LoadReport report;
  try {
    read_store_header(is);
  } catch (const Error&) {
    if (policy == LoadPolicy::kStrict) throw;
    // Header corrupt: resync on the first record tag and salvage the rest.
    ++report.skipped;
    if (!resync_to_next_record(is)) return report;
  }
  std::string key;
  EncodedModule module;
  for (;;) {
    bool have = false;
    try {
      have = read_module_record(is, &key, &module);
      if (have) {
        PC_CHECK_MSG(module.kv_dim == model_.config().kv_dim() &&
                         module.n_layers == model_.config().n_layers,
                     "persisted module '" << key
                                          << "' does not match this model's "
                                             "geometry");
      }
    } catch (const Error&) {
      if (policy == LoadPolicy::kStrict) throw;
      // A skipped record is merely a cache miss: the module is re-encoded
      // lazily the first time a prompt imports it.
      ++report.skipped;
      module = EncodedModule{};
      if (!resync_to_next_record(is)) break;
      continue;
    }
    if (!have) break;
    // A legacy fp32 record loaded into a quantized engine is re-encoded in
    // the engine's format on the way in, so the store never holds
    // mixed-format payloads and downstream paths (zero-copy borrow, paged
    // sharing, footprint accounting) see the engine's configured format.
    if (config_.precision == StorePrecision::kQ8 &&
        module.precision == StorePrecision::kFp32) {
      quantize_module_in_place(module);
    } else if (config_.precision == StorePrecision::kQ4 &&
               module.precision == StorePrecision::kFp32) {
      quantize_module_q4_in_place(module);
    }
    if (shared_ != nullptr) {
      shared_->insert(key, std::move(module));
    } else {
      store_.insert(key, std::move(module));
    }
    module = EncodedModule{};
    ++report.loaded;
  }
  return report;
}

std::vector<ServeResult> PromptCacheEngine::serve_batch(
    const std::vector<std::string>& prompts, const GenerateOptions& options,
    BatchStats* stats) {
  std::vector<ServeResult> results;
  results.reserve(prompts.size());

  std::set<std::string> distinct_keys;
  size_t duplicate_bytes = 0;

  for (const std::string& prompt : prompts) {
    // Account module usage before serving (ensure_encoded makes the
    // lookups below hits).
    if (stats != nullptr) {
      const pml::PromptBinding binding = bind(prompt);
      (void)ensure_encoded(binding);
      for_each_encoded(binding, [&](const std::string& key,
                                    const EncodedModule& m, ModuleLocation) {
        if (distinct_keys.insert(key).second) {
          stats->shared_module_bytes += m.payload_bytes();
        } else {
          duplicate_bytes += m.payload_bytes();
        }
      });
    }
    results.push_back(serve(prompt, options));
    if (stats != nullptr) {
      const ServeResult& r = results.back();
      if (config_.zero_copy) {
        // Owned memory is the tail only; approximate from uncached +
        // generated rows at engine precision (fp32 tails).
        const size_t row_bytes = static_cast<size_t>(2) *
                                 model_.config().n_layers *
                                 model_.config().kv_dim() * sizeof(float);
        stats->owned_bytes +=
            row_bytes * (static_cast<size_t>(r.ttft.uncached_tokens) +
                         r.tokens.size());
      } else {
        const size_t row_bytes = static_cast<size_t>(2) *
                                 model_.config().n_layers *
                                 model_.config().kv_dim() * sizeof(float);
        stats->owned_bytes +=
            row_bytes * (static_cast<size_t>(r.ttft.cached_tokens) +
                         static_cast<size_t>(r.ttft.uncached_tokens) +
                         r.tokens.size());
      }
    }
  }
  if (stats != nullptr) {
    stats->requests = static_cast<int>(prompts.size());
    stats->duplicate_module_bytes_avoided = duplicate_bytes;
  }
  return results;
}

ServeResult PromptCacheEngine::serve_baseline(std::string_view prompt_pml,
                                              const GenerateOptions& options) {
  cells_.baseline_serves.inc();
  PC_SPAN("serve_baseline");
  const pml::PromptBinding binding = [&] {
    PC_SPAN("tokenize_bind");
    return bind(prompt_pml);
  }();

  ServeResult result;
  const std::vector<TokenId>& tokens = binding.baseline_tokens;
  PC_CHECK_MSG(!tokens.empty(), "baseline prompt is empty");
  PC_CHECK_MSG(static_cast<int>(tokens.size()) < model_.config().max_pos,
               "baseline prompt exceeds max_pos");
  std::vector<int> pos_ids(tokens.size());
  for (size_t i = 0; i < tokens.size(); ++i) pos_ids[i] = static_cast<int>(i);

  KVCache sequence_cache = model_.make_cache();
  sequence_cache.reserve(static_cast<int>(tokens.size()) +
                         options.max_new_tokens);

  WallTimer prefill_timer;
  const Tensor logits = [&] {
    PC_SPAN("prefill", {"tokens", static_cast<int64_t>(tokens.size())});
    return model_.forward(tokens, pos_ids, sequence_cache);
  }();
  result.ttft.uncached_ms = prefill_timer.elapsed_ms();
  result.ttft.uncached_tokens = static_cast<int>(tokens.size());
  result.prompt_tokens = static_cast<int>(tokens.size());

  WallTimer decode_timer;
  Model::GenerateOutput gen = [&] {
    PC_SPAN("decode");
    return model_.generate(logits, static_cast<int>(tokens.size()),
                           sequence_cache, options);
  }();
  result.tokens = std::move(gen.tokens);
  result.finish_reason = gen.finish_reason;
  result.decode_ms = decode_timer.elapsed_ms();
  result.text = tokenizer_.decode(result.tokens);
  cells_.baseline_ttft.record_ms(result.ttft.total_ms());
  return result;
}

}  // namespace pc
