// An encoded prompt module: the precomputed (k,v) attention states of one
// module's own tokens at their schema-assigned position IDs (paper §3.3).
//
// Storage precision is configurable (EngineConfig::precision): fp32 keeps
// the engine's native states; fp16 halves the footprint (the paper's Table
// 2 assumption); int8 quarters it (the §5.5/§6 compression direction).
// Lower precisions convert on retrieval — trading copy time for capacity.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "kv/kv_cache.h"
#include "kv/quant.h"
#include "sys/device_model.h"
#include "tensor/fp16.h"

namespace pc {

enum class StorePrecision { kFp32, kFp16, kQ8, kQ4 };

struct EncodedModule {
  // Exactly one payload is held, matching `precision`.
  std::optional<KVCache> kv32;

  struct F16Layer {
    std::vector<f16> k;
    std::vector<f16> v;
  };
  std::vector<F16Layer> kv16_layers;  // [n_layers][n_tokens * kv_dim]
  std::vector<Q8Layer> kv8_layers;    // [n_layers]
  std::vector<Q4Layer> kv4_layers;    // [n_layers]

  std::vector<int> pos_ids;  // used with fp16/q8/q4 payloads

  StorePrecision precision = StorePrecision::kFp32;
  int n_tokens = 0;
  int kv_dim = 0;
  int n_layers = 0;

  // Row ranges [begin, end) of text content — the rows copied at serve
  // time. Parameter placeholder rows are skipped (arguments replace them).
  std::vector<std::pair<int, int>> text_row_ranges;

  struct ParamSlot {
    int param_index = -1;
    int row_begin = 0;
    int row_end = 0;
  };
  std::vector<ParamSlot> params;

  int text_token_count() const {
    int n = 0;
    for (const auto& [b, e] : text_row_ranges) n += e - b;
    return n;
  }

  // Bytes of one token's resident K+V payload across all layers.
  size_t bytes_per_token() const {
    const size_t kv_elems = static_cast<size_t>(kv_dim) * 2 * n_layers;
    switch (precision) {
      case StorePrecision::kFp32:
        return kv_elems * sizeof(float);
      case StorePrecision::kFp16:
        return kv_elems * sizeof(f16);
      case StorePrecision::kQ8:
        // int8 payload + one fp32 scale per row (K and V) per layer.
        return kv_elems * sizeof(int8_t) +
               static_cast<size_t>(2) * n_layers * sizeof(float);
      case StorePrecision::kQ4:
        // Packed nibbles + one fp32 scale per 32-value block (K and V rows)
        // per layer.
        return static_cast<size_t>(2) * n_layers * q4_row_bytes(kv_dim) +
               static_cast<size_t>(2) * n_layers * q4_blocks(kv_dim) *
                   sizeof(float);
    }
    return 0;
  }

  size_t payload_bytes() const {
    return bytes_per_token() * static_cast<size_t>(n_tokens);
  }
};

}  // namespace pc
