// Deterministic word-level tokenizer with byte fallback.
//
// encode() splits text into word and punctuation pieces, looks each piece up
// in the vocabulary, and falls back to UTF-8 byte tokens for out-of-vocab
// pieces, so every string round-trips exactly (modulo whitespace
// normalization, which is also how SentencePiece behaves for the models in
// the paper). decode() inverts this.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "tokenizer/vocab.h"

namespace pc {

// Abstract tokenizer: the engine, PML layer, and sessions depend only on
// this interface, so word-level and BPE tokenizers are interchangeable.
class TextTokenizer {
 public:
  virtual ~TextTokenizer() = default;

  virtual const Vocab& vocab() const = 0;
  virtual std::vector<TokenId> encode(std::string_view text) const = 0;
  virtual std::string decode(const std::vector<TokenId>& ids) const = 0;
};

class Tokenizer : public TextTokenizer {
 public:
  explicit Tokenizer(const Vocab& vocab) : vocab_(&vocab) {}

  const Vocab& vocab() const override { return *vocab_; }

  // Text -> token ids. Whitespace runs are collapsed (they separate pieces
  // but produce no tokens); punctuation characters are individual pieces.
  std::vector<TokenId> encode(std::string_view text) const override;

  // Token ids -> text. Word pieces are joined with single spaces except that
  // punctuation attaches to the preceding piece; byte-fallback runs decode
  // to their raw bytes. Special tokens are skipped.
  std::string decode(const std::vector<TokenId>& ids) const override;

  // Splits text into the pieces encode() would look up (exposed for tests
  // and for the PML layer, which needs token counts without ids).
  static std::vector<std::string> pre_tokenize(std::string_view text);

 private:
  const Vocab* vocab_;
};

}  // namespace pc
