// Vocabulary: bidirectional token-string <-> id mapping with special tokens
// and (optionally) byte-fallback entries, mirroring the structure of
// SentencePiece-style vocabularies used by the LLMs in the paper (Llama2 /
// MPT / Falcon) at a scale suitable for a from-scratch engine.
//
// Id layout:
//   [0, n_special)                 special tokens (<unk>, <s>, </s>, <pad>)
//   [n_special, n_special + B)     byte tokens <0x00>..<0xFF> (B = 256 or 0)
//   [n_special + B, size)          word / punctuation pieces
//
// Closed vocabularies (byte_fallback = false) map out-of-vocab pieces to
// <unk>; the hand-constructed induction model uses one (its embedding
// dimensionality scales with vocab size).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/error.h"

namespace pc {

using TokenId = int32_t;

class Vocab {
 public:
  // Canonical special-token ids, fixed across all vocabularies.
  static constexpr TokenId kUnk = 0;
  static constexpr TokenId kBos = 1;
  static constexpr TokenId kEos = 2;
  static constexpr TokenId kPad = 3;
  static constexpr TokenId kNumSpecial = 4;

  // Builds a vocabulary whose word pieces are exactly `pieces`
  // (deduplicated, order preserved). Special tokens are implicit; byte
  // tokens are included when byte_fallback is set.
  static Vocab from_pieces(const std::vector<std::string>& pieces,
                           bool byte_fallback = true);

  // A small built-in English vocabulary (common words + punctuation) good
  // enough for the synthetic workloads and examples.
  static const Vocab& basic_english();

  TokenId size() const { return static_cast<TokenId>(id_to_piece_.size()); }

  bool has_byte_fallback() const { return n_bytes_ == 256; }
  TokenId first_piece_id() const { return kNumSpecial + n_bytes_; }
  TokenId piece_count() const { return size() - first_piece_id(); }

  const std::string& piece(TokenId id) const {
    PC_CHECK_MSG(id >= 0 && id < size(), "token id " << id << " out of range");
    return id_to_piece_[static_cast<size_t>(id)];
  }

  // Looks up a word piece (not special/byte) by exact string.
  std::optional<TokenId> find_piece(std::string_view piece) const {
    auto it = piece_to_id_.find(std::string(piece));
    if (it == piece_to_id_.end()) return std::nullopt;
    return it->second;
  }

  static bool is_special(TokenId id) { return id >= 0 && id < kNumSpecial; }

  bool is_byte(TokenId id) const {
    return id >= kNumSpecial && id < kNumSpecial + n_bytes_;
  }
  TokenId byte_token(uint8_t b) const {
    PC_CHECK_MSG(has_byte_fallback(), "vocab has no byte fallback");
    return kNumSpecial + b;
  }
  uint8_t byte_value(TokenId id) const {
    PC_CHECK(is_byte(id));
    return static_cast<uint8_t>(id - kNumSpecial);
  }

 private:
  int n_bytes_ = 0;
  std::vector<std::string> id_to_piece_;
  std::unordered_map<std::string, TokenId> piece_to_id_;
};

}  // namespace pc
