// LLM-specific chat templates (paper §3.2.3).
//
// PML's <system>/<user>/<assistant> tags are model-agnostic; the PML layer
// compiles them to the concrete conversation format of the target LLM
// family. Because role tags may wrap prompt modules (not just text), each
// role renders to a (prefix, suffix) pair that the layout engine places
// around the tag's children.
#pragma once

#include <string>
#include <string_view>

namespace pc {

enum class ChatRole { kSystem, kUser, kAssistant };

enum class TemplateStyle {
  kPlain,   // "role : text\n" — used by the synthetic models
  kLlama2,  // [INST] <<SYS>>...<</SYS>> user [/INST] assistant </s>
  kChatML,  // <|im_start|>role ... <|im_end|>  (MPT-style)
  kFalcon,  // "System : ...\nUser : ...\nFalcon : ..."
};

class ChatTemplate {
 public:
  explicit ChatTemplate(TemplateStyle style) : style_(style) {}

  TemplateStyle style() const { return style_; }

  struct Wrapping {
    std::string prefix;
    std::string suffix;
  };

  // The text placed before and after a role section's content.
  Wrapping wrap(ChatRole role) const;

  // Convenience: prefix + text + suffix.
  std::string render(ChatRole role, std::string_view text) const {
    const Wrapping w = wrap(role);
    return w.prefix + std::string(text) + w.suffix;
  }

 private:
  TemplateStyle style_;
};

}  // namespace pc
