// Byte-pair encoding: trainer and tokenizer.
//
// The models the paper runs use SentencePiece/BPE subword vocabularies; the
// word-level tokenizer elsewhere in this repo is a simplification. This is
// the real thing, self-contained: train() learns merge rules from a corpus
// (greedy highest-frequency pair merging over whitespace-split words with a
// word-boundary marker), and BpeTokenizer applies them to encode arbitrary
// text — every byte is representable, frequent words collapse to single
// tokens. Plugs into the engine through the TextTokenizer interface.
#pragma once

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "tokenizer/tokenizer.h"

namespace pc {

class BpeModel {
 public:
  // Word-boundary marker prepended to each word (SentencePiece's U+2581).
  static constexpr const char* kBoundary = "\xe2\x96\x81";

  // Learns up to n_merges merge rules from the corpus. Stops early when no
  // pair occurs at least twice.
  static BpeModel train(std::string_view corpus, int n_merges);

  int merge_count() const { return static_cast<int>(merges_.size()); }

  // Splits text into subword piece strings (boundary-marked).
  std::vector<std::string> encode_pieces(std::string_view text) const;

  // The piece inventory: 256 single bytes + boundary + merged symbols.
  std::vector<std::string> piece_inventory() const;

 private:
  struct Merge {
    std::string left;
    std::string right;
  };

  std::vector<std::string> word_symbols(std::string_view word) const;

  std::vector<Merge> merges_;
  // (left + '\n' + right) -> rank; lower rank merges first.
  std::unordered_map<std::string, int> ranks_;
};

// TextTokenizer over a trained BPE model: owns the vocabulary built from
// the model's piece inventory (closed: every byte is a piece, so there is
// no <unk> fallback in practice).
class BpeTokenizer : public TextTokenizer {
 public:
  explicit BpeTokenizer(BpeModel model);

  const Vocab& vocab() const override { return vocab_; }
  std::vector<TokenId> encode(std::string_view text) const override;
  std::string decode(const std::vector<TokenId>& ids) const override;

  const BpeModel& model() const { return model_; }

 private:
  BpeModel model_;
  Vocab vocab_;
};

}  // namespace pc
