#include "tokenizer/chat_template.h"

namespace pc {

ChatTemplate::Wrapping ChatTemplate::wrap(ChatRole role) const {
  switch (style_) {
    case TemplateStyle::kPlain:
      switch (role) {
        case ChatRole::kSystem:
          return {"system : ", "\n"};
        case ChatRole::kUser:
          return {"user : ", "\n"};
        case ChatRole::kAssistant:
          return {"assistant : ", "\n"};
      }
      break;
    case TemplateStyle::kLlama2:
      switch (role) {
        case ChatRole::kSystem:
          return {"<<SYS>> ", " <</SYS>> "};
        case ChatRole::kUser:
          return {"[INST] ", " [/INST] "};
        case ChatRole::kAssistant:
          return {"", " </s> "};
      }
      break;
    case TemplateStyle::kChatML:
      switch (role) {
        case ChatRole::kSystem:
          return {"<|im_start|> system\n", " <|im_end|>\n"};
        case ChatRole::kUser:
          return {"<|im_start|> user\n", " <|im_end|>\n"};
        case ChatRole::kAssistant:
          return {"<|im_start|> assistant\n", " <|im_end|>\n"};
      }
      break;
    case TemplateStyle::kFalcon:
      switch (role) {
        case ChatRole::kSystem:
          return {"System : ", "\n"};
        case ChatRole::kUser:
          return {"User : ", "\n"};
        case ChatRole::kAssistant:
          return {"Falcon : ", "\n"};
      }
      break;
  }
  return {"", ""};
}

}  // namespace pc
