#include "tokenizer/bpe.h"

#include <algorithm>
#include <map>

#include "common/error.h"
#include "common/string_util.h"

namespace pc {

namespace {

std::string pair_key(const std::string& left, const std::string& right) {
  return left + '\n' + right;
}

}  // namespace

std::vector<std::string> BpeModel::word_symbols(std::string_view word) const {
  // Boundary marker + one symbol per byte.
  std::vector<std::string> symbols;
  symbols.reserve(word.size() + 1);
  symbols.emplace_back(kBoundary);
  for (char c : word) symbols.emplace_back(1, c);
  return symbols;
}

BpeModel BpeModel::train(std::string_view corpus, int n_merges) {
  PC_CHECK_MSG(n_merges >= 0, "negative merge budget");
  BpeModel model;

  // Unique words with counts, each as a mutable symbol sequence.
  std::map<std::string, int> word_counts;
  for (const std::string& w : split_whitespace(corpus)) ++word_counts[w];

  struct Word {
    std::vector<std::string> symbols;
    int count;
  };
  std::vector<Word> words;
  words.reserve(word_counts.size());
  for (const auto& [w, count] : word_counts) {
    words.push_back({model.word_symbols(w), count});
  }

  for (int m = 0; m < n_merges; ++m) {
    // Count adjacent pairs (weighted by word frequency).
    std::map<std::pair<std::string, std::string>, long> pair_counts;
    for (const Word& word : words) {
      for (size_t i = 0; i + 1 < word.symbols.size(); ++i) {
        pair_counts[{word.symbols[i], word.symbols[i + 1]}] += word.count;
      }
    }
    // Best pair; std::map iteration makes ties deterministic.
    std::pair<std::string, std::string> best;
    long best_count = 0;
    for (const auto& [pair, count] : pair_counts) {
      if (count > best_count) {
        best = pair;
        best_count = count;
      }
    }
    if (best_count < 2) break;  // nothing worth merging

    const std::string merged = best.first + best.second;
    model.ranks_.emplace(pair_key(best.first, best.second),
                         static_cast<int>(model.merges_.size()));
    model.merges_.push_back({best.first, best.second});

    // Apply the merge to every word.
    for (Word& word : words) {
      std::vector<std::string> next;
      next.reserve(word.symbols.size());
      for (size_t i = 0; i < word.symbols.size(); ++i) {
        if (i + 1 < word.symbols.size() && word.symbols[i] == best.first &&
            word.symbols[i + 1] == best.second) {
          next.push_back(merged);
          ++i;
        } else {
          next.push_back(word.symbols[i]);
        }
      }
      word.symbols = std::move(next);
    }
  }
  return model;
}

std::vector<std::string> BpeModel::encode_pieces(
    std::string_view text) const {
  std::vector<std::string> out;
  for (const std::string& w : split_whitespace(text)) {
    std::vector<std::string> symbols = word_symbols(w);
    // Repeatedly apply the lowest-ranked applicable merge.
    for (;;) {
      int best_rank = -1;
      size_t best_at = 0;
      for (size_t i = 0; i + 1 < symbols.size(); ++i) {
        auto it = ranks_.find(pair_key(symbols[i], symbols[i + 1]));
        if (it != ranks_.end() &&
            (best_rank == -1 || it->second < best_rank)) {
          best_rank = it->second;
          best_at = i;
        }
      }
      if (best_rank == -1) break;
      symbols[best_at] += symbols[best_at + 1];
      symbols.erase(symbols.begin() + static_cast<long>(best_at) + 1);
    }
    out.insert(out.end(), symbols.begin(), symbols.end());
  }
  return out;
}

std::vector<std::string> BpeModel::piece_inventory() const {
  std::vector<std::string> pieces;
  pieces.emplace_back(kBoundary);
  for (int b = 0; b < 256; ++b) {
    pieces.emplace_back(1, static_cast<char>(b));
  }
  for (const Merge& m : merges_) pieces.push_back(m.left + m.right);
  return pieces;
}

BpeTokenizer::BpeTokenizer(BpeModel model)
    : model_(std::move(model)),
      vocab_(Vocab::from_pieces(model_.piece_inventory(),
                                /*byte_fallback=*/false)) {}

std::vector<TokenId> BpeTokenizer::encode(std::string_view text) const {
  std::vector<TokenId> ids;
  for (const std::string& piece : model_.encode_pieces(text)) {
    const auto id = vocab_.find_piece(piece);
    // Every byte is in the inventory, so pieces always resolve.
    PC_CHECK_MSG(id.has_value(), "BPE piece missing from vocab");
    ids.push_back(*id);
  }
  return ids;
}

std::string BpeTokenizer::decode(const std::vector<TokenId>& ids) const {
  std::string out;
  for (TokenId id : ids) {
    if (Vocab::is_special(id)) continue;
    out += vocab_.piece(id);
  }
  // Boundary markers become spaces; strip the leading one.
  std::string with_spaces = replace_all(out, BpeModel::kBoundary, " ");
  const std::string_view trimmed = trim(with_spaces);
  return std::string(trimmed);
}

}  // namespace pc
