#include "tokenizer/vocab.h"

#include <array>
#include <cstdio>

namespace pc {

namespace {

const char* kSpecialNames[Vocab::kNumSpecial] = {"<unk>", "<s>", "</s>",
                                                 "<pad>"};

// Compact built-in wordlist: common English words, domain words used by the
// examples, digits, and punctuation. Kept sorted roughly by frequency class
// for readability; order defines token ids, so do not reorder casually.
const char* kBasicEnglishWords[] = {
    // punctuation & symbols
    ".", ",", ":", ";", "!", "?", "'", "\"", "-", "(", ")", "[", "]", "{",
    "}", "/", "\\", "_", "=", "+", "*", "&", "%", "$", "#", "@", "<", ">",
    "|", "~", "^",
    // digits and small numbers
    "0", "1", "2", "3", "4", "5", "6", "7", "8", "9", "10", "11", "12", "20",
    "30", "50", "100", "1000", "five", "six", "seven", "eight", "nine",
    "ten",
    // function words
    "the", "a", "an", "of", "to", "and", "in", "is", "it", "you", "that",
    "he", "she", "was", "for", "on", "are", "as", "with", "his", "her",
    "they", "at", "be", "this", "have", "from", "or", "one", "had", "by",
    "word", "but", "not", "what", "all", "were", "we", "when", "your", "can",
    "said", "there", "use", "each", "which", "do", "how", "their", "if",
    "will", "up", "other", "about", "out", "many", "then", "them", "these",
    "so", "some", "would", "make", "like", "him", "into", "time", "has",
    "look", "two", "more", "write", "go", "see", "no", "way", "could",
    "people", "my", "than", "first", "been", "call", "who", "its", "now",
    "find", "long", "down", "day", "did", "get", "come", "made", "may",
    "part", "over", "new", "sound", "take", "only", "little", "work", "know",
    "place", "year", "live", "me", "back", "give", "most", "very", "after",
    "thing", "our", "just", "name", "good", "sentence", "man", "think",
    "say", "great", "where", "help", "through", "much", "before", "line",
    "right", "too", "mean", "old", "any", "same", "tell", "boy", "follow",
    "came", "want", "show", "also", "around", "form", "three", "small",
    "set", "put", "end", "does", "another", "well", "large", "must", "big",
    "even", "such", "because", "turn", "here", "why", "ask", "went", "men",
    "read", "need", "land", "different", "home", "us", "move", "try", "kind",
    "hand", "picture", "again", "change", "off", "play", "spell", "air",
    "away", "animal", "house", "point", "page", "letter", "mother", "answer",
    "found", "study", "still", "learn", "should", "world", "high", "every",
    "near", "add", "food", "between", "own", "below", "country", "plant",
    "last", "school", "father", "keep", "tree", "never", "start", "city",
    "water", "fire", "wind", "stone",
    "earth", "eye", "light", "thought", "head", "under", "story", "saw",
    "left", "few", "while", "along", "might", "close", "something", "seem",
    "next", "hard", "open", "example", "begin", "life", "always", "those",
    "both", "paper", "together", "got", "group", "often", "run", "important",
    "until", "children", "side", "feet", "car", "mile", "night", "walk",
    "white", "sea", "began", "grow", "took", "river", "four", "carry",
    "state", "once", "book", "hear", "stop", "without", "second", "later",
    "miss", "idea", "enough", "eat", "face", "watch", "far", "real",
    "almost", "let", "above", "girl", "sometimes", "mountain", "cut",
    "young", "talk", "soon", "list", "song", "being", "leave", "family",
    // domain words used by examples / workloads
    "system", "message", "user", "assistant", "document", "context",
    "question", "summary", "passage", "retrieve", "report", "meeting",
    "news", "article", "wiki", "code", "source", "file", "class", "function",
    "game", "player", "unit", "map", "plan", "trip", "travel", "days",
    "miami", "maui", "beach", "surf", "spot", "highlight", "visit", "hotel",
    "budget", "guide", "profile", "reader", "grade", "level", "proficiency",
    "history", "style", "assessment", "learning", "student", "teacher",
    "recommend", "suggest", "review", "score", "answer:", "question:",
    "key", "value", "fact", "capital", "city:", "topic", "section",
    "chapter", "law", "legal", "health", "medical", "record", "patient",
    "model", "token", "cache", "prompt", "module", "schema", "attention",
    "state", "memory", "gpu", "cpu", "latency", "server", "robot", "tool",
};

}  // namespace

Vocab Vocab::from_pieces(const std::vector<std::string>& pieces,
                         bool byte_fallback) {
  Vocab v;
  v.n_bytes_ = byte_fallback ? 256 : 0;
  v.id_to_piece_.reserve(kNumSpecial + v.n_bytes_ + pieces.size());
  for (const char* name : kSpecialNames) v.id_to_piece_.emplace_back(name);
  for (int b = 0; b < v.n_bytes_; ++b) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "<0x%02X>", b);
    v.id_to_piece_.emplace_back(buf);
  }
  for (const auto& p : pieces) {
    PC_CHECK_MSG(!p.empty(), "empty vocab piece");
    if (v.piece_to_id_.contains(p)) continue;  // dedup, keep first
    v.piece_to_id_.emplace(p, static_cast<TokenId>(v.id_to_piece_.size()));
    v.id_to_piece_.push_back(p);
  }
  return v;
}

const Vocab& Vocab::basic_english() {
  static const Vocab v = [] {
    std::vector<std::string> pieces;
    for (const char* w : kBasicEnglishWords) pieces.emplace_back(w);
    return from_pieces(pieces);
  }();
  return v;
}

}  // namespace pc
