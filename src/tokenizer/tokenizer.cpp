#include "tokenizer/tokenizer.h"

#include <cctype>

namespace pc {

namespace {

bool is_space(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
         c == '\v';
}

// Characters that form single-character pieces. ':' is word-internal when
// surrounded by word chars? No: keep it simple and uniform — every
// punctuation char is its own piece unless it is part of a word-with-colon
// piece present in the vocab, which pre_tokenize cannot know. We therefore
// treat a trailing ':' as part of the word only if directly attached
// (e.g. "answer:"), matching the built-in vocabulary's pieces.
bool is_punct(char c) {
  return std::ispunct(static_cast<unsigned char>(c)) != 0;
}

bool is_word_char(char c) {
  return !is_space(c) && !is_punct(c);
}

}  // namespace

std::vector<std::string> Tokenizer::pre_tokenize(std::string_view text) {
  std::vector<std::string> pieces;
  size_t i = 0;
  const size_t n = text.size();
  while (i < n) {
    if (is_space(text[i])) {
      ++i;
      continue;
    }
    if (is_word_char(text[i])) {
      size_t j = i;
      while (j < n && is_word_char(text[j])) ++j;
      // Absorb a single trailing ':' into the word ("answer:", "city:")
      // so key-like pieces stay single tokens.
      if (j < n && text[j] == ':') ++j;
      pieces.emplace_back(text.substr(i, j - i));
      i = j;
    } else {
      pieces.emplace_back(1, text[i]);
      ++i;
    }
  }
  return pieces;
}

std::vector<TokenId> Tokenizer::encode(std::string_view text) const {
  std::vector<TokenId> ids;
  for (const auto& piece : pre_tokenize(text)) {
    if (auto id = vocab_->find_piece(piece)) {
      ids.push_back(*id);
      continue;
    }
    // A word ending in ':' may only exist without the colon in the vocab.
    if (piece.size() > 1 && piece.back() == ':') {
      if (auto id = vocab_->find_piece(
              std::string_view(piece).substr(0, piece.size() - 1))) {
        ids.push_back(*id);
        if (auto colon = vocab_->find_piece(":")) {
          ids.push_back(*colon);
        } else if (vocab_->has_byte_fallback()) {
          ids.push_back(vocab_->byte_token(static_cast<uint8_t>(':')));
        } else {
          ids.push_back(Vocab::kUnk);
        }
        continue;
      }
    }
    if (vocab_->has_byte_fallback()) {
      for (unsigned char b : piece) ids.push_back(vocab_->byte_token(b));
    } else {
      ids.push_back(Vocab::kUnk);
    }
  }
  return ids;
}

std::string Tokenizer::decode(const std::vector<TokenId>& ids) const {
  std::string out;
  bool prev_was_byte = false;
  for (TokenId id : ids) {
    if (Vocab::is_special(id)) continue;
    if (vocab_->is_byte(id)) {
      // Byte runs represent one original piece: separate the run from a
      // preceding word with a space, but not byte-from-byte.
      if (!out.empty() && !prev_was_byte) out += ' ';
      out += static_cast<char>(vocab_->byte_value(id));
      prev_was_byte = true;
      continue;
    }
    const std::string& piece = vocab_->piece(id);
    const bool attach =
        piece.size() == 1 &&
        std::ispunct(static_cast<unsigned char>(piece[0])) != 0;
    if (!out.empty() && !attach) out += ' ';
    out += piece;
    prev_was_byte = false;
  }
  return out;
}

}  // namespace pc
