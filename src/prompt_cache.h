// Umbrella header: everything a downstream application needs.
//
//   #include "prompt_cache.h"
//
//   pc::Tokenizer tokenizer(pc::Vocab::basic_english());
//   pc::Model model = pc::Model::random(
//       pc::ModelConfig::llama_tiny(tokenizer.vocab().size()), 42);
//   pc::PromptCacheEngine engine(model, tokenizer);
//   engine.load_schema("<schema name=...>...");
//   pc::ServeResult r = engine.serve("<prompt schema=...>...");
//
// Individual headers remain includable for finer-grained dependencies.
#pragma once

#include "core/engine.h"        // PromptCacheEngine, EngineConfig, ServeResult
#include "core/prefix_cache.h"  // PrefixCacheEngine (the §2.2 baseline)
#include "core/serialize.h"     // module persistence records
#include "core/session.h"       // ChatSession
#include "eval/metrics.h"       // F1 / Rouge-L / accuracy scorers
#include "eval/retriever.h"     // BM25 index for RAG-style module selection
#include "eval/workload.h"      // synthetic LongBench-like workloads
#include "model/induction.h"    // hand-constructed retrieval model
#include "model/model.h"        // transformer engine
#include "pml/prompt.h"         // prompt parsing + binding
#include "pml/prompt_builder.h" // programmatic prompt construction
#include "pml/prompt_program.h" // prompt-program -> PML compiler
#include "pml/schema.h"         // schema parsing + layout
#include "pml/writer.h"         // canonical PML serialization
#include "sys/device_model.h"   // analytic hardware profiles
#include "sys/gpu_sim.h"        // discrete-event GPU pipeline simulation
#include "tokenizer/bpe.h"      // BPE trainer/tokenizer
#include "tokenizer/tokenizer.h"
