// Minimal leveled logger. Single translation-unit state, thread-safe writes.
//
// Lines carry the source location and a monotonic timestamp on the same
// epoch clock as trace spans (src/obs/clock.h), so log output and an
// exported trace line up on one time axis:
//
//   [   1.042315s] [INFO ] server.cpp:97] worker pool ready
//
// The initial level comes from the PC_LOG_LEVEL environment variable
// ("debug" | "info" | "warn" | "error", or the numeric 0-3), defaulting to
// warn; set_log_level() overrides at runtime.
#pragma once

#include <iostream>
#include <mutex>
#include <sstream>
#include <string>

namespace pc {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

// Global log level; messages below it are discarded.
LogLevel log_level();
void set_log_level(LogLevel level);

namespace detail {

void write_log_line(LogLevel level, const char* file, int line,
                    const std::string& message);

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogMessage() { write_log_line(level_, file_, line_, os_.str()); }
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream os_;
};

}  // namespace detail
}  // namespace pc

#define PC_LOG(level)                                  \
  if (static_cast<int>(::pc::log_level()) <=           \
      static_cast<int>(::pc::LogLevel::level))         \
  ::pc::detail::LogMessage(::pc::LogLevel::level, __FILE__, __LINE__)

#define PC_LOG_DEBUG PC_LOG(kDebug)
#define PC_LOG_INFO PC_LOG(kInfo)
#define PC_LOG_WARN PC_LOG(kWarn)
#define PC_LOG_ERROR PC_LOG(kError)
