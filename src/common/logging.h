// Minimal leveled logger. Single translation-unit state, thread-safe writes.
#pragma once

#include <iostream>
#include <mutex>
#include <sstream>
#include <string>

namespace pc {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

// Global log level; messages below it are discarded.
LogLevel log_level();
void set_log_level(LogLevel level);

namespace detail {

void write_log_line(LogLevel level, const std::string& line);

class LogMessage {
 public:
  LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { write_log_line(level_, os_.str()); }
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace detail
}  // namespace pc

#define PC_LOG(level)                                  \
  if (static_cast<int>(::pc::log_level()) <=           \
      static_cast<int>(::pc::LogLevel::level))         \
  ::pc::detail::LogMessage(::pc::LogLevel::level)

#define PC_LOG_DEBUG PC_LOG(kDebug)
#define PC_LOG_INFO PC_LOG(kInfo)
#define PC_LOG_WARN PC_LOG(kWarn)
#define PC_LOG_ERROR PC_LOG(kError)
