#include "common/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "obs/trace.h"

namespace pc {

ThreadPool::ThreadPool(size_t n_threads) {
  if (n_threads == 0) {
    n_threads = std::thread::hardware_concurrency();
    if (n_threads == 0) n_threads = 1;
    // PC_THREADS caps default-sized pools (including the global one). The
    // serving stack runs one engine per worker thread; kernel-level
    // parallel_for fanning out to all cores inside each of N workers would
    // oversubscribe the machine, so bench_server pins PC_THREADS=1 while it
    // sweeps worker counts. Values < 1 and non-numeric strings are ignored.
    if (const char* cap_env = std::getenv("PC_THREADS")) {
      const long cap = std::atol(cap_env);
      if (cap > 0) {
        n_threads = std::min(n_threads, static_cast<size_t>(cap));
      }
    }
  }
  // The calling thread participates in parallel_for, so spawn one fewer.
  for (size_t i = 1; i < n_threads; ++i) {
    workers_.emplace_back([this, i] {
      // Label the lane in exported traces so parallel_for fan-out is
      // attributable to a specific pool thread.
      obs::set_thread_name("pool" + std::to_string(i));
      worker_loop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

ThreadPool::Job* ThreadPool::first_claimable_locked() {
  size_t keep = 0;
  Job* found = nullptr;
  for (size_t i = 0; i < jobs_.size(); ++i) {
    Job* j = jobs_[i];
    if (j->next >= j->n_chunks) continue;  // exhausted: drop from the FIFO
    jobs_[keep++] = j;
    if (found == nullptr) found = j;
  }
  jobs_.resize(keep);
  return found;
}

void ThreadPool::run_chunk(Job& job, size_t c) {
  const size_t begin = c * job.chunk;
  const size_t end = std::min(job.n, begin + job.chunk);
  std::exception_ptr err = nullptr;
  try {
    if (begin < end) {
      PC_SPAN("pool_chunk", {"begin", static_cast<int64_t>(begin)},
              {"n", static_cast<int64_t>(end - begin)});
      (*job.fn)(begin, end);
    }
  } catch (...) {
    err = std::current_exception();
  }
  {
    std::lock_guard<std::mutex> lock(job.done_mutex);
    if (err && !job.error) job.error = err;
    if (--job.unfinished == 0) job.done_cv.notify_all();
  }
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    cv_.wait(lock, [this] {
      return stop_ || first_claimable_locked() != nullptr;
    });
    Job* job = first_claimable_locked();
    if (job == nullptr) {
      if (stop_) return;
      continue;
    }
    const size_t c = job->next++;  // claim under mutex_: keeps `job` alive
    lock.unlock();
    run_chunk(*job, c);
    lock.lock();
  }
}

void ThreadPool::parallel_for(size_t n,
                              const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  const size_t n_chunks = std::min(size(), n);
  if (n_chunks <= 1) {
    fn(0, n);
    return;
  }

  Job job;
  job.fn = &fn;
  job.n = n;
  job.chunk = (n + n_chunks - 1) / n_chunks;
  job.n_chunks = n_chunks;
  job.unfinished = n_chunks;

  {
    std::lock_guard<std::mutex> lock(mutex_);
    jobs_.push_back(&job);
  }
  cv_.notify_all();

  // The caller claims chunks of its own job until none remain (other
  // workers may be claiming concurrently), then waits for stragglers.
  for (;;) {
    size_t c;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (job.next >= job.n_chunks) break;
      c = job.next++;
    }
    run_chunk(job, c);
  }
  {
    std::unique_lock<std::mutex> dlock(job.done_mutex);
    job.done_cv.wait(dlock, [&job] { return job.unfinished == 0; });
  }
  {
    // The job may still sit (exhausted) in the FIFO; remove it before the
    // stack frame dies. Workers never dereference exhausted FIFO entries.
    std::lock_guard<std::mutex> lock(mutex_);
    jobs_.erase(std::remove(jobs_.begin(), jobs_.end(), &job), jobs_.end());
  }
  if (job.error) std::rethrow_exception(job.error);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace pc
