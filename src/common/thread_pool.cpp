#include "common/thread_pool.h"

#include <atomic>
#include <exception>

namespace pc {

ThreadPool::ThreadPool(size_t n_threads) {
  if (n_threads == 0) {
    n_threads = std::thread::hardware_concurrency();
    if (n_threads == 0) n_threads = 1;
  }
  // The calling thread participates in parallel_for, so spawn one fewer.
  for (size_t i = 1; i < n_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(size_t n,
                              const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  const size_t n_chunks = std::min(size(), n);
  if (n_chunks <= 1) {
    fn(0, n);
    return;
  }

  std::atomic<size_t> remaining{n_chunks - 1};
  std::exception_ptr first_error = nullptr;
  std::mutex error_mutex;
  std::condition_variable done_cv;
  std::mutex done_mutex;

  const size_t chunk = (n + n_chunks - 1) / n_chunks;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (size_t c = 1; c < n_chunks; ++c) {
      const size_t begin = c * chunk;
      const size_t end = std::min(n, begin + chunk);
      tasks_.push([&, begin, end] {
        try {
          if (begin < end) fn(begin, end);
        } catch (...) {
          std::lock_guard<std::mutex> elock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        if (remaining.fetch_sub(1) == 1) {
          std::lock_guard<std::mutex> dlock(done_mutex);
          done_cv.notify_all();
        }
      });
    }
  }
  cv_.notify_all();

  // The caller runs the first chunk.
  try {
    fn(0, std::min(n, chunk));
  } catch (...) {
    std::lock_guard<std::mutex> elock(error_mutex);
    if (!first_error) first_error = std::current_exception();
  }

  std::unique_lock<std::mutex> dlock(done_mutex);
  done_cv.wait(dlock, [&] { return remaining.load() == 0; });
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace pc
