// A small fixed-size thread pool with a parallel-for helper.
//
// The tensor kernels use parallel_for to split row ranges across workers.
// On single-core hosts the pool degrades gracefully: with one worker the
// loop body runs inline on the calling thread with no queuing overhead.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace pc {

class ThreadPool {
 public:
  // n_threads == 0 selects std::thread::hardware_concurrency().
  explicit ThreadPool(size_t n_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t size() const { return workers_.size() + 1; }  // including caller

  // Runs fn(begin, end) over [0, n) split into roughly equal chunks, one per
  // worker plus the calling thread. Blocks until all chunks complete.
  // Exceptions thrown by fn propagate to the caller (first one wins).
  void parallel_for(size_t n, const std::function<void(size_t, size_t)>& fn);

  // Process-wide default pool (sized to hardware concurrency).
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace pc
