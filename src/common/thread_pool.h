// A small fixed-size thread pool with a parallel-for helper.
//
// The tensor kernels use parallel_for to split row ranges across workers.
// On single-core hosts the pool degrades gracefully: with one worker the
// loop body runs inline on the calling thread with no queuing overhead.
//
// parallel_for publishes ONE stack-allocated job descriptor per call;
// workers claim chunk indices from it under the pool mutex. Unlike the
// obvious queue-of-std::function design, this performs zero heap
// allocations per call and per chunk — matmul-sized calls arrive thousands
// of times per forward pass, so the allocator traffic was measurable.
// Multiple threads may call parallel_for concurrently (jobs form a small
// FIFO of descriptors) and calls may nest: a blocked caller keeps claiming
// chunks of its own job, never idling while work remains.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pc {

class ThreadPool {
 public:
  // n_threads == 0 selects std::thread::hardware_concurrency(), capped by
  // the PC_THREADS environment variable when set (serving stacks use it to
  // keep kernel parallelism × worker count within the machine).
  explicit ThreadPool(size_t n_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t size() const { return workers_.size() + 1; }  // including caller

  // Runs fn(begin, end) over [0, n) split into roughly equal chunks, one per
  // worker plus the calling thread. Blocks until all chunks complete.
  // Exceptions thrown by fn propagate to the caller (first one wins).
  void parallel_for(size_t n, const std::function<void(size_t, size_t)>& fn);

  // Process-wide default pool (sized to hardware concurrency).
  static ThreadPool& global();

 private:
  // One parallel_for invocation. Lives on the caller's stack; remains valid
  // until every claimed chunk has finished (the caller blocks on done_cv
  // before returning). Chunk claiming happens under the pool mutex, so a
  // worker never touches a job it has not claimed a live chunk of.
  struct Job {
    const std::function<void(size_t, size_t)>* fn = nullptr;
    size_t n = 0;         // total range
    size_t chunk = 0;     // elements per chunk
    size_t n_chunks = 0;  // total chunks
    size_t next = 0;      // next unclaimed chunk (guarded by pool mutex_)

    std::mutex done_mutex;
    std::condition_variable done_cv;
    size_t unfinished = 0;  // chunks not yet completed (guarded by done_mutex)
    std::exception_ptr error;  // first exception (guarded by done_mutex)
  };

  void worker_loop();
  // Scans the job FIFO for a job with unclaimed chunks, dropping exhausted
  // entries. Caller must hold mutex_.
  Job* first_claimable_locked();
  // Runs chunk `c` of `job` and performs completion accounting.
  static void run_chunk(Job& job, size_t c);

  std::vector<std::thread> workers_;
  std::vector<Job*> jobs_;  // FIFO of live jobs (guarded by mutex_)
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace pc
