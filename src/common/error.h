// Error handling primitives for the Prompt Cache library.
//
// Following the C++ Core Guidelines (I.10, E.2) we signal failures that the
// caller cannot locally prevent with exceptions. Programming-contract
// violations (precondition breaks) use PC_CHECK, which throws
// pc::ContractViolation carrying the failing expression and location so test
// suites can assert on failure modes precisely.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace pc {

// Base class for all errors thrown by the library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

// A violated precondition / invariant inside the library (bug in caller or
// in the library itself).
class ContractViolation : public Error {
 public:
  explicit ContractViolation(const std::string& what) : Error(what) {}
};

// Malformed PML input (lexing, parsing, or schema/prompt validation).
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

// A prompt referenced a schema / module / parameter that does not exist or
// violated the schema contract (e.g. argument longer than parameter length).
class SchemaError : public Error {
 public:
  explicit SchemaError(const std::string& what) : Error(what) {}
};

// Resource exhaustion in the module cache (e.g. module larger than the
// configured tier capacity so it can never be admitted).
class CacheError : public Error {
 public:
  explicit CacheError(const std::string& what) : Error(what) {}
};

// Malformed runtime configuration (environment variables such as
// PC_FAULTS, or programmatic config structs validated at startup). Raised
// before any request is served so a typo'd chaos spec cannot silently run
// a clean experiment.
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error(what) {}
};

// A failure that is expected to succeed if retried: an injected fault, a
// lost host-link transfer, a single-flight encode whose leader died. The
// server retries these with backoff before degrading to full prefill.
class TransientError : public Error {
 public:
  explicit TransientError(const std::string& what) : Error(what) {}
};

// A request abandoned on purpose: its deadline passed or its cancellation
// token fired mid-serve. Not retryable — the work is no longer wanted.
class CancelledError : public Error {
 public:
  explicit CancelledError(const std::string& what) : Error(what) {}
};

namespace detail {

[[noreturn]] inline void raise_contract_violation(const char* expr,
                                                  const char* file, int line,
                                                  const std::string& msg) {
  std::ostringstream os;
  os << "contract violation: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw ContractViolation(os.str());
}

}  // namespace detail

}  // namespace pc

// Precondition / invariant check. Always enabled (cheap relative to the
// numeric work this library does); throws pc::ContractViolation on failure.
#define PC_CHECK(expr)                                                       \
  do {                                                                       \
    if (!(expr)) {                                                           \
      ::pc::detail::raise_contract_violation(#expr, __FILE__, __LINE__, ""); \
    }                                                                        \
  } while (0)

// Like PC_CHECK but with a streamed message, e.g.
//   PC_CHECK_MSG(a == b, "shape mismatch: " << a << " vs " << b);
#define PC_CHECK_MSG(expr, stream_expr)                                   \
  do {                                                                    \
    if (!(expr)) {                                                        \
      std::ostringstream pc_check_os_;                                    \
      pc_check_os_ << stream_expr;                                        \
      ::pc::detail::raise_contract_violation(#expr, __FILE__, __LINE__,   \
                                             pc_check_os_.str());         \
    }                                                                     \
  } while (0)
