#include "common/string_util.h"

#include <cctype>
#include <cstdio>

namespace pc {

std::vector<std::string> split(std::string_view text, char delim) {
  std::vector<std::string> out;
  size_t begin = 0;
  while (begin < text.size()) {
    while (begin < text.size() && text[begin] == delim) ++begin;
    size_t end = begin;
    while (end < text.size() && text[end] != delim) ++end;
    if (end > begin) out.emplace_back(text.substr(begin, end - begin));
    begin = end;
  }
  return out;
}

namespace {
bool is_space(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
         c == '\v';
}
}  // namespace

std::vector<std::string> split_whitespace(std::string_view text) {
  std::vector<std::string> out;
  size_t begin = 0;
  while (begin < text.size()) {
    while (begin < text.size() && is_space(text[begin])) ++begin;
    size_t end = begin;
    while (end < text.size() && !is_space(text[end])) ++end;
    if (end > begin) out.emplace_back(text.substr(begin, end - begin));
    begin = end;
  }
  return out;
}

std::string_view trim(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && is_space(text[begin])) ++begin;
  while (end > begin && is_space(text[end - 1])) --end;
  return text.substr(begin, end - begin);
}

std::string join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string replace_all(std::string_view text, std::string_view from,
                        std::string_view to) {
  if (from.empty()) return std::string(text);
  std::string out;
  size_t pos = 0;
  while (pos < text.size()) {
    const size_t hit = text.find(from, pos);
    if (hit == std::string_view::npos) {
      out += text.substr(pos);
      break;
    }
    out += text.substr(pos, hit - pos);
    out += to;
    pos = hit + from.size();
  }
  return out;
}

std::string format_bytes(double bytes) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  int unit = 0;
  while (bytes >= 1024.0 && unit < 4) {
    bytes /= 1024.0;
    ++unit;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f %s", bytes, kUnits[unit]);
  return buf;
}

}  // namespace pc
