// Log-bucketed latency histogram with percentile queries.
//
// The engine records per-request TTFT into these so long-running serving
// processes can report p50/p90/p99 without retaining per-request samples.
// Buckets grow geometrically from a configurable floor; the default layout
// (factor 2^(1/4) ≈ 19% per bucket from 1 µs) spans ~4.6 hours with <10%
// quantile error at constant memory. The observability registry
// (src/obs/metrics.h) wraps this class for its histogram instrument, so
// every latency metric in the process shares one quantile semantics.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <string>

#include "common/error.h"

namespace pc {

class LatencyHistogram {
 public:
  static constexpr int kBuckets = 136;  // 1e-6 s * 2^(135/4) ≈ 1.5e4 s

  // Default layout: 1 µs floor, 4 buckets per doubling.
  LatencyHistogram() = default;

  // Custom layout: `min_seconds` floor (bucket 0 holds everything at or
  // below it), `buckets_per_doubling` geometric resolution. The bucket
  // COUNT is fixed (kBuckets); the layout controls floor and growth rate.
  LatencyHistogram(double min_seconds, int buckets_per_doubling)
      : min_seconds_(min_seconds),
        per_doubling_(buckets_per_doubling) {
    PC_CHECK_MSG(min_seconds > 0.0, "histogram floor must be positive");
    PC_CHECK_MSG(buckets_per_doubling >= 1,
                 "histogram needs at least one bucket per doubling");
  }

  void record_seconds(double seconds) {
    ++count_;
    sum_seconds_ += seconds;
    max_seconds_ = std::max(max_seconds_, seconds);
    min_seconds_seen_ = std::min(min_seconds_seen_, seconds);
    ++buckets_[static_cast<size_t>(bucket_for(seconds))];
  }

  void record_ms(double ms) { record_seconds(ms / 1e3); }

  uint64_t count() const { return count_; }
  double sum_seconds() const { return sum_seconds_; }
  double mean_seconds() const {
    return count_ == 0 ? 0.0 : sum_seconds_ / static_cast<double>(count_);
  }
  double max_seconds() const { return count_ == 0 ? 0.0 : max_seconds_; }
  double min_seconds() const { return count_ == 0 ? 0.0 : min_seconds_seen_; }

  // The bucket layout (floor, buckets per doubling). Two histograms with
  // equal layouts merge exactly.
  double bucket_floor_seconds() const { return min_seconds_; }
  int buckets_per_doubling() const { return per_doubling_; }
  bool same_layout(const LatencyHistogram& other) const {
    return min_seconds_ == other.min_seconds_ &&
           per_doubling_ == other.per_doubling_;
  }

  // Quantile in [0, 1]; returns the upper edge of the bucket containing it.
  // q == 0 returns the exact observed minimum: rank would be ceil(0) == 0,
  // so the bucket walk below would report the first occupied bucket's upper
  // edge instead of the minimum.
  double quantile_seconds(double q) const {
    PC_CHECK_MSG(q >= 0.0 && q <= 1.0, "quantile out of range");
    if (count_ == 0) return 0.0;
    if (q == 0.0) return min_seconds();
    const uint64_t rank = static_cast<uint64_t>(
        std::ceil(q * static_cast<double>(count_)));
    uint64_t seen = 0;
    for (int b = 0; b < kBuckets; ++b) {
      seen += buckets_[static_cast<size_t>(b)];
      if (seen >= rank && seen > 0) return bucket_upper_edge(b);
    }
    return max_seconds_;
  }

  double p50_ms() const { return quantile_seconds(0.50) * 1e3; }
  double p90_ms() const { return quantile_seconds(0.90) * 1e3; }
  double p99_ms() const { return quantile_seconds(0.99) * 1e3; }

  // Clears the samples; the bucket layout is preserved.
  void reset() {
    buckets_.fill(0);
    count_ = 0;
    sum_seconds_ = 0.0;
    max_seconds_ = 0.0;
    min_seconds_seen_ = 1e300;
  }

  // Folds another histogram into this one. Identical layouts merge
  // bucket-for-bucket (exact — serving fleets keep one histogram per worker
  // engine, recording stays unsynchronized and lock-free, and the stats
  // path merges them into fleet percentiles). Differing layouts REBUCKET:
  // each of the other's occupied buckets is folded in at its upper edge, so
  // counts/sums/extrema stay exact and quantiles keep this histogram's
  // bucket-width error bound instead of silently misaligning bins.
  void merge(const LatencyHistogram& other) {
    if (other.count_ == 0) return;
    if (same_layout(other)) {
      for (int b = 0; b < kBuckets; ++b) {
        buckets_[static_cast<size_t>(b)] +=
            other.buckets_[static_cast<size_t>(b)];
      }
    } else {
      for (int b = 0; b < kBuckets; ++b) {
        const uint64_t n = other.buckets_[static_cast<size_t>(b)];
        if (n == 0) continue;
        buckets_[static_cast<size_t>(bucket_for(other.bucket_upper_edge(b)))] +=
            n;
      }
    }
    count_ += other.count_;
    sum_seconds_ += other.sum_seconds_;
    max_seconds_ = std::max(max_seconds_, other.max_seconds_);
    min_seconds_seen_ = std::min(min_seconds_seen_, other.min_seconds_seen_);
  }

  // One-line summary for logs: "n=42 mean=1.2ms p50=1.1ms p99=3.0ms".
  std::string summary() const {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "n=%llu mean=%.3fms p50=%.3fms p90=%.3fms p99=%.3fms "
                  "max=%.3fms",
                  static_cast<unsigned long long>(count_),
                  mean_seconds() * 1e3, p50_ms(), p90_ms(), p99_ms(),
                  max_seconds() * 1e3);
    return buf;
  }

 private:
  int bucket_for(double seconds) const {
    if (seconds <= min_seconds_) return 0;
    const int b = static_cast<int>(std::floor(
                      static_cast<double>(per_doubling_) *
                      std::log2(seconds / min_seconds_))) +
                  1;
    return std::min(std::max(b, 0), kBuckets - 1);
  }

  double bucket_upper_edge(int bucket) const {
    if (bucket <= 0) return min_seconds_;
    return min_seconds_ * std::pow(2.0, static_cast<double>(bucket) /
                                            static_cast<double>(per_doubling_));
  }

  double min_seconds_ = 1e-6;  // bucket-0 upper edge (layout floor)
  int per_doubling_ = 4;       // buckets per doubling of latency
  std::array<uint64_t, kBuckets> buckets_ = {};
  uint64_t count_ = 0;
  double sum_seconds_ = 0.0;
  double max_seconds_ = 0.0;
  double min_seconds_seen_ = 1e300;
};

}  // namespace pc
