// Deterministic pseudo-random number generation.
//
// All randomness in the library (weight init, workload synthesis) flows
// through Rng so that every experiment is reproducible from a single seed.
// The generator is xoshiro256** seeded via SplitMix64, which is fast,
// well-distributed, and identical across platforms (unlike std::mt19937
// distributions, whose outputs are not specified portably).
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/error.h"

namespace pc {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(uint64_t seed) {
    // SplitMix64 expansion of the seed into the 256-bit state.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
    has_cached_gauss_ = false;
  }

  // Uniform 64-bit value.
  uint64_t next_u64() {
    const uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  // Uniform float in [lo, hi).
  float uniform(float lo, float hi) {
    return lo + static_cast<float>(next_double()) * (hi - lo);
  }

  // Uniform integer in [0, n). Uses rejection to avoid modulo bias.
  uint64_t next_below(uint64_t n) {
    PC_CHECK(n > 0);
    const uint64_t threshold = (0 - n) % n;  // 2^64 mod n
    uint64_t r;
    do {
      r = next_u64();
    } while (r < threshold);
    return r % n;
  }

  // Uniform integer in [lo, hi] inclusive.
  int64_t uniform_int(int64_t lo, int64_t hi) {
    PC_CHECK(lo <= hi);
    return lo + static_cast<int64_t>(
                    next_below(static_cast<uint64_t>(hi - lo) + 1));
  }

  // Standard normal via Box-Muller (cached second value).
  double next_gauss() {
    if (has_cached_gauss_) {
      has_cached_gauss_ = false;
      return cached_gauss_;
    }
    double u1, u2;
    do {
      u1 = next_double();
    } while (u1 <= 1e-300);
    u2 = next_double();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * 3.14159265358979323846 * u2;
    cached_gauss_ = r * std::sin(theta);
    has_cached_gauss_ = true;
    return r * std::cos(theta);
  }

  float gauss(float mean, float stddev) {
    return mean + stddev * static_cast<float>(next_gauss());
  }

  // True with probability p.
  bool bernoulli(double p) { return next_double() < p; }

  // In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      const size_t j = static_cast<size_t>(next_below(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  // Pick a uniformly random element (by reference).
  template <typename T>
  const T& pick(const std::vector<T>& v) {
    PC_CHECK(!v.empty());
    return v[static_cast<size_t>(next_below(v.size()))];
  }

  // Derive an independent child generator (for per-subsystem streams).
  Rng fork() { return Rng(next_u64()); }

 private:
  static uint64_t rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4] = {};
  bool has_cached_gauss_ = false;
  double cached_gauss_ = 0.0;
};

}  // namespace pc
