// Cooperative cancellation for in-flight requests.
//
// A CancellationToken is a cheap, copyable handle shared between the code
// that decides a request's fate (the server's deadline bookkeeping, a
// client hanging up) and the code doing the work (the engine's encode loop,
// the model's decode loop). The worker polls expired() at natural yield
// points — per decoded token, per module encode — and unwinds with
// pc::CancelledError when it returns true, so a past-deadline request stops
// burning compute instead of running to completion.
//
// A default-constructed token has no state and never expires; checking it
// is a null-pointer test, so the non-deadline serving path stays free.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>

namespace pc {

class CancellationToken {
 public:
  CancellationToken() = default;

  // A token that expires when `deadline` passes (steady clock).
  static CancellationToken with_deadline(
      std::chrono::steady_clock::time_point deadline) {
    CancellationToken t;
    t.state_ = std::make_shared<State>();
    t.state_->has_deadline = true;
    t.state_->deadline = deadline;
    return t;
  }

  // A token that expires `ms` from now.
  static CancellationToken after_ms(double ms) {
    return with_deadline(std::chrono::steady_clock::now() +
                         std::chrono::duration_cast<
                             std::chrono::steady_clock::duration>(
                             std::chrono::duration<double, std::milli>(ms)));
  }

  // A token that only expires when cancel() is called.
  static CancellationToken manual() {
    CancellationToken t;
    t.state_ = std::make_shared<State>();
    return t;
  }

  // Marks the token expired (idempotent; no-op on a stateless token).
  void cancel() const {
    if (state_ != nullptr) {
      state_->cancelled.store(true, std::memory_order_relaxed);
    }
  }

  // True iff this token can ever expire (i.e. it carries state).
  bool can_expire() const { return state_ != nullptr; }

  // Polls the token. Once true, stays true (a passed deadline latches).
  bool expired() const {
    if (state_ == nullptr) return false;
    if (state_->cancelled.load(std::memory_order_relaxed)) return true;
    if (state_->has_deadline &&
        std::chrono::steady_clock::now() >= state_->deadline) {
      state_->cancelled.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

 private:
  struct State {
    std::atomic<bool> cancelled{false};
    bool has_deadline = false;
    std::chrono::steady_clock::time_point deadline;
  };
  std::shared_ptr<State> state_;
};

}  // namespace pc
