// Wall-clock timing utilities used by the benchmark harnesses.
#pragma once

#include <chrono>
#include <cstdint>

namespace pc {

// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double elapsed_ms() const { return elapsed_seconds() * 1e3; }
  double elapsed_us() const { return elapsed_seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace pc
