// Small string helpers shared across the tokenizer, PML parser, and eval
// harness. All functions are pure.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace pc {

// Splits on any run of `delim` characters; no empty pieces are produced.
std::vector<std::string> split(std::string_view text, char delim);

// Splits on whitespace runs (space, tab, newline, CR); no empty pieces.
std::vector<std::string> split_whitespace(std::string_view text);

// Removes leading and trailing whitespace.
std::string_view trim(std::string_view text);

// Joins pieces with `sep` between them.
std::string join(const std::vector<std::string>& pieces,
                 std::string_view sep);

bool starts_with(std::string_view text, std::string_view prefix);
bool ends_with(std::string_view text, std::string_view suffix);

// ASCII lowercase copy.
std::string to_lower(std::string_view text);

// Replaces every occurrence of `from` (non-empty) with `to`.
std::string replace_all(std::string_view text, std::string_view from,
                        std::string_view to);

// Formats a byte count as a human-readable string ("1.50 GiB").
std::string format_bytes(double bytes);

}  // namespace pc
