#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/clock.h"

namespace pc {

namespace {

// Initial level from PC_LOG_LEVEL: a name ("debug", "info", "warn",
// "error", any case-insensitive prefix works via the first letter) or the
// numeric 0-3. Unset or unparsable falls back to warn.
int level_from_env() {
  const char* v = std::getenv("PC_LOG_LEVEL");
  if (v == nullptr || *v == '\0') return static_cast<int>(LogLevel::kWarn);
  switch (v[0]) {
    case 'd':
    case 'D':
      return static_cast<int>(LogLevel::kDebug);
    case 'i':
    case 'I':
      return static_cast<int>(LogLevel::kInfo);
    case 'w':
    case 'W':
      return static_cast<int>(LogLevel::kWarn);
    case 'e':
    case 'E':
      return static_cast<int>(LogLevel::kError);
    default:
      break;
  }
  if (v[0] >= '0' && v[0] <= '3' && v[1] == '\0') return v[0] - '0';
  return static_cast<int>(LogLevel::kWarn);
}

std::atomic<int> g_level{level_from_env()};
std::mutex g_mutex;

const char* basename_of(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

LogLevel log_level() { return static_cast<LogLevel>(g_level.load()); }

void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level)); }

namespace detail {

void write_log_line(LogLevel level, const char* file, int line,
                    const std::string& message) {
  static const char* kNames[] = {"DEBUG", "INFO ", "WARN ", "ERROR"};
  // Same monotonic epoch as trace spans: log lines and exported spans
  // share one time axis.
  char prefix[96];
  std::snprintf(prefix, sizeof(prefix), "[%11.6fs] [%s] %s:%d] ",
                obs::now_seconds(), kNames[static_cast<int>(level)],
                basename_of(file), line);
  std::lock_guard<std::mutex> lock(g_mutex);
  std::cerr << prefix << message << "\n";
}

}  // namespace detail
}  // namespace pc
