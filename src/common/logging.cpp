#include "common/logging.h"

#include <atomic>

namespace pc {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_mutex;
}  // namespace

LogLevel log_level() { return static_cast<LogLevel>(g_level.load()); }

void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level)); }

namespace detail {

void write_log_line(LogLevel level, const std::string& line) {
  static const char* kNames[] = {"DEBUG", "INFO", "WARN", "ERROR"};
  std::lock_guard<std::mutex> lock(g_mutex);
  std::cerr << "[" << kNames[static_cast<int>(level)] << "] " << line << "\n";
}

}  // namespace detail
}  // namespace pc
