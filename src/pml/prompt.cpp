#include "pml/prompt.h"

#include <algorithm>

#include "common/string_util.h"
#include "pml/xml.h"

namespace pc::pml {

namespace {

PromptItem make_text_item(std::string text) {
  PromptItem item;
  item.text = std::move(text);
  return item;
}

std::vector<PromptItem> items_from_children(const XmlNode& element) {
  std::vector<PromptItem> items;
  for (const XmlNode& child : element.children) {
    if (child.is_text()) {
      const auto trimmed = trim(child.text);
      if (!trimmed.empty()) items.push_back(make_text_item(std::string(trimmed)));
      continue;
    }
    auto import = std::make_unique<PromptImport>();
    import->module_name = child.tag;
    import->line = child.line;
    for (const XmlAttr& attr : child.attrs) {
      import->args.emplace_back(attr.name, attr.value);
    }
    import->children = items_from_children(child);
    PromptItem item;
    item.import = std::move(import);
    items.push_back(std::move(item));
  }
  return items;
}

class Binder {
 public:
  Binder(const Schema& schema, const PromptAst& prompt,
         const TextTokenizer& tokenizer)
      : schema_(schema), prompt_(prompt), tokenizer_(tokenizer) {}

  PromptBinding run() {
    out_.schema = &schema_;
    included_.assign(schema_.modules.size(), false);
    union_used_.assign(schema_.unions.size(), -1);

    if (prompt_.schema_name != schema_.name) {
      throw SchemaError("prompt declares schema '" + prompt_.schema_name +
                        "' but was bound against '" + schema_.name + "'");
    }

    // Anonymous modules are always included; free text never collides with
    // them because the cursor starts past their extent.
    for (int mi : schema_.anonymous_modules) {
      include(mi);
      cursor_ = std::max(cursor_, schema_.module(mi).end_pos);
    }

    walk_items(prompt_.items, /*parent=*/-1);

    finalize_next_pos();
    collect_warnings();
    build_baseline();
    return std::move(out_);
  }

 private:
  void include(int mi) {
    if (included_[static_cast<size_t>(mi)]) {
      throw SchemaError("module '" + schema_.module(mi).name +
                        "' imported more than once");
    }
    const ModuleNode& m = schema_.module(mi);
    if (m.union_id >= 0) {
      int& used = union_used_[static_cast<size_t>(m.union_id)];
      if (used != -1) {
        throw SchemaError("modules '" + schema_.module(used).name + "' and '" +
                          m.name +
                          "' belong to the same union and are exclusive");
      }
      used = mi;
    }
    included_[static_cast<size_t>(mi)] = true;
    out_.modules.push_back(mi);
  }

  void walk_items(const std::vector<PromptItem>& items, int parent) {
    for (const PromptItem& item : items) {
      if (item.is_text()) {
        bind_text(item.text);
      } else {
        bind_import(*item.import, parent);
      }
    }
  }

  void bind_text(const std::string& text) {
    BoundText t;
    t.tokens = tokenizer_.encode(text);
    if (t.tokens.empty()) return;
    t.start_pos = cursor_;
    cursor_ += static_cast<int>(t.tokens.size());
    out_.texts.push_back(std::move(t));
  }

  void bind_import(const PromptImport& import, int parent) {
    const int mi = schema_.find_module(import.module_name);
    if (mi == -1) {
      throw SchemaError("prompt imports unknown module '" +
                        import.module_name + "' (line " +
                        std::to_string(import.line) + ")");
    }
    const ModuleNode& m = schema_.module(mi);
    if (m.anonymous) {
      throw SchemaError("anonymous modules cannot be imported explicitly");
    }
    if (m.parent != parent) {
      const std::string where =
          parent == -1 ? "at the prompt top level"
                       : "inside module '" + schema_.module(parent).name + "'";
      throw SchemaError("module '" + m.name + "' cannot be imported " + where +
                        ": schema nests it " +
                        (m.parent == -1
                             ? "at the top level"
                             : "inside '" + schema_.module(m.parent).name +
                                   "'"));
    }
    include(mi);

    for (const auto& [pname, value] : import.args) {
      const int pi = m.param_index(pname);
      if (pi == -1) {
        throw SchemaError("module '" + m.name + "' has no parameter '" +
                          pname + "'");
      }
      const ParamDef& p = m.params[static_cast<size_t>(pi)];
      BoundArg arg;
      arg.module_index = mi;
      arg.param_index = pi;
      arg.tokens = tokenizer_.encode(value);
      if (static_cast<int>(arg.tokens.size()) > p.max_len) {
        throw SchemaError("argument for parameter '" + pname + "' of '" +
                          m.name + "' is " +
                          std::to_string(arg.tokens.size()) +
                          " tokens, exceeding len=" +
                          std::to_string(p.max_len));
      }
      arg.start_pos = p.start_pos;
      out_.args.push_back(std::move(arg));
    }

    walk_items(import.children, mi);

    // Free text after this import resumes at the module's end (§3.4).
    cursor_ = std::max(cursor_, m.end_pos);
  }

  void collect_warnings() {
    for (const BoundText& t : out_.texts) {
      const int t_end = t.start_pos + static_cast<int>(t.tokens.size());
      for (int mi : out_.modules) {
        const ModuleNode& m = schema_.module(mi);
        if (m.own_token_count() == 0) continue;
        if (t.start_pos < m.end_pos && m.start_pos < t_end) {
          out_.warnings.push_back(
              "free text at positions [" + std::to_string(t.start_pos) +
              ", " + std::to_string(t_end) + ") overlaps module '" + m.name +
              "' [" + std::to_string(m.start_pos) + ", " +
              std::to_string(m.end_pos) +
              ") — leave a gap (e.g. a buffer <param>) or reorder imports");
        }
      }
    }
    for (const BoundArg& a : out_.args) {
      const ParamDef& p =
          schema_.module(a.module_index)
              .params[static_cast<size_t>(a.param_index)];
      if (p.max_len >= 8 &&
          static_cast<int>(a.tokens.size()) * 4 <= p.max_len) {
        out_.warnings.push_back(
            "argument for '" + p.name + "' uses " +
            std::to_string(a.tokens.size()) + " of " +
            std::to_string(p.max_len) +
            " budgeted positions; a smaller len would tighten the layout");
      }
    }
  }

  void finalize_next_pos() {
    int next = cursor_;
    for (int mi : out_.modules) {
      next = std::max(next, schema_.module(mi).end_pos);
    }
    for (const BoundArg& a : out_.args) {
      next = std::max(next, a.start_pos + static_cast<int>(a.tokens.size()));
    }
    out_.next_pos = next;
  }

  // The baseline prompt is the same content as one contiguous token stream
  // in layout order: module runs (arguments substituted in place of their
  // placeholders) and free texts, sorted by their assigned start position.
  void build_baseline() {
    struct Run {
      int start;
      int seq;
      std::vector<TokenId> tokens;
    };
    std::vector<Run> runs;
    int seq = 0;

    auto arg_for = [&](int mi, int pi) -> const BoundArg* {
      for (const BoundArg& a : out_.args) {
        if (a.module_index == mi && a.param_index == pi) return &a;
      }
      return nullptr;
    };

    for (int mi : out_.modules) {
      for (pml::TokenRun& run : schema_.module_own_runs(mi)) {
        if (run.is_param) {
          const BoundArg* arg = arg_for(mi, run.param_index);
          if (arg == nullptr || arg->tokens.empty()) continue;
          runs.push_back({run.start_pos, seq++, arg->tokens});
        } else {
          runs.push_back({run.start_pos, seq++, std::move(run.tokens)});
        }
      }
    }
    for (const BoundText& t : out_.texts) {
      runs.push_back({t.start_pos, seq++, t.tokens});
    }
    std::sort(runs.begin(), runs.end(), [](const Run& a, const Run& b) {
      return a.start != b.start ? a.start < b.start : a.seq < b.seq;
    });
    for (const Run& r : runs) {
      out_.baseline_tokens.insert(out_.baseline_tokens.end(),
                                  r.tokens.begin(), r.tokens.end());
    }
  }

  const Schema& schema_;
  const PromptAst& prompt_;
  const TextTokenizer& tokenizer_;
  PromptBinding out_;
  std::vector<bool> included_;
  std::vector<int> union_used_;
  int cursor_ = 0;
};

}  // namespace

PromptAst parse_prompt(std::string_view pml_source) {
  const XmlNode root = parse_xml(pml_source);
  if (root.tag != "prompt") {
    throw ParseError("prompt document must have a <prompt> root, found <" +
                     root.tag + ">");
  }
  PromptAst ast;
  ast.schema_name = root.required_attr("schema");
  ast.items = items_from_children(root);
  return ast;
}

int PromptBinding::cached_token_count() const {
  int n = 0;
  for (int mi : modules) {
    for (const TokenRun& run : schema->module_own_runs(mi)) {
      if (!run.is_param) n += static_cast<int>(run.tokens.size());
    }
  }
  return n;
}

int PromptBinding::uncached_token_count() const {
  int n = 0;
  for (const BoundArg& a : args) n += static_cast<int>(a.tokens.size());
  for (const BoundText& t : texts) n += static_cast<int>(t.tokens.size());
  return n;
}

PromptBinding bind_prompt(const Schema& schema, const PromptAst& prompt,
                          const TextTokenizer& tokenizer) {
  return Binder(schema, prompt, tokenizer).run();
}

}  // namespace pc::pml
