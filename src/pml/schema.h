// PML schema semantics and position-ID layout (paper §3.2, §3.3).
//
// A schema declares prompt modules (<module>), parameters (<param>),
// mutually exclusive groups (<union>), nested modules, and LLM-agnostic
// role tags (<system>/<user>/<assistant>, compiled through ChatTemplate).
// Text outside <module> tags becomes anonymous modules that every derived
// prompt includes.
//
// Parsing also performs the layout pass: every token of every module is
// assigned an absolute position ID by its location in the schema. Union
// members share their start position and the union occupies the extent of
// its largest member (§3.2.3); parameters occupy max_len positions filled
// with <unk> placeholders (§3.3).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "tokenizer/chat_template.h"
#include "tokenizer/tokenizer.h"

namespace pc::pml {

struct ParamDef {
  std::string name;
  int max_len = 0;     // maximum argument tokens (len attribute)
  int start_pos = -1;  // assigned by layout: first <unk> position
};

// A contiguous run of a module's own tokens.
struct TextPiece {
  std::string text;             // post template expansion
  std::vector<TokenId> tokens;  // tokenized
  int start_pos = -1;
};

struct ContentItem {
  enum class Kind { kText, kParam, kModule, kUnion };
  Kind kind;
  int index;  // into pieces / params / schema modules / schema unions
};

struct ModuleNode {
  std::string name;
  bool anonymous = false;
  int parent = -1;    // enclosing module index; -1 for top level
  int union_id = -1;  // >= 0 when a member of a union
  std::vector<ContentItem> content;  // ordered
  std::vector<TextPiece> pieces;
  std::vector<ParamDef> params;
  std::vector<int> children;  // nested module indices (incl. union members)
  int start_pos = -1;
  int end_pos = -1;  // exclusive; includes nested children / unions

  // Tokens in own pieces + param placeholders (excludes nested modules).
  int own_token_count() const {
    int n = 0;
    for (const auto& p : pieces) n += static_cast<int>(p.tokens.size());
    for (const auto& p : params) n += p.max_len;
    return n;
  }

  int param_index(std::string_view param_name) const {
    for (size_t i = 0; i < params.size(); ++i) {
      if (params[i].name == param_name) return static_cast<int>(i);
    }
    return -1;
  }
};

struct UnionDef {
  std::vector<int> members;  // module indices
  int start_pos = -1;
  int end_pos = -1;
};

// One run of a module's own token stream with its layout positions —
// the unit the encoder feeds to the model.
struct TokenRun {
  std::vector<TokenId> tokens;  // param runs hold max_len <unk> tokens
  int start_pos = -1;
  bool is_param = false;
  int param_index = -1;
};

// Immutable result of parsing + layout. A data holder: members are public
// (Core Guidelines C.131), helpers below give the common lookups.
struct Schema {
  std::string name;
  std::vector<ModuleNode> modules;
  std::vector<UnionDef> unions;
  // Top-level order: kModule / kUnion items only (top-level text becomes
  // anonymous kModule entries).
  std::vector<ContentItem> root_content;
  std::vector<int> anonymous_modules;  // always-included, schema order
  int total_positions = 0;

  // Parses and lays out a schema document (<schema name="...">...).
  // The tokenizer supplies token ids; the template expands role tags.
  static Schema parse(std::string_view pml_source, const TextTokenizer& tokenizer,
                      const ChatTemplate& chat_template);

  const ModuleNode& module(int index) const {
    PC_CHECK(index >= 0 && static_cast<size_t>(index) < modules.size());
    return modules[static_cast<size_t>(index)];
  }

  // Index of the named module, or -1.
  int find_module(std::string_view module_name) const;

  // The module's own token runs (text + param placeholders) in order.
  std::vector<TokenRun> module_own_runs(int index) const;
};

}  // namespace pc::pml
