// Programmatic construction of PML prompt documents (the <prompt> side of
// the prompt-program API). Used by the examples and workload generators so
// prompts are built structurally rather than by string pasting.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "pml/xml.h"

namespace pc::pml {

class ImportBuilder {
 public:
  explicit ImportBuilder(std::string module_name)
      : module_name_(std::move(module_name)) {}

  ImportBuilder& arg(std::string param, std::string value) {
    args_.emplace_back(std::move(param), std::move(value));
    return *this;
  }

  ImportBuilder& text(std::string content) {
    children_ += escape_text(content) + "\n";
    return *this;
  }

  ImportBuilder& import(const ImportBuilder& nested) {
    children_ += nested.str();
    return *this;
  }

  std::string str() const {
    std::string out = "<" + module_name_;
    for (const auto& [k, v] : args_) {
      out += " " + k + "=\"" + escape_attr(v) + "\"";
    }
    if (children_.empty()) return out + "/>\n";
    return out + ">\n" + children_ + "</" + module_name_ + ">\n";
  }

 private:
  std::string module_name_;
  std::vector<std::pair<std::string, std::string>> args_;
  std::string children_;
};

class PromptBuilder {
 public:
  explicit PromptBuilder(std::string schema_name)
      : schema_name_(std::move(schema_name)) {}

  PromptBuilder& import(std::string module_name) {
    body_ += ImportBuilder(std::move(module_name)).str();
    return *this;
  }

  PromptBuilder& import(const ImportBuilder& builder) {
    body_ += builder.str();
    return *this;
  }

  PromptBuilder& text(std::string content) {
    body_ += escape_text(content) + "\n";
    return *this;
  }

  std::string str() const {
    return "<prompt schema=\"" + escape_attr(schema_name_) + "\">\n" + body_ +
           "</prompt>\n";
  }

 private:
  std::string schema_name_;
  std::string body_;
};

}  // namespace pc::pml
