// PML prompt documents and their binding against a schema (paper §3.4).
//
// A prompt (<prompt schema="...">) lists the modules it imports (by tag
// name, e.g. <miami/>), supplies parameter arguments as attributes
// (<trip-plan duration="3 days">), nests imports to mirror schema nesting,
// and interleaves free text — the uncached segments.
//
// bind_prompt() validates the prompt against the schema (module existence,
// nesting, union exclusivity, argument length budgets) and produces the
// execution plan of cached inference: which modules to retrieve, and the
// token/position-ID streams of every uncached segment. It also materializes
// the equivalent plain prompt for the KV-Cache baseline.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "pml/schema.h"

namespace pc::pml {

struct PromptImport;

// One ordered child of a prompt or of an import element.
struct PromptItem {
  std::unique_ptr<PromptImport> import;  // nullptr for text items
  std::string text;

  bool is_text() const { return import == nullptr; }
};

struct PromptImport {
  std::string module_name;
  std::vector<std::pair<std::string, std::string>> args;  // param -> value
  std::vector<PromptItem> children;
  int line = 0;
};

struct PromptAst {
  std::string schema_name;
  std::vector<PromptItem> items;
};

// Parses a <prompt schema="..."> document. Structural errors throw
// pc::ParseError; schema conformance is checked later by bind_prompt.
PromptAst parse_prompt(std::string_view pml_source);

// A parameter argument bound to its placeholder slot.
struct BoundArg {
  int module_index = -1;
  int param_index = -1;
  std::vector<TokenId> tokens;  // <= param.max_len tokens
  int start_pos = -1;           // the placeholder's first position ID
};

// An uncached free-text segment with assigned position IDs.
struct BoundText {
  std::vector<TokenId> tokens;
  int start_pos = -1;
};

// The execution plan for serving one prompt.
struct PromptBinding {
  const Schema* schema = nullptr;

  // Modules whose cached states are concatenated, in concatenation order:
  // anonymous modules first (schema order), then imports (prompt order,
  // parents before their imported children).
  std::vector<int> modules;

  // Arguments for parameterized imports (paper §3.3): computed like
  // uncached segments at the placeholder position IDs, replacing the
  // <unk> placeholder states.
  std::vector<BoundArg> args;

  // Free text segments in prompt order.
  std::vector<BoundText> texts;

  // One past the largest position ID used; generation continues here.
  int next_pos = 0;

  // The same prompt as served by the baseline: all included content with
  // arguments substituted inline, as one contiguous token stream.
  std::vector<TokenId> baseline_tokens;

  // Non-fatal layout advisories: free text whose assigned positions overlap
  // an included module's range (the paper's "assuming gaps exist" caveat,
  // §3.4), or arguments that waste most of their parameter budget. The
  // prompt still serves; these flag schemas worth restructuring.
  std::vector<std::string> warnings;

  int cached_token_count() const;    // tokens restored from cache
  int uncached_token_count() const;  // tokens computed at serve time
};

// Validates `prompt` against `schema` and builds the plan. Throws
// pc::SchemaError on conformance violations.
PromptBinding bind_prompt(const Schema& schema, const PromptAst& prompt,
                          const TextTokenizer& tokenizer);

}  // namespace pc::pml
