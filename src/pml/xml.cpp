#include "pml/xml.h"

#include <cctype>
#include <sstream>

namespace pc::pml {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view src) : src_(src) {}

  XmlNode parse_document() {
    skip_whitespace_and_comments();
    XmlNode root = parse_element();
    skip_whitespace_and_comments();
    if (!at_end()) fail("trailing content after root element");
    return root;
  }

 private:
  bool at_end() const { return pos_ >= src_.size(); }

  char peek(size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  char advance() {
    const char c = src_[pos_++];
    if (c == '\n') ++line_;
    return c;
  }

  bool consume(std::string_view expect) {
    if (src_.substr(pos_).starts_with(expect)) {
      for (size_t i = 0; i < expect.size(); ++i) advance();
      return true;
    }
    return false;
  }

  [[noreturn]] void fail(const std::string& msg) const {
    std::ostringstream os;
    os << "PML parse error at line " << line_ << ": " << msg;
    throw ParseError(os.str());
  }

  void skip_whitespace() {
    while (!at_end() && std::isspace(static_cast<unsigned char>(peek()))) {
      advance();
    }
  }

  void skip_whitespace_and_comments() {
    for (;;) {
      skip_whitespace();
      if (src_.substr(pos_).starts_with("<!--")) {
        skip_comment();
      } else {
        return;
      }
    }
  }

  void skip_comment() {
    consume("<!--");
    while (!at_end() && !src_.substr(pos_).starts_with("-->")) advance();
    if (!consume("-->")) fail("unterminated comment");
  }

  static bool is_name_char(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '-' ||
           c == '_' || c == '.' || c == ':';
  }

  std::string parse_name() {
    if (!is_name_char(peek())) fail("expected a name");
    std::string name;
    while (!at_end() && is_name_char(peek())) name += advance();
    return name;
  }

  std::string parse_entity() {
    // positioned on '&'
    advance();
    std::string ent;
    while (!at_end() && peek() != ';' && ent.size() < 8) ent += advance();
    if (!consume(";")) fail("unterminated entity '&" + ent + "'");
    if (ent == "lt") return "<";
    if (ent == "gt") return ">";
    if (ent == "amp") return "&";
    if (ent == "quot") return "\"";
    if (ent == "apos") return "'";
    fail("unknown entity '&" + ent + ";'");
  }

  std::string parse_attr_value() {
    const char quote = peek();
    if (quote != '"' && quote != '\'') fail("expected quoted attribute value");
    advance();
    std::string value;
    while (!at_end() && peek() != quote) {
      if (peek() == '&') {
        value += parse_entity();
      } else {
        value += advance();
      }
    }
    if (!consume(std::string_view(&quote, 1))) {
      fail("unterminated attribute value");
    }
    return value;
  }

  XmlNode parse_element() {
    const int start_line = line_;
    if (!consume("<")) fail("expected '<'");
    XmlNode node;
    node.line = start_line;
    node.tag = parse_name();

    for (;;) {
      skip_whitespace();
      if (consume("/>")) return node;  // self-closing
      if (consume(">")) break;
      XmlAttr attr;
      attr.name = parse_name();
      skip_whitespace();
      if (!consume("=")) fail("expected '=' after attribute name");
      skip_whitespace();
      attr.value = parse_attr_value();
      for (const auto& existing : node.attrs) {
        if (existing.name == attr.name) {
          fail("duplicate attribute '" + attr.name + "'");
        }
      }
      node.attrs.push_back(std::move(attr));
    }

    // Children until matching close tag.
    std::string text;
    auto flush_text = [&] {
      // Whitespace-only runs between elements are layout, not content.
      const bool all_space =
          text.find_first_not_of(" \t\r\n\f\v") == std::string::npos;
      if (text.empty() || all_space) {
        text.clear();
        return;
      }
      XmlNode t;
      t.text = std::move(text);
      t.line = line_;
      text.clear();
      node.children.push_back(std::move(t));
    };
    for (;;) {
      if (at_end()) fail("unterminated element <" + node.tag + ">");
      if (src_.substr(pos_).starts_with("<!--")) {
        skip_comment();
        continue;
      }
      if (src_.substr(pos_).starts_with("</")) {
        flush_text();
        consume("</");
        const std::string close = parse_name();
        if (close != node.tag) {
          fail("mismatched close tag </" + close + "> for <" + node.tag + ">");
        }
        skip_whitespace();
        if (!consume(">")) fail("expected '>' in close tag");
        return node;
      }
      if (peek() == '<') {
        flush_text();
        node.children.push_back(parse_element());
        continue;
      }
      if (peek() == '&') {
        text += parse_entity();
        continue;
      }
      text += advance();
    }
  }

  std::string_view src_;
  size_t pos_ = 0;
  int line_ = 1;
};

}  // namespace

const std::string& XmlNode::required_attr(std::string_view name) const {
  const std::string* v = attr(name);
  if (v == nullptr) {
    throw ParseError("element <" + tag + "> missing required attribute '" +
                     std::string(name) + "'");
  }
  return *v;
}

std::string XmlNode::direct_text() const {
  std::string out;
  for (const auto& c : children) {
    if (c.is_text()) out += c.text;
  }
  return out;
}

XmlNode parse_xml(std::string_view source) {
  return Parser(source).parse_document();
}

std::string escape_text(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '&': out += "&amp;"; break;
      default: out += c;
    }
  }
  return out;
}

std::string escape_attr(std::string_view text) {
  std::string out = escape_text(text);
  std::string quoted;
  for (char c : out) {
    if (c == '"') {
      quoted += "&quot;";
    } else {
      quoted += c;
    }
  }
  return quoted;
}

}  // namespace pc::pml
