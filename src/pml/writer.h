// Canonical PML serialization: turns a parsed (and laid-out) Schema back
// into markup. Role tags were already expanded through the chat template at
// parse time, so the output is the canonical template-compiled form — what
// the engine actually encodes. Round-trips: parsing the writer's output
// yields an identical layout.
#pragma once

#include <string>

#include "pml/schema.h"

namespace pc::pml {

// Serializes the schema document (modules, params, unions, anonymous text).
std::string write_schema(const Schema& schema);

}  // namespace pc::pml
