// Prompt programs: a host-language front end that compiles to PML
// (paper §3.2.4).
//
// The paper derives PML schemas from Python prompt programs: `if`
// statements become <module>, choose-one statements become <union>,
// function calls become nested modules, and a decorator bounds argument
// lengths (<param len>). This is the C++ equivalent: a builder DSL whose
// compile() emits a PML schema document, so applications never hand-write
// markup.
//
//   PromptProgram prog("assistant");
//   prog.text("You are a helpful travel agent.");
//   prog.if_block("frequent-flyer", [](BlockBuilder& b) {
//     b.text("The user holds elite status; mention lounge access.");
//   });
//   prog.choose({{"city-miami", "The trip is to Miami."},
//                {"city-maui", "The trip is to Maui."}});
//   prog.if_block("trip-plan", [](BlockBuilder& b) {
//     b.text("Plan a trip of");
//     b.param("duration", 4);
//     b.text("days.");
//   });
//   std::string schema_pml = prog.compile();
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "tokenizer/chat_template.h"

namespace pc::pml {

namespace detail {

struct ProgNode {
  enum class Kind { kText, kParam, kModule, kUnion, kRole };
  Kind kind;
  std::string text;       // kText
  std::string name;       // kParam / kModule
  int param_len = 0;      // kParam
  ChatRole role = ChatRole::kSystem;  // kRole
  std::vector<ProgNode> children;     // kModule / kUnion / kRole
};

}  // namespace detail

class BlockBuilder {
 public:
  explicit BlockBuilder(std::vector<detail::ProgNode>* sink) : sink_(sink) {}

  // Literal prompt text.
  BlockBuilder& text(std::string content);

  // A bounded runtime argument (the decorator of §3.2.4).
  BlockBuilder& param(std::string name, int max_len);

  // `if (name)` — a module included only when the prompt imports it.
  BlockBuilder& if_block(std::string name,
                         const std::function<void(BlockBuilder&)>& body);

  // A function call — nested module, same semantics as if_block.
  BlockBuilder& call(std::string name,
                     const std::function<void(BlockBuilder&)>& body) {
    return if_block(std::move(name), body);
  }

  // choose-one over simple text alternatives — a union of leaf modules.
  BlockBuilder& choose(
      std::vector<std::pair<std::string, std::string>> cases);

  // choose-one over structured alternatives.
  BlockBuilder& choose_blocks(
      std::vector<std::pair<std::string,
                            std::function<void(BlockBuilder&)>>> cases);

  // Role-tagged section (compiled against the model's chat template).
  BlockBuilder& role(ChatRole r,
                     const std::function<void(BlockBuilder&)>& body);

 private:
  std::vector<detail::ProgNode>* sink_;
};

class PromptProgram : public BlockBuilder {
 public:
  explicit PromptProgram(std::string schema_name)
      : BlockBuilder(&nodes_), schema_name_(std::move(schema_name)) {}

  const std::string& schema_name() const { return schema_name_; }

  // Emits the PML schema document.
  std::string compile() const;

 private:
  std::string schema_name_;
  std::vector<detail::ProgNode> nodes_;
};

}  // namespace pc::pml
