#include "pml/writer.h"

#include "pml/xml.h"

namespace pc::pml {

namespace {

void emit_module_body(const Schema& schema, const ModuleNode& m,
                      std::string& out, int depth);

std::string indent(int depth) {
  return std::string(static_cast<size_t>(depth) * 2, ' ');
}

void emit_module(const Schema& schema, int mi, std::string& out, int depth) {
  const ModuleNode& m = schema.module(mi);
  if (m.anonymous) {
    // Anonymous modules were plain text in the source document.
    for (const TextPiece& piece : m.pieces) {
      out += indent(depth) + escape_text(piece.text) + "\n";
    }
    return;
  }
  out += indent(depth) + "<module name=\"" + escape_attr(m.name) + "\">\n";
  emit_module_body(schema, m, out, depth + 1);
  out += indent(depth) + "</module>\n";
}

void emit_union(const Schema& schema, int union_id, std::string& out,
                int depth) {
  out += indent(depth) + "<union>\n";
  for (int mi : schema.unions[static_cast<size_t>(union_id)].members) {
    emit_module(schema, mi, out, depth + 1);
  }
  out += indent(depth) + "</union>\n";
}

void emit_module_body(const Schema& schema, const ModuleNode& m,
                      std::string& out, int depth) {
  for (const ContentItem& item : m.content) {
    switch (item.kind) {
      case ContentItem::Kind::kText:
        out += indent(depth) +
               escape_text(m.pieces[static_cast<size_t>(item.index)].text) +
               "\n";
        break;
      case ContentItem::Kind::kParam: {
        const ParamDef& p = m.params[static_cast<size_t>(item.index)];
        out += indent(depth) + "<param name=\"" + escape_attr(p.name) +
               "\" len=\"" + std::to_string(p.max_len) + "\"/>\n";
        break;
      }
      case ContentItem::Kind::kModule:
        emit_module(schema, item.index, out, depth);
        break;
      case ContentItem::Kind::kUnion:
        emit_union(schema, item.index, out, depth);
        break;
    }
  }
}

}  // namespace

std::string write_schema(const Schema& schema) {
  std::string out = "<schema name=\"" + escape_attr(schema.name) + "\">\n";
  for (const ContentItem& item : schema.root_content) {
    if (item.kind == ContentItem::Kind::kModule) {
      emit_module(schema, item.index, out, 1);
    } else {
      emit_union(schema, item.index, out, 1);
    }
  }
  out += "</schema>\n";
  return out;
}

}  // namespace pc::pml
