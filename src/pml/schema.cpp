#include "pml/schema.h"

#include <algorithm>

#include "common/string_util.h"
#include "pml/xml.h"

namespace pc::pml {

namespace {

bool is_role_tag(const std::string& tag, ChatRole* role) {
  if (tag == "system") {
    *role = ChatRole::kSystem;
    return true;
  }
  if (tag == "user") {
    *role = ChatRole::kUser;
    return true;
  }
  if (tag == "assistant") {
    *role = ChatRole::kAssistant;
    return true;
  }
  return false;
}

class SchemaBuilder {
 public:
  SchemaBuilder(const TextTokenizer& tokenizer, const ChatTemplate& tmpl)
      : tokenizer_(tokenizer), template_(tmpl) {}

  Schema build(const XmlNode& root) {
    if (root.tag != "schema") {
      throw ParseError("schema document must have a <schema> root, found <" +
                       root.tag + ">");
    }
    schema_.name = root.required_attr("name");

    process_children(root, /*parent=*/-1);

    // Layout pass.
    int cursor = 0;
    for (const ContentItem& item : schema_.root_content) {
      cursor = item.kind == ContentItem::Kind::kModule
                   ? layout_module(item.index, cursor)
                   : layout_union(item.index, cursor);
    }
    schema_.total_positions = cursor;
    return std::move(schema_);
  }

 private:
  ModuleNode* node(int mi) {
    return &schema_.modules[static_cast<size_t>(mi)];
  }

  // Appends text content to `parent` (or to a fresh anonymous top-level
  // module when parent == -1).
  void add_text(int parent, const std::string& text) {
    const auto trimmed = trim(text);
    if (trimmed.empty()) return;
    int target = parent;
    if (parent == -1) {
      target = new_module("", /*parent=*/-1, /*union_id=*/-1,
                          /*anonymous=*/true);
      schema_.root_content.push_back({ContentItem::Kind::kModule, target});
      schema_.anonymous_modules.push_back(target);
    }
    TextPiece piece;
    piece.text = std::string(trimmed);
    piece.tokens = tokenizer_.encode(piece.text);
    ModuleNode* m = node(target);
    m->content.push_back(
        {ContentItem::Kind::kText, static_cast<int>(m->pieces.size())});
    m->pieces.push_back(std::move(piece));
  }

  int new_module(const std::string& module_name, int parent, int union_id,
                 bool anonymous) {
    ModuleNode m;
    m.anonymous = anonymous;
    m.parent = parent;
    m.union_id = union_id;
    if (anonymous) {
      m.name = "__anon" + std::to_string(anon_counter_++);
    } else {
      m.name = module_name;
      if (m.name.empty() || m.name.starts_with("__")) {
        throw ParseError("invalid module name '" + m.name + "'");
      }
      if (schema_.find_module(m.name) != -1) {
        throw ParseError("duplicate module name '" + m.name + "'");
      }
    }
    schema_.modules.push_back(std::move(m));
    return static_cast<int>(schema_.modules.size()) - 1;
  }

  // Processes the children of a container element into module `parent`
  // (-1 = schema top level).
  void process_children(const XmlNode& element, int parent) {
    for (const XmlNode& child : element.children) {
      if (child.is_text()) {
        add_text(parent, child.text);
        continue;
      }
      ChatRole role;
      if (child.tag == "module") {
        const int mi = process_module(child, parent, /*union_id=*/-1);
        if (parent == -1) {
          schema_.root_content.push_back({ContentItem::Kind::kModule, mi});
        } else {
          ModuleNode* p = node(parent);
          p->content.push_back({ContentItem::Kind::kModule, mi});
          p->children.push_back(mi);
        }
      } else if (child.tag == "union") {
        process_union(child, parent);
      } else if (child.tag == "param") {
        if (parent == -1) {
          throw ParseError("<param> must appear inside a <module> (line " +
                           std::to_string(child.line) + ")");
        }
        process_param(child, parent);
      } else if (is_role_tag(child.tag, &role)) {
        const ChatTemplate::Wrapping w = template_.wrap(role);
        add_text(parent, w.prefix);
        process_children(child, parent);
        add_text(parent, w.suffix);
      } else {
        throw ParseError("unexpected tag <" + child.tag +
                         "> in schema (line " + std::to_string(child.line) +
                         ")");
      }
    }
  }

  int process_module(const XmlNode& element, int parent, int union_id) {
    const int mi = new_module(element.required_attr("name"), parent, union_id,
                              /*anonymous=*/false);
    process_children(element, mi);
    return mi;
  }

  void process_param(const XmlNode& element, int parent) {
    ParamDef p;
    p.name = element.required_attr("name");
    const std::string& len = element.required_attr("len");
    try {
      p.max_len = std::stoi(len);
    } catch (const std::exception&) {
      throw ParseError("<param> len attribute must be an integer, got '" +
                       len + "'");
    }
    if (p.max_len <= 0) {
      throw ParseError("<param name=\"" + p.name + "\"> len must be positive");
    }
    ModuleNode* m = node(parent);
    if (m->param_index(p.name) != -1) {
      throw ParseError("duplicate param '" + p.name + "' in module '" +
                       m->name + "'");
    }
    m->content.push_back(
        {ContentItem::Kind::kParam, static_cast<int>(m->params.size())});
    m->params.push_back(std::move(p));
  }

  void process_union(const XmlNode& element, int parent) {
    UnionDef u;
    const int union_id = static_cast<int>(schema_.unions.size());
    // Reserve the slot so member modules can reference union_id.
    schema_.unions.push_back(UnionDef{});
    for (const XmlNode& child : element.children) {
      if (child.is_text()) {
        if (!trim(child.text).empty()) {
          throw ParseError("<union> may contain only <module> children");
        }
        continue;
      }
      if (child.tag != "module") {
        throw ParseError(
            "<union> may contain only <module> children, found <" +
            child.tag + ">");
      }
      const int mi = process_module(child, parent, union_id);
      u.members.push_back(mi);
      if (parent != -1) node(parent)->children.push_back(mi);
    }
    if (u.members.empty()) {
      throw ParseError("<union> must contain at least one module");
    }
    schema_.unions[static_cast<size_t>(union_id)] = std::move(u);
    if (parent == -1) {
      schema_.root_content.push_back({ContentItem::Kind::kUnion, union_id});
    } else {
      node(parent)->content.push_back({ContentItem::Kind::kUnion, union_id});
    }
  }

  int layout_module(int mi, int cursor) {
    node(mi)->start_pos = cursor;
    // Note: content loops only touch this module's own vectors or recurse;
    // schema_.modules is stable during layout (no insertions happen here).
    for (const ContentItem& item : node(mi)->content) {
      switch (item.kind) {
        case ContentItem::Kind::kText: {
          TextPiece& piece = node(mi)->pieces[static_cast<size_t>(item.index)];
          piece.start_pos = cursor;
          cursor += static_cast<int>(piece.tokens.size());
          break;
        }
        case ContentItem::Kind::kParam: {
          ParamDef& p = node(mi)->params[static_cast<size_t>(item.index)];
          p.start_pos = cursor;
          cursor += p.max_len;
          break;
        }
        case ContentItem::Kind::kModule:
          cursor = layout_module(item.index, cursor);
          break;
        case ContentItem::Kind::kUnion:
          cursor = layout_union(item.index, cursor);
          break;
      }
    }
    node(mi)->end_pos = cursor;
    return cursor;
  }

  int layout_union(int union_id, int cursor) {
    UnionDef& u = schema_.unions[static_cast<size_t>(union_id)];
    u.start_pos = cursor;
    int end = cursor;
    for (int mi : u.members) {
      end = std::max(end, layout_module(mi, cursor));
    }
    u.end_pos = end;
    return end;
  }

  const TextTokenizer& tokenizer_;
  const ChatTemplate& template_;
  Schema schema_;
  int anon_counter_ = 0;
};

}  // namespace

Schema Schema::parse(std::string_view pml_source, const TextTokenizer& tokenizer,
                     const ChatTemplate& chat_template) {
  const XmlNode root = parse_xml(pml_source);
  SchemaBuilder builder(tokenizer, chat_template);
  return builder.build(root);
}

int Schema::find_module(std::string_view module_name) const {
  for (size_t i = 0; i < modules.size(); ++i) {
    if (modules[i].name == module_name) return static_cast<int>(i);
  }
  return -1;
}

std::vector<TokenRun> Schema::module_own_runs(int index) const {
  const ModuleNode& m = module(index);
  std::vector<TokenRun> runs;
  for (const ContentItem& item : m.content) {
    switch (item.kind) {
      case ContentItem::Kind::kText: {
        const TextPiece& piece = m.pieces[static_cast<size_t>(item.index)];
        if (piece.tokens.empty()) break;
        TokenRun run;
        run.tokens = piece.tokens;
        run.start_pos = piece.start_pos;
        runs.push_back(std::move(run));
        break;
      }
      case ContentItem::Kind::kParam: {
        const ParamDef& p = m.params[static_cast<size_t>(item.index)];
        TokenRun run;
        run.tokens.assign(static_cast<size_t>(p.max_len), Vocab::kUnk);
        run.start_pos = p.start_pos;
        run.is_param = true;
        run.param_index = item.index;
        runs.push_back(std::move(run));
        break;
      }
      case ContentItem::Kind::kModule:
      case ContentItem::Kind::kUnion:
        break;  // nested modules are encoded separately
    }
  }
  return runs;
}

}  // namespace pc::pml
