// Minimal XML parser for the Prompt Markup Language.
//
// Supports the subset PML needs: nested elements, self-closing tags,
// double- or single-quoted attributes, text nodes, comments, and the five
// standard entities. Position information (line:column) is carried through
// to pc::ParseError messages.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.h"

namespace pc::pml {

struct XmlAttr {
  std::string name;
  std::string value;
};

struct XmlNode {
  // Element node when !tag.empty(); text node otherwise.
  std::string tag;
  std::vector<XmlAttr> attrs;
  std::vector<XmlNode> children;
  std::string text;  // text nodes only
  int line = 0;      // 1-based source line of the node start

  bool is_text() const { return tag.empty(); }

  // Attribute lookup; returns nullptr when absent.
  const std::string* attr(std::string_view name) const {
    for (const auto& a : attrs) {
      if (a.name == name) return &a.value;
    }
    return nullptr;
  }

  // Attribute lookup with a required-presence contract.
  const std::string& required_attr(std::string_view name) const;

  // Concatenated text of the direct text children.
  std::string direct_text() const;
};

// Parses a document with a single root element. Throws pc::ParseError on
// malformed input.
XmlNode parse_xml(std::string_view source);

// Escapes text for embedding into an XML document (used by the writer and
// the prompt-program compiler).
std::string escape_text(std::string_view text);
std::string escape_attr(std::string_view text);

}  // namespace pc::pml
