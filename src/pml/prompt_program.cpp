#include "pml/prompt_program.h"

#include "common/error.h"
#include "pml/xml.h"

namespace pc::pml {

using detail::ProgNode;

BlockBuilder& BlockBuilder::text(std::string content) {
  ProgNode n;
  n.kind = ProgNode::Kind::kText;
  n.text = std::move(content);
  sink_->push_back(std::move(n));
  return *this;
}

BlockBuilder& BlockBuilder::param(std::string name, int max_len) {
  PC_CHECK_MSG(max_len > 0, "param max_len must be positive");
  ProgNode n;
  n.kind = ProgNode::Kind::kParam;
  n.name = std::move(name);
  n.param_len = max_len;
  sink_->push_back(std::move(n));
  return *this;
}

BlockBuilder& BlockBuilder::if_block(
    std::string name, const std::function<void(BlockBuilder&)>& body) {
  ProgNode n;
  n.kind = ProgNode::Kind::kModule;
  n.name = std::move(name);
  BlockBuilder inner(&n.children);
  body(inner);
  sink_->push_back(std::move(n));
  return *this;
}

BlockBuilder& BlockBuilder::choose(
    std::vector<std::pair<std::string, std::string>> cases) {
  ProgNode u;
  u.kind = ProgNode::Kind::kUnion;
  for (auto& [name, content] : cases) {
    ProgNode m;
    m.kind = ProgNode::Kind::kModule;
    m.name = std::move(name);
    ProgNode t;
    t.kind = ProgNode::Kind::kText;
    t.text = std::move(content);
    m.children.push_back(std::move(t));
    u.children.push_back(std::move(m));
  }
  sink_->push_back(std::move(u));
  return *this;
}

BlockBuilder& BlockBuilder::choose_blocks(
    std::vector<std::pair<std::string, std::function<void(BlockBuilder&)>>>
        cases) {
  ProgNode u;
  u.kind = ProgNode::Kind::kUnion;
  for (auto& [name, body] : cases) {
    ProgNode m;
    m.kind = ProgNode::Kind::kModule;
    m.name = std::move(name);
    BlockBuilder inner(&m.children);
    body(inner);
    u.children.push_back(std::move(m));
  }
  sink_->push_back(std::move(u));
  return *this;
}

BlockBuilder& BlockBuilder::role(
    ChatRole r, const std::function<void(BlockBuilder&)>& body) {
  ProgNode n;
  n.kind = ProgNode::Kind::kRole;
  n.role = r;
  BlockBuilder inner(&n.children);
  body(inner);
  sink_->push_back(std::move(n));
  return *this;
}

namespace {

const char* role_tag(ChatRole r) {
  switch (r) {
    case ChatRole::kSystem:
      return "system";
    case ChatRole::kUser:
      return "user";
    case ChatRole::kAssistant:
      return "assistant";
  }
  return "system";
}

void emit(const ProgNode& n, std::string& out, int depth) {
  const std::string indent(static_cast<size_t>(depth) * 2, ' ');
  switch (n.kind) {
    case ProgNode::Kind::kText:
      out += indent + escape_text(n.text) + "\n";
      return;
    case ProgNode::Kind::kParam:
      out += indent + "<param name=\"" + escape_attr(n.name) + "\" len=\"" +
             std::to_string(n.param_len) + "\"/>\n";
      return;
    case ProgNode::Kind::kModule:
      out += indent + "<module name=\"" + escape_attr(n.name) + "\">\n";
      for (const ProgNode& c : n.children) emit(c, out, depth + 1);
      out += indent + "</module>\n";
      return;
    case ProgNode::Kind::kUnion:
      out += indent + "<union>\n";
      for (const ProgNode& c : n.children) emit(c, out, depth + 1);
      out += indent + "</union>\n";
      return;
    case ProgNode::Kind::kRole:
      out += indent + "<" + role_tag(n.role) + ">\n";
      for (const ProgNode& c : n.children) emit(c, out, depth + 1);
      out += indent + "</" + role_tag(n.role) + ">\n";
      return;
  }
}

}  // namespace

std::string PromptProgram::compile() const {
  std::string out = "<schema name=\"" + escape_attr(schema_name_) + "\">\n";
  // Access the node list through the BlockBuilder sink we own.
  // (nodes_ is private to this object; compile is a member, so direct.)
  for (const ProgNode& n : nodes_) emit(n, out, 1);
  out += "</schema>\n";
  return out;
}

}  // namespace pc::pml
