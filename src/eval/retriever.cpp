#include "eval/retriever.h"

#include <algorithm>
#include <cmath>

#include "eval/metrics.h"

namespace pc {

int Bm25Index::add_document(std::string name, std::string_view text) {
  PC_CHECK_MSG(!finalized_, "add_document after finalize");
  const int doc = static_cast<int>(docs_.size());

  std::unordered_map<std::string, int> counts;
  const auto terms = normalize_answer(text);
  for (const auto& t : terms) ++counts[t];

  docs_.push_back({std::move(name), static_cast<int>(terms.size())});
  for (const auto& [term, count] : counts) {
    postings_[term].push_back({doc, count});
  }
  return doc;
}

void Bm25Index::finalize() {
  PC_CHECK_MSG(!docs_.empty(), "empty index");
  double total = 0;
  for (const auto& d : docs_) total += d.length;
  avg_doc_len_ = total / static_cast<double>(docs_.size());
  finalized_ = true;
}

double Bm25Index::idf(const std::string& term) const {
  auto it = postings_.find(term);
  if (it == postings_.end()) return 0.0;
  const double n = static_cast<double>(docs_.size());
  const double df = static_cast<double>(it->second.size());
  // BM25+-style floor via the +1 inside the log keeps idf positive for
  // terms present in most documents.
  return std::log(1.0 + (n - df + 0.5) / (df + 0.5));
}

std::vector<Bm25Index::Result> Bm25Index::query(std::string_view text,
                                                int top_k) const {
  PC_CHECK_MSG(finalized_, "query before finalize");
  PC_CHECK(top_k > 0);

  std::unordered_map<std::string, int> q_counts;
  for (const auto& t : normalize_answer(text)) ++q_counts[t];

  std::vector<double> scores(docs_.size(), 0.0);
  for (const auto& [term, q_count] : q_counts) {
    (void)q_count;  // query term frequency is conventionally ignored
    auto it = postings_.find(term);
    if (it == postings_.end()) continue;
    const double term_idf = idf(term);
    for (const Posting& p : it->second) {
      const double tf = static_cast<double>(p.term_count);
      const double len_norm =
          1.0 - b_ + b_ * docs_[static_cast<size_t>(p.doc)].length /
                         avg_doc_len_;
      scores[static_cast<size_t>(p.doc)] +=
          term_idf * tf * (k1_ + 1.0) / (tf + k1_ * len_norm);
    }
  }

  std::vector<Result> results;
  for (size_t d = 0; d < scores.size(); ++d) {
    if (scores[d] > 0.0) {
      results.push_back({static_cast<int>(d), scores[d]});
    }
  }
  std::sort(results.begin(), results.end(),
            [](const Result& a, const Result& b) {
              return a.score != b.score ? a.score > b.score : a.doc < b.doc;
            });
  if (static_cast<int>(results.size()) > top_k) {
    results.resize(static_cast<size_t>(top_k));
  }
  return results;
}

}  // namespace pc
