// Synthetic LongBench-like workload generator.
//
// The paper evaluates on eight LongBench datasets (Table 1 / Figures 3-4):
// documents are defined as prompt modules and the task directive stays
// uncached user text (§5.1). LongBench itself is not available offline, so
// this generator synthesizes workloads with the same *structure*:
//
//   * Accuracy samples (Table 1): documents made of filler text with
//     planted facts "key v1 ... vk .". The question names a key and the
//     reference answer is its value sequence — retrievable in-context by
//     the induction-head model, so F1 / Rouge-L / accuracy are meaningful.
//     A dataset's `straddle_fraction` controls how often the queried fact
//     crosses a module boundary: such facts are retrievable by the
//     full-prefill baseline but lost under module-masked encoding, which
//     reproduces the semantic-dependence degradation the paper reports for
//     passage retrieval (§3.3, Table 1).
//
//   * Latency samples (Figures 3-5): paper-scale contexts (~5K tokens,
//     LongBench average) of in-vocabulary filler text, with a
//     dataset-specific uncached question length (e.g. TriviaQA carries the
//     largest uncached fraction, as in §5.2.2).
#pragma once

#include <string>
#include <vector>

#include "common/rng.h"
#include "tokenizer/tokenizer.h"

namespace pc {

enum class TaskMetric { kF1, kRougeL, kAccuracy };

struct DatasetSpec {
  std::string name;
  TaskMetric metric;

  // Accuracy-task shape (small contexts, induction model).
  int n_docs = 1;
  int facts_per_doc = 4;
  int answer_len = 2;           // value tokens per fact
  int filler_per_doc = 60;      // filler tokens between facts
  double straddle_fraction = 0; // queried fact crosses a module boundary
                                // (stratified across sample indices)
  double collision_rate = 0;    // value-token ambiguity: a queried value
                                // also appears inside another fact, forking
                                // the copy chain (hurts baseline and cached
                                // alike — this sets the task's difficulty
                                // ceiling, like distractors in LongBench)

  // Latency-task shape (paper-scale contexts, random-weight models).
  int latency_n_docs = 6;
  int latency_doc_tokens = 750;
  int latency_question_tokens = 35;

  const char* metric_name() const {
    switch (metric) {
      case TaskMetric::kF1:
        return "F1";
      case TaskMetric::kRougeL:
        return "Rouge L";
      case TaskMetric::kAccuracy:
        return "Acc";
    }
    return "?";
  }

  // The eight datasets shown in Table 1 and Figures 3-4.
  static const std::vector<DatasetSpec>& longbench8();

  // All 21 LongBench datasets (the paper's appendix evaluates the full
  // suite; the figures subsample 8 of them "due to space constraints").
  static const std::vector<DatasetSpec>& longbench21();
};

struct AccuracySample {
  std::string schema_pml;
  std::string prompt_pml;
  std::string question;   // the uncached task directive
  std::string reference;  // ground-truth answer text
  int context_tokens = 0; // cached module tokens
};

struct LatencySample {
  std::string schema_pml;
  std::string prompt_pml;
  int context_tokens = 0;
  int question_tokens = 0;
};

// Generates accuracy samples over its own compact closed vocabulary
// (designed for the induction model, whose width scales with vocab size).
class AccuracyWorkload {
 public:
  explicit AccuracyWorkload(uint64_t seed = 17);

  const Vocab& vocab() const { return vocab_; }
  const TextTokenizer& tokenizer() const { return tokenizer_; }

  // Token id of the fact terminator "." — the generation stop token.
  TokenId stop_token() const { return stop_token_; }

  // Positions the schema may occupy (bound for the induction model's
  // max_pos).
  static constexpr int kMaxSchemaPositions = 384;

  AccuracySample make_sample(const DatasetSpec& spec, int sample_index);

 private:
  struct Fact {
    std::string key;
    std::vector<std::string> values;
  };

  std::string filler_words(int count, Rng& rng) const;

  Vocab vocab_;
  Tokenizer tokenizer_;
  uint64_t seed_;
  TokenId stop_token_ = Vocab::kUnk;
  std::vector<std::string> filler_;
  std::vector<std::string> keys_;
  std::vector<std::string> values_;
};

// Generates paper-scale latency samples over the built-in English
// vocabulary (token values are irrelevant to latency; shapes are not).
class LatencyWorkload {
 public:
  explicit LatencyWorkload(uint64_t seed = 23);

  const TextTokenizer& tokenizer() const { return tokenizer_; }

  // scale multiplies context sizes (1.0 = LongBench-average ~5K tokens).
  LatencySample make_sample(const DatasetSpec& spec, int sample_index,
                            double scale = 1.0);

  // A fully cached synthetic prompt of exactly n_tokens context split into
  // `n_modules` modules, plus a single-token question (Figure 5 sweep).
  LatencySample make_sweep_sample(int n_tokens, int n_modules,
                                  const std::string& schema_name);

 private:
  std::string filler_words(int count);

  Tokenizer tokenizer_;
  Rng rng_;
  std::vector<std::string> word_pool_;
};

}  // namespace pc
