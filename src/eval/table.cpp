#include "eval/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace pc {

void TablePrinter::print(std::ostream& os) const {
  std::vector<size_t> widths;
  auto widen = [&](const std::vector<std::string>& row) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  if (!header_.empty()) widen(header_);
  for (const auto& r : rows_) widen(r);

  auto emit = [&](const std::vector<std::string>& row) {
    os << "| ";
    for (size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      os << cell << std::string(widths[i] - cell.size(), ' ');
      os << (i + 1 < widths.size() ? " | " : " |");
    }
    os << "\n";
  };

  size_t total = 4;
  for (size_t w : widths) total += w + 3;

  if (!title_.empty()) os << "\n=== " << title_ << " ===\n";
  if (!header_.empty()) {
    emit(header_);
    os << std::string(total > 4 ? total - 4 : 0, '-') << "\n";
  }
  for (const auto& r : rows_) emit(r);
  os.flush();
}

std::string TablePrinter::fmt(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string TablePrinter::fmt_ms(double ms) {
  char buf[64];
  if (ms >= 1000.0) {
    std::snprintf(buf, sizeof(buf), "%.2f s", ms / 1000.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f ms", ms);
  }
  return buf;
}

std::string TablePrinter::fmt_times(double x) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1fx", x);
  return buf;
}

}  // namespace pc
