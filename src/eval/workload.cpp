#include "eval/workload.h"

#include <algorithm>
#include <cstdio>
#include <functional>

#include "common/error.h"
#include "pml/prompt_builder.h"

namespace pc {

const std::vector<DatasetSpec>& DatasetSpec::longbench8() {
  // Accuracy shapes keep total context under AccuracyWorkload's position
  // budget; latency shapes approximate each dataset's LongBench profile
  // (~4-10K context, task-directive-sized uncached text; TriviaQA carries
  // the largest uncached share, as the paper observes in §5.2.2).
  static const std::vector<DatasetSpec> specs = {
      {"NarrativeQA", TaskMetric::kF1, 1, 6, 2, 80, 0.05, 0.55, 6, 750, 35},
      {"2WikiMQA", TaskMetric::kF1, 3, 3, 2, 30, 0.10, 0.65, 8, 570, 40},
      {"MuSiQue", TaskMetric::kF1, 4, 3, 2, 24, 0.15, 0.75, 9, 600, 45},
      {"GovReport", TaskMetric::kRougeL, 1, 4, 6, 80, 0.00, 0.50, 5, 1000, 25},
      {"QMSum", TaskMetric::kRougeL, 1, 4, 5, 80, 0.00, 0.60, 5, 950, 50},
      {"MultiNews", TaskMetric::kRougeL, 3, 2, 5, 36, 0.00, 0.55, 5, 420, 30},
      {"TriviaQA", TaskMetric::kF1, 2, 4, 1, 44, 0.05, 0.35, 6, 700, 160},
      {"PassageRet", TaskMetric::kAccuracy, 4, 2, 2, 20, 0.45, 0.30, 10, 500,
       35},
  };
  return specs;
}

const std::vector<DatasetSpec>& DatasetSpec::longbench21() {
  // The figure-8 datasets plus the remaining 13 LongBench tasks, shaped by
  // their published category: single-doc QA (Qasper, MultiFieldQA),
  // multi-doc QA (HotpotQA, DuReader), summarization (VCSUM, SAMSum),
  // few-shot classification (TREC, LSHT), synthetic counting/retrieval
  // (PassageCount, PassageRet-zh), and code completion (LCC, RepoBench-P —
  // long cached repository context, short uncached cursor context).
  static const std::vector<DatasetSpec> specs = [] {
    std::vector<DatasetSpec> all = longbench8();
    const std::vector<DatasetSpec> extra = {
        {"Qasper", TaskMetric::kF1, 1, 5, 2, 70, 0.05, 0.50, 5, 720, 40},
        {"MultiFieldQA-en", TaskMetric::kF1, 2, 4, 2, 40, 0.05, 0.45, 6, 800,
         40},
        {"MultiFieldQA-zh", TaskMetric::kF1, 2, 4, 2, 40, 0.05, 0.50, 6, 740,
         40},
        {"HotpotQA", TaskMetric::kF1, 3, 3, 2, 28, 0.10, 0.60, 8, 640, 45},
        {"DuReader", TaskMetric::kRougeL, 2, 3, 5, 50, 0.05, 0.55, 7, 750,
         40},
        {"VCSUM", TaskMetric::kRougeL, 1, 4, 6, 80, 0.00, 0.55, 5, 1050, 25},
        {"TREC", TaskMetric::kAccuracy, 1, 8, 1, 60, 0.00, 0.30, 4, 600, 30},
        {"SAMSum", TaskMetric::kRougeL, 1, 4, 4, 70, 0.00, 0.45, 4, 650, 35},
        {"LSHT", TaskMetric::kAccuracy, 1, 8, 1, 60, 0.00, 0.35, 5, 700, 30},
        {"PassageCount", TaskMetric::kAccuracy, 4, 2, 1, 22, 0.20, 0.30, 9,
         480, 30},
        {"PassageRet-zh", TaskMetric::kAccuracy, 4, 2, 2, 20, 0.45, 0.30, 10,
         470, 35},
        {"LCC", TaskMetric::kF1, 1, 6, 3, 80, 0.00, 0.40, 4, 1150, 60},
        {"RepoBench-P", TaskMetric::kF1, 3, 4, 3, 30, 0.10, 0.50, 7, 820,
         70},
    };
    all.insert(all.end(), extra.begin(), extra.end());
    return all;
  }();
  return specs;
}

namespace {

std::vector<std::string> numbered_pieces(const char* prefix, int count) {
  std::vector<std::string> out;
  out.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%s%02d", prefix, i);
    out.emplace_back(buf);
  }
  return out;
}

uint64_t sample_seed(uint64_t base, const std::string& name, int index) {
  uint64_t h = base;
  for (char c : name) h = h * 1099511628211ULL + static_cast<uint8_t>(c);
  return h * 1099511628211ULL + static_cast<uint64_t>(index);
}

}  // namespace

AccuracyWorkload::AccuracyWorkload(uint64_t seed)
    : tokenizer_(vocab_), seed_(seed) {
  filler_ = numbered_pieces("w", 30);
  keys_ = numbered_pieces("q", 40);
  values_ = numbered_pieces("a", 100);

  std::vector<std::string> pieces = filler_;
  pieces.insert(pieces.end(), keys_.begin(), keys_.end());
  pieces.insert(pieces.end(), values_.begin(), values_.end());
  pieces.emplace_back("question:");
  pieces.emplace_back("summary:");
  pieces.emplace_back("passage");
  pieces.emplace_back(".");
  // Chat-template pieces (multi-turn sessions render role labels).
  pieces.emplace_back("user");
  pieces.emplace_back("assistant");
  pieces.emplace_back("system");
  pieces.emplace_back(":");
  vocab_ = Vocab::from_pieces(pieces, /*byte_fallback=*/false);
  tokenizer_ = Tokenizer(vocab_);
  stop_token_ = *vocab_.find_piece(".");
}

std::string AccuracyWorkload::filler_words(int count, Rng& rng) const {
  std::string out;
  for (int i = 0; i < count; ++i) {
    if (i > 0) out += ' ';
    out += rng.pick(filler_);
  }
  return out;
}

AccuracySample AccuracyWorkload::make_sample(const DatasetSpec& spec,
                                             int sample_index) {
  Rng rng(sample_seed(seed_, spec.name, sample_index));

  const int total_facts = spec.n_docs * spec.facts_per_doc;
  PC_CHECK_MSG(total_facts <= static_cast<int>(keys_.size()),
               "dataset needs more keys than the vocabulary provides");
  PC_CHECK_MSG(total_facts * spec.answer_len <=
                   static_cast<int>(values_.size()),
               "dataset needs more values than the vocabulary provides");

  std::vector<std::string> keys = keys_;
  std::vector<std::string> values = values_;
  rng.shuffle(keys);
  rng.shuffle(values);

  // Build the fact table.
  std::vector<Fact> facts(static_cast<size_t>(total_facts));
  int vi = 0;
  for (int f = 0; f < total_facts; ++f) {
    facts[static_cast<size_t>(f)].key = keys[static_cast<size_t>(f)];
    for (int a = 0; a < spec.answer_len; ++a) {
      facts[static_cast<size_t>(f)].values.push_back(
          values[static_cast<size_t>(vi++)]);
    }
  }

  const int target = static_cast<int>(rng.next_below(
      static_cast<uint64_t>(total_facts)));
  // Straddles are stratified over sample indices so even a 2-sample run
  // sees straddle_fraction of its samples affected (Bernoulli draws would
  // make small-sample tables noisy).
  const auto straddle_count = [&](int n) {
    return static_cast<int>(n * spec.straddle_fraction + 0.5 + 1e-9);
  };
  const bool straddle =
      straddle_count(sample_index + 1) > straddle_count(sample_index);
  // Value-collision difficulty: one of the target's non-final value tokens
  // is also planted as a non-final value of a decoy fact, so the greedy
  // copy chain can fork mid-answer. This hurts baseline and cached alike.
  const bool collide = spec.answer_len >= 2 && spec.collision_rate > 0 &&
                       rng.bernoulli(spec.collision_rate);

  // Summarization datasets query a "summary:"-keyed fact (single global
  // summary, Rouge-L scored).
  if (spec.metric == TaskMetric::kRougeL) {
    facts[static_cast<size_t>(target)].key = "summary:";
  }

  if (collide && total_facts >= 2) {
    // Duplicate a middle value of the target into a decoy fact's middle
    // slot: the chain copies correctly up to the duplicate, then the
    // induction match splits between the two continuations.
    int decoy = static_cast<int>(rng.next_below(
        static_cast<uint64_t>(total_facts)));
    if (decoy == target) decoy = (decoy + 1) % total_facts;
    const size_t slot = spec.answer_len >= 3 ? 1 : 0;
    facts[static_cast<size_t>(decoy)]
        .values[std::min<size_t>(slot, facts[static_cast<size_t>(decoy)]
                                           .values.size() -
                                           2)] =
        facts[static_cast<size_t>(target)].values[slot];
  }

  AccuracySample sample;
  std::string schema = "<schema name=\"" + spec.name + "-" +
                       std::to_string(sample_index) + "\">\n";
  std::vector<std::string> module_names;

  const int filler_run =
      std::max(1, spec.filler_per_doc / (spec.facts_per_doc + 1));
  const int target_doc = target / spec.facts_per_doc;

  for (int d = 0; d < spec.n_docs; ++d) {
    // Document text: filler, then (fact filler)*.
    std::vector<std::string> parts;
    parts.push_back(filler_words(filler_run, rng));
    int split_at = -1;  // character offset where a straddling split occurs
    for (int f = 0; f < spec.facts_per_doc; ++f) {
      const int fi = d * spec.facts_per_doc + f;
      const Fact& fact = facts[static_cast<size_t>(fi)];
      std::string fact_text = fact.key;
      std::string value_text;
      for (const auto& v : fact.values) value_text += " " + v;
      if (straddle && fi == target) {
        // Key ends the first module; values open the second. Module-masked
        // encoding severs the previous-token link between them.
        parts.push_back(fact_text);
        split_at = static_cast<int>(parts.size());
        parts.push_back(value_text + " .");
      } else {
        parts.push_back(fact_text + value_text + " .");
      }
      parts.push_back(filler_words(filler_run, rng));
    }

    auto emit_module = [&](const std::string& mod_name,
                           const std::string& body) {
      schema += "  <module name=\"" + mod_name + "\">" + body + "</module>\n";
      module_names.push_back(mod_name);
      sample.context_tokens +=
          static_cast<int>(tokenizer_.encode(body).size());
    };

    const std::string doc_name = "doc" + std::to_string(d);
    if (d == target_doc && split_at >= 0) {
      std::string part1, part2;
      for (int p = 0; p < static_cast<int>(parts.size()); ++p) {
        std::string& dst = p < split_at ? part1 : part2;
        if (!dst.empty()) dst += ' ';
        dst += parts[static_cast<size_t>(p)];
      }
      emit_module(doc_name + "a", part1);
      emit_module(doc_name + "b", part2);
    } else {
      std::string body;
      for (const auto& p : parts) {
        if (!body.empty()) body += ' ';
        body += p;
      }
      emit_module(doc_name, body);
    }
  }
  schema += "</schema>\n";

  const Fact& answer = facts[static_cast<size_t>(target)];
  sample.question = "question: " + answer.key;
  std::string reference;
  for (const auto& v : answer.values) {
    if (!reference.empty()) reference += ' ';
    reference += v;
  }
  sample.reference = reference;
  sample.schema_pml = std::move(schema);

  pml::PromptBuilder prompt(spec.name + "-" + std::to_string(sample_index));
  for (const auto& mn : module_names) prompt.import(mn);
  prompt.text(sample.question);
  sample.prompt_pml = prompt.str();
  return sample;
}

LatencyWorkload::LatencyWorkload(uint64_t seed)
    : tokenizer_(Vocab::basic_english()), rng_(seed) {
  const Vocab& v = Vocab::basic_english();
  for (TokenId id = v.first_piece_id(); id < v.size(); ++id) {
    const std::string& p = v.piece(id);
    if (p.size() >= 2 &&
        std::all_of(p.begin(), p.end(),
                    [](char c) { return c >= 'a' && c <= 'z'; })) {
      word_pool_.push_back(p);
    }
  }
  PC_CHECK(word_pool_.size() > 100);
}

std::string LatencyWorkload::filler_words(int count) {
  std::string out;
  for (int i = 0; i < count; ++i) {
    if (i > 0) out += ' ';
    out += rng_.pick(word_pool_);
  }
  return out;
}

LatencySample LatencyWorkload::make_sample(const DatasetSpec& spec,
                                           int sample_index, double scale) {
  LatencySample sample;
  const std::string schema_name =
      spec.name + "-lat-" + std::to_string(sample_index);
  std::string schema = "<schema name=\"" + schema_name + "\">\n";
  std::vector<std::string> module_names;
  const int doc_tokens =
      std::max(8, static_cast<int>(spec.latency_doc_tokens * scale));
  for (int d = 0; d < spec.latency_n_docs; ++d) {
    const std::string body = filler_words(doc_tokens);
    const std::string mod_name = "doc" + std::to_string(d);
    schema += "  <module name=\"" + mod_name + "\">" + body + "</module>\n";
    module_names.push_back(mod_name);
    sample.context_tokens +=
        static_cast<int>(tokenizer_.encode(body).size());
  }
  schema += "</schema>\n";
  sample.schema_pml = std::move(schema);

  pml::PromptBuilder prompt(schema_name);
  for (const auto& mn : module_names) prompt.import(mn);
  const std::string question =
      filler_words(std::max(1, spec.latency_question_tokens - 1)) + " ?";
  sample.question_tokens =
      static_cast<int>(tokenizer_.encode(question).size());
  prompt.text(question);
  sample.prompt_pml = prompt.str();
  return sample;
}

LatencySample LatencyWorkload::make_sweep_sample(
    int n_tokens, int n_modules, const std::string& schema_name) {
  PC_CHECK(n_modules > 0 && n_tokens >= n_modules);
  LatencySample sample;
  std::string schema = "<schema name=\"" + schema_name + "\">\n";
  std::vector<std::string> module_names;
  const int per_module = n_tokens / n_modules;
  int remaining = n_tokens;
  for (int d = 0; d < n_modules; ++d) {
    const int count = d + 1 == n_modules ? remaining : per_module;
    remaining -= count;
    const std::string body = filler_words(count);
    const std::string mod_name = "m" + std::to_string(d);
    schema += "  <module name=\"" + mod_name + "\">" + body + "</module>\n";
    module_names.push_back(mod_name);
    sample.context_tokens +=
        static_cast<int>(tokenizer_.encode(body).size());
  }
  schema += "</schema>\n";
  sample.schema_pml = std::move(schema);

  pml::PromptBuilder prompt(schema_name);
  for (const auto& mn : module_names) prompt.import(mn);
  prompt.text("?");
  sample.question_tokens = 1;
  sample.prompt_pml = prompt.str();
  return sample;
}

}  // namespace pc
