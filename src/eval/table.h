// Plain-text table formatting for the benchmark harnesses: aligned columns,
// optional title, printed to any ostream.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace pc {

class TablePrinter {
 public:
  explicit TablePrinter(std::string title = "") : title_(std::move(title)) {}

  void set_header(std::vector<std::string> header) {
    header_ = std::move(header);
  }

  void add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  void print(std::ostream& os) const;

  // Formatting helpers for cells.
  static std::string fmt(double value, int decimals = 2);
  static std::string fmt_ms(double ms);     // adaptive ms/s
  static std::string fmt_times(double x);   // "12.3x"

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pc
