// BM25 lexical retrieval over a document pool.
//
// The paper's closing direction (§6) is retrieval-augmented generation:
// "the information retrieval system basically serves as a database of
// prompt modules." This is that retrieval system — an Okapi BM25 index so
// the RAG example and benchmarks can select which document modules a query
// imports, end to end, without external dependencies.
#pragma once

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/error.h"

namespace pc {

class Bm25Index {
 public:
  // Standard Okapi parameters: k1 term-frequency saturation, b length
  // normalization.
  explicit Bm25Index(double k1 = 1.2, double b = 0.75) : k1_(k1), b_(b) {
    PC_CHECK(k1 > 0 && b >= 0 && b <= 1);
  }

  // Adds a document; `name` is an opaque caller label (e.g. the PML module
  // name). Returns the document's index. Text is normalized (lowercase,
  // punctuation stripped) before indexing.
  int add_document(std::string name, std::string_view text);

  // Must be called after the last add_document and before query().
  void finalize();

  int document_count() const { return static_cast<int>(docs_.size()); }
  const std::string& document_name(int doc) const {
    PC_CHECK(doc >= 0 && doc < document_count());
    return docs_[static_cast<size_t>(doc)].name;
  }

  struct Result {
    int doc = -1;
    double score = 0.0;
  };

  // Top-k documents by BM25 score, best first. Documents with zero overlap
  // are omitted, so fewer than k results may return.
  std::vector<Result> query(std::string_view text, int top_k) const;

  // Inverse document frequency of a (normalized) term; 0 if absent.
  double idf(const std::string& term) const;

 private:
  struct Doc {
    std::string name;
    int length = 0;  // terms
  };
  struct Posting {
    int doc;
    int term_count;
  };

  double k1_;
  double b_;
  bool finalized_ = false;
  double avg_doc_len_ = 0.0;
  std::vector<Doc> docs_;
  std::unordered_map<std::string, std::vector<Posting>> postings_;
};

}  // namespace pc
