#include "eval/metrics.h"

#include <algorithm>
#include <cctype>
#include <unordered_map>

#include "common/string_util.h"

namespace pc {

std::vector<std::string> normalize_answer(std::string_view text) {
  std::string cleaned;
  cleaned.reserve(text.size());
  for (char c : text) {
    if (std::ispunct(static_cast<unsigned char>(c))) {
      cleaned += ' ';
    } else {
      cleaned += static_cast<char>(
          std::tolower(static_cast<unsigned char>(c)));
    }
  }
  return split_whitespace(cleaned);
}

double f1_score(std::string_view prediction, std::string_view reference) {
  const auto pred = normalize_answer(prediction);
  const auto ref = normalize_answer(reference);
  if (pred.empty() || ref.empty()) {
    return (pred.empty() && ref.empty()) ? 1.0 : 0.0;
  }
  std::unordered_map<std::string, int> ref_counts;
  for (const auto& t : ref) ++ref_counts[t];
  int overlap = 0;
  for (const auto& t : pred) {
    auto it = ref_counts.find(t);
    if (it != ref_counts.end() && it->second > 0) {
      --it->second;
      ++overlap;
    }
  }
  if (overlap == 0) return 0.0;
  const double precision = static_cast<double>(overlap) / pred.size();
  const double recall = static_cast<double>(overlap) / ref.size();
  return 2.0 * precision * recall / (precision + recall);
}

size_t lcs_length(const std::vector<std::string>& a,
                  const std::vector<std::string>& b) {
  if (a.empty() || b.empty()) return 0;
  std::vector<size_t> prev(b.size() + 1, 0);
  std::vector<size_t> cur(b.size() + 1, 0);
  for (size_t i = 1; i <= a.size(); ++i) {
    for (size_t j = 1; j <= b.size(); ++j) {
      if (a[i - 1] == b[j - 1]) {
        cur[j] = prev[j - 1] + 1;
      } else {
        cur[j] = std::max(prev[j], cur[j - 1]);
      }
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

double rouge_l(std::string_view prediction, std::string_view reference) {
  const auto pred = normalize_answer(prediction);
  const auto ref = normalize_answer(reference);
  if (pred.empty() || ref.empty()) {
    return (pred.empty() && ref.empty()) ? 1.0 : 0.0;
  }
  const size_t lcs = lcs_length(pred, ref);
  if (lcs == 0) return 0.0;
  const double precision = static_cast<double>(lcs) / pred.size();
  const double recall = static_cast<double>(lcs) / ref.size();
  return 2.0 * precision * recall / (precision + recall);
}

double substring_match(std::string_view prediction,
                       std::string_view reference) {
  const auto pred = normalize_answer(prediction);
  const auto ref = normalize_answer(reference);
  if (ref.empty()) return 1.0;
  if (pred.size() < ref.size()) return 0.0;
  for (size_t start = 0; start + ref.size() <= pred.size(); ++start) {
    bool match = true;
    for (size_t i = 0; i < ref.size(); ++i) {
      if (pred[start + i] != ref[i]) {
        match = false;
        break;
      }
    }
    if (match) return 1.0;
  }
  return 0.0;
}

double exact_match(std::string_view prediction, std::string_view reference) {
  return normalize_answer(prediction) == normalize_answer(reference) ? 1.0
                                                                     : 0.0;
}

}  // namespace pc
