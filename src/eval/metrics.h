// Scoring metrics used by LongBench and hence by Table 1: token-level F1
// (QA tasks), Rouge-L (summarization), and accuracy / exact match
// (passage retrieval). Implemented from scratch over whitespace-split
// normalized tokens, matching the standard definitions.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace pc {

// Lowercases, strips punctuation tokens, and splits on whitespace.
std::vector<std::string> normalize_answer(std::string_view text);

// Token-level F1 between prediction and reference (SQuAD-style): harmonic
// mean of precision and recall over the token multisets.
double f1_score(std::string_view prediction, std::string_view reference);

// Rouge-L F-measure: based on the longest common subsequence between the
// normalized token sequences.
double rouge_l(std::string_view prediction, std::string_view reference);

// 1.0 when normalized prediction contains the normalized reference as a
// contiguous subsequence (substring match, as LongBench scores retrieval).
double substring_match(std::string_view prediction, std::string_view reference);

// 1.0 when the normalized token sequences are identical.
double exact_match(std::string_view prediction, std::string_view reference);

// Longest common subsequence length (exposed for tests).
size_t lcs_length(const std::vector<std::string>& a,
                  const std::vector<std::string>& b);

}  // namespace pc
