// trace_report: offline latency breakdown from a Perfetto trace written by
// obs::write_perfetto_trace (bench_obs, bench_server with PC_TRACE=1, or
// Server::write_trace_json).
//
// Prints per-span aggregates plus a Fig-3-style per-request breakdown:
// each serve span on each lane is decomposed into its direct stage
// children (tokenize_bind, ensure_encoded, kv_concat, prefill, decode),
// with the encode/single-flight detail nested under ensure_encoded and the
// queue wait taken from the serve_request "queue_us" arg. Exits nonzero on
// usage errors or malformed input so CI can use it as a smoke check.
//
// Usage: trace_report <trace.json>
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.h"
#include "obs/json_reader.h"

namespace {

using pc::obs::JsonReader;
using pc::obs::JsonValue;

struct Event {
  std::string name;
  double ts_us = 0;
  double dur_us = 0;
  std::map<std::string, double> args;
};

struct Lane {
  std::string name;
  uint64_t dropped = 0;
  std::vector<Event> events;
};

// Stages attributed directly against a serve span. Disjoint by
// construction: each is a distinct phase of PromptCacheEngine::serve, and
// encode_module / single_flight_wait (which nest inside ensure_encoded)
// are reported as detail lines instead to avoid double counting.
const char* const kStages[] = {"tokenize_bind", "ensure_encoded", "kv_concat",
                               "prefill", "decode"};

struct Agg {
  uint64_t count = 0;
  double total_us = 0;
  double max_us = 0;

  void add(double us) {
    ++count;
    total_us += us;
    max_us = std::max(max_us, us);
  }
  double mean_us() const {
    return count == 0 ? 0 : total_us / static_cast<double>(count);
  }
};

bool contains(const Event& outer, const Event& inner) {
  return &outer != &inner && inner.ts_us >= outer.ts_us &&
         inner.ts_us + inner.dur_us <= outer.ts_us + outer.dur_us;
}

std::map<int64_t, Lane> load_lanes(const JsonValue& root) {
  std::map<int64_t, Lane> lanes;
  const JsonValue& events = root["traceEvents"];
  PC_CHECK_MSG(events.is_array(), "trace has no traceEvents array");
  for (const JsonValue& e : events.array) {
    if (!e.is_object()) continue;
    const int64_t tid = static_cast<int64_t>(e["tid"].as_number(-1));
    Lane& lane = lanes[tid];
    const std::string& ph = e["ph"].as_string();
    const std::string& name = e["name"].as_string();
    if (ph == "M") {
      if (name == "thread_name") lane.name = e["args"]["name"].as_string();
    } else if (ph == "i") {
      if (name == "ring_dropped_events") {
        lane.dropped +=
            static_cast<uint64_t>(e["args"]["dropped"].as_number(0));
      }
    } else if (ph == "X") {
      Event ev;
      ev.name = name;
      ev.ts_us = e["ts"].as_number(0);
      ev.dur_us = e["dur"].as_number(0);
      for (const auto& [key, value] : e["args"].object) {
        ev.args[key] = value.as_number(0);
      }
      lane.events.push_back(std::move(ev));
    }
  }
  for (auto& [tid, lane] : lanes) {
    (void)tid;
    std::sort(lane.events.begin(), lane.events.end(),
              [](const Event& a, const Event& b) {
                return a.ts_us != b.ts_us ? a.ts_us < b.ts_us
                                          : a.dur_us > b.dur_us;
              });
  }
  return lanes;
}

void print_table_row(const std::string& label, const Agg& a,
                     double share_base_us, int indent = 0) {
  if (a.count == 0) return;
  char line[160];
  const std::string name(std::string(static_cast<size_t>(indent), ' ') +
                         label);
  std::snprintf(line, sizeof(line),
                "  %-26s %8" PRIu64 " %11.3f %11.4f %8.1f%%\n", name.c_str(),
                a.count, a.total_us / 1e3, a.mean_us() / 1e3,
                share_base_us > 0 ? 100.0 * a.total_us / share_base_us : 0.0);
  std::cout << line;
}

int report(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "trace_report: cannot open " << path << "\n";
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const JsonValue root = JsonReader::parse(buf.str());
  const std::map<int64_t, Lane> lanes = load_lanes(root);

  size_t total_events = 0;
  uint64_t dropped = 0;
  int worker_lanes = 0;
  for (const auto& [tid, lane] : lanes) {
    (void)tid;
    total_events += lane.events.size();
    dropped += lane.dropped;
    if (!lane.events.empty() && lane.name.rfind("worker", 0) == 0) {
      ++worker_lanes;
    }
  }
  std::cout << "trace: " << path << "\n"
            << "lanes: " << lanes.size() << " (" << worker_lanes
            << " worker), events: " << total_events
            << ", dropped: " << dropped << "\n";

  // Per-span aggregates across all lanes.
  std::map<std::string, Agg> by_name;
  for (const auto& [tid, lane] : lanes) {
    (void)tid;
    for (const Event& e : lane.events) by_name[e.name].add(e.dur_us);
  }
  std::cout << "\n== span aggregates ==\n";
  char line[160];
  std::snprintf(line, sizeof(line), "  %-26s %8s %11s %11s %11s\n", "span",
                "count", "total ms", "mean ms", "max ms");
  std::cout << line;
  for (const auto& [name, a] : by_name) {
    std::snprintf(line, sizeof(line),
                  "  %-26s %8" PRIu64 " %11.3f %11.4f %11.3f\n", name.c_str(),
                  a.count, a.total_us / 1e3, a.mean_us() / 1e3,
                  a.max_us / 1e3);
    std::cout << line;
  }

  // Fig-3-style breakdown: decompose every serve / serve_baseline span
  // into its stage children, per lane (spans nest strictly per thread).
  Agg serve_total, other;
  std::map<std::string, Agg> stage_agg;
  Agg encode_detail, single_flight_detail, queue_wait, link_stall;
  for (const auto& [tid, lane] : lanes) {
    (void)tid;
    for (const Event& outer : lane.events) {
      if (outer.name == "serve_request") {
        const auto q = outer.args.find("queue_us");
        if (q != outer.args.end()) queue_wait.add(q->second);
        continue;
      }
      if (outer.name == "link_stall") {
        link_stall.add(outer.dur_us);
        continue;
      }
      if (outer.name != "serve" && outer.name != "serve_baseline") continue;
      serve_total.add(outer.dur_us);
      double attributed_us = 0;
      for (const Event& child : lane.events) {
        if (!contains(outer, child)) continue;
        for (const char* stage : kStages) {
          if (child.name == stage) {
            stage_agg[stage].add(child.dur_us);
            attributed_us += child.dur_us;
            break;
          }
        }
        if (child.name == "encode_module" || child.name == "encode_scaffold") {
          encode_detail.add(child.dur_us);
        } else if (child.name == "single_flight_wait") {
          single_flight_detail.add(child.dur_us);
        }
      }
      other.add(std::max(0.0, outer.dur_us - attributed_us));
    }
  }

  std::cout << "\n== request breakdown (Fig. 3 style) ==\n";
  if (serve_total.count == 0) {
    std::cout << "  (no serve spans in trace)\n";
    return 0;
  }
  std::snprintf(line, sizeof(line), "  %-26s %8s %11s %11s %9s\n", "stage",
                "count", "total ms", "mean ms", "share");
  std::cout << line;
  for (const char* stage : kStages) {
    print_table_row(stage, stage_agg[stage], serve_total.total_us);
    if (std::string(stage) == "ensure_encoded") {
      print_table_row("encode payloads", encode_detail, serve_total.total_us,
                      2);
      print_table_row("single-flight wait", single_flight_detail,
                      serve_total.total_us, 2);
    }
  }
  print_table_row("(unattributed)", other, serve_total.total_us);
  print_table_row("serve total", serve_total, serve_total.total_us);
  if (queue_wait.count > 0 || link_stall.count > 0) {
    std::cout << "\n== outside serve ==\n";
    std::snprintf(line, sizeof(line), "  %-26s %8s %11s %11s\n", "stage",
                  "count", "total ms", "mean ms");
    std::cout << line;
    const auto row = [&](const char* label, const Agg& a) {
      if (a.count == 0) return;
      std::snprintf(line, sizeof(line), "  %-26s %8" PRIu64 " %11.3f %11.4f\n",
                    label, a.count, a.total_us / 1e3, a.mean_us() / 1e3);
      std::cout << line;
    };
    row("queue wait", queue_wait);
    row("link_stall", link_stall);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::cerr << "usage: trace_report <trace.json>\n";
    return 2;
  }
  try {
    return report(argv[1]);
  } catch (const pc::Error& e) {
    std::cerr << "trace_report: " << e.what() << "\n";
    return 1;
  }
}
