// trace_report: offline latency breakdown from a Perfetto trace written by
// obs::write_perfetto_trace (bench_obs, bench_server with PC_TRACE=1, or
// Server::write_trace_json).
//
// Prints per-span aggregates plus a Fig-3-style per-request breakdown:
// each serve span on each lane is decomposed into its direct stage
// children (tokenize_bind, ensure_encoded, kv_concat, prefill, decode),
// with the encode/single-flight detail nested under ensure_encoded and the
// queue wait taken from the serve_request "queue_us" arg. Exits nonzero on
// usage errors or malformed input so CI can use it as a smoke check.
//
// Request-inspector mode: trace_report --requests <requests.jsonl> reads a
// request-timeline log (Server::write_request_log or the PC_REQLOG sink,
// one timeline_json object per line), validates it (unique ids, exactly one
// terminal outcome each), and prints outcome counts, an aggregate
// cache-efficacy table, the mean TTFT critical path, and a top-N slowest
// waterfall. Exits nonzero on violations so CI can use it as an invariant
// check over chaos runs.
//
// Usage: trace_report <trace.json>
//        trace_report --requests <requests.jsonl> [--top N]
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.h"
#include "obs/json_reader.h"

namespace {

using pc::obs::JsonReader;
using pc::obs::JsonValue;

struct Event {
  std::string name;
  double ts_us = 0;
  double dur_us = 0;
  std::map<std::string, double> args;
};

struct Lane {
  std::string name;
  uint64_t dropped = 0;
  std::vector<Event> events;
};

// Stages attributed directly against a serve span. Disjoint by
// construction: each is a distinct phase of PromptCacheEngine::serve, and
// encode_module / single_flight_wait (which nest inside ensure_encoded)
// are reported as detail lines instead to avoid double counting.
const char* const kStages[] = {"tokenize_bind", "ensure_encoded", "kv_concat",
                               "prefill", "decode"};

struct Agg {
  uint64_t count = 0;
  double total_us = 0;
  double max_us = 0;

  void add(double us) {
    ++count;
    total_us += us;
    max_us = std::max(max_us, us);
  }
  double mean_us() const {
    return count == 0 ? 0 : total_us / static_cast<double>(count);
  }
};

bool contains(const Event& outer, const Event& inner) {
  return &outer != &inner && inner.ts_us >= outer.ts_us &&
         inner.ts_us + inner.dur_us <= outer.ts_us + outer.dur_us;
}

std::map<int64_t, Lane> load_lanes(const JsonValue& root) {
  std::map<int64_t, Lane> lanes;
  const JsonValue& events = root["traceEvents"];
  PC_CHECK_MSG(events.is_array(), "trace has no traceEvents array");
  for (const JsonValue& e : events.array) {
    if (!e.is_object()) continue;
    const int64_t tid = static_cast<int64_t>(e["tid"].as_number(-1));
    Lane& lane = lanes[tid];
    const std::string& ph = e["ph"].as_string();
    const std::string& name = e["name"].as_string();
    if (ph == "M") {
      if (name == "thread_name") lane.name = e["args"]["name"].as_string();
    } else if (ph == "i") {
      if (name == "ring_dropped_events") {
        lane.dropped +=
            static_cast<uint64_t>(e["args"]["dropped"].as_number(0));
      }
    } else if (ph == "X") {
      Event ev;
      ev.name = name;
      ev.ts_us = e["ts"].as_number(0);
      ev.dur_us = e["dur"].as_number(0);
      for (const auto& [key, value] : e["args"].object) {
        ev.args[key] = value.as_number(0);
      }
      lane.events.push_back(std::move(ev));
    }
  }
  for (auto& [tid, lane] : lanes) {
    (void)tid;
    std::sort(lane.events.begin(), lane.events.end(),
              [](const Event& a, const Event& b) {
                return a.ts_us != b.ts_us ? a.ts_us < b.ts_us
                                          : a.dur_us > b.dur_us;
              });
  }
  return lanes;
}

void print_table_row(const std::string& label, const Agg& a,
                     double share_base_us, int indent = 0) {
  if (a.count == 0) return;
  char line[160];
  const std::string name(std::string(static_cast<size_t>(indent), ' ') +
                         label);
  std::snprintf(line, sizeof(line),
                "  %-26s %8" PRIu64 " %11.3f %11.4f %8.1f%%\n", name.c_str(),
                a.count, a.total_us / 1e3, a.mean_us() / 1e3,
                share_base_us > 0 ? 100.0 * a.total_us / share_base_us : 0.0);
  std::cout << line;
}

int report(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "trace_report: cannot open " << path << "\n";
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const JsonValue root = JsonReader::parse(buf.str());
  const std::map<int64_t, Lane> lanes = load_lanes(root);

  size_t total_events = 0;
  uint64_t dropped = 0;
  int worker_lanes = 0;
  for (const auto& [tid, lane] : lanes) {
    (void)tid;
    total_events += lane.events.size();
    dropped += lane.dropped;
    if (!lane.events.empty() && lane.name.rfind("worker", 0) == 0) {
      ++worker_lanes;
    }
  }
  std::cout << "trace: " << path << "\n"
            << "lanes: " << lanes.size() << " (" << worker_lanes
            << " worker), events: " << total_events
            << ", dropped: " << dropped << "\n";

  // Per-span aggregates across all lanes.
  std::map<std::string, Agg> by_name;
  for (const auto& [tid, lane] : lanes) {
    (void)tid;
    for (const Event& e : lane.events) by_name[e.name].add(e.dur_us);
  }
  std::cout << "\n== span aggregates ==\n";
  char line[160];
  std::snprintf(line, sizeof(line), "  %-26s %8s %11s %11s %11s\n", "span",
                "count", "total ms", "mean ms", "max ms");
  std::cout << line;
  for (const auto& [name, a] : by_name) {
    std::snprintf(line, sizeof(line),
                  "  %-26s %8" PRIu64 " %11.3f %11.4f %11.3f\n", name.c_str(),
                  a.count, a.total_us / 1e3, a.mean_us() / 1e3,
                  a.max_us / 1e3);
    std::cout << line;
  }

  // Fig-3-style breakdown: decompose every serve / serve_baseline span
  // into its stage children, per lane (spans nest strictly per thread).
  Agg serve_total, other;
  std::map<std::string, Agg> stage_agg;
  Agg encode_detail, single_flight_detail, queue_wait, link_stall;
  for (const auto& [tid, lane] : lanes) {
    (void)tid;
    for (const Event& outer : lane.events) {
      if (outer.name == "serve_request") {
        const auto q = outer.args.find("queue_us");
        if (q != outer.args.end()) queue_wait.add(q->second);
        continue;
      }
      if (outer.name == "link_stall") {
        link_stall.add(outer.dur_us);
        continue;
      }
      if (outer.name != "serve" && outer.name != "serve_baseline") continue;
      serve_total.add(outer.dur_us);
      double attributed_us = 0;
      for (const Event& child : lane.events) {
        if (!contains(outer, child)) continue;
        for (const char* stage : kStages) {
          if (child.name == stage) {
            stage_agg[stage].add(child.dur_us);
            attributed_us += child.dur_us;
            break;
          }
        }
        if (child.name == "encode_module" || child.name == "encode_scaffold") {
          encode_detail.add(child.dur_us);
        } else if (child.name == "single_flight_wait") {
          single_flight_detail.add(child.dur_us);
        }
      }
      other.add(std::max(0.0, outer.dur_us - attributed_us));
    }
  }

  std::cout << "\n== request breakdown (Fig. 3 style) ==\n";
  if (serve_total.count == 0) {
    std::cout << "  (no serve spans in trace)\n";
    return 0;
  }
  std::snprintf(line, sizeof(line), "  %-26s %8s %11s %11s %9s\n", "stage",
                "count", "total ms", "mean ms", "share");
  std::cout << line;
  for (const char* stage : kStages) {
    print_table_row(stage, stage_agg[stage], serve_total.total_us);
    if (std::string(stage) == "ensure_encoded") {
      print_table_row("encode payloads", encode_detail, serve_total.total_us,
                      2);
      print_table_row("single-flight wait", single_flight_detail,
                      serve_total.total_us, 2);
    }
  }
  print_table_row("(unattributed)", other, serve_total.total_us);
  print_table_row("serve total", serve_total, serve_total.total_us);
  if (queue_wait.count > 0 || link_stall.count > 0) {
    std::cout << "\n== outside serve ==\n";
    std::snprintf(line, sizeof(line), "  %-26s %8s %11s %11s\n", "stage",
                  "count", "total ms", "mean ms");
    std::cout << line;
    const auto row = [&](const char* label, const Agg& a) {
      if (a.count == 0) return;
      std::snprintf(line, sizeof(line), "  %-26s %8" PRIu64 " %11.3f %11.4f\n",
                    label, a.count, a.total_us / 1e3, a.mean_us() / 1e3);
      std::cout << line;
    };
    row("queue wait", queue_wait);
    row("link_stall", link_stall);
  }
  return 0;
}

// ---------------------------------------------------------------------------
// --requests mode: request-timeline JSONL inspector.

struct Req {
  uint64_t id = 0;
  uint64_t server = 0;  // instance tag: ids restart at 0 per server
  int lane = -1;
  bool batched = false;
  std::string outcome;
  double queue_ms = 0, encode_ms = 0, retrieve_ms = 0, transfer_ms = 0;
  double prefill_ms = 0, decode_ms = 0, ttft_ms = 0, service_ms = 0;
  double predicted_ttft_ms = 0;
  int64_t cached = 0, uncached = 0, modules = 0, misses = 0, chunks = 0;
  double bytes_host = 0, bytes_device = 0, bytes_zero = 0, dequant_rows = 0;
  std::string kv_format, detail;
  int retries = 0;
  bool deadline_met = true;
  size_t annotations = 0;
};

bool is_served_outcome(const std::string& o) {
  return o == "ok" || o == "degraded";
}

std::vector<Req> load_requests(const std::string& path) {
  std::ifstream in(path);
  PC_CHECK_MSG(static_cast<bool>(in), "cannot open " << path);
  std::vector<Req> reqs;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const JsonValue v = JsonReader::parse(line);
    PC_CHECK_MSG(v.is_object(), "line " << line_no << ": not a JSON object");
    Req r;
    r.id = static_cast<uint64_t>(v["id"].as_number(0));
    r.server = static_cast<uint64_t>(v["server"].as_number(0));
    r.lane = static_cast<int>(v["lane"].as_number(-1));
    r.batched = v["batched"].boolean;
    r.outcome = v["outcome"].as_string();
    r.queue_ms = v["queue_ms"].as_number(0);
    r.encode_ms = v["encode_ms"].as_number(0);
    r.retrieve_ms = v["retrieve_ms"].as_number(0);
    r.transfer_ms = v["transfer_ms"].as_number(0);
    r.prefill_ms = v["prefill_ms"].as_number(0);
    r.decode_ms = v["decode_ms"].as_number(0);
    r.ttft_ms = v["ttft_ms"].as_number(0);
    r.service_ms = v["service_ms"].as_number(0);
    r.predicted_ttft_ms = v["predicted_ttft_ms"].as_number(0);
    r.cached = static_cast<int64_t>(v["cached_tokens"].as_number(0));
    r.uncached = static_cast<int64_t>(v["uncached_tokens"].as_number(0));
    r.modules = static_cast<int64_t>(v["modules"].as_number(0));
    r.misses = static_cast<int64_t>(v["module_misses"].as_number(0));
    r.chunks = static_cast<int64_t>(v["prefill_chunks"].as_number(0));
    r.bytes_host = v["bytes_from_host"].as_number(0);
    r.bytes_device = v["bytes_from_device"].as_number(0);
    r.bytes_zero = v["bytes_zero_copy"].as_number(0);
    r.dequant_rows = v["dequant_rows"].as_number(0);
    r.kv_format = v["kv_format"].as_string();
    r.detail = v["detail"].as_string();
    r.retries = static_cast<int>(v["retries"].as_number(0));
    r.deadline_met = v["deadline_met"].boolean;
    r.annotations = v["annotations"].array.size();
    PC_CHECK_MSG(v["outcome"].kind == JsonValue::Kind::kString,
                 "line " << line_no << ": missing outcome");
    reqs.push_back(std::move(r));
  }
  return reqs;
}

// Scaled phase waterfall: one character per bucket, left to right in
// lifecycle order — '.' queue, 'e' encode, 't' transfer, 'r' retrieve,
// 'p' prefill, 'd' decode.
std::string waterfall(const Req& r, double scale_ms, int width) {
  const struct {
    char c;
    double ms;
  } phases[] = {{'.', r.queue_ms},    {'e', r.encode_ms},
                {'t', r.transfer_ms}, {'r', r.retrieve_ms},
                {'p', r.prefill_ms},  {'d', r.decode_ms}};
  std::string out;
  if (scale_ms <= 0) return out;
  for (const auto& ph : phases) {
    const int cells = static_cast<int>(ph.ms / scale_ms *
                                       static_cast<double>(width));
    out.append(static_cast<size_t>(std::max(ph.ms > 0 ? 1 : 0, cells)),
               ph.c);
  }
  if (static_cast<int>(out.size()) > width) out.resize(static_cast<size_t>(width));
  return out;
}

int report_requests(const std::string& path, int top_n) {
  const std::vector<Req> reqs = load_requests(path);
  std::cout << "request log: " << path << "\n";
  if (reqs.empty()) {
    std::cout << "  (no requests)\n";
    return 0;
  }

  // Invariants: every (server, id) pair unique — ids restart at 0 per
  // server and a process-wide PC_REQLOG may span several — and every
  // record carries a terminal outcome.
  std::set<std::pair<uint64_t, uint64_t>> ids;
  std::map<std::string, uint64_t> outcomes;
  int violations = 0;
  for (const Req& r : reqs) {
    if (!ids.insert({r.server, r.id}).second) {
      std::cerr << "VIOLATION: duplicate request id " << r.id
                << " (server " << r.server << ")\n";
      ++violations;
    }
    if (r.outcome == "pending" || r.outcome.empty()) {
      std::cerr << "VIOLATION: request " << r.id
                << " has no terminal outcome\n";
      ++violations;
    }
    ++outcomes[r.outcome];
  }

  std::cout << "requests: " << reqs.size() << "  outcomes:";
  for (const auto& [name, n] : outcomes) {
    std::cout << " " << name << "=" << n;
  }
  std::cout << "\n";

  uint64_t retries = 0, misses_deadline = 0, with_annotations = 0;
  for (const Req& r : reqs) {
    retries += static_cast<uint64_t>(r.retries);
    if (!r.deadline_met) ++misses_deadline;
    if (r.annotations > 0) ++with_annotations;
  }
  std::cout << "retries: " << retries
            << ", deadline misses: " << misses_deadline
            << ", annotated: " << with_annotations << "\n";

  // Cache efficacy over served requests.
  int64_t cached = 0, uncached = 0, modules = 0, misses = 0, chunks = 0;
  double bytes_host = 0, bytes_device = 0, bytes_zero = 0, dequant = 0;
  uint64_t served = 0;
  std::set<std::string> formats;
  for (const Req& r : reqs) {
    misses += r.misses;  // encodes happen on any outcome that reached a lane
    if (!is_served_outcome(r.outcome)) continue;
    ++served;
    cached += r.cached;
    uncached += r.uncached;
    modules += r.modules;
    chunks += r.chunks;
    bytes_host += r.bytes_host;
    bytes_device += r.bytes_device;
    bytes_zero += r.bytes_zero;
    dequant += r.dequant_rows;
    if (!r.kv_format.empty()) formats.insert(r.kv_format);
  }
  std::cout << "\n== cache efficacy (served requests) ==\n";
  const int64_t prompt_tokens = cached + uncached;
  char line[200];
  std::snprintf(line, sizeof(line),
                "  prompt tokens: %" PRId64 " (cached %" PRId64
                ", uncached %" PRId64 ", cached share %.1f%%)\n",
                prompt_tokens, cached, uncached,
                prompt_tokens > 0
                    ? 100.0 * static_cast<double>(cached) /
                          static_cast<double>(prompt_tokens)
                    : 0.0);
  std::cout << line;
  const int64_t lookups = modules + misses;
  std::snprintf(line, sizeof(line),
                "  modules reused: %" PRId64 ", encoded (misses): %" PRId64
                " (hit share %.1f%%), prefill chunks: %" PRId64 "\n",
                modules, misses,
                lookups > 0 ? 100.0 * static_cast<double>(modules) /
                                  static_cast<double>(lookups)
                            : 0.0,
                chunks);
  std::cout << line;
  std::snprintf(line, sizeof(line),
                "  KV moved: host %.1f KiB, device %.1f KiB, zero-copy %.1f "
                "KiB, dequant rows %.0f\n",
                bytes_host / 1024, bytes_device / 1024, bytes_zero / 1024,
                dequant);
  std::cout << line;
  std::cout << "  kv formats:";
  for (const auto& f : formats) std::cout << " " << f;
  std::cout << "\n";

  // Mean TTFT critical path over served requests. The phases are disjoint
  // components of the end-to-end TTFT (queue + transfer + retrieve +
  // prefill); encode and decode sit outside it but are shown for context.
  if (served > 0) {
    double q = 0, e = 0, t = 0, rtr = 0, p = 0, d = 0, ttft = 0, drift_sum = 0;
    uint64_t drift_n = 0;
    for (const Req& r : reqs) {
      if (!is_served_outcome(r.outcome)) continue;
      q += r.queue_ms;
      e += r.encode_ms;
      t += r.transfer_ms;
      rtr += r.retrieve_ms;
      p += r.prefill_ms;
      d += r.decode_ms;
      ttft += r.ttft_ms;
      if (r.predicted_ttft_ms > 0) {
        drift_sum += (r.retrieve_ms + r.prefill_ms) / r.predicted_ttft_ms;
        ++drift_n;
      }
    }
    const double n = static_cast<double>(served);
    std::cout << "\n== mean TTFT critical path (" << served << " served) ==\n";
    const auto row = [&](const char* label, double total, bool in_ttft) {
      std::snprintf(line, sizeof(line), "  %-12s %9.3f ms %s\n", label,
                    total / n,
                    in_ttft && ttft > 0
                        ? (std::string("(") +
                           std::to_string(static_cast<int>(
                               100.0 * total / ttft)) +
                           "% of TTFT)")
                              .c_str()
                        : "");
      std::cout << line;
    };
    row("queue", q, true);
    row("transfer", t, true);
    row("retrieve", rtr, true);
    row("prefill", p, true);
    row("ttft (e2e)", ttft, false);
    row("encode", e, false);
    row("decode", d, false);
    if (drift_n > 0) {
      std::snprintf(line, sizeof(line),
                    "  model drift: measured/predicted engine TTFT = %.2fx "
                    "over %" PRIu64 " predicted serves\n",
                    drift_sum / static_cast<double>(drift_n), drift_n);
      std::cout << line;
    }
  }

  // Top-N slowest served requests, with a scaled phase waterfall.
  std::vector<const Req*> slow;
  for (const Req& r : reqs) {
    if (is_served_outcome(r.outcome)) slow.push_back(&r);
  }
  std::sort(slow.begin(), slow.end(), [](const Req* a, const Req* b) {
    return a->ttft_ms > b->ttft_ms;
  });
  if (static_cast<int>(slow.size()) > top_n) {
    slow.resize(static_cast<size_t>(top_n));
  }
  if (!slow.empty()) {
    const double scale = slow.front()->ttft_ms;
    std::cout << "\n== slowest requests (.queue e:encode t:transfer "
                 "r:retrieve p:prefill d:decode) ==\n";
    for (const Req* r : slow) {
      std::snprintf(line, sizeof(line),
                    "  #%-6" PRIu64 " %-8s lane %2d  ttft %9.3f ms  "
                    "cached %4" PRId64 "/%-4" PRId64 " |%s\n",
                    r->id, r->outcome.c_str(), r->lane, r->ttft_ms, r->cached,
                    r->cached + r->uncached,
                    waterfall(*r, scale, 40).c_str());
      std::cout << line;
    }
  }

  if (violations > 0) {
    std::cerr << "trace_report: " << violations << " invariant violation(s)\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  try {
    if (!args.empty() && args[0] == "--requests") {
      int top_n = 10;
      if (args.size() == 4 && args[2] == "--top") {
        top_n = std::atoi(args[3].c_str());
      } else if (args.size() != 2) {
        std::cerr << "usage: trace_report --requests <requests.jsonl> "
                     "[--top N]\n";
        return 2;
      }
      if (top_n <= 0) top_n = 10;
      return report_requests(args[1], top_n);
    }
    if (args.size() != 1) {
      std::cerr << "usage: trace_report <trace.json>\n"
                   "       trace_report --requests <requests.jsonl> [--top N]\n";
      return 2;
    }
    return report(args[0]);
  } catch (const pc::Error& e) {
    std::cerr << "trace_report: " << e.what() << "\n";
    return 1;
  }
}
