// pml_lint — validate PML documents and inspect schema layouts.
//
//   pml_lint schema.pml               validate + print the layout table
//   pml_lint schema.pml prompt.pml    additionally bind the prompt and
//                                     print its serving plan
//   pml_lint --template llama2 ...    expand role tags for a model family
//   pml_lint --emit schema.pml        print the canonical (template-
//                                     compiled) form of the schema
//
// Exit status: 0 valid, 1 validation error, 2 usage/IO error.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "common/error.h"
#include "eval/table.h"
#include "pml/prompt.h"
#include "pml/schema.h"
#include "pml/writer.h"
#include "tokenizer/tokenizer.h"

namespace {

using namespace pc;

std::string read_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw Error("cannot read '" + path + "'");
  std::stringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

TemplateStyle parse_style(const std::string& name) {
  if (name == "plain") return TemplateStyle::kPlain;
  if (name == "llama2") return TemplateStyle::kLlama2;
  if (name == "chatml") return TemplateStyle::kChatML;
  if (name == "falcon") return TemplateStyle::kFalcon;
  throw Error("unknown template style '" + name +
              "' (plain|llama2|chatml|falcon)");
}

void print_schema(const pml::Schema& schema) {
  std::cout << "schema '" << schema.name << "': " << schema.modules.size()
            << " modules (" << schema.anonymous_modules.size()
            << " anonymous), " << schema.unions.size() << " unions, "
            << schema.total_positions << " positions\n";

  TablePrinter table("module layout");
  table.set_header({"module", "parent", "union", "positions", "own tokens",
                    "params"});
  for (size_t i = 0; i < schema.modules.size(); ++i) {
    const pml::ModuleNode& m = schema.modules[i];
    std::string params;
    for (const auto& p : m.params) {
      if (!params.empty()) params += ", ";
      params += p.name + "(len=" + std::to_string(p.max_len) + ")";
    }
    table.add_row(
        {m.name + (m.anonymous ? " (anon)" : ""),
         m.parent == -1 ? "-" : schema.module(m.parent).name,
         m.union_id == -1 ? "-" : std::to_string(m.union_id),
         "[" + std::to_string(m.start_pos) + ", " +
             std::to_string(m.end_pos) + ")",
         std::to_string(m.own_token_count()), params.empty() ? "-" : params});
  }
  table.print(std::cout);
}

void print_binding(const pml::Schema& schema,
                   const pml::PromptBinding& binding) {
  std::cout << "\nserving plan: " << binding.modules.size()
            << " cached modules (" << binding.cached_token_count()
            << " tokens reused), " << binding.uncached_token_count()
            << " tokens computed, generation resumes at position "
            << binding.next_pos << "\n";
  TablePrinter table("concatenation order");
  table.set_header({"#", "module", "positions"});
  for (size_t i = 0; i < binding.modules.size(); ++i) {
    const pml::ModuleNode& m = schema.module(binding.modules[i]);
    table.add_row({std::to_string(i), m.name,
                   "[" + std::to_string(m.start_pos) + ", " +
                       std::to_string(m.end_pos) + ")"});
  }
  table.print(std::cout);
  if (!binding.args.empty()) {
    TablePrinter args("arguments");
    args.set_header({"module", "param", "tokens", "at position"});
    for (const auto& a : binding.args) {
      const pml::ModuleNode& m = schema.module(a.module_index);
      args.add_row({m.name,
                    m.params[static_cast<size_t>(a.param_index)].name,
                    std::to_string(a.tokens.size()),
                    std::to_string(a.start_pos)});
    }
    args.print(std::cout);
  }
  for (const std::string& w : binding.warnings) {
    std::cout << "warning: " << w << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string schema_path;
  std::string prompt_path;
  TemplateStyle style = TemplateStyle::kPlain;
  bool emit = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--emit") {
      emit = true;
    } else if (arg == "--template") {
      if (i + 1 >= argc) {
        std::cerr << "--template needs a value\n";
        return 2;
      }
      try {
        style = parse_style(argv[++i]);
      } catch (const Error& e) {
        std::cerr << e.what() << "\n";
        return 2;
      }
    } else if (schema_path.empty()) {
      schema_path = arg;
    } else if (prompt_path.empty()) {
      prompt_path = arg;
    } else {
      std::cerr << "too many arguments\n";
      return 2;
    }
  }
  if (schema_path.empty()) {
    std::cerr << "usage: pml_lint [--template STYLE] schema.pml "
                 "[prompt.pml]\n";
    return 2;
  }

  const Tokenizer tokenizer(Vocab::basic_english());
  const ChatTemplate chat_template(style);
  try {
    const pml::Schema schema = pml::Schema::parse(
        read_file(schema_path), tokenizer, chat_template);
    if (emit) {
      std::cout << pml::write_schema(schema);
      return 0;
    }
    print_schema(schema);
    if (!prompt_path.empty()) {
      const pml::PromptAst ast = pml::parse_prompt(read_file(prompt_path));
      const pml::PromptBinding binding =
          pml::bind_prompt(schema, ast, tokenizer);
      print_binding(schema, binding);
    }
    std::cout << "\nOK\n";
    return 0;
  } catch (const Error& e) {
    std::cerr << "INVALID: " << e.what() << "\n";
    return 1;
  }
}
