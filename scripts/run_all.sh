#!/usr/bin/env bash
# Full reproduction driver: build, test, run every example and every
# benchmark, capturing outputs. PC_FULL=1 scales the benchmarks to
# paper-sized contexts and sample counts. PC_CHECK=1 additionally runs
# scripts/check.sh (Release + asan/ubsan test passes) first.
set -euo pipefail
cd "$(dirname "$0")/.."

if [ "${PC_CHECK:-0}" != "0" ]; then
  echo "== opt-in sanitizer/Release gate (PC_CHECK=1)"
  scripts/check.sh
fi

echo "== configure + build"
cmake -B build -G Ninja
cmake --build build

echo "== tests"
ctest --test-dir build --output-on-failure 2>&1 | tee test_output.txt

echo "== examples"
for e in build/examples/*; do
  [ -f "$e" ] && [ -x "$e" ] || continue
  echo "---- $e"
  "$e"
done

echo "== benchmarks"
: > bench_output.txt
for b in build/bench/bench_*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  echo "---- $b"
  "$b" 2>&1 | tee -a bench_output.txt
done

echo "== done: see test_output.txt and bench_output.txt"
