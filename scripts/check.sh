#!/usr/bin/env bash
# Correctness gate: build and run the test suite under two configurations —
#   1. Release (-O3, the shipping optimization level), and
#   2. Debug with AddressSanitizer + UndefinedBehaviorSanitizer,
# each in its own build directory so neither pollutes the default ./build.
# The SIMD kernels and the lock-free-ish thread-pool chunk claiming are
# exactly the kind of code asan/ubsan catches regressions in.
#
# Usage: scripts/check.sh          (both configs)
#        scripts/check.sh release  (just Release)
#        scripts/check.sh asan     (just sanitizers)
#        scripts/check.sh tsan     (ThreadSanitizer — opt-in, not in `all`:
#                                   TSan and ASan cannot share a process, and
#                                   the shared-store/server tests are the
#                                   code it targets)
set -euo pipefail
cd "$(dirname "$0")/.."

want="${1:-all}"
case "$want" in
  all|release|asan|tsan) ;;
  *) echo "usage: scripts/check.sh [all|release|asan|tsan]" >&2; exit 2 ;;
esac

run_config() {
  local name="$1" build_dir="$2"; shift 2
  echo "== [$name] configure + build ($build_dir)"
  cmake -B "$build_dir" -S . "$@" >/dev/null
  cmake --build "$build_dir" -j
  echo "== [$name] ctest"
  ctest --test-dir "$build_dir" --output-on-failure -j
}

if [ "$want" = "all" ] || [ "$want" = "release" ]; then
  run_config release build-release -DCMAKE_BUILD_TYPE=Release
fi

if [ "$want" = "all" ] || [ "$want" = "asan" ]; then
  run_config asan build-asan \
    -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined"
fi

if [ "$want" = "tsan" ]; then
  run_config tsan build-tsan \
    -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-sanitize-recover=all" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
fi

echo "== check.sh OK ($want)"
