// Reproduces the §5.4 "effect of model size" and "end-to-end latency"
// analyses:
//   * growing the model (7B -> 13B at 3K tokens) adds far more latency to
//     the KV-Cache baseline (+220 ms in the paper) than to Prompt Cache
//     (+30 ms), because prefill FLOPs scale with d^2 while the module copy
//     scales with d;
//   * TTFT improves ~10x while the per-token decode latency (TTST) is
//     identical for both systems, so the end-to-end gain diminishes with
//     generation length.
#include <iostream>

#include "bench/bench_common.h"
#include "core/engine.h"
#include "eval/workload.h"
#include "sys/device_model.h"

int main() {
  using namespace pc;
  bench::print_banner("§5.4 — effect of model size and end-to-end latency",
                      "");

  // Modeled: 7B vs 13B at 3K tokens on the RTX 4090 (paper's setup).
  {
    const auto& hw = HardwareProfile::rtx4090();
    TablePrinter table("modeled on " + hw.name + ", 3K-token prompt");
    table.set_header({"model", "KV Cache TTFT", "Prompt Cache TTFT",
                      "baseline delta", "cached delta"});
    double prev_base = 0, prev_cached = 0;
    for (const char* name : {"Llama 7B", "Llama 13B"}) {
      const ModelSpec& spec = find_spec(name);
      const double base = estimate_baseline_ttft(hw, spec, 3000).total();
      const double cached =
          estimate_cached_ttft(hw, spec, 2950, 50,
                               ModuleLocation::kDeviceMemory)
              .total();
      table.add_row(
          {name, TablePrinter::fmt_ms(base * 1e3),
           TablePrinter::fmt_ms(cached * 1e3),
           prev_base == 0 ? "-"
                          : "+" + TablePrinter::fmt_ms((base - prev_base) * 1e3),
           prev_cached == 0
               ? "-"
               : "+" + TablePrinter::fmt_ms((cached - prev_cached) * 1e3)});
      prev_base = base;
      prev_cached = cached;
    }
    table.print(std::cout);
    std::cout << "Paper: 7B -> 13B added ~220 ms to KV Cache but ~30 ms to "
                 "Prompt Cache at 3K tokens.\n";
  }

  // Measured: two engine sizes on this host show the same asymmetry.
  {
    const Tokenizer tokenizer(Vocab::basic_english());
    LatencyWorkload workload(47);
    const int tokens =
        static_cast<int>(2048 * bench::context_scale() / 0.3 * 0.3);

    TablePrinter table("measured on this host, " + std::to_string(tokens) +
                       "-token fully cached prompt");
    table.set_header({"engine", "d_model", "KV Cache TTFT",
                      "Prompt Cache TTFT", "speedup"});
    for (int width : {128, 256}) {
      ModelConfig config =
          ModelConfig::llama_tiny(Vocab::basic_english().size(), 16384);
      config.d_model = width;
      config.n_heads = 4;
      config.n_kv_heads = 2;
      config.d_head = width / config.n_heads;
      config.d_ff = width * 8 / 3;
      config.name = "llama-tiny-d" + std::to_string(width);
      const Model model = Model::random(config, 7);

      const LatencySample sample = workload.make_sweep_sample(
          tokens, 4, "msz-" + std::to_string(width));
      PromptCacheEngine engine(model, tokenizer);
      engine.load_schema(sample.schema_pml);
      GenerateOptions opts;
      opts.max_new_tokens = 1;
      const ServeResult cached = engine.serve(sample.prompt_pml, opts);
      const ServeResult baseline =
          engine.serve_baseline(sample.prompt_pml, opts);
      table.add_row({config.name, std::to_string(width),
                     TablePrinter::fmt_ms(baseline.ttft.total_ms()),
                     TablePrinter::fmt_ms(cached.ttft.total_ms()),
                     TablePrinter::fmt_times(baseline.ttft.total_ms() /
                                             cached.ttft.total_ms())});
    }
    table.print(std::cout);
  }

  // End-to-end: TTFT + n * TTST for both systems (decode cost identical).
  {
    const auto& hw = HardwareProfile::rtx4090();
    const ModelSpec& spec = find_spec("Llama 7B");
    const double base_ttft =
        estimate_baseline_ttft(hw, spec, 3000).total();
    const double cached_ttft =
        estimate_cached_ttft(hw, spec, 2950, 50,
                             ModuleLocation::kDeviceMemory)
            .total();
    const double ttst = estimate_decode_step_s(hw, spec, 3000);

    TablePrinter table("modeled end-to-end response latency, 3K context (" +
                       hw.name + ")");
    table.set_header({"generated tokens", "KV Cache", "Prompt Cache",
                      "speedup"});
    for (int n : {1, 16, 64, 256}) {
      const double base = base_ttft + n * ttst;
      const double cached = cached_ttft + n * ttst;
      table.add_row({std::to_string(n), TablePrinter::fmt_ms(base * 1e3),
                     TablePrinter::fmt_ms(cached * 1e3),
                     TablePrinter::fmt_times(base / cached)});
    }
    table.print(std::cout);
    std::cout << "Paper: TTFT 900 ms -> 90 ms on RTX 4090 at 3K context; "
                 "TTST stays ~32 ms/token for both, so the end-to-end gain "
                 "shrinks as more tokens are generated.\n";
  }
  return 0;
}
