// Copy/compute pipelining study (GPU simulator): how much of Figure 3's
// modules-in-CPU-memory penalty a pipelined runtime recovers by streaming
// layer l+1's cached KV over PCIe while layer l computes. The paper leaves
// "strategies for reducing host-to-device memory overhead" to future work
// (§6); this quantifies the first such strategy.
#include <iostream>

#include "bench/bench_common.h"
#include "sys/gpu_sim.h"

int main() {
  using namespace pc;
  bench::print_banner(
      "Host-to-device overlap study (discrete-event GPU simulation)",
      "Llama 7B, 5K-token cached prompt, 50 uncached tokens");

  const ModelSpec& spec = find_spec("Llama 7B");
  const int64_t cached = 4950;
  const int64_t uncached = 50;

  TablePrinter table;
  table.set_header({"GPU", "device mem", "host mem (serial)",
                    "host mem (pipelined)", "penalty recovered",
                    "compute stall"});
  for (const HardwareProfile* hw :
       {&HardwareProfile::rtx4090(), &HardwareProfile::a40(),
        &HardwareProfile::a100()}) {
    const double device =
        simulate_cached_ttft(*hw, spec, cached, uncached,
                             ModuleLocation::kDeviceMemory, true)
            .ttft_s;
    const GpuSimResult serial = simulate_cached_ttft(
        *hw, spec, cached, uncached, ModuleLocation::kHostMemory, false);
    const GpuSimResult pipelined = simulate_cached_ttft(
        *hw, spec, cached, uncached, ModuleLocation::kHostMemory, true);
    const double recovered =
        1.0 - (pipelined.ttft_s - device) / (serial.ttft_s - device);
    table.add_row({hw->name, TablePrinter::fmt_ms(device * 1e3),
                   TablePrinter::fmt_ms(serial.ttft_s * 1e3),
                   TablePrinter::fmt_ms(pipelined.ttft_s * 1e3),
                   TablePrinter::fmt(100.0 * recovered, 1) + " %",
                   TablePrinter::fmt_ms(pipelined.compute_stall_s * 1e3)});
  }
  table.print(std::cout);

  // Sweep the uncached share: more compute gives the copy engine more time
  // to hide behind.
  const auto& hw = HardwareProfile::rtx4090();
  TablePrinter sweep("RTX 4090: penalty recovery vs uncached tokens");
  sweep.set_header({"uncached tokens", "host serial", "host pipelined",
                    "device"});
  for (int64_t u : {10, 50, 150, 400, 1000}) {
    sweep.add_row(
        {std::to_string(u),
         TablePrinter::fmt_ms(
             simulate_cached_ttft(hw, spec, cached, u,
                                  ModuleLocation::kHostMemory, false)
                 .ttft_s *
             1e3),
         TablePrinter::fmt_ms(
             simulate_cached_ttft(hw, spec, cached, u,
                                  ModuleLocation::kHostMemory, true)
                 .ttft_s *
             1e3),
         TablePrinter::fmt_ms(
             simulate_cached_ttft(hw, spec, cached, u,
                                  ModuleLocation::kDeviceMemory, true)
                 .ttft_s *
             1e3)});
  }
  sweep.print(std::cout);

  std::cout << "\nReading: pipelining hides part of the PCIe transfer "
               "behind per-layer compute; the recovery grows with the "
               "uncached share. The residual gap to device memory is the "
               "bandwidth bound (copy engine busy time), which compression "
               "(fp16/int8 storage) attacks directly.\n";
  return 0;
}
