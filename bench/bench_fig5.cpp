// Reproduces Figure 5 ("cache advantage") and the §5.4 memcpy comparison:
// TTFT versus sequence length for regular KV Cache (quadratic attention
// compute) against Prompt Cache (linear memcpy), on a measured CPU run and
// on modeled paper hardware, for fully cached synthetic prompts.
#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "common/string_util.h"
#include "core/engine.h"
#include "eval/workload.h"
#include "sys/device_model.h"

int main() {
  using namespace pc;

  std::vector<int> lengths = {256, 512, 1024, 2048};
  if (bench::full_mode()) {
    lengths.push_back(4096);
    lengths.push_back(8192);
  }

  bench::print_banner(
      "Figure 5 — cache advantage: TTFT vs sequence length",
      "fully cached prompts; measured (this host) + modeled (paper hw)");

  // Measured on this host with the real engine.
  {
    const ModelConfig config =
        ModelConfig::llama_tiny(Vocab::basic_english().size(), 16384);
    const Model model = Model::random(config, 99);
    const Tokenizer tokenizer(Vocab::basic_english());
    LatencyWorkload workload(31);

    TablePrinter table("measured on this host, llama-tiny engine");
    table.set_header({"tokens", "KV Cache (prefill)", "Prompt Cache",
                      "memcpy share", "advantage"});
    for (int n : lengths) {
      const LatencySample sample = workload.make_sweep_sample(
          n, std::max(1, n / 512), "sweep-" + std::to_string(n));
      PromptCacheEngine engine(model, tokenizer);
      engine.load_schema(sample.schema_pml);

      GenerateOptions opts;
      opts.max_new_tokens = 1;
      const ServeResult cached = engine.serve(sample.prompt_pml, opts);
      const ServeResult baseline =
          engine.serve_baseline(sample.prompt_pml, opts);
      table.add_row(
          {std::to_string(n), TablePrinter::fmt_ms(baseline.ttft.total_ms()),
           TablePrinter::fmt_ms(cached.ttft.total_ms()),
           TablePrinter::fmt(100.0 * cached.ttft.retrieve_ms /
                                 cached.ttft.total_ms(),
                             1) +
               " %",
           TablePrinter::fmt_times(baseline.ttft.total_ms() /
                                   cached.ttft.total_ms())});
    }
    table.print(std::cout);
  }

  // Modeled at Llama-7B scale on the paper's CPU and two GPUs (modules in
  // CPU memory, as in the paper's Figure 5 setup).
  const ModelSpec& spec = find_spec("Llama 7B");
  for (const HardwareProfile* hw :
       {&HardwareProfile::intel_i9_13900k(), &HardwareProfile::rtx4090(),
        &HardwareProfile::a40()}) {
    TablePrinter table("modeled, Llama 7B on " + hw->name +
                       " (modules in CPU memory)");
    table.set_header({"tokens", "KV Cache", "Prompt Cache", "advantage"});
    for (int n : {1024, 2048, 3072, 4096, 5120}) {
      const double base = estimate_baseline_ttft(*hw, spec, n).total();
      const double fast = estimate_cached_ttft(*hw, spec, n, 1,
                                               ModuleLocation::kHostMemory)
                              .total();
      table.add_row({std::to_string(n), TablePrinter::fmt_ms(base * 1e3),
                     TablePrinter::fmt_ms(fast * 1e3),
                     TablePrinter::fmt_times(base / fast)});
    }
    table.print(std::cout);
  }

  // §5.4 memcpy latency comparison at 5K tokens of Llama-7B states.
  {
    const size_t bytes = spec.kv_bytes_per_token() * 5000;
    TablePrinter table("memcpy of 5K tokens of attention states (" +
                       format_bytes(static_cast<double>(bytes)) + ")");
    table.set_header({"path", "modeled latency"});
    table.add_row({"host-to-host (CPU)",
                   TablePrinter::fmt_ms(
                       estimate_memcpy_s(HardwareProfile::intel_i9_13900k(),
                                         bytes, ModuleLocation::kHostMemory) *
                       1e3)});
    table.add_row({"host-to-device (PCIe)",
                   TablePrinter::fmt_ms(
                       estimate_memcpy_s(HardwareProfile::rtx4090(), bytes,
                                         ModuleLocation::kHostMemory) *
                       1e3)});
    table.add_row({"device-to-device (HBM)",
                   TablePrinter::fmt_ms(
                       estimate_memcpy_s(HardwareProfile::rtx4090(), bytes,
                                         ModuleLocation::kDeviceMemory) *
                       1e3)});
    table.print(std::cout);
  }

  std::cout << "\nPaper reference (Fig. 5): KV-Cache latency grows "
               "quadratically with sequence length while Prompt Cache's "
               "memcpy grows linearly, so the advantage widens with length "
               "and is larger on CPUs than GPUs.\n";
  return 0;
}
