// Kernel microbenchmarks: vectorized/blocked/fused kernels vs. the seed's
// scalar implementations, plus an end-to-end TTFT measurement on a tiny
// model. Prints paper-shaped tables and writes machine-readable results to
// BENCH_kernels.json in the current directory (repo root when launched via
// scripts/run_all.sh).
//
// The scalar references below are verbatim ports of the pre-vectorization
// kernels. The build uses -O3 without -ffast-math, so the compiler cannot
// auto-vectorize their float reductions — they measure what the seed
// actually ran.
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <limits>
#include <numeric>
#include <sstream>
#include <vector>

#include "bench/bench_common.h"
#include "common/rng.h"
#include "common/timer.h"
#include "kv/quant.h"
#include "model/model.h"
#include "tensor/ops.h"
#include "tensor/simd.h"

namespace {

using namespace pc;

// ---- seed scalar kernels (pre-vectorization references) ---------------------

float scalar_dot(const float* a, const float* b, size_t n) {
  float s = 0.0f;
  for (size_t i = 0; i < n; ++i) s += a[i] * b[i];
  return s;
}

void scalar_gemm_nt(const float* a, const float* b, float* c, size_t m,
                    size_t k, size_t n) {
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) {
      c[i * n + j] = scalar_dot(a + i * k, b + j * k, k);
    }
  }
}

// The seed's per-(head, query) attention inner loop: scalar scores, scalar
// two-pass softmax, and a zero-skipping scalar V mix.
void scalar_attention(const float* q, const float* k, const float* v,
                      size_t stride, size_t d_head, size_t n_ctx, float scale,
                      float* scores, float* out) {
  for (size_t j = 0; j < n_ctx; ++j) {
    scores[j] = scalar_dot(q, k + j * stride, d_head) * scale;
  }
  float mx = scores[0];
  for (size_t j = 1; j < n_ctx; ++j) mx = std::max(mx, scores[j]);
  float sum = 0.0f;
  for (size_t j = 0; j < n_ctx; ++j) {
    scores[j] = std::exp(scores[j] - mx);
    sum += scores[j];
  }
  const float inv = 1.0f / sum;
  for (size_t j = 0; j < n_ctx; ++j) scores[j] *= inv;
  std::fill(out, out + d_head, 0.0f);
  for (size_t j = 0; j < n_ctx; ++j) {
    const float w = scores[j];
    if (w == 0.0f) continue;
    const float* vr = v + j * stride;
    for (size_t e = 0; e < d_head; ++e) out[e] += w * vr[e];
  }
}

// ---- measurement ------------------------------------------------------------

// Repeats fn until `min_seconds` of wall time accumulates and returns the
// mean per-call milliseconds. A volatile sink keeps results live.
volatile float g_sink = 0.0f;

template <typename Fn>
double time_ms(Fn&& fn, double min_seconds = 0.08) {
  fn();  // warm-up (page in buffers, warm caches)
  size_t iters = 0;
  WallTimer timer;
  do {
    fn();
    ++iters;
  } while (timer.elapsed_seconds() < min_seconds);
  return timer.elapsed_ms() / static_cast<double>(iters);
}

std::vector<float> random_vec(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = rng.uniform(-0.5f, 0.5f);
  return v;
}

struct JsonRow {
  std::string section;
  std::string shape;
  double scalar_ms;
  double vector_ms;
};

std::vector<JsonRow> g_json;

// End-to-end TTFT is a single measurement per shape, not a scalar/vector
// comparison — it gets its own JSON section (a ttft row used to be forced
// into JsonRow, producing meaningless "speedup": 1.000 entries).
struct TtftRow {
  std::string shape;
  double ms;
  double prefill_tok_s;
};

std::vector<TtftRow> g_ttft_json;

double record(TablePrinter& table, const std::string& section,
              const std::string& shape, double scalar_ms, double vector_ms) {
  const double speedup = scalar_ms / vector_ms;
  table.add_row({shape, TablePrinter::fmt_ms(scalar_ms),
                 TablePrinter::fmt_ms(vector_ms),
                 TablePrinter::fmt_times(speedup)});
  g_json.push_back({section, shape, scalar_ms, vector_ms});
  return speedup;
}

void bench_dot() {
  TablePrinter table("dot product (scalar vs " +
                     std::string(simd::isa_name()) + ")");
  table.set_header({"n", "scalar", "simd", "speedup"});
  for (size_t n : {32u, 64u, 128u, 512u, 4096u}) {
    const auto a = random_vec(n, 1 + n);
    const auto b = random_vec(n, 2 + n);
    // Batch many calls per sample so sub-microsecond kernels measure cleanly.
    const size_t reps = 4096;
    const double s = time_ms([&] {
      float acc = 0.0f;
      for (size_t r = 0; r < reps; ++r) acc += scalar_dot(a.data(), b.data(), n);
      g_sink = acc;
    });
    const double w = time_ms([&] {
      float acc = 0.0f;
      for (size_t r = 0; r < reps; ++r) acc += simd::dot(a.data(), b.data(), n);
      g_sink = acc;
    });
    record(table, "dot", "n=" + std::to_string(n), s / reps, w / reps);
  }
  table.print(std::cout);
}

double bench_gemm_nt() {
  TablePrinter table("gemm_nt: C[m,n] = A[m,k] * B[n,k]^T");
  table.set_header({"m,k,n", "scalar", "blocked+simd", "speedup"});
  double required_speedup = 0.0;
  struct Shape { size_t m, k, n; };
  std::vector<Shape> shapes = {{1, 192, 192},   {8, 192, 512},
                               {64, 512, 512},  {16, 768, 768}};
  if (bench::full_mode()) shapes.push_back({64, 1024, 1024});
  for (const auto& sh : shapes) {
    const auto a = random_vec(sh.m * sh.k, 3 + sh.k);
    const auto b = random_vec(sh.n * sh.k, 5 + sh.k);
    std::vector<float> c(sh.m * sh.n);
    const double s = time_ms(
        [&] { scalar_gemm_nt(a.data(), b.data(), c.data(), sh.m, sh.k, sh.n);
              g_sink = c[0]; });
    const double w = time_ms(
        [&] { gemm_nt(a.data(), b.data(), c.data(), sh.m, sh.k, sh.n);
              g_sink = c[0]; });
    std::ostringstream shape;
    shape << sh.m << "," << sh.k << "," << sh.n;
    const double speedup = record(table, "gemm_nt", shape.str(), s, w);
    if (sh.m == 64 && sh.k == 512 && sh.n == 512) required_speedup = speedup;
  }
  table.print(std::cout);
  return required_speedup;
}

void bench_attention() {
  TablePrinter table("attention inner loop, one head (d_head=64)");
  table.set_header({"ctx", "scalar", "fused", "speedup"});
  const size_t d_head = 64, kv_dim = 128;
  std::vector<size_t> ctxs = {128, 512, 1024, 2048};
  if (bench::full_mode()) ctxs.push_back(4096);
  for (size_t ctx : ctxs) {
    const auto q = random_vec(d_head, 7 + ctx);
    const auto k = random_vec(ctx * kv_dim, 11 + ctx);
    const auto v = random_vec(ctx * kv_dim, 13 + ctx);
    std::vector<float> scores(ctx), out(d_head);
    const float scale = 1.0f / std::sqrt(static_cast<float>(d_head));
    const double s = time_ms([&] {
      scalar_attention(q.data(), k.data(), v.data(), kv_dim, d_head, ctx,
                       scale, scores.data(), out.data());
      g_sink = out[0];
    });
    const double w = time_ms([&] {
      attn_fused_contig(q.data(), k.data(), v.data(), kv_dim, d_head, ctx,
                        scale, 0.0f, nullptr, nullptr, scores.data(),
                        out.data());
      g_sink = out[0];
    });
    record(table, "attention", "ctx=" + std::to_string(ctx), s, w);
  }
  table.print(std::cout);
}

// Decode-style attention over a quantized (Q8_0) context: one query head
// against ctx cached rows held as int8 + per-row scale. Compares the naive
// retrieval strategy — dequantize every K/V row to fp32, then run the fp32
// fused kernel — against attn_fused_q8_gather, which scores q·k in the int8
// domain and mixes V straight from int8 (no fp32 materialization of the
// cached rows). The dequantize cost recurs every step on a decode path, so
// this is the per-token contrast. Returns whether the int8 kernel wins at
// ctx=1024 (the PR's acceptance bound: int8 fused must beat
// dequantize-then-fp32 at ctx >= 1K).
bool bench_q8_attention() {
  TablePrinter table("q8 attention, one head (d_head=64, int8 context)");
  table.set_header({"ctx", "dequant+fp32", "int8 fused", "speedup"});
  const size_t d_head = 64, kv_dim = 128, head_off = 64;
  std::vector<size_t> ctxs = {256, 1024, 2048};
  if (bench::full_mode()) ctxs.push_back(4096);
  bool beats_at_1k = false;
  for (size_t ctx : ctxs) {
    const auto kf = random_vec(ctx * kv_dim, 17 + ctx);
    const auto vf = random_vec(ctx * kv_dim, 19 + ctx);
    const auto q = random_vec(d_head, 23 + ctx);
    std::vector<int8_t> k8(ctx * kv_dim), v8(ctx * kv_dim);
    std::vector<float> k_scales(ctx), v_scales(ctx);
    quantize_rows(kf.data(), static_cast<int>(ctx), static_cast<int>(kv_dim),
                  k8.data(), k_scales.data());
    quantize_rows(vf.data(), static_cast<int>(ctx), static_cast<int>(kv_dim),
                  v8.data(), v_scales.data());
    std::vector<const int8_t*> k8_rows(ctx), v8_rows(ctx);
    std::vector<const float*> k_rows(ctx, nullptr), v_rows(ctx, nullptr);
    for (size_t j = 0; j < ctx; ++j) {
      k8_rows[j] = k8.data() + j * kv_dim;
      v8_rows[j] = v8.data() + j * kv_dim;
    }
    std::vector<float> scores(ctx), out(d_head);
    std::vector<float> k_dq(ctx * kv_dim), v_dq(ctx * kv_dim);
    const float scale = 1.0f / std::sqrt(static_cast<float>(d_head));
    const double s = time_ms([&] {
      for (size_t j = 0; j < ctx; ++j) {
        simd::dequant_store(k8.data() + j * kv_dim, k_scales[j],
                            k_dq.data() + j * kv_dim, kv_dim);
        simd::dequant_store(v8.data() + j * kv_dim, v_scales[j],
                            v_dq.data() + j * kv_dim, kv_dim);
      }
      attn_fused_contig(q.data(), k_dq.data() + head_off,
                        v_dq.data() + head_off, kv_dim, d_head, ctx, scale,
                        0.0f, nullptr, nullptr, scores.data(), out.data());
      g_sink = out[0];
    });
    const double w = time_ms([&] {
      attn_fused_q8_gather(q.data(), k8_rows.data(), v8_rows.data(),
                           k_scales.data(), v_scales.data(), k_rows.data(),
                           v_rows.data(), head_off, d_head, ctx, scale, 0.0f,
                           nullptr, nullptr, scores.data(), out.data());
      g_sink = out[0];
    });
    record(table, "attn_q8", "ctx=" + std::to_string(ctx), s, w);
    if (ctx == 1024) beats_at_1k = w < s;
  }
  table.print(std::cout);
  return beats_at_1k;
}

// Decode-style attention over a sub-byte (Q4_0) context, the per-token
// contrast for the 4-bit format: naive retrieval — dequantize every packed
// K/V row to fp32, then the fp32 fused kernel — against
// attn_fused_q4_gather, which scores q·k on the packed nibbles (maddubs
// after a mask+shift unpack) and mixes V straight from the nibbles. Returns
// whether the int4 kernel wins at ctx=1024 (the acceptance bound: int4
// fused must beat dequantize-then-fp32 at ctx >= 1K).
bool bench_q4_attention() {
  TablePrinter table("q4 attention, one head (d_head=64, Q4_0 context)");
  table.set_header({"ctx", "dequant+fp32", "int4 fused", "speedup"});
  const size_t d_head = 64, kv_dim = 128, head_off = 64;
  const int blocks = q4_blocks(static_cast<int>(kv_dim));
  const size_t row_bytes = q4_row_bytes(static_cast<int>(kv_dim));
  std::vector<size_t> ctxs = {256, 1024};
  if (bench::full_mode()) ctxs.push_back(4096);
  bool beats_at_1k = false;
  for (size_t ctx : ctxs) {
    const auto kf = random_vec(ctx * kv_dim, 27 + ctx);
    const auto vf = random_vec(ctx * kv_dim, 29 + ctx);
    const auto q = random_vec(d_head, 31 + ctx);
    std::vector<uint8_t> k4(ctx * row_bytes), v4(ctx * row_bytes);
    std::vector<float> k_scales(ctx * blocks), v_scales(ctx * blocks);
    quantize_rows_q4(kf.data(), static_cast<int>(ctx),
                     static_cast<int>(kv_dim), k4.data(), k_scales.data());
    quantize_rows_q4(vf.data(), static_cast<int>(ctx),
                     static_cast<int>(kv_dim), v4.data(), v_scales.data());
    std::vector<const uint8_t*> k4_rows(ctx), v4_rows(ctx);
    std::vector<const float*> k4_sc(ctx), v4_sc(ctx);
    std::vector<const float*> k_rows(ctx, nullptr), v_rows(ctx, nullptr);
    for (size_t j = 0; j < ctx; ++j) {
      k4_rows[j] = k4.data() + j * row_bytes;
      v4_rows[j] = v4.data() + j * row_bytes;
      k4_sc[j] = k_scales.data() + j * blocks;
      v4_sc[j] = v_scales.data() + j * blocks;
    }
    std::vector<float> scores(ctx), out(d_head);
    std::vector<float> k_dq(ctx * kv_dim), v_dq(ctx * kv_dim);
    const float scale = 1.0f / std::sqrt(static_cast<float>(d_head));
    const double s = time_ms([&] {
      for (size_t j = 0; j < ctx; ++j) {
        dequantize_row_q4(k4.data() + j * row_bytes,
                          k_scales.data() + j * blocks,
                          static_cast<int>(kv_dim),
                          k_dq.data() + j * kv_dim);
        dequantize_row_q4(v4.data() + j * row_bytes,
                          v_scales.data() + j * blocks,
                          static_cast<int>(kv_dim),
                          v_dq.data() + j * kv_dim);
      }
      attn_fused_contig(q.data(), k_dq.data() + head_off,
                        v_dq.data() + head_off, kv_dim, d_head, ctx, scale,
                        0.0f, nullptr, nullptr, scores.data(), out.data());
      g_sink = out[0];
    });
    const double w = time_ms([&] {
      attn_fused_q4_gather(q.data(), k4_rows.data(), v4_rows.data(),
                           k4_sc.data(), v4_sc.data(), k_rows.data(),
                           v_rows.data(), head_off, d_head, ctx, scale, 0.0f,
                           nullptr, nullptr, scores.data(), out.data());
      g_sink = out[0];
    });
    record(table, "attn_q4", "ctx=" + std::to_string(ctx), s, w);
    if (ctx == 1024) beats_at_1k = w < s;
  }
  table.print(std::cout);
  return beats_at_1k;
}

// Score-only contrast inside the q4 family: the row-major dot_i4i8 path
// (what the fused serving kernel runs) against NoMAD-style LUT scoring —
// keys pre-transposed into code-major 16-key tiles, per-dimension 16-entry
// int8 tables applied with byte shuffles, zero multiply-adds in the scan.
// The tile transpose is key-store-time work and sits outside the timer; the
// per-query LUT build is inside it.
void bench_q4_lut_scoring() {
  TablePrinter table("q4 scoring: dot_i4i8 vs NoMAD LUT (d_head=64)");
  table.set_header({"ctx", "dot_i4i8", "LUT shuffle", "speedup"});
  const size_t d_head = 64, kv_dim = 128, head_off = 64;
  const size_t n_blocks = d_head / 32;  // head-slice blocks
  const size_t blk_off = head_off / 32, byte_off = blk_off * 16;
  const int row_blocks = q4_blocks(static_cast<int>(kv_dim));
  const size_t row_bytes = q4_row_bytes(static_cast<int>(kv_dim));
  std::vector<size_t> ctxs = {256, 1024};
  if (bench::full_mode()) ctxs.push_back(4096);
  for (size_t ctx : ctxs) {
    const auto kf = random_vec(ctx * kv_dim, 37 + ctx);
    const auto q = random_vec(d_head, 41 + ctx);
    std::vector<uint8_t> k4(ctx * row_bytes);
    std::vector<float> k_scales(ctx * row_blocks);
    quantize_rows_q4(kf.data(), static_cast<int>(ctx),
                     static_cast<int>(kv_dim), k4.data(), k_scales.data());

    // Row-major pointers for the dot path.
    std::vector<const uint8_t*> k4_rows(ctx);
    for (size_t j = 0; j < ctx; ++j) k4_rows[j] = k4.data() + j * row_bytes;

    // Code-major tiles for the LUT path (built once, like the key store).
    const size_t n_tiles = ctx / 16;
    std::vector<uint8_t> tiles(n_tiles * n_blocks * 16 * 16);
    for (size_t t = 0; t < n_tiles; ++t) {
      const uint8_t* slice_rows[16];
      for (size_t r = 0; r < 16; ++r) {
        slice_rows[r] = k4.data() + (t * 16 + r) * row_bytes + byte_off;
      }
      simd::nomad_transpose_tile16(slice_rows, 16, n_blocks,
                                   tiles.data() + t * n_blocks * 16 * 16);
    }

    std::vector<float> scores(ctx);
    const float scale = 1.0f / std::sqrt(static_cast<float>(d_head));
    const double s = time_ms([&] {
      // Same per-query preamble as the fused kernel: int8 query + block sums.
      int8_t q8[64];
      const float q_max = simd::reduce_max_abs(q.data(), d_head);
      const float q_scale = q_max > 0.0f ? q_max / 127.0f : 1.0f;
      simd::quantize_i8(q.data(), 1.0f / q_scale, q8, d_head);
      int32_t q_sums[2];
      for (size_t b = 0; b < n_blocks; ++b) {
        int32_t acc = 0;
        for (size_t i = 0; i < 32; ++i) acc += q8[b * 32 + i];
        q_sums[b] = acc;
      }
      const float fix = scale * q_scale;
      for (size_t j = 0; j < ctx; ++j) {
        scores[j] = simd::dot_i4i8(q8, k4_rows[j] + byte_off,
                                   k_scales.data() + j * row_blocks + blk_off,
                                   q_sums, n_blocks) *
                    fix;
      }
      g_sink = scores[0];
    });
    const double w = time_ms([&] {
      // Quantize the query to int4 per block and build the shuffle tables
      // (per query, amortized over all ctx keys).
      int32_t q4v[64];
      float q_block_scale[2];
      for (size_t b = 0; b < n_blocks; ++b) {
        const float amax = simd::reduce_max_abs(q.data() + b * 32, 32);
        const float qs = amax > 0.0f ? amax / 7.0f : 1.0f;
        q_block_scale[b] = qs;
        for (size_t i = 0; i < 32; ++i) {
          const float x = std::nearbyintf(q[b * 32 + i] / qs);
          q4v[b * 32 + i] =
              static_cast<int32_t>(x < -8.0f ? -8.0f : (x > 7.0f ? 7.0f : x));
        }
      }
      int8_t luts[2][32 * 16];
      for (size_t b = 0; b < n_blocks; ++b) {
        simd::nomad_build_block_luts(q4v + b * 32, luts[b]);
      }
      for (size_t t = 0; t < n_tiles; ++t) {
        int16_t out16[2][16];
        for (size_t b = 0; b < n_blocks; ++b) {
          std::fill(out16[b], out16[b] + 16, static_cast<int16_t>(0));
          simd::nomad_score_block16(
              tiles.data() + (t * n_blocks + b) * 16 * 16, luts[b],
              out16[b]);
        }
        // Per-key float fixup: per-block K scale times the query block step.
        for (size_t r = 0; r < 16; ++r) {
          const size_t key = t * 16 + r;
          float acc = 0.0f;
          for (size_t b = 0; b < n_blocks; ++b) {
            acc += k_scales[key * row_blocks + blk_off + b] *
                   q_block_scale[b] * static_cast<float>(out16[b][r]);
          }
          scores[key] = acc * scale;
        }
      }
      g_sink = scores[0];
    });
    record(table, "attn_q4_score", "ctx=" + std::to_string(ctx), s, w);
  }
  table.print(std::cout);
}

void bench_ttft() {
  // End-to-end: full prefill + first-token logits on the tiny llama config.
  // This exercises every kernel the PR touched (gemm, gemm_nt via attention
  // projections, the fused attention loop, rmsnorm, elementwise).
  TablePrinter table("end-to-end TTFT, llama-tiny (d_model=192, 4 layers)");
  table.set_header({"prompt tokens", "TTFT", "tok/s (prefill)"});
  std::vector<size_t> lens = {128, 512, 1024};
  if (bench::full_mode()) lens.push_back(2048);
  const Model model = Model::random(ModelConfig::llama_tiny(512, 4096), 42);
  Rng rng(17);
  for (size_t n : lens) {
    std::vector<TokenId> tokens(n);
    for (auto& t : tokens) t = static_cast<TokenId>(rng.next_below(512));
    std::vector<int> pos(n);
    std::iota(pos.begin(), pos.end(), 0);
    const double ms = time_ms(
        [&] {
          KVCache cache = model.make_cache();
          const Tensor logits = model.forward(tokens, pos, cache);
          g_sink = logits.at(0, 0);
        },
        0.2);
    const double tok_s = 1e3 * static_cast<double>(n) / ms;
    table.add_row({std::to_string(n), TablePrinter::fmt_ms(ms),
                   TablePrinter::fmt(tok_s, 0)});
    g_ttft_json.push_back({"tokens=" + std::to_string(n), ms, tok_s});
  }
  table.print(std::cout);
}

void write_json(double gemm_nt_required_speedup, bool q8_beats_at_1k,
                bool q4_beats_at_1k) {
  std::ofstream out("BENCH_kernels.json");
  out << "{\n  \"provenance\": " << bench::provenance_json() << ",\n"
      << "  \"isa\": \"" << simd::isa_name() << "\",\n"
      << "  \"gemm_nt_64_512_512_speedup\": "
      << TablePrinter::fmt(gemm_nt_required_speedup, 2) << ",\n"
      << "  \"attn_q8_int8_beats_dequant_at_ctx1024\": "
      << (q8_beats_at_1k ? "true" : "false") << ",\n"
      << "  \"attn_q4_int4_beats_dequant_at_ctx1024\": "
      << (q4_beats_at_1k ? "true" : "false") << ",\n"
      << "  \"results\": [\n";
  for (size_t i = 0; i < g_json.size(); ++i) {
    const auto& r = g_json[i];
    out << "    {\"section\": \"" << r.section << "\", \"shape\": \""
        << r.shape << "\", \"scalar_ms\": " << r.scalar_ms
        << ", \"vector_ms\": " << r.vector_ms
        << ", \"speedup\": " << TablePrinter::fmt(r.scalar_ms / r.vector_ms, 3)
        << "}" << (i + 1 < g_json.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"ttft\": [\n";
  for (size_t i = 0; i < g_ttft_json.size(); ++i) {
    const auto& r = g_ttft_json[i];
    out << "    {\"shape\": \"" << r.shape << "\", \"ms\": " << r.ms
        << ", \"prefill_tok_s\": " << TablePrinter::fmt(r.prefill_tok_s, 0)
        << "}" << (i + 1 < g_ttft_json.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "\nwrote BENCH_kernels.json\n";
}

}  // namespace

int main() {
  bench::print_banner(
      "Kernel microbenchmarks — vectorized vs seed scalar",
      std::string("SIMD ISA: ") + simd::isa_name() +
          " (PC_FULL=1 for larger shapes)");
  bench_dot();
  const double required = bench_gemm_nt();
  bench_attention();
  const bool q8_beats_at_1k = bench_q8_attention();
  const bool q4_beats_at_1k = bench_q4_attention();
  bench_q4_lut_scoring();
  bench_ttft();
  write_json(required, q8_beats_at_1k, q4_beats_at_1k);
  std::cout << "gemm_nt (m=64,k=512,n=512) speedup: "
            << TablePrinter::fmt_times(required) << "\n";
  return 0;
}
