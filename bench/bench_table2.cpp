// Reproduces Table 2: memory overhead of caching a single token (MB/token,
// fp16) for eight published model architectures. This is fully analytic —
// the number depends only on layer count, KV width, and dtype — so our
// reproduction should match the paper to rounding.
#include <cstdio>

#include "bench/bench_common.h"
#include "common/string_util.h"
#include "eval/table.h"
#include "sys/model_spec.h"

namespace {

// Paper-reported MB/token (Table 2).
double paper_value(const std::string& name) {
  if (name == "BERT") return 0.03;
  if (name == "Falcon 1B") return 0.18;
  if (name == "Llama 7B") return 0.50;
  if (name == "Llama 13B") return 0.78;
  if (name == "MPT 30B") return 1.31;
  if (name == "Falcon 40B") return 1.87;
  if (name == "Llama 70B") return 2.5;
  if (name == "Falcon 180B") return 4.53;
  return 0.0;
}

}  // namespace

int main() {
  using namespace pc;
  bench::print_banner(
      "Table 2 — memory overhead of caching a single token",
      "analytic: 2 (K,V) x n_layers x n_kv_heads x d_head x 2 bytes (fp16)");

  TablePrinter table;
  table.set_header({"LLM", "layers", "kv width", "MB/token (ours)",
                    "MB/token (paper)", "1K-token module"});
  for (const ModelSpec& spec : model_zoo()) {
    const double mb =
        static_cast<double>(spec.kv_bytes_per_token()) / (1024.0 * 1024.0);
    table.add_row({spec.name, std::to_string(spec.n_layers),
                   std::to_string(spec.kv_dim()),
                   TablePrinter::fmt(mb, 2),
                   TablePrinter::fmt(paper_value(spec.name), 2),
                   format_bytes(static_cast<double>(spec.kv_bytes_per_token()) *
                                1024.0)});
  }
  table.print(std::cout);

  std::printf(
      "\nNote: Llama 70B matches the paper only under its implicit MHA\n"
      "assumption (the real model uses 8-way GQA, which would need just\n"
      "0.31 MB/token); see EXPERIMENTS.md.\n");
  return 0;
}
