// Prompt Cache vs prefix caching (§2.2): "Paged attention also demonstrates
// simple prefix sharing ... However, existing approaches are specific to
// certain scenarios, while we investigate attention reuse for general LLM
// prompts."
//
// This benchmark quantifies that claim on the real engine. A request stream
// assembles prompts from a shared document pool under two regimes:
//   * FIXED ORDER  — every request uses the same documents in the same
//     order (the scenario prefix caching is built for);
//   * SHUFFLED     — each request samples a subset in random order (the
//     general document-reuse scenario of the paper's introduction).
// We report the fraction of prompt tokens restored from cache and measured
// TTFT for (a) vLLM-style longest-prefix reuse and (b) Prompt Cache's
// modular reuse. Prefix caching matches Prompt Cache only in the fixed
// regime; under shuffling its reuse collapses while Prompt Cache is
// unaffected — order-independence is exactly what the schema's position
// layout buys.
#include <iostream>

#include "bench/bench_common.h"
#include "core/engine.h"
#include "core/prefix_cache.h"
#include "pml/prompt_builder.h"

namespace {

using namespace pc;

struct RegimeResult {
  double prefix_reuse = 0, prefix_ttft_ms = 0;
  double modular_reuse = 0, modular_ttft_ms = 0;
  int requests = 0;
};

}  // namespace

int main() {
  const double scale = bench::context_scale();
  const int kDocs = 6;
  const int kPerRequest = 3;
  const int kRequests = 10;
  const int doc_tokens = std::max(24, static_cast<int>(500 * scale));

  bench::print_banner(
      "Prompt Cache vs prefix caching (vLLM-style), measured",
      std::to_string(kDocs) + " docs x " + std::to_string(doc_tokens) +
          " tokens; " + std::to_string(kRequests) + " requests of " +
          std::to_string(kPerRequest) + " docs each");

  const Tokenizer tokenizer(Vocab::basic_english());
  const Model model = Model::random(
      ModelConfig::llama_tiny(Vocab::basic_english().size(), 16384), 3);
  LatencyWorkload words(77);

  // Shared document pool, published once as a schema for the modular side.
  std::vector<std::string> docs;
  std::string schema = "<schema name=\"pool\">\n";
  {
    DatasetSpec spec;
    spec.latency_n_docs = 1;
    spec.latency_doc_tokens = doc_tokens;
    spec.latency_question_tokens = 8;
    spec.name = "pool";
    for (int d = 0; d < kDocs; ++d) {
      const LatencySample s = words.make_sample(spec, d, 1.0);
      // Extract the doc body back out of the generated schema.
      const size_t b = s.schema_pml.find('>') + 1;
      const size_t mb = s.schema_pml.find("\">", b) + 2;
      const size_t me = s.schema_pml.find("</module>");
      docs.push_back(s.schema_pml.substr(mb, me - mb));
      schema += "  <module name=\"doc" + std::to_string(d) + "\">" +
                docs.back() + "</module>\n";
    }
    schema += "</schema>\n";
  }

  Rng rng(11);
  auto run_regime = [&](bool shuffled) {
    RegimeResult out;
    out.requests = kRequests;
    PrefixCacheEngine prefix_engine(model, tokenizer);
    PromptCacheEngine modular_engine(model, tokenizer);
    modular_engine.load_schema(schema);  // offline module encoding

    GenerateOptions opts;
    opts.max_new_tokens = 1;
    for (int r = 0; r < kRequests; ++r) {
      std::vector<int> pick(kDocs);
      for (int i = 0; i < kDocs; ++i) pick[static_cast<size_t>(i)] = i;
      if (shuffled) rng.shuffle(pick);
      pick.resize(kPerRequest);
      const std::string question =
          "question " + std::to_string(r) + " what should we see ?";

      // Prefix side: one flat token stream.
      std::string flat;
      for (int d : pick) flat += docs[static_cast<size_t>(d)] + " ";
      flat += question;
      const auto pr = prefix_engine.serve(tokenizer.encode(flat), opts);
      out.prefix_reuse += static_cast<double>(pr.reused_tokens) /
                          (pr.reused_tokens + pr.computed_tokens);
      out.prefix_ttft_ms += pr.ttft_ms;

      // Modular side: the same docs as module imports.
      pml::PromptBuilder prompt("pool");
      for (int d : pick) prompt.import("doc" + std::to_string(d));
      prompt.text(question);
      const ServeResult mr = modular_engine.serve(prompt.str(), opts);
      out.modular_reuse +=
          static_cast<double>(mr.ttft.cached_tokens) / mr.prompt_tokens;
      out.modular_ttft_ms += mr.ttft.total_ms();
    }
    out.prefix_reuse /= kRequests;
    out.prefix_ttft_ms /= kRequests;
    out.modular_reuse /= kRequests;
    out.modular_ttft_ms /= kRequests;
    return out;
  };

  TablePrinter table;
  table.set_header({"regime", "system", "tokens reused", "mean TTFT"});
  for (bool shuffled : {false, true}) {
    const RegimeResult r = run_regime(shuffled);
    const char* regime = shuffled ? "shuffled subsets" : "fixed order";
    table.add_row({regime, "prefix cache",
                   TablePrinter::fmt(100.0 * r.prefix_reuse, 1) + " %",
                   TablePrinter::fmt_ms(r.prefix_ttft_ms)});
    table.add_row({regime, "Prompt Cache",
                   TablePrinter::fmt(100.0 * r.modular_reuse, 1) + " %",
                   TablePrinter::fmt_ms(r.modular_ttft_ms)});
  }
  table.print(std::cout);

  std::cout << "\nReading: with a fixed document order both systems reuse "
               "nearly everything; once requests pick documents in varying "
               "order, prefix reuse collapses to the (rare) shared literal "
               "prefix while Prompt Cache's modular reuse is unchanged.\n";
  return 0;
}
