// Reproduces Table 1: output accuracy with and without Prompt Cache across
// four models and eight LongBench-like datasets.
//
// Models are induction-head surrogates (see DESIGN.md): weights are
// constructed so the model retrieves planted answers from its context,
// making F1 / Rouge-L / accuracy meaningful without pretrained weights.
// The four "models" differ in attention sharpness and evaluation seed,
// standing in for the four LLMs of the paper. Absolute scores are higher
// than the paper's (synthetic tasks are cleanly retrievable); the
// reproduction target is the *relationship*: cached is at parity with the
// baseline everywhere except passage retrieval, whose boundary-straddling
// facts degrade under module-masked encoding exactly as §3.3 predicts.
#include <iostream>

#include "bench/bench_common.h"
#include "core/engine.h"
#include "eval/metrics.h"
#include "eval/workload.h"
#include "model/induction.h"

namespace {

struct ModelVariant {
  const char* name;
  float beta1;
  float beta2;
  uint64_t workload_seed;
};

double score(pc::TaskMetric metric, const std::string& prediction,
             const std::string& reference) {
  switch (metric) {
    case pc::TaskMetric::kF1:
      return 100.0 * pc::f1_score(prediction, reference);
    case pc::TaskMetric::kRougeL:
      return 100.0 * pc::rouge_l(prediction, reference);
    case pc::TaskMetric::kAccuracy:
      return 100.0 * pc::exact_match(prediction, reference);
  }
  return 0.0;
}

}  // namespace

int main() {
  using namespace pc;
  const int n_samples = bench::samples_per_dataset(2, 6);

  bench::print_banner(
      "Table 1 — accuracy with and without Prompt Cache",
      "induction-head surrogate models; " + std::to_string(n_samples) +
          " samples per dataset (PC_SAMPLES to change)");

  const ModelVariant variants[] = {
      {"llama2-7b-sim", 24.0f, 24.0f, 101},
      {"llama2-13b-sim", 28.0f, 28.0f, 202},
      {"mpt-7b-sim", 18.0f, 14.0f, 303},
      {"falcon-7b-sim", 16.0f, 12.0f, 404},
  };

  TablePrinter table;
  std::vector<std::string> header = {"Dataset", "Metric"};
  for (const auto& v : variants) {
    header.push_back(std::string(v.name) + " base");
    header.push_back(std::string(v.name) + " cached");
  }
  table.set_header(header);

  for (const DatasetSpec& ds : bench::figure_datasets()) {
    std::vector<std::string> row = {ds.name, ds.metric_name()};
    for (const auto& variant : variants) {
      AccuracyWorkload workload(variant.workload_seed);
      Model model = make_induction_model(
          {workload.vocab().size(),
           AccuracyWorkload::kMaxSchemaPositions + 64, variant.beta1,
           variant.beta2});

      GenerateOptions opts;
      opts.max_new_tokens = ds.answer_len + 3;
      opts.stop_tokens = {workload.stop_token()};

      double base_total = 0, cached_total = 0;
      for (int i = 0; i < n_samples; ++i) {
        const AccuracySample sample = workload.make_sample(ds, i);
        PromptCacheEngine engine(model, workload.tokenizer());
        engine.load_schema(sample.schema_pml);
        const ServeResult cached = engine.serve(sample.prompt_pml, opts);
        const ServeResult baseline =
            engine.serve_baseline(sample.prompt_pml, opts);
        base_total += score(ds.metric, baseline.text, sample.reference);
        cached_total += score(ds.metric, cached.text, sample.reference);
      }
      row.push_back(TablePrinter::fmt(base_total / n_samples, 1));
      row.push_back(TablePrinter::fmt(cached_total / n_samples, 1));
    }
    table.add_row(row);
  }
  table.print(std::cout);

  std::cout << "\nPaper reference (Table 1): cached accuracy is comparable "
               "to the baseline on all QA/summarization datasets; passage "
               "retrieval is the outlier (e.g. Llama2 7B: 7.50 baseline vs "
               "4.25 cached) because its queried facts span module "
               "boundaries.\n";
  return 0;
}
