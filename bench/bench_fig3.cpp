// Reproduces Figure 3: GPU TTFT for eight LongBench datasets across three
// NVIDIA GPUs, with prompt modules held in CPU memory (PCIe copy) or GPU
// memory (HBM copy), against the regular KV-Cache baseline.
//
// No GPU exists in this environment, so the hardware is the analytic
// DeviceModel (see DESIGN.md substitutions): TTFT(baseline) is prefill
// FLOPs over sustained throughput; TTFT(cached) is module-state bytes over
// the relevant link plus the uncached-suffix compute. The workload's
// cached/uncached token split comes from the same PML pipeline the real
// engine uses. Expected shape (paper §5.2.1): 1.5-3x with modules in CPU
// memory, 5-10x in GPU memory.
#include <iostream>

#include "bench/bench_common.h"
#include "eval/workload.h"
#include "pml/prompt.h"
#include "sys/device_model.h"
#include "tokenizer/chat_template.h"

int main() {
  using namespace pc;
  bench::print_banner(
      "Figure 3 — GPU TTFT across LongBench datasets (simulated GPUs)",
      "model: Llama 7B spec; workloads: synthetic LongBench-like, ~5K tokens");

  const ModelSpec& spec = find_spec("Llama 7B");
  const std::vector<const HardwareProfile*> gpus = {
      &HardwareProfile::rtx4090(), &HardwareProfile::a40(),
      &HardwareProfile::a100()};

  LatencyWorkload workload(23);
  const ChatTemplate tmpl(TemplateStyle::kLlama2);

  for (const HardwareProfile* gpu : gpus) {
    TablePrinter table(gpu->name);
    table.set_header({"dataset", "tokens", "uncached", "baseline",
                      "cached (CPU mem)", "cached (GPU mem)", "speedup CPU",
                      "speedup GPU"});
    for (const DatasetSpec& ds : bench::figure_datasets()) {
      // The paper-scale token split, derived through the PML pipeline.
      const LatencySample sample = workload.make_sample(ds, 0, 1.0);
      const pml::Schema schema =
          pml::Schema::parse(sample.schema_pml, workload.tokenizer(), tmpl);
      const pml::PromptBinding binding = pml::bind_prompt(
          schema, pml::parse_prompt(sample.prompt_pml), workload.tokenizer());

      const int cached = binding.cached_token_count();
      const int uncached = binding.uncached_token_count();
      const double baseline =
          estimate_baseline_ttft(*gpu, spec, cached + uncached).total();
      const double host =
          estimate_cached_ttft(*gpu, spec, cached, uncached,
                               ModuleLocation::kHostMemory)
              .total();
      const double device =
          estimate_cached_ttft(*gpu, spec, cached, uncached,
                               ModuleLocation::kDeviceMemory)
              .total();
      table.add_row({ds.name, std::to_string(cached + uncached),
                     std::to_string(uncached),
                     TablePrinter::fmt_ms(baseline * 1e3),
                     TablePrinter::fmt_ms(host * 1e3),
                     TablePrinter::fmt_ms(device * 1e3),
                     TablePrinter::fmt_times(baseline / host),
                     TablePrinter::fmt_times(baseline / device)});
    }
    table.print(std::cout);
  }

  std::cout << "\nPaper reference (Fig. 3): cached-in-CPU-memory 1.5-3x, "
               "cached-in-GPU-memory 5-10x across datasets and GPUs.\n";
  return 0;
}
