// Module-store policy study — the paper's §6 future work ("a system ...
// equipped with GPU cache replacement strategies optimized to achieve the
// latency lower bound made possible by Prompt Cache").
//
// A Zipf-popular request stream draws modules from a large pool; the store
// holds a limited device (GPU) tier backed by unlimited host memory. We
// sweep the device capacity and report device-tier hit rates, bytes pulled
// over the (slow) host link, and the modeled mean retrieval latency on an
// RTX 4090 — quantifying how much device memory the LRU policy needs
// before Prompt Cache reaches its device-resident lower bound, and how
// much union-sibling-style promotion helps a skewed workload.
#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "core/module_store.h"
#include "sys/device_model.h"

namespace {

using namespace pc;

constexpr int kLayers = 32;       // Llama-7B-like geometry for byte realism
constexpr int kKvDim = 4096;
constexpr int kModuleTokens = 512;
constexpr int kPoolSize = 64;
constexpr int kRequests = 4000;

EncodedModule synthetic_module() {
  EncodedModule m;
  m.precision = StorePrecision::kFp16;  // Table 2's storage assumption
  m.n_tokens = kModuleTokens;
  m.kv_dim = kKvDim;
  m.n_layers = kLayers;
  m.pos_ids.resize(kModuleTokens);
  m.kv16_layers.resize(kLayers);
  // Payload content is irrelevant to the policy study; allocate K/V lazily
  // as empty vectors and rely on payload accounting only.
  m.text_row_ranges = {{0, kModuleTokens}};
  return m;
}

// Zipf(s≈1) sampler over [0, n) via inverse CDF on precomputed weights.
class Zipf {
 public:
  Zipf(int n, double s, uint64_t seed) : rng_(seed) {
    cdf_.resize(static_cast<size_t>(n));
    double total = 0;
    for (int i = 0; i < n; ++i) {
      total += 1.0 / std::pow(static_cast<double>(i + 1), s);
      cdf_[static_cast<size_t>(i)] = total;
    }
    for (auto& c : cdf_) c /= total;
  }

  int next() {
    const double u = rng_.next_double();
    return static_cast<int>(
        std::lower_bound(cdf_.begin(), cdf_.end(), u) - cdf_.begin());
  }

 private:
  Rng rng_;
  std::vector<double> cdf_;
};

}  // namespace

int main() {
  using namespace pc;
  bench::print_banner(
      "Cache replacement policy study (paper §6 future work)",
      "Zipf(1.1) requests over 64 modules of 512 tokens (fp16, 7B "
      "geometry); LRU device tier backed by host memory");

  const size_t module_bytes = synthetic_module().payload_bytes();
  const auto& hw = HardwareProfile::rtx4090();

  TablePrinter table;
  table.set_header({"device capacity", "modules fit", "device hit rate",
                    "host-link traffic", "mean retrieve (modeled)"});
  for (double fraction : {0.05, 0.1, 0.25, 0.5, 0.75, 1.0}) {
    const size_t capacity = static_cast<size_t>(
        fraction * kPoolSize * static_cast<double>(module_bytes));
    ModuleStore store(capacity, /*host=*/0);
    for (int i = 0; i < kPoolSize; ++i) {
      store.insert("mod" + std::to_string(i), synthetic_module());
    }

    Zipf zipf(kPoolSize, 1.1, 42);
    uint64_t device_hits = 0;
    size_t host_bytes = 0;
    double retrieve_s = 0;
    for (int r = 0; r < kRequests; ++r) {
      const std::string key = "mod" + std::to_string(zipf.next());
      ModuleLocation loc;
      const EncodedModule* m = store.find(key, &loc);
      PC_CHECK(m != nullptr);
      if (loc == ModuleLocation::kDeviceMemory) {
        ++device_hits;
        retrieve_s += estimate_memcpy_s(hw, module_bytes,
                                        ModuleLocation::kDeviceMemory);
      } else {
        host_bytes += module_bytes;
        retrieve_s += estimate_memcpy_s(hw, module_bytes,
                                        ModuleLocation::kHostMemory);
        // Promote on use: hot modules migrate to the device tier, which is
        // how an LRU GPU cache behaves under a skewed workload.
        (void)store.promote(key, ModuleLocation::kDeviceMemory);
      }
    }

    table.add_row(
        {format_bytes(static_cast<double>(capacity)),
         std::to_string(capacity / module_bytes) + "/" +
             std::to_string(kPoolSize),
         TablePrinter::fmt(100.0 * static_cast<double>(device_hits) /
                               kRequests,
                           1) +
             " %",
         format_bytes(static_cast<double>(host_bytes)),
         TablePrinter::fmt_ms(retrieve_s / kRequests * 1e3)});
  }
  table.print(std::cout);

  std::cout << "\nReading: a modest device tier captures most of a skewed "
               "workload (promote-on-use LRU); the last column approaches "
               "the device-resident lower bound of "
            << TablePrinter::fmt_ms(
                   estimate_memcpy_s(hw, module_bytes,
                                     ModuleLocation::kDeviceMemory) *
                   1e3)
            << " per module as capacity grows.\n";
  return 0;
}
