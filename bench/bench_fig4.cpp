// Reproduces Figure 4: CPU TTFT for eight LongBench datasets across two
// CPUs.
//
// Two complementary parts:
//   (1) MEASURED — the real engine (llama-tiny architecture) runs every
//       dataset on this host: module encoding offline, then cached serve
//       vs. full-prefill baseline, wall-clock. This is a genuine
//       end-to-end Prompt Cache measurement, just at laptop scale
//       (PC_FULL=1 for paper-scale ~5K-token contexts).
//   (2) MODELED — the analytic DeviceModel at Llama-7B scale for the two
//       paper testbeds (Intel i9-13900K/DDR5, AMD Ryzen 9 7950X/DDR4).
// Expected shape (paper §5.2.2): tens-of-x speedups, Intel > AMD, and the
// dataset with the largest uncached fraction (TriviaQA) benefits least.
#include <iostream>

#include "bench/bench_common.h"
#include "core/engine.h"
#include "eval/workload.h"
#include "sys/device_model.h"

int main() {
  using namespace pc;
  const double scale = bench::context_scale();

  bench::print_banner("Figure 4 — CPU TTFT across LongBench datasets",
                      "part 1 measured on this host (scale " +
                          TablePrinter::fmt(scale, 2) +
                          "x of ~5K tokens; PC_FULL=1 for full scale)");

  // Part 1: measured.
  {
    const ModelConfig config =
        ModelConfig::llama_tiny(Vocab::basic_english().size(), 16384);
    const Model model = Model::random(config, 1234);
    const Tokenizer tokenizer(Vocab::basic_english());
    LatencyWorkload workload(23);

    TablePrinter table("measured on this host, llama-tiny engine");
    table.set_header({"dataset", "tokens", "uncached", "baseline TTFT",
                      "cached TTFT", "retrieve", "speedup"});
    for (const DatasetSpec& ds : bench::figure_datasets()) {
      const LatencySample sample = workload.make_sample(ds, 0, scale);
      PromptCacheEngine engine(model, tokenizer);
      engine.load_schema(sample.schema_pml);  // offline encoding

      GenerateOptions opts;
      opts.max_new_tokens = 1;
      const ServeResult cached = engine.serve(sample.prompt_pml, opts);
      const ServeResult baseline =
          engine.serve_baseline(sample.prompt_pml, opts);

      table.add_row({ds.name, std::to_string(baseline.prompt_tokens),
                     std::to_string(cached.ttft.uncached_tokens),
                     TablePrinter::fmt_ms(baseline.ttft.total_ms()),
                     TablePrinter::fmt_ms(cached.ttft.total_ms()),
                     TablePrinter::fmt_ms(cached.ttft.retrieve_ms),
                     TablePrinter::fmt_times(baseline.ttft.total_ms() /
                                             cached.ttft.total_ms())});
    }
    table.print(std::cout);
  }

  // Part 2: modeled at paper scale.
  {
    const ModelSpec& spec = find_spec("Llama 7B");
    LatencyWorkload workload(23);
    const ChatTemplate tmpl(TemplateStyle::kLlama2);
    for (const HardwareProfile* cpu :
         {&HardwareProfile::intel_i9_13900k(),
          &HardwareProfile::amd_ryzen9_7950x()}) {
      TablePrinter table("modeled, Llama 7B on " + cpu->name);
      table.set_header(
          {"dataset", "tokens", "baseline", "cached", "speedup"});
      for (const DatasetSpec& ds : bench::figure_datasets()) {
        const LatencySample sample = workload.make_sample(ds, 0, 1.0);
        const pml::Schema schema = pml::Schema::parse(
            sample.schema_pml, workload.tokenizer(), tmpl);
        const pml::PromptBinding binding =
            pml::bind_prompt(schema, pml::parse_prompt(sample.prompt_pml),
                             workload.tokenizer());
        const int cached = binding.cached_token_count();
        const int uncached = binding.uncached_token_count();
        const double base =
            estimate_baseline_ttft(*cpu, spec, cached + uncached).total();
        const double fast =
            estimate_cached_ttft(*cpu, spec, cached, uncached,
                                 ModuleLocation::kHostMemory)
                .total();
        table.add_row({ds.name, std::to_string(cached + uncached),
                       TablePrinter::fmt_ms(base * 1e3),
                       TablePrinter::fmt_ms(fast * 1e3),
                       TablePrinter::fmt_times(base / fast)});
      }
      table.print(std::cout);
    }
  }

  std::cout << "\nPaper reference (Fig. 4): up to 70x on the Intel/DDR5 "
               "testbed, up to 20x on the AMD/DDR4 testbed; TriviaQA "
               "(largest uncached share) benefits least.\n";
  return 0;
}
